// Powercap: EAR's third service — energy control. The global manager
// (EARGM) watches cluster DC power and enforces a site budget by
// imposing a CPU pstate ceiling under whatever the per-job policy
// requests: the job slows down, the cluster stays inside its electrical
// envelope, and the cap is released when headroom returns.
//
// Run with: go run ./examples/powercap
package main

import (
	"fmt"
	"log"

	"goear"
)

func main() {
	s := goear.NewQuickSession()
	const wl = "BQCD" // four nodes

	free, err := s.Run(wl, goear.Config{Policy: goear.PolicyMinEnergy, CPUPolicyTh: 0.03})
	if err != nil {
		log.Fatal(err)
	}
	clusterW := free.AvgPowerW * float64(free.Nodes)
	fmt.Printf("%s on %d nodes, uncapped: %.0fW cluster, %.1fs\n\n", wl, free.Nodes, clusterW, free.TimeSec)

	for _, frac := range []float64{1.10, 0.97, 0.90} {
		budget := clusterW * frac
		r, err := s.RunPowercapped(wl, goear.Config{
			Policy: goear.PolicyMinEnergy, CPUPolicyTh: 0.03,
		}, budget)
		if err != nil {
			log.Fatal(err)
		}
		got := r.Run.AvgPowerW * float64(r.Run.Nodes)
		slowdown := 100 * (r.Run.TimeSec - free.TimeSec) / free.TimeSec
		fmt.Printf("budget %.0fW (%.0f%%): cluster %.0fW, peak %.0fW, over-budget %.1f%% of intervals, final cap p%d, slowdown %+.1f%%\n",
			budget, frac*100, got, r.PeakW, r.OverBudgetPct, r.FinalCap, slowdown)
	}
	fmt.Println("\nA loose budget never engages; tight budgets ratchet the pstate")
	fmt.Println("ceiling down until the cluster fits, trading time for power.")
}
