// Quickstart: run the paper's headline experiment on one kernel.
//
// BT-MZ.C is CPU bound, so min_energy_to_solution alone cannot save
// anything (lowering the CPU frequency costs more time than it saves
// power). Explicit uncore frequency scaling finds ~0.4 GHz of IMC
// headroom the hardware never releases, saving 6-8% power for ~1% time.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"goear"
)

func main() {
	s := goear.NewSession()

	// The nominal-frequency baseline: what the cluster does today.
	base, err := s.Run("BT-MZ.C", goear.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline   : %6.1fs  %6.1fW  CPU %.2fGHz  IMC %.2fGHz\n",
		base.TimeSec, base.AvgPowerW, base.AvgCPUGHz, base.AvgIMCGHz)

	// min_energy_to_solution with explicit uncore frequency scaling.
	cmp, err := s.Compare("BT-MZ.C", goear.Config{
		Policy:      goear.PolicyMinEnergyEUFS,
		CPUPolicyTh: 0.05, // allow 5% time penalty to the DVFS stage
		UncPolicyTh: 0.02, // and 2% CPI/GB/s degradation to the uncore stage
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ME+eUFS    : %6.1fs  %6.1fW  CPU %.2fGHz  IMC %.2fGHz\n",
		cmp.Run.TimeSec, cmp.Run.AvgPowerW, cmp.Run.AvgCPUGHz, cmp.Run.AvgIMCGHz)
	fmt.Printf("\nenergy saving %.2f%%  power saving %.2f%%  time penalty %.2f%%\n",
		cmp.EnergySavingPct, cmp.PowerSavingPct, cmp.TimePenaltyPct)
	fmt.Println("(paper, Table III BT-MZ row: 7% energy, 8% power, 1% time)")
}
