// Uncore sweep: the paper's motivation experiment (Fig. 1) on a single
// kernel. The CPU frequency stays at nominal while the uncore frequency
// is pinned from 2.4 GHz down to 1.2 GHz; at each point the program
// reports power and energy savings and the time and bandwidth penalties
// against the hardware-UFS reference — showing the window between "the
// hardware keeps the IMC at maximum" and "the workload actually needs
// it" that explicit UFS exploits.
//
// Run with: go run ./examples/uncore_sweep [workload]
package main

import (
	"fmt"
	"log"
	"os"

	"goear"
)

func main() {
	name := "SP-MZ.C"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	s := goear.NewQuickSession()

	ref, err := s.Run(name, goear.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s at nominal CPU frequency, hardware UFS: %.1fs %.1fW (IMC %.2fGHz)\n\n",
		name, ref.TimeSec, ref.AvgPowerW, ref.AvgIMCGHz)
	fmt.Println("uncore  power-save  energy-save  time-penalty  GB/s")
	fmt.Println("------------------------------------------------------")
	for ghz := 2.4; ghz >= 1.19; ghz -= 0.1 {
		r, err := s.Run(name, goear.Config{FixedUncoreGHz: ghz})
		if err != nil {
			log.Fatal(err)
		}
		powerSave := 100 * (ref.AvgPowerW - r.AvgPowerW) / ref.AvgPowerW
		energySave := 100 * (ref.EnergyJ - r.EnergyJ) / ref.EnergyJ
		timePen := 100 * (r.TimeSec - ref.TimeSec) / ref.TimeSec
		fmt.Printf("%.1fGHz  %8.2f%%  %9.2f%%  %10.2f%%  %6.1f\n",
			ghz, powerSave, energySave, timePen, r.AvgGBs)
	}
	fmt.Println("\nNote how power keeps falling while time barely moves at first —")
	fmt.Println("then the memory subsystem starves and the penalty outweighs the saving.")
}
