// Policy comparison: every registered energy policy against the nominal
// baseline, on one CPU-bound and one memory-bound application —
// reproducing the paper's core observation that the two classes need
// different levers (DVFS for memory-bound codes, explicit UFS for
// CPU-bound ones).
//
// Run with: go run ./examples/policy_comparison
package main

import (
	"fmt"
	"log"

	"goear"
)

func main() {
	s := goear.NewQuickSession()
	policies := []string{
		goear.PolicyMinEnergy,
		goear.PolicyMinEnergyEUFS,
		goear.PolicyMinTime,
		goear.PolicyMinTimeEUFS,
	}
	for _, wl := range []string{"BT-MZ.C", "HPCG"} {
		base, err := s.Run(wl, goear.Config{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("== %s (baseline %.1fs, %.1fW, CPU %.2fGHz, IMC %.2fGHz)\n",
			wl, base.TimeSec, base.AvgPowerW, base.AvgCPUGHz, base.AvgIMCGHz)
		fmt.Println("policy            time-pen  energy-save  CPU(GHz)  IMC(GHz)")
		for _, p := range policies {
			c, err := s.Compare(wl, goear.Config{Policy: p})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-17s %7.2f%%  %10.2f%%  %8.2f  %8.2f\n",
				p, c.TimePenaltyPct, c.EnergySavingPct, c.Run.AvgCPUGHz, c.Run.AvgIMCGHz)
		}
		fmt.Println()
	}
	fmt.Println("CPU-bound codes only save through the uncore; memory-bound codes")
	fmt.Println("save through DVFS and tolerate little uncore reduction.")
}
