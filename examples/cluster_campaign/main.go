// Cluster campaign: what a site operator would run before enabling
// EAR's explicit UFS fleet-wide — the full MPI application suite under
// min_energy_to_solution with and without eUFS, summarised like the
// paper's §VI-B discussion, plus the instrumentation-scope warning of
// Table VII (RAPL package savings overstate DC-node savings).
//
// Run with: go run ./examples/cluster_campaign
package main

import (
	"fmt"
	"log"

	"goear"
)

var suite = []struct {
	name  string
	cpuTh float64
}{
	{"BQCD", 0.03}, // the paper uses 3% for BQCD, 5% elsewhere
	{"BT-MZ.D", 0.05},
	{"GROMACS(I)", 0.05},
	{"GROMACS(II)", 0.05},
	{"HPCG", 0.05},
	{"POP", 0.05},
	{"DUMSES", 0.05},
	{"AFiD", 0.05},
}

func main() {
	s := goear.NewQuickSession()
	fmt.Println("application    nodes  ME energy   ME+eU energy  ME+eU time  DC-save  PCK-save")
	fmt.Println("--------------------------------------------------------------------------------")
	var sumE, sumT float64
	for _, app := range suite {
		me, err := s.Compare(app.name, goear.Config{
			Policy: goear.PolicyMinEnergy, CPUPolicyTh: app.cpuTh,
		})
		if err != nil {
			log.Fatal(err)
		}
		eu, err := s.Compare(app.name, goear.Config{
			Policy: goear.PolicyMinEnergyEUFS, CPUPolicyTh: app.cpuTh, UncPolicyTh: 0.02,
		})
		if err != nil {
			log.Fatal(err)
		}
		pckSave := 100 * (eu.Baseline.AvgPkgW - eu.Run.AvgPkgW) / eu.Baseline.AvgPkgW
		fmt.Printf("%-14s %5d  %8.2f%%  %11.2f%%  %9.2f%%  %6.2f%%  %7.2f%%\n",
			app.name, eu.Run.Nodes, me.EnergySavingPct, eu.EnergySavingPct,
			eu.TimePenaltyPct, eu.PowerSavingPct, pckSave)
		sumE += eu.EnergySavingPct
		sumT += eu.TimePenaltyPct
	}
	n := float64(len(suite))
	fmt.Printf("\nfleet summary: avg energy saving %.2f%%, avg time penalty %.2f%%\n", sumE/n, sumT/n)
	fmt.Println("(paper: ~8.75% average energy saving, ~2.91% average time penalty)")
	fmt.Println("\nNote the PCK column: accounting savings against RAPL package power")
	fmt.Println("instead of DC node power would overstate every row — the paper's")
	fmt.Println("argument for evaluating policies with full-node instrumentation.")
}
