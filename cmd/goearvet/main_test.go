package main

import (
	"encoding/json"
	"strings"
	"testing"

	"goear/internal/analysis"
)

func TestListAnalyzers(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errOut.String())
	}
	for _, name := range []string{"determinism", "unitsafety", "msrfield", "errcheck", "concurrency"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output is missing %q:\n%s", name, out.String())
		}
	}
}

func TestCleanPackage(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"goear/internal/units"}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d, stdout: %s stderr: %s", code, out.String(), errOut.String())
	}
	if out.String() != "" {
		t.Errorf("clean package produced output: %s", out.String())
	}
}

func TestJSONOutput(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-json", "goear/internal/units"}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errOut.String())
	}
	var diags []analysis.Diagnostic
	if err := json.Unmarshal([]byte(out.String()), &diags); err != nil {
		t.Fatalf("-json output is not a diagnostic array: %v\n%s", err, out.String())
	}
	if len(diags) != 0 {
		t.Errorf("expected clean JSON run, got %v", diags)
	}
}

func TestBadPattern(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"goear/no/such/pkg"}, &out, &errOut); code != 2 {
		t.Errorf("exit = %d, want 2 for unknown pattern", code)
	}
}

func TestAllAnalyzersDisabled(t *testing.T) {
	var out, errOut strings.Builder
	args := []string{
		"-determinism=false", "-unitsafety=false", "-msrfield=false",
		"-errcheck=false", "-concurrency=false", "goear/internal/units",
	}
	if code := run(args, &out, &errOut); code != 2 {
		t.Errorf("exit = %d, want 2 when every analyzer is disabled", code)
	}
}

func TestRecursivePatternScopesToSubtree(t *testing.T) {
	// From this package's directory, ./... covers only cmd/goearvet.
	var out, errOut strings.Builder
	if code := run([]string{"./..."}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d, stdout: %s stderr: %s", code, out.String(), errOut.String())
	}
}
