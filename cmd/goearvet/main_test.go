package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"goear/internal/analysis"
)

func TestListAnalyzers(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errOut.String())
	}
	for _, name := range []string{
		"concurrency", "conftag", "determinism", "errcheck", "fixture",
		"msrfield", "policyreg", "telemetry", "unitsafety",
	} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output is missing %q:\n%s", name, out.String())
		}
	}
}

func TestListSorted(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-list"}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errOut.String())
	}
	var names []string
	for _, line := range strings.Split(strings.TrimSpace(out.String()), "\n") {
		if fields := strings.Fields(line); len(fields) > 0 {
			names = append(names, fields[0])
		}
	}
	if !sort.StringsAreSorted(names) {
		t.Errorf("-list output is not sorted by name: %v", names)
	}
}

func TestFixFlagCombinations(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-dry-run", "goear/internal/units"}, &out, &errOut); code != 2 {
		t.Errorf("-dry-run without -fix: exit = %d, want 2", code)
	}
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-fix", "-json", "goear/internal/units"}, &out, &errOut); code != 2 {
		t.Errorf("-fix with -json: exit = %d, want 2", code)
	}
}

func TestCleanPackage(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"goear/internal/units"}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d, stdout: %s stderr: %s", code, out.String(), errOut.String())
	}
	if out.String() != "" {
		t.Errorf("clean package produced output: %s", out.String())
	}
}

func TestJSONOutput(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"-json", "goear/internal/units"}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errOut.String())
	}
	var diags []analysis.Diagnostic
	if err := json.Unmarshal([]byte(out.String()), &diags); err != nil {
		t.Fatalf("-json output is not a diagnostic array: %v\n%s", err, out.String())
	}
	if len(diags) != 0 {
		t.Errorf("expected clean JSON run, got %v", diags)
	}
}

func TestBadPattern(t *testing.T) {
	var out, errOut strings.Builder
	if code := run([]string{"goear/no/such/pkg"}, &out, &errOut); code != 2 {
		t.Errorf("exit = %d, want 2 for unknown pattern", code)
	}
}

func TestAllAnalyzersDisabled(t *testing.T) {
	var out, errOut strings.Builder
	args := []string{
		"-determinism=false", "-unitsafety=false", "-msrfield=false",
		"-errcheck=false", "-concurrency=false", "-telemetry=false",
		"-policyreg=false", "-conftag=false", "-fixture=false",
		"goear/internal/units",
	}
	if code := run(args, &out, &errOut); code != 2 {
		t.Errorf("exit = %d, want 2 when every analyzer is disabled", code)
	}
}

func TestRecursivePatternScopesToSubtree(t *testing.T) {
	// From this package's directory, ./... covers only cmd/goearvet.
	var out, errOut strings.Builder
	if code := run([]string{"./..."}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d, stdout: %s stderr: %s", code, out.String(), errOut.String())
	}
}

// initDiffRepo builds a throwaway git module with two packages —
// "clean" (no findings) and "dirty" (a determinism violation in a
// package named so the analyzer scopes to it) — commits it, and
// chdirs into it.
func initDiffRepo(t *testing.T) string {
	t.Helper()
	root := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		p := filepath.Join(root, rel)
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module tmpmod\n\ngo 1.24\n")
	write("internal/clean/clean.go", "package clean\n\nfunc Two() int { return 2 }\n")
	write("internal/sim/sim.go", "package sim\n\nfunc Tick() int { return 1 }\n")
	git := func(args ...string) {
		t.Helper()
		cmd := exec.Command("git", append([]string{"-C", root}, args...)...)
		cmd.Env = append(os.Environ(),
			"GIT_AUTHOR_NAME=t", "GIT_AUTHOR_EMAIL=t@t",
			"GIT_COMMITTER_NAME=t", "GIT_COMMITTER_EMAIL=t@t")
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("git %v: %v\n%s", args, err, out)
		}
	}
	git("init", "-q")
	git("add", ".")
	git("commit", "-q", "-m", "base")
	t.Chdir(root)
	return root
}

func TestDiffModeNoChanges(t *testing.T) {
	initDiffRepo(t)
	var out, errOut strings.Builder
	if code := run([]string{"-diff", "HEAD", "./..."}, &out, &errOut); code != 0 {
		t.Fatalf("exit = %d, stderr: %s", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "no analyzed packages changed") {
		t.Errorf("stderr = %q", errOut.String())
	}
	// JSON mode keeps stdout a valid (empty) diagnostic array.
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-diff", "HEAD", "-json", "./..."}, &out, &errOut); code != 0 {
		t.Fatalf("json exit = %d", code)
	}
	if strings.TrimSpace(out.String()) != "[]" {
		t.Errorf("json stdout = %q", out.String())
	}
}

func TestDiffModeScopesToChangedPackages(t *testing.T) {
	root := initDiffRepo(t)
	// Introduce a finding in internal/sim (in the determinism scope) and
	// one in internal/clean; only sim's package is dirtied vs HEAD after
	// we commit clean's change.
	bad := "package sim\n\nimport \"time\"\n\nfunc Tick() int { return time.Now().Second() }\n"
	if err := os.WriteFile(filepath.Join(root, "internal/sim/sim.go"), []byte(bad), 0o644); err != nil {
		t.Fatal(err)
	}

	var out, errOut strings.Builder
	if code := run([]string{"-diff", "HEAD", "./..."}, &out, &errOut); code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "time.Now") {
		t.Errorf("finding not reported: %s", out.String())
	}

	// An untracked package also counts as changed.
	extra := filepath.Join(root, "internal", "fresh", "fresh.go")
	if err := os.MkdirAll(filepath.Dir(extra), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(extra, []byte("package fresh\n\nfunc One() int { return 1 }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-diff", "HEAD", "./internal/fresh"}, &out, &errOut); code != 0 {
		t.Fatalf("untracked package run: exit = %d, stderr: %s", code, errOut.String())
	}

	// A pattern naming only unchanged packages analyzes nothing.
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-diff", "HEAD", "./internal/clean"}, &out, &errOut); code != 0 {
		t.Fatalf("unchanged package run: exit = %d", code)
	}
	if !strings.Contains(errOut.String(), "no analyzed packages changed") {
		t.Errorf("stderr = %q", errOut.String())
	}
}

// TestFixEndToEnd drives the full autofix loop in a throwaway module:
// a determinism finding with a suggested fix (map-keys append without
// a sort, in a package missing the sort import) is first shown by
// -fix -dry-run, then applied by -fix, after which the tree is clean.
func TestFixEndToEnd(t *testing.T) {
	root := initDiffRepo(t)
	src := `package sim

func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
`
	path := filepath.Join(root, "internal/sim/sim.go")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}

	// Dry run: diff on stdout, exit 1, file untouched.
	var out, errOut strings.Builder
	if code := run([]string{"-fix", "-dry-run", "./internal/sim"}, &out, &errOut); code != 1 {
		t.Fatalf("dry-run exit = %d, want 1\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
	for _, want := range []string{"--- a/internal/sim/sim.go", "+\tsort.Strings(out)", `+import "sort"`} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("dry-run diff is missing %q:\n%s", want, out.String())
		}
	}
	if got, _ := os.ReadFile(path); string(got) != src {
		t.Fatalf("dry-run modified the file:\n%s", got)
	}

	// Apply: file repaired, nothing unfixable left, exit 0.
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-fix", "./internal/sim"}, &out, &errOut); code != 0 {
		t.Fatalf("fix exit = %d\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
	fixed, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`import "sort"`, "sort.Strings(out)"} {
		if !strings.Contains(string(fixed), want) {
			t.Errorf("fixed file is missing %q:\n%s", want, fixed)
		}
	}
	if !strings.Contains(errOut.String(), "applied 1 fix(es)") {
		t.Errorf("stderr = %q", errOut.String())
	}

	// The repaired tree is clean: dry-run now exits 0.
	out.Reset()
	errOut.Reset()
	if code := run([]string{"-fix", "-dry-run", "./internal/sim"}, &out, &errOut); code != 0 {
		t.Fatalf("post-fix dry-run exit = %d\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
	if out.String() != "" {
		t.Errorf("post-fix dry-run still prints diffs:\n%s", out.String())
	}
}

func TestDiffModeBadRef(t *testing.T) {
	initDiffRepo(t)
	var out, errOut strings.Builder
	if code := run([]string{"-diff", "no-such-ref", "./..."}, &out, &errOut); code != 2 {
		t.Errorf("exit = %d, want 2 for unknown ref", code)
	}
}
