// Command goearvet runs the repository's static-analysis suite:
// repo-specific analyzers enforcing determinism, unit safety, MSR
// bit-field consistency, error handling, concurrency discipline,
// telemetry naming, policy registration, config-tag agreement and
// fixture hygiene. It is built on internal/analysis and uses only the
// standard library; packages are type-checked from source, so the
// tool needs no build cache or installed artifacts.
//
// Usage:
//
//	go run ./cmd/goearvet ./...
//	go run ./cmd/goearvet -json ./internal/msr ./internal/uncore
//	go run ./cmd/goearvet -determinism=false ./internal/sim
//	go run ./cmd/goearvet -diff origin/main ./...
//	go run ./cmd/goearvet -fix ./...
//	go run ./cmd/goearvet -fix -dry-run ./...
//
// Patterns are import paths or ./-relative directories, with an
// optional /... suffix for recursion. With no pattern, ./... is
// assumed. -diff restricts the run to packages holding .go files git
// reports as changed since the given ref (including working-tree and
// untracked files), which keeps pull-request lint runs proportional
// to the change.
//
// Some analyzers attach suggested fixes to their findings. -fix
// applies them in place (each touched file is gofmt-ed) and reports
// only what it could not repair; -fix -dry-run prints the repairs as
// unified diffs without writing anything and exits non-zero when
// fixes are outstanding, which is the shape CI wants. A fix whose
// edits conflict with an already-accepted fix is skipped whole and
// surfaced for manual repair.
//
// Exit status is 0 for a clean tree, 1 when findings (or, under
// -fix -dry-run, pending fixes) were reported, 2 on usage or load
// errors.
//
// Findings are suppressed line by line with an annotation carrying a
// mandatory reason; suppressed findings never contribute fixes:
//
//	v := ratio * gran //goearvet:ignore count times granularity
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path"
	"path/filepath"
	"sort"
	"strings"

	"goear/internal/analysis"
	"goear/internal/analysis/analyzers"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("goearvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	list := fs.Bool("list", false, "list the analyzers and exit")
	diffRef := fs.String("diff", "", "only analyze packages with .go files changed since this git ref (untracked files count as changed)")
	fix := fs.Bool("fix", false, "apply suggested fixes in place")
	dryRun := fs.Bool("dry-run", false, "with -fix, print repairs as unified diffs instead of writing; exit 1 when fixes are outstanding")
	all := analyzers.All()
	enabled := map[string]*bool{}
	for _, a := range all {
		enabled[a.Name] = fs.Bool(a.Name, true, "enable the "+a.Name+" analyzer")
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		sorted := append([]*analysis.Analyzer(nil), all...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].Name < sorted[j].Name })
		for _, a := range sorted {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	if *dryRun && !*fix {
		fmt.Fprintln(stderr, "goearvet: -dry-run only makes sense with -fix")
		return 2
	}
	if *fix && *jsonOut {
		fmt.Fprintln(stderr, "goearvet: -fix and -json are mutually exclusive")
		return 2
	}

	var active []*analysis.Analyzer
	for _, a := range all {
		if *enabled[a.Name] {
			active = append(active, a)
		}
	}
	if len(active) == 0 {
		fmt.Fprintln(stderr, "goearvet: every analyzer is disabled")
		return 2
	}

	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(stderr, "goearvet:", err)
		return 2
	}
	loader := analysis.NewLoader()
	modPath, err := loader.AddModule(root)
	if err != nil {
		fmt.Fprintln(stderr, "goearvet:", err)
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	paths, err := resolvePatterns(loader, root, modPath, patterns)
	if err != nil {
		fmt.Fprintln(stderr, "goearvet:", err)
		return 2
	}

	if *diffRef != "" {
		changed, err := changedPackages(root, modPath, *diffRef)
		if err != nil {
			fmt.Fprintln(stderr, "goearvet:", err)
			return 2
		}
		kept := paths[:0]
		for _, p := range paths {
			if changed[p] {
				kept = append(kept, p)
			}
		}
		paths = kept
		if len(paths) == 0 {
			if *jsonOut {
				fmt.Fprintln(stdout, "[]")
			} else {
				fmt.Fprintf(stderr, "goearvet: no analyzed packages changed since %s\n", *diffRef)
			}
			return 0
		}
	}

	pkgs, err := loader.LoadAll(paths)
	if err != nil {
		fmt.Fprintln(stderr, "goearvet:", err)
		return 2
	}
	diags, err := analysis.Run(pkgs, active)
	if err != nil {
		fmt.Fprintln(stderr, "goearvet:", err)
		return 2
	}

	if *fix {
		return runFixes(diags, root, *dryRun, stdout, stderr)
	}

	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []analysis.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(stderr, "goearvet:", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(stderr, "goearvet: %d finding(s)\n", len(diags))
		}
		return 1
	}
	return 0
}

// runFixes resolves the suggested fixes of diags and either applies
// them (writing each repaired file in place) or, under dry-run,
// prints them as unified diffs. Diff and summary paths are shown
// relative to the module root when possible.
func runFixes(diags []analysis.Diagnostic, root string, dryRun bool, stdout, stderr io.Writer) int {
	plan, err := analysis.PlanFixes(diags, nil)
	if err != nil {
		fmt.Fprintln(stderr, "goearvet:", err)
		return 2
	}
	fixes, files, skipped := 0, 0, 0
	applied := map[*analysis.SuggestedFix]bool{}
	for _, f := range plan {
		fixes += len(f.Applied)
		skipped += len(f.Skipped)
		for _, d := range f.Applied {
			applied[d.Fix] = true
		}
		if f.Changed() {
			files++
		}
	}

	if dryRun {
		for _, f := range plan {
			if f.Changed() {
				fmt.Fprint(stdout, analysis.UnifiedDiff(relTo(root, f.Path), f.Orig, f.Fixed))
			}
		}
		if skipped > 0 {
			fmt.Fprintf(stderr, "goearvet: %d fix(es) skipped due to conflicting edits\n", skipped)
		}
		if fixes > 0 {
			fmt.Fprintf(stderr, "goearvet: %d auto-fixable finding(s) in %d file(s); run with -fix to apply\n", fixes, files)
			return 1
		}
		fmt.Fprintln(stderr, "goearvet: no auto-fixable findings")
		return 0
	}

	if err := analysis.WriteFixes(plan); err != nil {
		fmt.Fprintln(stderr, "goearvet:", err)
		return 2
	}
	if fixes > 0 {
		fmt.Fprintf(stderr, "goearvet: applied %d fix(es) across %d file(s)\n", fixes, files)
	}
	if skipped > 0 {
		fmt.Fprintf(stderr, "goearvet: %d fix(es) skipped due to conflicting edits; re-run -fix\n", skipped)
	}
	// Findings whose fixes were applied are repaired; everything else
	// still needs a human.
	remaining := 0
	for _, d := range diags {
		if d.Fix != nil && applied[d.Fix] {
			continue
		}
		fmt.Fprintln(stdout, d)
		remaining++
	}
	if remaining > 0 {
		fmt.Fprintf(stderr, "goearvet: %d finding(s) not auto-fixable\n", remaining)
		return 1
	}
	return 0
}

// relTo renders path relative to root for readable diff headers,
// falling back to the path itself.
func relTo(root, path string) string {
	rel, err := filepath.Rel(root, path)
	if err != nil || strings.HasPrefix(rel, "..") {
		return path
	}
	return filepath.ToSlash(rel)
}

// changedPackages maps the .go files git reports as changed since ref
// — committed differences, working-tree edits and untracked files —
// to the import paths of their directories. Deleted files keep their
// old directory in the set; a directory that no longer holds a
// package simply fails to intersect the resolved patterns.
func changedPackages(root, modPath, ref string) (map[string]bool, error) {
	diff := exec.Command("git", "-C", root, "diff", "--name-only", ref, "--")
	diffOut, err := diff.Output()
	if err != nil {
		var ee *exec.ExitError
		if errors.As(err, &ee) && len(ee.Stderr) > 0 {
			return nil, fmt.Errorf("git diff %s: %s", ref, strings.TrimSpace(string(ee.Stderr)))
		}
		return nil, fmt.Errorf("git diff %s: %w", ref, err)
	}
	untracked := exec.Command("git", "-C", root, "ls-files", "--others", "--exclude-standard")
	untrackedOut, err := untracked.Output()
	if err != nil {
		return nil, fmt.Errorf("git ls-files: %w", err)
	}

	set := map[string]bool{}
	for _, line := range strings.Split(string(diffOut)+string(untrackedOut), "\n") {
		file := strings.TrimSpace(line)
		if !strings.HasSuffix(file, ".go") {
			continue
		}
		dir := path.Dir(filepath.ToSlash(file))
		if dir == "." {
			set[modPath] = true
		} else {
			set[modPath+"/"+dir] = true
		}
	}
	return set, nil
}

// moduleRoot walks up from the working directory to the enclosing
// go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}

// resolvePatterns expands package patterns against the loader's
// registered module packages. Accepted forms: "./...", "./dir",
// "./dir/...", "importpath", "importpath/...".
func resolvePatterns(loader *analysis.Loader, root, modPath string, patterns []string) ([]string, error) {
	known := loader.Paths()
	set := map[string]bool{}
	for _, pat := range patterns {
		recursive := false
		if strings.HasSuffix(pat, "/...") {
			recursive = true
			pat = strings.TrimSuffix(pat, "/...")
		} else if pat == "..." {
			recursive = true
			pat = "."
		}
		imp, err := patternImportPath(root, modPath, pat)
		if err != nil {
			return nil, err
		}
		matched := false
		for _, p := range known {
			if p == imp || (recursive && (imp == modPath || strings.HasPrefix(p, imp+"/"))) {
				set[p] = true
				matched = true
			}
		}
		if !matched {
			return nil, fmt.Errorf("pattern %q matches no packages", pat)
		}
	}
	out := make([]string, 0, len(set))
	for p := range set {
		out = append(out, p)
	}
	sort.Strings(out)
	return out, nil
}

// patternImportPath maps one pattern (sans any /... suffix) to an
// import path.
func patternImportPath(root, modPath, pat string) (string, error) {
	if pat == "." || strings.HasPrefix(pat, "./") || strings.HasPrefix(pat, "../") {
		cwd, err := os.Getwd()
		if err != nil {
			return "", err
		}
		abs := filepath.Clean(filepath.Join(cwd, pat))
		rel, err := filepath.Rel(root, abs)
		if err != nil || strings.HasPrefix(rel, "..") {
			return "", fmt.Errorf("pattern %q escapes the module at %s", pat, root)
		}
		if rel == "." {
			return modPath, nil
		}
		return modPath + "/" + filepath.ToSlash(rel), nil
	}
	return pat, nil
}
