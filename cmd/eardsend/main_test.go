package main

import (
	"encoding/json"
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"goear/internal/eard"
	"goear/internal/eardbd"
)

func startServer(t *testing.T) (*eardbd.Server, string) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := eardbd.NewServer(eard.NewDB(), eardbd.Config{})
	go func() { _ = srv.Serve(l) }()
	t.Cleanup(func() { _ = srv.Close() })
	return srv, l.Addr().String()
}

func writeRecords(t *testing.T, recs []eard.JobRecord) string {
	t.Helper()
	data, err := json.Marshal(recs)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "jobs.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func testRecords(n int) []eard.JobRecord {
	recs := make([]eard.JobRecord, n)
	for i := range recs {
		recs[i] = eard.JobRecord{
			JobID: "j1", StepID: "0", Node: "n01", App: "lulesh",
			TimeSec: float64(10 + i), EnergyJ: float64(3000 + 10*i), AvgPower: 300,
		}
	}
	// Distinct nodes so every record is a distinct key.
	for i := range recs {
		recs[i].Node = "n" + string(rune('a'+i))
	}
	return recs
}

func TestSendDeliversAll(t *testing.T) {
	srv, addr := startServer(t)
	recs := testRecords(5)
	path := writeRecords(t, recs)

	var out strings.Builder
	err := run([]string{"-addr", addr, "-records", path, "-node", "n01", "-batch", "2"}, &out)
	if err != nil {
		t.Fatalf("run: %v\noutput: %s", err, out.String())
	}
	if got := srv.DB().Len(); got != 5 {
		t.Errorf("server holds %d records, want 5", got)
	}
	if !strings.Contains(out.String(), "5 enqueued, 5 sent in 3 batch(es)") {
		t.Errorf("output = %q", out.String())
	}
}

// TestSendTracesOut feeds with span tracing on: the export must hold
// the client-side trace of every batch.
func TestSendTracesOut(t *testing.T) {
	_, addr := startServer(t)
	path := writeRecords(t, testRecords(4))
	tracePath := filepath.Join(t.TempDir(), "traces.jsonl")

	var out strings.Builder
	err := run([]string{"-addr", addr, "-records", path, "-node", "n01", "-batch", "2", "-traces-out", tracePath}, &out)
	if err != nil {
		t.Fatalf("run: %v\noutput: %s", err, out.String())
	}
	blob, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	spans := string(blob)
	if strings.Count(spans, `"kind":"client.batch"`) != 2 ||
		strings.Count(spans, `"kind":"client.send"`) != 2 {
		t.Errorf("trace export missing batch spans:\n%s", spans)
	}
	if !strings.Contains(out.String(), "span(s) written to") {
		t.Errorf("output = %q", out.String())
	}
}

func TestSendSpillsThenReplays(t *testing.T) {
	// Reserve a port nothing listens on.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := l.Addr().String()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	recs := testRecords(3)
	path := writeRecords(t, recs)
	journal := filepath.Join(t.TempDir(), "n01.journal")

	var out strings.Builder
	err = run([]string{"-addr", deadAddr, "-records", path, "-node", "n01",
		"-journal", journal, "-attempts", "1"}, &out)
	if err != nil {
		t.Fatalf("offline run should spill, not fail: %v", err)
	}
	if !strings.Contains(out.String(), "spilled to "+journal) {
		t.Errorf("offline output = %q", out.String())
	}
	if _, err := os.Stat(journal); err != nil {
		t.Fatalf("journal not written: %v", err)
	}

	// Daemon comes back; replaying the same journal delivers exactly once
	// even though the record file is sent again too.
	srv, addr := startServer(t)
	out.Reset()
	err = run([]string{"-addr", addr, "-records", path, "-node", "n01", "-journal", journal}, &out)
	if err != nil {
		t.Fatalf("replay run: %v\noutput: %s", err, out.String())
	}
	if !strings.Contains(out.String(), "journal holds 1 spilled batch(es) to replay") {
		t.Errorf("replay output = %q", out.String())
	}
	if got := srv.DB().Len(); got != 3 {
		t.Errorf("server holds %d records, want 3", got)
	}
	st := srv.Stats()
	if st.RecordsAccepted != 3 || st.RecordsReplaced != 0 {
		t.Errorf("server stats = %+v: resend after replay must dedup", st)
	}
	if _, err := os.Stat(journal); !os.IsNotExist(err) {
		t.Errorf("journal should be removed after replay, stat err = %v", err)
	}
}

func TestSendLostWithoutJournal(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := l.Addr().String()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	path := writeRecords(t, testRecords(2))
	var out strings.Builder
	if err := run([]string{"-addr", deadAddr, "-records", path, "-attempts", "1"}, &out); err == nil {
		t.Error("undeliverable without journal should error")
	}
	if !strings.Contains(out.String(), "no -journal given; they are lost") {
		t.Errorf("output = %q", out.String())
	}
}

// TestSendAddrsRoutesByRing feeds one node through a two-shard -addrs
// list: every record must land on the single shard the hash ring owns
// the node on, the same owner the load generator and federation use.
func TestSendAddrsRoutesByRing(t *testing.T) {
	srv1, addr1 := startServer(t)
	srv2, addr2 := startServer(t)
	recs := testRecords(4)
	for i := range recs {
		recs[i].Node = "n01"
		recs[i].JobID = "j" + string(rune('1'+i))
	}
	path := writeRecords(t, recs)

	var out strings.Builder
	err := run([]string{"-addrs", addr1 + "," + addr2, "-records", path, "-node", "n01"}, &out)
	if err != nil {
		t.Fatalf("run: %v\noutput: %s", err, out.String())
	}
	if !strings.Contains(out.String(), "routes to shard") {
		t.Errorf("output missing routing line: %q", out.String())
	}
	got1, got2 := srv1.DB().Len(), srv2.DB().Len()
	if got1+got2 != 4 || (got1 != 0 && got2 != 0) {
		t.Errorf("records split %d/%d across shards, want all 4 on one", got1, got2)
	}
}

func TestSendFlagErrors(t *testing.T) {
	var out strings.Builder
	cases := [][]string{
		nil,                           // no target at all
		{"-addr", "x", "-unix", "y"},  // two targets
		{"-addr", "x", "-addrs", "y"}, // two targets again
		{"-addr", "x"},                // no -records
		{"-addr", "x", "-records", "nope"}, // missing file
	}
	for _, args := range cases {
		if err := run(args, &out); err == nil {
			t.Errorf("run(%v) accepted", args)
		}
	}

	empty := writeRecords(t, []eard.JobRecord{})
	if err := run([]string{"-addr", "x", "-records", empty}, &out); err == nil ||
		!strings.Contains(err.Error(), "no records") {
		t.Errorf("empty record file: err = %v", err)
	}
}
