// Command eardsend is the node-side reporting feeder: it reads job
// records (the JSON array format eard.DB saves, as produced by earsim
// and the examples) and streams them to a running eardbd daemon
// through the buffering client — batching, retrying with backoff, and
// spilling to a local journal when the daemon is unreachable. Rerun
// with the same -journal once the daemon is back and the spilled
// batches are replayed exactly once.
//
// Against a sharded cluster, -addrs lists every shard endpoint and the
// feeder routes its node to the owning shard by the same consistent
// hash ring the daemons federate over — the node lands on the same
// shard every client and the load generator would pick.
//
//	eardsend -addr 127.0.0.1:4711 -records jobs.json -node n01
//	eardsend -unix /run/eardbd.sock -records jobs.json -journal n01.journal
//	eardsend -addrs 127.0.0.1:4711,127.0.0.1:4712 -records jobs.json
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"strings"
	"time"

	"goear/internal/eard"
	"goear/internal/eardbd"
	"goear/internal/eardbd/ring"
	"goear/internal/telemetry/trace"
)

// wallClock adapts the real clock to the client's injected interface.
// It lives here, outside internal/, so the library packages stay free
// of wall-clock reads.
type wallClock struct{}

func (wallClock) Now() float64 { return float64(time.Now().UnixNano()) / 1e9 }

func (wallClock) Sleep(sec float64) { time.Sleep(time.Duration(sec * float64(time.Second))) }

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "eardsend:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("eardsend", flag.ContinueOnError)
	addr := fs.String("addr", "", "eardbd TCP address (host:port)")
	addrList := fs.String("addrs", "", "comma-separated shard TCP endpoints; the node routes to its ring owner")
	unix := fs.String("unix", "", "eardbd unix socket path")
	records := fs.String("records", "", "JSON record file to send (eard.DB format)")
	node := fs.String("node", "", "reporting node name (default: first record's node)")
	journalPath := fs.String("journal", "", "spill journal path for offline buffering")
	batch := fs.Int("batch", 64, "records per batch")
	attempts := fs.Int("attempts", 3, "delivery attempts per flush")
	seed := fs.Int64("seed", 1, "backoff jitter seed")
	tracesOut := fs.String("traces-out", "", "write the feed's span trace as JSON lines here ('-' = stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	targets := 0
	for _, t := range []string{*addr, *addrList, *unix} {
		if t != "" {
			targets++
		}
	}
	if targets != 1 {
		return fmt.Errorf("pass exactly one of -addr, -addrs or -unix")
	}
	if *records == "" {
		return fmt.Errorf("pass -records")
	}

	f, err := os.Open(*records)
	if err != nil {
		return err
	}
	var recs []eard.JobRecord
	derr := json.NewDecoder(f).Decode(&recs)
	cerr := f.Close()
	if derr != nil {
		return fmt.Errorf("decode %s: %w", *records, derr)
	}
	if cerr != nil {
		return cerr
	}
	if len(recs) == 0 {
		return fmt.Errorf("%s holds no records", *records)
	}
	if *node == "" {
		*node = recs[0].Node
	}

	journal, err := eardbd.OpenJournal(*journalPath)
	if err != nil {
		return err
	}
	if n := journal.Len(); n > 0 {
		fmt.Fprintf(out, "eardsend: journal holds %d spilled batch(es) to replay\n", n)
	}
	network, target := "tcp", *addr
	switch {
	case *unix != "":
		network, target = "unix", *unix
	case *addrList != "":
		// Ring placement: the same owner every reporting client and the
		// federation pick for this node.
		rg := ring.New(0)
		for _, a := range splitList(*addrList) {
			if err := rg.Add(a); err != nil {
				return err
			}
		}
		owner, ok := rg.Owner(*node)
		if !ok {
			return fmt.Errorf("-addrs lists no endpoints")
		}
		fmt.Fprintf(out, "eardsend: node %s routes to shard %s\n", *node, owner)
		target = owner
	}
	var traceBuf *trace.Buffer
	if *tracesOut != "" {
		traceBuf = trace.NewBuffer(0)
	}
	c, err := eardbd.NewClient(eardbd.ClientConfig{
		Node:         *node,
		Dial:         func() (net.Conn, error) { return net.Dial(network, target) },
		Clock:        wallClock{},
		Jitter:       rand.New(rand.NewSource(*seed)),
		BatchRecords: *batch,
		MaxAttempts:  *attempts,
		Journal:      journal,
		Trace:        traceBuf,
	})
	if err != nil {
		return err
	}

	var firstErr error
	for _, r := range recs {
		if err := c.Enqueue(r); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if err := c.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	st := c.Stats()
	fmt.Fprintf(out, "eardsend: %d enqueued, %d sent in %d batch(es), %d retries\n",
		st.Enqueued, st.RecordsSent, st.BatchesSent, st.Retries)
	if st.RecordsSpilled > 0 || journal.Len() > 0 {
		if *journalPath != "" {
			fmt.Fprintf(out, "eardsend: %d record(s) spilled to %s; rerun with the same -journal to replay\n",
				st.RecordsSpilled, *journalPath)
			if errors.Is(firstErr, eardbd.ErrUnreachable) {
				// Designed degradation: every record is durable in the
				// journal, so an unreachable daemon is not a failure here.
				firstErr = nil
			}
		} else {
			fmt.Fprintf(out, "eardsend: %d record(s) undeliverable and no -journal given; they are lost\n",
				st.RecordsSpilled)
		}
	}
	if traceBuf != nil {
		spans := traceBuf.Canonical()
		if *tracesOut == "-" {
			if err := trace.WriteJSONLines(out, spans); err != nil && firstErr == nil {
				firstErr = err
			}
		} else {
			tf, err := os.Create(*tracesOut)
			if err != nil {
				return err
			}
			werr := trace.WriteJSONLines(tf, spans)
			cerr := tf.Close()
			if werr != nil && firstErr == nil {
				firstErr = werr
			}
			if cerr != nil && firstErr == nil {
				firstErr = cerr
			}
			fmt.Fprintf(out, "eardsend: %d span(s) written to %s\n", len(spans), *tracesOut)
		}
	}
	return firstErr
}

// splitList splits a comma-separated list, dropping empty elements.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
