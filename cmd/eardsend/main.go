// Command eardsend is the node-side reporting feeder: it reads job
// records (the JSON array format eard.DB saves, as produced by earsim
// and the examples) and streams them to a running eardbd daemon
// through the buffering client — batching, retrying with backoff, and
// spilling to a local journal when the daemon is unreachable. Rerun
// with the same -journal once the daemon is back and the spilled
// batches are replayed exactly once.
//
//	eardsend -addr 127.0.0.1:4711 -records jobs.json -node n01
//	eardsend -unix /run/eardbd.sock -records jobs.json -journal n01.journal
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"os"
	"time"

	"goear/internal/eard"
	"goear/internal/eardbd"
)

// wallClock adapts the real clock to the client's injected interface.
// It lives here, outside internal/, so the library packages stay free
// of wall-clock reads.
type wallClock struct{}

func (wallClock) Now() float64 { return float64(time.Now().UnixNano()) / 1e9 }

func (wallClock) Sleep(sec float64) { time.Sleep(time.Duration(sec * float64(time.Second))) }

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "eardsend:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("eardsend", flag.ContinueOnError)
	addr := fs.String("addr", "", "eardbd TCP address (host:port)")
	unix := fs.String("unix", "", "eardbd unix socket path")
	records := fs.String("records", "", "JSON record file to send (eard.DB format)")
	node := fs.String("node", "", "reporting node name (default: first record's node)")
	journalPath := fs.String("journal", "", "spill journal path for offline buffering")
	batch := fs.Int("batch", 64, "records per batch")
	attempts := fs.Int("attempts", 3, "delivery attempts per flush")
	seed := fs.Int64("seed", 1, "backoff jitter seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*addr == "") == (*unix == "") {
		return fmt.Errorf("pass exactly one of -addr or -unix")
	}
	if *records == "" {
		return fmt.Errorf("pass -records")
	}

	f, err := os.Open(*records)
	if err != nil {
		return err
	}
	var recs []eard.JobRecord
	derr := json.NewDecoder(f).Decode(&recs)
	cerr := f.Close()
	if derr != nil {
		return fmt.Errorf("decode %s: %w", *records, derr)
	}
	if cerr != nil {
		return cerr
	}
	if len(recs) == 0 {
		return fmt.Errorf("%s holds no records", *records)
	}
	if *node == "" {
		*node = recs[0].Node
	}

	journal, err := eardbd.OpenJournal(*journalPath)
	if err != nil {
		return err
	}
	if n := journal.Len(); n > 0 {
		fmt.Fprintf(out, "eardsend: journal holds %d spilled batch(es) to replay\n", n)
	}
	network, target := "tcp", *addr
	if *unix != "" {
		network, target = "unix", *unix
	}
	c, err := eardbd.NewClient(eardbd.ClientConfig{
		Node:         *node,
		Dial:         func() (net.Conn, error) { return net.Dial(network, target) },
		Clock:        wallClock{},
		Jitter:       rand.New(rand.NewSource(*seed)),
		BatchRecords: *batch,
		MaxAttempts:  *attempts,
		Journal:      journal,
	})
	if err != nil {
		return err
	}

	var firstErr error
	for _, r := range recs {
		if err := c.Enqueue(r); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if err := c.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	st := c.Stats()
	fmt.Fprintf(out, "eardsend: %d enqueued, %d sent in %d batch(es), %d retries\n",
		st.Enqueued, st.RecordsSent, st.BatchesSent, st.Retries)
	if st.RecordsSpilled > 0 || journal.Len() > 0 {
		if *journalPath != "" {
			fmt.Fprintf(out, "eardsend: %d record(s) spilled to %s; rerun with the same -journal to replay\n",
				st.RecordsSpilled, *journalPath)
			if errors.Is(firstErr, eardbd.ErrUnreachable) {
				// Designed degradation: every record is durable in the
				// journal, so an unreachable daemon is not a failure here.
				firstErr = nil
			}
		} else {
			fmt.Fprintf(out, "eardsend: %d record(s) undeliverable and no -journal given; they are lost\n",
				st.RecordsSpilled)
		}
	}
	return firstErr
}
