// Command earsim runs one catalogue workload on the simulated cluster
// under a chosen energy policy and reports the paper-style metrics,
// optionally comparing against the nominal-frequency baseline and
// appending the run to an accounting database (the eard/eacct flow).
//
// Examples:
//
//	earsim -workload BT-MZ.C -policy min_energy_eufs -compare
//	earsim -workload HPCG -policy min_energy -cpu-th 0.05 -runs 3
//	earsim -workload BT-MZ.C -pin-uncore 1.8
//	earsim -workload GROMACS(I) -policy min_energy_eufs -not-guided
//	earsim -workload HPCG -policy min_energy_eufs -acct jobs.json -job j42
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"

	"goear/internal/earconf"
	"goear/internal/eard"
	"goear/internal/eargm"
	"goear/internal/model"
	"goear/internal/sim"
	"goear/internal/telemetry"
	"goear/internal/units"
	"goear/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "earsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("earsim", flag.ContinueOnError)
	var (
		wl        = fs.String("workload", "BT-MZ.C", "catalogue workload name")
		pol       = fs.String("policy", "none", "energy policy (none, monitoring, min_energy, min_energy_eufs, min_time, min_time_eufs)")
		cpuTh     = fs.Float64("cpu-th", 0.05, "cpu_policy_th: allowed relative time penalty")
		uncTh     = fs.Float64("unc-th", 0.02, "unc_policy_th: allowed CPI/GB/s degradation")
		notGuided = fs.Bool("not-guided", false, "start the uncore search from the maximum instead of the HW selection")
		runs      = fs.Int("runs", 3, "averaged runs (the paper uses 3)")
		seed      = fs.Int64("seed", 1, "noise seed")
		compare   = fs.Bool("compare", false, "also run the nominal baseline and print savings")
		pinCPU    = fs.Int("pin-cpu-pstate", -1, "pin the CPU pstate (disables DVFS)")
		pinUnc    = fs.Float64("pin-uncore", 0, "pin the uncore frequency in GHz (0 = hardware UFS)")
		modelPath = fs.String("model", "", "energy-model JSON from earlearn (default: train in-process)")
		acctPath  = fs.String("acct", "", "accounting database JSON to append the run to")
		jobID     = fs.String("job", "job0", "job id for accounting")
		tracePath = fs.String("trace", "", "write node 0's 1 Hz time series (power, frequencies, CPI) as CSV")
		specPath  = fs.String("spec", "", "JSON workload definition to run instead of a catalogue entry")
		template  = fs.Bool("spec-template", false, "print a starter workload definition and exit")
		powercapW = fs.Float64("powercap", 0, "cluster DC power budget in watts (0 = unmanaged); runs under the global manager")
		confPath  = fs.String("conf", "", "ear.conf-style site configuration providing defaults and policy authorisation")
		telAddr   = fs.String("telemetry", "", "HTTP address serving /metrics and /events for the run's duration")
		metricsTo = fs.String("metrics-out", "", "write the final Prometheus metrics snapshot to this file (- = stdout)")
		eventsTo  = fs.String("events-out", "", "write the final telemetry event log as JSON lines to this file (- = stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	// Telemetry is opt-in: either exposure flag turns the global set on
	// before any simulation objects resolve their instrument handles.
	if *telAddr != "" || *metricsTo != "" || *eventsTo != "" {
		set := telemetry.Enable()
		if *telAddr != "" {
			ln, err := net.Listen("tcp", *telAddr)
			if err != nil {
				return err
			}
			defer func() { _ = ln.Close() }()
			fmt.Fprintf(out, "telemetry: serving http://%s/metrics for the run\n", ln.Addr())
			// The probe endpoints make a scraped run look like the
			// daemons: alive while serving, ready while the simulation
			// is still producing samples.
			health := telemetry.NewHealth()
			health.Register(func() telemetry.Check {
				return telemetry.Check{Name: "run", OK: true, Detail: "simulation running"}
			})
			mux := http.NewServeMux()
			mux.Handle("/", set.Handler())
			mux.Handle("/healthz", health.Healthz())
			mux.Handle("/readyz", health.Readyz())
			go func() { _ = http.Serve(ln, mux) }()
		}
		defer func() {
			if err := dumpTelemetry(set, *metricsTo, *eventsTo, out); err != nil {
				fmt.Fprintln(os.Stderr, "earsim: telemetry dump:", err)
			}
		}()
	}

	conf := earconf.Default()
	if *confPath != "" {
		f, err := os.Open(*confPath)
		if err != nil {
			return err
		}
		conf, err = earconf.Parse(f)
		f.Close()
		if err != nil {
			return err
		}
		// Flags left at their defaults inherit the site configuration.
		flagSet := map[string]bool{}
		fs.Visit(func(f *flag.Flag) { flagSet[f.Name] = true })
		if !flagSet["policy"] {
			*pol = conf.DefaultPolicy
		}
		if !flagSet["cpu-th"] {
			*cpuTh = conf.DefaultCPUPolicyTh
		}
		if !flagSet["unc-th"] {
			*uncTh = conf.DefaultUncPolicyTh
		}
		if !flagSet["powercap"] && conf.ClusterPowerBudgetW > 0 {
			*powercapW = conf.ClusterPowerBudgetW
		}
	}
	if *pol != "none" && *pol != "" && !conf.Authorized(*pol) {
		return fmt.Errorf("policy %q not authorised by site configuration (allowed: %v)",
			*pol, conf.AuthorizedPolicies)
	}

	if *template {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(workload.Template())
	}

	var spec workload.Spec
	var err error
	if *specPath != "" {
		f, ferr := os.Open(*specPath)
		if ferr != nil {
			return ferr
		}
		spec, err = workload.LoadSpec(f)
		f.Close()
	} else {
		spec, err = workload.Lookup(*wl)
	}
	if err != nil {
		return err
	}
	cal, err := spec.Calibrate()
	if err != nil {
		return err
	}

	opt := sim.Options{
		Policy:       *pol,
		CPUTh:        sim.F(*cpuTh),
		UncTh:        sim.F(*uncTh),
		HWGuidedOff:  *notGuided,
		Seed:         *seed,
		Trace:        *tracePath != "",
		MinWindowSec: conf.MinSignatureWindowSec,
		SigChangeTh:  conf.SignatureChangeTh,
		DecisionLog:  telemetry.Enabled(),
	}
	if *pinCPU >= 0 {
		opt.FixedCPUPstate = pinCPU
	}
	if *pinUnc > 0 {
		r := units.Freq(*pinUnc * 1e9).Ratio(100 * units.MHz)
		opt.FixedUncoreRatio = &r
	}
	if *pol != "none" && *pol != "" {
		m, err := loadOrTrain(*modelPath, cal.Platform)
		if err != nil {
			return err
		}
		opt.Model = m
	}

	var res sim.Result
	if *powercapW > 0 {
		gm, err := eargm.New(eargm.Config{BudgetW: *powercapW, MaxCapPstate: 10})
		if err != nil {
			return err
		}
		res, err = sim.RunCoordinated(cal, opt, gm)
		if err != nil {
			return err
		}
		printResult(out, "run (powercapped)", res)
		st := gm.Stats()
		fmt.Fprintf(out, "  powercap   %9.2f W budget, peak %.2f W, over budget %.1f%% of intervals, final cap p%d\n",
			*powercapW, st.PeakW, st.OverBudgetPct, st.FinalCap)
	} else {
		res, err = sim.RunAveraged(cal, opt, *runs)
		if err != nil {
			return err
		}
		printResult(out, "run", res)
	}

	// Feed the run's policy decisions into the global event recorder so
	// /events and -events-out carry them.
	if set := telemetry.Default(); set != nil {
		res.RecordDecisions(set.Rec())
	}

	if *compare {
		base, err := sim.RunAveraged(cal, sim.Options{Policy: "none", Seed: 100}, *runs)
		if err != nil {
			return err
		}
		printResult(out, "baseline", base)
		fmt.Fprintf(out, "\nvs nominal baseline:\n")
		fmt.Fprintf(out, "  time penalty:  %+.2f%%\n", units.PercentChange(base.TimeSec, res.TimeSec))
		fmt.Fprintf(out, "  power saving:  %+.2f%% (DC)  %+.2f%% (RAPL PCK)\n",
			-units.PercentChange(base.AvgPowerW, res.AvgPowerW),
			-units.PercentChange(base.AvgPkgPowerW, res.AvgPkgPowerW))
		fmt.Fprintf(out, "  energy saving: %+.2f%%\n", -units.PercentChange(base.EnergyJ, res.EnergyJ))
	}

	if *acctPath != "" {
		if err := appendAccounting(*acctPath, *jobID, res); err != nil {
			return err
		}
		fmt.Fprintf(out, "\naccounting: recorded %d node(s) under job %s in %s\n",
			len(res.Nodes), *jobID, *acctPath)
	}
	if *tracePath != "" {
		if err := writeTrace(*tracePath, res.Nodes[0].Trace); err != nil {
			return err
		}
		fmt.Fprintf(out, "\ntrace: %d samples written to %s\n",
			len(res.Nodes[0].Trace), *tracePath)
	}
	return nil
}

// dumpTelemetry writes the final metrics and event snapshots to the
// requested sinks ("-" = the command's own output stream).
func dumpTelemetry(set *telemetry.Set, metricsTo, eventsTo string, out io.Writer) error {
	sink := func(path string, write func(io.Writer) error) error {
		if path == "" {
			return nil
		}
		if path == "-" {
			return write(out)
		}
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		werr := write(f)
		cerr := f.Close()
		if werr != nil {
			return werr
		}
		return cerr
	}
	if err := sink(metricsTo, set.Reg().WritePrometheus); err != nil {
		return err
	}
	return sink(eventsTo, set.Rec().WriteJSONLines)
}

// writeTrace dumps a node time series as CSV for plotting.
func writeTrace(path string, trace []sim.TracePoint) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := fmt.Fprintln(f, "time_s,power_w,cpu_ghz,imc_ghz,cpi,gbs,cpu_pstate,unc_max_ratio"); err != nil {
		return err
	}
	for _, p := range trace {
		if _, err := fmt.Fprintf(f, "%.2f,%.2f,%.3f,%.3f,%.4f,%.3f,%d,%d\n",
			p.TimeSec, p.PowerW, p.CPUGHz, p.IMCGHz, p.CPI, p.GBs, p.CPUPstate, p.UncMax); err != nil {
			return err
		}
	}
	return nil
}

func loadOrTrain(path string, pl workload.Platform) (*model.Model, error) {
	if path == "" {
		return model.TrainForCPU(pl.Machine, pl.Power)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m model.Model
	if err := m.UnmarshalJSON(b); err != nil {
		return nil, fmt.Errorf("parsing model %s: %w", path, err)
	}
	return &m, nil
}

func printResult(out io.Writer, label string, r sim.Result) {
	fmt.Fprintf(out, "%s: %s under %s on %d node(s)\n", label, r.Workload, r.Policy, len(r.Nodes))
	fmt.Fprintf(out, "  time       %9.2f s\n", r.TimeSec)
	fmt.Fprintf(out, "  DC power   %9.2f W   (RAPL PCK %.2f W)\n", r.AvgPowerW, r.AvgPkgPowerW)
	fmt.Fprintf(out, "  energy     %9.0f J per node\n", r.EnergyJ)
	fmt.Fprintf(out, "  avg CPU    %9.2f GHz\n", r.AvgCPUGHz)
	fmt.Fprintf(out, "  avg IMC    %9.2f GHz\n", r.AvgIMCGHz)
	fmt.Fprintf(out, "  CPI %.3f   GB/s %.2f\n", r.AvgCPI, r.AvgGBs)
}

func appendAccounting(path, jobID string, r sim.Result) error {
	db := eard.NewDB()
	if f, err := os.Open(path); err == nil {
		err = db.Load(f)
		f.Close()
		if err != nil {
			return err
		}
	}
	for i, n := range r.Nodes {
		rec := eard.JobRecord{
			JobID: jobID, StepID: "0", Node: fmt.Sprintf("node%03d", i),
			App: r.Workload, Policy: r.Policy,
			TimeSec: n.TimeSec, EnergyJ: n.EnergyJ, AvgPower: n.AvgPowerW,
			AvgCPU: n.AvgCPUGHz, AvgIMC: n.AvgIMCGHz, AvgCPI: n.AvgCPI, AvgGBs: n.AvgGBs,
		}
		if err := db.Insert(rec); err != nil {
			return err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return db.Save(f)
}
