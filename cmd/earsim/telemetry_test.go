package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestTelemetryDump runs a policy workload with telemetry on and
// checks the final metrics and event snapshots: simulator and policy
// families must be populated and every policy decision logged.
func TestTelemetryDump(t *testing.T) {
	dir := t.TempDir()
	mPath := filepath.Join(dir, "metrics.prom")
	ePath := filepath.Join(dir, "events.jsonl")
	var b strings.Builder
	err := run([]string{
		"-workload", "BT-MZ.C", "-policy", "min_energy_eufs", "-runs", "1",
		"-metrics-out", mPath, "-events-out", ePath,
	}, &b)
	if err != nil {
		t.Fatal(err)
	}

	metrics, err := os.ReadFile(mPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# TYPE goear_sim_steps_total counter",
		"goear_sim_node_runs_total",
		`goear_policy_decisions_total{policy="min_energy_eufs",state="ready"}`,
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("metrics snapshot missing %q", want)
		}
	}

	events, err := os.ReadFile(ePath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(events), `"kind":"policy.decision"`) ||
		!strings.Contains(string(events), `"policy":"min_energy_eufs"`) {
		t.Errorf("event log missing policy decisions:\n%.400s", events)
	}
}

// TestTelemetryHTTP serves the run's telemetry over HTTP and checks
// the bound address is announced.
func TestTelemetryHTTP(t *testing.T) {
	var b strings.Builder
	err := run([]string{
		"-workload", "DGEMM", "-runs", "1", "-telemetry", "127.0.0.1:0",
	}, &b)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "telemetry: serving http://") {
		t.Errorf("output missing telemetry address:\n%s", b.String())
	}
}
