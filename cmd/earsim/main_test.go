package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"goear/internal/eard"
)

func TestBaselineRun(t *testing.T) {
	var b strings.Builder
	err := run([]string{"-workload", "BT-MZ.C", "-runs", "1"}, &b)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"BT-MZ.C under none", "DC power", "avg IMC"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestPolicyRunWithCompare(t *testing.T) {
	var b strings.Builder
	err := run([]string{
		"-workload", "BT-MZ.C", "-policy", "min_energy_eufs",
		"-runs", "1", "-compare",
	}, &b)
	if err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"vs nominal baseline", "energy saving", "RAPL PCK"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestPinnedUncore(t *testing.T) {
	var b strings.Builder
	err := run([]string{
		"-workload", "BT-MZ.C", "-pin-uncore", "1.5", "-pin-cpu-pstate", "1", "-runs", "1",
	}, &b)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "1.49 GHz") && !strings.Contains(b.String(), "1.50 GHz") {
		t.Errorf("pinned IMC not reflected:\n%s", b.String())
	}
}

func TestErrors(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-workload", "nope"}, &b); err == nil {
		t.Error("expected error for unknown workload")
	}
	if err := run([]string{"-workload", "BT-MZ.C", "-policy", "bogus", "-runs", "1"}, &b); err == nil {
		t.Error("expected error for unknown policy")
	}
	if err := run([]string{"-model", "/does/not/exist", "-policy", "min_energy"}, &b); err == nil {
		t.Error("expected error for missing model file")
	}
}

func TestAccountingFlow(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "jobs.json")
	var b strings.Builder
	err := run([]string{
		"-workload", "BT-MZ.C", "-runs", "1", "-acct", path, "-job", "j7",
	}, &b)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	db := eard.NewDB()
	if err := db.Load(f); err != nil {
		t.Fatal(err)
	}
	sum, err := db.Summarize("j7", "0")
	if err != nil {
		t.Fatal(err)
	}
	if sum.Nodes != 1 || sum.EnergyJ <= 0 {
		t.Errorf("accounting summary = %+v", sum)
	}
	// Appending a second job keeps the first.
	if err := run([]string{
		"-workload", "BT-MZ.C", "-runs", "1", "-acct", path, "-job", "j8",
	}, &b); err != nil {
		t.Fatal(err)
	}
	db2 := eard.NewDB()
	f2, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f2.Close()
	if err := db2.Load(f2); err != nil {
		t.Fatal(err)
	}
	if len(db2.Jobs()) != 2 {
		t.Errorf("jobs = %v, want 2", db2.Jobs())
	}
}

func TestTraceCSV(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.csv")
	var b strings.Builder
	err := run([]string{
		"-workload", "BT-MZ.C", "-policy", "min_energy_eufs", "-runs", "1", "-trace", path,
	}, &b)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < 100 {
		t.Fatalf("trace lines = %d, want ~145", len(lines))
	}
	if !strings.HasPrefix(lines[0], "time_s,power_w,cpu_ghz,imc_ghz") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.Contains(b.String(), "trace:") {
		t.Error("trace confirmation missing from output")
	}
}

func TestSpecTemplateAndCustomSpec(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-spec-template"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"hw_uncore"`) {
		t.Errorf("template missing curve: %s", b.String())
	}
	// The emitted template must run as a custom spec.
	dir := t.TempDir()
	path := filepath.Join(dir, "spec.json")
	if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	var b2 strings.Builder
	if err := run([]string{"-spec", path, "-runs", "1"}, &b2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b2.String(), "my-app under none on 2 node(s)") {
		t.Errorf("custom spec output: %s", b2.String())
	}
	// Missing file errors.
	if err := run([]string{"-spec", filepath.Join(dir, "missing.json")}, &b2); err == nil {
		t.Error("expected error for missing spec file")
	}
}

func TestPowercapFlag(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-workload", "BT-MZ.C", "-powercap", "300", "-runs", "1"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "powercapped") || !strings.Contains(out, "final cap p") {
		t.Errorf("powercap output missing: %s", out)
	}
}

func TestSiteConfiguration(t *testing.T) {
	dir := t.TempDir()
	conf := filepath.Join(dir, "ear.conf")
	if err := os.WriteFile(conf, []byte(
		"DefaultPolicy=min_energy_eufs\nDefaultCPUPolicyTh=0.03\nAuthorizedPolicies=monitoring,min_energy_eufs\n",
	), 0o644); err != nil {
		t.Fatal(err)
	}
	// The site default policy applies when no -policy flag is given.
	var b strings.Builder
	if err := run([]string{"-workload", "BT-MZ.C", "-runs", "1", "-conf", conf}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "under min_energy_eufs") {
		t.Errorf("site default policy not applied:\n%s", b.String())
	}
	// Unauthorised policies are rejected.
	if err := run([]string{"-workload", "BT-MZ.C", "-runs", "1", "-conf", conf, "-policy", "min_time"}, &b); err == nil {
		t.Error("expected authorisation error")
	}
	// Explicit flags still win over site defaults when authorised.
	var b2 strings.Builder
	if err := run([]string{"-workload", "BT-MZ.C", "-runs", "1", "-conf", conf, "-policy", "monitoring"}, &b2); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b2.String(), "under monitoring") {
		t.Errorf("explicit policy lost:\n%s", b2.String())
	}
	// A broken file errors.
	bad := filepath.Join(dir, "bad.conf")
	if err := os.WriteFile(bad, []byte("Nope=1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-conf", bad}, &b2); err == nil {
		t.Error("expected parse error")
	}
}
