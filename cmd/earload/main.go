// Command earload drives cluster-scale synthetic load through the
// EARDBD reporting tier: tens of thousands of simulated node
// reporters, each a real buffering client speaking the real wire
// protocol, placed over a shard fleet by consistent hashing. By
// default the shards are in-process daemons, which enables fault
// injection — kill a shard mid-burst, restart it later, and watch the
// spill journals drain with exactly-once replay; with -addrs the same
// burst targets externally launched eardbd daemons.
//
// With -sim the command instead drives the compute-side simulator: a
// coordinated cluster campaign of a catalogue workload on the batch
// stepping kernels (macro-stepped by default; -exact opts out).
//
//	earload -nodes 10000 -shards 4 -snapshot -
//	earload -nodes 2000 -shards 3 -kill shard1@500 -restart shard1@1500
//	earload -nodes 500 -addrs 127.0.0.1:4711,127.0.0.1:4712
//	earload -sim BT-MZ.C -sim-nodes 4096 -sim-budget 1.1e6
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"goear/internal/accounting"
	"goear/internal/eardbd"
	"goear/internal/eardbd/fed"
	"goear/internal/loadgen"
	"goear/internal/telemetry"
	"goear/internal/telemetry/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "earload:", err)
		os.Exit(1)
	}
}

// faultSpec is a parsed "<shard>@<nodes-done>" trigger.
type faultSpec struct {
	shard string
	after int64
}

// parseFaultSpec parses "<shard>@<n>": fire on shard once n node
// reporters have completed.
func parseFaultSpec(s string) (faultSpec, error) {
	at := strings.LastIndex(s, "@")
	if at <= 0 || at == len(s)-1 {
		return faultSpec{}, fmt.Errorf("fault spec %q is not <shard>@<nodes-done>", s)
	}
	n, err := strconv.ParseInt(s[at+1:], 10, 64)
	if err != nil || n < 1 {
		return faultSpec{}, fmt.Errorf("fault spec %q needs a positive node count", s)
	}
	return faultSpec{shard: s[:at], after: n}, nil
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("earload", flag.ContinueOnError)
	nodes := fs.Int("nodes", 1000, "simulated node reporters to drive")
	records := fs.Int("records", 10, "job records per node")
	shards := fs.Int("shards", 4, "in-process shard count (ignored with -addrs)")
	addrs := fs.String("addrs", "", "comma-separated external eardbd TCP endpoints (disables in-process shards)")
	batch := fs.Int("batch", 4, "records per client batch")
	workers := fs.Int("workers", 32, "concurrent node reporters")
	seed := fs.Int64("seed", 1, "workload seed (record content and retry jitter)")
	acct := fs.Int("acct", 0, "per-job accounting windows per node (0 disables job traffic)")
	queries := fs.Int("queries", 0, "concurrent workers hammering the accounting query API while ingest runs")
	kill := fs.String("kill", "", "kill spec <shard>@<nodes-done> (in-process only)")
	restart := fs.String("restart", "", "restart spec <shard>@<nodes-done> (in-process only)")
	drainPasses := fs.Int("drain", 5, "max journal drain passes after the burst")
	maxFrame := fs.Int("max-frame", 64<<20, "frame payload cap in bytes (snapshot record dumps scale with node count)")
	snapshotPath := fs.String("snapshot", "", "write the federation root snapshot here ('-' = stdout)")
	metrics := fs.Bool("metrics", false, "dump the telemetry registry after the run")
	traceOn := fs.Bool("trace", false, "record span traces across the burst (clients, shards and root share one buffer)")
	tracesOut := fs.String("traces-out", "", "write the canonical span export as JSON lines here ('-' = stdout); implies -trace")
	simWl := fs.String("sim", "", "run a coordinated cluster simulation campaign of this catalogue workload instead of an ingest burst")
	simNodes := fs.Int("sim-nodes", 1024, "simulated cluster size for -sim")
	simShards := fs.Int("sim-shards", 0, "batch stepping kernels for -sim (0 = derive from -workers)")
	simBudget := fs.Float64("sim-budget", 0, "site power budget in watts for -sim (0 = uncapped)")
	simPolicy := fs.String("sim-policy", "none", "EARL policy for -sim")
	exact := fs.Bool("exact", false, "with -sim: disable the macro-step fast-forward (slower, per-tick integration)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *simWl != "" {
		r, err := loadgen.RunSim(loadgen.SimConfig{
			Workload: *simWl,
			Nodes:    *simNodes,
			Policy:   *simPolicy,
			Seed:     *seed,
			Workers:  *workers,
			Shards:   *simShards,
			Exact:    *exact,
			BudgetW:  *simBudget,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "earload: sim %s: %d nodes, %.1fs simulated, %.1fW avg node power, %.0fJ mean node energy, %.2f GHz avg CPU, %.2f GHz avg IMC\n",
			*simWl, len(r.Nodes), r.TimeSec, r.AvgPowerW, r.EnergyJ, r.AvgCPUGHz, r.AvgIMCGHz)
		return nil
	}
	if *exact {
		return fmt.Errorf("-exact needs -sim")
	}

	set := telemetry.NewSet()
	var traceBuf *trace.Buffer
	if *traceOn || *tracesOut != "" {
		// Size the ring to the burst: a delivered batch emits about
		// ten spans end to end (client pair, server tree, fan-out),
		// so this keeps every span of a full run without paying for
		// a fixed worst-case ring on small bursts.
		batches := *nodes * ((*records+*batch-1) / *batch + (*acct+*batch-1) / *batch + 1)
		cap := batches * 10
		if cap < trace.DefaultBufferCap {
			cap = trace.DefaultBufferCap
		}
		if cap > 1<<18 {
			cap = 1 << 18
		}
		traceBuf = trace.NewBuffer(cap)
	}
	// RTTs and latency histograms ride a monotonic wall clock; the
	// span tree and the workload stay deterministic regardless.
	start := time.Now()
	wallSec := func() float64 { return time.Since(start).Seconds() }
	g, err := loadgen.New(loadgen.Config{
		Nodes:          *nodes,
		RecordsPerNode: *records,
		AcctPerNode:    *acct,
		BatchRecords:   *batch,
		Workers:        *workers,
		Seed:           *seed,
		Telemetry:      set,
		Trace:          traceBuf,
		RTTNow:         wallSec,
	})
	if err != nil {
		return err
	}

	var dialFor func(node string) func() (net.Conn, error)
	var root func() (*fed.Root, error)
	hooks := loadgen.Hooks{}
	postBurst := func() {}
	if *addrs != "" {
		if *kill != "" || *restart != "" {
			return fmt.Errorf("fault injection needs in-process shards, not -addrs")
		}
		eps, err := loadgen.NewEndpoints(splitList(*addrs), func(addr string) (net.Conn, error) {
			return net.Dial("tcp", addr)
		})
		if err != nil {
			return err
		}
		eps.MaxFramePayload = *maxFrame
		eps.Telemetry = set
		eps.Trace = traceBuf
		dialFor, root = eps.DialFor, eps.Root
	} else {
		cluster, err := loadgen.NewCluster(*shards, eardbd.Config{Telemetry: set, MaxFramePayload: *maxFrame, Trace: traceBuf})
		if err != nil {
			return err
		}
		dialFor, root = cluster.DialFor, cluster.Root
		if *restart != "" && *kill == "" {
			return fmt.Errorf("-restart without -kill")
		}
		if *kill != "" {
			killSpec, err := parseFaultSpec(*kill)
			if err != nil {
				return err
			}
			restartSpec := faultSpec{shard: killSpec.shard, after: int64(*nodes) + 1}
			if *restart != "" {
				if restartSpec, err = parseFaultSpec(*restart); err != nil {
					return err
				}
				if restartSpec.after <= killSpec.after {
					return fmt.Errorf("-restart must fire after -kill (%d <= %d)", restartSpec.after, killSpec.after)
				}
			}
			var done int64
			var killing, killDone, restarted atomic.Bool
			hooks.AfterNode = func(i int) {
				n := atomic.AddInt64(&done, 1)
				if n >= killSpec.after && killing.CompareAndSwap(false, true) {
					if err := cluster.Kill(killSpec.shard); err != nil {
						fmt.Fprintln(out, "earload: kill:", err)
						return
					}
					fmt.Fprintf(out, "earload: killed %s after %d nodes\n", killSpec.shard, n)
					killDone.Store(true)
				}
				if n >= restartSpec.after && killDone.Load() && restarted.CompareAndSwap(false, true) {
					if err := cluster.Restart(restartSpec.shard); err != nil {
						fmt.Fprintln(out, "earload: restart:", err)
						return
					}
					fmt.Fprintf(out, "earload: restarted %s after %d nodes\n", restartSpec.shard, n)
				}
			}
			// The burst can end before the restart threshold; bring the
			// shard back before draining so spilled batches can land.
			postBurst = func() {
				if killDone.Load() && restarted.CompareAndSwap(false, true) {
					if err := cluster.Restart(restartSpec.shard); err != nil {
						fmt.Fprintln(out, "earload: restart:", err)
						return
					}
					fmt.Fprintf(out, "earload: restarted %s post-burst\n", restartSpec.shard)
				}
			}
		}
	}

	// The query hammer pages the accounting API through a federation
	// root concurrently with ingest, exercising the snapshot cache
	// under constant invalidation. Errors are expected around fault
	// injection (a severed shard fails the fan-out) and are counted,
	// not fatal.
	var qPages, qErrs uint64
	var qMu sync.Mutex
	var qRTTs []float64
	stopQueries := func() {}
	if *queries > 0 {
		qr, err := root()
		if err != nil {
			return err
		}
		stop := make(chan struct{})
		var wg sync.WaitGroup
		for w := 0; w < *queries; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				q := accounting.Query{Limit: 200}
				for {
					select {
					case <-stop:
						return
					default:
					}
					t0 := wallSec()
					page, err := qr.AcctQuery(q)
					if err != nil {
						atomic.AddUint64(&qErrs, 1)
						q = accounting.Query{Limit: 200}
						continue
					}
					qMu.Lock()
					qRTTs = append(qRTTs, wallSec()-t0)
					qMu.Unlock()
					atomic.AddUint64(&qPages, 1)
					if page.Next == "" {
						q = accounting.Query{Limit: 200}
					} else {
						q.Cursor = page.Next
					}
				}
			}()
		}
		stopQueries = func() {
			close(stop)
			wg.Wait()
		}
	}

	res, err := g.Run(dialFor, hooks)
	if err != nil {
		stopQueries()
		return err
	}
	postBurst()
	left, err := g.Drain(dialFor, *drainPasses)
	stopQueries()
	if err != nil {
		return err
	}
	st := g.Stats()
	fmt.Fprintf(out, "earload: %d nodes, %d records enqueued, %d sent in %d batches, %d spilled, %d replayed, %d retries, backlog %d\n",
		res.Nodes, res.RecordsEnqueued, st.RecordsSent, st.BatchesSent, st.BatchesSpilled, st.BatchesReplayed, st.Retries, left)
	// Client-observed round trips: the latency the reporting tier
	// actually delivered, printed and recorded as a telemetry event so
	// -metrics scrapes and event dumps carry it too.
	if n, p50, p95, p99 := g.RTTPercentiles(); n > 0 {
		fmt.Fprintf(out, "earload: batch rtt: %d acked, p50 %s, p95 %s, p99 %s\n",
			n, fmtSec(p50), fmtSec(p95), fmtSec(p99))
		set.Rec().Record(telemetry.Event{
			TimeSec: wallSec(), Kind: "earload.rtt", Src: "earload",
			Str: map[string]string{"op": "batch"},
			Num: map[string]float64{"count": float64(n), "p50_s": p50, "p95_s": p95, "p99_s": p99},
		})
	}
	if *queries > 0 {
		fmt.Fprintf(out, "earload: query hammer: %d workers, %d pages, %d errors\n",
			*queries, atomic.LoadUint64(&qPages), atomic.LoadUint64(&qErrs))
		if n, p50, p95, p99 := percentiles(qRTTs); n > 0 {
			fmt.Fprintf(out, "earload: query rtt: %d pages, p50 %s, p95 %s, p99 %s\n",
				n, fmtSec(p50), fmtSec(p95), fmtSec(p99))
			set.Rec().Record(telemetry.Event{
				TimeSec: wallSec(), Kind: "earload.rtt", Src: "earload",
				Str: map[string]string{"op": "query"},
				Num: map[string]float64{"count": float64(n), "p50_s": p50, "p95_s": p95, "p99_s": p99},
			})
		}
	}
	if res.NodeErrors > 0 {
		return fmt.Errorf("%d node reporters failed", res.NodeErrors)
	}

	if *snapshotPath != "" {
		r, err := root()
		if err != nil {
			return err
		}
		blob, err := loadgen.Snapshot(r)
		if err != nil {
			return err
		}
		if *snapshotPath == "-" {
			fmt.Fprintf(out, "%s\n", blob)
		} else if err := os.WriteFile(*snapshotPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
	}
	if *metrics {
		if err := set.Reg().WritePrometheus(out); err != nil {
			return err
		}
	}
	if traceBuf != nil {
		fmt.Fprintf(out, "earload: %d spans recorded (%d dropped)\n", traceBuf.Len(), traceBuf.Dropped())
		if *tracesOut != "" {
			spans := traceBuf.Canonical()
			if *tracesOut == "-" {
				if err := trace.WriteJSONLines(out, spans); err != nil {
					return err
				}
			} else {
				f, err := os.Create(*tracesOut)
				if err != nil {
					return err
				}
				werr := trace.WriteJSONLines(f, spans)
				cerr := f.Close()
				if werr != nil {
					return werr
				}
				if cerr != nil {
					return cerr
				}
			}
		}
	}
	if left > 0 {
		return fmt.Errorf("%d spilled batches left undrained", left)
	}
	return nil
}

// percentiles summarises samples with nearest-rank p50/p95/p99.
func percentiles(samples []float64) (n int, p50, p95, p99 float64) {
	if len(samples) == 0 {
		return 0, 0, 0, 0
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	rank := func(q float64) float64 {
		i := int(q*float64(len(s))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(s) {
			i = len(s) - 1
		}
		return s[i]
	}
	return len(s), rank(0.50), rank(0.95), rank(0.99)
}

// fmtSec renders a duration in seconds at microsecond resolution.
func fmtSec(sec float64) string {
	return time.Duration(sec * float64(time.Second)).Round(time.Microsecond).String()
}

// splitList splits a comma-separated list, dropping empty elements.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
