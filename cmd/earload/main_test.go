package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func readFile(path string) (string, error) {
	blob, err := os.ReadFile(path)
	return string(blob), err
}

func TestParseFaultSpec(t *testing.T) {
	cases := []struct {
		in      string
		shard   string
		after   int64
		wantErr bool
	}{
		{in: "shard1@500", shard: "shard1", after: 500},
		{in: "s@1", shard: "s", after: 1},
		{in: "a@b@30", shard: "a@b", after: 30},
		{in: "shard1", wantErr: true},
		{in: "@500", wantErr: true},
		{in: "shard1@", wantErr: true},
		{in: "shard1@0", wantErr: true},
		{in: "shard1@-3", wantErr: true},
		{in: "shard1@x", wantErr: true},
		{in: "", wantErr: true},
	}
	for _, tc := range cases {
		got, err := parseFaultSpec(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("parseFaultSpec(%q) accepted", tc.in)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseFaultSpec(%q): %v", tc.in, err)
			continue
		}
		if got.shard != tc.shard || got.after != tc.after {
			t.Errorf("parseFaultSpec(%q) = %+v", tc.in, got)
		}
	}
}

func TestEarloadFlagErrors(t *testing.T) {
	for _, args := range [][]string{
		{"-nodes", "0"},
		{"-nodes", "10", "-restart", "shard1@5"},
		{"-nodes", "10", "-kill", "bogus"},
		{"-nodes", "10", "-kill", "shard0@5", "-restart", "shard0@3"},
		{"-nodes", "10", "-addrs", "127.0.0.1:1", "-kill", "shard0@5"},
		{"-exact"},
		{"-sim", "no-such-kernel"},
	} {
		var out strings.Builder
		if err := run(args, &out); err == nil {
			t.Errorf("run(%v) succeeded", args)
		}
	}
}

// TestEarloadSimCampaign drives the -sim mode: a coordinated batch-
// stepped cluster campaign whose one-line summary must be identical at
// any shard count.
func TestEarloadSimCampaign(t *testing.T) {
	simOut := func(extra ...string) string {
		t.Helper()
		args := append([]string{"-sim", "BT-MZ.C", "-sim-nodes", "6", "-seed", "2"}, extra...)
		var out strings.Builder
		if err := run(args, &out); err != nil {
			t.Fatalf("run(%v): %v", args, err)
		}
		return out.String()
	}
	ref := simOut()
	if !strings.Contains(ref, "sim BT-MZ.C: 6 nodes") {
		t.Fatalf("unexpected summary: %q", ref)
	}
	for _, extra := range [][]string{
		{"-sim-shards", "3"},
		{"-sim-shards", "2", "-workers", "4"},
	} {
		if got := simOut(extra...); got != ref {
			t.Errorf("%v: summary differs\n got: %s\nwant: %s", extra, got, ref)
		}
	}
}

// snapshotOf runs a burst with the given shard count and returns the
// root snapshot text.
func snapshotOf(t *testing.T, nodes, shards, records int, extra ...string) string {
	t.Helper()
	path := t.TempDir() + "/snap.json"
	args := append([]string{
		"-nodes", fmt.Sprint(nodes), "-shards", fmt.Sprint(shards),
		"-records", fmt.Sprint(records), "-snapshot", path,
	}, extra...)
	var out strings.Builder
	if err := run(args, &out); err != nil {
		t.Fatalf("run(%v): %v\n%s", args, err, out.String())
	}
	blob, err := readFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

func TestEarloadSnapshotIdenticalAcrossShardCounts(t *testing.T) {
	ref := snapshotOf(t, 60, 1, 10)
	for _, shards := range []int{2, 4} {
		if got := snapshotOf(t, 60, shards, 10); got != ref {
			t.Fatalf("shards=%d snapshot differs from single-shard run", shards)
		}
	}
}

// TestEarloadScale is the acceptance burst: at least 10k nodes over
// at least 4 shards, byte-identical to the single-shard run.
func TestEarloadScale(t *testing.T) {
	if testing.Short() {
		t.Skip("10k-node burst skipped in -short mode")
	}
	const nodes, records = 10000, 3
	ref := snapshotOf(t, nodes, 1, records)
	got := snapshotOf(t, nodes, 4, records)
	if got != ref {
		t.Fatal("4-shard 10k-node snapshot differs from single-shard run")
	}
	if !strings.Contains(ref, `"nodes": 10000`) {
		t.Fatalf("snapshot does not cover 10000 nodes")
	}
}

func TestEarloadFaultInjection(t *testing.T) {
	clean := snapshotOf(t, 80, 3, 10, "-seed", "11")
	faulted := snapshotOf(t, 80, 3, 10, "-seed", "11",
		"-kill", "shard1@10", "-restart", "shard1@60")
	if faulted != clean {
		t.Fatal("faulted snapshot differs from clean run")
	}

	var out strings.Builder
	err := run([]string{
		"-nodes", "80", "-shards", "3", "-seed", "11",
		"-kill", "shard1@10", "-restart", "shard1@60", "-metrics",
	}, &out)
	if err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
	text := out.String()
	for _, want := range []string{
		"killed shard1", "restarted shard1",
		"goear_loadgen_nodes_total 80",
		"goear_loadgen_journal_backlog_batches 0",
		"goear_eardbd_client_batches_spilled_total",
		"goear_eardbd_client_batches_replayed_total",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}

func TestEarloadKillWithoutRestartRecovers(t *testing.T) {
	// No -restart: the shard must come back post-burst and the
	// backlog must still drain to zero.
	var out strings.Builder
	err := run([]string{
		"-nodes", "40", "-shards", "2", "-kill", "shard0@5",
	}, &out)
	if err != nil {
		t.Fatalf("%v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "backlog 0") {
		t.Fatalf("backlog not drained:\n%s", out.String())
	}
}

// TestEarloadTraceExport runs traced bursts: the RTT and span summary
// lines must print, and the canonical span export must be
// byte-identical across shard counts — the tool-level face of the
// trace determinism contract.
func TestEarloadTraceExport(t *testing.T) {
	exportOf := func(shards int) string {
		t.Helper()
		path := filepath.Join(t.TempDir(), "traces.jsonl")
		var out strings.Builder
		err := run([]string{
			"-nodes", "40", "-shards", fmt.Sprint(shards), "-records", "6",
			"-traces-out", path,
		}, &out)
		if err != nil {
			t.Fatalf("%v\n%s", err, out.String())
		}
		for _, want := range []string{"spans recorded (0 dropped)", "batch rtt:", "p99"} {
			if !strings.Contains(out.String(), want) {
				t.Errorf("shards=%d output missing %q:\n%s", shards, want, out.String())
			}
		}
		blob, err := readFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return blob
	}
	ref := exportOf(1)
	for _, want := range []string{`"kind":"client.batch"`, `"kind":"client.send"`, `"kind":"server.batch"`, `"kind":"server.store"`} {
		if !strings.Contains(ref, want) {
			t.Errorf("trace export missing %s", want)
		}
	}
	if got := exportOf(2); got != ref {
		t.Fatal("2-shard trace export differs from single-shard run")
	}
}

func BenchmarkEarload(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var out strings.Builder
		if err := run([]string{
			"-nodes", "256", "-shards", "4", "-records", "5", "-workers", "16",
		}, &out); err != nil {
			b.Fatalf("%v\n%s", err, out.String())
		}
	}
}

// benchEarloadTrace is the on/off pair behind the trace overhead gate:
// identical bursts, tracing toggled.
// benchEarloadTrace bursts full 64-record batches (the production
// batch size): tracing cost is per batch, so overhead is measured
// against the real per-batch work, not a 5-record toy batch.
func benchEarloadTrace(b *testing.B, traceOn bool) {
	b.ReportAllocs()
	args := []string{"-nodes", "64", "-shards", "4", "-records", "64", "-batch", "64", "-workers", "16"}
	if traceOn {
		args = append(args, "-trace")
	}
	for i := 0; i < b.N; i++ {
		var out strings.Builder
		if err := run(args, &out); err != nil {
			b.Fatalf("%v\n%s", err, out.String())
		}
	}
}

func BenchmarkEarloadTraceOff(b *testing.B) { benchEarloadTrace(b, false) }
func BenchmarkEarloadTraceOn(b *testing.B)  { benchEarloadTrace(b, true) }
