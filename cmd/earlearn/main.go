// Command earlearn runs the energy-model learning phase, mirroring how
// EAR trains its per-architecture coefficients against kernels on real
// nodes: a grid of probe workloads is executed across every pstate pair
// of the simulated platform and the projection coefficients are fitted
// by least squares. The model is written as JSON for earsim -model.
//
// Example:
//
//	earlearn -platform SD530 -o sd530_model.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"goear/internal/metrics"
	"goear/internal/model"
	"goear/internal/perf"
	"goear/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "earlearn:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("earlearn", flag.ContinueOnError)
	plName := fs.String("platform", "SD530", "platform to train for (SD530, GPUNode)")
	outPath := fs.String("o", "", "output JSON path (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var pl workload.Platform
	switch *plName {
	case "SD530":
		pl = workload.SD530()
	case "GPUNode":
		pl = workload.GPUNode()
	case "CascadeLake":
		pl = workload.CascadeLake()
	default:
		return fmt.Errorf("unknown platform %q (SD530, GPUNode, CascadeLake)", *plName)
	}

	fmt.Fprintf(out, "training energy model for %s (%d probes x %d pstates)...\n",
		pl.Machine.CPU.Name,
		len(model.DefaultProbes(pl.Machine.CPU.TotalCores())),
		pl.Machine.CPU.PstateCount())
	m, err := model.TrainForCPU(pl.Machine, pl.Power)
	if err != nil {
		return err
	}

	mae, err := heldOutAccuracy(pl, m)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "held-out CPI projection error: %.2f%%\n", mae*100)

	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	if *outPath == "" {
		_, err = out.Write(append(data, '\n'))
		return err
	}
	if err := os.WriteFile(*outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(out, "model written to %s\n", *outPath)
	return nil
}

// heldOutAccuracy evaluates the trained model on phases outside the
// probe grid.
func heldOutAccuracy(pl workload.Platform, m *model.Model) (float64, error) {
	held := []perf.Phase{
		{BaseCPI: 0.38, BytesPerInstr: 0.8, Overlap: 0.8, ActiveCores: pl.Machine.CPU.TotalCores()},
		{BaseCPI: 0.9, BytesPerInstr: 3.5, Overlap: 0.93, ActiveCores: pl.Machine.CPU.TotalCores()},
		{BaseCPI: 0.55, BytesPerInstr: 1.7, Overlap: 0.9, ActiveCores: pl.Machine.CPU.TotalCores()},
	}
	var samples []model.AccuracySample
	fromRatio, err := pl.Machine.CPU.PstateRatio(1)
	if err != nil {
		return 0, err
	}
	for _, ph := range held {
		src, err := perf.Evaluate(pl.Machine, ph, perf.Operating{
			CoreRatio: fromRatio, UncoreRatio: pl.Machine.CPU.UncoreMaxRatio,
		})
		if err != nil {
			return 0, err
		}
		sig := metrics.Signature{
			IterTimeSec: 1, CPI: src.CPI,
			TPI: ph.BytesPerInstr / perf.CacheLineBytes,
			GBs: src.NodeGBs, DCPowerW: 330,
		}
		for to := 2; to < pl.Machine.CPU.PstateCount(); to += 3 {
			toRatio, err := pl.Machine.CPU.PstateRatio(to)
			if err != nil {
				return 0, err
			}
			dst, err := perf.Evaluate(pl.Machine, ph, perf.Operating{
				CoreRatio: toRatio, UncoreRatio: pl.Machine.CPU.UncoreMaxRatio,
			})
			if err != nil {
				return 0, err
			}
			samples = append(samples, model.AccuracySample{
				Sig: sig, From: 1, To: to, TrueCPI: dst.CPI,
			})
		}
	}
	return m.Accuracy(samples)
}
