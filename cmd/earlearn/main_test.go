package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"goear/internal/model"
)

func TestTrainToFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.json")
	var b strings.Builder
	if err := run([]string{"-platform", "SD530", "-o", path}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "held-out CPI projection error") {
		t.Errorf("missing accuracy report: %s", b.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var m model.Model
	if err := m.UnmarshalJSON(data); err != nil {
		t.Fatalf("written model does not parse: %v", err)
	}
	if m.AVX512Pstate != 3 {
		t.Errorf("AVX512 pstate = %d, want 3", m.AVX512Pstate)
	}
}

func TestTrainToStdout(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-platform", "GPUNode"}, &b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `"pairs"`) {
		t.Error("JSON model not written to stdout")
	}
}

func TestUnknownPlatform(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-platform", "bogus"}, &b); err == nil {
		t.Error("expected error for unknown platform")
	}
}
