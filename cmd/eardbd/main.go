// Command eardbd runs the EAR database daemon: the aggregation tier
// between per-node reporting clients and the accounting database. It
// listens on TCP and/or a unix socket for wire-framed record batches,
// validates and deduplicates them into an in-memory eard.DB, serves
// snapshot queries (earctl dbd ...), and persists the database as JSON
// on shutdown.
//
// With -fed the daemon runs as a federation root instead: a query-only
// tier over a fleet of shard daemons that merges their snapshots and
// serves the same wire API, so earctl and eargm feeds point at one
// daemon or a sharded cluster interchangeably. A root keeps no
// database and refuses record batches — reports go to the shard that
// owns the node.
//
// A root can additionally run the cascaded global manager in-process:
// -cascade sets a cluster power budget and the root then re-apportions
// it across its shards every control interval, ratcheting per-island
// pstate ceilings from the live merged power view.
//
// The -telemetry HTTP endpoint serves /metrics and /events, plus
// /api/jobs: the per-job energy accounting query API (filter with
// ?user=, ?job=, ?since=; page with ?limit= and ?cursor=).
//
//	eardbd -listen 127.0.0.1:4711 -db /var/lib/ear/jobs.json
//	eardbd -unix /run/eardbd.sock
//	eardbd -listen 127.0.0.1:4700 -fed 127.0.0.1:4711,127.0.0.1:4712
//	eardbd -listen 127.0.0.1:4700 -fed ... -cascade 40000 -cascade-interval 10
//
// Stop with SIGINT/SIGTERM; the database file is written on exit.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"goear/internal/accounting"
	"goear/internal/eard"
	"goear/internal/eardbd"
	"goear/internal/eardbd/fed"
	"goear/internal/eargm"
	"goear/internal/telemetry"
	"goear/internal/telemetry/trace"
)

// wireService is the part of a Server or a fed.Root the listener
// plumbing needs; both speak the same wire protocol.
type wireService interface {
	Serve(net.Listener) error
	Close() error
}

func main() {
	quit := make(chan struct{})
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		<-sigs
		close(quit)
	}()
	if err := run(os.Args[1:], os.Stdout, nil, quit); err != nil {
		fmt.Fprintln(os.Stderr, "eardbd:", err)
		os.Exit(1)
	}
}

// run starts the daemon. The bound addresses are reported on ready
// (when non-nil) so tests can dial ephemeral ports; closing quit shuts
// the daemon down gracefully.
func run(args []string, out io.Writer, ready chan<- []string, quit <-chan struct{}) error {
	fs := flag.NewFlagSet("eardbd", flag.ContinueOnError)
	listen := fs.String("listen", "", "TCP listen address (host:port)")
	unix := fs.String("unix", "", "unix socket path to listen on")
	dbPath := fs.String("db", "", "JSON accounting database to load and persist")
	fedShards := fs.String("fed", "", "comma-separated shard TCP endpoints: run as a federation root (query-only)")
	maxFrame := fs.Int("max-frame", 0, "per-frame payload byte limit (default 1 MiB)")
	maxBatch := fs.Int("max-batch", 0, "records per batch limit (default 1024)")
	acctRetain := fs.Int("acct-retain", 0, "resident accounting record cap: oldest (job, step) groups are evicted past it (0 = unlimited)")
	telAddr := fs.String("telemetry", "", "HTTP address serving /metrics, /events, /healthz, /readyz and /api/jobs (empty = telemetry off)")
	traceOn := fs.Bool("trace", false, "record span traces, served at /traces on the telemetry address (requires -telemetry)")
	staleAfter := fs.Float64("stale-after", 0, "readiness degrades when no record landed for this many seconds (ingest mode, 0 = off)")
	cascadeBudget := fs.Float64("cascade", 0, "cluster DC power budget in watts: run the cascaded EARGM over the shards (fed mode only, 0 = off)")
	cascadeInterval := fs.Float64("cascade-interval", 5, "cascaded EARGM control period in seconds")
	cascadeReserve := fs.Float64("cascade-reserve", 0.2, "budget fraction split equally across islands regardless of draw")
	cascadeMaxP := fs.Int("cascade-max-pstate", 8, "deepest pstate ceiling the cascaded EARGM may impose")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *listen == "" && *unix == "" {
		return fmt.Errorf("nothing to listen on: pass -listen and/or -unix")
	}
	if *cascadeBudget != 0 && *fedShards == "" {
		return fmt.Errorf("-cascade drives islands through a federation root: pass -fed")
	}
	if *traceOn && *telAddr == "" {
		return fmt.Errorf("-trace serves spans over the telemetry endpoint: pass -telemetry")
	}

	// Telemetry must be live before the server is built: instrument
	// handles are resolved in NewServer. The HTTP listener binds here
	// but serving starts after the service exists, because the mux also
	// mounts the service-backed /api/jobs query endpoint.
	var telLn net.Listener
	var telSet *telemetry.Set
	if *telAddr != "" {
		telSet = telemetry.Enable()
		var err error
		telLn, err = net.Listen("tcp", *telAddr)
		if err != nil {
			return err
		}
		defer func() { _ = telLn.Close() }()
		fmt.Fprintf(out, "eardbd: telemetry on http://%s/metrics\n", telLn.Addr())
	}
	var traceBuf *trace.Buffer
	if *traceOn {
		traceBuf = trace.NewBuffer(0)
	}
	// Latency spans and SLO percentiles use a monotonic wall clock; the
	// span tree itself stays deterministic, only the timings are live.
	start := time.Now()
	wallSec := func() float64 { return time.Since(start).Seconds() }

	var svc wireService
	var db *eard.DB
	var srv *eardbd.Server
	var root *fed.Root
	stopCascade := func() {}
	if *fedShards != "" {
		switch {
		case *dbPath != "":
			return fmt.Errorf("-db is ingest-only: a federation root keeps no database")
		case *maxBatch != 0:
			return fmt.Errorf("-max-batch is ingest-only: a federation root refuses batches")
		case *acctRetain != 0:
			return fmt.Errorf("-acct-retain is ingest-only: a federation root keeps no accounting store")
		}
		cfg := fed.Config{MaxFramePayload: *maxFrame, Telemetry: telSet, Trace: traceBuf, Now: wallSec}
		for _, addr := range splitList(*fedShards) {
			addr := addr
			cfg.Shards = append(cfg.Shards, fed.Shard{
				Name: addr,
				Dial: func() (net.Conn, error) { return net.Dial("tcp", addr) },
			})
		}
		var err error
		root, err = fed.NewRoot(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "eardbd: federation root over %d shards\n", len(cfg.Shards))
		svc = root

		if *cascadeBudget > 0 {
			var islands []eargm.Island
			for _, sh := range cfg.Shards {
				src, err := root.IslandSource(sh.Name)
				if err != nil {
					return err
				}
				islands = append(islands, eargm.Island{Name: sh.Name, Src: src})
			}
			casc, err := eargm.NewCascade(eargm.CascadeConfig{
				BudgetW:     *cascadeBudget,
				ReserveFrac: *cascadeReserve,
				Island: eargm.Config{
					IntervalSec:  *cascadeInterval,
					MaxCapPstate: *cascadeMaxP,
					Telemetry:    telSet,
				},
				Trace: traceBuf,
			}, islands)
			if err != nil {
				return err
			}
			fmt.Fprintf(out, "eardbd: cascaded eargm over %d islands, budget %.0f W, interval %.0fs\n",
				len(islands), *cascadeBudget, casc.Interval())
			stop := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				// The controller's logical clock accumulates the control
				// period per tick, so a run's ratchet trace depends only
				// on the observed powers, never on wall time.
				tick := time.NewTicker(time.Duration(casc.Interval() * float64(time.Second)))
				defer tick.Stop()
				now := 0.0
				for {
					select {
					case <-stop:
						return
					case <-tick.C:
						now += casc.Interval()
						if _, err := casc.Update(now); err != nil {
							// A severed shard fails the poll; the next tick
							// retries against whatever is reachable then.
							fmt.Fprintln(out, "eardbd: cascade:", err)
						}
					}
				}
			}()
			stopCascade = func() {
				close(stop)
				wg.Wait()
			}
		}
	} else {
		db = eard.NewDB()
		if *dbPath != "" {
			f, err := os.Open(*dbPath)
			switch {
			case os.IsNotExist(err):
				// First boot: the file appears at shutdown.
			case err != nil:
				return err
			default:
				lerr := db.Load(f)
				cerr := f.Close()
				if lerr != nil {
					return lerr
				}
				if cerr != nil {
					return cerr
				}
				fmt.Fprintf(out, "eardbd: loaded %d records from %s\n", db.Len(), *dbPath)
			}
		}
		srv = eardbd.NewServer(db, eardbd.Config{MaxFramePayload: *maxFrame, MaxBatchRecords: *maxBatch, AcctMaxRecords: *acctRetain, Telemetry: telSet, Trace: traceBuf, Now: wallSec})
		svc = srv
	}

	if telLn != nil {
		mux := http.NewServeMux()
		mux.Handle("/", telSet.Handler())
		var queryFn accounting.QueryFunc
		slo := telemetry.NewSLO()
		health := telemetry.NewHealth()
		if root != nil {
			queryFn = root.AcctQuery
			root.LatencySLO(slo, 0, 0)
			health.Register(root.HealthCheck())
		} else {
			queryFn = srv.Acct().Query
			srv.LatencySLO(slo, 0, 0)
			health.Register(srv.HealthCheck(*staleAfter))
		}
		mux.Handle("/api/jobs", accounting.Handler(queryFn))
		mux.Handle("/slo", slo.Handler())
		mux.Handle("/healthz", health.Healthz())
		mux.Handle("/readyz", health.Readyz())
		if traceBuf != nil {
			mux.Handle("/traces", traceBuf.Handler())
		}
		go func() {
			// Serve returns when the listener closes at shutdown; the
			// daemon's fate is decided by the wire listeners, not this one.
			_ = http.Serve(telLn, mux)
		}()
	}

	var addrs []string
	serveErr := make(chan error, 2)
	listenAndServe := func(network, addr string) error {
		l, err := net.Listen(network, addr)
		if err != nil {
			return err
		}
		addrs = append(addrs, l.Addr().String())
		fmt.Fprintf(out, "eardbd: listening on %s %s\n", network, l.Addr())
		go func() { serveErr <- svc.Serve(l) }()
		return nil
	}
	if *listen != "" {
		if err := listenAndServe("tcp", *listen); err != nil {
			return err
		}
	}
	if *unix != "" {
		if err := listenAndServe("unix", *unix); err != nil {
			return err
		}
	}
	if ready != nil {
		// The telemetry address (when enabled) rides last so tests can
		// scrape it; wire addresses keep their positions.
		if telLn != nil {
			addrs = append(addrs, telLn.Addr().String())
		}
		ready <- addrs
	}

	var firstErr error
	select {
	case firstErr = <-serveErr:
	case <-quit:
		fmt.Fprintln(out, "eardbd: shutting down")
	}
	stopCascade()
	if err := svc.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	if *unix != "" {
		// A unix socket file outlives its listener.
		if err := os.Remove(*unix); err != nil && !os.IsNotExist(err) && firstErr == nil {
			firstErr = err
		}
	}

	if *dbPath != "" {
		f, err := os.Create(*dbPath)
		if err != nil {
			return err
		}
		serr := db.Save(f)
		cerr := f.Close()
		if serr != nil {
			return serr
		}
		if cerr != nil {
			return cerr
		}
		st := srv.Stats()
		fmt.Fprintf(out, "eardbd: saved %d records to %s (%d batches, %d accepted, %d duplicate, %d replaced)\n",
			db.Len(), *dbPath, st.Batches, st.RecordsAccepted, st.RecordsDuplicate, st.RecordsReplaced)
	}
	return firstErr
}

// splitList splits a comma-separated list, dropping empty elements.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}
