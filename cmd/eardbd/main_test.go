package main

import (
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"goear/internal/eard"
	"goear/internal/eardbd"
	"goear/internal/wire"
)

// startDaemon runs the daemon against an ephemeral TCP port and
// returns its address plus a shutdown function that waits for a clean
// exit and returns the accumulated output.
func startDaemon(t *testing.T, extra ...string) (string, func() string) {
	t.Helper()
	var out strings.Builder
	ready := make(chan []string, 1)
	quit := make(chan struct{})
	done := make(chan error, 1)
	args := append([]string{"-listen", "127.0.0.1:0"}, extra...)
	go func() { done <- run(args, &out, ready, quit) }()
	select {
	case addrs := <-ready:
		stop := func() string {
			close(quit)
			if err := <-done; err != nil {
				t.Errorf("daemon exit: %v", err)
			}
			return out.String()
		}
		return addrs[0], stop
	case err := <-done:
		t.Fatalf("daemon died on startup: %v (output: %s)", err, out.String())
		return "", nil
	}
}

func sendBatch(t *testing.T, addr string, b wire.Batch) wire.Ack {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	f, err := wire.EncodeBatch(b)
	if err != nil {
		t.Fatal(err)
	}
	if err := wire.WriteFrame(conn, f, 0); err != nil {
		t.Fatal(err)
	}
	resp, err := wire.ReadFrame(conn, 0)
	if err != nil {
		t.Fatal(err)
	}
	ack, err := resp.AsAck()
	if err != nil {
		t.Fatalf("response = %s: %v", resp.Type, err)
	}
	return ack
}

func TestDaemonLifecycleWithPersistence(t *testing.T) {
	dbFile := filepath.Join(t.TempDir(), "jobs.json")
	addr, stop := startDaemon(t, "-db", dbFile)

	ack := sendBatch(t, addr, wire.Batch{ID: "n01/1", Node: "n01", Records: []eard.JobRecord{
		{JobID: "j1", StepID: "0", Node: "n01", App: "X", TimeSec: 10, EnergyJ: 3000, AvgPower: 300},
		{JobID: "j1", StepID: "0", Node: "n02", App: "X", TimeSec: 10, EnergyJ: 3100, AvgPower: 310},
	}})
	if ack.Accepted != 2 {
		t.Fatalf("ack = %+v", ack)
	}
	out := stop()
	if !strings.Contains(out, "saved 2 records") {
		t.Errorf("shutdown output missing save line:\n%s", out)
	}

	// A restarted daemon loads the persisted database and serves it.
	addr2, stop2 := startDaemon(t, "-db", dbFile)
	conn, err := net.Dial("tcp", addr2)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	res, err := eardbd.Query(conn, wire.Query{Kind: wire.QueryAggregate}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(res.Data), `"records":2`) {
		t.Errorf("aggregate after restart = %s", res.Data)
	}
	out2 := stop2()
	if !strings.Contains(out2, "loaded 2 records") {
		t.Errorf("restart output missing load line:\n%s", out2)
	}
}

func TestDaemonUnixSocket(t *testing.T) {
	sock := filepath.Join(t.TempDir(), "eardbd.sock")
	var out strings.Builder
	ready := make(chan []string, 1)
	quit := make(chan struct{})
	done := make(chan error, 1)
	go func() { done <- run([]string{"-unix", sock}, &out, ready, quit) }()
	select {
	case <-ready:
	case err := <-done:
		t.Fatalf("daemon died: %v", err)
	}
	conn, err := net.Dial("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	f, err := wire.EncodeQuery(wire.Query{Kind: wire.QueryStats})
	if err != nil {
		t.Fatal(err)
	}
	if err := wire.WriteFrame(conn, f, 0); err != nil {
		t.Fatal(err)
	}
	if resp, err := wire.ReadFrame(conn, 0); err != nil || resp.Type != wire.TypeResult {
		t.Errorf("stats over unix socket: %v %v", resp.Type, err)
	}
	if err := conn.Close(); err != nil {
		t.Fatal(err)
	}
	close(quit)
	if err := <-done; err != nil {
		t.Errorf("exit: %v", err)
	}
}

func TestDaemonFlagErrors(t *testing.T) {
	var out strings.Builder
	if err := run(nil, &out, nil, nil); err == nil {
		t.Error("no listener accepted")
	}
	if err := run([]string{"-listen", "no-such-host-xyz:99999"}, &out, nil, nil); err == nil {
		t.Error("bad listen address accepted")
	}
	bad := filepath.Join(t.TempDir(), "corrupt.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-listen", "127.0.0.1:0", "-db", bad}, &out, nil, nil); err == nil {
		t.Error("corrupt db file accepted")
	}
}
