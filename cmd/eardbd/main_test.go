package main

import (
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"goear/internal/eard"
	"goear/internal/eardbd"
	"goear/internal/wire"
)

// startDaemon runs the daemon against an ephemeral TCP port and
// returns its address plus a shutdown function that waits for a clean
// exit and returns the accumulated output.
func startDaemon(t *testing.T, extra ...string) (string, func() string) {
	t.Helper()
	var out strings.Builder
	ready := make(chan []string, 1)
	quit := make(chan struct{})
	done := make(chan error, 1)
	args := append([]string{"-listen", "127.0.0.1:0"}, extra...)
	go func() { done <- run(args, &out, ready, quit) }()
	select {
	case addrs := <-ready:
		stop := func() string {
			close(quit)
			if err := <-done; err != nil {
				t.Errorf("daemon exit: %v", err)
			}
			return out.String()
		}
		return addrs[0], stop
	case err := <-done:
		t.Fatalf("daemon died on startup: %v (output: %s)", err, out.String())
		return "", nil
	}
}

func sendBatch(t *testing.T, addr string, b wire.Batch) wire.Ack {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	f, err := wire.EncodeBatch(b)
	if err != nil {
		t.Fatal(err)
	}
	if err := wire.WriteFrame(conn, f, 0); err != nil {
		t.Fatal(err)
	}
	resp, err := wire.ReadFrame(conn, 0)
	if err != nil {
		t.Fatal(err)
	}
	ack, err := resp.AsAck()
	if err != nil {
		t.Fatalf("response = %s: %v", resp.Type, err)
	}
	return ack
}

func TestDaemonLifecycleWithPersistence(t *testing.T) {
	dbFile := filepath.Join(t.TempDir(), "jobs.json")
	addr, stop := startDaemon(t, "-db", dbFile)

	ack := sendBatch(t, addr, wire.Batch{ID: "n01/1", Node: "n01", Records: []eard.JobRecord{
		{JobID: "j1", StepID: "0", Node: "n01", App: "X", TimeSec: 10, EnergyJ: 3000, AvgPower: 300},
		{JobID: "j1", StepID: "0", Node: "n02", App: "X", TimeSec: 10, EnergyJ: 3100, AvgPower: 310},
	}})
	if ack.Accepted != 2 {
		t.Fatalf("ack = %+v", ack)
	}
	out := stop()
	if !strings.Contains(out, "saved 2 records") {
		t.Errorf("shutdown output missing save line:\n%s", out)
	}

	// A restarted daemon loads the persisted database and serves it.
	addr2, stop2 := startDaemon(t, "-db", dbFile)
	conn, err := net.Dial("tcp", addr2)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	res, err := eardbd.Query(conn, wire.Query{Kind: wire.QueryAggregate}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(res.Data), `"records":2`) {
		t.Errorf("aggregate after restart = %s", res.Data)
	}
	out2 := stop2()
	if !strings.Contains(out2, "loaded 2 records") {
		t.Errorf("restart output missing load line:\n%s", out2)
	}
}

func TestDaemonUnixSocket(t *testing.T) {
	sock := filepath.Join(t.TempDir(), "eardbd.sock")
	var out strings.Builder
	ready := make(chan []string, 1)
	quit := make(chan struct{})
	done := make(chan error, 1)
	go func() { done <- run([]string{"-unix", sock}, &out, ready, quit) }()
	select {
	case <-ready:
	case err := <-done:
		t.Fatalf("daemon died: %v", err)
	}
	conn, err := net.Dial("unix", sock)
	if err != nil {
		t.Fatal(err)
	}
	f, err := wire.EncodeQuery(wire.Query{Kind: wire.QueryStats})
	if err != nil {
		t.Fatal(err)
	}
	if err := wire.WriteFrame(conn, f, 0); err != nil {
		t.Fatal(err)
	}
	if resp, err := wire.ReadFrame(conn, 0); err != nil || resp.Type != wire.TypeResult {
		t.Errorf("stats over unix socket: %v %v", resp.Type, err)
	}
	if err := conn.Close(); err != nil {
		t.Fatal(err)
	}
	close(quit)
	if err := <-done; err != nil {
		t.Errorf("exit: %v", err)
	}
}

// TestFederationRootDaemon runs two ingest daemons and a -fed root
// over them: the root must serve the merged cluster snapshot and
// refuse record batches.
func TestFederationRootDaemon(t *testing.T) {
	addr1, stop1 := startDaemon(t)
	defer stop1()
	addr2, stop2 := startDaemon(t)
	defer stop2()
	sendBatch(t, addr1, wire.Batch{ID: "n01/1", Node: "n01", Records: []eard.JobRecord{
		{JobID: "j1", StepID: "0", Node: "n01", App: "X", TimeSec: 10, EnergyJ: 3000, AvgPower: 300},
	}})
	sendBatch(t, addr2, wire.Batch{ID: "n02/1", Node: "n02", Records: []eard.JobRecord{
		{JobID: "j1", StepID: "0", Node: "n02", App: "X", TimeSec: 10, EnergyJ: 3100, AvgPower: 310},
	}})

	rootAddr, stopRoot := startDaemon(t, "-fed", addr1+","+addr2)
	defer stopRoot()
	conn, err := net.Dial("tcp", rootAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	res, err := eardbd.Query(conn, wire.Query{Kind: wire.QueryAggregate}, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"nodes":2`, `"records":2`, `"total_power_w":610`} {
		if !strings.Contains(string(res.Data), want) {
			t.Errorf("root aggregate missing %s: %s", want, res.Data)
		}
	}

	// The root is a read path: batches must be refused, not merged.
	conn2, err := net.Dial("tcp", rootAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	f, err := wire.EncodeBatch(wire.Batch{ID: "n03/1", Node: "n03", Records: []eard.JobRecord{
		{JobID: "j2", StepID: "0", Node: "n03", App: "X", TimeSec: 10, EnergyJ: 1000, AvgPower: 100},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := wire.WriteFrame(conn2, f, 0); err != nil {
		t.Fatal(err)
	}
	resp, err := wire.ReadFrame(conn2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Type != wire.TypeError {
		t.Errorf("batch to root answered %s, want error", resp.Type)
	}
}

func TestDaemonFlagErrors(t *testing.T) {
	var out strings.Builder
	if err := run(nil, &out, nil, nil); err == nil {
		t.Error("no listener accepted")
	}
	if err := run([]string{"-listen", "127.0.0.1:0", "-fed", "a:1", "-db", "x.json"}, &out, nil, nil); err == nil {
		t.Error("-fed with -db accepted")
	}
	if err := run([]string{"-listen", "127.0.0.1:0", "-fed", "a:1", "-max-batch", "9"}, &out, nil, nil); err == nil {
		t.Error("-fed with -max-batch accepted")
	}
	if err := run([]string{"-listen", "127.0.0.1:0", "-fed", ",,"}, &out, nil, nil); err == nil {
		t.Error("empty -fed list accepted")
	}
	if err := run([]string{"-listen", "no-such-host-xyz:99999"}, &out, nil, nil); err == nil {
		t.Error("bad listen address accepted")
	}
	if err := run([]string{"-listen", "127.0.0.1:0", "-trace"}, &out, nil, nil); err == nil {
		t.Error("-trace without -telemetry accepted")
	}
	bad := filepath.Join(t.TempDir(), "corrupt.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-listen", "127.0.0.1:0", "-db", bad}, &out, nil, nil); err == nil {
		t.Error("corrupt db file accepted")
	}
}
