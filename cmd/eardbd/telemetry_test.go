package main

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"goear/internal/eard"
	"goear/internal/telemetry"
	"goear/internal/wire"
)

// TestDaemonTelemetryEndpoint boots the daemon with -telemetry, feeds
// it a batch (plus a dedup-window redelivery), and scrapes the HTTP
// endpoint: the closed loop the observability layer exists for.
func TestDaemonTelemetryEndpoint(t *testing.T) {
	var out strings.Builder
	ready := make(chan []string, 1)
	quit := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-listen", "127.0.0.1:0", "-telemetry", "127.0.0.1:0"}, &out, ready, quit)
	}()
	var addrs []string
	select {
	case addrs = <-ready:
	case err := <-done:
		t.Fatalf("daemon died on startup: %v (output: %s)", err, out.String())
	}
	if len(addrs) != 2 {
		t.Fatalf("ready addrs = %v, want wire + telemetry", addrs)
	}
	wireAddr, telAddr := addrs[0], addrs[1]

	b := wire.Batch{ID: "n01/1", Node: "n01", Records: []eard.JobRecord{
		{JobID: "j1", StepID: "0", Node: "n01", App: "X", TimeSec: 10, EnergyJ: 3000, AvgPower: 300},
		{JobID: "j1", StepID: "0", Node: "n02", App: "X", TimeSec: 10, EnergyJ: 3100, AvgPower: 310},
	}}
	if ack := sendBatch(t, wireAddr, b); ack.Accepted != 2 {
		t.Fatalf("first delivery ack = %+v", ack)
	}
	// Redeliver the same batch ID: the dedup window must absorb it.
	if ack := sendBatch(t, wireAddr, b); ack.Duplicate != 2 {
		t.Fatalf("redelivery ack = %+v", ack)
	}

	resp, err := http.Get("http://" + telAddr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics Content-Type = %q", ct)
	}
	samples, err := telemetry.ParseText(resp.Body)
	if err != nil {
		t.Fatalf("metrics endpoint served unparseable exposition: %v", err)
	}
	vals := map[string]float64{}
	for _, s := range samples {
		vals[s.Name+s.Labels] = s.Value
	}
	for key, want := range map[string]float64{
		`goear_eardbd_batches_total{result="accepted"}`:  1,
		`goear_eardbd_batches_total{result="duplicate"}`: 1,
		`goear_eardbd_records_total{result="accepted"}`:  2,
		`goear_eardbd_records_total{result="duplicate"}`: 2,
	} {
		if got, ok := vals[key]; !ok || got != want {
			t.Errorf("%s = %v (present %v), want %v", key, got, ok, want)
		}
	}
	if vals["goear_eardbd_connections_total"] < 2 {
		t.Errorf("connections = %v, want >= 2", vals["goear_eardbd_connections_total"])
	}

	evResp, err := http.Get("http://" + telAddr + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer evResp.Body.Close()
	evBody, err := io.ReadAll(evResp.Body)
	if err != nil {
		t.Fatal(err)
	}
	events := string(evBody)
	if !strings.Contains(events, `"kind":"eardbd.batch"`) ||
		!strings.Contains(events, `"result":"duplicate"`) {
		t.Errorf("event log missing batch events:\n%s", events)
	}

	close(quit)
	if err := <-done; err != nil {
		t.Errorf("daemon exit: %v", err)
	}
	if !strings.Contains(out.String(), "telemetry on http://") {
		t.Errorf("startup output missing telemetry line:\n%s", out.String())
	}
}

// TestDaemonTraceAndHealthEndpoints boots an ingest daemon with
// tracing on and scrapes the observability surface: the probes must
// answer, and a delivered batch must show up as server-side spans on
// /traces. (It runs after TestDaemonTelemetryEndpoint: the global
// telemetry set is shared, and that test asserts exact counts.)
func TestDaemonTraceAndHealthEndpoints(t *testing.T) {
	var out strings.Builder
	ready := make(chan []string, 1)
	quit := make(chan struct{})
	done := make(chan error, 1)
	args := []string{"-listen", "127.0.0.1:0", "-telemetry", "127.0.0.1:0", "-trace"}
	go func() { done <- run(args, &out, ready, quit) }()
	var addrs []string
	select {
	case addrs = <-ready:
	case err := <-done:
		t.Fatalf("daemon died on startup: %v (output: %s)", err, out.String())
	}
	wireAddr, telAddr := addrs[0], addrs[len(addrs)-1]

	sendBatch(t, wireAddr, wire.Batch{ID: "n05/1", Node: "n05", Records: []eard.JobRecord{
		{JobID: "j9", StepID: "0", Node: "n05", App: "X", TimeSec: 10, EnergyJ: 3000, AvgPower: 300},
	}})

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get("http://" + telAddr + path)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		if cerr := resp.Body.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}
	if code, body := get("/healthz"); code != 200 || !strings.Contains(body, `"status": "ok"`) {
		t.Errorf("/healthz = %d %s", code, body)
	}
	if code, body := get("/readyz"); code != 200 || !strings.Contains(body, `"generation 1"`) {
		t.Errorf("/readyz = %d %s", code, body)
	}
	if code, body := get("/slo"); code != 200 || !strings.Contains(body, `"op": "batch"`) {
		t.Errorf("/slo = %d %s", code, body)
	}
	if code, body := get("/traces"); code != 200 ||
		!strings.Contains(body, `"kind":"server.batch"`) || !strings.Contains(body, `"batch":"n05/1"`) {
		t.Errorf("/traces = %d %s", code, body)
	}
	if code, body := get("/traces?kind=server.store"); code != 200 || strings.Contains(body, "server.batch") {
		t.Errorf("/traces?kind filter leaked: %d %s", code, body)
	}

	close(quit)
	if err := <-done; err != nil {
		t.Errorf("daemon exit: %v", err)
	}
}
