package main

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"goear/internal/eard"
	"goear/internal/telemetry"
	"goear/internal/wire"
)

// TestDaemonTelemetryEndpoint boots the daemon with -telemetry, feeds
// it a batch (plus a dedup-window redelivery), and scrapes the HTTP
// endpoint: the closed loop the observability layer exists for.
func TestDaemonTelemetryEndpoint(t *testing.T) {
	var out strings.Builder
	ready := make(chan []string, 1)
	quit := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-listen", "127.0.0.1:0", "-telemetry", "127.0.0.1:0"}, &out, ready, quit)
	}()
	var addrs []string
	select {
	case addrs = <-ready:
	case err := <-done:
		t.Fatalf("daemon died on startup: %v (output: %s)", err, out.String())
	}
	if len(addrs) != 2 {
		t.Fatalf("ready addrs = %v, want wire + telemetry", addrs)
	}
	wireAddr, telAddr := addrs[0], addrs[1]

	b := wire.Batch{ID: "n01/1", Node: "n01", Records: []eard.JobRecord{
		{JobID: "j1", StepID: "0", Node: "n01", App: "X", TimeSec: 10, EnergyJ: 3000, AvgPower: 300},
		{JobID: "j1", StepID: "0", Node: "n02", App: "X", TimeSec: 10, EnergyJ: 3100, AvgPower: 310},
	}}
	if ack := sendBatch(t, wireAddr, b); ack.Accepted != 2 {
		t.Fatalf("first delivery ack = %+v", ack)
	}
	// Redeliver the same batch ID: the dedup window must absorb it.
	if ack := sendBatch(t, wireAddr, b); ack.Duplicate != 2 {
		t.Fatalf("redelivery ack = %+v", ack)
	}

	resp, err := http.Get("http://" + telAddr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("metrics Content-Type = %q", ct)
	}
	samples, err := telemetry.ParseText(resp.Body)
	if err != nil {
		t.Fatalf("metrics endpoint served unparseable exposition: %v", err)
	}
	vals := map[string]float64{}
	for _, s := range samples {
		vals[s.Name+s.Labels] = s.Value
	}
	for key, want := range map[string]float64{
		`goear_eardbd_batches_total{result="accepted"}`:  1,
		`goear_eardbd_batches_total{result="duplicate"}`: 1,
		`goear_eardbd_records_total{result="accepted"}`:  2,
		`goear_eardbd_records_total{result="duplicate"}`: 2,
	} {
		if got, ok := vals[key]; !ok || got != want {
			t.Errorf("%s = %v (present %v), want %v", key, got, ok, want)
		}
	}
	if vals["goear_eardbd_connections_total"] < 2 {
		t.Errorf("connections = %v, want >= 2", vals["goear_eardbd_connections_total"])
	}

	evResp, err := http.Get("http://" + telAddr + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer evResp.Body.Close()
	evBody, err := io.ReadAll(evResp.Body)
	if err != nil {
		t.Fatal(err)
	}
	events := string(evBody)
	if !strings.Contains(events, `"kind":"eardbd.batch"`) ||
		!strings.Contains(events, `"result":"duplicate"`) {
		t.Errorf("event log missing batch events:\n%s", events)
	}

	close(quit)
	if err := <-done; err != nil {
		t.Errorf("daemon exit: %v", err)
	}
	if !strings.Contains(out.String(), "telemetry on http://") {
		t.Errorf("startup output missing telemetry line:\n%s", out.String())
	}
}
