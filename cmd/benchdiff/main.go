// Command benchdiff compares `go test -bench` output against the
// committed benchmark baseline and gates CI on performance regressions.
//
// It reads the standard benchmark text format (one file argument, or
// stdin), matches entries by name (GOMAXPROCS suffixes like "-8" are
// stripped), and prints a table of ns/op and allocs/op deltas. Entries
// whose name starts with one of the gated prefixes fail the run — exit
// status 1 — when their ns/op regresses by more than -threshold
// relative to the baseline; everything else is informational.
//
// With -out it also emits a snapshot of the parsed results in the
// baseline's JSON schema, so the repository accumulates a dated
// BENCH_<date>.json trajectory alongside BENCH_baseline.json (see
// DESIGN.md § Performance for how to read them).
//
// Examples:
//
//	go test -run XXX -bench . -benchtime=0.5s . | benchdiff
//	benchdiff -baseline BENCH_baseline.json bench.txt
//	benchdiff -out auto -label "after node pooling" bench.txt
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

// Entry is one benchmark's recorded figures. BytesPerOp and AllocsPerOp
// are zero when the benchmark does not report allocations.
type Entry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Snapshot is the schema of BENCH_baseline.json and the dated
// BENCH_<date>.json trajectory files.
type Snapshot struct {
	Date       string           `json:"date"`
	Label      string           `json:"label,omitempty"`
	Go         string           `json:"go,omitempty"`
	CPU        string           `json:"cpu,omitempty"`
	Benchmarks map[string]Entry `json:"benchmarks"`
}

// defaultGates are the name prefixes whose ns/op regressions fail the
// run: the paper-artifact benchmarks, the simulator hot-path micros,
// the batch stepping kernels (BenchmarkBatch*/BenchmarkCluster*), the
// federation load-generator burst and the accounting query path.
const defaultGates = "BenchmarkTable,BenchmarkFig,BenchmarkSim,BenchmarkNodeTick," +
	"BenchmarkBatch,BenchmarkCluster,BenchmarkEarload,BenchmarkJobQuery"

func run(args []string, stdin io.Reader, out io.Writer) error {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	baseline := fs.String("baseline", "BENCH_baseline.json", "baseline snapshot to compare against")
	threshold := fs.Float64("threshold", 0.10, "relative ns/op regression that fails a gated benchmark")
	gates := fs.String("gate", defaultGates, "comma-separated name prefixes that are gated (empty gates nothing)")
	outFile := fs.String("out", "", "write a snapshot of the parsed results here ('auto' = BENCH_<date>.json)")
	date := fs.String("date", time.Now().Format("2006-01-02"), "date stamped into the emitted snapshot")
	label := fs.String("label", "", "free-form label stamped into the emitted snapshot")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *threshold <= 0 {
		return fmt.Errorf("-threshold must be > 0 (got %g)", *threshold)
	}

	in := stdin
	switch fs.NArg() {
	case 0:
	case 1:
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	default:
		return fmt.Errorf("at most one input file (got %d)", fs.NArg())
	}

	cur, cpu, err := parseBench(in)
	if err != nil {
		return err
	}
	if len(cur) == 0 {
		return fmt.Errorf("no benchmark results in input")
	}

	base, err := loadSnapshot(*baseline)
	if err != nil {
		return err
	}

	if *outFile != "" {
		name := *outFile
		if name == "auto" {
			name, err = datedSnapshotName(*date)
			if err != nil {
				return err
			}
		}
		snap := Snapshot{Date: *date, Label: *label, Go: runtime.Version(), CPU: cpu, Benchmarks: cur}
		if err := writeSnapshot(name, snap); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s (%d benchmarks)\n", name, len(cur))
	}

	regressions := report(out, base, cur, splitGates(*gates), *threshold)
	if len(regressions) > 0 {
		return fmt.Errorf("%d gated benchmark(s) regressed >%d%% vs %s: %s",
			len(regressions), int(*threshold*100), *baseline, strings.Join(regressions, ", "))
	}
	return nil
}

func splitGates(s string) []string {
	var out []string
	for _, g := range strings.Split(s, ",") {
		if g = strings.TrimSpace(g); g != "" {
			out = append(out, g)
		}
	}
	return out
}

func gated(name string, gates []string) bool {
	for _, g := range gates {
		if strings.HasPrefix(name, g) {
			return true
		}
	}
	return false
}

// report prints the comparison table and returns the names of gated
// benchmarks whose ns/op regressed beyond the threshold.
func report(out io.Writer, base Snapshot, cur map[string]Entry, gates []string, threshold float64) []string {
	names := make([]string, 0, len(cur))
	for n := range cur {
		names = append(names, n)
	}
	sort.Strings(names)

	var regressions []string
	fmt.Fprintf(out, "%-28s %14s %14s %8s %8s  %s\n",
		"benchmark", "base ns/op", "ns/op", "delta", "allocs", "")
	for _, name := range names {
		c := cur[name]
		b, ok := base.Benchmarks[name]
		if !ok {
			fmt.Fprintf(out, "%-28s %14s %14.1f %8s %8d  new\n", name, "-", c.NsPerOp, "-", c.AllocsPerOp)
			continue
		}
		delta := (c.NsPerOp - b.NsPerOp) / b.NsPerOp
		verdict := ""
		switch {
		case gated(name, gates) && delta > threshold:
			verdict = "REGRESSION"
			regressions = append(regressions, name)
		case delta > threshold:
			verdict = "slower (not gated)"
		case delta < -threshold:
			verdict = "faster"
		}
		alloc := fmt.Sprintf("%d", c.AllocsPerOp)
		if c.AllocsPerOp != b.AllocsPerOp {
			alloc = fmt.Sprintf("%d->%d", b.AllocsPerOp, c.AllocsPerOp)
		}
		fmt.Fprintf(out, "%-28s %14.1f %14.1f %+7.1f%% %8s  %s\n",
			name, b.NsPerOp, c.NsPerOp, delta*100, alloc, verdict)
	}
	for name := range base.Benchmarks {
		if _, ok := cur[name]; !ok && gated(name, gates) {
			// A gated benchmark that silently disappears from the run
			// would otherwise dodge the gate forever; surface it loudly
			// (but a partial run is legitimate, so do not fail on it).
			fmt.Fprintf(out, "%-28s missing from input (in baseline, gated)\n", name)
		}
	}
	return regressions
}

// benchLine matches one result line of `go test -bench` text output,
// e.g. "BenchmarkSimSecond-8  12217  82110 ns/op  12928 B/op  46 allocs/op".
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+(.*)$`)

// parseBench reads benchmark text output, returning entries keyed by
// name (GOMAXPROCS suffix stripped) and the "cpu:" header if present.
func parseBench(r io.Reader) (map[string]Entry, string, error) {
	out := make(map[string]Entry)
	cpu := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(line, "cpu:"); ok {
			cpu = strings.TrimSpace(rest)
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		e, err := parseFields(strings.Fields(m[2]))
		if err != nil {
			return nil, "", fmt.Errorf("line %q: %w", line, err)
		}
		// go test repeats a benchmark under -count; keep the last run.
		out[m[1]] = e
	}
	return out, cpu, sc.Err()
}

// parseFields decodes the value/unit pairs after the iteration count.
// Unknown units (MB/s, custom metrics) are ignored.
func parseFields(fields []string) (Entry, error) {
	var e Entry
	if len(fields)%2 != 0 {
		return e, fmt.Errorf("odd value/unit field count")
	}
	for i := 0; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return e, fmt.Errorf("bad value %q: %w", fields[i], err)
		}
		switch fields[i+1] {
		case "ns/op":
			e.NsPerOp = v
		case "B/op":
			e.BytesPerOp = int64(v)
		case "allocs/op":
			e.AllocsPerOp = int64(v)
		}
	}
	if e.NsPerOp == 0 {
		return e, fmt.Errorf("no ns/op field")
	}
	return e, nil
}

func loadSnapshot(path string) (Snapshot, error) {
	var s Snapshot
	data, err := os.ReadFile(path)
	if err != nil {
		return s, err
	}
	if err := json.Unmarshal(data, &s); err != nil {
		return s, fmt.Errorf("%s: %w", path, err)
	}
	if len(s.Benchmarks) == 0 {
		return s, fmt.Errorf("%s: no benchmarks", path)
	}
	return s, nil
}

// datedSnapshotName resolves '-out auto' to BENCH_<date>.json without
// clobbering an earlier snapshot from the same day: when the dated
// name is taken, a "-N" suffix is appended (BENCH_<date>-1.json, -2,
// ...), so repeated runs accumulate instead of silently overwriting.
func datedSnapshotName(date string) (string, error) {
	name := "BENCH_" + date + ".json"
	if _, err := os.Stat(name); os.IsNotExist(err) {
		return name, nil
	} else if err != nil {
		return "", err
	}
	for n := 1; ; n++ {
		name = fmt.Sprintf("BENCH_%s-%d.json", date, n)
		if _, err := os.Stat(name); os.IsNotExist(err) {
			return name, nil
		} else if err != nil {
			return "", err
		}
	}
}

func writeSnapshot(path string, s Snapshot) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
