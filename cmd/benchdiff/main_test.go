package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: goear
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkTable1-8     	       1	  92606924 ns/op	21569040 B/op	  224938 allocs/op
BenchmarkSimSecond-8  	   12217	     82110 ns/op	   12928 B/op	      46 allocs/op
BenchmarkModelTrain-8 	     100	  11000000 ns/op
PASS
ok  	goear	37.578s
`

func TestParseBench(t *testing.T) {
	got, cpu, err := parseBench(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if cpu != "Intel(R) Xeon(R) Processor @ 2.10GHz" {
		t.Errorf("cpu = %q", cpu)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d entries, want 3: %v", len(got), got)
	}
	sim := got["BenchmarkSimSecond"]
	if sim.NsPerOp != 82110 || sim.BytesPerOp != 12928 || sim.AllocsPerOp != 46 {
		t.Errorf("BenchmarkSimSecond = %+v", sim)
	}
	if mt := got["BenchmarkModelTrain"]; mt.NsPerOp != 11000000 || mt.AllocsPerOp != 0 {
		t.Errorf("entry without -benchmem fields = %+v", mt)
	}
}

// writeBaseline commits a synthetic baseline to a temp dir and returns
// its path.
func writeBaseline(t *testing.T, benches map[string]Entry) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "BENCH_baseline.json")
	data, err := json.Marshal(Snapshot{Date: "2026-01-01", Benchmarks: benches})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func diff(t *testing.T, baseline, bench string, extra ...string) (string, error) {
	t.Helper()
	var out bytes.Buffer
	args := append([]string{"-baseline", baseline}, extra...)
	err := run(args, strings.NewReader(bench), &out)
	return out.String(), err
}

// TestInjectedRegressionFails is the harness's own acceptance test: a
// synthetic +50% ns/op regression on a gated benchmark must make run()
// fail (non-zero exit in main).
func TestInjectedRegressionFails(t *testing.T) {
	base := writeBaseline(t, map[string]Entry{
		"BenchmarkSimSecond": {NsPerOp: 82110, AllocsPerOp: 46},
	})
	bench := "BenchmarkSimSecond-8 \t 100 \t 123165 ns/op \t 12928 B/op \t 46 allocs/op\n"
	out, err := diff(t, base, bench)
	if err == nil {
		t.Fatalf("synthetic regression passed; output:\n%s", out)
	}
	if !strings.Contains(err.Error(), "BenchmarkSimSecond") {
		t.Errorf("error does not name the regressed benchmark: %v", err)
	}
	if !strings.Contains(out, "REGRESSION") {
		t.Errorf("report does not flag the regression:\n%s", out)
	}
}

func TestWithinThresholdPasses(t *testing.T) {
	base := writeBaseline(t, map[string]Entry{
		"BenchmarkSimSecond": {NsPerOp: 82110, AllocsPerOp: 46},
	})
	bench := "BenchmarkSimSecond-8 \t 100 \t 86000 ns/op\n" // +4.7%
	if out, err := diff(t, base, bench); err != nil {
		t.Errorf("within-threshold run failed: %v\n%s", err, out)
	}
}

func TestImprovementPasses(t *testing.T) {
	base := writeBaseline(t, map[string]Entry{
		"BenchmarkNodeTick": {NsPerOp: 433.3},
	})
	bench := "BenchmarkNodeTick-8 \t 100 \t 133.5 ns/op \t 0 B/op \t 0 allocs/op\n"
	out, err := diff(t, base, bench)
	if err != nil {
		t.Errorf("improvement failed the gate: %v", err)
	}
	if !strings.Contains(out, "faster") {
		t.Errorf("report does not note the improvement:\n%s", out)
	}
}

// TestUngatedRegressionPasses: only BenchmarkTable*/Fig*/Sim*/NodeTick
// gate by default; a training benchmark may slow down without failing.
func TestUngatedRegressionPasses(t *testing.T) {
	base := writeBaseline(t, map[string]Entry{
		"BenchmarkModelTrain": {NsPerOp: 10000000},
	})
	bench := "BenchmarkModelTrain-8 \t 10 \t 20000000 ns/op\n"
	if out, err := diff(t, base, bench); err != nil {
		t.Errorf("ungated regression failed the run: %v\n%s", err, out)
	}
}

func TestThresholdFlag(t *testing.T) {
	base := writeBaseline(t, map[string]Entry{
		"BenchmarkFig7": {NsPerOp: 1000},
	})
	bench := "BenchmarkFig7 \t 10 \t 1150 ns/op\n" // +15%
	if _, err := diff(t, base, bench); err == nil {
		t.Error("a 15% slowdown passed the default 10% gate")
	}
	if _, err := diff(t, base, bench, "-threshold", "0.20"); err != nil {
		t.Errorf("a 15%% slowdown failed a 20%% gate: %v", err)
	}
}

// TestTrajectoryEmit verifies -out writes a loadable snapshot carrying
// the parsed entries and the requested date stamp.
func TestTrajectoryEmit(t *testing.T) {
	base := writeBaseline(t, map[string]Entry{
		"BenchmarkSimSecond": {NsPerOp: 82110, AllocsPerOp: 46},
	})
	dir := t.TempDir()
	outPath := filepath.Join(dir, "BENCH_2026-08-06.json")
	bench := "BenchmarkSimSecond-8 \t 100 \t 42105 ns/op \t 944 B/op \t 4 allocs/op\n"
	if _, err := diff(t, base, bench, "-out", outPath, "-date", "2026-08-06", "-label", "post-opt"); err != nil {
		t.Fatal(err)
	}
	snap, err := loadSnapshot(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Date != "2026-08-06" || snap.Label != "post-opt" {
		t.Errorf("snapshot stamps = (%q, %q)", snap.Date, snap.Label)
	}
	e := snap.Benchmarks["BenchmarkSimSecond"]
	if e.NsPerOp != 42105 || e.AllocsPerOp != 4 {
		t.Errorf("snapshot entry = %+v", e)
	}
}

// TestAutoSnapshotFreshDate verifies '-out auto' takes the plain dated
// name when no snapshot from that day exists.
func TestAutoSnapshotFreshDate(t *testing.T) {
	base := writeBaseline(t, map[string]Entry{
		"BenchmarkSimSecond": {NsPerOp: 82110},
	})
	t.Chdir(t.TempDir())
	bench := "BenchmarkSimSecond-8 \t 100 \t 82000 ns/op\n"
	out, err := diff(t, base, bench, "-out", "auto", "-date", "2026-08-06")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "wrote BENCH_2026-08-06.json") {
		t.Errorf("auto emit output = %q", out)
	}
	if _, err := loadSnapshot("BENCH_2026-08-06.json"); err != nil {
		t.Fatal(err)
	}
}

// TestAutoSnapshotSuffix verifies repeated same-day '-out auto' runs
// append -N suffixes instead of silently overwriting the earlier
// snapshot.
func TestAutoSnapshotSuffix(t *testing.T) {
	base := writeBaseline(t, map[string]Entry{
		"BenchmarkSimSecond": {NsPerOp: 82110},
	})
	t.Chdir(t.TempDir())
	bench := "BenchmarkSimSecond-8 \t 100 \t 82000 ns/op\n"
	for i, wantFile := range []string{
		"BENCH_2026-08-06.json", "BENCH_2026-08-06-1.json", "BENCH_2026-08-06-2.json",
	} {
		label := fmt.Sprintf("run-%d", i)
		if _, err := diff(t, base, bench, "-out", "auto", "-date", "2026-08-06", "-label", label); err != nil {
			t.Fatal(err)
		}
		snap, err := loadSnapshot(wantFile)
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if snap.Label != label {
			t.Errorf("%s label = %q, want %q", wantFile, snap.Label, label)
		}
	}
	// The first snapshot survived untouched.
	first, err := loadSnapshot("BENCH_2026-08-06.json")
	if err != nil {
		t.Fatal(err)
	}
	if first.Label != "run-0" {
		t.Errorf("first snapshot was overwritten: label = %q", first.Label)
	}
}

func TestMissingBaselineFile(t *testing.T) {
	if _, err := diff(t, filepath.Join(t.TempDir(), "nope.json"), sampleBench); err == nil {
		t.Error("missing baseline file did not error")
	}
}
