// Command benchtables regenerates the paper's evaluation: every table
// and figure, or a selected one, rendered as text (or CSV for plotting).
//
// Experiments fan out across a bounded worker pool (-parallel, default
// GOMAXPROCS): whole experiments run concurrently, and each experiment
// fans its independent rows, averaged seeds and cluster nodes out
// again. Simulation randomness is derived from explicit seeds, so the
// output is byte-identical at every -parallel setting — only the
// wall-clock time changes.
//
// Examples:
//
//	benchtables -exp all
//	benchtables -exp all -parallel 1     # sequential reference schedule
//	benchtables -exp table3
//	benchtables -exp fig7 -csv
//	benchtables -exp summary -runs 1
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"

	"goear/internal/experiments"
	"goear/internal/par"
	"goear/internal/report"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchtables:", err)
		os.Exit(1)
	}
}

// order presents experiments in the paper's order rather than sorted.
var order = []string{
	"table1", "fig1", "table2", "table3", "table4", "table5", "table6",
	"fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "table7", "summary",
	"ablations", "baselines", "future_work", "model_accuracy",
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("benchtables", flag.ContinueOnError)
	exp := fs.String("exp", "all", "experiment id or 'all' (see earctl experiments)")
	csv := fs.Bool("csv", false, "emit CSV instead of aligned text")
	runs := fs.Int("runs", 3, "averaged runs per configuration (the paper uses 3)")
	parallel := fs.Int("parallel", runtime.GOMAXPROCS(0),
		"worker bound for concurrent experiment generation (1 = sequential; output is identical at any setting)")
	exact := fs.Bool("exact", false,
		"disable the macro-step fast-forward and integrate every tick (several times slower; results differ by <0.1%)")
	cpuprofile := fs.String("cpuprofile", "", "write a CPU profile of the generation to this file")
	memprofile := fs.String("memprofile", "", "write an allocation profile (alloc_space) to this file at exit")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *parallel < 1 {
		return fmt.Errorf("-parallel must be >= 1 (got %d)", *parallel)
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			return err
		}
		defer func() {
			// The allocs profile covers the whole run; no GC trigger is
			// needed since alloc_space counts cumulative allocation.
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "benchtables: memprofile:", err)
			}
			f.Close()
		}()
	}

	ctx := experiments.New()
	ctx.Runs = *runs
	ctx.Parallel = *parallel
	ctx.Exact = *exact

	ids := []string{*exp}
	if *exp == "all" {
		ids = order
	}
	// Experiments render into per-experiment buffers that are flushed
	// in presentation order, so the byte stream does not depend on
	// which experiment finishes first. The shared context deduplicates
	// the many runs the experiments have in common.
	bufs := make([]bytes.Buffer, len(ids))
	err := par.ForEach(*parallel, len(ids), func(i int) error {
		tabs, err := ctx.Generate(ids[i])
		if err != nil {
			return err
		}
		return renderTables(&bufs[i], tabs, *csv)
	})
	if err != nil {
		return err
	}
	for i := range bufs {
		if _, err := out.Write(bufs[i].Bytes()); err != nil {
			return err
		}
	}
	return nil
}

// renderTables writes an experiment's tables (text or CSV), each
// followed by a blank line, matching the historical streaming format.
func renderTables(w io.Writer, tabs []report.Table, csv bool) error {
	for _, t := range tabs {
		if csv {
			if err := t.CSV(w); err != nil {
				return err
			}
		} else {
			if err := t.Render(w); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}
