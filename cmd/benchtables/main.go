// Command benchtables regenerates the paper's evaluation: every table
// and figure, or a selected one, rendered as text (or CSV for plotting).
//
// Examples:
//
//	benchtables -exp all
//	benchtables -exp table3
//	benchtables -exp fig7 -csv
//	benchtables -exp summary -runs 1
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"goear/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchtables:", err)
		os.Exit(1)
	}
}

// order presents experiments in the paper's order rather than sorted.
var order = []string{
	"table1", "fig1", "table2", "table3", "table4", "table5", "table6",
	"fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "table7", "summary",
	"ablations", "baselines", "future_work", "model_accuracy",
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("benchtables", flag.ContinueOnError)
	exp := fs.String("exp", "all", "experiment id or 'all' (see earctl experiments)")
	csv := fs.Bool("csv", false, "emit CSV instead of aligned text")
	runs := fs.Int("runs", 3, "averaged runs per configuration (the paper uses 3)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	ctx := experiments.New()
	ctx.Runs = *runs

	ids := []string{*exp}
	if *exp == "all" {
		ids = order
	}
	for _, id := range ids {
		tabs, err := ctx.Generate(id)
		if err != nil {
			return err
		}
		for _, t := range tabs {
			if *csv {
				if err := t.CSV(out); err != nil {
					return err
				}
			} else {
				if err := t.Render(out); err != nil {
					return err
				}
			}
			fmt.Fprintln(out)
		}
	}
	return nil
}
