package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files under testdata/")

// goldenCases pins the rendered output of representative experiments at
// -runs 1. Simulation randomness is fully seed-derived, so these bytes
// are reproducible on any machine; a diff means the model, a policy or
// the report formatting changed. Regenerate deliberately with:
//
//	go test ./cmd/benchtables -run TestGolden -update
var goldenCases = []struct {
	exp   string
	csv   bool
	exact bool
}{
	{exp: "table3"},
	{exp: "table3", csv: true},
	{exp: "summary"},
	{exp: "summary", csv: true},
	// The -exact opt-out pins the per-tick reference integration the
	// default macro-stepped campaign is toleranced against.
	{exp: "table3", exact: true},
	{exp: "summary", exact: true},
}

func goldenPath(exp string, csv, exact bool) string {
	ext := "txt"
	if csv {
		ext = "csv"
	}
	suffix := ""
	if exact {
		suffix = "_exact"
	}
	return filepath.Join("testdata", fmt.Sprintf("%s_runs1%s.%s", exp, suffix, ext))
}

func TestGolden(t *testing.T) {
	for _, tc := range goldenCases {
		name := tc.exp
		if tc.csv {
			name += "_csv"
		}
		if tc.exact {
			name += "_exact"
		}
		t.Run(name, func(t *testing.T) {
			args := []string{"-exp", tc.exp, "-runs", "1", "-parallel", "1"}
			if tc.csv {
				args = append(args, "-csv")
			}
			if tc.exact {
				args = append(args, "-exact")
			}
			var got bytes.Buffer
			if err := run(args, &got); err != nil {
				t.Fatal(err)
			}
			path := goldenPath(tc.exp, tc.csv, tc.exact)
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if !bytes.Equal(got.Bytes(), want) {
				t.Errorf("output differs from %s (rerun with -update if the change is intended)\ngot:\n%s\nwant:\n%s",
					path, got.Bytes(), want)
			}
		})
	}
}

// TestParallelMatchesSequential is the engine's core guarantee: the
// byte stream is identical at every worker count. Each invocation uses
// a fresh context, so nothing is shared between the two runs but the
// seeds.
func TestParallelMatchesSequential(t *testing.T) {
	for _, exp := range []string{"table3", "fig3", "summary"} {
		t.Run(exp, func(t *testing.T) {
			var seq, par bytes.Buffer
			if err := run([]string{"-exp", exp, "-runs", "1", "-parallel", "1"}, &seq); err != nil {
				t.Fatal(err)
			}
			if err := run([]string{"-exp", exp, "-runs", "1", "-parallel", "8"}, &par); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(seq.Bytes(), par.Bytes()) {
				t.Errorf("-parallel 8 output differs from sequential\nsequential:\n%s\nparallel:\n%s",
					seq.Bytes(), par.Bytes())
			}
		})
	}
}

func TestParallelFlagValidation(t *testing.T) {
	var b bytes.Buffer
	if err := run([]string{"-exp", "table2", "-parallel", "0"}, &b); err == nil {
		t.Error("expected error for -parallel 0")
	}
}
