package main

import (
	"strings"
	"testing"
)

func TestSingleExperiment(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-exp", "table2", "-runs", "1"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "Table II") || !strings.Contains(out, "DGEMM") {
		t.Errorf("unexpected output:\n%s", out)
	}
}

func TestCSVOutput(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-exp", "table2", "-runs", "1", "-csv"}, &b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "kernel,prog. model,") {
		t.Errorf("CSV header missing:\n%s", out)
	}
	if strings.Contains(out, "---") {
		t.Error("CSV output contains text-table rule")
	}
}

func TestUnknownExperiment(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"-exp", "nope"}, &b); err == nil {
		t.Error("expected error for unknown experiment")
	}
}

func TestOrderCoversAllGenerators(t *testing.T) {
	// The presentation order must include every registered experiment.
	var b strings.Builder
	seen := map[string]bool{}
	for _, id := range order {
		seen[id] = true
	}
	if err := run([]string{"-exp", "table1", "-runs", "1"}, &b); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"table1", "table7", "fig1", "fig8", "summary", "ablations"} {
		if !seen[id] {
			t.Errorf("presentation order missing %s", id)
		}
	}
}
