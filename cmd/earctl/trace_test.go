package main

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"goear/internal/telemetry/trace"
)

// serveTraces spins a buffer with one two-level trace plus an
// unrelated root behind the /traces handler and returns its host:port.
func serveTraces(t *testing.T) (string, *trace.Buffer) {
	t.Helper()
	buf := trace.NewBuffer(16)
	tr := trace.New("eardbd", buf)
	root := tr.RootNamed("n01/1", "server.batch", 1.0)
	root.Attr("batch", "n01/1")
	kid := root.Child("server.store", 1.0)
	kid.End(1.002)
	root.End(1.005)
	other := tr.Root("server.query", 2.0)
	other.Attr("kind", "stats")
	other.End(2.001)
	mux := http.NewServeMux()
	mux.Handle("/traces", buf.Handler())
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return strings.TrimPrefix(srv.URL, "http://"), buf
}

func TestTraceTree(t *testing.T) {
	addr, _ := serveTraces(t)
	out := capture(t, []string{"trace", "-addr", addr})
	for _, want := range []string{
		"trace ", "server.batch [eardbd] 5.000ms batch=n01/1",
		"  server.store [eardbd] 2.000ms",
		"server.query [eardbd] 1.000ms kind=stats",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("tree missing %q:\n%s", want, out)
		}
	}
	// The child renders nested one level under its parent.
	batchAt := strings.Index(out, "  server.batch")
	storeAt := strings.Index(out, "    server.store")
	if batchAt < 0 || storeAt < batchAt {
		t.Errorf("store span not nested under batch:\n%s", out)
	}
}

func TestTraceFilters(t *testing.T) {
	addr, buf := serveTraces(t)
	kindOnly := capture(t, []string{"trace", "-addr", addr, "-kind", "server.query"})
	if strings.Contains(kindOnly, "server.batch") || !strings.Contains(kindOnly, "server.query") {
		t.Errorf("-kind filter leaked:\n%s", kindOnly)
	}
	spans := buf.Spans()
	id := spans[0].Trace.String()
	byTrace := capture(t, []string{"trace", "-addr", addr, "-trace", id})
	if strings.Contains(byTrace, "server.query") || !strings.Contains(byTrace, "server.store") {
		t.Errorf("-trace filter leaked:\n%s", byTrace)
	}
	raw := capture(t, []string{"trace", "-addr", addr, "-raw", "-since", "2"})
	if strings.Contains(raw, `"kind":"server.store"`) || !strings.Contains(raw, `"seq":3`) {
		t.Errorf("-since resume output wrong:\n%s", raw)
	}
	empty := capture(t, []string{"trace", "-addr", addr, "-kind", "nothing"})
	if !strings.Contains(empty, "no spans") {
		t.Errorf("empty result output = %q", empty)
	}
}

func TestTraceErrors(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"trace"}, &b); err == nil {
		t.Error("trace without -addr accepted")
	}
	if err := run([]string{"trace", "-addr", "127.0.0.1:1"}, &b); err == nil {
		t.Error("dial to dead endpoint accepted")
	}
	addr, _ := serveTraces(t)
	if err := run([]string{"trace", "-addr", addr, "-trace", "zzzz"}, &b); err == nil {
		t.Error("bad trace id accepted")
	}
}
