package main

import (
	"net/http/httptest"
	"strings"
	"testing"

	"goear/internal/telemetry"
)

// serveTelemetry spins a telemetry set with known values behind an
// HTTP server and returns its host:port.
func serveTelemetry(t *testing.T) string {
	t.Helper()
	set := telemetry.NewSet()
	set.Registry.Counter("goear_test_batches_total", "test counter").Add(7)
	set.Registry.Gauge("goear_test_power_watts", "test gauge").Set(412.5)
	set.Events.Record(telemetry.Event{Kind: "test.event", Src: "n0"})
	srv := httptest.NewServer(set.Handler())
	t.Cleanup(srv.Close)
	return strings.TrimPrefix(srv.URL, "http://")
}

func TestMetricsTable(t *testing.T) {
	addr := serveTelemetry(t)
	out := capture(t, []string{"metrics", "-addr", addr})
	for _, want := range []string{"telemetry snapshot", "goear_test_batches_total", "7", "goear_test_power_watts", "412.5"} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics table missing %q:\n%s", want, out)
		}
	}
}

func TestMetricsRawAndEvents(t *testing.T) {
	addr := serveTelemetry(t)
	raw := capture(t, []string{"metrics", "-addr", addr, "-raw"})
	if !strings.Contains(raw, "# TYPE goear_test_batches_total counter") {
		t.Errorf("raw exposition missing TYPE line:\n%s", raw)
	}
	ev := capture(t, []string{"metrics", "-addr", addr, "-events"})
	if !strings.Contains(ev, `"kind":"test.event"`) {
		t.Errorf("events output = %q", ev)
	}
}

func TestMetricsErrors(t *testing.T) {
	var b strings.Builder
	if err := run([]string{"metrics"}, &b); err == nil {
		t.Error("metrics without -addr accepted")
	}
	if err := run([]string{"metrics", "-addr", "127.0.0.1:1"}, &b); err == nil {
		t.Error("dial to dead endpoint accepted")
	}
}
