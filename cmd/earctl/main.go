// Command earctl inspects the simulated platform the way EAR's admin
// tools inspect real nodes: the workload catalogue, the registered
// policy plugins, the pstate tables, the boot-time MSR state of a
// socket, and an accounting database.
//
// Subcommands:
//
//	earctl workloads          list the workload catalogue
//	earctl policies           list registered energy policies
//	earctl pstates [-platform SD530|GPUNode]
//	earctl msr     [-platform SD530|GPUNode]
//	earctl experiments        list reproducible paper experiments
//	earctl acct -db jobs.json list accounting records
//	earctl conf [-f ear.conf]  show the effective site configuration
//	earctl report -db jobs.json per-application and per-policy energy report
//	earctl dbd -addr host:port[,host:port...] <stats|aggregate|jobs|summary> query a live eardbd or a shard fleet
//	earctl jobs -addr host:port[,host:port...] [-user u] [-job j] [-since s] list per-job energy records
//	earctl metrics -addr host:port  scrape a daemon's telemetry endpoint
//	earctl trace -addr host:port [-trace id] [-kind prefix] [-since seq]  fetch a daemon's span traces
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strconv"
	"strings"

	"goear/internal/accounting"
	"goear/internal/cpu"
	"goear/internal/earconf"
	"goear/internal/eard"
	"goear/internal/eardbd"
	"goear/internal/eardbd/fed"
	"goear/internal/experiments"
	"goear/internal/msr"
	"goear/internal/policy"
	"goear/internal/report"
	"goear/internal/telemetry"
	"goear/internal/telemetry/trace"
	"goear/internal/wire"
	"goear/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "earctl:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: earctl <workloads|policies|pstates|msr|experiments|acct|conf|report|dbd|jobs|metrics|trace> [flags]")
	}
	switch args[0] {
	case "workloads":
		return workloads(out)
	case "policies":
		for _, n := range policy.Names() {
			fmt.Fprintln(out, n)
		}
		return nil
	case "pstates":
		return pstates(args[1:], out)
	case "msr":
		return msrDump(args[1:], out)
	case "experiments":
		for _, id := range experiments.IDs() {
			fmt.Fprintln(out, id)
		}
		return nil
	case "acct":
		return acct(args[1:], out)
	case "conf":
		return confCmd(args[1:], out)
	case "report":
		return reportCmd(args[1:], out)
	case "dbd":
		return dbdCmd(args[1:], out)
	case "jobs":
		return jobsCmd(args[1:], out)
	case "metrics":
		return metricsCmd(args[1:], out)
	case "trace":
		return traceCmd(args[1:], out)
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func workloads(out io.Writer) error {
	t := report.Table{
		Columns: []string{"name", "class", "model", "nodes", "cores/node",
			"time(s)", "CPI", "GB/s", "power(W)"},
	}
	for _, s := range workload.Catalog() {
		g := s.DefaultSegment
		if len(s.Segments) > 0 {
			g = s.Segments[0]
		}
		if err := t.AddRow(s.Name, string(s.Class), s.ProgModel,
			fmt.Sprint(s.Nodes), fmt.Sprint(s.ActiveCores),
			report.F(s.TargetTimeSec, 0), report.F(g.TargetCPI, 2),
			report.F(g.TargetGBs, 2), report.F(g.TargetPowerW, 0)); err != nil {
			return err
		}
	}
	return t.Render(out)
}

func platformByName(name string) (workload.Platform, error) {
	switch name {
	case "SD530", "":
		return workload.SD530(), nil
	case "GPUNode":
		return workload.GPUNode(), nil
	case "CascadeLake":
		return workload.CascadeLake(), nil
	default:
		return workload.Platform{}, fmt.Errorf("unknown platform %q (SD530, GPUNode, CascadeLake)", name)
	}
}

func pstates(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("pstates", flag.ContinueOnError)
	plName := fs.String("platform", "SD530", "platform name")
	if err := fs.Parse(args); err != nil {
		return err
	}
	pl, err := platformByName(*plName)
	if err != nil {
		return err
	}
	m := pl.Machine.CPU
	fmt.Fprintf(out, "%s\n", m.Name)
	fmt.Fprintf(out, "sockets %d, cores/socket %d, AVX512 all-core %.1f GHz, uncore %.1f-%.1f GHz\n",
		m.Sockets, m.CoresPerSocket, float64(m.AVX512Ratio)/10,
		float64(m.UncoreMinRatio)/10, float64(m.UncoreMaxRatio)/10)
	t := report.Table{Columns: []string{"pstate", "frequency", "note"}}
	for p, f := range m.Pstates() {
		note := ""
		switch {
		case p == 0:
			note = "turbo"
		case p == 1:
			note = "nominal"
		case uint64(0) == m.AVX512Ratio-(m.NominalRatio-uint64(p-1)):
			note = "AVX512 licence"
		}
		if err := t.AddRow(fmt.Sprint(p), f.String(), note); err != nil {
			return err
		}
	}
	return t.Render(out)
}

func msrDump(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("msr", flag.ContinueOnError)
	plName := fs.String("platform", "SD530", "platform name")
	if err := fs.Parse(args); err != nil {
		return err
	}
	pl, err := platformByName(*plName)
	if err != nil {
		return err
	}
	s, err := cpu.NewSocket(pl.Machine.CPU, 0)
	if err != nil {
		return err
	}
	regs := []struct {
		name string
		addr uint32
	}{
		{"IA32_MPERF", msr.IA32MPerf},
		{"IA32_APERF", msr.IA32APerf},
		{"IA32_PERF_STATUS", msr.IA32PerfStatus},
		{"IA32_PERF_CTL", msr.IA32PerfCtl},
		{"IA32_ENERGY_PERF_BIAS", msr.IA32EnergyPerfBias},
		{"MSR_RAPL_POWER_UNIT", msr.MSRRaplPowerUnit},
		{"MSR_PKG_ENERGY_STATUS", msr.MSRPkgEnergyStatus},
		{"MSR_DRAM_ENERGY_STATUS", msr.MSRDramEnergyStatus},
		{"MSR_UNCORE_RATIO_LIMIT", msr.MSRUncoreRatioLimit},
		{"MSR_UNCORE_PERF_STATUS", msr.MSRUncorePerfStatus},
	}
	t := report.Table{
		Title:   "boot-time MSR state, socket 0 (" + pl.Machine.CPU.Name + ")",
		Columns: []string{"register", "address", "value", "decoded"},
	}
	for _, r := range regs {
		v, err := s.MSR.Read(r.addr)
		if err != nil {
			return err
		}
		dec := ""
		switch r.addr {
		case msr.MSRUncoreRatioLimit:
			u := msr.DecodeUncoreRatioLimit(v)
			dec = fmt.Sprintf("min %.1fGHz max %.1fGHz", float64(u.MinRatio)/10, float64(u.MaxRatio)/10)
		case msr.IA32PerfCtl, msr.IA32PerfStatus:
			dec = fmt.Sprintf("ratio %d (%.1fGHz)", msr.DecodePerfCtl(v), float64(msr.DecodePerfCtl(v))/10)
		case msr.MSRRaplPowerUnit:
			dec = fmt.Sprintf("ESU 2^-%d J", (v>>8)&0x1F)
		}
		if err := t.AddRow(r.name, fmt.Sprintf("0x%03X", r.addr),
			fmt.Sprintf("0x%016X", v), dec); err != nil {
			return err
		}
	}
	return t.Render(out)
}

func confCmd(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("conf", flag.ContinueOnError)
	path := fs.String("f", "", "ear.conf-style file (default: built-in site defaults)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	c := earconf.Default()
	if *path != "" {
		f, err := os.Open(*path)
		if err != nil {
			return err
		}
		defer f.Close()
		c, err = earconf.Parse(f)
		if err != nil {
			return err
		}
	}
	t := report.Table{Columns: []string{"key", "value"}}
	auth := "all registered policies"
	if len(c.AuthorizedPolicies) > 0 {
		auth = fmt.Sprint(c.AuthorizedPolicies)
	}
	rows := [][2]string{
		{"DefaultPolicy", c.DefaultPolicy},
		{"DefaultCPUPolicyTh", report.F(c.DefaultCPUPolicyTh, 3)},
		{"DefaultUncPolicyTh", report.F(c.DefaultUncPolicyTh, 3)},
		{"MinSignatureWindowSec", report.F(c.MinSignatureWindowSec, 1)},
		{"SignatureChangeTh", report.F(c.SignatureChangeTh, 2)},
		{"AuthorizedPolicies", auth},
		{"ClusterPowerBudgetW", report.F(c.ClusterPowerBudgetW, 0)},
	}
	for _, r := range rows {
		if err := t.AddRow(r[0], r[1]); err != nil {
			return err
		}
	}
	return t.Render(out)
}

func reportCmd(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("report", flag.ContinueOnError)
	dbPath := fs.String("db", "", "accounting database JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dbPath == "" {
		return fmt.Errorf("report needs -db")
	}
	f, err := os.Open(*dbPath)
	if err != nil {
		return err
	}
	defer f.Close()
	db := eard.NewDB()
	if err := db.Load(f); err != nil {
		return err
	}
	byApp := report.Table{
		Title:   "energy by application",
		Columns: []string{"app", "jobs", "node hours", "energy (kJ)", "avg power (W)"},
	}
	for _, a := range db.ByApp() {
		if err := byApp.AddRow(a.App, fmt.Sprint(a.Jobs), report.F(a.NodeHours, 3),
			report.F(a.EnergyKJ, 1), report.F(a.AvgPowerW, 1)); err != nil {
			return err
		}
	}
	if err := byApp.Render(out); err != nil {
		return err
	}
	fmt.Fprintln(out)
	byPol := report.Table{
		Title:   "energy by policy",
		Columns: []string{"policy", "jobs", "node hours", "energy (kJ)", "avg power (W)"},
	}
	for _, a := range db.ByPolicy() {
		if err := byPol.AddRow(a.Policy, fmt.Sprint(a.Jobs), report.F(a.NodeHours, 3),
			report.F(a.EnergyKJ, 1), report.F(a.AvgPowerW, 1)); err != nil {
			return err
		}
	}
	return byPol.Render(out)
}

// parseEndpoints resolves the dbd target flags into a dial plan: a
// unix socket path, a single TCP endpoint, or a comma-separated list
// of shard endpoints (queried through an in-process federation root).
func parseEndpoints(addr, unixSock string) (network string, targets []string, err error) {
	if (addr == "") == (unixSock == "") {
		return "", nil, fmt.Errorf("dbd needs exactly one of -addr or -unix")
	}
	if unixSock != "" {
		return "unix", []string{unixSock}, nil
	}
	for _, part := range strings.Split(addr, ",") {
		if part = strings.TrimSpace(part); part != "" {
			targets = append(targets, part)
		}
	}
	if len(targets) == 0 {
		return "", nil, fmt.Errorf("-addr lists no endpoints")
	}
	return "tcp", targets, nil
}

// dialEndpoints opens one query connection: straight to a single
// daemon, or through an in-process federation root when several shard
// endpoints are listed — the same merged view a long-running root
// serves, built on the fly. The returned cleanup closes everything.
func dialEndpoints(network string, targets []string, maxFrame int) (net.Conn, func(), error) {
	if len(targets) == 1 {
		conn, err := net.Dial(network, targets[0])
		if err != nil {
			return nil, nil, fmt.Errorf("dial eardbd: %w", err)
		}
		return conn, func() { conn.Close() }, nil
	}
	cfg := fed.Config{MaxFramePayload: maxFrame}
	for _, a := range targets {
		a := a
		cfg.Shards = append(cfg.Shards, fed.Shard{
			Name: a,
			Dial: func() (net.Conn, error) { return net.Dial("tcp", a) },
		})
	}
	root, err := fed.NewRoot(cfg)
	if err != nil {
		return nil, nil, err
	}
	conn, server := net.Pipe()
	go root.ServeConn(server)
	return conn, func() {
		conn.Close()
		root.Close()
	}, nil
}

// dbdCmd queries a running eardbd daemon over its wire protocol. When
// -addr lists several shard endpoints, the answers are merged through
// a federation root, so the rendered snapshot is the cluster view.
func dbdCmd(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("dbd", flag.ContinueOnError)
	addr := fs.String("addr", "", "eardbd TCP address, or a comma-separated shard list to federate over")
	unixSock := fs.String("unix", "", "eardbd unix socket path")
	job := fs.String("job", "", "job id for the summary query")
	step := fs.String("step", "", "step id for the summary query")
	maxFrame := fs.Int("max-frame", 0, "frame payload cap in bytes (default 1 MiB; raise to match the daemons' -max-frame)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	network, targets, err := parseEndpoints(*addr, *unixSock)
	if err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: earctl dbd -addr host:port[,host:port...] <stats|aggregate|jobs|summary>")
	}
	kind := fs.Arg(0)

	conn, cleanup, err := dialEndpoints(network, targets, *maxFrame)
	if err != nil {
		return err
	}
	defer cleanup()

	switch kind {
	case wire.QueryStats:
		res, err := eardbd.Query(conn, wire.Query{Kind: kind}, *maxFrame)
		if err != nil {
			return err
		}
		var st eardbd.Stats
		if err := json.Unmarshal(res.Data, &st); err != nil {
			return err
		}
		t := report.Table{Title: "eardbd activity", Columns: []string{"counter", "value"}}
		for _, row := range [][2]string{
			{"connections", fmt.Sprint(st.Connections)},
			{"batches", fmt.Sprint(st.Batches)},
			{"duplicate batches", fmt.Sprint(st.DuplicateBatches)},
			{"records accepted", fmt.Sprint(st.RecordsAccepted)},
			{"records duplicate", fmt.Sprint(st.RecordsDuplicate)},
			{"records replaced", fmt.Sprint(st.RecordsReplaced)},
			{"batches rejected", fmt.Sprint(st.BatchesRejected)},
			{"protocol errors", fmt.Sprint(st.ProtocolErrors)},
			{"queries", fmt.Sprint(st.Queries)},
		} {
			if err := t.AddRow(row[0], row[1]); err != nil {
				return err
			}
		}
		return t.Render(out)
	case wire.QueryAggregate:
		res, err := eardbd.Query(conn, wire.Query{Kind: kind}, *maxFrame)
		if err != nil {
			return err
		}
		var agg eardbd.Aggregate
		if err := json.Unmarshal(res.Data, &agg); err != nil {
			return err
		}
		t := report.Table{Title: "cluster aggregate", Columns: []string{"nodes", "DC power (W)", "energy (kJ)", "records"}}
		if err := t.AddRow(fmt.Sprint(agg.Nodes), report.F(agg.TotalPowerW, 1),
			report.F(agg.TotalEnergyJ/1000, 1), fmt.Sprint(agg.Records)); err != nil {
			return err
		}
		return t.Render(out)
	case wire.QueryJobs:
		res, err := eardbd.Query(conn, wire.Query{Kind: kind}, *maxFrame)
		if err != nil {
			return err
		}
		var sums []eard.JobSummary
		if err := json.Unmarshal(res.Data, &sums); err != nil {
			return err
		}
		t := report.Table{Columns: []string{"job", "step", "nodes", "time(s)", "energy(J)", "avg power(W)"}}
		for _, s := range sums {
			if err := t.AddRow(s.JobID, s.StepID, fmt.Sprint(s.Nodes),
				report.F(s.TimeSec, 2), report.F(s.EnergyJ, 0), report.F(s.AvgPower, 2)); err != nil {
				return err
			}
		}
		return t.Render(out)
	case wire.QuerySummary:
		if *job == "" {
			return fmt.Errorf("summary needs -job (and usually -step)")
		}
		res, err := eardbd.Query(conn, wire.Query{Kind: kind, Job: *job, Step: *step}, *maxFrame)
		if err != nil {
			return err
		}
		var s eard.JobSummary
		if err := json.Unmarshal(res.Data, &s); err != nil {
			return err
		}
		t := report.Table{Columns: []string{"job", "step", "nodes", "time(s)", "energy(J)", "avg power(W)"}}
		if err := t.AddRow(s.JobID, s.StepID, fmt.Sprint(s.Nodes),
			report.F(s.TimeSec, 2), report.F(s.EnergyJ, 0), report.F(s.AvgPower, 2)); err != nil {
			return err
		}
		return t.Render(out)
	default:
		return fmt.Errorf("unknown dbd query %q (stats, aggregate, jobs, summary)", kind)
	}
}

// jobsCmd lists per-job energy accounting records from a live eardbd
// or a shard fleet (federated through an in-process root). The page a
// root serves is byte-identical to the page a single daemon holding
// the union of the shards would serve, so the rendered table is the
// same whichever way the cluster is reached.
func jobsCmd(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("jobs", flag.ContinueOnError)
	addr := fs.String("addr", "", "eardbd TCP address, or a comma-separated shard list to federate over")
	unixSock := fs.String("unix", "", "eardbd unix socket path")
	user := fs.String("user", "", "filter by user")
	job := fs.String("job", "", "filter by job id")
	since := fs.Float64("since", 0, "drop records ending at or before this time (seconds)")
	limit := fs.Int("limit", 0, "page size (default 100, max 1000)")
	cursor := fs.String("cursor", "", "resume after this cursor (from a previous page)")
	all := fs.Bool("all", false, "follow cursors until the listing is exhausted")
	maxFrame := fs.Int("max-frame", 0, "frame payload cap in bytes (default 1 MiB)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	network, targets, err := parseEndpoints(*addr, *unixSock)
	if err != nil {
		return err
	}
	conn, cleanup, err := dialEndpoints(network, targets, *maxFrame)
	if err != nil {
		return err
	}
	defer cleanup()

	queryFn := func(q accounting.Query) (accounting.Page, error) {
		res, err := eardbd.Query(conn, wire.Query{
			Kind:   wire.QueryAcctJobs,
			User:   q.User,
			Job:    q.Job,
			Since:  q.Since,
			Limit:  q.Limit,
			Cursor: q.Cursor,
		}, *maxFrame)
		if err != nil {
			return accounting.Page{}, err
		}
		var p accounting.Page
		if err := json.Unmarshal(res.Data, &p); err != nil {
			return accounting.Page{}, err
		}
		return p, nil
	}

	q := accounting.Query{User: *user, Job: *job, Since: *since, Limit: *limit, Cursor: *cursor}
	var recs []accounting.Record
	var next string
	total := 0
	if *all {
		if recs, err = accounting.Walk(queryFn, q); err != nil {
			return err
		}
		total = len(recs)
	} else {
		page, err := queryFn(q)
		if err != nil {
			return err
		}
		recs, next, total = page.Records, page.Next, page.Total
	}

	t := report.Table{
		Columns: []string{"job", "step", "user", "node", "phase", "policy",
			"pkg(J)", "dram(J)", "uncore(J)", "node(J)", "cpu(GHz)", "imc(GHz)"},
	}
	for _, r := range recs {
		if err := t.AddRow(r.JobID, r.StepID, r.User, r.Node, fmt.Sprint(r.Phase), r.Policy,
			report.F(r.PkgJ, 1), report.F(r.DramJ, 1), report.F(r.UncoreJ, 1), report.F(r.NodeJ, 1),
			report.F(r.AvgCPUGHz, 2), report.F(r.AvgIMCGHz, 2)); err != nil {
			return err
		}
	}
	if err := t.Render(out); err != nil {
		return err
	}
	fmt.Fprintf(out, "%d of %d records\n", len(recs), total)
	if next != "" {
		fmt.Fprintf(out, "next: -cursor %s\n", next)
	}
	return nil
}

// metricsCmd scrapes a daemon's telemetry HTTP endpoint (eardbd
// -telemetry, earsim -telemetry) and renders the snapshot.
func metricsCmd(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("metrics", flag.ContinueOnError)
	addr := fs.String("addr", "", "telemetry HTTP address (host:port)")
	raw := fs.Bool("raw", false, "print the raw Prometheus exposition instead of a table")
	events := fs.Bool("events", false, "fetch the event log (/events) instead of the metrics")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *addr == "" {
		return fmt.Errorf("metrics needs -addr")
	}
	path := "/metrics"
	if *events {
		path = "/events"
	}
	resp, err := http.Get("http://" + *addr + path)
	if err != nil {
		return fmt.Errorf("scrape telemetry: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("scrape telemetry: %s returned %s", path, resp.Status)
	}
	if *events || *raw {
		_, err := io.Copy(out, resp.Body)
		return err
	}
	samples, err := telemetry.ParseText(resp.Body)
	if err != nil {
		return err
	}
	t := report.Table{Title: "telemetry snapshot", Columns: []string{"metric", "labels", "value"}}
	for _, s := range samples {
		labels := s.Labels
		if labels == "" {
			labels = "-"
		}
		if err := t.AddRow(s.Name, labels, strconv.FormatFloat(s.Value, 'g', -1, 64)); err != nil {
			return err
		}
	}
	return t.Render(out)
}

// traceCmd fetches span traces from a daemon's /traces endpoint
// (eardbd -trace) and renders them as indented trees, one per trace.
func traceCmd(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("trace", flag.ContinueOnError)
	addr := fs.String("addr", "", "telemetry HTTP address (host:port)")
	traceID := fs.String("trace", "", "only spans of this trace id (16 hex digits)")
	kind := fs.String("kind", "", "only spans whose kind has this dot-path prefix")
	since := fs.Uint64("since", 0, "only spans recorded after this sequence number (arrival order)")
	raw := fs.Bool("raw", false, "print the raw JSON lines instead of trees")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *addr == "" {
		return fmt.Errorf("trace needs -addr")
	}
	q := url.Values{}
	if *traceID != "" {
		q.Set("trace", *traceID)
	}
	if *kind != "" {
		q.Set("kind", *kind)
	}
	if *since > 0 {
		q.Set("since", strconv.FormatUint(*since, 10))
	}
	u := "http://" + *addr + "/traces"
	if len(q) > 0 {
		u += "?" + q.Encode()
	}
	resp, err := http.Get(u)
	if err != nil {
		return fmt.Errorf("fetch traces: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("fetch traces: /traces returned %s", resp.Status)
	}
	if d := resp.Header.Get(trace.DroppedHeader); d != "" && d != "0" {
		fmt.Fprintf(out, "warning: %s span(s) overwritten in the daemon's ring buffer\n", d)
	}
	if *raw {
		_, err := io.Copy(out, resp.Body)
		return err
	}
	var spans []trace.Span
	dec := json.NewDecoder(resp.Body)
	for dec.More() {
		var s trace.Span
		if err := dec.Decode(&s); err != nil {
			return fmt.Errorf("decode span: %w", err)
		}
		spans = append(spans, s)
	}
	if len(spans) == 0 {
		fmt.Fprintln(out, "no spans")
		return nil
	}
	printSpanTrees(out, spans)
	return nil
}

// printSpanTrees renders spans as one indented tree per trace, in
// input order. Spans whose parent is absent (filtered out, or still
// open server-side) render as roots.
func printSpanTrees(out io.Writer, spans []trace.Span) {
	present := map[trace.HexID]bool{}
	for _, s := range spans {
		present[s.ID] = true
	}
	kids := map[trace.HexID][]trace.Span{}
	var roots []trace.Span
	for _, s := range spans {
		if s.Parent != 0 && present[s.Parent] {
			kids[s.Parent] = append(kids[s.Parent], s)
		} else {
			roots = append(roots, s)
		}
	}
	var walk func(s trace.Span, depth int)
	walk = func(s trace.Span, depth int) {
		line := strings.Repeat("  ", depth) + s.Kind
		if s.Src != "" {
			line += " [" + s.Src + "]"
		}
		if s.End != s.Start {
			line += fmt.Sprintf(" %.3fms", (s.End-s.Start)*1e3)
		}
		attrs := append(trace.Attrs(nil), s.Attrs...)
		sort.Slice(attrs, func(i, j int) bool { return attrs[i].Key < attrs[j].Key })
		for _, at := range attrs {
			line += " " + at.Key + "=" + at.Value
		}
		fmt.Fprintln(out, line)
		for _, c := range kids[s.ID] {
			walk(c, depth+1)
		}
	}
	last := trace.HexID(0)
	for _, r := range roots {
		if r.Trace != last {
			fmt.Fprintf(out, "trace %s\n", r.Trace)
			last = r.Trace
		}
		walk(r, 1)
	}
}

func acct(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("acct", flag.ContinueOnError)
	dbPath := fs.String("db", "", "accounting database JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dbPath == "" {
		return fmt.Errorf("acct needs -db")
	}
	f, err := os.Open(*dbPath)
	if err != nil {
		return err
	}
	defer f.Close()
	db := eard.NewDB()
	if err := db.Load(f); err != nil {
		return err
	}
	t := report.Table{
		Columns: []string{"job", "step", "nodes", "app", "time(s)", "energy(J)", "avg power(W)"},
	}
	for _, js := range db.Jobs() {
		s, err := db.Summarize(js[0], js[1])
		if err != nil {
			return err
		}
		app := ""
		if recs := db.Job(js[0], js[1]); len(recs) > 0 {
			app = recs[0].App
		}
		if err := t.AddRow(js[0], js[1], fmt.Sprint(s.Nodes), app,
			report.F(s.TimeSec, 2), report.F(s.EnergyJ, 0), report.F(s.AvgPower, 2)); err != nil {
			return err
		}
	}
	return t.Render(out)
}
