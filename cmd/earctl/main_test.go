package main

import (
	"net"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"goear/internal/eard"
	"goear/internal/eardbd"
	"goear/internal/wire"
)

func capture(t *testing.T, args []string) string {
	t.Helper()
	var b strings.Builder
	if err := run(args, &b); err != nil {
		t.Fatalf("earctl %v: %v", args, err)
	}
	return b.String()
}

func TestUsageAndUnknown(t *testing.T) {
	var b strings.Builder
	if err := run(nil, &b); err == nil {
		t.Error("expected usage error")
	}
	if err := run([]string{"bogus"}, &b); err == nil {
		t.Error("expected unknown-subcommand error")
	}
}

func TestWorkloadsList(t *testing.T) {
	out := capture(t, []string{"workloads"})
	for _, want := range []string{"BT-MZ.C", "HPCG", "DGEMM", "GROMACS(II)", "cpu-bound", "mem-bound"} {
		if !strings.Contains(out, want) {
			t.Errorf("workloads output missing %q", want)
		}
	}
}

func TestPoliciesList(t *testing.T) {
	out := capture(t, []string{"policies"})
	for _, want := range []string{"min_energy", "min_energy_eufs", "min_time", "monitoring"} {
		if !strings.Contains(out, want) {
			t.Errorf("policies output missing %q", want)
		}
	}
}

func TestPstates(t *testing.T) {
	out := capture(t, []string{"pstates"})
	for _, want := range []string{"Gold 6148", "nominal", "turbo", "AVX512 licence", "2.2GHz"} {
		if !strings.Contains(out, want) {
			t.Errorf("pstates output missing %q", want)
		}
	}
	out = capture(t, []string{"pstates", "-platform", "GPUNode"})
	if !strings.Contains(out, "6142M") {
		t.Error("GPU platform not selected")
	}
	var b strings.Builder
	if err := run([]string{"pstates", "-platform", "bogus"}, &b); err == nil {
		t.Error("expected error for unknown platform")
	}
}

func TestMSRDump(t *testing.T) {
	out := capture(t, []string{"msr"})
	for _, want := range []string{"MSR_UNCORE_RATIO_LIMIT", "0x620", "min 1.2GHz max 2.4GHz", "ESU 2^-14 J"} {
		if !strings.Contains(out, want) {
			t.Errorf("msr output missing %q", want)
		}
	}
}

func TestExperimentsList(t *testing.T) {
	out := capture(t, []string{"experiments"})
	for _, want := range []string{"table1", "fig7", "summary", "ablations"} {
		if !strings.Contains(out, want) {
			t.Errorf("experiments output missing %q", want)
		}
	}
}

func TestAcct(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "jobs.json")
	db := eard.NewDB()
	if err := db.Insert(eard.JobRecord{
		JobID: "j1", StepID: "0", Node: "n0", App: "HPCG",
		TimeSec: 100, EnergyJ: 30000, AvgPower: 300,
	}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Save(f); err != nil {
		t.Fatal(err)
	}
	f.Close()

	out := capture(t, []string{"acct", "-db", path})
	if !strings.Contains(out, "j1") || !strings.Contains(out, "HPCG") {
		t.Errorf("acct output missing record: %s", out)
	}
	var b strings.Builder
	if err := run([]string{"acct"}, &b); err == nil {
		t.Error("expected error for missing -db")
	}
	if err := run([]string{"acct", "-db", filepath.Join(dir, "missing.json")}, &b); err == nil {
		t.Error("expected error for missing file")
	}
}

func TestConfCommand(t *testing.T) {
	out := capture(t, []string{"conf"})
	if !strings.Contains(out, "min_energy_eufs") || !strings.Contains(out, "MinSignatureWindowSec") {
		t.Errorf("default conf output:\n%s", out)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "ear.conf")
	if err := os.WriteFile(path, []byte("DefaultPolicy=monitoring\nClusterPowerBudgetW=4200\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out = capture(t, []string{"conf", "-f", path})
	if !strings.Contains(out, "monitoring") || !strings.Contains(out, "4200") {
		t.Errorf("parsed conf output:\n%s", out)
	}
	var b strings.Builder
	if err := run([]string{"conf", "-f", filepath.Join(dir, "missing")}, &b); err == nil {
		t.Error("expected error for missing file")
	}
}

func TestReportCommand(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "jobs.json")
	db := eard.NewDB()
	for i, app := range []string{"HPCG", "BT-MZ"} {
		if err := db.Insert(eard.JobRecord{
			JobID: "j" + string(rune('1'+i)), StepID: "0", Node: "n0",
			App: app, Policy: "min_energy_eufs", TimeSec: 100, EnergyJ: 30000,
		}); err != nil {
			t.Fatal(err)
		}
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Save(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	out := capture(t, []string{"report", "-db", path})
	for _, want := range []string{"energy by application", "energy by policy", "HPCG", "min_energy_eufs"} {
		if !strings.Contains(out, want) {
			t.Errorf("report output missing %q:\n%s", want, out)
		}
	}
	var b strings.Builder
	if err := run([]string{"report"}, &b); err == nil {
		t.Error("expected error for missing -db")
	}
}

// startDBD serves an eardbd on an ephemeral TCP port, seeded through
// the wire protocol so node powers are tracked like live reports.
func startDBD(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := eardbd.NewServer(eard.NewDB(), eardbd.Config{})
	go func() { _ = srv.Serve(l) }()
	t.Cleanup(func() { _ = srv.Close() })

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	f, err := wire.EncodeBatch(wire.Batch{ID: "seed/1", Node: "n01", Records: []eard.JobRecord{
		{JobID: "j1", StepID: "0", Node: "n01", App: "lulesh", TimeSec: 100, EnergyJ: 30000, AvgPower: 300},
		{JobID: "j1", StepID: "0", Node: "n02", App: "lulesh", TimeSec: 100, EnergyJ: 31000, AvgPower: 310},
		{JobID: "j2", StepID: "0", Node: "n01", App: "hpcg", TimeSec: 50, EnergyJ: 12500, AvgPower: 250},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := wire.WriteFrame(conn, f, 0); err != nil {
		t.Fatal(err)
	}
	if resp, err := wire.ReadFrame(conn, 0); err != nil || resp.Type != wire.TypeAck {
		t.Fatalf("seed batch not acked: %v %v", resp.Type, err)
	}
	return l.Addr().String()
}

func TestDbdQueries(t *testing.T) {
	addr := startDBD(t)

	// Last report per node wins: n01 250 W (j2) + n02 310 W.
	out := capture(t, []string{"dbd", "-addr", addr, "aggregate"})
	if !strings.Contains(out, "cluster aggregate") || !strings.Contains(out, "560.0") {
		t.Errorf("aggregate output = %q", out)
	}
	out = capture(t, []string{"dbd", "-addr", addr, "jobs"})
	if !strings.Contains(out, "j1") || !strings.Contains(out, "j2") {
		t.Errorf("jobs output = %q", out)
	}
	out = capture(t, []string{"dbd", "-addr", addr, "-job", "j1", "-step", "0", "summary"})
	if !strings.Contains(out, "j1") || !strings.Contains(out, "61000") || !strings.Contains(out, "305.00") {
		t.Errorf("summary output = %q", out)
	}
	out = capture(t, []string{"dbd", "-addr", addr, "stats"})
	if !strings.Contains(out, "eardbd activity") || !strings.Contains(out, "queries") {
		t.Errorf("stats output = %q", out)
	}
}

// TestParseEndpoints pins the dbd target-flag grammar: one unix
// socket, one TCP endpoint, or a comma-separated shard list.
func TestParseEndpoints(t *testing.T) {
	cases := []struct {
		name        string
		addr, unix  string
		wantNetwork string
		wantTargets []string
		wantErr     bool
	}{
		{name: "single tcp", addr: "127.0.0.1:4711", wantNetwork: "tcp", wantTargets: []string{"127.0.0.1:4711"}},
		{name: "two shards", addr: "a:1,b:2", wantNetwork: "tcp", wantTargets: []string{"a:1", "b:2"}},
		{name: "spaces and trailing comma", addr: " a:1 , b:2 ,", wantNetwork: "tcp", wantTargets: []string{"a:1", "b:2"}},
		{name: "unix socket", unix: "/run/eardbd.sock", wantNetwork: "unix", wantTargets: []string{"/run/eardbd.sock"}},
		{name: "neither", wantErr: true},
		{name: "both", addr: "a:1", unix: "/sock", wantErr: true},
		{name: "only commas", addr: ",,", wantErr: true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			network, targets, err := parseEndpoints(tc.addr, tc.unix)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("parseEndpoints(%q, %q) accepted", tc.addr, tc.unix)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if network != tc.wantNetwork {
				t.Errorf("network = %q, want %q", network, tc.wantNetwork)
			}
			if len(targets) != len(tc.wantTargets) {
				t.Fatalf("targets = %v, want %v", targets, tc.wantTargets)
			}
			for i := range targets {
				if targets[i] != tc.wantTargets[i] {
					t.Errorf("targets[%d] = %q, want %q", i, targets[i], tc.wantTargets[i])
				}
			}
		})
	}
}

// TestDbdFederatedQuery points dbd at two shard daemons at once: the
// in-process federation root must merge their snapshots into the
// cluster view.
func TestDbdFederatedQuery(t *testing.T) {
	addr1 := startDBD(t) // n01 250 W + n02 310 W
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := eardbd.NewServer(eard.NewDB(), eardbd.Config{})
	go func() { _ = srv.Serve(l) }()
	t.Cleanup(func() { _ = srv.Close() })
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	f, err := wire.EncodeBatch(wire.Batch{ID: "seed2/1", Node: "n03", Records: []eard.JobRecord{
		{JobID: "j3", StepID: "0", Node: "n03", App: "lulesh", TimeSec: 100, EnergyJ: 40000, AvgPower: 400},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := wire.WriteFrame(conn, f, 0); err != nil {
		t.Fatal(err)
	}
	if resp, err := wire.ReadFrame(conn, 0); err != nil || resp.Type != wire.TypeAck {
		t.Fatalf("seed batch not acked: %v %v", resp.Type, err)
	}

	both := addr1 + "," + l.Addr().String()
	// 250 + 310 + 400 W across three nodes.
	out := capture(t, []string{"dbd", "-addr", both, "aggregate"})
	if !strings.Contains(out, "960.0") || !strings.Contains(out, "3") {
		t.Errorf("federated aggregate output = %q", out)
	}
	out = capture(t, []string{"dbd", "-addr", both, "jobs"})
	for _, want := range []string{"j1", "j2", "j3"} {
		if !strings.Contains(out, want) {
			t.Errorf("federated jobs output missing %q: %q", want, out)
		}
	}
}

func TestDbdErrors(t *testing.T) {
	addr := startDBD(t)
	var b strings.Builder
	for _, args := range [][]string{
		{"dbd", "aggregate"},                       // no target
		{"dbd", "-addr", addr, "-unix", "x", "aggregate"}, // both targets
		{"dbd", "-addr", addr},                     // no query kind
		{"dbd", "-addr", addr, "bogus"},            // unknown kind
		{"dbd", "-addr", addr, "summary"},          // summary without -job
	} {
		if err := run(args, &b); err == nil {
			t.Errorf("earctl %v accepted", args)
		}
	}
	if err := run([]string{"dbd", "-addr", "127.0.0.1:1", "stats"}, &b); err == nil {
		t.Error("dial to dead daemon accepted")
	}
}
