// Package goear is a faithful reimplementation and simulation testbed
// for EAR's explicit uncore frequency scaling (Corbalan et al., IEEE
// CLUSTER 2021): the EAR runtime library (Dynais loop detection,
// signature pipeline, AVX512-aware energy models, the policy plugin API)
// running the min_energy_to_solution policy — with and without the
// paper's explicit UFS extension — on a simulated Skylake-SP cluster
// with bit-exact MSR interfaces, a hardware uncore-frequency controller,
// RAPL and Intel Node Manager energy meters, and calibrated models of
// all thirteen workloads the paper evaluates.
//
// The facade in this package covers the common cases: run a catalogue
// workload under a policy, compare it against the nominal-frequency
// baseline, and regenerate any of the paper's tables and figures. The
// full machinery lives in the internal packages (see DESIGN.md for the
// map).
//
// Quick start:
//
//	s := goear.NewSession()
//	res, err := s.Compare("BT-MZ.C", goear.Config{Policy: goear.PolicyMinEnergyEUFS})
//	// res.EnergySavingPct, res.TimePenaltyPct, res.Run.AvgIMCGHz ...
package goear

import (
	"fmt"
	"os"
	"strings"

	"goear/internal/eargm"
	"goear/internal/experiments"
	"goear/internal/model"
	"goear/internal/policy"
	"goear/internal/report"
	"goear/internal/sim"
	"goear/internal/units"
	"goear/internal/workload"
)

// Policy names accepted in Config.Policy.
const (
	PolicyNone          = "none"
	PolicyMonitoring    = policy.Monitoring
	PolicyMinEnergy     = policy.MinEnergy
	PolicyMinEnergyEUFS = policy.MinEnergyEUFS
	PolicyMinTime       = policy.MinTime
	PolicyMinTimeEUFS   = policy.MinTimeEUFS
)

// Config selects how a workload is executed.
type Config struct {
	// Policy is one of the Policy* constants; empty means "none"
	// (nominal frequency, hardware UFS — the paper's baseline).
	Policy string
	// CPUPolicyTh is the allowed relative time penalty of the CPU
	// frequency selection (default 0.05, the paper's usual setting).
	CPUPolicyTh float64
	// UncPolicyTh is the additional CPI/GB/s degradation allowed to the
	// uncore selection (default 0.02).
	UncPolicyTh float64
	// NotGuided starts the uncore search from the hardware maximum
	// instead of the hardware-selected frequency (the paper's ME+NG-U).
	NotGuided bool
	// Runs is the number of averaged runs (default 3, as the paper).
	Runs int
	// Seed drives measurement noise.
	Seed int64
	// FixedCPUPstate pins the CPU pstate when >= 0 (set -1 or leave the
	// zero value's companion Fixed* fields unset to disable).
	FixedCPUPstate int
	// FixedUncoreGHz pins the uncore frequency when > 0.
	FixedUncoreGHz float64
}

// Result summarises one execution.
type Result struct {
	Workload  string
	Policy    string
	Nodes     int
	TimeSec   float64
	EnergyJ   float64 // per-node average DC energy
	AvgPowerW float64 // DC node power (Node Manager scope)
	AvgPkgW   float64 // RAPL package scope
	AvgCPUGHz float64
	AvgIMCGHz float64
	AvgCPI    float64
	AvgGBs    float64
}

// Comparison is a policy run measured against the nominal baseline, in
// the paper's reporting conventions (penalty positive when worse,
// saving positive when better).
type Comparison struct {
	Run             Result
	Baseline        Result
	TimePenaltyPct  float64
	PowerSavingPct  float64
	EnergySavingPct float64
}

// WorkloadInfo describes one catalogue entry.
type WorkloadInfo struct {
	Name      string
	Class     string
	ProgModel string
	Nodes     int
}

// Session caches trained energy models, workload calibrations and runs,
// so repeated operations are cheap. A zero-value Session is not usable;
// construct with NewSession.
type Session struct {
	ctx *experiments.Context
}

// NewSession returns a session using the paper's three-run protocol.
func NewSession() *Session { return &Session{ctx: experiments.New()} }

// NewQuickSession returns a single-run session (for tests and fast
// previews).
func NewQuickSession() *Session { return &Session{ctx: experiments.NewQuick()} }

// Workloads lists the catalogue.
func Workloads() []WorkloadInfo {
	var out []WorkloadInfo
	for _, s := range workload.Catalog() {
		out = append(out, WorkloadInfo{
			Name: s.Name, Class: string(s.Class), ProgModel: s.ProgModel, Nodes: s.Nodes,
		})
	}
	return out
}

// Policies lists the registered policy plugins plus "none".
func Policies() []string {
	return append([]string{PolicyNone}, policy.Names()...)
}

// ExperimentIDs lists the paper experiments Experiment can regenerate.
func ExperimentIDs() []string { return experiments.IDs() }

// toOptions converts the facade config.
func (c Config) toOptions() sim.Options {
	opt := sim.Options{
		Policy:      c.Policy,
		HWGuidedOff: c.NotGuided,
		Seed:        c.Seed,
	}
	// The facade keeps zero-means-default threshold semantics; explicit
	// zeros are a sim.Options-level capability (sim.F(0)).
	if c.CPUPolicyTh != 0 {
		opt.CPUTh = sim.F(c.CPUPolicyTh)
	}
	if c.UncPolicyTh != 0 {
		opt.UncTh = sim.F(c.UncPolicyTh)
	}
	if c.FixedCPUPstate > 0 || (c.FixedCPUPstate == 0 && c.FixedUncoreGHz > 0) {
		p := c.FixedCPUPstate
		if p == 0 {
			p = 1
		}
		opt.FixedCPUPstate = &p
	}
	if c.FixedUncoreGHz > 0 {
		r := units.Freq(c.FixedUncoreGHz * 1e9).Ratio(100 * units.MHz)
		opt.FixedUncoreRatio = &r
	}
	return opt
}

// Run executes a catalogue workload under the configuration.
func (s *Session) Run(name string, cfg Config) (Result, error) {
	if s == nil || s.ctx == nil {
		return Result{}, fmt.Errorf("goear: use NewSession")
	}
	if cfg.Runs != 0 && cfg.Runs != s.ctx.Runs {
		return Result{}, fmt.Errorf("goear: per-call run counts are fixed by the session (%d)", s.ctx.Runs)
	}
	r, err := s.ctx.RunWorkload(name, cfg.toOptions())
	if err != nil {
		return Result{}, err
	}
	return fromSim(r), nil
}

// Compare runs a configuration and the nominal baseline, returning the
// paper-style deltas.
func (s *Session) Compare(name string, cfg Config) (Comparison, error) {
	if cfg.Policy == "" || cfg.Policy == PolicyNone {
		return Comparison{}, fmt.Errorf("goear: comparison needs a policy")
	}
	run, err := s.Run(name, cfg)
	if err != nil {
		return Comparison{}, err
	}
	base, err := s.Run(name, Config{Policy: PolicyNone, Seed: 100})
	if err != nil {
		return Comparison{}, err
	}
	return Comparison{
		Run:             run,
		Baseline:        base,
		TimePenaltyPct:  units.PercentChange(base.TimeSec, run.TimeSec),
		PowerSavingPct:  -units.PercentChange(base.AvgPowerW, run.AvgPowerW),
		EnergySavingPct: -units.PercentChange(base.EnergyJ, run.EnergyJ),
	}, nil
}

// RunSpecFile executes a user-defined workload (the JSON format of
// `earsim -spec`, see `earsim -spec-template`) under the configuration.
// Results are not cached across calls.
func (s *Session) RunSpecFile(path string, cfg Config) (Result, error) {
	if s == nil || s.ctx == nil {
		return Result{}, fmt.Errorf("goear: use NewSession")
	}
	f, err := os.Open(path)
	if err != nil {
		return Result{}, err
	}
	defer f.Close()
	spec, err := workload.LoadSpec(f)
	if err != nil {
		return Result{}, err
	}
	opt := cfg.toOptions()
	if opt.Policy != "" && opt.Policy != PolicyNone {
		m, err := model.TrainForCPU(spec.Platform.Machine, spec.Platform.Power)
		if err != nil {
			return Result{}, err
		}
		opt.Model = m
	}
	r, err := sim.RunSpec(spec, opt)
	if err != nil {
		return Result{}, err
	}
	return fromSim(r), nil
}

// PowercapResult reports a run executed under a cluster power budget
// (EAR's energy-control service, EARGM).
type PowercapResult struct {
	Run Result
	// BudgetW is the enforced cluster budget.
	BudgetW float64
	// PeakW is the highest cluster power the manager observed.
	PeakW float64
	// OverBudgetPct is the share of control intervals above budget.
	OverBudgetPct float64
	// FinalCap is the pstate ceiling at job end (0 = released).
	FinalCap int
}

// RunPowercapped executes a catalogue workload with the global manager
// enforcing the given cluster DC power budget over all its nodes.
func (s *Session) RunPowercapped(name string, cfg Config, budgetW float64) (PowercapResult, error) {
	if s == nil || s.ctx == nil {
		return PowercapResult{}, fmt.Errorf("goear: use NewSession")
	}
	r, st, err := s.ctx.RunPowercapped(name, cfg.toOptions(), eargm.Config{
		BudgetW:      budgetW,
		MaxCapPstate: 10,
	})
	if err != nil {
		return PowercapResult{}, err
	}
	return PowercapResult{
		Run:           fromSim(r),
		BudgetW:       budgetW,
		PeakW:         st.PeakW,
		OverBudgetPct: st.OverBudgetPct,
		FinalCap:      st.FinalCap,
	}, nil
}

// Experiment regenerates one of the paper's tables or figures and
// returns it rendered as text.
func (s *Session) Experiment(id string) (string, error) {
	if s == nil || s.ctx == nil {
		return "", fmt.Errorf("goear: use NewSession")
	}
	tabs, err := s.ctx.Generate(id)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	for i, t := range tabs {
		if i > 0 {
			b.WriteByte('\n')
		}
		if err := t.Render(&b); err != nil {
			return "", err
		}
	}
	return b.String(), nil
}

// ExperimentTables regenerates an experiment as structured tables.
func (s *Session) ExperimentTables(id string) ([]report.Table, error) {
	if s == nil || s.ctx == nil {
		return nil, fmt.Errorf("goear: use NewSession")
	}
	return s.ctx.Generate(id)
}

func fromSim(r sim.Result) Result {
	return Result{
		Workload:  r.Workload,
		Policy:    r.Policy,
		Nodes:     len(r.Nodes),
		TimeSec:   r.TimeSec,
		EnergyJ:   r.EnergyJ,
		AvgPowerW: r.AvgPowerW,
		AvgPkgW:   r.AvgPkgPowerW,
		AvgCPUGHz: r.AvgCPUGHz,
		AvgIMCGHz: r.AvgIMCGHz,
		AvgCPI:    r.AvgCPI,
		AvgGBs:    r.AvgGBs,
	}
}
