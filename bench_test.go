// Benchmarks regenerating every table and figure of the paper's
// evaluation section, one testing.B benchmark per artifact, plus
// micro-benchmarks of the simulator's hot paths.
//
// Each experiment benchmark re-runs the full simulation campaign behind
// that artifact (models and workload calibrations are shared across
// iterations; runs are not). Benchmarks use the single-run protocol;
// cmd/benchtables regenerates the same artifacts with the paper's
// three-run averaging.
package goear

import (
	"runtime"
	"sync"
	"testing"

	"goear/internal/cpu"
	"goear/internal/dynais"
	"goear/internal/experiments"
	"goear/internal/mem"
	"goear/internal/metrics"
	"goear/internal/model"
	"goear/internal/par"
	"goear/internal/perf"
	"goear/internal/power"
	"goear/internal/sim"
	"goear/internal/telemetry"
	"goear/internal/workload"
)

var (
	benchOnce sync.Once
	benchBase *experiments.Context
)

// benchContext returns a warm base context: models trained, workloads
// calibrated. Each benchmark iteration derives a fresh run cache from
// it so the simulations themselves are measured.
func benchContext(b *testing.B) *experiments.Context {
	b.Helper()
	benchOnce.Do(func() {
		benchBase = experiments.NewQuick()
		// Touch both platforms so model training happens here, not
		// inside the timed region.
		if _, err := benchBase.Generate("table2"); err != nil {
			panic(err)
		}
	})
	return benchBase
}

func benchExperiment(b *testing.B, id string) {
	base := benchContext(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx := experiments.NewFrom(base)
		if _, err := ctx.Generate(id); err != nil {
			b.Fatal(err)
		}
	}
}

// One benchmark per paper artifact.

func BenchmarkTable1(b *testing.B)  { benchExperiment(b, "table1") }
func BenchmarkFig1(b *testing.B)    { benchExperiment(b, "fig1") }
func BenchmarkTable2(b *testing.B)  { benchExperiment(b, "table2") }
func BenchmarkTable3(b *testing.B)  { benchExperiment(b, "table3") }
func BenchmarkTable4(b *testing.B)  { benchExperiment(b, "table4") }
func BenchmarkTable5(b *testing.B)  { benchExperiment(b, "table5") }
func BenchmarkTable6(b *testing.B)  { benchExperiment(b, "table6") }
func BenchmarkFig3(b *testing.B)    { benchExperiment(b, "fig3") }
func BenchmarkFig4(b *testing.B)    { benchExperiment(b, "fig4") }
func BenchmarkFig5(b *testing.B)    { benchExperiment(b, "fig5") }
func BenchmarkFig6(b *testing.B)    { benchExperiment(b, "fig6") }
func BenchmarkFig7(b *testing.B)    { benchExperiment(b, "fig7") }
func BenchmarkFig8(b *testing.B)    { benchExperiment(b, "fig8") }
func BenchmarkTable7(b *testing.B)  { benchExperiment(b, "table7") }
func BenchmarkSummary(b *testing.B) { benchExperiment(b, "summary") }

// Ablation benchmarks (DESIGN.md A1-A5; the whole suite in one, and the
// individually named ones for the design choices §V-B calls out).

func BenchmarkAblations(b *testing.B)  { benchExperiment(b, "ablations") }
func BenchmarkBaselines(b *testing.B)  { benchExperiment(b, "baselines") }
func BenchmarkFutureWork(b *testing.B) { benchExperiment(b, "future_work") }

// Scheduler benchmarks: the whole evaluation campaign end to end,
// sequential versus the bounded worker pool. On a machine with >= 4
// cores the parallel variant is expected to finish the campaign at
// least twice as fast; the output is byte-identical either way.

func benchExpAll(b *testing.B, parallel int) {
	base := benchContext(b)
	ids := experiments.IDs()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx := experiments.NewFrom(base)
		ctx.Parallel = parallel
		if err := par.ForEach(parallel, len(ids), func(j int) error {
			_, err := ctx.Generate(ids[j])
			return err
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExpAllSequential(b *testing.B) { benchExpAll(b, 1) }

func BenchmarkExpAllParallel(b *testing.B) {
	n := runtime.GOMAXPROCS(0)
	if n < 2 {
		b.Skip("needs >= 2 CPUs to exercise the worker pool")
	}
	benchExpAll(b, n)
}

func benchOneRun(b *testing.B, name string, opt sim.Options) {
	base := benchContext(b)
	cal := mustCal(b, name)
	if opt.Policy != "" && opt.Policy != "none" {
		ctx := experiments.NewFrom(base)
		r, err := ctx.RunWorkload(name, sim.Options{Policy: "none", Seed: 1})
		_ = r
		if err != nil {
			b.Fatal(err)
		}
		m, err := model.TrainForCPU(cal.Platform.Machine, cal.Platform.Power)
		if err != nil {
			b.Fatal(err)
		}
		opt.Model = m
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(cal, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func mustCal(b *testing.B, name string) workload.Calibrated {
	b.Helper()
	spec, err := workload.Lookup(name)
	if err != nil {
		b.Fatal(err)
	}
	cal, err := spec.Calibrate()
	if err != nil {
		b.Fatal(err)
	}
	return cal
}

func BenchmarkAblationSearch(b *testing.B) {
	benchOneRun(b, workload.BTCUDA, sim.Options{Policy: "min_energy_eufs", HWGuidedOff: true, Seed: 1})
}

func BenchmarkAblationAVX512(b *testing.B) {
	benchOneRun(b, workload.DGEMM, sim.Options{Policy: "min_energy", NoAVX512Model: true, Seed: 1})
}

func BenchmarkAblationRatioMode(b *testing.B) {
	benchOneRun(b, workload.BTMZC, sim.Options{Policy: "min_energy_eufs", PinBothUncoreLimits: true, Seed: 1})
}

func BenchmarkAblationSigChange(b *testing.B) {
	benchOneRun(b, workload.PhaseChange, sim.Options{Policy: "min_energy_eufs", SigChangeTh: 0.10, Seed: 1})
}

// Hot-path micro-benchmarks.

func BenchmarkPerfEvaluate(b *testing.B) {
	m := perf.Machine{CPU: cpu.XeonGold6148(), Mem: mem.DDR4SD530()}
	p := perf.Phase{BaseCPI: 0.8, BytesPerInstr: 3, Overlap: 0.92, ActiveCores: 40}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := perf.Evaluate(m, p, perf.Operating{CoreRatio: 24, UncoreRatio: 20}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkModelPredict(b *testing.B) {
	m, err := model.TrainForCPU(
		perf.Machine{CPU: cpu.XeonGold6148(), Mem: mem.DDR4SD530()},
		power.SD530Coeffs())
	if err != nil {
		b.Fatal(err)
	}
	sig := metrics.Signature{IterTimeSec: 1, CPI: 0.8, TPI: 0.02, GBs: 40, DCPowerW: 330, VPI: 0.2}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Predict(sig, 1, 8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkModelTrain(b *testing.B) {
	machine := perf.Machine{CPU: cpu.XeonGold6148(), Mem: mem.DDR4SD530()}
	pw := power.SD530Coeffs()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := model.TrainForCPU(machine, pw); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDynaisPush(b *testing.B) {
	d, err := dynais.New(64)
	if err != nil {
		b.Fatal(err)
	}
	pattern := []uint32{1, 2, 3, 4, 5, 6, 7, 8}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.Push(pattern[i%len(pattern)])
	}
}

func benchSimSecond(b *testing.B, telemetryOn bool) {
	// One simulated node-second of BT-MZ.C per iteration (policy off).
	if telemetryOn {
		telemetry.Enable()
		b.Cleanup(telemetry.Disable)
	}
	spec, err := workload.Lookup(workload.BTMZC)
	if err != nil {
		b.Fatal(err)
	}
	spec.TargetTimeSec = 1.2 // one iteration
	cal, err := spec.Calibrate()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(cal, sim.Options{Policy: "none", Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimSecond(b *testing.B) { benchSimSecond(b, false) }

// BenchmarkSimSecondTelemetry is BenchmarkSimSecond with the global
// telemetry set enabled; the delta against the plain benchmark is the
// enabled-instrumentation overhead (DESIGN.md §9).
func BenchmarkSimSecondTelemetry(b *testing.B) { benchSimSecond(b, true) }

// benchNodeTick measures one pass of the simulator's inner loop —
// tick, perf evaluation, dynais, EARL — in isolation via sim.Stepper,
// the per-step cost every experiment above pays millions of times.
func benchNodeTick(b *testing.B, telemetryOn bool) {
	if telemetryOn {
		telemetry.Enable()
		b.Cleanup(telemetry.Disable)
	}
	cal := mustCal(b, workload.BTMZC)
	opt := sim.Options{Policy: "none", Seed: 1}
	s, err := sim.NewStepper(cal, 0, opt)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s.Done() {
			b.StopTimer()
			if s, err = sim.NewStepper(cal, 0, opt); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
		}
		if err := s.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNodeTick(b *testing.B) { benchNodeTick(b, false) }

// BenchmarkNodeTickTelemetry is BenchmarkNodeTick with the global
// telemetry set enabled (per-step counting is node-local and flushed
// once per run, so the expected delta is ~zero).
func BenchmarkNodeTickTelemetry(b *testing.B) { benchNodeTick(b, true) }

// Batch stepping benchmarks: the struct-of-arrays kernel that cluster
// campaigns run on, measured over a 1024-node shard. BenchmarkBatchTick
// is one 10 ms lock-step tick of the whole shard (the ns/node-tick
// metric is the per-node cost to compare with BenchmarkNodeTick);
// BenchmarkClusterSecond advances the shard one simulated second, and
// BenchmarkClusterSecondReference does the same through the per-node
// reference path — the ratio is the batch speedup the design targets.

const batchBenchNodes = 1024

func benchBatch(b *testing.B) *sim.Batch {
	b.Helper()
	cal := mustCal(b, workload.BTMZC)
	bt, err := sim.NewBatch(cal, sim.Options{Policy: "none", Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	for id := 0; id < batchBenchNodes; id++ {
		if _, err := bt.Add(id); err != nil {
			b.Fatal(err)
		}
	}
	return bt
}

func BenchmarkBatchTick(b *testing.B) {
	bt := benchBatch(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if bt.Done() {
			b.StopTimer()
			bt = benchBatch(b)
			b.StartTimer()
		}
		if err := bt.Tick(0.01); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/batchBenchNodes, "ns/node-tick")
}

func BenchmarkClusterSecond(b *testing.B) {
	bt := benchBatch(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if bt.Done() {
			b.StopTimer()
			bt = benchBatch(b)
			b.StartTimer()
		}
		if err := bt.Tick(1.0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClusterSecondReference(b *testing.B) {
	cal := mustCal(b, workload.BTMZC)
	opt := sim.Options{Policy: "none", Seed: 1}
	build := func() []*sim.Stepper {
		ss := make([]*sim.Stepper, batchBenchNodes)
		for i := range ss {
			s, err := sim.NewStepper(cal, i, opt)
			if err != nil {
				b.Fatal(err)
			}
			ss[i] = s
		}
		return ss
	}
	steppers := build()
	barrier := 0.0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		done := true
		for _, s := range steppers {
			if !s.Done() {
				done = false
				break
			}
		}
		if done {
			b.StopTimer()
			steppers = build()
			barrier = 0
			b.StartTimer()
		}
		barrier += 1.0
		for _, s := range steppers {
			for !s.Done() && s.Now() < barrier {
				if err := s.Step(); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

// Trace on/off pair: the delta is the cost of per-interval trace
// sampling, the off case is the production configuration.

func benchTraceRun(b *testing.B, trace bool) {
	spec, err := workload.Lookup(workload.BTMZC)
	if err != nil {
		b.Fatal(err)
	}
	spec.TargetTimeSec = 1.2 // one iteration, as BenchmarkSimSecond
	cal, err := spec.Calibrate()
	if err != nil {
		b.Fatal(err)
	}
	opt := sim.Options{Policy: "none", Seed: 1, Trace: trace, TraceStepSec: 0.1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(cal, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTraceOff(b *testing.B) { benchTraceRun(b, false) }
func BenchmarkTraceOn(b *testing.B)  { benchTraceRun(b, true) }
