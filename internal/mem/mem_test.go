package mem

import (
	"math"
	"testing"
	"testing/quick"

	"goear/internal/units"
)

func TestDDR4SD530Valid(t *testing.T) {
	c := DDR4SD530()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := c.PeakGBs(); math.Abs(got-230.4) > 1e-9 {
		t.Errorf("PeakGBs = %v, want 230.4 (12 x 19.2)", got)
	}
}

func TestValidateRejects(t *testing.T) {
	base := DDR4SD530()
	muts := []func(*Config){
		func(c *Config) { c.Channels = 0 },
		func(c *Config) { c.ChannelGBs = -1 },
		func(c *Config) { c.IMCGBsPerGHz = 0 },
		func(c *Config) { c.IdleLatencyNs = -1 },
		func(c *Config) { c.UncoreLatencyNsGHz = -1 },
		func(c *Config) { c.MaxUtilization = 0 },
		func(c *Config) { c.MaxUtilization = 1 },
		func(c *Config) { c.QueueGain = -0.1 },
	}
	for i, mut := range muts {
		c := base
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d: expected error", i)
		}
	}
}

func TestCapabilityScalesWithUncore(t *testing.T) {
	c := DDR4SD530()
	// At 2.4 GHz the IMC reaches the DRAM peak.
	if got := c.CapabilityGBs(2.4 * units.GHz); math.Abs(got-230.4) > 1e-9 {
		t.Errorf("capability at 2.4GHz = %v, want 230.4", got)
	}
	// At 1.2 GHz it is IMC-limited to half.
	if got := c.CapabilityGBs(1.2 * units.GHz); math.Abs(got-115.2) > 1e-9 {
		t.Errorf("capability at 1.2GHz = %v, want 115.2", got)
	}
	// Above 2.4 GHz the DRAM peak caps it.
	if got := c.CapabilityGBs(3.0 * units.GHz); math.Abs(got-230.4) > 1e-9 {
		t.Errorf("capability at 3GHz = %v, want 230.4 (DRAM cap)", got)
	}
}

func TestCapabilityMonotonicProperty(t *testing.T) {
	c := DDR4SD530()
	fn := func(a, b uint8) bool {
		fa := units.FromRatio(uint64(a%25)+1, 100*units.MHz)
		fb := units.FromRatio(uint64(b%25)+1, 100*units.MHz)
		if fa > fb {
			fa, fb = fb, fa
		}
		return c.CapabilityGBs(fa) <= c.CapabilityGBs(fb)
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Error(err)
	}
}

func TestLatencyGrowsAsUncoreDrops(t *testing.T) {
	c := DDR4SD530()
	hi := c.LatencyNs(2.4*units.GHz, 0)
	lo := c.LatencyNs(1.2*units.GHz, 0)
	if lo <= hi {
		t.Errorf("latency at 1.2GHz (%v) not above 2.4GHz (%v)", lo, hi)
	}
	// Unloaded latency at 2.4 GHz: 45 + 50/2.4 ≈ 65.8 ns.
	if hi < 60 || hi > 72 {
		t.Errorf("unloaded latency at 2.4GHz = %vns, want ~66ns", hi)
	}
}

func TestLatencyGrowsWithUtilization(t *testing.T) {
	c := DDR4SD530()
	prev := 0.0
	for _, rho := range []float64{0, 0.3, 0.6, 0.8, 0.9, 0.97} {
		l := c.LatencyNs(2.4*units.GHz, rho)
		if l < prev {
			t.Errorf("latency decreased at rho=%v: %v < %v", rho, l, prev)
		}
		prev = l
	}
	// Saturated latency must be finite and clamped at MaxUtilization.
	sat := c.LatencyNs(2.4*units.GHz, 5.0)
	if sat != c.LatencyNs(2.4*units.GHz, c.MaxUtilization) {
		t.Error("latency not clamped at MaxUtilization")
	}
}

func TestLatencyDegenerateInputs(t *testing.T) {
	c := DDR4SD530()
	if l := c.LatencyNs(0, 0); l <= 0 {
		t.Errorf("latency at 0 frequency must stay positive, got %v", l)
	}
	if l := c.LatencyNs(2.4*units.GHz, -1); l != c.LatencyNs(2.4*units.GHz, 0) {
		t.Error("negative rho not clamped to 0")
	}
}

func TestUtilization(t *testing.T) {
	c := DDR4SD530()
	if u := c.Utilization(115.2, 2.4*units.GHz); math.Abs(u-0.5) > 1e-9 {
		t.Errorf("utilization = %v, want 0.5", u)
	}
	if u := c.Utilization(1000, 2.4*units.GHz); u != c.MaxUtilization {
		t.Errorf("over-demand utilization = %v, want clamp %v", u, c.MaxUtilization)
	}
	if u := c.Utilization(-5, 2.4*units.GHz); u != 0 {
		t.Errorf("negative demand utilization = %v, want 0", u)
	}
}

func TestUtilizationBoundsProperty(t *testing.T) {
	c := DDR4SD530()
	fn := func(demand uint16, ratio uint8) bool {
		fu := units.FromRatio(uint64(ratio%25)+1, 100*units.MHz)
		u := c.Utilization(float64(demand), fu)
		return u >= 0 && u <= c.MaxUtilization
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Error(err)
	}
}
