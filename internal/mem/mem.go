// Package mem models the node memory subsystem: DRAM channels behind the
// Integrated Memory Controller, whose achievable bandwidth and effective
// latency depend on the uncore (IMC) frequency.
//
// Two first-order effects matter for the paper's experiments:
//
//   - the bandwidth the IMC can move scales with its frequency until the
//     DRAM channels themselves saturate, and
//   - memory latency has an uncore-clocked component (mesh + LLC + IMC
//     queues) that grows as the uncore slows down, inflated further by
//     queueing delay as demanded bandwidth approaches the capability.
package mem

import (
	"fmt"
	"math"

	"goear/internal/units"
)

// Config describes one node's memory subsystem.
type Config struct {
	// Channels is the total number of populated DDR channels in the node.
	Channels int
	// ChannelGBs is the peak bandwidth of one channel in GB/s
	// (19.2 GB/s for DDR4-2400).
	ChannelGBs float64
	// IMCGBsPerGHz is the bandwidth capability the IMC provides per GHz
	// of uncore frequency, across the whole node.
	IMCGBsPerGHz float64
	// IdleLatencyNs is the uncore-frequency-independent part of DRAM
	// access latency (row access, channel transfer).
	IdleLatencyNs float64
	// UncoreLatencyNsGHz is the uncore-clocked latency component: it
	// contributes UncoreLatencyNsGHz / f_uncore(GHz) nanoseconds.
	UncoreLatencyNsGHz float64
	// QueueGain scales the queueing-delay inflation near saturation.
	QueueGain float64
	// MaxUtilization is the utilisation at which the subsystem is
	// considered saturated (achieved bandwidth never exceeds
	// MaxUtilization * capability).
	MaxUtilization float64
}

// DDR4SD530 returns the memory configuration of the paper's Lenovo
// ThinkSystem SD530 nodes: 12× DDR4-2400 dual-rank DIMMs across two
// sockets (6 channels each).
func DDR4SD530() Config {
	return Config{
		Channels:           12,
		ChannelGBs:         19.2,
		IMCGBsPerGHz:       96, // full DRAM bandwidth reached at 2.4 GHz uncore
		IdleLatencyNs:      45,
		UncoreLatencyNsGHz: 50,
		QueueGain:          0.8,
		MaxUtilization:     0.98,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.Channels <= 0 || c.ChannelGBs <= 0:
		return fmt.Errorf("mem: channels (%d) and channel bandwidth (%g) must be positive",
			c.Channels, c.ChannelGBs)
	case c.IMCGBsPerGHz <= 0:
		return fmt.Errorf("mem: IMC bandwidth slope must be positive, got %g", c.IMCGBsPerGHz)
	case c.IdleLatencyNs < 0 || c.UncoreLatencyNsGHz < 0:
		return fmt.Errorf("mem: latencies must be non-negative")
	case c.MaxUtilization <= 0 || c.MaxUtilization >= 1:
		return fmt.Errorf("mem: max utilisation %g outside (0,1)", c.MaxUtilization)
	case c.QueueGain < 0:
		return fmt.Errorf("mem: queue gain must be non-negative")
	}
	return nil
}

// PeakGBs is the DRAM-side peak bandwidth of the node.
func (c Config) PeakGBs() float64 { return float64(c.Channels) * c.ChannelGBs }

// CapabilityGBs returns the bandwidth the memory subsystem can sustain at
// the given uncore frequency: the lesser of the DRAM peak and the IMC
// capability at that frequency.
func (c Config) CapabilityGBs(fu units.Freq) float64 {
	imc := c.IMCGBsPerGHz * fu.GHzF()
	return math.Min(c.PeakGBs(), imc)
}

// Utilization returns demanded/capability clamped to [0, MaxUtilization].
func (c Config) Utilization(demandGBs float64, fu units.Freq) float64 {
	cap := c.CapabilityGBs(fu)
	if cap <= 0 {
		return c.MaxUtilization
	}
	u := demandGBs / cap
	if u < 0 {
		return 0
	}
	if u > c.MaxUtilization {
		return c.MaxUtilization
	}
	return u
}

// LatencyNs returns the effective DRAM access latency at uncore frequency
// fu under utilisation rho: the idle latency plus the uncore-clocked
// component, inflated by a queueing factor 1 + QueueGain·rho³/(1-rho).
func (c Config) LatencyNs(fu units.Freq, rho float64) float64 {
	g := fu.GHzF()
	if g <= 0 {
		g = 1e-3
	}
	base := c.IdleLatencyNs + c.UncoreLatencyNsGHz/g
	if rho < 0 {
		rho = 0
	}
	if rho > c.MaxUtilization {
		rho = c.MaxUtilization
	}
	queue := 1 + c.QueueGain*rho*rho*rho/(1-rho)
	return base * queue
}
