package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"testing"

	"goear/internal/eard"
	"goear/internal/telemetry/trace"
)

func testRecords() []eard.JobRecord {
	return []eard.JobRecord{
		{JobID: "1001", StepID: "0", Node: "n01", App: "BT-MZ.C", Policy: "min_energy",
			TimeSec: 120.5, EnergyJ: 36000, AvgPower: 298.8, AvgCPU: 2.1, AvgIMC: 2.4, AvgCPI: 0.61, AvgGBs: 48.2},
		{JobID: "1001", StepID: "0", Node: "n02", App: "BT-MZ.C", Policy: "min_energy",
			TimeSec: 119.8, EnergyJ: 35800, AvgPower: 298.8},
	}
}

func TestBatchRoundTrip(t *testing.T) {
	in := Batch{ID: "n01/1", Node: "n01", Records: testRecords()}
	f, err := EncodeBatch(in)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, f, 0); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	out, err := got.AsBatch()
	if err != nil {
		t.Fatal(err)
	}
	if out.ID != in.ID || out.Node != in.Node || len(out.Records) != len(in.Records) {
		t.Fatalf("round trip lost data: %+v", out)
	}
	for i := range in.Records {
		if out.Records[i] != in.Records[i] {
			t.Errorf("record %d = %+v, want %+v", i, out.Records[i], in.Records[i])
		}
	}
}

func TestAckErrorQueryResultRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	frames := []Frame{}
	for _, mk := range []func() (Frame, error){
		func() (Frame, error) { return EncodeAck(Ack{BatchID: "n01/7", Accepted: 3, Duplicate: 1}) },
		func() (Frame, error) { return EncodeError("bad batch") },
		func() (Frame, error) { return EncodeQuery(Query{Kind: QuerySummary, Job: "1001", Step: "0"}) },
		func() (Frame, error) { return EncodeResult(QueryJobs, []string{"1001"}) },
	} {
		f, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		frames = append(frames, f)
		if err := WriteFrame(&buf, f, 0); err != nil {
			t.Fatal(err)
		}
	}
	for i := range frames {
		got, err := ReadFrame(&buf, 0)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Type != frames[i].Type {
			t.Fatalf("frame %d type = %s, want %s", i, got.Type, frames[i].Type)
		}
	}
	// The stream is drained: the next read is a clean EOF.
	if _, err := ReadFrame(&buf, 0); err != io.EOF {
		t.Errorf("drained stream read = %v, want io.EOF", err)
	}
	a, err := frames[0].AsAck()
	if err != nil || a.BatchID != "n01/7" || a.Accepted != 3 || a.Duplicate != 1 {
		t.Errorf("ack = %+v, err %v", a, err)
	}
	q, err := frames[2].AsQuery()
	if err != nil || q.Kind != QuerySummary || q.Job != "1001" {
		t.Errorf("query = %+v, err %v", q, err)
	}
}

// header builds a raw frame header for corruption tests.
func header(magic uint32, version, typ uint8, flags uint16, length uint32) []byte {
	h := make([]byte, headerLen)
	binary.BigEndian.PutUint32(h[0:4], magic)
	h[4] = version
	h[5] = typ
	binary.BigEndian.PutUint16(h[6:8], flags)
	binary.BigEndian.PutUint32(h[8:12], length)
	return h
}

func TestDecodeRejections(t *testing.T) {
	cases := []struct {
		name string
		raw  []byte
		want error
	}{
		{"bad magic", header(0xDEADBEEF, Version, uint8(TypeAck), 0, 0), ErrMagic},
		{"version skew", header(Magic, Version+1, uint8(TypeAck), 0, 0), ErrVersion},
		{"version zero", header(Magic, 0, uint8(TypeAck), 0, 0), ErrVersion},
		{"type zero", header(Magic, Version, 0, 0, 0), ErrType},
		{"type unknown", header(Magic, Version, uint8(typeEnd), 0, 0), ErrType},
		{"reserved flags", header(Magic, Version, uint8(TypeAck), 7, 0), ErrFlags},
		{"oversized length", header(Magic, Version, uint8(TypeAck), 0, DefaultMaxPayload+1), ErrTooLarge},
		{"huge length prefix", header(Magic, Version, uint8(TypeAck), 0, 0xFFFFFFFF), ErrTooLarge},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadFrame(bytes.NewReader(tc.raw), 0)
			if !errors.Is(err, tc.want) {
				t.Errorf("error = %v, want %v", err, tc.want)
			}
		})
	}
}

func TestTruncation(t *testing.T) {
	f, err := EncodeAck(Ack{BatchID: "x"})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, f, 0); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Every proper prefix must error; only the empty prefix is io.EOF.
	for cut := 0; cut < len(full); cut++ {
		_, err := ReadFrame(bytes.NewReader(full[:cut]), 0)
		if cut == 0 {
			if err != io.EOF {
				t.Fatalf("empty stream: err = %v, want io.EOF", err)
			}
			continue
		}
		if err == nil {
			t.Fatalf("truncated frame at %d/%d bytes decoded successfully", cut, len(full))
		}
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("truncation at %d: err = %v, want wrapped io.ErrUnexpectedEOF", cut, err)
		}
	}
}

func TestPayloadLimits(t *testing.T) {
	big := Frame{Type: TypeBatch, Payload: bytes.Repeat([]byte{'x'}, 100)}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, big, 64); !errors.Is(err, ErrTooLarge) {
		t.Errorf("write over limit = %v, want ErrTooLarge", err)
	}
	if err := WriteFrame(&buf, big, 128); err != nil {
		t.Fatal(err)
	}
	// A server with a tighter limit than the writer refuses the frame.
	if _, err := ReadFrame(&buf, 64); !errors.Is(err, ErrTooLarge) {
		t.Errorf("read over limit = %v, want ErrTooLarge", err)
	}
}

func TestWriteRejectsInvalidType(t *testing.T) {
	var buf bytes.Buffer
	for _, typ := range []Type{0, typeEnd, typeEnd + 40} {
		if err := WriteFrame(&buf, Frame{Type: typ}, 0); !errors.Is(err, ErrType) {
			t.Errorf("type %d: err = %v, want ErrType", typ, err)
		}
	}
	if buf.Len() != 0 {
		t.Error("rejected frame still wrote bytes")
	}
}

func TestTraceContextRoundTrip(t *testing.T) {
	in, err := EncodeQuery(Query{Kind: QueryStats})
	if err != nil {
		t.Fatal(err)
	}
	in.Trace = trace.Context{TraceID: 0xABCD, SpanID: 0x1234, Flags: 5}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, in, 0); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got.Trace != in.Trace {
		t.Fatalf("trace context = %+v, want %+v", got.Trace, in.Trace)
	}
	if q, err := got.AsQuery(); err != nil || q.Kind != QueryStats {
		t.Fatalf("payload after trace block: %+v, err %v", q, err)
	}
}

func TestUntracedFramesUnchanged(t *testing.T) {
	// A frame without a trace context must encode to the exact bytes
	// the pre-trace protocol produced: flag bits zero, no block.
	f, err := EncodeAck(Ack{BatchID: "n01/1"})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteFrame(&buf, f, 0); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if flags := binary.BigEndian.Uint16(raw[6:8]); flags != 0 {
		t.Fatalf("untraced frame carries flags 0x%04X", flags)
	}
	if len(raw) != headerLen+len(f.Payload) {
		t.Fatalf("untraced frame length %d, want %d", len(raw), headerLen+len(f.Payload))
	}
}

func TestTraceBlockRejections(t *testing.T) {
	valid := func() []byte {
		blk := make([]byte, traceBlockLen)
		blk[0] = byte(traceBlockVersion)
		binary.BigEndian.PutUint64(blk[2:10], 77)
		binary.BigEndian.PutUint64(blk[10:18], 88)
		return blk
	}
	cases := []struct {
		name string
		raw  []byte
		want error
	}{
		{"missing block", header(Magic, Version, uint8(TypeAck), FlagTrace, 0), io.ErrUnexpectedEOF},
		{"future block version", append(header(Magic, Version, uint8(TypeAck), FlagTrace, 0),
			func() []byte { b := valid(); b[0] = 9; return b }()...), ErrTrace},
		{"zero trace id", append(header(Magic, Version, uint8(TypeAck), FlagTrace, 0),
			func() []byte { b := valid(); binary.BigEndian.PutUint64(b[2:10], 0); return b }()...), ErrTrace},
		{"other flag bits", header(Magic, Version, uint8(TypeAck), FlagTrace|2, 0), ErrFlags},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadFrame(bytes.NewReader(tc.raw), 0)
			if !errors.Is(err, tc.want) {
				t.Errorf("error = %v, want %v", err, tc.want)
			}
		})
	}
}

func TestUnmarshalTypeMismatch(t *testing.T) {
	f, err := EncodeAck(Ack{BatchID: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.AsBatch(); err == nil || !strings.Contains(err.Error(), "not batch") {
		t.Errorf("AsBatch on ack frame = %v", err)
	}
}
