package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"goear/internal/eard"
	"goear/internal/telemetry/trace"
)

// traceZeros is a full-length trace block with a valid version but a
// zero trace ID — the non-canonical form the decoder must refuse.
func traceZeros() []byte {
	blk := make([]byte, traceBlockLen)
	blk[0] = byte(traceBlockVersion)
	return blk
}

// FuzzFrame hammers the decoder with arbitrary bytes and checks the
// codec's two safety contracts: decoding never panics whatever the
// input (malformed length prefixes, truncated payloads, version skew
// all surface as errors), and any frame that does decode re-encodes
// byte-identically — the codec has one canonical wire form.
func FuzzFrame(f *testing.F) {
	// Seed with well-formed frames of every type ...
	batch, err := EncodeBatch(Batch{ID: "n01/1", Node: "n01", Records: []eard.JobRecord{
		{JobID: "1", StepID: "0", Node: "n01", TimeSec: 1, EnergyJ: 100, AvgPower: 100},
	}})
	if err != nil {
		f.Fatal(err)
	}
	seeds := []Frame{batch}
	if ack, err := EncodeAck(Ack{BatchID: "n01/1", Accepted: 1}); err == nil {
		seeds = append(seeds, ack)
	}
	if ef, err := EncodeError("boom"); err == nil {
		seeds = append(seeds, ef)
	}
	if q, err := EncodeQuery(Query{Kind: QueryStats}); err == nil {
		seeds = append(seeds, q)
	}
	// Traced variants exercise the optional context block.
	traced := batch
	traced.Trace = trace.Context{TraceID: 0x1122334455667788, SpanID: 0x99AABBCCDDEEFF00, Flags: 3}
	seeds = append(seeds, traced)
	for _, s := range seeds {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, s, 0); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	// ... and with deliberately broken headers: bad magic, future
	// version, unknown type, reserved flags, lying length prefixes,
	// malformed trace blocks.
	f.Add(header(0xDEADBEEF, Version, 2, 0, 0))
	f.Add(header(Magic, Version+3, 2, 0, 0))
	f.Add(header(Magic, Version, 250, 0, 0))
	f.Add(header(Magic, Version, 2, 0xFFFF, 0))
	f.Add(header(Magic, Version, 2, 0, 0xFFFFFFFF))
	f.Add(append(header(Magic, Version, 2, 0, 100), "short"...))
	f.Add(header(Magic, Version, 2, uint16(FlagTrace), 0))                          // flag with no block
	f.Add(append(header(Magic, Version, 2, uint16(FlagTrace), 0), 9, 0))            // future block version
	f.Add(append(header(Magic, Version, 2, uint16(FlagTrace), 0), traceZeros()...)) // zero trace id

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, err := ReadFrame(bytes.NewReader(data), 4096)
		if err != nil {
			// Every failure must be a typed protocol error, a JSON-level
			// error is impossible here (payload bytes are opaque), and EOF
			// conditions must be the io sentinels.
			if errors.Is(err, ErrMagic) || errors.Is(err, ErrVersion) ||
				errors.Is(err, ErrType) || errors.Is(err, ErrFlags) ||
				errors.Is(err, ErrTooLarge) || errors.Is(err, ErrTrace) ||
				errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				return
			}
			t.Fatalf("unexpected error class: %v", err)
		}
		// Decoded frames re-encode to the exact consumed bytes (header,
		// optional trace block, payload).
		var buf bytes.Buffer
		if err := WriteFrame(&buf, fr, 4096); err != nil {
			t.Fatalf("re-encode of decoded frame failed: %v", err)
		}
		consumed := headerLen + len(fr.Payload)
		if fr.Trace.Valid() {
			consumed += traceBlockLen
		}
		if want := data[:consumed]; !bytes.Equal(buf.Bytes(), want) {
			t.Fatalf("re-encode differs:\n got %x\nwant %x", buf.Bytes(), want)
		}
		// Typed payload decoding must never panic either, whatever JSON
		// (or non-JSON) the payload holds.
		switch fr.Type {
		case TypeBatch:
			_, _ = fr.AsBatch()
		case TypeAck:
			_, _ = fr.AsAck()
		case TypeError:
			_, _ = fr.AsError()
		case TypeQuery:
			_, _ = fr.AsQuery()
		case TypeResult:
			_, _ = fr.AsResult()
		}
	})
}
