// Package wire is the framed protocol spoken between EAR's node-side
// reporting clients and the database daemon (package eardbd). EAR's
// real deployment streams job signatures from every node daemon to
// EARDBD over plain sockets; this codec reproduces that surface with a
// length-prefixed, versioned binary header and JSON payloads, so the
// transport stays inspectable while the framing stays strict.
//
// Every frame is
//
//	magic   uint32  "EARW"
//	version uint8   protocol version, currently 1
//	type    uint8   frame type (batch, ack, error, query, result)
//	flags   uint16  reserved, must be zero
//	length  uint32  payload byte count
//	payload [length]byte, JSON
//
// all big-endian. Decoding is defensive: bad magic, unknown versions,
// unknown types, oversized lengths and truncated payloads are errors,
// never panics — the daemon must survive arbitrary bytes on its
// listening socket.
//
// One flag bit is defined: FlagTrace marks that an 18-byte trace
// context block sits between the header and the payload —
//
//	ctx version uint8   trace block version, currently 1
//	ctx flags   uint8   trace flags, carried verbatim
//	trace id    uint64  the request's trace identifier (non-zero)
//	span id     uint64  the sender's span, parent of the receiver's
//
// so a batch or query can be followed across processes as one span
// tree. Frames without the flag are byte-identical to protocol
// version 1 before tracing existed; peers that never set the flag
// interoperate unchanged.
package wire

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"goear/internal/accounting"
	"goear/internal/eard"
	"goear/internal/telemetry/trace"
)

// Magic identifies a goear wire frame ("EARW").
const Magic uint32 = 0x45415257

// Version is the protocol version this package speaks. Decoding a
// frame with any other version fails with ErrVersion: version skew is
// surfaced to the peer instead of being misparsed.
const Version uint8 = 1

// headerLen is the fixed frame header size in bytes.
const headerLen = 12

// FlagTrace marks a frame carrying a trace context block between the
// header and the payload. All other flag bits stay reserved-must-be-
// zero.
const FlagTrace uint16 = 0x0001

// traceBlockLen is the trace context block size in bytes.
const traceBlockLen = 18

// traceBlockVersion is the trace block layout this package speaks.
// The block is versioned independently of the frame header so the
// context can grow (baggage, sampling state) without a protocol
// version bump that would sever untraced peers.
const traceBlockVersion uint8 = 1

// DefaultMaxPayload bounds a frame payload unless the caller chooses
// its own limit. One megabyte comfortably holds the largest record
// batch a client may send while keeping a malicious length prefix from
// ballooning server memory.
const DefaultMaxPayload = 1 << 20

// Type enumerates the frame kinds.
type Type uint8

const (
	// TypeBatch carries a Batch of job records, client to server.
	TypeBatch Type = iota + 1
	// TypeAck acknowledges a batch, server to client.
	TypeAck
	// TypeError reports a protocol or validation failure.
	TypeError
	// TypeQuery asks the server for a snapshot (stats, aggregate, ...).
	TypeQuery
	// TypeResult carries a query response.
	TypeResult

	typeEnd // one past the last valid type
)

func (t Type) String() string {
	switch t {
	case TypeBatch:
		return "batch"
	case TypeAck:
		return "ack"
	case TypeError:
		return "error"
	case TypeQuery:
		return "query"
	case TypeResult:
		return "result"
	}
	return fmt.Sprintf("type(%d)", uint8(t))
}

// Decoding error values, matchable with errors.Is.
var (
	ErrMagic    = errors.New("wire: bad magic")
	ErrVersion  = errors.New("wire: protocol version skew")
	ErrType     = errors.New("wire: unknown frame type")
	ErrFlags    = errors.New("wire: reserved flags set")
	ErrTooLarge = errors.New("wire: frame exceeds payload limit")
	ErrTrace    = errors.New("wire: malformed trace context block")
)

// Frame is one decoded frame: a type, its raw JSON payload, and the
// optional trace context it rode with (zero Context = untraced).
type Frame struct {
	Type    Type
	Payload []byte
	Trace   trace.Context
}

// WriteFrame encodes f to w. Writing a frame larger than maxPayload is
// refused so a misconfigured client fails locally rather than being
// dropped by the server; maxPayload <= 0 means DefaultMaxPayload.
func WriteFrame(w io.Writer, f Frame, maxPayload int) error {
	if f.Type == 0 || f.Type >= typeEnd {
		return fmt.Errorf("%w: %d", ErrType, uint8(f.Type))
	}
	if maxPayload <= 0 {
		maxPayload = DefaultMaxPayload
	}
	if len(f.Payload) > maxPayload {
		return fmt.Errorf("%w: %d bytes > limit %d", ErrTooLarge, len(f.Payload), maxPayload)
	}
	var flags uint16
	if f.Trace.Valid() {
		flags |= FlagTrace
	}
	var hdr [headerLen]byte
	binary.BigEndian.PutUint32(hdr[0:4], Magic)
	hdr[4] = Version
	hdr[5] = uint8(f.Type)
	binary.BigEndian.PutUint16(hdr[6:8], flags)
	binary.BigEndian.PutUint32(hdr[8:12], uint32(len(f.Payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("wire: write header: %w", err)
	}
	if f.Trace.Valid() {
		var blk [traceBlockLen]byte
		blk[0] = traceBlockVersion
		blk[1] = f.Trace.Flags
		binary.BigEndian.PutUint64(blk[2:10], f.Trace.TraceID)
		binary.BigEndian.PutUint64(blk[10:18], f.Trace.SpanID)
		if _, err := w.Write(blk[:]); err != nil {
			return fmt.Errorf("wire: write trace block: %w", err)
		}
	}
	if len(f.Payload) > 0 {
		if _, err := w.Write(f.Payload); err != nil {
			return fmt.Errorf("wire: write payload: %w", err)
		}
	}
	return nil
}

// ReadFrame decodes one frame from r, refusing payloads larger than
// maxPayload (<= 0 means DefaultMaxPayload). A clean EOF before any
// header byte returns io.EOF; a header or payload cut short returns an
// error wrapping io.ErrUnexpectedEOF.
func ReadFrame(r io.Reader, maxPayload int) (Frame, error) {
	if maxPayload <= 0 {
		maxPayload = DefaultMaxPayload
	}
	var hdr [headerLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if errors.Is(err, io.EOF) && err != io.ErrUnexpectedEOF {
			return Frame{}, io.EOF
		}
		return Frame{}, fmt.Errorf("wire: read header: %w", err)
	}
	if got := binary.BigEndian.Uint32(hdr[0:4]); got != Magic {
		return Frame{}, fmt.Errorf("%w: 0x%08X", ErrMagic, got)
	}
	if hdr[4] != Version {
		return Frame{}, fmt.Errorf("%w: peer speaks version %d, this side %d", ErrVersion, hdr[4], Version)
	}
	t := Type(hdr[5])
	if t == 0 || t >= typeEnd {
		return Frame{}, fmt.Errorf("%w: %d", ErrType, hdr[5])
	}
	flags := binary.BigEndian.Uint16(hdr[6:8])
	if flags&^FlagTrace != 0 {
		return Frame{}, fmt.Errorf("%w: 0x%04X", ErrFlags, flags)
	}
	n := binary.BigEndian.Uint32(hdr[8:12])
	if int64(n) > int64(maxPayload) {
		return Frame{}, fmt.Errorf("%w: %d bytes > limit %d", ErrTooLarge, n, maxPayload)
	}
	var tc trace.Context
	if flags&FlagTrace != 0 {
		var blk [traceBlockLen]byte
		if _, err := io.ReadFull(r, blk[:]); err != nil {
			if errors.Is(err, io.EOF) {
				err = io.ErrUnexpectedEOF
			}
			return Frame{}, fmt.Errorf("wire: read trace block: %w", err)
		}
		if blk[0] != traceBlockVersion {
			return Frame{}, fmt.Errorf("%w: version %d, this side %d", ErrTrace, blk[0], traceBlockVersion)
		}
		tc = trace.Context{
			Flags:   blk[1],
			TraceID: binary.BigEndian.Uint64(blk[2:10]),
			SpanID:  binary.BigEndian.Uint64(blk[10:18]),
		}
		if !tc.Valid() {
			// A zero trace ID means "untraced", which the flag
			// contradicts; refusing it keeps the encoding canonical
			// (every decoded frame re-encodes byte-identically).
			return Frame{}, fmt.Errorf("%w: zero trace id", ErrTrace)
		}
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if errors.Is(err, io.EOF) {
			// The header promised n payload bytes; any shortfall is a
			// truncated frame, even at zero bytes read.
			err = io.ErrUnexpectedEOF
		}
		return Frame{}, fmt.Errorf("wire: read payload: %w", err)
	}
	return Frame{Type: t, Payload: payload, Trace: tc}, nil
}

// Batch is the unit a client ships: records under a client-assigned
// identifier. The ID is what makes journal replay exactly-once — a
// batch resent after a lost ack carries the same ID and the server
// drops the duplicate. Acct carries per-job energy-attribution
// records alongside the node reports; riding the same batch gives
// them the same dedup, spill and replay semantics for free. The acct
// records are versioned independently (accounting.CodecVersion) so
// the attribution layout can evolve without a wire version bump.
type Batch struct {
	ID      string              `json:"id"`
	Node    string              `json:"node"`
	Records []eard.JobRecord    `json:"records"`
	Acct    []accounting.Record `json:"acct,omitempty"`
}

// Ack acknowledges one batch. Accepted counts fresh records,
// Duplicate identical re-deliveries, Replaced records that updated an
// existing (job, step, node) entry with different content.
type Ack struct {
	BatchID   string `json:"batch_id"`
	Accepted  int    `json:"accepted"`
	Duplicate int    `json:"duplicate"`
	Replaced  int    `json:"replaced"`
}

// ErrorFrame reports a failure to the peer.
type ErrorFrame struct {
	Message string `json:"message"`
}

// Query asks the server for a snapshot. Kind selects the view; Job
// and Step scope the "summary" kind. User, Since, Limit and Cursor
// scope and paginate the "acct_jobs" kind (Job doubles as its job
// filter).
type Query struct {
	Kind   string  `json:"kind"`
	Job    string  `json:"job,omitempty"`
	Step   string  `json:"step,omitempty"`
	User   string  `json:"user,omitempty"`
	Since  float64 `json:"since,omitempty"`
	Limit  int     `json:"limit,omitempty"`
	Cursor string  `json:"cursor,omitempty"`
}

// Query kinds.
const (
	QueryStats     = "stats"
	QueryAggregate = "aggregate"
	QueryJobs      = "jobs"
	QuerySummary   = "summary"
	// QueryNodePowers returns the last reported DC power of every node
	// as a name-sorted []NodePower: the view a federation root merges
	// across shards, and what makes the merged eargm feed byte-identical
	// to a single daemon's.
	QueryNodePowers = "node_powers"
	// QueryRecords dumps every stored record sorted by (job, step,
	// node). The federation root folds shard dumps into one database so
	// merged summaries run the exact arithmetic a single daemon would.
	QueryRecords = "records"
	// QueryAcctJobs serves one filtered, cursor-paginated page of
	// per-job energy records (an accounting.Page).
	QueryAcctJobs = "acct_jobs"
	// QueryAcctRecords dumps every stored accounting record in
	// canonical (job, step, node, phase) order — the bulk path the
	// federation root merges shards by.
	QueryAcctRecords = "acct_records"
	// QueryGeneration returns the store's mutation counter (a
	// Generation). Snapshot caches poll it: unchanged generations mean
	// the cached merge is still exact.
	QueryGeneration = "generation"
)

// Generation is a store mutation counter, the QueryGeneration result.
// It advances on every accepted or replaced record — node report or
// accounting record alike — so equality implies identical contents.
type Generation struct {
	Gen uint64 `json:"gen"`
}

// NodePower is one node's last reported DC power, the element of a
// QueryNodePowers result.
type NodePower struct {
	Node   string  `json:"node"`
	PowerW float64 `json:"power_w"`
}

// Result wraps a query response as raw JSON for the caller to decode
// into the kind-specific shape.
type Result struct {
	Kind string          `json:"kind"`
	Data json.RawMessage `json:"data"`
}

// Decode unmarshals the result data into the kind-specific shape.
func (r Result) Decode(v any) error {
	if err := json.Unmarshal(r.Data, v); err != nil {
		return fmt.Errorf("wire: decode %s result: %w", r.Kind, err)
	}
	return nil
}

// EncodeBatch builds a TypeBatch frame.
func EncodeBatch(b Batch) (Frame, error) { return marshal(TypeBatch, b) }

// EncodeAck builds a TypeAck frame.
func EncodeAck(a Ack) (Frame, error) { return marshal(TypeAck, a) }

// EncodeError builds a TypeError frame.
func EncodeError(msg string) (Frame, error) { return marshal(TypeError, ErrorFrame{Message: msg}) }

// EncodeQuery builds a TypeQuery frame.
func EncodeQuery(q Query) (Frame, error) { return marshal(TypeQuery, q) }

// EncodeResult builds a TypeResult frame around already-encoded data.
func EncodeResult(kind string, data any) (Frame, error) {
	raw, err := json.Marshal(data)
	if err != nil {
		return Frame{}, fmt.Errorf("wire: encode result data: %w", err)
	}
	return marshal(TypeResult, Result{Kind: kind, Data: raw})
}

func marshal(t Type, v any) (Frame, error) {
	p, err := json.Marshal(v)
	if err != nil {
		return Frame{}, fmt.Errorf("wire: encode %s: %w", t, err)
	}
	return Frame{Type: t, Payload: p}, nil
}

// AsBatch decodes a TypeBatch frame.
func (f Frame) AsBatch() (Batch, error) {
	var b Batch
	return b, f.unmarshal(TypeBatch, &b)
}

// AsAck decodes a TypeAck frame.
func (f Frame) AsAck() (Ack, error) {
	var a Ack
	return a, f.unmarshal(TypeAck, &a)
}

// AsError decodes a TypeError frame.
func (f Frame) AsError() (ErrorFrame, error) {
	var e ErrorFrame
	return e, f.unmarshal(TypeError, &e)
}

// AsQuery decodes a TypeQuery frame.
func (f Frame) AsQuery() (Query, error) {
	var q Query
	return q, f.unmarshal(TypeQuery, &q)
}

// AsResult decodes a TypeResult frame.
func (f Frame) AsResult() (Result, error) {
	var r Result
	return r, f.unmarshal(TypeResult, &r)
}

func (f Frame) unmarshal(want Type, v any) error {
	if f.Type != want {
		return fmt.Errorf("wire: frame is %s, not %s", f.Type, want)
	}
	if err := json.Unmarshal(f.Payload, v); err != nil {
		return fmt.Errorf("wire: decode %s payload: %w", want, err)
	}
	return nil
}
