// Package metrics computes the application signature EAR's policies
// consume: a set of performance and power metrics characterising the
// computational behaviour of the running loop, derived from hardware
// counters and the Node Manager energy meter over windows of at least
// ten seconds (the paper's signature cadence, bounded below by the 1 s
// resolution of the DC energy counter).
package metrics

import (
	"fmt"
	"math"
)

// MinWindowSeconds is the minimum signature window: EARL computes the
// loop signature "every 10 or more seconds".
const MinWindowSeconds = 10.0

// Sample is a snapshot of a node's cumulative counters, taken by EARL at
// iteration boundaries (MPI) or periodic ticks (non-MPI).
type Sample struct {
	// TimeSec is elapsed wall time since the run started.
	TimeSec float64
	// Instructions retired, all cores.
	Instructions float64
	// CoreCycles consumed, all cores (at the effective clock).
	CoreCycles float64
	// AVXInstructions retired (AVX512), all cores.
	AVXInstructions float64
	// DRAMBytes transferred.
	DRAMBytes float64
	// EnergyJ is the Node Manager accumulated DC energy (1 s quantised).
	EnergyJ float64
	// CoreFreqSeconds is the time integral of measured core frequency
	// (GHz·s); divided by time it gives the average frequency.
	CoreFreqSeconds float64
	// IMCFreqSeconds is the same integral for the uncore.
	IMCFreqSeconds float64
	// Iterations completed so far (when loop structure is known).
	Iterations int
}

// Signature is the derived per-window application signature.
type Signature struct {
	// TimeSec is the window duration; IterTimeSec the per-iteration
	// time when iteration counts are available (otherwise the window).
	TimeSec     float64
	IterTimeSec float64
	// DCPowerW is the average DC node power over the window.
	DCPowerW float64
	// CPI is cycles per instruction.
	CPI float64
	// TPI is main-memory transactions (cache lines) per instruction.
	TPI float64
	// GBs is DRAM bandwidth in GB/s.
	GBs float64
	// VPI is the AVX512 fraction of instructions.
	VPI float64
	// AvgCPUGHz and AvgIMCGHz are average measured frequencies.
	AvgCPUGHz float64
	AvgIMCGHz float64
	// Iterations covered by the window.
	Iterations int
}

// CacheLineBytes converts DRAM bytes to transactions.
const CacheLineBytes = 64

// Compute derives the signature of the window between two samples.
func Compute(prev, cur Sample) (Signature, error) {
	dt := cur.TimeSec - prev.TimeSec
	if dt <= 0 {
		return Signature{}, fmt.Errorf("metrics: non-positive window %g s", dt)
	}
	di := cur.Instructions - prev.Instructions
	if di <= 0 {
		return Signature{}, fmt.Errorf("metrics: no instructions retired in window")
	}
	dc := cur.CoreCycles - prev.CoreCycles
	dbytes := cur.DRAMBytes - prev.DRAMBytes
	dEnergy := cur.EnergyJ - prev.EnergyJ
	davx := cur.AVXInstructions - prev.AVXInstructions
	if dc < 0 || dbytes < 0 || dEnergy < 0 || davx < 0 {
		return Signature{}, fmt.Errorf("metrics: counters went backwards")
	}
	s := Signature{
		TimeSec:     dt,
		IterTimeSec: dt,
		DCPowerW:    dEnergy / dt,
		CPI:         dc / di,
		TPI:         dbytes / CacheLineBytes / di,
		GBs:         dbytes / dt / 1e9,
		VPI:         davx / di,
		AvgCPUGHz:   (cur.CoreFreqSeconds - prev.CoreFreqSeconds) / dt,
		AvgIMCGHz:   (cur.IMCFreqSeconds - prev.IMCFreqSeconds) / dt,
		Iterations:  cur.Iterations - prev.Iterations,
	}
	if s.Iterations > 0 {
		s.IterTimeSec = dt / float64(s.Iterations)
	}
	return s, nil
}

// Changed reports whether signature b differs from a by more than the
// given relative threshold on the metrics the paper uses for stability:
// CPI and GB/s (§V-B item 6). GB/s below 1 GB/s is ignored to avoid
// noise-triggered re-evaluation on compute-only phases.
func Changed(a, b Signature, threshold float64) bool {
	if a.CPI > 0 && relDiff(a.CPI, b.CPI) > threshold {
		return true
	}
	if a.GBs > 1 && relDiff(a.GBs, b.GBs) > threshold {
		return true
	}
	return false
}

func relDiff(ref, now float64) float64 {
	if ref == 0 {
		return 0
	}
	return math.Abs(now-ref) / math.Abs(ref)
}

// Valid reports whether the signature has physically meaningful values.
func (s Signature) Valid() bool {
	return s.TimeSec > 0 && s.CPI > 0 && s.DCPowerW >= 0 &&
		s.TPI >= 0 && s.GBs >= 0 && s.VPI >= 0 && s.VPI <= 1 &&
		!math.IsNaN(s.CPI) && !math.IsInf(s.CPI, 0)
}
