package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func sampleAt(t float64) Sample {
	// A node retiring 1e10 instr/s at CPI 0.5, 20 GB/s, 300 W, 10% AVX,
	// 2.4 GHz core, 2.0 GHz uncore, 1 iteration per second.
	return Sample{
		TimeSec:         t,
		Instructions:    1e10 * t,
		CoreCycles:      0.5e10 * t,
		AVXInstructions: 1e9 * t,
		DRAMBytes:       20e9 * t,
		EnergyJ:         300 * t,
		CoreFreqSeconds: 2.4 * t,
		IMCFreqSeconds:  2.0 * t,
		Iterations:      int(t),
	}
}

func TestComputeBasics(t *testing.T) {
	sig, err := Compute(sampleAt(0), sampleAt(10))
	if err != nil {
		t.Fatal(err)
	}
	if sig.TimeSec != 10 {
		t.Errorf("TimeSec = %v", sig.TimeSec)
	}
	if math.Abs(sig.CPI-0.5) > 1e-12 {
		t.Errorf("CPI = %v, want 0.5", sig.CPI)
	}
	if math.Abs(sig.DCPowerW-300) > 1e-9 {
		t.Errorf("power = %v, want 300", sig.DCPowerW)
	}
	if math.Abs(sig.GBs-20) > 1e-9 {
		t.Errorf("GBs = %v, want 20", sig.GBs)
	}
	if math.Abs(sig.VPI-0.1) > 1e-12 {
		t.Errorf("VPI = %v, want 0.1", sig.VPI)
	}
	if math.Abs(sig.TPI-20e9/64/1e10) > 1e-15 {
		t.Errorf("TPI = %v", sig.TPI)
	}
	if math.Abs(sig.AvgCPUGHz-2.4) > 1e-12 || math.Abs(sig.AvgIMCGHz-2.0) > 1e-12 {
		t.Errorf("frequencies = %v / %v", sig.AvgCPUGHz, sig.AvgIMCGHz)
	}
	if sig.Iterations != 10 {
		t.Errorf("iterations = %d, want 10", sig.Iterations)
	}
	if math.Abs(sig.IterTimeSec-1.0) > 1e-12 {
		t.Errorf("iteration time = %v, want 1", sig.IterTimeSec)
	}
	if !sig.Valid() {
		t.Error("signature should be valid")
	}
}

func TestComputeNoIterations(t *testing.T) {
	a, b := sampleAt(0), sampleAt(10)
	b.Iterations = 0
	sig, err := Compute(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// Without iteration counts the window itself is the "iteration".
	if sig.IterTimeSec != sig.TimeSec {
		t.Errorf("IterTimeSec = %v, want window %v", sig.IterTimeSec, sig.TimeSec)
	}
}

func TestComputeErrors(t *testing.T) {
	a := sampleAt(5)
	if _, err := Compute(a, a); err == nil {
		t.Error("expected error for zero window")
	}
	if _, err := Compute(sampleAt(10), sampleAt(5)); err == nil {
		t.Error("expected error for negative window")
	}
	b := sampleAt(10)
	b.Instructions = sampleAt(0).Instructions
	if _, err := Compute(sampleAt(0), b); err == nil {
		t.Error("expected error for no instructions")
	}
	b = sampleAt(10)
	b.DRAMBytes = -1
	if _, err := Compute(sampleAt(0), b); err == nil {
		t.Error("expected error for backwards counter")
	}
}

func TestChanged(t *testing.T) {
	base := Signature{CPI: 1.0, GBs: 50}
	cases := []struct {
		sig  Signature
		th   float64
		want bool
	}{
		{Signature{CPI: 1.0, GBs: 50}, 0.15, false},
		{Signature{CPI: 1.10, GBs: 50}, 0.15, false},   // 10% < 15%
		{Signature{CPI: 1.20, GBs: 50}, 0.15, true},    // 20% > 15%
		{Signature{CPI: 0.80, GBs: 50}, 0.15, true},    // drop counts too
		{Signature{CPI: 1.0, GBs: 60}, 0.15, true},     // GBs +20%
		{Signature{CPI: 1.0, GBs: 44}, 0.15, false},    // GBs -12%
		{Signature{CPI: 1.0195, GBs: 51}, 0.02, false}, // just under threshold
	}
	for i, c := range cases {
		if got := Changed(base, c.sig, c.th); got != c.want {
			t.Errorf("case %d: Changed = %v, want %v", i, got, c.want)
		}
	}
}

func TestChangedIgnoresTinyBandwidth(t *testing.T) {
	// CUDA busy-wait style signatures: GB/s noise at the 0.1 GB/s scale
	// must not trigger re-evaluation.
	a := Signature{CPI: 0.5, GBs: 0.09}
	b := Signature{CPI: 0.5, GBs: 0.18}
	if Changed(a, b, 0.15) {
		t.Error("sub-1GB/s bandwidth change must be ignored")
	}
}

func TestChangedSymmetryProperty(t *testing.T) {
	// For CPI-only differences within 1%..99%, Changed(a,b) at
	// threshold th must equal relative difference > th.
	fn := func(deltaPct uint8, thPct uint8) bool {
		d := float64(deltaPct%99+1) / 100
		th := float64(thPct%99+1) / 100
		if math.Abs(d-th) < 1e-9 {
			// Exact boundary: float rounding may fall either way.
			return true
		}
		a := Signature{CPI: 1, GBs: 0}
		b := Signature{CPI: 1 + d, GBs: 0}
		return Changed(a, b, th) == (d > th)
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Error(err)
	}
}

func TestValid(t *testing.T) {
	good := Signature{TimeSec: 10, CPI: 1, DCPowerW: 300, VPI: 0.5}
	if !good.Valid() {
		t.Error("good signature reported invalid")
	}
	bads := []Signature{
		{TimeSec: 0, CPI: 1},
		{TimeSec: 10, CPI: 0},
		{TimeSec: 10, CPI: 1, DCPowerW: -1},
		{TimeSec: 10, CPI: 1, VPI: 2},
		{TimeSec: 10, CPI: math.NaN()},
		{TimeSec: 10, CPI: math.Inf(1)},
	}
	for i, b := range bads {
		if b.Valid() {
			t.Errorf("bad signature %d reported valid", i)
		}
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		sig  Signature
		want PhaseClass
	}{
		{Signature{CPI: 0.49, GBs: 0.09}, BusyWaiting},     // CUDA host spin
		{Signature{CPI: 0.39, GBs: 28}, CPUComp},           // BT-MZ
		{Signature{CPI: 3.13, GBs: 177}, MemBound},         // HPCG
		{Signature{CPI: 0.72, GBs: 100}, Mixed},            // POP
		{Signature{CPI: 0.45, GBs: 98, VPI: 1}, Mixed},     // DGEMM
		{Signature{CPI: 0.3, GBs: 0.1, VPI: 0.5}, CPUComp}, // AVX spin is not busy-wait
		{Signature{CPI: 2.0, GBs: 20}, CPUComp},            // high CPI, low traffic
	}
	for i, c := range cases {
		if got := Classify(c.sig); got != c.want {
			t.Errorf("case %d: Classify = %v, want %v", i, got, c.want)
		}
	}
}

func TestPhaseClassString(t *testing.T) {
	names := map[PhaseClass]string{
		CPUComp: "CPU_COMP", MemBound: "MEM_BOUND", Mixed: "MIXED",
		BusyWaiting: "BUSY_WAITING", PhaseClass(9): "PhaseClass(9)",
	}
	for c, want := range names {
		if got := c.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(c), got, want)
		}
	}
}
