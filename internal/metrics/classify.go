package metrics

import "fmt"

// PhaseClass is EAR's coarse application-phase taxonomy, derived from
// the signature alone. The policies use it to pick their strategy: the
// prediction-driven search applies to compute phases, while busy-wait
// phases (an accelerator-offload host spinning on completion) are
// handled by direct frequency reduction.
type PhaseClass int

// Phase classes.
const (
	// CPUComp: compute-dominated, little main-memory traffic relative
	// to the instruction rate.
	CPUComp PhaseClass = iota
	// MemBound: main-memory dominated (high CPI together with high
	// bandwidth).
	MemBound
	// Mixed: meaningful core and memory components.
	Mixed
	// BusyWaiting: negligible memory traffic and low CPI — a spinning
	// host core making no application progress per cycle.
	BusyWaiting
)

// String names the class.
func (c PhaseClass) String() string {
	switch c {
	case CPUComp:
		return "CPU_COMP"
	case MemBound:
		return "MEM_BOUND"
	case Mixed:
		return "MIXED"
	case BusyWaiting:
		return "BUSY_WAITING"
	default:
		return fmt.Sprintf("PhaseClass(%d)", int(c))
	}
}

// Classification thresholds (fractions and absolute GB/s).
const (
	busyWaitMaxGBs = 0.5
	busyWaitMaxCPI = 1.2
	memBoundMinCPI = 1.5
	memBoundMinGBs = 80
	mixedMinGBs    = 30
)

// Classify derives the phase class from a signature.
func Classify(sig Signature) PhaseClass {
	switch {
	case sig.GBs < busyWaitMaxGBs && sig.CPI < busyWaitMaxCPI && sig.VPI < 0.01:
		return BusyWaiting
	case sig.CPI >= memBoundMinCPI && sig.GBs >= memBoundMinGBs:
		return MemBound
	case sig.GBs >= mixedMinGBs:
		return Mixed
	default:
		return CPUComp
	}
}
