package power

import (
	"fmt"
	"sync"

	"goear/internal/msr"
)

// Rapl feeds per-socket RAPL energy counters from the node power model.
// Package energy is split evenly across sockets; DRAM energy goes to
// socket 0's DRAM counter (matching how single-controller readings are
// aggregated by EAR).
type Rapl struct {
	sockets []*msr.File
	// carry accumulates fractional joules between MSR updates so the
	// truncating counter conversion loses nothing over time.
	carryPkg  []float64
	carryDram float64
}

// NewRapl wires the RAPL emulation to the given per-socket MSR files.
func NewRapl(sockets []*msr.File) (*Rapl, error) {
	r := &Rapl{}
	if err := r.Init(sockets); err != nil {
		return nil, err
	}
	return r, nil
}

// Init (re)wires the emulation in place with zeroed carries, as NewRapl
// does but reusing the receiver's buffers, for meters embedded in
// recycled per-run state.
func (r *Rapl) Init(sockets []*msr.File) error {
	if len(sockets) == 0 {
		return fmt.Errorf("power: RAPL needs at least one socket")
	}
	r.sockets = sockets
	if cap(r.carryPkg) < len(sockets) {
		r.carryPkg = make([]float64, len(sockets))
	} else {
		r.carryPkg = r.carryPkg[:len(sockets)]
		for i := range r.carryPkg {
			r.carryPkg[i] = 0
		}
	}
	r.carryDram = 0
	return nil
}

// Advance accounts dt seconds of the given breakdown into the counters.
func (r *Rapl) Advance(b Breakdown, dt float64) error {
	if dt < 0 {
		return fmt.Errorf("power: negative time step %g", dt)
	}
	perSocketPkg := b.Pkg / float64(len(r.sockets)) * dt
	for i, s := range r.sockets {
		j := perSocketPkg + r.carryPkg[i]
		// AddEnergyHw truncates to whole counter units; keep the
		// remainder for the next tick.
		whole := float64(int64(j*1e6)) / 1e6 // limit carry drift
		if _, err := s.AddEnergyHw(msr.MSRPkgEnergyStatus, whole); err != nil {
			return err
		}
		r.carryPkg[i] = j - whole
	}
	j := b.Dram*dt + r.carryDram
	whole := float64(int64(j*1e6)) / 1e6
	if _, err := r.sockets[0].AddEnergyHw(msr.MSRDramEnergyStatus, whole); err != nil {
		return err
	}
	r.carryDram = j - whole
	return nil
}

// FlatCarry copies the fractional-joule carries into pkg (which must
// hold one element per socket) and returns the DRAM carry. Together
// with SetFlatCarry it lets a batch stepping kernel lift the meter's
// hot state into dense arrays and restore it unchanged afterwards.
func (r *Rapl) FlatCarry(pkg []float64) (dram float64) {
	copy(pkg, r.carryPkg)
	return r.carryDram
}

// SetFlatCarry restores carries previously lifted with FlatCarry (or
// advanced externally by a kernel replicating Advance's arithmetic).
func (r *Rapl) SetFlatCarry(pkg []float64, dram float64) {
	copy(r.carryPkg, pkg)
	r.carryDram = dram
}

// PkgEnergy reads the accumulated package energy in joules across all
// sockets, handling 32-bit counter wraparound relative to prev (the raw
// values returned by a previous call). It returns the new raw values.
func (r *Rapl) PkgEnergy(prev []uint64) (joules float64, raw []uint64, err error) {
	raw = make([]uint64, len(r.sockets))
	for i, s := range r.sockets {
		v, err := s.Read(msr.MSRPkgEnergyStatus)
		if err != nil {
			return 0, nil, err
		}
		raw[i] = v
		var delta uint64
		if prev != nil && i < len(prev) {
			delta = msr.EnergyDelta(prev[i], v)
		} else {
			delta = v
		}
		joules += s.EnergyJoules(delta)
	}
	return joules, raw, nil
}

// NodeManager emulates the Intel Node Manager DC energy meter: the true
// energy integral is internal; the published counter only changes once
// per second of simulated time, which is what IPMI readers observe.
type NodeManager struct {
	mu        sync.Mutex
	trueJ     float64
	published float64
	lastPub   float64 // simulated time of last publication, seconds
	now       float64
}

// NewNodeManager returns a meter starting at time zero with zero energy.
func NewNodeManager() *NodeManager { return &NodeManager{} }

// Init resets the meter to time zero with zero energy, for meters
// embedded in recycled per-run state.
func (nm *NodeManager) Init() {
	nm.mu.Lock()
	defer nm.mu.Unlock()
	nm.trueJ, nm.published, nm.lastPub, nm.now = 0, 0, 0, 0
}

// Advance integrates power over dt simulated seconds and publishes the
// counter at every whole-second boundary crossed.
func (nm *NodeManager) Advance(powerW, dt float64) error {
	if dt < 0 {
		return fmt.Errorf("power: negative time step %g", dt)
	}
	nm.mu.Lock()
	defer nm.mu.Unlock()
	nm.trueJ += powerW * dt
	nm.now += dt
	if nm.now-nm.lastPub >= 1.0 {
		nm.published = nm.trueJ
		nm.lastPub = float64(int64(nm.now)) // snap to the boundary
	}
	return nil
}

// FlatState returns the meter's full internal state: the true energy
// integral, the published counter, the last publication time and the
// meter clock. It exists so a batch stepping kernel can lift the state
// into dense arrays, advance it with Advance's exact arithmetic, and
// restore it with SetFlatState — the flat round trip is bit-exact.
func (nm *NodeManager) FlatState() (trueJ, published, lastPub, now float64) {
	nm.mu.Lock()
	defer nm.mu.Unlock()
	return nm.trueJ, nm.published, nm.lastPub, nm.now
}

// SetFlatState restores state previously lifted with FlatState.
func (nm *NodeManager) SetFlatState(trueJ, published, lastPub, now float64) {
	nm.mu.Lock()
	defer nm.mu.Unlock()
	nm.trueJ, nm.published, nm.lastPub, nm.now = trueJ, published, lastPub, now
}

// ReadEnergy returns the last published accumulated DC energy in joules,
// as an IPMI read of the INM counter would.
func (nm *NodeManager) ReadEnergy() float64 {
	nm.mu.Lock()
	defer nm.mu.Unlock()
	return nm.published
}

// TrueEnergy returns the exact integral, used by the simulator's own
// bookkeeping (not visible to EARL).
func (nm *NodeManager) TrueEnergy() float64 {
	nm.mu.Lock()
	defer nm.mu.Unlock()
	return nm.trueJ
}

// Now returns the meter's notion of elapsed simulated time in seconds.
func (nm *NodeManager) Now() float64 {
	nm.mu.Lock()
	defer nm.mu.Unlock()
	return nm.now
}
