package power

import (
	"math"
	"testing"
	"testing/quick"

	"goear/internal/msr"
)

func nominalInput() Input {
	return Input{
		CoreFreqGHz:   2.4,
		UncoreFreqGHz: 2.4,
		Sockets:       2,
		ActiveCores:   40,
		Activity:      1.0,
		GBs:           28,
	}
}

func TestCoeffsValidate(t *testing.T) {
	if err := SD530Coeffs().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := GPUNodeCoeffs().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := SD530Coeffs()
	bad.UncoreDyn = -1
	if err := bad.Validate(); err == nil {
		t.Error("expected error for negative coefficient")
	}
	bad = SD530Coeffs()
	bad.UncoreExp = 0
	if err := bad.Validate(); err == nil {
		t.Error("expected error for zero exponent")
	}
	bad = SD530Coeffs()
	bad.V0 = math.NaN()
	if err := bad.Validate(); err == nil {
		t.Error("expected error for NaN coefficient")
	}
}

func TestInputValidate(t *testing.T) {
	good := nominalInput()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	muts := []func(*Input){
		func(in *Input) { in.CoreFreqGHz = 0 },
		func(in *Input) { in.UncoreFreqGHz = -1 },
		func(in *Input) { in.Sockets = 0 },
		func(in *Input) { in.ActiveCores = -1 },
		func(in *Input) { in.Activity = -0.1 },
		func(in *Input) { in.GBs = -1 },
		func(in *Input) { in.GPUPower = -1 },
	}
	for i, mut := range muts {
		in := good
		mut(&in)
		if err := in.Validate(); err == nil {
			t.Errorf("mutation %d: expected error", i)
		}
	}
}

func TestNodeBreakdownConsistency(t *testing.T) {
	c := SD530Coeffs()
	b, err := c.Node(nominalInput())
	if err != nil {
		t.Fatal(err)
	}
	if got := b.PkgBase + b.CoreDyn + b.Uncore; math.Abs(got-b.Pkg) > 1e-9 {
		t.Errorf("Pkg = %v, parts sum to %v", b.Pkg, got)
	}
	if got := b.Pkg + b.Dram + b.Other + b.GPU; math.Abs(got-b.Total) > 1e-9 {
		t.Errorf("Total = %v, parts sum to %v", b.Total, got)
	}
	// The SD530 at full tilt lands in the paper's 300-370W band.
	if b.Total < 280 || b.Total > 400 {
		t.Errorf("nominal DC power = %vW, want within the SD530 band", b.Total)
	}
}

func TestNodePowerMonotonicInFrequencies(t *testing.T) {
	c := SD530Coeffs()
	fn := func(a, b uint8) bool {
		fa := 1.0 + float64(a%15)*0.1
		fb := 1.0 + float64(b%15)*0.1
		if fa > fb {
			fa, fb = fb, fa
		}
		in := nominalInput()
		in.CoreFreqGHz = fa
		lo, err1 := c.Node(in)
		in.CoreFreqGHz = fb
		hi, err2 := c.Node(in)
		if err1 != nil || err2 != nil {
			return false
		}
		if hi.Total < lo.Total {
			return false
		}
		// Same for uncore.
		in = nominalInput()
		in.UncoreFreqGHz = fa
		lo, err1 = c.Node(in)
		in.UncoreFreqGHz = fb
		hi, err2 = c.Node(in)
		if err1 != nil || err2 != nil {
			return false
		}
		return hi.Total >= lo.Total
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Error(err)
	}
}

func TestUncoreShareMatchesPaperScale(t *testing.T) {
	// Dropping uncore 2.4 -> 2.0 GHz must save a mid-single-digit
	// percentage of a ~330 W node: the magnitude behind the paper's
	// 7-8 % savings at ~1.98 GHz.
	c := SD530Coeffs()
	in := nominalInput()
	hi, err := c.Node(in)
	if err != nil {
		t.Fatal(err)
	}
	in.UncoreFreqGHz = 2.0
	lo, err := c.Node(in)
	if err != nil {
		t.Fatal(err)
	}
	save := (hi.Total - lo.Total) / hi.Total
	if save < 0.03 || save > 0.12 {
		t.Errorf("uncore 2.4->2.0 saving = %.1f%%, want 3-12%%", save*100)
	}
}

func TestNodeErrors(t *testing.T) {
	c := SD530Coeffs()
	in := nominalInput()
	in.Sockets = 0
	if _, err := c.Node(in); err == nil {
		t.Error("expected input validation error")
	}
	bad := c
	bad.PkgBase = -5
	if _, err := bad.Node(nominalInput()); err == nil {
		t.Error("expected coefficient validation error")
	}
}

func TestSolveActivityRoundTrip(t *testing.T) {
	c := SD530Coeffs()
	for _, target := range []float64{300, 332, 358, 369} {
		in := nominalInput()
		act, err := c.SolveActivity(in, target)
		if err != nil {
			t.Fatalf("target %v: %v", target, err)
		}
		in.Activity = act
		b, err := c.Node(in)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(b.Total-target) > 1e-6 {
			t.Errorf("target %v: reproduced %v", target, b.Total)
		}
	}
}

func TestSolveActivityErrors(t *testing.T) {
	c := SD530Coeffs()
	in := nominalInput()
	if _, err := c.SolveActivity(in, 10); err == nil {
		t.Error("expected error for target below static power")
	}
	in.ActiveCores = 0
	if _, err := c.SolveActivity(in, 300); err == nil {
		t.Error("expected error for zero core term")
	}
}

func TestRaplAccounting(t *testing.T) {
	files := []*msr.File{msr.NewFile(12, 24), msr.NewFile(12, 24)}
	r, err := NewRapl(files)
	if err != nil {
		t.Fatal(err)
	}
	b := Breakdown{Pkg: 200, Dram: 40}
	// 10 seconds in 10ms ticks.
	for i := 0; i < 1000; i++ {
		if err := r.Advance(b, 0.01); err != nil {
			t.Fatal(err)
		}
	}
	j, raw, err := r.PkgEnergy(nil)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(j-2000) > 1 {
		t.Errorf("package energy = %v J, want ~2000", j)
	}
	if len(raw) != 2 {
		t.Fatalf("raw counters = %d, want 2", len(raw))
	}
	// Delta read: advance more, then read relative.
	for i := 0; i < 100; i++ {
		if err := r.Advance(b, 0.01); err != nil {
			t.Fatal(err)
		}
	}
	dj, _, err := r.PkgEnergy(raw)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(dj-200) > 0.5 {
		t.Errorf("delta package energy = %v J, want ~200", dj)
	}
	// DRAM counter on socket 0.
	v, err := files[0].Read(msr.MSRDramEnergyStatus)
	if err != nil {
		t.Fatal(err)
	}
	if got := files[0].EnergyJoules(v); math.Abs(got-440) > 1 {
		t.Errorf("DRAM energy = %v J, want ~440", got)
	}
}

func TestRaplErrors(t *testing.T) {
	if _, err := NewRapl(nil); err == nil {
		t.Error("expected error for no sockets")
	}
	r, err := NewRapl([]*msr.File{msr.NewFile(12, 24)})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Advance(Breakdown{Pkg: 100}, -1); err == nil {
		t.Error("expected error for negative dt")
	}
}

func TestNodeManagerQuantisation(t *testing.T) {
	nm := NewNodeManager()
	// 0.4 s at 300 W: nothing published yet.
	if err := nm.Advance(300, 0.4); err != nil {
		t.Fatal(err)
	}
	if e := nm.ReadEnergy(); e != 0 {
		t.Errorf("published %v J before first second", e)
	}
	// Cross the 1 s boundary.
	if err := nm.Advance(300, 0.7); err != nil {
		t.Fatal(err)
	}
	if e := nm.ReadEnergy(); e <= 0 {
		t.Error("counter not published after 1s")
	}
	if got, want := nm.TrueEnergy(), 330.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("true energy = %v, want %v", got, want)
	}
}

func TestNodeManagerLongRunAccuracy(t *testing.T) {
	nm := NewNodeManager()
	// 100 s at 250 W in 10 ms steps: published must track true within
	// one second's worth of energy.
	for i := 0; i < 10000; i++ {
		if err := nm.Advance(250, 0.01); err != nil {
			t.Fatal(err)
		}
	}
	trueJ := nm.TrueEnergy()
	pub := nm.ReadEnergy()
	if math.Abs(trueJ-25000) > 1e-6 {
		t.Errorf("true energy = %v, want 25000", trueJ)
	}
	if trueJ-pub > 251 {
		t.Errorf("published lag = %v J, want <= 1s of power", trueJ-pub)
	}
	if nm.Now() < 99.99 || nm.Now() > 100.01 {
		t.Errorf("Now = %v, want ~100", nm.Now())
	}
}

func TestNodeManagerNegativeDt(t *testing.T) {
	nm := NewNodeManager()
	if err := nm.Advance(100, -0.1); err == nil {
		t.Error("expected error for negative dt")
	}
}
