// Package power models the electrical side of a simulated node and the
// two instruments EAR reads it with:
//
//   - the analytic node power model (core, uncore, DRAM, board, GPU),
//   - RAPL package/DRAM energy counters exposed through per-socket MSRs,
//   - the Intel Node Manager (INM) DC energy counter, which integrates
//     full node power but only updates once per second — the instrument
//     the paper insists on for honest savings accounting (Table VII).
//
// The coefficient split matters for the paper's Table VII: RAPL PCK
// covers only the socket terms (package base + core dynamic + uncore),
// while DC node power adds DRAM, board/fans/PSU and any GPU, so the same
// uncore saving is a larger fraction of PCK power than of DC power.
package power

import (
	"fmt"
	"math"
)

// Coeffs parameterises the node power model. All powers in watts.
type Coeffs struct {
	// NodeConst is board, fans, PSU loss, NIC, drives.
	NodeConst float64
	// PkgBase is the static per-socket package power (includes idle
	// cores and fabric leakage).
	PkgBase float64
	// CoreDynPerCore scales active-core dynamic power:
	// P = CoreDynPerCore · f(GHz) · V(f)² · activity per active core.
	CoreDynPerCore float64
	// V0, V1 define the voltage curve V(f) = V0 + V1·f(GHz).
	V0, V1 float64
	// UncoreDyn and UncoreExp give per-socket uncore power
	// UncoreDyn · f_uncore(GHz)^UncoreExp (mesh, LLC, IMC).
	UncoreDyn float64
	UncoreExp float64
	// DramBase and DramPerGBs give DRAM power DramBase + DramPerGBs·GB/s.
	DramBase   float64
	DramPerGBs float64
}

// SD530Coeffs returns coefficients calibrated for the paper's Lenovo
// SD530 compute node (2× Xeon Gold 6148, 12 DIMMs): they reproduce the
// published DC node powers of Tables II and V through the workload
// calibration, and give the uncore the ~40 % package power share at full
// mesh clock that the eUFS savings in the paper imply.
func SD530Coeffs() Coeffs {
	return Coeffs{
		NodeConst:      70,
		PkgBase:        18,
		CoreDynPerCore: 1.42,
		V0:             0.45,
		V1:             0.18,
		UncoreDyn:      10.2,
		UncoreExp:      1.7,
		DramBase:       20,
		DramPerGBs:     0.20,
	}
}

// GPUNodeCoeffs returns coefficients for the CUDA node (2× Xeon Gold
// 6142M + NVIDIA V100): a smaller uncore share and higher board power.
func GPUNodeCoeffs() Coeffs {
	c := SD530Coeffs()
	c.NodeConst = 85
	c.UncoreDyn = 6.0
	return c
}

// Validate reports whether the coefficients are physical.
func (c Coeffs) Validate() error {
	vals := []struct {
		name string
		v    float64
	}{
		{"NodeConst", c.NodeConst}, {"PkgBase", c.PkgBase},
		{"CoreDynPerCore", c.CoreDynPerCore}, {"V0", c.V0}, {"V1", c.V1},
		{"UncoreDyn", c.UncoreDyn}, {"UncoreExp", c.UncoreExp},
		{"DramBase", c.DramBase}, {"DramPerGBs", c.DramPerGBs},
	}
	for _, x := range vals {
		if x.v < 0 || math.IsNaN(x.v) || math.IsInf(x.v, 0) {
			return fmt.Errorf("power: coefficient %s = %g invalid", x.name, x.v)
		}
	}
	if c.UncoreExp == 0 {
		return fmt.Errorf("power: UncoreExp must be positive")
	}
	return nil
}

// Input is the operating state the model evaluates.
type Input struct {
	CoreFreqGHz   float64 // licence-resolved effective core frequency
	UncoreFreqGHz float64
	Sockets       int
	ActiveCores   int     // cores executing the workload
	Activity      float64 // per-workload dynamic activity factor
	GBs           float64 // achieved DRAM bandwidth
	GPUPower      float64 // constant adder for accelerator nodes
}

// Validate reports whether the input is usable.
func (in Input) Validate() error {
	switch {
	case in.CoreFreqGHz <= 0 || in.UncoreFreqGHz <= 0:
		return fmt.Errorf("power: frequencies must be positive (%g, %g)", in.CoreFreqGHz, in.UncoreFreqGHz)
	case in.Sockets <= 0:
		return fmt.Errorf("power: sockets must be positive")
	case in.ActiveCores < 0:
		return fmt.Errorf("power: active cores must be non-negative")
	case in.Activity < 0:
		return fmt.Errorf("power: activity must be non-negative")
	case in.GBs < 0:
		return fmt.Errorf("power: bandwidth must be non-negative")
	case in.GPUPower < 0:
		return fmt.Errorf("power: GPU power must be non-negative")
	}
	return nil
}

// Breakdown is the node power split by scope. Pkg is what RAPL PCK
// counters see; Total is what the Node Manager DC meter sees.
type Breakdown struct {
	CoreDyn float64 // dynamic core power, all sockets
	Uncore  float64 // uncore power, all sockets
	PkgBase float64 // static package power, all sockets
	Pkg     float64 // PkgBase + CoreDyn + Uncore (RAPL PCK scope)
	Dram    float64 // RAPL DRAM scope
	Other   float64 // board, fans, PSU
	GPU     float64
	Total   float64 // DC node power (INM scope)
}

// Node evaluates the model.
func (c Coeffs) Node(in Input) (Breakdown, error) {
	if err := c.Validate(); err != nil {
		return Breakdown{}, err
	}
	if err := in.Validate(); err != nil {
		return Breakdown{}, err
	}
	v := c.V0 + c.V1*in.CoreFreqGHz
	b := Breakdown{
		CoreDyn: c.CoreDynPerCore * float64(in.ActiveCores) * in.CoreFreqGHz * v * v * in.Activity,
		Uncore:  float64(in.Sockets) * c.UncoreDyn * math.Pow(in.UncoreFreqGHz, c.UncoreExp),
		PkgBase: float64(in.Sockets) * c.PkgBase,
		Dram:    c.DramBase + c.DramPerGBs*in.GBs,
		Other:   c.NodeConst,
		GPU:     in.GPUPower,
	}
	b.Pkg = b.PkgBase + b.CoreDyn + b.Uncore
	b.Total = b.Pkg + b.Dram + b.Other + b.GPU
	return b, nil
}

// SolveActivity inverts the model: it returns the activity factor that
// makes Node(...) produce targetDC watts with the remaining fields of in
// fixed. Used by workload calibration against the published powers.
func (c Coeffs) SolveActivity(in Input, targetDC float64) (float64, error) {
	probe := in
	probe.Activity = 0
	base, err := c.Node(probe)
	if err != nil {
		return 0, err
	}
	v := c.V0 + c.V1*in.CoreFreqGHz
	coreTerm := c.CoreDynPerCore * float64(in.ActiveCores) * in.CoreFreqGHz * v * v
	if coreTerm <= 0 {
		return 0, fmt.Errorf("power: cannot solve activity with zero core term")
	}
	act := (targetDC - base.Total) / coreTerm
	if act < 0 {
		return 0, fmt.Errorf("power: target %gW below static power %gW", targetDC, base.Total)
	}
	return act, nil
}
