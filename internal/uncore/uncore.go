// Package uncore implements the hardware uncore frequency scaling (UFS)
// controller of a Skylake-SP socket, the mechanism EAR's explicit UFS
// policy competes with and is guided by.
//
// Per Intel's patent (US9323316B2) and the measurements in Hackenberg et
// al. and Schöne et al. that the paper cites, the silicon runs a control
// loop with roughly 10 ms reaction time whose target depends on the
// fastest active core frequency and the memory activity of the socket,
// biased by the ENERGY_PERF_BIAS hint and always clamped to the limits
// programmed in MSR 0x620 (UNCORE_RATIO_LIMIT).
//
// The exact heuristic is proprietary, and the paper's own measurements
// (Tables IV and VI) show it is not a simple function of load — that is
// precisely the motivation for explicit UFS. Each simulated workload
// therefore carries a Curve describing the silicon's observed response
// for that access pattern, calibrated from the paper's ME columns; the
// controller mechanics around the curve (tick latency, one-step ramping,
// MSR clamping, EPB bias) are faithful to the published behaviour.
package uncore

import (
	"fmt"

	"goear/internal/msr"
)

// TickSeconds is the controller reaction period: the ~10 ms Schöne et
// al. measured for workload-change detection on Skylake-SP.
const TickSeconds = 0.010

// Curve maps the effective (licence-resolved) core ratio to the uncore
// ratio the silicon heuristic aims for, before MSR clamping.
type Curve func(coreRatio uint64) uint64

// AlwaysMax returns a curve that always requests ratio max: the
// behaviour the paper observed for every workload with appreciable
// memory traffic ("the HW left the IMC up to the maximum").
func AlwaysMax(max uint64) Curve {
	return func(uint64) uint64 { return max }
}

// FollowCore returns a curve that tracks the fastest active core ratio
// plus a constant offset (which may be negative): the patent's primary
// input. DGEMM's AVX512-licensed cores dragging the uncore down is this
// curve with offset -2.
func FollowCore(offset int64) Curve {
	return func(core uint64) uint64 {
		t := int64(core) + offset
		if t < 0 {
			return 0
		}
		return uint64(t)
	}
}

// Step returns a curve that requests hi while the core ratio is at least
// threshold and lo below it: the observed cliff for the CUDA busy-wait
// and GROMACS cases, where a small core-frequency reduction flipped the
// heuristic into a much lower uncore target.
func Step(threshold, hi, lo uint64) Curve {
	return func(core uint64) uint64 {
		if core >= threshold {
			return hi
		}
		return lo
	}
}

// Fixed returns a curve pinned to one ratio.
func Fixed(r uint64) Curve { return func(uint64) uint64 { return r } }

// Controller drives one socket's uncore ratio. It owns MSR 0x621
// (UNCORE_PERF_STATUS) and respects MSR 0x620 (UNCORE_RATIO_LIMIT),
// which software (EAR) writes to steer it.
type Controller struct {
	msrs  *msr.File
	curve Curve
	acc   float64 // time accumulated toward the next tick
}

// NewController attaches a controller to a socket's MSR file. The
// controller starts from whatever MSR 0x621 currently holds (the
// simulator boots sockets at the hardware minimum, so the ramp to the
// workload's level is visible in averages, as it is in the paper's
// 2.39-vs-2.40 GHz readings).
func NewController(m *msr.File, curve Curve) (*Controller, error) {
	c := &Controller{}
	if err := c.Init(m, curve); err != nil {
		return nil, err
	}
	return c, nil
}

// Init (re)attaches the controller in place, as NewController does but
// without allocating, for controllers embedded in a larger allocation.
func (c *Controller) Init(m *msr.File, curve Curve) error {
	if m == nil {
		return fmt.Errorf("uncore: nil MSR file")
	}
	if curve == nil {
		return fmt.Errorf("uncore: nil curve")
	}
	c.msrs, c.curve, c.acc = m, curve, 0
	return nil
}

// SetCurve replaces the workload-response curve (used when the simulated
// node switches to a different application phase).
func (c *Controller) SetCurve(curve Curve) error {
	if curve == nil {
		return fmt.Errorf("uncore: nil curve")
	}
	c.curve = curve
	return nil
}

// Advance runs the controller for dt seconds of simulated time with the
// socket's effective core ratio. At each 10 ms tick the current uncore
// ratio moves one step toward the clamped target.
func (c *Controller) Advance(dt float64, coreRatio uint64) error {
	if dt < 0 {
		return fmt.Errorf("uncore: negative time step %g", dt)
	}
	c.acc += dt
	// The epsilon absorbs float accumulation error so that e.g. five
	// 10 ms advances yield exactly five ticks.
	const eps = 1e-9
	for c.acc >= TickSeconds-eps {
		c.acc -= TickSeconds
		if err := c.tick(coreRatio); err != nil {
			return err
		}
	}
	return nil
}

// step computes one control decision: the current operating ratio and
// the ratio the next tick moves to (equal when the controller is
// settled at its clamped target).
func (c *Controller) step(coreRatio uint64) (cur, next uint64, err error) {
	limV, err := c.msrs.Read(msr.MSRUncoreRatioLimit)
	if err != nil {
		return 0, 0, err
	}
	lim := msr.DecodeUncoreRatioLimit(limV)

	target := c.curve(coreRatio)

	// ENERGY_PERF_BIAS: a powersave hint lowers the target one step, a
	// performance hint raises it one.
	if epb, err := c.msrs.Read(msr.IA32EnergyPerfBias); err == nil {
		switch {
		case epb >= 9 && target > 0:
			target--
		case epb <= 3:
			target++
		}
	}

	if target > lim.MaxRatio {
		target = lim.MaxRatio
	}
	if target < lim.MinRatio {
		target = lim.MinRatio
	}

	curV, err := c.msrs.Read(msr.MSRUncorePerfStatus)
	if err != nil {
		return 0, 0, err
	}
	cur = msr.DecodeUncorePerfStatus(curV)
	next = cur

	// Re-clamp the operating point immediately if software narrowed the
	// window under it: the silicon honours 0x620 on the next tick.
	switch {
	case next > lim.MaxRatio:
		next = lim.MaxRatio
	case next < lim.MinRatio:
		next = lim.MinRatio
	case next < target:
		next++
	case next > target:
		next--
	}
	return cur, next, nil
}

// tick performs one control step.
func (c *Controller) tick(coreRatio uint64) error {
	cur, next, err := c.step(coreRatio)
	if err != nil {
		return err
	}
	if next == cur {
		// Settled at the (clamped) target: nothing to publish. This is
		// the steady state the controller spends almost all its ticks
		// in, so skipping the register write keeps the per-step cost at
		// three atomic loads.
		return nil
	}
	return c.msrs.WriteHw(msr.MSRUncorePerfStatus, msr.EncodeUncorePerfStatus(next))
}

// TickAccum returns the time accumulated toward the controller's next
// tick. Together with SetTickAccum it lets a batch stepping kernel lift
// the controller's only mutable non-MSR state into a dense array while
// the controller is settled (ticks are then pure no-ops) and restore it
// unchanged afterwards.
func (c *Controller) TickAccum() float64 { return c.acc }

// SetTickAccum restores an accumulator lifted with TickAccum (or
// advanced externally with SettleAccum).
func (c *Controller) SetTickAccum(v float64) { c.acc = v }

// SettleAccum advances a lifted tick accumulator by dt using exactly
// Advance's arithmetic, draining whole ticks without performing them.
// It is only correct while the controller is settled (a tick neither
// reads changing state nor writes anything), which is the condition
// batch kernels arm under.
func SettleAccum(acc, dt float64) float64 {
	acc += dt
	const eps = 1e-9
	for acc >= TickSeconds-eps {
		acc -= TickSeconds
	}
	return acc
}

// Settled reports whether a tick at the given effective core ratio
// would leave the operating ratio where it is — i.e. the control loop
// has converged under the current limits. The simulator's macro-step
// fast-forward requires this: while the controller is still ramping,
// per-tick stepping is what produces the ramp.
func (c *Controller) Settled(coreRatio uint64) (bool, error) {
	cur, next, err := c.step(coreRatio)
	if err != nil {
		return false, err
	}
	return next == cur, nil
}

// Current returns the operating uncore ratio.
func (c *Controller) Current() (uint64, error) {
	v, err := c.msrs.Read(msr.MSRUncorePerfStatus)
	if err != nil {
		return 0, err
	}
	return msr.DecodeUncorePerfStatus(v), nil
}
