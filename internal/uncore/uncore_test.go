package uncore

import (
	"testing"
	"testing/quick"

	"goear/internal/cpu"
	"goear/internal/msr"
)

func newSocket(t *testing.T) *cpu.Socket {
	t.Helper()
	s, err := cpu.NewSocket(cpu.XeonGold6148(), 0)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestNewControllerErrors(t *testing.T) {
	if _, err := NewController(nil, AlwaysMax(24)); err == nil {
		t.Error("expected error for nil MSR file")
	}
	s := newSocket(t)
	if _, err := NewController(s.MSR, nil); err == nil {
		t.Error("expected error for nil curve")
	}
	c, err := NewController(s.MSR, AlwaysMax(24))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SetCurve(nil); err == nil {
		t.Error("expected error for nil curve in SetCurve")
	}
	if err := c.Advance(-0.1, 24); err == nil {
		t.Error("expected error for negative dt")
	}
}

func TestRampUpToMax(t *testing.T) {
	s := newSocket(t)
	c, err := NewController(s.MSR, AlwaysMax(24))
	if err != nil {
		t.Fatal(err)
	}
	// Boot value is the hardware minimum (12). After 12 ticks the
	// controller must reach 24, one step per 10 ms.
	if cur, _ := c.Current(); cur != 12 {
		t.Fatalf("boot ratio = %d, want 12", cur)
	}
	if err := c.Advance(0.05, 24); err != nil { // 5 ticks
		t.Fatal(err)
	}
	if cur, _ := c.Current(); cur != 17 {
		t.Errorf("after 50ms ratio = %d, want 17 (one step per tick)", cur)
	}
	if err := c.Advance(0.2, 24); err != nil {
		t.Fatal(err)
	}
	if cur, _ := c.Current(); cur != 24 {
		t.Errorf("steady ratio = %d, want 24", cur)
	}
	// Stays there.
	if err := c.Advance(1.0, 24); err != nil {
		t.Fatal(err)
	}
	if cur, _ := c.Current(); cur != 24 {
		t.Errorf("ratio drifted to %d", cur)
	}
}

func TestSubTickAccumulation(t *testing.T) {
	s := newSocket(t)
	c, _ := NewController(s.MSR, AlwaysMax(24))
	// 4 advances of 3ms = 12ms: exactly one tick.
	for i := 0; i < 4; i++ {
		if err := c.Advance(0.003, 24); err != nil {
			t.Fatal(err)
		}
	}
	if cur, _ := c.Current(); cur != 13 {
		t.Errorf("after 12ms ratio = %d, want 13", cur)
	}
}

func TestRespectsSoftwareLimits(t *testing.T) {
	s := newSocket(t)
	c, _ := NewController(s.MSR, AlwaysMax(24))
	if err := c.Advance(0.5, 24); err != nil { // settle at 24
		t.Fatal(err)
	}
	// EAR narrows the window: max 18.
	if err := s.SetUncoreLimits(12, 18); err != nil {
		t.Fatal(err)
	}
	if err := c.Advance(0.02, 24); err != nil { // one tick is enough
		t.Fatal(err)
	}
	cur, _ := c.Current()
	if cur > 18 {
		t.Errorf("controller above software max: %d", cur)
	}
	// Pinning min=max forces the exact ratio.
	if err := s.SetUncoreLimits(15, 15); err != nil {
		t.Fatal(err)
	}
	if err := c.Advance(0.05, 24); err != nil {
		t.Fatal(err)
	}
	if cur, _ := c.Current(); cur != 15 {
		t.Errorf("pinned ratio = %d, want 15", cur)
	}
}

func TestNeverLeavesLimitsProperty(t *testing.T) {
	s := newSocket(t)
	c, _ := NewController(s.MSR, FollowCore(0))
	fn := func(minR, maxR, core uint8, epb uint8) bool {
		lo, hi := uint64(minR%13)+12, uint64(maxR%13)+12
		if lo > hi {
			lo, hi = hi, lo
		}
		if err := s.SetUncoreLimits(lo, hi); err != nil {
			return false
		}
		if err := s.MSR.Write(msr.IA32EnergyPerfBias, uint64(epb%16)); err != nil {
			return false
		}
		if err := c.Advance(0.1, uint64(core%20)+10); err != nil {
			return false
		}
		cur, err := c.Current()
		if err != nil {
			return false
		}
		return cur >= lo && cur <= hi
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Error(err)
	}
}

func TestFollowCoreCurve(t *testing.T) {
	if FollowCore(0)(22) != 22 {
		t.Error("FollowCore(0) must track the core ratio")
	}
	if FollowCore(-2)(22) != 20 {
		t.Error("FollowCore(-2)(22) != 20")
	}
	if FollowCore(-30)(22) != 0 {
		t.Error("FollowCore must clamp below zero")
	}
	if FollowCore(3)(22) != 25 {
		t.Error("FollowCore(+3)(22) != 25")
	}
}

func TestStepCurve(t *testing.T) {
	cv := Step(24, 24, 15)
	if cv(26) != 24 || cv(24) != 24 {
		t.Error("Step above threshold must return hi")
	}
	if cv(23) != 15 {
		t.Error("Step below threshold must return lo")
	}
}

func TestFixedCurve(t *testing.T) {
	if Fixed(20)(5) != 20 || Fixed(20)(30) != 20 {
		t.Error("Fixed curve must ignore core ratio")
	}
}

func TestEPBBias(t *testing.T) {
	// Powersave EPB ends one step below the curve target; performance
	// EPB one above (within limits).
	s := newSocket(t)
	c, _ := NewController(s.MSR, Fixed(20))
	if err := s.MSR.Write(msr.IA32EnergyPerfBias, 15); err != nil {
		t.Fatal(err)
	}
	if err := c.Advance(0.5, 24); err != nil {
		t.Fatal(err)
	}
	if cur, _ := c.Current(); cur != 19 {
		t.Errorf("powersave EPB: ratio = %d, want 19", cur)
	}
	if err := s.MSR.Write(msr.IA32EnergyPerfBias, 0); err != nil {
		t.Fatal(err)
	}
	if err := c.Advance(0.5, 24); err != nil {
		t.Fatal(err)
	}
	if cur, _ := c.Current(); cur != 21 {
		t.Errorf("performance EPB: ratio = %d, want 21", cur)
	}
}

func TestCurveSwitchOnPhaseChange(t *testing.T) {
	s := newSocket(t)
	c, _ := NewController(s.MSR, AlwaysMax(24))
	if err := c.Advance(0.5, 24); err != nil {
		t.Fatal(err)
	}
	if err := c.SetCurve(Fixed(14)); err != nil {
		t.Fatal(err)
	}
	if err := c.Advance(0.5, 24); err != nil {
		t.Fatal(err)
	}
	if cur, _ := c.Current(); cur != 14 {
		t.Errorf("after phase change ratio = %d, want 14", cur)
	}
}
