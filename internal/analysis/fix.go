package analysis

import (
	"fmt"
	"go/format"
	"os"
	"sort"
	"strings"
	"unicode/utf8"
)

// TextEdit replaces the bytes [Start, End) of File with NewText. A
// zero-width range (Start == End) is an insertion. Offsets are byte
// offsets into the file as it was loaded; edits are resolved against
// the file contents by the applier, never against positions that may
// have shifted.
type TextEdit struct {
	File    string `json:"file"`
	Start   int    `json:"start"`
	End     int    `json:"end"`
	NewText string `json:"new_text"`
}

// SuggestedFix is an optional repair attached to a Diagnostic: a
// human-readable description plus the ordered byte-range edits that
// implement it. A fix is atomic — it is applied whole or not at all.
type SuggestedFix struct {
	Message string     `json:"message"`
	Edits   []TextEdit `json:"edits"`
}

// ApplyEdits returns src with the edits applied. Edits are sorted by
// start offset (stable, so same-point insertions keep their given
// order); overlapping edits or ranges outside src are errors. The
// result is exact byte splicing — no formatting happens here.
func ApplyEdits(src []byte, edits []TextEdit) ([]byte, error) {
	if len(edits) == 0 {
		return append([]byte(nil), src...), nil
	}
	sorted := append([]TextEdit(nil), edits...)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].Start != sorted[j].Start {
			return sorted[i].Start < sorted[j].Start
		}
		return sorted[i].End < sorted[j].End
	})
	for i, e := range sorted {
		if e.Start < 0 || e.End < e.Start || e.End > len(src) {
			return nil, fmt.Errorf("analysis: edit range [%d,%d) outside source of %d bytes", e.Start, e.End, len(src))
		}
		// Token offsets always sit on rune boundaries; an edit that
		// would split a multi-byte rune can only come from a corrupt
		// fix and would splice valid UTF-8 into garbage.
		if midRune(src, e.Start) || midRune(src, e.End) {
			return nil, fmt.Errorf("analysis: edit range [%d,%d) splits a UTF-8 rune", e.Start, e.End)
		}
		if i > 0 && sorted[i-1].End > e.Start {
			return nil, fmt.Errorf("analysis: overlapping edits at [%d,%d) and [%d,%d)",
				sorted[i-1].Start, sorted[i-1].End, e.Start, e.End)
		}
	}
	var out []byte
	last := 0
	for _, e := range sorted {
		out = append(out, src[last:e.Start]...)
		out = append(out, e.NewText...)
		last = e.End
	}
	out = append(out, src[last:]...)
	return out, nil
}

// FileFix is one file's planned repair: the original and fixed
// contents plus which diagnostics' fixes made it in and which were
// skipped because their edits conflicted with an earlier fix.
type FileFix struct {
	Path    string
	Orig    []byte
	Fixed   []byte
	Applied []Diagnostic
	Skipped []Diagnostic
}

// Changed reports whether the fix actually alters the file.
func (f *FileFix) Changed() bool { return string(f.Orig) != string(f.Fixed) }

// PlanFixes resolves the suggested fixes of diags against file
// contents. Diagnostics are taken in the order given (Run returns them
// position-sorted); a fix whose edits overlap an already-accepted edit
// is skipped whole and recorded on the file's Skipped list. Each
// touched file's result is gofmt-ed, so applying a plan never leaves
// unformatted code behind. readFile defaults to os.ReadFile. Results
// are sorted by path; files whose fixes were all skipped are included
// so callers can report them.
func PlanFixes(diags []Diagnostic, readFile func(string) ([]byte, error)) ([]*FileFix, error) {
	if readFile == nil {
		readFile = os.ReadFile
	}
	files := map[string]*FileFix{}
	accepted := map[string][]TextEdit{}
	load := func(path string) (*FileFix, error) {
		if f, ok := files[path]; ok {
			return f, nil
		}
		src, err := readFile(path)
		if err != nil {
			return nil, fmt.Errorf("analysis: plan fixes: %w", err)
		}
		f := &FileFix{Path: path, Orig: src}
		files[path] = f
		return f, nil
	}
	for _, d := range diags {
		if d.Fix == nil || len(d.Fix.Edits) == 0 {
			continue
		}
		conflict := false
		for _, e := range d.Fix.Edits {
			f, err := load(e.File)
			if err != nil {
				return nil, err
			}
			if e.Start < 0 || e.End < e.Start || e.End > len(f.Orig) {
				return nil, fmt.Errorf("analysis: %s: fix edit range [%d,%d) outside %s (%d bytes)",
					d.Analyzer, e.Start, e.End, e.File, len(f.Orig))
			}
			for _, a := range accepted[e.File] {
				if a.End > e.Start && e.End > a.Start {
					conflict = true
				}
			}
		}
		// The diagnostic's own file hosts the skip/apply record even when
		// the edits land elsewhere.
		host, err := load(d.Fix.Edits[0].File)
		if err != nil {
			return nil, err
		}
		if conflict {
			host.Skipped = append(host.Skipped, d)
			continue
		}
		for _, e := range d.Fix.Edits {
			accepted[e.File] = append(accepted[e.File], e)
		}
		host.Applied = append(host.Applied, d)
	}
	out := make([]*FileFix, 0, len(files))
	for path, f := range files {
		fixed, err := ApplyEdits(f.Orig, accepted[path])
		if err != nil {
			return nil, fmt.Errorf("analysis: %s: %w", path, err)
		}
		formatted, err := format.Source(fixed)
		if err != nil {
			return nil, fmt.Errorf("analysis: fixed %s does not parse (analyzer bug): %w", path, err)
		}
		f.Fixed = formatted
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// WriteFixes writes every changed file of the plan in place.
func WriteFixes(plan []*FileFix) error {
	for _, f := range plan {
		if !f.Changed() {
			continue
		}
		info, err := os.Stat(f.Path)
		mode := os.FileMode(0o644)
		if err == nil {
			mode = info.Mode().Perm()
		}
		if err := os.WriteFile(f.Path, f.Fixed, mode); err != nil {
			return fmt.Errorf("analysis: write fixes: %w", err)
		}
	}
	return nil
}

// UnifiedDiff renders a minimal unified diff between a and b, labeled
// a/name and b/name. Identical contents yield the empty string. The
// diff carries a single hunk: the changed middle after trimming the
// common prefix and suffix, framed by up to three context lines — not
// a minimal edit script, but a valid patch and an honest dry-run
// rendering.
func UnifiedDiff(name string, a, b []byte) string {
	if string(a) == string(b) {
		return ""
	}
	al := splitLines(a)
	bl := splitLines(b)
	pre := 0
	for pre < len(al) && pre < len(bl) && al[pre] == bl[pre] {
		pre++
	}
	suf := 0
	for suf < len(al)-pre && suf < len(bl)-pre && al[len(al)-1-suf] == bl[len(bl)-1-suf] {
		suf++
	}
	ctxBefore := min(3, pre)
	ctxAfter := min(3, suf)

	var body strings.Builder
	for _, l := range al[pre-ctxBefore : pre] {
		body.WriteString(" " + l)
	}
	for _, l := range al[pre : len(al)-suf] {
		body.WriteString("-" + l)
	}
	for _, l := range bl[pre : len(bl)-suf] {
		body.WriteString("+" + l)
	}
	for _, l := range al[len(al)-suf : len(al)-suf+ctxAfter] {
		body.WriteString(" " + l)
	}

	aStart := pre - ctxBefore + 1
	aCount := ctxBefore + (len(al) - suf - pre) + ctxAfter
	bCount := ctxBefore + (len(bl) - suf - pre) + ctxAfter
	if aCount == 0 {
		aStart--
	}
	return fmt.Sprintf("--- a/%s\n+++ b/%s\n@@ -%d,%d +%d,%d @@\n%s",
		name, name, aStart, aCount, aStart, bCount, body.String())
}

// splitLines splits into newline-terminated lines; a final line
// without a trailing newline is marked so the diff stays textual.
func splitLines(b []byte) []string {
	if len(b) == 0 {
		return nil
	}
	s := string(b)
	lines := strings.SplitAfter(s, "\n")
	if lines[len(lines)-1] == "" {
		lines = lines[:len(lines)-1]
	} else {
		lines[len(lines)-1] += "\n\\ No newline at end of file\n"
	}
	return lines
}

// midRune reports whether offset lands on a UTF-8 continuation byte —
// inside a multi-byte rune rather than on a boundary.
func midRune(src []byte, off int) bool {
	return off > 0 && off < len(src) && !utf8.RuneStart(src[off])
}

// ValidUTF8 reports whether b is valid UTF-8 — the invariant the fix
// applier's fuzz target pins (source files in, source files out).
func ValidUTF8(b []byte) bool { return utf8.Valid(b) }
