package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	// Path is the import path the package was registered under.
	Path string
	// Dir is the directory its files were read from.
	Dir  string
	Fset *token.FileSet
	// Files are the parsed non-test files, sorted by file name.
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader resolves and type-checks packages of one module plus any
// extra directories (used for analyzer test fixtures), using only the
// standard library: module-internal imports are resolved against the
// registered directories, everything else falls back to the source
// importer, which type-checks the standard library from GOROOT/src.
type Loader struct {
	fset    *token.FileSet
	std     types.ImporterFrom
	dirs    map[string]string // import path -> directory
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader returns an empty loader.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	l := &Loader{
		fset:    fset,
		dirs:    map[string]string{},
		pkgs:    map[string]*Package{},
		loading: map[string]bool{},
	}
	l.std = importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	return l
}

// Fset exposes the loader's file set (shared with the standard
// library importer so all positions agree).
func (l *Loader) Fset() *token.FileSet { return l.fset }

// AddModule reads root/go.mod for the module path and registers every
// package directory under root. Directories named testdata, hidden
// directories, and directories without non-test .go files are
// skipped. It returns the module path.
func (l *Loader) AddModule(root string) (string, error) {
	modPath, err := moduleName(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", err
	}
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
			return filepath.SkipDir
		}
		if !hasGoFiles(path) {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		imp := modPath
		if rel != "." {
			imp = modPath + "/" + filepath.ToSlash(rel)
		}
		l.dirs[imp] = path
		return nil
	})
	if err != nil {
		return "", fmt.Errorf("analysis: walk module %s: %w", root, err)
	}
	return modPath, nil
}

// AddDir registers a single directory under an explicit import path
// (used to give test fixtures scoped paths such as
// "fix/determinism/internal/sim").
func (l *Loader) AddDir(importPath, dir string) {
	l.dirs[importPath] = dir
}

// Paths returns every registered import path, sorted.
func (l *Loader) Paths() []string {
	out := make([]string, 0, len(l.dirs))
	for p := range l.dirs {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Load parses and type-checks the package registered under the import
// path (cached after the first call).
func (l *Loader) Load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	dir, ok := l.dirs[path]
	if !ok {
		return nil, fmt.Errorf("analysis: package %s is not registered", path)
	}
	if l.loading[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no non-test Go files in %s", dir)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: (*loaderImporter)(l)}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-check %s: %w", path, err)
	}
	pkg := &Package{
		Path:  path,
		Dir:   dir,
		Fset:  l.fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}
	l.pkgs[path] = pkg
	return pkg, nil
}

// LoadAll loads the given import paths (all registered paths when
// patterns is empty) in sorted order.
func (l *Loader) LoadAll(paths []string) ([]*Package, error) {
	if len(paths) == 0 {
		paths = l.Paths()
	}
	out := make([]*Package, 0, len(paths))
	for _, p := range paths {
		pkg, err := l.Load(p)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// parseDir parses every non-test .go file of dir, sorted by name.
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: read %s: %w", dir, err)
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	files := make([]*ast.File, 0, len(names))
	for _, n := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: parse: %w", err)
		}
		files = append(files, f)
	}
	return files, nil
}

// loaderImporter adapts the Loader to types.Importer: module packages
// resolve through the loader itself, everything else through the
// source importer.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(li)
	if _, ok := l.dirs[path]; ok {
		pkg, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.std.Import(path)
}

// moduleName extracts the module path from a go.mod file.
func moduleName(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("analysis: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			name := strings.TrimSpace(rest)
			name = strings.Trim(name, `"`)
			if name != "" {
				return name, nil
			}
		}
	}
	return "", fmt.Errorf("analysis: no module line in %s", gomod)
}

// hasGoFiles reports whether dir directly contains a non-test .go
// file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		n := e.Name()
		if !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
			return true
		}
	}
	return false
}
