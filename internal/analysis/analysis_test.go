package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestPathMatches(t *testing.T) {
	cases := []struct {
		path, pattern string
		want          bool
	}{
		{"goear/internal/sim", "internal/sim", true},
		{"goear/internal/sim", "sim", true},
		{"goear/internal/sim", "goear/internal/sim", true},
		{"goear/internal/sim", "internal", true},
		{"goear/internal/simx", "internal/sim", false},
		{"goear/internal/sim", "internal/simx", false},
		{"goear/internal/sim", "al/sim", false},
		{"fix/internal/sim", "internal/sim", true},
		{"goear/internal/experiments", "internal/sim", false},
		{"goear", "internal", false},
		{"goear/internal/sim", "", false},
		{"goear/internal/units", "internal/units", true},
	}
	for _, c := range cases {
		if got := PathMatches(c.path, c.pattern); got != c.want {
			t.Errorf("PathMatches(%q, %q) = %v, want %v", c.path, c.pattern, got, c.want)
		}
	}
}

func TestAnalyzerAppliesTo(t *testing.T) {
	a := &Analyzer{Name: "x", Scope: []string{"internal/sim", "internal/policy"}}
	if !a.AppliesTo("goear/internal/sim") || a.AppliesTo("goear/internal/msr") {
		t.Error("scope matching is wrong")
	}
	unscoped := &Analyzer{Name: "y"}
	if !unscoped.AppliesTo("anything/at/all") {
		t.Error("empty scope must match every package")
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Analyzer: "determinism", File: "a/b.go", Line: 3, Col: 7, Message: "no"}
	if got := d.String(); got != "a/b.go:3:7: no (determinism)" {
		t.Errorf("String() = %q", got)
	}
}

// parseOne parses a single source string for directive tests.
func parseOne(t *testing.T, src string) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return fset, []*ast.File{f}
}

func TestIgnoreDirectives(t *testing.T) {
	src := `package p

func a() int {
	return 1 //goearvet:ignore reasoned trailing directive
}

func b() int {
	//goearvet:ignore own-line directive covers the next line
	return 2
}

func c() int {
	return 3 //goearvet:ignore
}
`
	fset, files := parseOne(t, src)
	ign := collectIgnores(fset, files)

	if len(ign.malformed) != 1 {
		t.Fatalf("malformed directives = %d, want 1", len(ign.malformed))
	}
	if m := ign.malformed[0]; m.Analyzer != "ignore" || !strings.Contains(m.Message, "needs a reason") {
		t.Errorf("malformed diagnostic = %+v", m)
	}

	suppressedLines := []int{4, 8, 9}
	for _, line := range suppressedLines {
		if !ign.suppressed(Diagnostic{File: "fixture.go", Line: line}) {
			t.Errorf("line %d should be suppressed", line)
		}
	}
	// The reasonless directive on line 13/14 suppresses nothing.
	for _, line := range []int{13, 14} {
		if ign.suppressed(Diagnostic{File: "fixture.go", Line: line}) {
			t.Errorf("line %d must not be suppressed by a reasonless directive", line)
		}
	}
}

// TestRunSuppressionAndSorting drives Run end-to-end with a synthetic
// analyzer over a real loaded package.
func TestRunSuppressionAndSorting(t *testing.T) {
	dir := t.TempDir()
	src := `package p

func f() int {
	return 1
}

func g() int {
	return 2 //goearvet:ignore synthetic finding is expected here
}
`
	if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	l := NewLoader()
	l.AddDir("fix/p", dir)
	pkg, err := l.Load("fix/p")
	if err != nil {
		t.Fatal(err)
	}

	reportReturns := &Analyzer{
		Name: "returns",
		Doc:  "flags every return statement",
		Run: func(pass *Pass) error {
			for _, f := range pass.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					if r, ok := n.(*ast.ReturnStmt); ok {
						pass.Reportf(r.Pos(), "return found")
					}
					return true
				})
			}
			return nil
		},
	}
	diags, err := Run([]*Package{pkg}, []*Analyzer{reportReturns})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("diags = %v, want exactly the unsuppressed return", diags)
	}
	if diags[0].Line != 4 {
		t.Errorf("finding at line %d, want 4", diags[0].Line)
	}

	scoped := &Analyzer{
		Name:  "scoped",
		Doc:   "never runs here",
		Scope: []string{"internal/sim"},
		Run: func(pass *Pass) error {
			t.Error("scoped analyzer ran outside its scope")
			return nil
		},
	}
	if _, err := Run([]*Package{pkg}, []*Analyzer{scoped}); err != nil {
		t.Fatal(err)
	}
}

func TestLoaderModule(t *testing.T) {
	l := NewLoader()
	mod, err := l.AddModule("../..")
	if err != nil {
		t.Fatal(err)
	}
	if mod != "goear" {
		t.Errorf("module path = %q", mod)
	}
	paths := l.Paths()
	wantSome := []string{"goear", "goear/internal/units", "goear/internal/msr", "goear/cmd/goearvet"}
	for _, w := range wantSome {
		found := false
		for _, p := range paths {
			if p == w {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("registered paths are missing %q", w)
		}
	}
	for _, p := range paths {
		if strings.Contains(p, "testdata") {
			t.Errorf("testdata package %q must not be registered", p)
		}
	}

	pkg, err := l.Load("goear/internal/units")
	if err != nil {
		t.Fatal(err)
	}
	if pkg.Types.Scope().Lookup("Freq") == nil {
		t.Error("loaded units package has no Freq type")
	}
	again, err := l.Load("goear/internal/units")
	if err != nil || again != pkg {
		t.Error("Load must cache packages")
	}
}

func TestLoaderUnknownPackage(t *testing.T) {
	l := NewLoader()
	if _, err := l.Load("no/such/pkg"); err == nil {
		t.Error("expected error for unregistered package")
	}
}

func TestModuleNameErrors(t *testing.T) {
	dir := t.TempDir()
	gomod := filepath.Join(dir, "go.mod")
	if _, err := moduleName(gomod); err == nil {
		t.Error("expected error for missing go.mod")
	}
	if err := os.WriteFile(gomod, []byte("go 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := moduleName(gomod); err == nil {
		t.Error("expected error for go.mod without module line")
	}
	if err := os.WriteFile(gomod, []byte("module example/mod\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	name, err := moduleName(gomod)
	if err != nil || name != "example/mod" {
		t.Errorf("moduleName = %q, %v", name, err)
	}
}
