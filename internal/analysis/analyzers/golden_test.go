package analyzers

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"goear/internal/analysis"
)

// -update regenerates the post-fix .golden fixtures from the current
// analyzer output instead of asserting against them.
var updateGolden = flag.Bool("update", false, "rewrite golden post-fix fixtures")

// TestGolden runs every analyzer over its fixture package under
// ../testdata/src and matches the reported diagnostics against the
// // want `regex` expectation comments in the fixture sources. Every
// diagnostic must be wanted on its exact line, and every want must be
// matched.
func TestGolden(t *testing.T) {
	loader := analysis.NewLoader()
	if _, err := loader.AddModule("../../.."); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		analyzer   *analysis.Analyzer
		importPath string
		fixture    string
	}{
		{Determinism, "fix/internal/sim", "../testdata/src/determinism"},
		{UnitSafety, "fix/internal/unitsafety", "../testdata/src/unitsafety"},
		{MSRField, "fix/internal/msr", "../testdata/src/msrfield"},
		{ErrCheck, "fix/internal/errs", "../testdata/src/errcheck"},
		{Concurrency, "fix2/internal/sim", "../testdata/src/concurrency"},
		{Telemetry, "fix/internal/telemetrytest", "../testdata/src/telemetry"},
		{PolicyReg, "fix/internal/policy", "../testdata/src/policyreg"},
		{ConfTag, "fix/internal/earconf", "../testdata/src/conftag"},
		{Fixture, "fix/internal/loadgen", "../testdata/src/fixture"},
	}
	for _, c := range cases {
		loader.AddDir(c.importPath, c.fixture)
	}
	for _, c := range cases {
		t.Run(c.analyzer.Name, func(t *testing.T) {
			pkg, err := loader.Load(c.importPath)
			if err != nil {
				t.Fatal(err)
			}
			diags, err := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{c.analyzer})
			if err != nil {
				t.Fatal(err)
			}
			checkWants(t, pkg, diags)
		})
	}
}

// want expectations look like:
//
//	expr // want `regexp` `another regexp`
//
// with each backquoted (or double-quoted) pattern expecting one
// diagnostic on that line.
var wantRx = regexp.MustCompile("//\\s*want\\s+((?:(?:`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\")\\s*)+)")

var wantArgRx = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

type wantExpectation struct {
	rx      *regexp.Regexp
	matched bool
}

// collectWants parses the expectation comments of the fixture files.
func collectWants(t *testing.T, pkg *analysis.Package) map[string][]*wantExpectation {
	t.Helper()
	wants := map[string][]*wantExpectation{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRx.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Slash)
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, arg := range wantArgRx.FindAllString(m[1], -1) {
					var pattern string
					if strings.HasPrefix(arg, "`") {
						pattern = strings.Trim(arg, "`")
					} else {
						var err error
						pattern, err = strconv.Unquote(arg)
						if err != nil {
							t.Fatalf("%s: bad want pattern %s: %v", key, arg, err)
						}
					}
					rx, err := regexp.Compile(pattern)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", key, pattern, err)
					}
					wants[key] = append(wants[key], &wantExpectation{rx: rx})
				}
			}
		}
	}
	return wants
}

// checkWants matches diagnostics against expectations one-to-one.
func checkWants(t *testing.T, pkg *analysis.Package, diags []analysis.Diagnostic) {
	t.Helper()
	wants := collectWants(t, pkg)
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.File, d.Line)
		found := false
		for _, w := range wants[key] {
			if !w.matched && w.rx.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.matched {
				t.Errorf("%s: expected diagnostic matching %q, got none", key, w.rx)
			}
		}
	}
}

// TestFixtureCount guards against fixtures silently losing their
// teeth: each fixture package must keep producing findings.
func TestFixtureCount(t *testing.T) {
	loader := analysis.NewLoader()
	if _, err := loader.AddModule("../../.."); err != nil {
		t.Fatal(err)
	}
	loader.AddDir("fix/internal/sim", "../testdata/src/determinism")
	pkg, err := loader.Load("fix/internal/sim")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{Determinism})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) < 5 {
		t.Errorf("determinism fixture produced %d diagnostics, want >= 5", len(diags))
	}
	for _, d := range diags {
		if d.Analyzer != "determinism" {
			t.Errorf("unexpected analyzer %q in %s", d.Analyzer, d)
		}
	}
}

// TestAllRegistry pins the suite composition.
func TestAllRegistry(t *testing.T) {
	names := map[string]bool{}
	for _, a := range All() {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %+v is missing metadata", a)
		}
		if names[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		names[a.Name] = true
	}
	for _, want := range []string{
		"concurrency", "conftag", "determinism", "errcheck", "fixture",
		"msrfield", "policyreg", "telemetry", "unitsafety",
	} {
		if !names[want] {
			t.Errorf("suite is missing analyzer %q", want)
		}
	}
	all := All()
	for i := 1; i < len(all); i++ {
		if all[i-1].Name >= all[i].Name {
			t.Errorf("All() is not sorted by name: %q before %q", all[i-1].Name, all[i].Name)
		}
	}
}

// TestGoldenFix applies every suggested fix an analyzer emits over its
// fixture package and asserts the repaired fixture.go matches the
// committed fixture.go.golden byte for byte. Run with -update to
// regenerate the goldens after changing a fix.
func TestGoldenFix(t *testing.T) {
	loader := analysis.NewLoader()
	if _, err := loader.AddModule("../../.."); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		analyzer   *analysis.Analyzer
		importPath string
		fixture    string
	}{
		{Determinism, "fix/internal/sim", "../testdata/src/determinism"},
		{PolicyReg, "fix/internal/policy", "../testdata/src/policyreg"},
		{ConfTag, "fix/internal/earconf", "../testdata/src/conftag"},
		{Fixture, "fix/internal/loadgen", "../testdata/src/fixture"},
	}
	for _, c := range cases {
		loader.AddDir(c.importPath, c.fixture)
	}
	for _, c := range cases {
		t.Run(c.analyzer.Name, func(t *testing.T) {
			pkg, err := loader.Load(c.importPath)
			if err != nil {
				t.Fatal(err)
			}
			diags, err := analysis.Run([]*analysis.Package{pkg}, []*analysis.Analyzer{c.analyzer})
			if err != nil {
				t.Fatal(err)
			}
			plan, err := analysis.PlanFixes(diags, nil)
			if err != nil {
				t.Fatal(err)
			}
			var fixed []byte
			for _, f := range plan {
				if filepath.Base(f.Path) == "fixture.go" {
					if len(f.Skipped) > 0 {
						t.Errorf("%d fixes skipped as conflicting in %s", len(f.Skipped), f.Path)
					}
					fixed = f.Fixed
				}
			}
			if fixed == nil {
				t.Fatal("no fix plan touched fixture.go; every fix-capable analyzer fixture must exercise at least one fix")
			}
			golden := filepath.Join(c.fixture, "fixture.go.golden")
			if *updateGolden {
				if err := os.WriteFile(golden, fixed, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatal(err)
			}
			if string(fixed) != string(want) {
				t.Errorf("post-fix fixture diverges from golden:\n%s",
					analysis.UnifiedDiff(golden, want, fixed))
			}
		})
	}
}
