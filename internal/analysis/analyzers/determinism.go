package analyzers

import (
	"go/ast"
	"go/types"
	"strings"

	"goear/internal/analysis"
)

// Determinism rejects sources of run-to-run variation in the
// simulation, experiment, policy, wire and eardbd packages. The whole
// experiment engine promises byte-identical output across worker
// counts and reruns (CI diffs `benchtables -parallel 1` against
// `-parallel 8`), which only holds if these packages never consult
// the wall clock, never draw from the globally seeded math/rand
// generators, and never emit ordered output straight out of a map
// iteration. The report-aggregation tier is held to the same bar so
// closed-loop tests stay reproducible: its client takes an injected
// Clock and an explicitly seeded jitter generator instead.
var Determinism = &analysis.Analyzer{
	Name: "determinism",
	Doc: "forbid wall-clock reads (time.Now/Since/Until), global math/rand draws, " +
		"and output or slice building in bare map-iteration order inside " +
		"internal/sim, internal/experiments, internal/policy, " +
		"internal/wire and internal/eardbd; " +
		"explicitly seeded *rand.Rand generators remain allowed",
	Scope: []string{"internal/sim", "internal/experiments", "internal/policy",
		"internal/wire", "internal/eardbd"},
	Run: runDeterminism,
}

// seededConstructors are the math/rand package functions that build
// explicitly seeded generators — the allowed path to randomness.
var seededConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
	"NewZipf":    true, // takes a *Rand, draws nothing itself
}

func runDeterminism(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			switch n := n.(type) {
			case *ast.CallExpr:
				checkDeterministicCall(pass, n)
			case *ast.RangeStmt:
				checkMapRangeOutput(pass, n, enclosingFuncBody(stack))
			}
			return true
		})
	}
	return nil
}

// enclosingFuncBody returns the body of the innermost function on the
// traversal stack, or nil at package level.
func enclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			return fn.Body
		case *ast.FuncLit:
			return fn.Body
		}
	}
	return nil
}

func checkDeterministicCall(pass *analysis.Pass, call *ast.CallExpr) {
	pkg, fn, ok := calleePkgFunc(pass.Info, call)
	if !ok {
		return
	}
	switch pkg {
	case "time":
		switch fn {
		case "Now", "Since", "Until":
			pass.Reportf(call.Pos(), "time.%s reads the wall clock; simulated time must come from the run's own clock", fn)
		}
	case "math/rand", "math/rand/v2":
		if !seededConstructors[fn] {
			pass.Reportf(call.Pos(), "%s.%s draws from the shared global generator; use an explicitly seeded *rand.Rand", pkg, fn)
		}
	}
}

// checkMapRangeOutput flags `for ... := range m` over a map whose body
// appends to a slice or writes formatted output: both turn Go's
// randomized map order into visible nondeterminism. Iterations that
// only aggregate (sum, count, rebuild another map) are order-neutral
// and stay legal, as is the collect-then-sort idiom — an appended
// slice that is sorted later in the same function.
func checkMapRangeOutput(pass *analysis.Pass, rng *ast.RangeStmt, fnBody *ast.BlockStmt) {
	t := pass.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	var culprit string
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if culprit != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := stripParens(call.Fun).(*ast.Ident); ok && id.Name == "append" {
			if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
				if sortedLater(pass, call, rng, fnBody) {
					return true
				}
				culprit = "appends to a slice"
				return false
			}
		}
		if pkg, fn, ok := calleePkgFunc(pass.Info, call); ok && pkg == "fmt" {
			switch fn {
			case "Print", "Println", "Printf", "Fprint", "Fprintln", "Fprintf":
				culprit = "writes output via fmt." + fn
				return false
			}
		}
		if sel, ok := stripParens(call.Fun).(*ast.SelectorExpr); ok {
			switch sel.Sel.Name {
			case "Write", "WriteString", "WriteByte", "WriteRune", "Printf", "Print", "Println":
				if _, isMethod := pass.Info.Selections[sel]; isMethod {
					culprit = "writes output via " + sel.Sel.Name
					return false
				}
			}
		}
		return true
	})
	if culprit != "" {
		pass.Reportf(rng.Pos(), "map iteration order is randomized but this loop %s; collect the keys, sort them, and range over the slice", culprit)
	}
}

// sortedLater reports whether the slice receiving the append is passed
// to a sorting function after the range loop in the same function —
// the collect-then-sort idiom, which is deterministic.
func sortedLater(pass *analysis.Pass, appendCall *ast.CallExpr, rng *ast.RangeStmt, fnBody *ast.BlockStmt) bool {
	if fnBody == nil || len(appendCall.Args) == 0 {
		return false
	}
	target, ok := stripParens(appendCall.Args[0]).(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.Info.Uses[target]
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() || len(call.Args) == 0 {
			return true
		}
		pkg, fn, ok := calleePkgFunc(pass.Info, call)
		if !ok {
			return true
		}
		isSort := (pkg == "sort" || pkg == "slices") &&
			(strings.HasPrefix(fn, "Sort") || fn == "Strings" || fn == "Ints" || fn == "Float64s" || fn == "Stable")
		if !isSort {
			return true
		}
		if id, ok := stripParens(call.Args[0]).(*ast.Ident); ok && pass.Info.Uses[id] == obj {
			found = true
			return false
		}
		return true
	})
	return found
}
