package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"goear/internal/analysis"
)

// Determinism rejects sources of run-to-run variation in the
// simulation, experiment, policy, wire, eardbd and loadgen packages
// — including the struct-of-arrays batch stepping kernels, whose
// fast-path replay must stay a pure function of the seed. The whole
// experiment engine promises byte-identical output across worker
// counts and reruns (CI diffs `benchtables -parallel 1` against
// `-parallel 8`), which only holds if these packages never consult
// the wall clock, never draw from the globally seeded math/rand
// generators, and never emit ordered output straight out of a map
// iteration. The report-aggregation tier is held to the same bar so
// closed-loop tests stay reproducible: its client takes an injected
// Clock and an explicitly seeded jitter generator instead.
var Determinism = &analysis.Analyzer{
	Name: "determinism",
	Doc: "forbid wall-clock reads (time.Now/Since/Until), global math/rand draws, " +
		"and output or slice building in bare map-iteration order inside " +
		"internal/sim, internal/experiments, internal/policy, " +
		"internal/wire, internal/eardbd and internal/loadgen; " +
		"explicitly seeded *rand.Rand generators remain allowed",
	Scope: []string{"internal/sim", "internal/experiments", "internal/policy",
		"internal/wire", "internal/eardbd", "internal/loadgen"},
	Run: runDeterminism,
}

// seededConstructors are the math/rand package functions that build
// explicitly seeded generators — the allowed path to randomness.
var seededConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
	"NewZipf":    true, // takes a *Rand, draws nothing itself
}

func runDeterminism(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			switch n := n.(type) {
			case *ast.CallExpr:
				checkDeterministicCall(pass, n, stack)
			case *ast.RangeStmt:
				checkMapRangeOutput(pass, n, enclosingFuncBody(stack))
			}
			return true
		})
	}
	return nil
}

// enclosingFuncBody returns the body of the innermost function on the
// traversal stack, or nil at package level.
func enclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			return fn.Body
		case *ast.FuncLit:
			return fn.Body
		}
	}
	return nil
}

func checkDeterministicCall(pass *analysis.Pass, call *ast.CallExpr, stack []ast.Node) {
	pkg, fn, ok := calleePkgFunc(pass.Info, call)
	if !ok {
		return
	}
	switch pkg {
	case "time":
		switch fn {
		case "Now", "Since", "Until":
			var fix *analysis.SuggestedFix
			if fn == "Now" {
				fix = clockFix(pass, call, stack)
			}
			pass.ReportFix(call.Pos(), fix, "time.%s reads the wall clock; simulated time must come from the run's own clock", fn)
		}
	case "math/rand", "math/rand/v2":
		if !seededConstructors[fn] {
			pass.Reportf(call.Pos(), "%s.%s draws from the shared global generator; use an explicitly seeded *rand.Rand", pkg, fn)
		}
	}
}

// clockFix rewrites a time.Now() call to read the injected clock when
// the enclosing method's receiver carries one — a field (or a field of
// a config-struct field, the client's c.cfg.Clock shape) whose type
// has a parameterless, single-result Now method. Returns nil when no
// clock is in scope; the finding is then report-only.
func clockFix(pass *analysis.Pass, call *ast.CallExpr, stack []ast.Node) *analysis.SuggestedFix {
	path := clockFieldPath(pass, stack)
	if path == "" {
		return nil
	}
	repl := path + ".Now()"
	return &analysis.SuggestedFix{
		Message: "replace time.Now() with the injected clock read " + repl,
		Edits:   []analysis.TextEdit{pass.Edit(call.Pos(), call.End(), repl)},
	}
}

// clockFieldPath finds the selector path to a clock reachable from the
// innermost enclosing method's receiver, or "".
func clockFieldPath(pass *analysis.Pass, stack []ast.Node) string {
	var fd *ast.FuncDecl
	for i := len(stack) - 1; i >= 0 && fd == nil; i-- {
		if d, ok := stack[i].(*ast.FuncDecl); ok {
			fd = d
		}
	}
	if fd == nil || fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return ""
	}
	recvIdent := fd.Recv.List[0].Names[0]
	if recvIdent.Name == "_" {
		return ""
	}
	obj := pass.Info.Defs[recvIdent]
	if obj == nil {
		return ""
	}
	st := structUnder(obj.Type())
	if st == nil {
		return ""
	}
	for i := 0; i < st.NumFields(); i++ {
		if f := st.Field(i); hasClockNow(f.Type()) {
			return recvIdent.Name + "." + f.Name()
		}
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		inner := structUnder(f.Type())
		if inner == nil {
			continue
		}
		for j := 0; j < inner.NumFields(); j++ {
			if g := inner.Field(j); hasClockNow(g.Type()) {
				return recvIdent.Name + "." + f.Name() + "." + g.Name()
			}
		}
	}
	return ""
}

// structUnder unwraps pointers and named types down to a struct.
func structUnder(t types.Type) *types.Struct {
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	st, _ := t.Underlying().(*types.Struct)
	return st
}

// hasClockNow reports whether the type has a Now() method taking
// nothing and returning one value — the injected-clock shape.
func hasClockNow(t types.Type) bool {
	for _, tt := range []types.Type{t, types.NewPointer(t)} {
		obj, _, _ := types.LookupFieldOrMethod(tt, true, nil, "Now")
		if fn, ok := obj.(*types.Func); ok {
			sig, ok := fn.Type().(*types.Signature)
			if ok && sig.Params().Len() == 0 && sig.Results().Len() == 1 {
				return true
			}
		}
	}
	return false
}

// checkMapRangeOutput flags `for ... := range m` over a map whose body
// appends to a slice or writes formatted output: both turn Go's
// randomized map order into visible nondeterminism. Iterations that
// only aggregate (sum, count, rebuild another map) are order-neutral
// and stay legal, as is the collect-then-sort idiom — an appended
// slice that is sorted later in the same function.
func checkMapRangeOutput(pass *analysis.Pass, rng *ast.RangeStmt, fnBody *ast.BlockStmt) {
	t := pass.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	var culprit string
	var appendCall *ast.CallExpr
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if culprit != "" {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := stripParens(call.Fun).(*ast.Ident); ok && id.Name == "append" {
			if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
				if sortedLater(pass, call, rng, fnBody) {
					return true
				}
				culprit = "appends to a slice"
				appendCall = call
				return false
			}
		}
		if pkg, fn, ok := calleePkgFunc(pass.Info, call); ok && pkg == "fmt" {
			switch fn {
			case "Print", "Println", "Printf", "Fprint", "Fprintln", "Fprintf":
				culprit = "writes output via fmt." + fn
				return false
			}
		}
		if sel, ok := stripParens(call.Fun).(*ast.SelectorExpr); ok {
			switch sel.Sel.Name {
			case "Write", "WriteString", "WriteByte", "WriteRune", "Printf", "Print", "Println":
				if _, isMethod := pass.Info.Selections[sel]; isMethod {
					culprit = "writes output via " + sel.Sel.Name
					return false
				}
			}
		}
		return true
	})
	if culprit != "" {
		var fix *analysis.SuggestedFix
		if appendCall != nil {
			fix = sortAfterLoopFix(pass, rng, appendCall)
		}
		pass.ReportFix(rng.Pos(), fix, "map iteration order is randomized but this loop %s; collect the keys, sort them, and range over the slice", culprit)
	}
}

// sortAfterLoopFix converts a collect-in-map-order loop into the
// collect-then-sort idiom: insert the matching sort call directly
// after the loop (and the "sort" import when the file lacks it). Only
// slices of string, int or float64 appended to a plain local variable
// get a fix — everything else needs a human.
func sortAfterLoopFix(pass *analysis.Pass, rng *ast.RangeStmt, appendCall *ast.CallExpr) *analysis.SuggestedFix {
	if len(appendCall.Args) == 0 {
		return nil
	}
	target, ok := stripParens(appendCall.Args[0]).(*ast.Ident)
	if !ok {
		return nil
	}
	t := pass.TypeOf(target)
	if t == nil {
		return nil
	}
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return nil
	}
	basic, ok := sl.Elem().Underlying().(*types.Basic)
	if !ok || sl.Elem() != sl.Elem().Underlying() {
		// Named element types would change sort semantics visible to
		// the reader; leave those to a human.
		return nil
	}
	var sortFn string
	switch basic.Kind() {
	case types.String:
		sortFn = "sort.Strings"
	case types.Int:
		sortFn = "sort.Ints"
	case types.Float64:
		sortFn = "sort.Float64s"
	default:
		return nil
	}
	stmt := sortFn + "(" + target.Name + ")"
	edits := []analysis.TextEdit{pass.Insert(rng.End(), "\n"+stmt)}
	if imp, needed := importEdit(pass, rng.Pos(), "sort"); needed {
		edits = append(edits, imp)
	}
	return &analysis.SuggestedFix{
		Message: "insert " + stmt + " after the loop (collect-then-sort)",
		Edits:   edits,
	}
}

// importEdit returns an edit adding the import to the file containing
// pos, or needed=false when it is already imported. The inserted path
// lands wherever is syntactically valid; the fix applier's gofmt pass
// canonicalises the order.
func importEdit(pass *analysis.Pass, pos token.Pos, path string) (analysis.TextEdit, bool) {
	var file *ast.File
	for _, f := range pass.Files {
		if f.FileStart <= pos && pos < f.FileEnd {
			file = f
			break
		}
	}
	if file == nil {
		return analysis.TextEdit{}, false
	}
	for _, imp := range file.Imports {
		if imp.Path.Value == `"`+path+`"` {
			return analysis.TextEdit{}, false
		}
	}
	for _, d := range file.Decls {
		gd, ok := d.(*ast.GenDecl)
		if !ok || gd.Tok != token.IMPORT {
			continue
		}
		if gd.Lparen.IsValid() {
			return pass.Insert(gd.Lparen+1, "\n\t\""+path+"\""), true
		}
		return pass.Insert(gd.End(), "\nimport \""+path+"\""), true
	}
	return pass.Insert(file.Name.End(), "\n\nimport \""+path+"\""), true
}

// sortedLater reports whether the slice receiving the append is passed
// to a sorting function after the range loop in the same function —
// the collect-then-sort idiom, which is deterministic.
func sortedLater(pass *analysis.Pass, appendCall *ast.CallExpr, rng *ast.RangeStmt, fnBody *ast.BlockStmt) bool {
	if fnBody == nil || len(appendCall.Args) == 0 {
		return false
	}
	target, ok := stripParens(appendCall.Args[0]).(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.Info.Uses[target]
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() || len(call.Args) == 0 {
			return true
		}
		pkg, fn, ok := calleePkgFunc(pass.Info, call)
		if !ok {
			return true
		}
		isSort := (pkg == "sort" || pkg == "slices") &&
			(strings.HasPrefix(fn, "Sort") || fn == "Strings" || fn == "Ints" || fn == "Float64s" || fn == "Stable")
		if !isSort {
			return true
		}
		if id, ok := stripParens(call.Args[0]).(*ast.Ident); ok && pass.Info.Uses[id] == obj {
			found = true
			return false
		}
		return true
	})
	return found
}
