// Package analyzers holds the repo-specific goearvet checks. Each
// analyzer enforces one invariant the reproduction depends on:
//
//   - determinism: simulation and experiment code must not consult
//     wall-clock time, the global math/rand generators, or emit output
//     in map-iteration order — byte-identical reruns are a contract
//     (the CI diffs sequential vs parallel benchtables output).
//   - unitsafety: quantities from internal/units must not be mixed
//     across dimensions or fed from raw numeric literals.
//   - msrfield: MSR bit-field mask/shift pairs must be contiguous,
//     non-overlapping, match their documented bit ranges, and agree
//     between Encode*/Decode* pairs.
//   - errcheck: error returns in internal packages must be consumed.
//   - concurrency: no by-value copies of sync primitives, and no raw
//     goroutines in simulation/experiment code (fan-out goes through
//     internal/par so determinism and bounds are preserved).
//   - telemetry: metric names registered with the telemetry registry
//     must be package-level constants matching ^goear_[a-z0-9_]+$,
//     each registered at exactly one call site.
//   - policyreg: every Policy implementation is registered exactly
//     once under a declared name constant whose value round-trips
//     config parsing.
//   - conftag: config keys, the struct fields their parser cases
//     assign, and the fields' conf struct tags agree — no dead keys,
//     no stale or missing tags.
//   - fixture: test helpers build spill journals and wire frames
//     through the versioned codec constructors, never by hand.
//
// Some analyzers attach suggested fixes to their diagnostics; those
// are applied by goearvet -fix through analysis.PlanFixes.
package analyzers

import (
	"go/ast"
	"go/constant"
	"go/types"
	"math/bits"

	"goear/internal/analysis"
)

// All returns the full analyzer suite sorted by name.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		Concurrency,
		ConfTag,
		Determinism,
		ErrCheck,
		Fixture,
		MSRField,
		PolicyReg,
		Telemetry,
		UnitSafety,
	}
}

// stripParens removes any number of surrounding parentheses.
func stripParens(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// calleePkgFunc resolves a call of the form pkg.Fn(...) where pkg is
// an imported package name, returning the package import path and the
// function name.
func calleePkgFunc(info *types.Info, call *ast.CallExpr) (pkgPath, fn string, ok bool) {
	sel, ok := stripParens(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", "", false
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// constUint64 returns the compile-time unsigned value of an
// expression, if the type checker recorded one.
func constUint64(info *types.Info, e ast.Expr) (uint64, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return 0, false
	}
	v := constant.ToInt(tv.Value)
	if v.Kind() != constant.Int {
		return 0, false
	}
	u, exact := constant.Uint64Val(v)
	if !exact {
		return 0, false
	}
	return u, true
}

// maskField describes a contiguous bit run: lo is the lowest bit
// index, width the number of bits. A zero-width field means the mask
// had holes (non-contiguous) and is reported separately.
type maskField struct {
	lo, width int
}

// contiguousRun decomposes a mask into its bit run. ok is false when
// the mask is zero or has holes (e.g. 0x7F7F).
func contiguousRun(mask uint64) (lo, width int, ok bool) {
	if mask == 0 {
		return 0, 0, false
	}
	lo = bits.TrailingZeros64(mask)
	run := mask >> lo
	if run&(run+1) != 0 {
		return 0, 0, false
	}
	return lo, bits.OnesCount64(mask), true
}

// isConstExpr reports whether the checker recorded a compile-time
// value for the expression.
func isConstExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}

// numericLiteral unwraps parentheses and a leading +/- and reports
// whether e is a raw numeric literal, along with whether it is zero.
func numericLiteral(info *types.Info, e ast.Expr) (isLit, isZero bool) {
	e = stripParens(e)
	if u, ok := e.(*ast.UnaryExpr); ok {
		e = stripParens(u.X)
	}
	if _, ok := e.(*ast.BasicLit); !ok {
		return false, false
	}
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return false, false
	}
	v := constant.ToFloat(tv.Value)
	if v.Kind() != constant.Float && v.Kind() != constant.Int {
		return false, false
	}
	f, _ := constant.Float64Val(v)
	return true, f == 0
}
