package analyzers

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/types"
	"strconv"
	"strings"

	"goear/internal/analysis"
)

// Fixture polices test-helper packages that fabricate persisted
// artefacts: spill journals, wire frames and job accounting records
// must be produced through the versioned codec constructors, never
// hand-rolled. A literal wire.Frame, accounting.Record or a
// hand-marshalled batch bakes today's layout into a fixture, so a
// codec version bump rots the fixture silently instead of failing
// loudly at the constructor.
var Fixture = &analysis.Analyzer{
	Name: "fixture",
	Doc: "require test helpers to build spill journals, wire frames and job records " +
		"through the versioned codec constructors instead of hand-rolled literals",
	Scope: []string{"internal/loadgen", "eardbd/dbdtest"},
	Run:   runFixture,
}

func runFixture(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				checkFixtureLit(pass, f, n)
			case *ast.CallExpr:
				checkFixtureMarshal(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkFixtureLit flags hand-rolled wire.Frame literals,
// hand-formatted batch IDs inside wire.Batch literals, and hand-rolled
// accounting.Record literals.
func checkFixtureLit(pass *analysis.Pass, file *ast.File, lit *ast.CompositeLit) {
	named := namedTypeOf(pass.TypeOf(lit))
	if named == nil {
		return
	}
	if isAccountingType(named) && named.Obj().Name() == "Record" {
		pass.Reportf(lit.Pos(), "accounting.Record composite literal in a fixture helper; build job records with accounting.NewRecord so the codec version is stamped and the fields validated")
		return
	}
	if !isWireType(named) {
		return
	}
	switch named.Obj().Name() {
	case "Frame":
		pass.Reportf(lit.Pos(), "wire.Frame composite literal in a fixture helper; build frames with the versioned wire.Encode constructors so the magic, version and checksum stay consistent")
	case "Batch":
		for _, el := range lit.Elts {
			kv, ok := el.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			key, ok := kv.Key.(*ast.Ident)
			if !ok || key.Name != "ID" {
				continue
			}
			checkBatchID(pass, file, kv.Value)
		}
	}
}

// checkBatchID flags ID fields assembled with fmt.Sprintf("%s/%d", …):
// the batch-ID wire format lives in one place (eardbd.BatchID) and
// fixtures must call it, not re-derive it.
func checkBatchID(pass *analysis.Pass, file *ast.File, val ast.Expr) {
	call, ok := stripParens(val).(*ast.CallExpr)
	if !ok || !isPkgCall(pass, call, "fmt", "Sprintf") || len(call.Args) < 1 {
		return
	}
	lit, ok := stripParens(call.Args[0]).(*ast.BasicLit)
	if !ok {
		return
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil || format != "%s/%d" || len(call.Args) != 3 {
		pass.Reportf(val.Pos(), "batch ID assembled with fmt.Sprintf; use eardbd.BatchID so the node/sequence format has one owner")
		return
	}
	var fix *analysis.SuggestedFix
	if alias, ok := importAlias(file, "goear/internal/eardbd"); ok {
		node := renderExpr(pass, call.Args[1])
		seq := renderExpr(pass, call.Args[2])
		if node != "" && seq != "" {
			fix = &analysis.SuggestedFix{
				Message: "call " + alias + ".BatchID instead of re-deriving the format",
				Edits: []analysis.TextEdit{
					pass.Edit(call.Pos(), call.End(), alias+".BatchID("+node+", "+seq+")"),
				},
			}
		}
	}
	pass.ReportFix(val.Pos(), fix, "batch ID assembled with fmt.Sprintf; use eardbd.BatchID so the node/sequence format has one owner")
}

// checkFixtureMarshal flags hand-marshalling of batches: the spill
// journal's on-disk encoding belongs to the Journal codec.
func checkFixtureMarshal(pass *analysis.Pass, call *ast.CallExpr) {
	if !isPkgCall(pass, call, "encoding/json", "Marshal") && !isPkgCall(pass, call, "encoding/json", "MarshalIndent") {
		return
	}
	if len(call.Args) == 0 {
		return
	}
	named := namedTypeOf(pass.TypeOf(call.Args[0]))
	if named == nil || !isWireType(named) || named.Obj().Name() != "Batch" {
		return
	}
	pass.Reportf(call.Pos(), "json-marshalling a wire.Batch by hand in a fixture helper; write spill entries through the versioned Journal codec instead")
}

// namedTypeOf unwraps pointers and slices down to a named type.
func namedTypeOf(t types.Type) *types.Named {
	for t != nil {
		switch u := t.(type) {
		case *types.Named:
			return u
		case *types.Pointer:
			t = u.Elem()
		case *types.Slice:
			t = u.Elem()
		default:
			return nil
		}
	}
	return nil
}

// isWireType reports whether the named type lives in a wire package —
// matched on the import path suffix so fixture packages loaded under
// synthetic paths still qualify.
func isWireType(named *types.Named) bool {
	pkg := named.Obj().Pkg()
	if pkg == nil {
		return false
	}
	return pkg.Path() == "goear/internal/wire" || strings.HasSuffix(pkg.Path(), "/wire")
}

// isAccountingType reports whether the named type lives in the job
// accounting package, matched on the import path suffix like
// isWireType.
func isAccountingType(named *types.Named) bool {
	pkg := named.Obj().Pkg()
	if pkg == nil {
		return false
	}
	return pkg.Path() == "goear/internal/accounting" || strings.HasSuffix(pkg.Path(), "/accounting")
}

// isPkgCall reports whether the call is pkgpath.Name(...), resolved
// through the type info so import aliases are honoured.
func isPkgCall(pass *analysis.Pass, call *ast.CallExpr, pkgPath, name string) bool {
	sel, ok := stripParens(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Name() != name || fn.Pkg() == nil {
		return false
	}
	return fn.Pkg().Path() == pkgPath
}

// importAlias returns the local name under which the file imports the
// given path ("eardbd" when unaliased), and whether it imports it at
// all. Fixes are only offered when the import already exists — adding
// one could create a cycle in helper packages.
func importAlias(file *ast.File, path string) (string, bool) {
	for _, imp := range file.Imports {
		p, err := strconv.Unquote(imp.Path.Value)
		if err != nil || p != path {
			continue
		}
		if imp.Name != nil {
			if imp.Name.Name == "." || imp.Name.Name == "_" {
				return "", false
			}
			return imp.Name.Name, true
		}
		return p[strings.LastIndex(p, "/")+1:], true
	}
	return "", false
}

// renderExpr prints an expression back to source for use inside a
// replacement edit.
func renderExpr(pass *analysis.Pass, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, pass.Fset, e); err != nil {
		return ""
	}
	return buf.String()
}
