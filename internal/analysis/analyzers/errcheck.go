package analyzers

import (
	"go/ast"
	"go/types"

	"goear/internal/analysis"
)

// ErrCheck flags calls in internal packages whose error result is
// silently dropped. The simulator layers its failure reporting
// through returned errors (MSR writability, config validation,
// conservation checks); a discarded error here means a run continues
// on state it believes is impossible.
//
// Deliberate discards stay possible two ways: assign the error to
// blank (`_ = f()`), or annotate the line with //goearvet:ignore and
// a reason. Writes through fmt to a strings.Builder or bytes.Buffer
// are exempt — those writers cannot fail — as is best-effort console
// logging via fmt.Print/Printf/Println.
var ErrCheck = &analysis.Analyzer{
	Name: "errcheck",
	Doc: "flag dropped error results in internal packages (expression statements, " +
		"defer and go calls); infallible Builder/Buffer writes are exempt",
	Scope: []string{"internal"},
	Run:   runErrCheck,
}

func runErrCheck(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch n := n.(type) {
			case *ast.ExprStmt:
				call, _ = n.X.(*ast.CallExpr)
			case *ast.DeferStmt:
				call = n.Call
			case *ast.GoStmt:
				call = n.Call
			}
			if call == nil {
				return true
			}
			if !returnsError(pass, call) || exemptCall(pass, call) {
				return true
			}
			pass.Reportf(call.Pos(), "result of %s includes an error that is dropped; handle it or assign to _ explicitly", calleeName(call))
			return true
		})
	}
	return nil
}

// returnsError reports whether the call's results include an error.
func returnsError(pass *analysis.Pass, call *ast.CallExpr) bool {
	t := pass.TypeOf(call)
	if t == nil {
		return false
	}
	if tup, ok := t.(*types.Tuple); ok {
		for i := 0; i < tup.Len(); i++ {
			if isErrorType(tup.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isErrorType(t)
}

var errorType = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func isErrorType(t types.Type) bool {
	return types.Implements(t, errorType)
}

// exemptCall recognizes the call shapes whose errors are structurally
// dead: fmt printing to stdout, and fmt or method writes into
// in-memory builders/buffers.
func exemptCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	if pkg, fn, ok := calleePkgFunc(pass.Info, call); ok && pkg == "fmt" {
		switch fn {
		case "Print", "Printf", "Println":
			return true
		case "Fprint", "Fprintf", "Fprintln":
			return len(call.Args) > 0 && isInfallibleWriter(pass.TypeOf(call.Args[0]))
		}
	}
	// Method calls on *strings.Builder / *bytes.Buffer (WriteString,
	// WriteByte, ...) document that they always return a nil error.
	if sel, ok := stripParens(call.Fun).(*ast.SelectorExpr); ok {
		if s, isMethod := pass.Info.Selections[sel]; isMethod {
			return isInfallibleWriter(s.Recv())
		}
	}
	return false
}

// isInfallibleWriter reports whether t is (a pointer to)
// strings.Builder or bytes.Buffer.
func isInfallibleWriter(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	pkg, name := named.Obj().Pkg().Path(), named.Obj().Name()
	return (pkg == "strings" && name == "Builder") || (pkg == "bytes" && name == "Buffer")
}

// calleeName renders the called expression for the message.
func calleeName(call *ast.CallExpr) string {
	switch fun := stripParens(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			return id.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	}
	return "call"
}
