package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"goear/internal/analysis"
)

// MSRField checks the bit-field arithmetic that the MSR emulation and
// its consumers are built on. The whole reproduction hangs off a
// handful of mask/shift pairs (MSR 0x620's 7-bit ratio fields,
// IA32_PERF_CTL's ratio byte, the RAPL unit field); a silently wrong
// mask corrupts every downstream table. The analyzer extracts every
// `(x & MASK) << SHIFT` / `(v >> SHIFT) & MASK` pattern with constant
// operands and verifies:
//
//   - masks are contiguous bit runs (0x7F yes, 0x7F7F no),
//   - fields packed by one Encode* function do not overlap,
//   - Encode*/Decode* pairs sharing a name suffix use identical field
//     layouts,
//   - a doc comment documenting "bits H:L" matches an extracted field
//     of exactly that position and width.
var MSRField = &analysis.Analyzer{
	Name: "msrfield",
	Doc: "verify MSR bit-field mask/shift constants: contiguous masks, non-overlapping " +
		"encode fields, Encode*/Decode* layout agreement, and doc 'bits H:L' consistency",
	Scope: []string{"internal/msr", "internal/uncore", "internal/power"},
	Run:   runMSRField,
}

// bitField is one extracted field placement in register coordinates.
type bitField struct {
	lo, width int
	pos       token.Pos
}

func (b bitField) String() string {
	return fmt.Sprintf("bits %d:%d", b.lo+b.width-1, b.lo)
}

type fieldSet []bitField

func (fs fieldSet) sorted() fieldSet {
	out := append(fieldSet(nil), fs...)
	sort.Slice(out, func(i, j int) bool { return out[i].lo < out[j].lo })
	return out
}

func (fs fieldSet) layout() string {
	parts := make([]string, len(fs))
	for i, f := range fs.sorted() {
		parts[i] = f.String()
	}
	return strings.Join(parts, ", ")
}

func runMSRField(pass *analysis.Pass) error {
	encode := map[string]fieldSet{} // suffix after "Encode" -> fields
	decode := map[string]fieldSet{} // suffix after "Decode" -> fields
	decodePos := map[string]token.Pos{}

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fields := extractFields(pass, fd.Body)
			name := fd.Name.Name
			if suffix, ok := strings.CutPrefix(name, "Encode"); ok && len(fields) > 0 {
				encode[suffix] = append(encode[suffix], fields...)
				checkOverlap(pass, name, fields)
			}
			if suffix, ok := strings.CutPrefix(name, "Decode"); ok && len(fields) > 0 {
				decode[suffix] = append(decode[suffix], fields...)
				decodePos[suffix] = fd.Pos()
			}
			checkDocBits(pass, fd, fields)
		}
	}

	// Encode/Decode pairs must agree on the field layout.
	for suffix, enc := range encode {
		dec, ok := decode[suffix]
		if !ok {
			continue
		}
		if !sameLayout(enc, dec) {
			pass.Reportf(decodePos[suffix],
				"Encode%s and Decode%s disagree on the register layout: encode packs %s, decode extracts %s",
				suffix, suffix, fieldSet(enc).layout(), fieldSet(dec).layout())
		}
	}
	return nil
}

// extractFields walks a function body collecting constant mask/shift
// placements. Non-contiguous masks are reported immediately and
// excluded from the returned set.
func extractFields(pass *analysis.Pass, body *ast.BlockStmt) fieldSet {
	var fields fieldSet
	consumed := map[*ast.BinaryExpr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		bin, ok := n.(*ast.BinaryExpr)
		if !ok {
			return true
		}
		switch bin.Op {
		case token.SHL:
			// (x & MASK) << SHIFT
			shift, ok := constUint64(pass.Info, bin.Y)
			if !ok {
				return true
			}
			and, ok := stripParens(bin.X).(*ast.BinaryExpr)
			if !ok || and.Op != token.AND {
				return true
			}
			mask, maskExpr, ok := andMask(pass, and)
			if !ok {
				return true
			}
			consumed[and] = true
			if f, ok := fieldFromMask(pass, mask, int(shift), maskExpr.Pos()); ok {
				fields = append(fields, f)
			}
		case token.AND:
			if consumed[bin] {
				return true
			}
			mask, maskExpr, ok := andMask(pass, bin)
			if !ok {
				return true
			}
			consumed[bin] = true
			shift := 0
			other := bin.X
			if maskExpr == bin.X {
				other = bin.Y
			}
			if shr, ok := stripParens(other).(*ast.BinaryExpr); ok && shr.Op == token.SHR {
				if s, ok := constUint64(pass.Info, shr.Y); ok {
					// (v >> SHIFT) & MASK
					shift = int(s)
				}
			}
			if f, ok := fieldFromMask(pass, mask, shift, maskExpr.Pos()); ok {
				fields = append(fields, f)
			}
		}
		return true
	})
	return fields
}

// andMask picks the constant operand of an & expression as the mask.
func andMask(pass *analysis.Pass, and *ast.BinaryExpr) (mask uint64, maskExpr ast.Expr, ok bool) {
	if m, ok := constUint64(pass.Info, and.Y); ok {
		return m, and.Y, true
	}
	if m, ok := constUint64(pass.Info, and.X); ok {
		return m, and.X, true
	}
	return 0, nil, false
}

// fieldFromMask converts a mask+shift into register coordinates,
// reporting masks with holes.
func fieldFromMask(pass *analysis.Pass, mask uint64, shift int, pos token.Pos) (bitField, bool) {
	lo, width, ok := contiguousRun(mask)
	if !ok {
		pass.Reportf(pos, "mask %#x is not a contiguous bit run; a field mask must cover adjacent bits", mask)
		return bitField{}, false
	}
	return bitField{lo: lo + shift, width: width, pos: pos}, true
}

// checkOverlap reports fields of one Encode function that collide.
func checkOverlap(pass *analysis.Pass, fn string, fields fieldSet) {
	fs := fields.sorted()
	for i := 1; i < len(fs); i++ {
		prev, cur := fs[i-1], fs[i]
		if cur.lo < prev.lo+prev.width {
			pass.Reportf(cur.pos, "%s packs overlapping fields: %s collides with %s", fn, cur, prev)
		}
	}
}

func sameLayout(a, b fieldSet) bool {
	as, bs := a.sorted(), b.sorted()
	if len(as) != len(bs) {
		return false
	}
	for i := range as {
		if as[i].lo != bs[i].lo || as[i].width != bs[i].width {
			return false
		}
	}
	return true
}

// docBitsRx matches "bits 14:8" style field documentation.
var docBitsRx = regexp.MustCompile(`bits\s+(\d+):(\d+)`)

// checkDocBits cross-checks "bits H:L" claims in a function's doc
// comment against the fields its body actually manipulates. Functions
// without extracted fields (wrappers, delegating helpers) are skipped.
func checkDocBits(pass *analysis.Pass, fd *ast.FuncDecl, fields fieldSet) {
	if fd.Doc == nil || len(fields) == 0 {
		return
	}
	for _, m := range docBitsRx.FindAllStringSubmatch(fd.Doc.Text(), -1) {
		hi, err1 := strconv.Atoi(m[1])
		lo, err2 := strconv.Atoi(m[2])
		if err1 != nil || err2 != nil || hi < lo {
			continue
		}
		found := false
		for _, f := range fields {
			if f.lo == lo && f.lo+f.width-1 == hi {
				found = true
				break
			}
		}
		if !found {
			pass.Reportf(fd.Pos(), "%s documents bits %d:%d but the body manipulates %s; doc and mask/shift constants disagree",
				fd.Name.Name, hi, lo, fields.layout())
		}
	}
}
