package analyzers

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"sort"

	"goear/internal/analysis"
)

// Telemetry enforces the observability naming contract: every metric
// name handed to a telemetry Registry registration (Counter, Gauge,
// Histogram and their Vec variants) must be a package-level string
// constant whose value matches ^goear_[a-z0-9_]+$, and each constant
// must be registered at exactly one call site. The registry itself is
// get-or-create (so instance-scoped bundles can share families), which
// is exactly why the single-call-site rule lives in the analyzer: a
// second registration of the same name is silently folded at runtime
// and would hide a copy-paste family collision forever.
//
// Two tracing-era rules ride along: latency families (names ending in
// _latency_seconds) must be HistogramVecs — per-op labels are the
// contract that lets SLO summaries and dashboards select by wire op —
// and span kinds passed to trace span constructors (Root, RootNamed,
// Remote, Child) must be dotted lowercase paths, the shape the /traces
// kind filter matches on dot boundaries.
var Telemetry = &analysis.Analyzer{
	Name: "telemetry",
	Doc: "metric names passed to telemetry registry registrations must be package-level " +
		"constants matching ^goear_[a-z0-9_]+$, each registered at exactly one call site; " +
		"latency families must be HistogramVecs; span kinds must match ^[a-z]+(\\.[a-z_]+)+$",
	Run: runTelemetry,
}

var metricNameRx = regexp.MustCompile(`^goear_[a-z0-9_]+$`)

// latencyFamilyRx picks out per-operation latency families, which must
// be histogram vectors keyed by op.
var latencyFamilyRx = regexp.MustCompile(`^goear_[a-z0-9_]+_latency_seconds$`)

// spanKindRx is the span-kind shape: at least two dot-separated
// lowercase segments ("client.send", "eargm.island").
var spanKindRx = regexp.MustCompile(`^[a-z]+(\.[a-z_]+)+$`)

// registryMethods are the Registry methods whose first argument is a
// metric family name.
var registryMethods = map[string]bool{
	"Counter": true, "Gauge": true, "Histogram": true,
	"CounterVec": true, "GaugeVec": true, "HistogramVec": true,
}

// traceKindArg maps the trace span constructors to the index of their
// span-kind argument.
var traceKindArg = map[string]int{
	"Root": 0, "RootNamed": 1, "Remote": 1, "Child": 0,
}

func runTelemetry(pass *analysis.Pass) error {
	type site struct {
		pos  token.Pos
		name string
	}
	sites := map[*types.Const][]site{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := stripParens(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if idx, isSpan := traceKindArg[sel.Sel.Name]; isSpan && idx < len(call.Args) {
				if s, isMethod := pass.Info.Selections[sel]; isMethod && isTraceHandle(s.Recv()) {
					checkSpanKind(pass, stripParens(call.Args[idx]))
				}
				return true
			}
			if !registryMethods[sel.Sel.Name] {
				return true
			}
			s, isMethod := pass.Info.Selections[sel]
			if !isMethod || !isTelemetryRegistry(s.Recv()) {
				return true
			}
			if len(call.Args) == 0 {
				return true
			}
			arg := stripParens(call.Args[0])
			c := constOf(pass, arg)
			if c == nil || c.Pkg() == nil || c.Parent() != c.Pkg().Scope() {
				pass.Reportf(arg.Pos(), "metric name passed to %s must be a package-level constant", sel.Sel.Name)
				return true
			}
			if c.Val().Kind() == constant.String {
				v := constant.StringVal(c.Val())
				if !metricNameRx.MatchString(v) {
					pass.Reportf(arg.Pos(), "metric name %q does not match ^goear_[a-z0-9_]+$", v)
				}
				if latencyFamilyRx.MatchString(v) && sel.Sel.Name != "HistogramVec" {
					pass.Reportf(arg.Pos(), "latency family %q must be registered as a HistogramVec keyed by op", v)
				}
			}
			sites[c] = append(sites[c], site{pos: arg.Pos(), name: c.Name()})
			return true
		})
	}
	// A constant registered from two call sites is a latent family
	// collision; report every site past the first, in source order.
	consts := make([]*types.Const, 0, len(sites))
	for c := range sites {
		consts = append(consts, c)
	}
	sort.Slice(consts, func(i, j int) bool { return sites[consts[i]][0].pos < sites[consts[j]][0].pos })
	for _, c := range consts {
		ss := sites[c]
		sort.Slice(ss, func(i, j int) bool { return ss[i].pos < ss[j].pos })
		for _, s := range ss[1:] {
			pass.Reportf(s.pos, "metric constant %s is registered at more than one call site", s.name)
		}
	}
	return nil
}

// constOf resolves an expression to the constant object it names, if
// any (a bare identifier or a pkg.Const selector).
func constOf(pass *analysis.Pass, e ast.Expr) *types.Const {
	switch e := e.(type) {
	case *ast.Ident:
		c, _ := pass.Info.Uses[e].(*types.Const)
		return c
	case *ast.SelectorExpr:
		c, _ := pass.Info.Uses[e.Sel].(*types.Const)
		return c
	}
	return nil
}

// checkSpanKind reports a span-kind argument whose constant value does
// not match the dotted-lowercase shape. Non-constant kinds (the trace
// package's own plumbing passes parameters through) are left alone:
// the rule is about the literal taxonomy, not the forwarding layers.
func checkSpanKind(pass *analysis.Pass, arg ast.Expr) {
	tv, ok := pass.Info.Types[arg]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return
	}
	if v := constant.StringVal(tv.Value); !spanKindRx.MatchString(v) {
		pass.Reportf(arg.Pos(), "span kind %q does not match ^[a-z]+(\\.[a-z_]+)+$", v)
	}
}

// isTraceHandle reports whether t is (a pointer to) the trace
// package's Tracer or Active type — the receivers of the span
// constructors.
func isTraceHandle(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	if !analysis.PathMatches(named.Obj().Pkg().Path(), "internal/telemetry/trace") {
		return false
	}
	name := named.Obj().Name()
	return name == "Tracer" || name == "Active"
}

// isTelemetryRegistry reports whether t is (a pointer to) the
// telemetry package's Registry type.
func isTelemetryRegistry(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return analysis.PathMatches(named.Obj().Pkg().Path(), "internal/telemetry") &&
		named.Obj().Name() == "Registry"
}
