package analyzers

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"regexp"
	"sort"

	"goear/internal/analysis"
)

// Telemetry enforces the observability naming contract: every metric
// name handed to a telemetry Registry registration (Counter, Gauge,
// Histogram and their Vec variants) must be a package-level string
// constant whose value matches ^goear_[a-z0-9_]+$, and each constant
// must be registered at exactly one call site. The registry itself is
// get-or-create (so instance-scoped bundles can share families), which
// is exactly why the single-call-site rule lives in the analyzer: a
// second registration of the same name is silently folded at runtime
// and would hide a copy-paste family collision forever.
var Telemetry = &analysis.Analyzer{
	Name: "telemetry",
	Doc: "metric names passed to telemetry registry registrations must be package-level " +
		"constants matching ^goear_[a-z0-9_]+$, each registered at exactly one call site",
	Run: runTelemetry,
}

var metricNameRx = regexp.MustCompile(`^goear_[a-z0-9_]+$`)

// registryMethods are the Registry methods whose first argument is a
// metric family name.
var registryMethods = map[string]bool{
	"Counter": true, "Gauge": true, "Histogram": true,
	"CounterVec": true, "GaugeVec": true, "HistogramVec": true,
}

func runTelemetry(pass *analysis.Pass) error {
	type site struct {
		pos  token.Pos
		name string
	}
	sites := map[*types.Const][]site{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := stripParens(call.Fun).(*ast.SelectorExpr)
			if !ok || !registryMethods[sel.Sel.Name] {
				return true
			}
			s, isMethod := pass.Info.Selections[sel]
			if !isMethod || !isTelemetryRegistry(s.Recv()) {
				return true
			}
			if len(call.Args) == 0 {
				return true
			}
			arg := stripParens(call.Args[0])
			c := constOf(pass, arg)
			if c == nil || c.Pkg() == nil || c.Parent() != c.Pkg().Scope() {
				pass.Reportf(arg.Pos(), "metric name passed to %s must be a package-level constant", sel.Sel.Name)
				return true
			}
			if c.Val().Kind() == constant.String {
				if v := constant.StringVal(c.Val()); !metricNameRx.MatchString(v) {
					pass.Reportf(arg.Pos(), "metric name %q does not match ^goear_[a-z0-9_]+$", v)
				}
			}
			sites[c] = append(sites[c], site{pos: arg.Pos(), name: c.Name()})
			return true
		})
	}
	// A constant registered from two call sites is a latent family
	// collision; report every site past the first, in source order.
	consts := make([]*types.Const, 0, len(sites))
	for c := range sites {
		consts = append(consts, c)
	}
	sort.Slice(consts, func(i, j int) bool { return sites[consts[i]][0].pos < sites[consts[j]][0].pos })
	for _, c := range consts {
		ss := sites[c]
		sort.Slice(ss, func(i, j int) bool { return ss[i].pos < ss[j].pos })
		for _, s := range ss[1:] {
			pass.Reportf(s.pos, "metric constant %s is registered at more than one call site", s.name)
		}
	}
	return nil
}

// constOf resolves an expression to the constant object it names, if
// any (a bare identifier or a pkg.Const selector).
func constOf(pass *analysis.Pass, e ast.Expr) *types.Const {
	switch e := e.(type) {
	case *ast.Ident:
		c, _ := pass.Info.Uses[e].(*types.Const)
		return c
	case *ast.SelectorExpr:
		c, _ := pass.Info.Uses[e.Sel].(*types.Const)
		return c
	}
	return nil
}

// isTelemetryRegistry reports whether t is (a pointer to) the
// telemetry package's Registry type.
func isTelemetryRegistry(t types.Type) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return analysis.PathMatches(named.Obj().Pkg().Path(), "internal/telemetry") &&
		named.Obj().Name() == "Registry"
}
