package analyzers

import (
	"go/ast"
	"go/types"

	"goear/internal/analysis"
)

// Concurrency enforces the repo's two concurrency ground rules:
//
//   - values containing sync primitives (Mutex, RWMutex, WaitGroup,
//     Once, Cond, Pool, Map) are never copied — not as by-value
//     parameters or receivers, not by range clauses, not by plain
//     assignment of an existing value;
//   - simulation, experiment and policy code never launches raw
//     goroutines. All fan-out goes through internal/par, whose
//     bounded, slot-addressed primitives are what makes parallel runs
//     byte-identical to sequential ones.
var Concurrency = &analysis.Analyzer{
	Name: "concurrency",
	Doc: "flag by-value copies of sync primitives anywhere in internal/, and raw go " +
		"statements in internal/sim, internal/experiments and internal/policy " +
		"(fan-out belongs in internal/par)",
	Scope: []string{"internal"},
	Run:   runConcurrency,
}

// goFreeScopes are the packages where raw goroutines are banned.
var goFreeScopes = []string{"internal/sim", "internal/experiments", "internal/policy"}

func runConcurrency(pass *analysis.Pass) error {
	banGoroutines := false
	for _, s := range goFreeScopes {
		if analysis.PathMatches(pass.Path, s) {
			banGoroutines = true
			break
		}
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				if banGoroutines {
					pass.Reportf(n.Pos(), "raw goroutine in deterministic code; use par.ForEach or par.Map so fan-out stays bounded and order-stable")
				}
			case *ast.FuncDecl:
				checkFuncCopies(pass, n.Recv, n.Type)
			case *ast.FuncLit:
				checkFuncCopies(pass, nil, n.Type)
			case *ast.RangeStmt:
				checkRangeCopy(pass, n)
			case *ast.AssignStmt:
				for _, rhs := range n.Rhs {
					checkValueCopy(pass, rhs)
				}
			case *ast.ValueSpec:
				for _, v := range n.Values {
					checkValueCopy(pass, v)
				}
			}
			return true
		})
	}
	return nil
}

// checkFuncCopies flags by-value receivers and parameters whose type
// contains a sync primitive.
func checkFuncCopies(pass *analysis.Pass, recv *ast.FieldList, ft *ast.FuncType) {
	report := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			t := pass.TypeOf(field.Type)
			if t == nil {
				continue
			}
			if lock := containedLock(t); lock != "" {
				pass.Reportf(field.Pos(), "%s passes a value containing sync.%s by value; use a pointer", what, lock)
			}
		}
	}
	report(recv, "receiver")
	report(ft.Params, "parameter")
}

// checkRangeCopy flags `for _, v := range s` when the element value
// copied into v contains a sync primitive.
func checkRangeCopy(pass *analysis.Pass, rng *ast.RangeStmt) {
	if rng.Value == nil {
		return
	}
	t := pass.TypeOf(rng.Value)
	if t == nil {
		return
	}
	if lock := containedLock(t); lock != "" {
		pass.Reportf(rng.Value.Pos(), "range clause copies a value containing sync.%s each iteration; range over indices or pointers", lock)
	}
}

// checkValueCopy flags assignments that copy an existing value
// containing a sync primitive. Fresh values (composite literals,
// function call results) are constructions, not copies, and pass.
func checkValueCopy(pass *analysis.Pass, rhs ast.Expr) {
	switch stripParens(rhs).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
	default:
		return
	}
	t := pass.TypeOf(rhs)
	if t == nil {
		return
	}
	if lock := containedLock(t); lock != "" {
		pass.Reportf(rhs.Pos(), "assignment copies a value containing sync.%s; share it through a pointer", lock)
	}
}

// syncLockTypes are the sync types that must never be copied after
// first use.
var syncLockTypes = map[string]bool{
	"Mutex": true, "RWMutex": true, "WaitGroup": true,
	"Once": true, "Cond": true, "Pool": true, "Map": true,
}

// containedLock reports the name of a sync primitive reachable from t
// by value (through named types, structs and arrays, but not through
// pointers, slices, maps or channels), or "".
func containedLock(t types.Type) string {
	return lockIn(t, map[types.Type]bool{})
}

func lockIn(t types.Type, seen map[types.Type]bool) string {
	if seen[t] {
		return ""
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && syncLockTypes[obj.Name()] {
			return obj.Name()
		}
		return lockIn(named.Underlying(), seen)
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if l := lockIn(u.Field(i).Type(), seen); l != "" {
				return l
			}
		}
	case *types.Array:
		return lockIn(u.Elem(), seen)
	}
	return ""
}
