package analyzers

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"reflect"
	"strconv"
	"strings"

	"goear/internal/analysis"
)

// ConfTag cross-checks the three places a cluster-config key lives:
// the string matched in the parser's set switch, the struct field the
// case assigns, and the field's `conf:"..."` tag. EAR's ear.conf keys
// drift easily — a renamed key with a stale tag still parses but
// documents the wrong name, and a tagged field with no case is a knob
// that silently never takes effect.
var ConfTag = &analysis.Analyzer{
	Name: "conftag",
	Doc: "require config keys, the struct fields their parser cases assign, and the " +
		"fields' conf struct tags to agree: no dead keys, no stale or missing tags",
	Scope: []string{"internal/earconf"},
	Run:   runConfTag,
}

func runConfTag(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Name.Name != "set" || fd.Recv == nil || fd.Body == nil {
				continue
			}
			checkSetMethod(pass, fd)
		}
	}
	return nil
}

// checkSetMethod audits one set(key, value) parser method against the
// receiver struct's fields and tags.
func checkSetMethod(pass *analysis.Pass, fd *ast.FuncDecl) {
	recv := receiverStruct(pass, fd)
	if recv == nil || len(fd.Type.Params.List) == 0 || len(fd.Type.Params.List[0].Names) == 0 {
		return
	}
	keyParam := pass.Info.Defs[fd.Type.Params.List[0].Names[0]]
	sw := findSwitchOn(pass, fd.Body, keyParam)
	if sw == nil {
		return
	}

	handled := map[string]bool{} // config key -> has a case
	assigned := map[*confField]bool{}
	seenKey := map[string]ast.Expr{}
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		field := firstAssignedField(pass, cc.Body, recv)
		for _, expr := range cc.List {
			key, ok := stringLitValue(pass, expr)
			if !ok {
				continue
			}
			if prev, dup := seenKey[key]; dup {
				pass.Reportf(expr.Pos(), "config key %q has duplicate cases (first at %s)", key, pass.Fset.Position(prev.Pos()))
				continue
			}
			seenKey[key] = expr
			handled[key] = true
			if field == nil {
				pass.Reportf(expr.Pos(), "config key %q is dead: its case assigns no receiver field", key)
				continue
			}
			assigned[field] = true
			checkFieldTag(pass, expr, key, field)
		}
	}

	// Dead tags: fields carrying a conf tag no case ever assigns. A
	// field some case does assign under a different key was already
	// reported as a stale tag above — one problem, one diagnostic.
	for _, fld := range recv.fields {
		tag := confTag(fld.tag)
		if tag == "" || assigned[fld] {
			continue
		}
		if !handled[tag] {
			pass.Reportf(fld.pos, "conf tag %q on field %s is dead: no parser case handles that key", tag, fld.name)
		}
	}
}

// checkFieldTag verifies the assigned field's conf tag names exactly
// the key the case matches, offering a fix that inserts or rewrites
// the tag.
func checkFieldTag(pass *analysis.Pass, at ast.Expr, key string, fld *confField) {
	tag := confTag(fld.tag)
	switch {
	case fld.astField == nil:
		// Field declared outside the loaded files; report without fix.
		if tag != key {
			pass.Reportf(at.Pos(), "config key %q assigns field %s whose conf tag is %q", key, fld.name, tag)
		}
	case fld.tag == "":
		fix := &analysis.SuggestedFix{
			Message: "tag field " + fld.name + " with `conf:\"" + key + "\"`",
			Edits:   []analysis.TextEdit{pass.Insert(fld.astField.Type.End(), " `conf:" + strconv.Quote(key) + "`")},
		}
		if len(fld.astField.Names) != 1 {
			fix = nil // a shared declaration can't take a per-field tag
		}
		pass.ReportFix(at.Pos(), fix, "config key %q assigns field %s, which has no conf tag", key, fld.name)
	case tag != key:
		var fix *analysis.SuggestedFix
		if fld.astField.Tag != nil && len(fld.astField.Names) == 1 {
			newTag := rewriteConfTag(fld.tag, key)
			fix = &analysis.SuggestedFix{
				Message: "rewrite the conf tag to " + strconv.Quote(key),
				Edits:   []analysis.TextEdit{pass.Edit(fld.astField.Tag.Pos(), fld.astField.Tag.End(), "`" + newTag + "`")},
			}
		}
		pass.ReportFix(at.Pos(), fix, "config key %q assigns field %s, whose conf tag says %q", key, fld.name, tag)
	}
}

// confField is one struct field of the parser's receiver with its
// declaration site (when the struct is declared in the loaded files).
type confField struct {
	name     string
	tag      string
	pos      token.Pos
	astField *ast.Field
}

type recvStruct struct {
	obj    *types.TypeName
	st     *types.Struct
	fields []*confField
	byName map[string]*confField
}

// receiverStruct resolves the method receiver to its struct type and
// collects the fields, pairing each with its AST declaration.
func receiverStruct(pass *analysis.Pass, fd *ast.FuncDecl) *recvStruct {
	if len(fd.Recv.List) == 0 {
		return nil
	}
	t := pass.TypeOf(fd.Recv.List[0].Type)
	if t == nil {
		return nil
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	st, ok := named.Underlying().(*types.Struct)
	if !ok {
		return nil
	}
	rs := &recvStruct{obj: named.Obj(), st: st, byName: map[string]*confField{}}
	astFields := structDeclFields(pass, named.Obj())
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		cf := &confField{name: f.Name(), tag: st.Tag(i), pos: f.Pos(), astField: astFields[f.Name()]}
		rs.fields = append(rs.fields, cf)
		rs.byName[f.Name()] = cf
	}
	return rs
}

// structDeclFields maps field name to *ast.Field for the named struct's
// declaration in the loaded files, or an empty map.
func structDeclFields(pass *analysis.Pass, obj *types.TypeName) map[string]*ast.Field {
	out := map[string]*ast.Field{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok || pass.Info.Defs[ts.Name] != obj {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return false
			}
			for _, fld := range st.Fields.List {
				for _, name := range fld.Names {
					out[name.Name] = fld
				}
			}
			return false
		})
	}
	return out
}

// findSwitchOn locates the switch statement whose tag is the given
// parameter (possibly wrapped in a call like strings.ToLower(key)).
func findSwitchOn(pass *analysis.Pass, body *ast.BlockStmt, keyParam types.Object) *ast.SwitchStmt {
	var found *ast.SwitchStmt
	ast.Inspect(body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		sw, ok := n.(*ast.SwitchStmt)
		if !ok || sw.Tag == nil {
			return true
		}
		if usesObject(pass, sw.Tag, keyParam) {
			found = sw
			return false
		}
		return true
	})
	return found
}

// usesObject reports whether the expression mentions the object.
func usesObject(pass *analysis.Pass, e ast.Expr, obj types.Object) bool {
	used := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.Info.Uses[id] == obj {
			used = true
		}
		return !used
	})
	return used
}

// firstAssignedField finds the first receiver field a case body
// assigns (directly or via a selection on the receiver), resolved
// through types.Selections so embedded shapes work too.
func firstAssignedField(pass *analysis.Pass, body []ast.Stmt, recv *recvStruct) *confField {
	var found *confField
	for _, stmt := range body {
		ast.Inspect(stmt, func(n ast.Node) bool {
			if found != nil {
				return false
			}
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for _, lhs := range as.Lhs {
				sel, ok := stripParens(lhs).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				selInfo, ok := pass.Info.Selections[sel]
				if !ok {
					continue
				}
				fieldVar, ok := selInfo.Obj().(*types.Var)
				if !ok || !fieldVar.IsField() {
					continue
				}
				if cf, ok := recv.byName[fieldVar.Name()]; ok && cf.pos == fieldVar.Pos() {
					found = cf
					return false
				}
			}
			return true
		})
		if found != nil {
			break
		}
	}
	return found
}

// stringLitValue extracts the constant string value of a case
// expression (literal or named constant).
func stringLitValue(pass *analysis.Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

// confTag extracts the conf key from a raw struct tag.
func confTag(raw string) string {
	return reflect.StructTag(raw).Get("conf")
}

// rewriteConfTag replaces (or appends) the conf key inside a raw tag
// string, preserving any other tags.
func rewriteConfTag(raw, key string) string {
	parts := strings.Fields(raw)
	out := make([]string, 0, len(parts)+1)
	replaced := false
	for _, p := range parts {
		if strings.HasPrefix(p, "conf:") {
			out = append(out, "conf:"+strconv.Quote(key))
			replaced = true
		} else {
			out = append(out, p)
		}
	}
	if !replaced {
		out = append(out, "conf:"+strconv.Quote(key))
	}
	return strings.Join(out, " ")
}
