package analyzers

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"goear/internal/analysis"
)

// PolicyReg checks the policy plugin registry for completeness and
// config round-tripping. The registry mirrors EAR's dlopen plugin
// table: every concrete Policy implementation must be constructed by
// exactly one Register factory, registered under a declared name
// constant (never a bare literal), and that name must survive a trip
// through earconf parsing — the AuthorizedPolicies list is split on
// commas and trimmed, so a name with commas, spaces or uppercase would
// silently never match what a job requests.
var PolicyReg = &analysis.Analyzer{
	Name: "policyreg",
	Doc: "require every Policy implementation to be registered exactly once under a " +
		"declared name constant whose value round-trips config parsing " +
		"(lowercase [a-z0-9_]+, unique across the registry)",
	Scope: []string{"internal/policy"},
	Run:   runPolicyReg,
}

func runPolicyReg(pass *analysis.Pass) error {
	scope := pass.Pkg.Scope()
	ifaceObj, _ := scope.Lookup("Policy").(*types.TypeName)
	regObj, _ := scope.Lookup("Register").(*types.Func)
	if ifaceObj == nil || regObj == nil {
		return nil // not a registry-shaped package
	}
	iface, ok := ifaceObj.Type().Underlying().(*types.Interface)
	if !ok {
		return nil
	}

	// Pass 1: collect Register calls — which constants name them and
	// which concrete types their factories return.
	regCount := map[types.Object][]*ast.CallExpr{} // name constant -> calls
	valueOwner := map[string]types.Object{}        // name value -> first constant
	registered := map[*types.TypeName]bool{}       // concrete types a factory returns
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) < 2 {
				return true
			}
			id, ok := stripParens(call.Fun).(*ast.Ident)
			if !ok || pass.Info.Uses[id] != regObj {
				return true
			}
			checkRegisterName(pass, call, regCount, valueOwner)
			for _, tn := range factoryReturnTypes(pass, call.Args[1]) {
				registered[tn] = true
			}
			return true
		})
	}

	// Exactly-once: a constant registered under two calls is a
	// duplicate registration (it would panic at init in production,
	// but the analyzer catches it before any test runs).
	for obj, calls := range regCount {
		for _, call := range calls[1:] {
			pass.Reportf(call.Pos(), "policy name %s is registered %d times, want exactly once", obj.Name(), len(calls))
		}
	}

	// Completeness: every package-level concrete type implementing
	// Policy must be returned by some factory. Decorators — types that
	// embed the Policy interface to wrap another policy — are exempt.
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn == ifaceObj || tn.IsAlias() {
			continue
		}
		if _, isIface := tn.Type().Underlying().(*types.Interface); isIface {
			continue
		}
		if !types.Implements(tn.Type(), iface) && !types.Implements(types.NewPointer(tn.Type()), iface) {
			continue
		}
		if embedsInterface(tn.Type(), ifaceObj) {
			continue
		}
		if !registered[tn] {
			pass.Reportf(tn.Pos(), "%s implements Policy but no Register factory returns it", tn.Name())
		}
	}
	return nil
}

// checkRegisterName validates the name argument of one Register call:
// it must be a declared package-level string constant, its value must
// round-trip config parsing, and no two constants may collide.
func checkRegisterName(pass *analysis.Pass, call *ast.CallExpr, regCount map[types.Object][]*ast.CallExpr, valueOwner map[string]types.Object) {
	arg := stripParens(call.Args[0])
	id, ok := arg.(*ast.Ident)
	if !ok {
		pass.Reportf(arg.Pos(), "Register must be called with a declared name constant, not an expression")
		return
	}
	obj, ok := pass.Info.Uses[id].(*types.Const)
	if !ok {
		pass.Reportf(arg.Pos(), "Register must be called with a declared name constant, not %s", id.Name)
		return
	}
	regCount[obj] = append(regCount[obj], call)
	if len(regCount[obj]) > 1 {
		return // duplicate reported by the caller; validate once
	}
	if obj.Val().Kind() != constant.String {
		return
	}
	val := constant.StringVal(obj.Val())
	if owner, dup := valueOwner[val]; dup {
		pass.Reportf(arg.Pos(), "policy name constants %s and %s share the value %q", owner.Name(), obj.Name(), val)
	} else {
		valueOwner[val] = obj
	}
	if !roundTrips(val) {
		pass.ReportFix(arg.Pos(), nameConstFix(pass, obj, val),
			"policy name %q does not round-trip config parsing (want ^[a-z0-9_]+$ so AuthorizedPolicies lists survive split and trim)", val)
	}
}

// roundTrips reports whether a registry name survives earconf parsing
// unchanged: non-empty, lowercase word characters only.
func roundTrips(name string) bool {
	if name == "" {
		return false
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '_':
		default:
			return false
		}
	}
	return true
}

// sanitizeName rewrites a registry name to its round-tripping form:
// lowercased, runs of separators collapsed to underscores, everything
// else dropped.
func sanitizeName(name string) string {
	var b strings.Builder
	pendingSep := false
	for _, r := range strings.ToLower(name) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			if pendingSep && b.Len() > 0 {
				b.WriteByte('_')
			}
			pendingSep = false
			b.WriteRune(r)
		case r == '_', r == '-', r == ' ', r == ',', r == '.':
			pendingSep = true
		}
	}
	return b.String()
}

// nameConstFix rewrites the constant's string literal to the sanitized
// name, when the declaration is a plain literal in this package and
// the sanitized form is usable.
func nameConstFix(pass *analysis.Pass, obj types.Object, val string) *analysis.SuggestedFix {
	clean := sanitizeName(val)
	if clean == "" || clean == val {
		return nil
	}
	lit := constLiteral(pass, obj)
	if lit == nil {
		return nil
	}
	return &analysis.SuggestedFix{
		Message: "rewrite the name constant to " + strconv.Quote(clean),
		Edits:   []analysis.TextEdit{pass.Edit(lit.Pos(), lit.End(), strconv.Quote(clean))},
	}
}

// constLiteral finds the basic literal initialising the constant's
// declaration, or nil (computed constants, other files not loaded).
func constLiteral(pass *analysis.Pass, obj types.Object) *ast.BasicLit {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if pass.Info.Defs[name] != obj || i >= len(vs.Values) {
						continue
					}
					if lit, ok := stripParens(vs.Values[i]).(*ast.BasicLit); ok {
						return lit
					}
				}
			}
		}
	}
	return nil
}

// factoryReturnTypes resolves the concrete package-level named types a
// Register factory returns: function literals are scanned directly,
// identifiers of package functions through their declarations.
func factoryReturnTypes(pass *analysis.Pass, factory ast.Expr) []*types.TypeName {
	var body *ast.BlockStmt
	switch fn := stripParens(factory).(type) {
	case *ast.FuncLit:
		body = fn.Body
	case *ast.Ident:
		obj, ok := pass.Info.Uses[fn].(*types.Func)
		if !ok {
			return nil
		}
		body = funcDeclBody(pass, obj)
	}
	if body == nil {
		return nil
	}
	var out []*types.TypeName
	ast.Inspect(body, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false // nested closures return something else
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok || len(ret.Results) == 0 {
			return true
		}
		t := pass.TypeOf(ret.Results[0])
		if t == nil {
			return true
		}
		if p, ok := t.Underlying().(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok && named.Obj().Pkg() == pass.Pkg {
			out = append(out, named.Obj())
		}
		return true
	})
	return out
}

// funcDeclBody finds the body of a package-level function.
func funcDeclBody(pass *analysis.Pass, obj *types.Func) *ast.BlockStmt {
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && pass.Info.Defs[fd.Name] == obj {
				return fd.Body
			}
		}
	}
	return nil
}

// embedsInterface reports whether the struct type embeds the given
// interface — the decorator pattern (e.g. an instrumented wrapper),
// which implements Policy by construction and is never registered.
func embedsInterface(t types.Type, iface *types.TypeName) bool {
	st := structUnder(t)
	if st == nil {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Embedded() && types.Identical(f.Type(), iface.Type()) {
			return true
		}
	}
	return false
}
