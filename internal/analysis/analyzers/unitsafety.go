package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"goear/internal/analysis"
)

// UnitSafety enforces dimensional discipline on the internal/units
// quantity types (Freq, Power, Energy, Seconds). The types are all
// float64 underneath, so Go's checker happily permits conversions that
// are dimensional nonsense — units.Freq(somePower) compiles. This
// analyzer rejects:
//
//   - conversions from one unit kind directly to another,
//   - products and quotients of two non-constant values of the same
//     kind (Freq·Freq is Hz², Freq/Freq is a dimensionless ratio —
//     neither is a Freq),
//   - raw non-zero numeric literals added to, subtracted from,
//     compared against, or passed where a unit value is expected
//     (write 2.4*units.GHz, not 2.4e9).
//
// Scaling by untyped constants (2 * f, f / 2) stays legal, as do the
// canonical constructions value*unit-constant.
var UnitSafety = &analysis.Analyzer{
	Name: "unitsafety",
	Doc: "flag cross-kind conversions between internal/units quantities, same-kind " +
		"products/quotients, and raw numeric literals used where a unit value is expected",
	Run: runUnitSafety,
}

// unitKindOf returns the quantity name ("Freq", "Power", ...) when t
// is a named numeric type declared in an internal/units package.
func unitKindOf(t types.Type) (string, bool) {
	named, ok := t.(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !analysis.PathMatches(obj.Pkg().Path(), "internal/units") {
		return "", false
	}
	b, ok := named.Underlying().(*types.Basic)
	if !ok || b.Info()&types.IsNumeric == 0 {
		return "", false
	}
	return obj.Name(), true
}

func runUnitSafety(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkUnitConversion(pass, n)
				checkUnitArgs(pass, n)
			case *ast.BinaryExpr:
				checkUnitBinary(pass, n)
			case *ast.CompositeLit:
				checkUnitComposite(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkUnitConversion flags T(x) where T and x are different unit
// kinds: laundering a Power into a Freq through a conversion defeats
// the whole point of the quantity types.
func checkUnitConversion(pass *analysis.Pass, call *ast.CallExpr) {
	tv, ok := pass.Info.Types[call.Fun]
	if !ok || !tv.IsType() || len(call.Args) != 1 {
		return
	}
	dst, ok := unitKindOf(tv.Type)
	if !ok {
		return
	}
	srcType := pass.TypeOf(call.Args[0])
	if srcType == nil {
		return
	}
	src, ok := unitKindOf(srcType)
	if !ok || src == dst {
		return
	}
	pass.Reportf(call.Pos(), "conversion from units.%s to units.%s mixes dimensions; convert through an explicit physical relation instead", src, dst)
}

// checkUnitBinary flags same-kind products/quotients and raw literals
// in additive or comparison positions.
func checkUnitBinary(pass *analysis.Pass, bin *ast.BinaryExpr) {
	xt, yt := pass.TypeOf(bin.X), pass.TypeOf(bin.Y)
	if xt == nil || yt == nil {
		return
	}
	xk, xok := unitKindOf(xt)
	yk, yok := unitKindOf(yt)

	switch bin.Op {
	case token.MUL, token.QUO:
		// value * unit-constant (2.4 * GHz) and scaling by untyped
		// constants are the sanctioned idioms, so only flag when both
		// operands are non-constant unit values of the same kind.
		if xok && yok && xk == yk &&
			!isConstExpr(pass.Info, bin.X) && !isConstExpr(pass.Info, bin.Y) {
			what := "units." + xk + "²"
			if bin.Op == token.QUO {
				what = "a dimensionless ratio"
			}
			pass.Reportf(bin.OpPos, "%s of two units.%s values yields %s, not a units.%s; convert to float64 for the arithmetic", opName(bin.Op), xk, what, xk)
		}
	case token.ADD, token.SUB, token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
		// An untyped literal next to a unit value is implicitly
		// converted, so the checker records it with the unit type too;
		// test the syntax, not the recorded kind.
		if xok {
			reportRawLiteral(pass, bin.Y, xk)
		}
		if yok {
			reportRawLiteral(pass, bin.X, yk)
		}
	}
}

func opName(op token.Token) string {
	if op == token.QUO {
		return "quotient"
	}
	return "product"
}

// reportRawLiteral flags e when it is a bare non-zero numeric literal
// standing in for a unit value.
func reportRawLiteral(pass *analysis.Pass, e ast.Expr, kind string) {
	isLit, isZero := numericLiteral(pass.Info, e)
	if !isLit || isZero {
		return
	}
	pass.Reportf(e.Pos(), "raw numeric literal used as a units.%s; spell the quantity with a unit constant (e.g. 2.4*units.GHz, 300*units.Watt)", kind)
}

// checkUnitArgs flags raw literals passed to parameters of unit type.
func checkUnitArgs(pass *analysis.Pass, call *ast.CallExpr) {
	tv, ok := pass.Info.Types[call.Fun]
	if !ok || tv.IsType() {
		return // conversions are handled by checkUnitConversion
	}
	sig, ok := tv.Type.(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if s, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil {
			continue
		}
		if kind, ok := unitKindOf(pt); ok {
			reportRawLiteral(pass, arg, kind)
		}
	}
}

// checkUnitComposite flags raw literals assigned to struct fields (or
// slice/array/map elements) of unit type inside composite literals.
func checkUnitComposite(pass *analysis.Pass, lit *ast.CompositeLit) {
	lt := pass.TypeOf(lit)
	if lt == nil {
		return
	}
	switch u := lt.Underlying().(type) {
	case *types.Struct:
		fieldByName := map[string]types.Type{}
		for i := 0; i < u.NumFields(); i++ {
			fieldByName[u.Field(i).Name()] = u.Field(i).Type()
		}
		for i, el := range lit.Elts {
			var ft types.Type
			val := el
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				if key, ok := kv.Key.(*ast.Ident); ok {
					ft = fieldByName[key.Name]
				}
				val = kv.Value
			} else if i < u.NumFields() {
				ft = u.Field(i).Type()
			}
			if ft == nil {
				continue
			}
			if kind, ok := unitKindOf(ft); ok {
				reportRawLiteral(pass, val, kind)
			}
		}
	case *types.Slice, *types.Array, *types.Map:
		var et types.Type
		switch uu := u.(type) {
		case *types.Slice:
			et = uu.Elem()
		case *types.Array:
			et = uu.Elem()
		case *types.Map:
			et = uu.Elem()
		}
		kind, ok := unitKindOf(et)
		if !ok {
			return
		}
		for _, el := range lit.Elts {
			val := el
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				val = kv.Value
			}
			reportRawLiteral(pass, val, kind)
		}
	}
}
