package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestApplyEdits(t *testing.T) {
	src := []byte("hello cruel world\n")
	cases := []struct {
		name  string
		edits []TextEdit
		want  string
		err   bool
	}{
		{name: "none", want: "hello cruel world\n"},
		{name: "replace", edits: []TextEdit{{Start: 6, End: 11, NewText: "kind"}}, want: "hello kind world\n"},
		{name: "delete", edits: []TextEdit{{Start: 5, End: 11, NewText: ""}}, want: "hello world\n"},
		{name: "insert", edits: []TextEdit{{Start: 5, End: 5, NewText: ","}}, want: "hello, cruel world\n"},
		{
			name: "unsorted pair applies in offset order",
			edits: []TextEdit{
				{Start: 12, End: 17, NewText: "moon"},
				{Start: 0, End: 5, NewText: "bye"},
			},
			want: "bye cruel moon\n",
		},
		{
			name: "same-point insertions keep given order",
			edits: []TextEdit{
				{Start: 5, End: 5, NewText: "A"},
				{Start: 5, End: 5, NewText: "B"},
			},
			want: "helloAB cruel world\n",
		},
		{
			name: "overlap",
			edits: []TextEdit{
				{Start: 0, End: 7, NewText: "x"},
				{Start: 6, End: 11, NewText: "y"},
			},
			err: true,
		},
		{name: "out of range", edits: []TextEdit{{Start: 10, End: 99, NewText: ""}}, err: true},
		{name: "negative", edits: []TextEdit{{Start: -1, End: 2, NewText: ""}}, err: true},
		{name: "inverted", edits: []TextEdit{{Start: 5, End: 3, NewText: ""}}, err: true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got, err := ApplyEdits(src, c.edits)
			if c.err {
				if err == nil {
					t.Fatalf("ApplyEdits = %q, want error", got)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != c.want {
				t.Errorf("ApplyEdits = %q, want %q", got, c.want)
			}
		})
	}
}

func TestApplyEditsDoesNotMutateInput(t *testing.T) {
	src := []byte("abcdef")
	edits := []TextEdit{{Start: 3, End: 3, NewText: "X"}, {Start: 1, End: 2, NewText: "Y"}}
	if _, err := ApplyEdits(src, edits); err != nil {
		t.Fatal(err)
	}
	if string(src) != "abcdef" {
		t.Errorf("source mutated: %q", src)
	}
	if edits[0].Start != 3 || edits[1].Start != 1 {
		t.Errorf("edit slice reordered in place: %+v", edits)
	}
}

// planDiags builds diagnostics over an in-memory file set for
// PlanFixes tests.
func planDiags(file string, fixes ...*SuggestedFix) []Diagnostic {
	out := make([]Diagnostic, len(fixes))
	for i, f := range fixes {
		out[i] = Diagnostic{Analyzer: "synthetic", File: file, Line: i + 1, Message: "finding", Fix: f}
	}
	return out
}

func TestPlanFixes(t *testing.T) {
	src := "package p\n\nfunc f() int { return  1 }\n"
	read := func(string) ([]byte, error) { return []byte(src), nil }

	// Two compatible fixes: rename f and tighten the double space.
	fAt := strings.Index(src, "f()")
	spAt := strings.Index(src, "  1")
	fix1 := &SuggestedFix{Message: "rename", Edits: []TextEdit{{File: "p.go", Start: fAt, End: fAt + 1, NewText: "g"}}}
	fix2 := &SuggestedFix{Message: "respace", Edits: []TextEdit{{File: "p.go", Start: spAt, End: spAt + 2, NewText: " "}}}
	plan, err := PlanFixes(planDiags("p.go", fix1, fix2), read)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != 1 || plan[0].Path != "p.go" {
		t.Fatalf("plan = %+v", plan)
	}
	f := plan[0]
	if len(f.Applied) != 2 || len(f.Skipped) != 0 {
		t.Fatalf("applied %d skipped %d", len(f.Applied), len(f.Skipped))
	}
	want := "package p\n\nfunc g() int { return 1 }\n"
	if string(f.Fixed) != want {
		t.Errorf("fixed = %q, want %q", f.Fixed, want)
	}
	if !f.Changed() {
		t.Error("Changed() = false on a changed file")
	}

	// A conflicting second fix is skipped whole, first wins.
	conflict := &SuggestedFix{Message: "also rename", Edits: []TextEdit{{File: "p.go", Start: fAt, End: fAt + 1, NewText: "h"}}}
	plan, err = PlanFixes(planDiags("p.go", fix1, conflict), read)
	if err != nil {
		t.Fatal(err)
	}
	f = plan[0]
	if len(f.Applied) != 1 || len(f.Skipped) != 1 {
		t.Fatalf("applied %d skipped %d, want 1/1", len(f.Applied), len(f.Skipped))
	}
	if !strings.Contains(string(f.Fixed), "func g()") {
		t.Errorf("first fix lost: %q", f.Fixed)
	}

	// A fix producing unparseable Go is an error, not silent damage.
	breaker := &SuggestedFix{Message: "break", Edits: []TextEdit{{File: "p.go", Start: 0, End: 9, NewText: "pack age"}}}
	if _, err := PlanFixes(planDiags("p.go", breaker), read); err == nil {
		t.Error("expected error for unparseable fixed source")
	}
}

func TestPlanFixesGofmtsResult(t *testing.T) {
	src := "package p\n\nfunc f() {\n\tfor range []int{} {\n\t}\n}\n"
	read := func(string) ([]byte, error) { return []byte(src), nil }
	// Insert an unindented statement after the loop; the plan gofmts it.
	at := strings.Index(src, "}\n}") + 1
	fix := &SuggestedFix{Message: "insert", Edits: []TextEdit{{File: "p.go", Start: at, End: at, NewText: "\nprintln(1)"}}}
	plan, err := PlanFixes(planDiags("p.go", fix), read)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(plan[0].Fixed), "\n\tprintln(1)\n") {
		t.Errorf("insertion not reindented:\n%s", plan[0].Fixed)
	}
}

func TestWriteFixes(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "w.go")
	if err := os.WriteFile(path, []byte("package w\n"), 0o600); err != nil {
		t.Fatal(err)
	}
	plan := []*FileFix{{Path: path, Orig: []byte("package w\n"), Fixed: []byte("package w2\n")}}
	if err := WriteFixes(plan); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "package w2\n" {
		t.Errorf("written = %q", got)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Mode().Perm() != 0o600 {
		t.Errorf("mode = %v, want preserved 0600", info.Mode().Perm())
	}
}

func TestUnifiedDiff(t *testing.T) {
	a := []byte("l1\nl2\nl3\nl4\nl5\nl6\nl7\n")
	b := []byte("l1\nl2\nl3\nl4x\nl5\nl6\nl7\n")
	d := UnifiedDiff("f.go", a, b)
	for _, want := range []string{"--- a/f.go\n", "+++ b/f.go\n", "-l4\n", "+l4x\n", " l3\n", " l5\n", "@@ -1,7 +1,7 @@"} {
		if !strings.Contains(d, want) {
			t.Errorf("diff is missing %q:\n%s", want, d)
		}
	}
	if UnifiedDiff("f.go", a, a) != "" {
		t.Error("identical contents must diff empty")
	}

	// Pure insertion and missing trailing newline both stay textual.
	d = UnifiedDiff("g", []byte("a\n"), []byte("a\nb"))
	if !strings.Contains(d, "+b\n\\ No newline at end of file\n") {
		t.Errorf("no-newline marker missing:\n%s", d)
	}
}
