package analysis

import (
	"testing"
)

// FuzzApplyEdits pins the applier's safety contract: arbitrary edit
// lists never panic, and whenever the inputs are valid UTF-8 the
// output is too (source files in, source files out). Accepted edits
// must also splice to the arithmetically right length.
func FuzzApplyEdits(f *testing.F) {
	f.Add([]byte("package p\n"), 0, 7, "q", 8, 9, "r")
	f.Add([]byte("hello"), 1, 3, "", 3, 3, "xyz")
	f.Add([]byte(""), 0, 0, "a", 0, 0, "b")
	f.Add([]byte("abc"), -5, 99, "x", 2, 1, "y")
	f.Fuzz(func(t *testing.T, src []byte, s1, e1 int, t1 string, s2, e2 int, t2 string) {
		edits := []TextEdit{
			{File: "f", Start: s1, End: e1, NewText: t1},
			{File: "f", Start: s2, End: e2, NewText: t2},
		}
		out, err := ApplyEdits(src, edits)
		if err != nil {
			return
		}
		wantLen := len(src) + len(t1) - (e1 - s1) + len(t2) - (e2 - s2)
		if len(out) != wantLen {
			t.Fatalf("spliced length %d, want %d", len(out), wantLen)
		}
		if ValidUTF8(src) && ValidUTF8([]byte(t1)) && ValidUTF8([]byte(t2)) && !ValidUTF8(out) {
			t.Fatalf("valid UTF-8 inputs produced invalid UTF-8 output: %q", out)
		}
		// Applying no edits must be the identity.
		same, err := ApplyEdits(src, nil)
		if err != nil || string(same) != string(src) {
			t.Fatalf("empty edit list: %q, %v", same, err)
		}
	})
}
