package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// ignoreDirective is the comment prefix that suppresses findings.
// The directive must be followed by a free-text reason:
//
//	//goearvet:ignore reason the violation is intentional
//
// A directive suppresses findings on its own line (trailing-comment
// form) and on the line directly below it (own-line form). The reason
// is mandatory so suppressions stay auditable.
const ignoreDirective = "//goearvet:ignore"

// ignoreSet is the per-package index of suppression directives.
type ignoreSet struct {
	// lines maps file name -> set of suppressed line numbers.
	lines map[string]map[int]bool
	// malformed collects directives without a reason, reported as
	// findings of the pseudo-analyzer "ignore".
	malformed []Diagnostic
}

func (s *ignoreSet) suppressed(d Diagnostic) bool {
	return s.lines[d.File][d.Line]
}

// collectIgnores scans the comments of every file for ignore
// directives.
func collectIgnores(fset *token.FileSet, files []*ast.File) *ignoreSet {
	s := &ignoreSet{lines: map[string]map[int]bool{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignoreDirective) {
					continue
				}
				rest := c.Text[len(ignoreDirective):]
				pos := fset.Position(c.Slash)
				if !strings.HasPrefix(rest, " ") || strings.TrimSpace(rest) == "" {
					s.malformed = append(s.malformed, Diagnostic{
						Analyzer: "ignore",
						File:     pos.Filename,
						Line:     pos.Line,
						Col:      pos.Column,
						Message:  "goearvet:ignore directive needs a reason: //goearvet:ignore <why>",
					})
					continue
				}
				m := s.lines[pos.Filename]
				if m == nil {
					m = map[int]bool{}
					s.lines[pos.Filename] = m
				}
				m[pos.Line] = true
				m[pos.Line+1] = true
			}
		}
	}
	return s
}
