// Package dbdtest is a goearvet test fixture loaded under the import
// path "fix/internal/loadgen" so the fixture analyzer treats it as a
// test-helper package. It imports the real wire and eardbd packages;
// the // want comments are golden expectations consumed by the
// analyzer tests.
package dbdtest

import (
	"encoding/json"
	"fmt"

	"goear/internal/accounting"
	"goear/internal/eardbd"
	"goear/internal/wire"
)

// badFrame hand-rolls a frame, bypassing the versioned encoder.
func badFrame(payload []byte) wire.Frame {
	return wire.Frame{Type: wire.TypeBatch, Payload: payload} // want `wire\.Frame composite literal in a fixture helper`
}

// goodFrame goes through the constructor.
func goodFrame(b wire.Batch) (wire.Frame, error) {
	return wire.EncodeBatch(b)
}

// badSprintfID re-derives the batch-ID format; the import of eardbd is
// present, so the finding carries a fix rewriting to eardbd.BatchID.
func badSprintfID(node string, seq uint64) wire.Batch {
	return wire.Batch{
		ID:   fmt.Sprintf("%s/%d", node, seq), // want `batch ID assembled with fmt\.Sprintf`
		Node: node,
	}
}

// badSprintfShape uses Sprintf with the wrong verb shape: still
// flagged, but with no mechanical rewrite.
func badSprintfShape(node string, seq uint64) wire.Batch {
	return wire.Batch{
		ID:   fmt.Sprintf("%s-%d", node, seq), // want `batch ID assembled with fmt\.Sprintf`
		Node: node,
	}
}

// goodID builds the ID through the one owner of the format.
func goodID(node string, seq uint64) wire.Batch {
	return wire.Batch{ID: eardbd.BatchID(node, seq), Node: node}
}

// badMarshal hand-marshals a batch the way a spill entry would be
// written, bypassing the Journal codec.
func badMarshal(b wire.Batch) ([]byte, error) {
	return json.Marshal(b) // want `json-marshalling a wire\.Batch by hand`
}

// badMarshalIndent is the pretty-printed variant of the same mistake.
func badMarshalIndent(b *wire.Batch) ([]byte, error) {
	return json.MarshalIndent(b, "", "  ") // want `json-marshalling a wire\.Batch by hand`
}

// goodMarshal of a non-wire type is fine.
func goodMarshal(v map[string]int) ([]byte, error) {
	return json.Marshal(v)
}

// badRecord hand-rolls a job energy record: the codec version field is
// unset (or worse, a stale constant), so the fixture rots silently
// when the accounting codec is bumped.
func badRecord(node string) accounting.Record {
	return accounting.Record{JobID: "j1", StepID: "0", User: "alice", Node: node} // want `accounting\.Record composite literal in a fixture helper`
}

// goodRecord builds the record through the versioned constructor,
// which stamps CodecVersion and validates every field.
func goodRecord(node string) (accounting.Record, error) {
	return accounting.NewRecord(
		accounting.Meta{JobID: "j1", StepID: "0", User: "alice"},
		accounting.Window{Node: node, EndSec: 120},
		accounting.Energy{PkgJ: 1000, DramJ: 100, UncoreJ: 50, NodeJ: 1200},
		accounting.Rates{AvgCPUGHz: 2.1, AvgIMCGHz: 2.4},
	)
}
