// Package sim is a goearvet test fixture. It is loaded under the
// import path "fix/internal/sim" so the determinism analyzer treats
// it as simulation code. The // want comments are golden
// expectations consumed by the analyzer tests.
package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

func badClock() float64 {
	t := time.Now()   // want `time\.Now reads the wall clock`
	_ = time.Since(t) // want `time\.Since reads the wall clock`
	return 0
}

func badGlobalRand() int {
	return rand.Intn(10) // want `math/rand\.Intn draws from the shared global generator`
}

func badGlobalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `math/rand\.Shuffle draws from the shared global generator`
}

// goodSeededRand is the sanctioned path: explicit seed, private
// generator.
func goodSeededRand(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}

func badMapAppend(m map[string]int) []string {
	var out []string
	for k := range m { // want `map iteration order is randomized but this loop appends to a slice`
		out = append(out, k)
	}
	return out
}

// goodCollectThenSort appends in map order but sorts before the slice
// escapes: deterministic, not flagged.
func goodCollectThenSort(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// goodAggregate only folds the values; order-neutral.
func goodAggregate(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

func badMapPrint(m map[string]int) {
	for k, v := range m { // want `map iteration order is randomized but this loop writes output via fmt\.Printf`
		fmt.Printf("%s=%d\n", k, v)
	}
}

// ignoredClock shows line-level suppression: the directive carries a
// reason and the finding below it is dropped.
func ignoredClock() int64 {
	//goearvet:ignore fixture demonstrates suppression
	return time.Now().UnixNano()
}

func trailingIgnore() int64 {
	return time.Now().UnixNano() //goearvet:ignore trailing-comment form of suppression
}
