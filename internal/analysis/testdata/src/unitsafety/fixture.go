// Package unitsafety is a goearvet test fixture exercising the
// dimensional checks over the real goear/internal/units types.
package unitsafety

import "goear/internal/units"

// mixedAdd launders a Power into a Freq to make the addition
// compile — the seeded mixed-unit violation.
func mixedAdd(f units.Freq, p units.Power) units.Freq {
	return f + units.Freq(p) // want `conversion from units\.Power to units\.Freq mixes dimensions`
}

func squared(a, b units.Freq) units.Freq {
	return a * b // want `product of two units\.Freq values yields units\.Freq²`
}

func dimensionlessRatio(a, b units.Freq) units.Freq {
	return a / b // want `quotient of two units\.Freq values yields a dimensionless ratio`
}

// goodRatio does the arithmetic on float64 and is clean.
func goodRatio(a, b units.Freq) float64 {
	return float64(a) / float64(b)
}

// goodScaling by untyped constants stays legal.
func goodScaling(f units.Freq) units.Freq {
	return 2 * f / 4
}

// goodConstruction is the canonical value-times-unit-constant idiom.
func goodConstruction() units.Freq {
	return 2.4 * units.GHz
}

func rawLiteralAdd(f units.Freq) units.Freq {
	return f + 2.4e9 // want `raw numeric literal used as a units\.Freq`
}

func rawLiteralCompare(p units.Power) bool {
	return p > 300 // want `raw numeric literal used as a units\.Power`
}

// zero literals are always fine.
func zeroCompare(p units.Power) bool {
	return p > 0
}

func takesFreq(units.Freq) {}

func rawLiteralArg() {
	takesFreq(2400000000) // want `raw numeric literal used as a units\.Freq`
	takesFreq(0)
	takesFreq(2400 * units.MHz)
}

type nodeConfig struct {
	Nominal units.Freq
	Budget  units.Power
}

func rawLiteralField() nodeConfig {
	return nodeConfig{
		Nominal: 2.1e9, // want `raw numeric literal used as a units\.Freq`
		Budget:  300 * units.Watt,
	}
}

func rawLiteralSlice() []units.Power {
	return []units.Power{
		250 * units.Watt,
		42500, // want `raw numeric literal used as a units\.Power`
	}
}
