// Package errs is a goearvet test fixture for the errcheck analyzer,
// loaded under "fix/internal/errs".
package errs

import (
	"fmt"
	"os"
	"strings"
)

func fallible() error { return nil }

func fallibleVal() (int, error) { return 0, nil }

func dropped() {
	fallible()       // want `result of fallible includes an error that is dropped`
	fallibleVal()    // want `result of fallibleVal includes an error that is dropped`
	defer fallible() // want `result of fallible includes an error that is dropped`
}

func droppedInGoroutine() {
	go fallible() // want `result of fallible includes an error that is dropped`
}

func handled() error {
	if err := fallible(); err != nil {
		return err
	}
	_ = fallible() // explicit discard is the sanctioned spelling
	v, _ := fallibleVal()
	_ = v
	return nil
}

// exemptWrites: fmt into Builder/Buffer cannot fail, console printing
// is best-effort.
func exemptWrites() string {
	var b strings.Builder
	fmt.Fprintf(&b, "x=%d", 1)
	b.WriteString("ok")
	fmt.Println("done")
	return b.String()
}

func nonExemptWriter(f *os.File) {
	fmt.Fprintf(f, "x=%d", 1) // want `result of fmt\.Fprintf includes an error that is dropped`
}

func ignored() {
	fallible() //goearvet:ignore fixture demonstrates suppression
}
