// Package policy is a goearvet test fixture loaded under the import
// path "fix/internal/policy", a self-contained miniature of the real
// policy registry. The // want comments are golden expectations
// consumed by the analyzer tests.
package policy

// Policy is the plugin surface, as in the real package.
type Policy interface {
	Apply(load float64) float64
}

// Factory builds a policy instance.
type Factory func() Policy

var registry = map[string]Factory{}

// Register installs a factory under a name.
func Register(name string, f Factory) {
	if _, dup := registry[name]; dup {
		panic("policy: duplicate " + name)
	}
	registry[name] = f
}

// Registry names. BadName breaks the config round-trip contract and
// carries a suggested fix; AliasName collides with Monitoring's value.
const (
	Monitoring = "monitoring"
	MinEnergy  = "min_energy"
	BadName    = "Min-Time"
	AliasName  = "monitoring"
)

type monitoring struct{}

func (monitoring) Apply(l float64) float64 { return l }

type minEnergy struct{ budget float64 }

func (*minEnergy) Apply(l float64) float64 { return l * 0.9 }

type minTime struct{}

func (minTime) Apply(l float64) float64 { return l * 1.1 }

// orphan implements Policy but no factory ever returns it.
type orphan struct{} // want `orphan implements Policy but no Register factory returns it`

func (orphan) Apply(l float64) float64 { return l }

// decorated is the decorator shape: it embeds the Policy interface to
// wrap another policy, so it is exempt from the registration check.
type decorated struct {
	Policy
	calls int
}

// newMinEnergy is a named factory; the analyzer follows it to find
// the concrete type it returns.
func newMinEnergy() Policy { return &minEnergy{} }

func init() {
	Register(Monitoring, func() Policy { return monitoring{} })
	Register(MinEnergy, newMinEnergy)
	Register(BadName, func() Policy { return minTime{} })        // want `policy name "Min-Time" does not round-trip config parsing`
	Register(Monitoring, func() Policy { return monitoring{} }) // want `policy name Monitoring is registered 2 times`
	Register(AliasName, func() Policy { return monitoring{} })  // want `policy name constants Monitoring and AliasName share the value "monitoring"`
	Register("literal", func() Policy { return monitoring{} })  // want `Register must be called with a declared name constant`
}
