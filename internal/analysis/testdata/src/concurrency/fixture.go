// Package sim is a goearvet test fixture for the concurrency
// analyzer, loaded under "fix2/internal/sim" so the goroutine ban for
// simulation code applies.
package sim

import "sync"

type guarded struct {
	mu sync.Mutex
	n  int
}

func (g *guarded) bump() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.n++
}

func byValueParam(g guarded) int { // want `parameter passes a value containing sync\.Mutex by value`
	return g.n
}

func byValueReceiver() {}

func (g guarded) peek() int { // want `receiver passes a value containing sync\.Mutex by value`
	return g.n
}

func rangeCopy(gs []guarded) int {
	total := 0
	for _, g := range gs { // want `range clause copies a value containing sync\.Mutex`
		total += g.n
	}
	return total
}

func rangeByIndex(gs []guarded) int {
	total := 0
	for i := range gs {
		total += gs[i].n
	}
	return total
}

func assignCopy(g *guarded) int {
	snapshot := *g // want `assignment copies a value containing sync\.Mutex`
	return snapshot.n
}

// construct builds a fresh value; construction is not a copy.
func construct() *guarded {
	g := guarded{n: 1}
	return &g
}

func rawGoroutine() int {
	ch := make(chan int)
	go func() { ch <- 1 }() // want `raw goroutine in deterministic code`
	return <-ch
}

// nested WaitGroup through an embedded struct is still a copy hazard.
type tracker struct {
	wg sync.WaitGroup
}

type wrapper struct {
	t tracker
}

func nestedCopy(w wrapper) {} // want `parameter passes a value containing sync\.WaitGroup by value`
