// Package telemetrytest is a goearvet test fixture exercising the
// metric-naming, latency-family and span-kind checks over the real
// goear/internal/telemetry registry and trace packages.
package telemetrytest

import (
	"goear/internal/telemetry"
	"goear/internal/telemetry/trace"
)

// The clean pattern: one package-level constant, one registration.
const (
	metricGoodCounter = "goear_fixture_requests_total"
	metricGoodGauge   = "goear_fixture_power_watts"
	metricGoodHist    = "goear_fixture_wait_seconds"
	metricGoodVec     = "goear_fixture_batches_total"
	metricGoodLatency = "goear_fixture_latency_seconds"
)

// Names violating the ^goear_[a-z0-9_]+$ contract.
const (
	metricNoPrefix  = "fixture_requests_total"
	metricUpperCase = "goear_Fixture_Requests"
	metricHyphen    = "goear_fixture-requests"
)

var latencyBounds = []float64{0.1, 1, 10}

func goodRegistrations(r *telemetry.Registry) {
	r.Counter(metricGoodCounter, "requests served")
	r.Gauge(metricGoodGauge, "instantaneous power draw")
	r.Histogram(metricGoodHist, "queue wait", latencyBounds)
	r.CounterVec(metricGoodVec, "batches by result", "result")
	r.HistogramVec(metricGoodLatency, "request latency by op", latencyBounds, "op")
}

func literalName(r *telemetry.Registry) {
	r.Counter("goear_fixture_literal_total", "literal name") // want `metric name passed to Counter must be a package-level constant`
}

func localConstName(r *telemetry.Registry) {
	const local = "goear_fixture_local_total"
	r.Gauge(local, "local constant") // want `metric name passed to Gauge must be a package-level constant`
}

var varName = "goear_fixture_var_total"

func variableName(r *telemetry.Registry) {
	r.CounterVec(varName, "package-level var, still not a constant", "result") // want `metric name passed to CounterVec must be a package-level constant`
}

func computedName(r *telemetry.Registry, suffix string) {
	r.Counter("goear_fixture_"+suffix, "computed name") // want `metric name passed to Counter must be a package-level constant`
}

func badNames(r *telemetry.Registry) {
	r.Counter(metricNoPrefix, "missing goear_ prefix")  // want `metric name "fixture_requests_total" does not match`
	r.Gauge(metricUpperCase, "upper-case letters")      // want `metric name "goear_Fixture_Requests" does not match`
	r.HistogramVec(metricHyphen, "hyphen", nil, "node") // want `metric name "goear_fixture-requests" does not match`
}

// A latency family registered as anything but a HistogramVec loses the
// per-op label the SLO summary selects on.
const metricFlatLatency = "goear_fixture_flat_latency_seconds"

func flatLatency(r *telemetry.Registry) {
	r.Histogram(metricFlatLatency, "latency without op label", latencyBounds) // want `latency family "goear_fixture_flat_latency_seconds" must be registered as a HistogramVec keyed by op`
}

// Span kinds must be dotted lowercase paths so the /traces kind filter
// can match them on dot boundaries.
const (
	spanGoodKind   = "fixture.step"
	spanBadCase    = "Fixture.Step"
	spanBadSingle  = "fixture"
	spanBadHyphens = "fixture.sub-step"
)

func spanKinds(tr *trace.Tracer, now float64) {
	root := tr.Root(spanGoodKind, now)
	kid := root.Child("fixture.sub_step", now)
	kid.End(now)
	named := tr.RootNamed("b1", spanGoodKind, now)
	named.End(now)
	rem := tr.Remote(trace.Context{}, spanBadCase, now) // want `span kind "Fixture.Step" does not match`
	rem.End(now)
	bad := tr.Root(spanBadSingle, now) // want `span kind "fixture" does not match`
	bad.Child(spanBadHyphens, now)     // want `span kind "fixture.sub-step" does not match`
	bad.End(now)
	root.End(now)
}

// dynamicKind forwards a caller-supplied kind; non-constant kinds are
// out of the rule's scope.
func dynamicKind(tr *trace.Tracer, kind string, now float64) {
	tr.Root(kind, now).End(now)
}

// notATracer has the same method names as Tracer; calls through it
// must not be flagged.
type notATracer struct{}

func (notATracer) Root(kind string, now float64) {}

func unrelatedTracer(n notATracer) {
	n.Root("Whatever Kind", 0)
}

const metricTwice = "goear_fixture_twice_total"

func firstRegistration(r *telemetry.Registry) {
	r.Counter(metricTwice, "registered here first")
}

func secondRegistration(r *telemetry.Registry) {
	r.Counter(metricTwice, "and again here") // want `metric constant metricTwice is registered at more than one call site`
}

// notARegistry has the same method names as Registry; calls through it
// must not be flagged.
type notARegistry struct{}

func (notARegistry) Counter(name, help string) {}
func (notARegistry) Gauge(name, help string)   {}

func unrelatedReceiver(n notARegistry) {
	n.Counter("whatever name", "different receiver type")
	n.Gauge("GOES_unchecked", "ditto")
}
