// Package telemetrytest is a goearvet test fixture exercising the
// metric-naming checks over the real goear/internal/telemetry
// registry.
package telemetrytest

import "goear/internal/telemetry"

// The clean pattern: one package-level constant, one registration.
const (
	metricGoodCounter = "goear_fixture_requests_total"
	metricGoodGauge   = "goear_fixture_power_watts"
	metricGoodHist    = "goear_fixture_latency_seconds"
	metricGoodVec     = "goear_fixture_batches_total"
)

// Names violating the ^goear_[a-z0-9_]+$ contract.
const (
	metricNoPrefix  = "fixture_requests_total"
	metricUpperCase = "goear_Fixture_Requests"
	metricHyphen    = "goear_fixture-requests"
)

var latencyBounds = []float64{0.1, 1, 10}

func goodRegistrations(r *telemetry.Registry) {
	r.Counter(metricGoodCounter, "requests served")
	r.Gauge(metricGoodGauge, "instantaneous power draw")
	r.Histogram(metricGoodHist, "request latency", latencyBounds)
	r.CounterVec(metricGoodVec, "batches by result", "result")
}

func literalName(r *telemetry.Registry) {
	r.Counter("goear_fixture_literal_total", "literal name") // want `metric name passed to Counter must be a package-level constant`
}

func localConstName(r *telemetry.Registry) {
	const local = "goear_fixture_local_total"
	r.Gauge(local, "local constant") // want `metric name passed to Gauge must be a package-level constant`
}

var varName = "goear_fixture_var_total"

func variableName(r *telemetry.Registry) {
	r.CounterVec(varName, "package-level var, still not a constant", "result") // want `metric name passed to CounterVec must be a package-level constant`
}

func computedName(r *telemetry.Registry, suffix string) {
	r.Counter("goear_fixture_"+suffix, "computed name") // want `metric name passed to Counter must be a package-level constant`
}

func badNames(r *telemetry.Registry) {
	r.Counter(metricNoPrefix, "missing goear_ prefix")  // want `metric name "fixture_requests_total" does not match`
	r.Gauge(metricUpperCase, "upper-case letters")      // want `metric name "goear_Fixture_Requests" does not match`
	r.HistogramVec(metricHyphen, "hyphen", nil, "node") // want `metric name "goear_fixture-requests" does not match`
}

const metricTwice = "goear_fixture_twice_total"

func firstRegistration(r *telemetry.Registry) {
	r.Counter(metricTwice, "registered here first")
}

func secondRegistration(r *telemetry.Registry) {
	r.Counter(metricTwice, "and again here") // want `metric constant metricTwice is registered at more than one call site`
}

// notARegistry has the same method names as Registry; calls through it
// must not be flagged.
type notARegistry struct{}

func (notARegistry) Counter(name, help string) {}
func (notARegistry) Gauge(name, help string)   {}

func unrelatedReceiver(n notARegistry) {
	n.Counter("whatever name", "different receiver type")
	n.Gauge("GOES_unchecked", "ditto")
}
