// Package earconf is a goearvet test fixture loaded under the import
// path "fix/internal/earconf", a miniature of the real cluster-config
// parser: an INI-style key switch assigning struct fields. The
// // want comments are golden expectations consumed by the analyzer
// tests.
package earconf

import "strconv"

// Config mirrors the real shape: parsed keys should be mirrored in
// conf struct tags.
type Config struct {
	DefaultPolicy string  `conf:"DefaultPolicy"`
	Verbose       int     // missing tag; the fix inserts conf:"Verbose"
	Budget        float64 `conf:"PowerBudget"` // stale tag; the fix rewrites it to ClusterPowerBudgetW
	Legacy        string  `conf:"LegacyKnob"`  // want `conf tag "LegacyKnob" on field Legacy is dead`
	PairA, PairB  int     // shared declaration: reported, but not fixable per-field
}

func (c *Config) set(key, val string) error {
	switch key {
	case "DefaultPolicy":
		c.DefaultPolicy = val
	case "Verbose": // want `config key "Verbose" assigns field Verbose, which has no conf tag`
		n, err := strconv.Atoi(val)
		if err != nil {
			return err
		}
		c.Verbose = n
	case "ClusterPowerBudgetW": // want `config key "ClusterPowerBudgetW" assigns field Budget, whose conf tag says "PowerBudget"`
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return err
		}
		c.Budget = f
	case "Ghost": // want `config key "Ghost" is dead: its case assigns no receiver field`
		_ = val
	case "PairA": // want `config key "PairA" assigns field PairA, which has no conf tag`
		n, _ := strconv.Atoi(val)
		c.PairA = n
	}
	return nil
}
