// Package msr is a goearvet test fixture for the msrfield analyzer,
// loaded under "fix/internal/msr". It mirrors the register encode/
// decode style of the real internal/msr package, with seeded layout
// bugs.
package msr

// EncodeGood packs the max ratio into bits 6:0 and the min ratio into
// bits 14:8, like MSR 0x620.
func EncodeGood(max, min uint64) uint64 {
	return (max & 0x7F) | ((min & 0x7F) << 8)
}

// DecodeGood unpacks bits 6:0 and bits 14:8.
func DecodeGood(v uint64) (max, min uint64) {
	return v & 0x7F, (v >> 8) & 0x7F
}

// EncodeSkew packs a ratio into bits 15:8.
func EncodeSkew(r uint64) uint64 { return (r & 0xFF) << 8 }

// DecodeSkew extracts with a 7-bit mask: the seeded mismatched
// mask/shift pair.
func DecodeSkew(v uint64) uint64 { return (v >> 8) & 0x7F } // want `EncodeSkew and DecodeSkew disagree on the register layout`

// EncodeHoley masks with a non-contiguous pattern.
func EncodeHoley(v uint64) uint64 { return v & 0x7B7F } // want `mask 0x7b7f is not a contiguous bit run`

// EncodeOverlap packs an 8-bit field at bit 0 and a 7-bit field at
// bit 4: the runs collide.
func EncodeOverlap(a, b uint64) uint64 {
	return (a & 0xFF) | ((b & 0x7F) << 4) // want `EncodeOverlap packs overlapping fields`
}

// EncodeDocSkew packs the ratio into bits 15:8 of the register.
func EncodeDocSkew(r uint64) uint64 { // want `EncodeDocSkew documents bits 15:8 but the body manipulates bits 15:9`
	return (r & 0x7F) << 9
}

// nonField arithmetic must not confuse the analyzer: wrap-around
// masks and plain shifts are not register fields.
func nonField(prev, cur uint64) uint64 {
	if cur >= prev {
		return cur - prev
	}
	return cur + (1 << 32) - prev
}
