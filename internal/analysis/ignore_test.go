package analysis

import (
	"go/ast"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// loadSnippet type-checks one source file as a package under the
// synthetic import path "fix/p".
func loadSnippet(t *testing.T, src string) *Package {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	l := NewLoader()
	l.AddDir("fix/p", dir)
	pkg, err := l.Load("fix/p")
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

// fixEveryReturn is a synthetic analyzer that attaches a suggested fix
// to every return statement, rewriting its expression to 0.
func fixEveryReturn() *Analyzer {
	return &Analyzer{
		Name: "fixreturns",
		Doc:  "rewrites every returned expression to 0",
		Run: func(pass *Pass) error {
			for _, f := range pass.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					r, ok := n.(*ast.ReturnStmt)
					if !ok || len(r.Results) == 0 {
						return true
					}
					e := r.Results[0]
					fix := &SuggestedFix{
						Message: "return 0",
						Edits:   []TextEdit{pass.Edit(e.Pos(), e.End(), "0")},
					}
					pass.ReportFix(r.Pos(), fix, "nonzero return")
					return true
				})
			}
			return nil
		},
	}
}

// TestIgnoreReasonlessSurfacesThroughRun pins that a directive without
// a reason is itself reported by Run as a finding of the pseudo-
// analyzer "ignore" — and suppresses nothing.
func TestIgnoreReasonlessSurfacesThroughRun(t *testing.T) {
	pkg := loadSnippet(t, `package p

func f() int {
	return 1 //goearvet:ignore
}
`)
	diags, err := Run([]*Package{pkg}, []*Analyzer{fixEveryReturn()})
	if err != nil {
		t.Fatal(err)
	}
	var sawIgnore, sawFinding bool
	for _, d := range diags {
		switch d.Analyzer {
		case "ignore":
			sawIgnore = true
			if !strings.Contains(d.Message, "needs a reason") {
				t.Errorf("ignore finding message = %q", d.Message)
			}
		case "fixreturns":
			sawFinding = true
		}
	}
	if !sawIgnore {
		t.Error("reasonless directive was not reported as an ignore finding")
	}
	if !sawFinding {
		t.Error("reasonless directive suppressed the finding on its line")
	}
}

// TestIgnoreTrailingAndOwnLinePlacement pins both placements through
// Run: a trailing directive suppresses its own line, an own-line
// directive the line below, and neither leaks to other lines.
func TestIgnoreTrailingAndOwnLinePlacement(t *testing.T) {
	pkg := loadSnippet(t, `package p

func trailing() int {
	return 1 //goearvet:ignore trailing form
}

func ownLine() int {
	//goearvet:ignore own-line form covers the next line
	return 2
}

func unprotected() int {
	return 3
}
`)
	diags, err := Run([]*Package{pkg}, []*Analyzer{fixEveryReturn()})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("diags = %v, want only the unprotected return", diags)
	}
	if diags[0].Line != 13 {
		t.Errorf("finding at line %d, want 13 (unprotected)", diags[0].Line)
	}
}

// TestIgnoreSuppressedFindingsProduceNoFixes pins the -fix
// interaction: a suppressed diagnostic never reaches the fix planner,
// so its edits are never applied — only the unsuppressed finding's
// repair lands.
func TestIgnoreSuppressedFindingsProduceNoFixes(t *testing.T) {
	src := `package p

func suppressed() int {
	return 1 //goearvet:ignore intentional nonzero
}

func repaired() int {
	return 2
}
`
	pkg := loadSnippet(t, src)
	diags, err := Run([]*Package{pkg}, []*Analyzer{fixEveryReturn()})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("diags = %v, want only the unsuppressed finding", diags)
	}
	plan, err := PlanFixes(diags, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan) != 1 {
		t.Fatalf("plan = %+v, want one file", plan)
	}
	fixed := string(plan[0].Fixed)
	if !strings.Contains(fixed, "return 1 //goearvet:ignore intentional nonzero") {
		t.Errorf("suppressed finding was repaired anyway:\n%s", fixed)
	}
	if !strings.Contains(fixed, "func repaired() int {\n\treturn 0\n}") {
		t.Errorf("unsuppressed finding was not repaired:\n%s", fixed)
	}
}
