// Package analysis is a small, stdlib-only static-analysis framework
// for this repository. It loads the module's packages with go/parser
// and type-checks them with go/types, then runs repo-specific
// analyzers over the typed syntax trees.
//
// The framework exists because the guarantees this reproduction rests
// on — deterministic simulation output, bit-exact MSR field encoding,
// dimensional consistency of the internal/units quantities — are
// invariants of the *source*, not just of any particular test run.
// Runtime tests catch a violation only on the inputs they happen to
// exercise; the analyzers in internal/analysis/analyzers reject the
// violating code outright.
//
// Findings can be suppressed, one line at a time, with an in-code
// annotation that must carry a reason:
//
//	v, _ := strconv.Atoi(s) //goearvet:ignore input already validated
//
// A directive on its own line suppresses the line below it. A
// directive without a reason is itself reported.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Diagnostic is one analyzer finding, positioned in the loaded file
// set. It is the unit of text and -json output.
type Diagnostic struct {
	// Analyzer is the name of the analyzer that produced the finding.
	Analyzer string `json:"analyzer"`
	// File is the path of the offending file as it was loaded.
	File string `json:"file"`
	// Line and Col are the 1-based position within File.
	Line int `json:"line"`
	Col  int `json:"col"`
	// Message describes the violation.
	Message string `json:"message"`
	// Fix, when non-nil, is a machine-applicable repair for the
	// finding (goearvet -fix). Suppressed diagnostics are dropped
	// before fix planning, so an ignored finding never edits a file.
	Fix *SuggestedFix `json:"fix,omitempty"`
}

// Pos formats the diagnostic position as file:line:col.
func (d Diagnostic) Pos() string {
	return fmt.Sprintf("%s:%d:%d", d.File, d.Line, d.Col)
}

// String renders the diagnostic in the conventional one-line vet
// format.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos(), d.Message, d.Analyzer)
}

// Analyzer is one named check. Analyzers are stateless; all per-run
// state lives on the Pass.
type Analyzer struct {
	// Name identifies the analyzer in output and in enable/disable
	// flags. It must be a single lowercase word.
	Name string
	// Doc is a one-paragraph description shown by goearvet -list.
	Doc string
	// Scope restricts the analyzer to packages whose import path
	// contains one of the given segment sequences (see PathMatches).
	// An empty scope applies the analyzer to every loaded package.
	Scope []string
	// Run analyzes one package and reports findings through the pass.
	Run func(*Pass) error
}

// AppliesTo reports whether the analyzer's scope covers the package
// with the given import path.
func (a *Analyzer) AppliesTo(path string) bool {
	if len(a.Scope) == 0 {
		return true
	}
	for _, s := range a.Scope {
		if PathMatches(path, s) {
			return true
		}
	}
	return false
}

// PathMatches reports whether the import path contains pattern as a
// consecutive run of path segments. "goear/internal/sim" matches
// patterns "internal/sim", "sim" and "goear/internal/sim", but not
// "internal/simx" or "al/sim".
func PathMatches(path, pattern string) bool {
	ps := splitSegments(path)
	ts := splitSegments(pattern)
	if len(ts) == 0 || len(ts) > len(ps) {
		return false
	}
	for i := 0; i+len(ts) <= len(ps); i++ {
		ok := true
		for j := range ts {
			if ps[i+j] != ts[j] {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

func splitSegments(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == '/' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Path is the package import path as the loader registered it.
	Path string
	// Files are the package's non-test syntax trees, in file order.
	Files []*ast.File
	// Pkg and Info are the go/types results for the package.
	Pkg  *types.Package
	Info *types.Info

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ReportFix records a finding at pos carrying a suggested fix.
func (p *Pass) ReportFix(pos token.Pos, fix *SuggestedFix, format string, args ...any) {
	p.Reportf(pos, format, args...)
	(*p.diags)[len(*p.diags)-1].Fix = fix
}

// Edit builds a TextEdit replacing the source range [pos, end) with
// newText, resolved to the owning file and its byte offsets.
func (p *Pass) Edit(pos, end token.Pos, newText string) TextEdit {
	a := p.Fset.Position(pos)
	b := p.Fset.Position(end)
	return TextEdit{File: a.Filename, Start: a.Offset, End: b.Offset, NewText: newText}
}

// Insert builds a zero-width TextEdit inserting newText at pos.
func (p *Pass) Insert(pos token.Pos, newText string) TextEdit {
	return p.Edit(pos, pos, newText)
}

// TypeOf returns the type of an expression, or nil if the checker did
// not record one.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.Info.TypeOf(e)
}

// Run executes every applicable analyzer over every package and
// returns the surviving findings sorted by position. Findings on
// lines carrying a //goearvet:ignore directive (or directly below a
// directive on its own line) are dropped; directives without a reason
// are reported as findings of the pseudo-analyzer "ignore".
func Run(pkgs []*Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		ign := collectIgnores(pkg.Fset, pkg.Files)
		diags = append(diags, ign.malformed...)
		var pkgDiags []Diagnostic
		for _, a := range analyzers {
			if !a.AppliesTo(pkg.Path) {
				continue
			}
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Path:     pkg.Path,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				diags:    &pkgDiags,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %w", a.Name, pkg.Path, err)
			}
		}
		for _, d := range pkgDiags {
			if !ign.suppressed(d) {
				diags = append(diags, d)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}
