package ring

import (
	"fmt"
	"strings"
	"testing"
)

// FuzzRing drives the ring through an arbitrary membership script and
// key set, checking the package's three contracts on every input:
// no panic on any byte soup, placement that is a pure function of the
// surviving membership (rebuilding from scratch agrees with the
// mutated ring), and removal remapping only the removed shard's keys.
//
// The script encodes one operation per '|'-separated token: "+name"
// adds a shard, "-name" removes one, anything else is looked up as a
// key. Errors from Add/Remove (duplicates, absent members, empty
// names) are expected outcomes, not failures.
func FuzzRing(f *testing.F) {
	f.Add("+s1|+s2|node1|node2|-s1|node1", "node1|node2|node3", int8(3))
	f.Add("+a|+b|+c|-b|+b|-b", "x|y|z", int8(1))
	f.Add("", "", int8(0))
	f.Add("+\x00|+s1|\xff\xfe|-\x00", "\x00|\xff", int8(7))
	f.Fuzz(func(t *testing.T, script, keyBlob string, replicas int8) {
		r := New(int(replicas)) // <= 0 falls back to the default
		live := map[string]bool{}
		for _, tok := range strings.Split(script, "|") {
			switch {
			case tok == "":
			case tok[0] == '+':
				if err := r.Add(tok[1:]); err == nil {
					live[tok[1:]] = true
				}
			case tok[0] == '-':
				name := tok[1:]
				var before map[string]string
				if live[name] {
					before = owners(r, keyBlob)
				}
				if err := r.Remove(name); err == nil {
					delete(live, name)
					// Keys not owned by the removed shard must not move.
					for key, was := range before {
						if was == name {
							continue
						}
						now, ok := r.Owner(key)
						if !ok || now != was {
							t.Fatalf("remove %q moved key %q: %q -> %q", name, key, was, now)
						}
					}
				}
			default:
				r.Owner(tok)
			}
		}
		if r.Len() != len(live) {
			t.Fatalf("ring tracks %d members, script applied %d", r.Len(), len(live))
		}
		// Placement is a pure function of the final membership: a ring
		// rebuilt member-by-member in sorted order must agree everywhere.
		rebuilt, err := NewWithMembers(int(replicas), r.Members())
		if err != nil {
			t.Fatalf("rebuild from surviving members: %v", err)
		}
		for key, was := range owners(r, keyBlob) {
			got, ok := rebuilt.Owner(key)
			if !ok || got != was {
				t.Fatalf("key %q: mutated ring says %q, rebuilt ring says %q (ok=%v)", key, was, got, ok)
			}
		}
	})
}

// owners maps every '|'-separated key in blob (plus a fixed probe set)
// to its current owner; an empty ring yields an empty map.
func owners(r *Ring, blob string) map[string]string {
	out := map[string]string{}
	probe := strings.Split(blob, "|")
	for i := 0; i < 8; i++ {
		probe = append(probe, fmt.Sprintf("probe%d", i))
	}
	for _, k := range probe {
		if o, ok := r.Owner(k); ok {
			out[k] = o
		}
	}
	return out
}
