// Package ring places node IDs on EARDBD shards with consistent
// hashing. EAR's production deployment runs one EARDBD per island and
// assigns every compute node to exactly one of them; when an island
// daemon is added or drained the assignment must move as few nodes as
// possible, because each move abandons a warm dedup window and
// re-aggregates that node's history on a new shard.
//
// The ring hashes each shard under a fixed number of virtual points
// (FNV-1a over "name#i") onto a 64-bit circle; a key is owned by the
// first point clockwise from its own hash. Placement is a pure
// function of the membership set — two rings built from the same
// members agree on every key, whatever the order of Add calls — and
// removing one shard only remaps the keys that shard owned.
package ring

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultReplicas is the virtual-point count per shard. 128 points
// keeps the owner-share spread within a few percent for the shard
// counts this tier runs (single digits to low tens) while a full
// rebuild stays microseconds.
const DefaultReplicas = 128

// point is one virtual position of a shard on the circle. Points sort
// by hash with the shard name as tiebreak, so even a hash collision
// between two shards leaves the ring order — and therefore placement —
// deterministic.
type point struct {
	hash uint64
	name string
}

// Ring is a consistent-hash ring over shard names. The zero value is
// not usable; construct with New. Ring is not safe for concurrent
// mutation; callers that rebalance while routing must synchronise.
type Ring struct {
	replicas int
	members  map[string]bool
	points   []point // sorted by (hash, name)
}

// New builds an empty ring. replicas <= 0 selects DefaultReplicas.
func New(replicas int) *Ring {
	if replicas <= 0 {
		replicas = DefaultReplicas
	}
	return &Ring{replicas: replicas, members: map[string]bool{}}
}

// NewWithMembers builds a ring holding the given shards. Duplicate or
// empty names error.
func NewWithMembers(replicas int, members []string) (*Ring, error) {
	r := New(replicas)
	for _, m := range members {
		if err := r.Add(m); err != nil {
			return nil, err
		}
	}
	return r, nil
}

// Add inserts one shard. Adding an existing or empty name errors.
func (r *Ring) Add(name string) error {
	if name == "" {
		return fmt.Errorf("ring: shard name must be non-empty")
	}
	if r.members[name] {
		return fmt.Errorf("ring: shard %q already present", name)
	}
	r.members[name] = true
	for i := 0; i < r.replicas; i++ {
		r.points = append(r.points, point{hash: pointHash(name, i), name: name})
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].name < r.points[j].name
	})
	return nil
}

// Remove drops one shard; keys it owned move to their next point on
// the circle, everything else keeps its owner. Removing an absent
// shard errors.
func (r *Ring) Remove(name string) error {
	if !r.members[name] {
		return fmt.Errorf("ring: shard %q not present", name)
	}
	delete(r.members, name)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.name != name {
			kept = append(kept, p)
		}
	}
	r.points = kept
	return nil
}

// Owner returns the shard owning key, or false on an empty ring.
func (r *Ring) Owner(key string) (string, bool) {
	if len(r.points) == 0 {
		return "", false
	}
	h := keyHash(key)
	// First point at or clockwise past the key's hash, wrapping to the
	// start of the circle.
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].name, true
}

// Members returns the shard names, sorted.
func (r *Ring) Members() []string {
	out := make([]string, 0, len(r.members))
	for m := range r.members {
		out = append(out, m)
	}
	sort.Strings(out)
	return out
}

// Len returns the shard count.
func (r *Ring) Len() int { return len(r.members) }

// Spread counts, for each member, how many of the given keys it owns:
// the balance diagnostic earload prints per shard. Keys on an empty
// ring count nowhere.
func (r *Ring) Spread(keys []string) map[string]int {
	out := make(map[string]int, len(r.members))
	for m := range r.members {
		out[m] = 0
	}
	for _, k := range keys {
		if owner, ok := r.Owner(k); ok {
			out[owner]++
		}
	}
	return out
}

// pointHash positions virtual point i of a shard on the circle.
func pointHash(name string, i int) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	// Separator plus a decimal index: "s1"#11 and "s11"#1 must differ.
	_, _ = fmt.Fprintf(h, "#%d", i)
	return mix(h.Sum64())
}

// keyHash positions a key on the circle. Keys hash through a distinct
// prefix from points so a node named exactly like a shard's virtual
// point label cannot land on its hash by construction.
func keyHash(key string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte("k/"))
	_, _ = h.Write([]byte(key))
	return mix(h.Sum64())
}

// mix is the MurmurHash3 64-bit finaliser. Ring placement sorts on the
// full hash value, which FNV-1a alone serves poorly: a change in a
// short key's trailing byte barely reaches the high bits, so
// sequentially named nodes ("node0001", "node0002", ...) cluster into
// arcs and land on the same shard. The finaliser's avalanche spreads
// them uniformly around the circle.
func mix(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}
