package ring

import (
	"fmt"
	"testing"
)

func TestPlacementDeterministicAcrossBuildOrder(t *testing.T) {
	a, err := NewWithMembers(0, []string{"s1", "s2", "s3", "s4"})
	if err != nil {
		t.Fatal(err)
	}
	b := New(0)
	for _, m := range []string{"s3", "s1", "s4", "s2"} {
		if err := b.Add(m); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("node%04d", i)
		oa, ok := a.Owner(key)
		if !ok {
			t.Fatal("empty ring")
		}
		ob, _ := b.Owner(key)
		if oa != ob {
			t.Fatalf("key %s: owner %s in build order A, %s in order B", key, oa, ob)
		}
	}
}

func TestRemoveOnlyRemapsOwnedKeys(t *testing.T) {
	r, err := NewWithMembers(0, []string{"s1", "s2", "s3", "s4"})
	if err != nil {
		t.Fatal(err)
	}
	before := map[string]string{}
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("node%04d", i)
		o, _ := r.Owner(key)
		before[key] = o
	}
	if err := r.Remove("s2"); err != nil {
		t.Fatal(err)
	}
	moved := 0
	for key, was := range before {
		now, ok := r.Owner(key)
		if !ok {
			t.Fatal("ring emptied unexpectedly")
		}
		if was == "s2" {
			if now == "s2" {
				t.Fatalf("key %s still owned by removed shard", key)
			}
			moved++
			continue
		}
		if now != was {
			t.Errorf("key %s moved %s -> %s though its shard stayed", key, was, now)
		}
	}
	if moved == 0 {
		t.Fatal("fixture broken: removed shard owned no keys")
	}
}

func TestAddOnlyClaimsKeys(t *testing.T) {
	r, err := NewWithMembers(0, []string{"s1", "s2", "s3"})
	if err != nil {
		t.Fatal(err)
	}
	before := map[string]string{}
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("node%04d", i)
		o, _ := r.Owner(key)
		before[key] = o
	}
	if err := r.Add("s4"); err != nil {
		t.Fatal(err)
	}
	claimed := 0
	for key, was := range before {
		now, _ := r.Owner(key)
		if now == was {
			continue
		}
		if now != "s4" {
			t.Errorf("key %s moved %s -> %s; only the new shard may claim keys", key, was, now)
		}
		claimed++
	}
	if claimed == 0 {
		t.Fatal("fixture broken: new shard claimed no keys")
	}
}

func TestSpreadIsRoughlyBalanced(t *testing.T) {
	r, err := NewWithMembers(0, []string{"s1", "s2", "s3", "s4"})
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, 10000)
	for i := range keys {
		keys[i] = fmt.Sprintf("node%05d", i)
	}
	spread := r.Spread(keys)
	total := 0
	for _, n := range spread {
		total += n
	}
	if total != len(keys) {
		t.Fatalf("spread accounts for %d of %d keys", total, len(keys))
	}
	for m, n := range spread {
		// With 128 virtual points per shard the share stays well inside
		// [1/2, 2] of the fair 2500; a gross imbalance means the hash or
		// search broke.
		if n < len(keys)/8 || n > len(keys)/2 {
			t.Errorf("shard %s owns %d of %d keys, outside sanity band", m, n, len(keys))
		}
	}
}

func TestErrorsAndEdgeCases(t *testing.T) {
	r := New(0)
	if _, ok := r.Owner("n1"); ok {
		t.Error("empty ring claimed an owner")
	}
	if err := r.Add(""); err == nil {
		t.Error("empty shard name accepted")
	}
	if err := r.Add("s1"); err != nil {
		t.Fatal(err)
	}
	if err := r.Add("s1"); err == nil {
		t.Error("duplicate shard accepted")
	}
	if err := r.Remove("s9"); err == nil {
		t.Error("removing absent shard succeeded")
	}
	o, ok := r.Owner("anything")
	if !ok || o != "s1" {
		t.Errorf("single-shard ring routed to %q, %v", o, ok)
	}
	if err := r.Remove("s1"); err != nil {
		t.Fatal(err)
	}
	if _, ok := r.Owner("n1"); ok {
		t.Error("drained ring still claims an owner")
	}
	if got := r.Len(); got != 0 {
		t.Errorf("drained ring Len = %d", got)
	}
}

func TestMembersSorted(t *testing.T) {
	r, err := NewWithMembers(4, []string{"sc", "sa", "sb"})
	if err != nil {
		t.Fatal(err)
	}
	m := r.Members()
	want := []string{"sa", "sb", "sc"}
	if len(m) != len(want) {
		t.Fatalf("members = %v", m)
	}
	for i := range want {
		if m[i] != want[i] {
			t.Fatalf("members = %v, want %v", m, want)
		}
	}
}
