package eardbd

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"sync/atomic"
	"testing"

	"goear/internal/eard"
	"goear/internal/eargm"
	"goear/internal/par"
	"goear/internal/telemetry"
)

// metricsMap renders a set's registry and parses it back into a
// name+labels → value map, exercising the exposition round trip on the
// way.
func metricsMap(t *testing.T, set *telemetry.Set) map[string]float64 {
	t.Helper()
	var b strings.Builder
	if err := set.Reg().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	samples, err := telemetry.ParseText(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]float64, len(samples))
	for _, s := range samples {
		out[s.Name+s.Labels] = s.Value
	}
	return out
}

// TestTelemetryJournalReplayKnownCounts replays the journal-spill
// scenario of TestJournalSpillAndReplayExactlyOnce with an instance
// telemetry set shared by client and server, and pins every counter to
// the count the scenario is known to produce:
//
//	flush 1: attempt 1 delivers (server accepts 4 records), ack lost;
//	         retry redelivers under the same ID (duplicate batch,
//	         4 duplicate records), ack lost; batch spills.
//	flush 2: replay redelivers (duplicate again), ack arrives.
func TestTelemetryJournalReplayKnownCounts(t *testing.T) {
	set := telemetry.NewSet()
	db := eard.NewDB()
	srv := NewServer(db, Config{Telemetry: set})
	drops := &atomic.Int32{}
	drops.Store(99) // every ack write fails: daemon is effectively down
	journal, err := OpenJournal("")
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewClient(ClientConfig{
		Node:         "n01",
		Dial:         pipeDialer(srv, func(conn net.Conn) net.Conn { return &ackDropConn{Conn: conn, drops: drops} }),
		Clock:        NewFakeClock(0),
		Jitter:       rand.New(rand.NewSource(42)),
		BatchRecords: 4, MaxAttempts: 2, Journal: journal,
		Telemetry: set,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		err := c.Enqueue(rec("j1", "0", fmt.Sprintf("n%02d", i), 100))
		if i < 3 && err != nil {
			t.Fatal(err)
		}
		if i == 3 && !errors.Is(err, ErrUnreachable) {
			t.Fatalf("flush against dead daemon = %v, want ErrUnreachable", err)
		}
	}
	drops.Store(0) // daemon recovers
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}

	got := metricsMap(t, set)
	want := map[string]float64{
		metricDBDBatches + `{result="accepted"}`:  1,
		metricDBDBatches + `{result="duplicate"}`: 2, // in-flush retry + journal replay
		metricDBDRecords + `{result="accepted"}`:  4,
		metricDBDRecords + `{result="duplicate"}`: 8,
		metricDBDConnections:                      3, // one dial per delivery attempt
		metricDBDClientFlushes:                    2,
		metricDBDClientRetries:                    1,
		metricDBDClientRedials:                    3,
		metricDBDClientSpilled:                    1,
		metricDBDClientReplayed:                   1,
		metricDBDClientBatchesSent:                1, // only the acked replay counts as sent
		metricDBDClientRecordsSent:                4,
		metricDBDClientBackoff + "_count":         1, // one backoff sleep before the retry
	}
	for key, w := range want {
		if got[key] != w {
			t.Errorf("%s = %g, want %g", key, got[key], w)
		}
	}
	// The counters must agree with the pre-telemetry Stats structs they
	// mirror.
	st, cs := srv.Stats(), c.Stats()
	if got[metricDBDProtoErrors] != float64(st.ProtocolErrors) {
		t.Errorf("protocol errors metric = %g, stats = %d", got[metricDBDProtoErrors], st.ProtocolErrors)
	}
	if got[metricDBDClientFlushes] != float64(cs.Flushes) || got[metricDBDClientRetries] != float64(cs.Retries) {
		t.Errorf("client metrics disagree with stats %+v", cs)
	}

	// The event log tells the same story: one accepted and two duplicate
	// batch outcomes, one spill, one replay carrying all four records.
	kinds := map[string]int{}
	var replay telemetry.Event
	for _, ev := range set.Rec().Events() {
		kinds[ev.Kind]++
		if ev.Kind == "eardbd.replay" {
			replay = ev
		}
	}
	if kinds["eardbd.batch"] != 3 || kinds["eardbd.spill"] != 1 || kinds["eardbd.replay"] != 1 {
		t.Errorf("event kinds = %v", kinds)
	}
	if replay.Num["records"] != 4 || replay.Str["id"] != "n01/1" {
		t.Errorf("replay event = %+v", replay)
	}
	if db.Len() != 4 {
		t.Fatalf("db = %d records, want 4 (exactly once)", db.Len())
	}
}

// runTelemetryClosedLoop is runClosedLoop with an instance telemetry
// set wired through server, every client, and the eargm ratchet. It
// returns the rendered /metrics text and the event-kind histogram.
func runTelemetryClosedLoop(t *testing.T, nodes, workers int) (string, map[string]int) {
	t.Helper()
	set := telemetry.NewSet()
	srv := NewServer(eard.NewDB(), Config{Telemetry: set})
	err := par.ForEach(workers, nodes, func(i int) error {
		node := fmt.Sprintf("n%02d", i)
		rng := rand.New(rand.NewSource(int64(1000 + i)))
		c, err := NewClient(ClientConfig{
			Node:         node,
			Dial:         pipeDialer(srv, nil),
			Clock:        NewFakeClock(0),
			Jitter:       rand.New(rand.NewSource(int64(i))),
			BatchRecords: 4,
			Telemetry:    set,
		})
		if err != nil {
			return err
		}
		for j := 0; j < 10; j++ {
			power := 250 + 40*rng.Float64()
			r := eard.JobRecord{
				JobID: fmt.Sprintf("job%d", j%3), StepID: fmt.Sprint(j / 3), Node: node,
				App: "BT-MZ.C", Policy: "min_energy",
				TimeSec: 120, EnergyJ: power * 120, AvgPower: power,
				AvgCPU: 2.1, AvgIMC: 2.4,
			}
			if err := c.Enqueue(r); err != nil {
				return err
			}
		}
		return c.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := eargm.New(eargm.Config{BudgetW: 260 * float64(nodes), MaxCapPstate: 8, Telemetry: set})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eargm.Drive(m, srv, 0, 12); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := set.Reg().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	kinds := map[string]int{}
	for _, ev := range set.Rec().Events() {
		kinds[ev.Kind]++
	}
	return b.String(), kinds
}

// TestTelemetryClosedLoopWorkerInvariance pins the observability
// contract on the full reporting tier: the rendered /metrics payload is
// byte-identical whatever the feeder worker count (counters are sums,
// gauges are driven sequentially), and the event mix is fixed even
// though event interleaving under concurrent feeders is not.
func TestTelemetryClosedLoopWorkerInvariance(t *testing.T) {
	const nodes = 8
	refText, refKinds := runTelemetryClosedLoop(t, nodes, 1)

	samples, err := telemetry.ParseText(strings.NewReader(refText))
	if err != nil {
		t.Fatal(err)
	}
	vals := make(map[string]float64, len(samples))
	for _, s := range samples {
		vals[s.Name+s.Labels] = s.Value
	}
	// Known scenario counts: 8 nodes x 10 records in batches of 4 =
	// 2 size-triggered flushes + 1 close flush per node.
	for key, want := range map[string]float64{
		metricDBDBatches + `{result="accepted"}`: 24,
		metricDBDRecords + `{result="accepted"}`: 80,
		metricDBDClientFlushes:                   24,
		metricDBDClientBatchesSent:               24,
		metricDBDClientRecordsSent:               80,
		metricDBDConnections:                     8, // one connection per node client
		"goear_eargm_intervals_total":            12,
	} {
		if vals[key] != want {
			t.Errorf("%s = %g, want %g", key, vals[key], want)
		}
	}
	if refKinds["eardbd.batch"] != 24 {
		t.Errorf("event kinds = %v, want 24 eardbd.batch", refKinds)
	}

	for _, workers := range []int{1, 4, 8} {
		got, kinds := runTelemetryClosedLoop(t, nodes, workers)
		if got != refText {
			t.Errorf("workers=%d: /metrics text differs from workers=1 run:\n--- want\n%s--- got\n%s",
				workers, refText, got)
		}
		if len(kinds) != len(refKinds) {
			t.Errorf("workers=%d: event kinds = %v, want %v", workers, kinds, refKinds)
		}
		for k, n := range refKinds {
			if kinds[k] != n {
				t.Errorf("workers=%d: %d %s events, want %d", workers, kinds[k], k, n)
			}
		}
	}
}
