// Package dbdtest is the shared harness behind the EARDBD closed-loop
// test battery. It renders the canonical transcript — aggregate, node
// powers, job summaries, the eargm cap trace and manager stats — from
// any snapshot view of the reporting tier, so the same byte-golden
// covers a single daemon and a federation root over any shard count.
//
// It is a non-test package on purpose: the closed-loop test has to
// import the federation root, and fed imports eardbd, so the test
// lives in the external package eardbd_test and shares its helpers
// from here.
package dbdtest

import (
	"encoding/json"
	"fmt"
	"net"
	"strings"

	"goear/internal/eard"
	"goear/internal/eardbd"
	"goear/internal/eardbd/fed"
	"goear/internal/eargm"
)

// CanonicalNode names node i as the closed-loop battery always has.
func CanonicalNode(i int) string { return fmt.Sprintf("n%02d", i) }

// PipeDialer returns a dial function whose connections are served by
// srv over net.Pipe, the synthetic transport of the whole battery.
func PipeDialer(srv *eardbd.Server) func() (net.Conn, error) {
	return func() (net.Conn, error) {
		client, server := net.Pipe()
		go srv.ServeConn(server)
		return client, nil
	}
}

// View is the snapshot surface a transcript renders: one daemon or a
// federation root. It doubles as the eargm.PowerSource the cap
// ratchet polls.
type View interface {
	Aggregate() (eardbd.Aggregate, error)
	NodePowers() []float64
	JobSummaries() ([]eard.JobSummary, error)
	Stats() (eardbd.Stats, error)
}

// ServerView adapts a single daemon to View.
type ServerView struct{ Srv *eardbd.Server }

func (v ServerView) Aggregate() (eardbd.Aggregate, error)     { return v.Srv.Aggregate(), nil }
func (v ServerView) NodePowers() []float64                    { return v.Srv.NodePowers() }
func (v ServerView) JobSummaries() ([]eard.JobSummary, error) { return v.Srv.JobSummaries(), nil }
func (v ServerView) Stats() (eardbd.Stats, error)             { return v.Srv.Stats(), nil }

// RootView adapts a federation root to View; Stats are the summed
// shard ingest counters.
type RootView struct{ Root *fed.Root }

func (v RootView) Aggregate() (eardbd.Aggregate, error)     { return v.Root.Aggregate() }
func (v RootView) NodePowers() []float64                    { return v.Root.NodePowers() }
func (v RootView) JobSummaries() ([]eard.JobSummary, error) { return v.Root.JobSummaries() }
func (v RootView) Stats() (eardbd.Stats, error)             { return v.Root.MergedStats() }

// Transcript runs the eargm budget ratchet off the view's power feed
// and renders everything observable: aggregate, node powers, job
// summaries, cap trace and manager stats as JSON lines, then the
// order-independent ingest counters. The byte format is the
// closed-loop golden and must not change lightly.
func Transcript(v View, nodes int) (string, error) {
	m, err := eargm.New(eargm.Config{BudgetW: 260 * float64(nodes), MaxCapPstate: 8})
	if err != nil {
		return "", err
	}
	caps, err := eargm.Drive(m, v, 0, 12)
	if err != nil {
		return "", err
	}

	agg, err := v.Aggregate()
	if err != nil {
		return "", err
	}
	sums, err := v.JobSummaries()
	if err != nil {
		return "", err
	}
	var b strings.Builder
	enc := json.NewEncoder(&b)
	for _, item := range []any{agg, v.NodePowers(), sums, caps, m.Stats()} {
		if err := enc.Encode(item); err != nil {
			return "", err
		}
	}
	st, err := v.Stats()
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "batches=%d accepted=%d dup=%d replaced=%d rejected=%d proto=%d\n",
		st.Batches, st.RecordsAccepted, st.RecordsDuplicate, st.RecordsReplaced,
		st.BatchesRejected, st.ProtocolErrors)
	return b.String(), nil
}

// TrimStats drops the transcript's trailing ingest-counter line. A
// faulted run redelivers batches, which shifts the accepted/duplicate
// split without changing any state the snapshot lines render — so
// fault tests compare transcripts through this.
func TrimStats(transcript string) string {
	i := strings.LastIndex(strings.TrimRight(transcript, "\n"), "\n")
	if i < 0 {
		return transcript
	}
	return transcript[:i+1]
}
