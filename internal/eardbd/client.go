package eardbd

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"strconv"
	"strings"
	"sync"

	"goear/internal/accounting"
	"goear/internal/eard"
	"goear/internal/telemetry"
	"goear/internal/telemetry/trace"
	"goear/internal/wire"
)

// ErrUnreachable reports that a flush could not deliver to the daemon
// within the configured attempts. Records are not lost: they were
// spilled to the journal (or kept queued when no journal is
// configured) and will be replayed by a later flush.
var ErrUnreachable = errors.New("eardbd: daemon unreachable")

// ErrQueueFull reports that a record was dropped because the bounded
// queue is full and no journal is configured to absorb the overflow.
var ErrQueueFull = errors.New("eardbd: queue full and no journal configured")

// RejectedError is a permanent, non-retryable server rejection (an
// invalid or oversized batch). The client drops the batch: resending a
// poison batch forever would wedge the pipeline.
type RejectedError struct{ Msg string }

func (e *RejectedError) Error() string { return "eardbd: server rejected batch: " + e.Msg }

// ClientConfig parameterises a reporting client. Node, Dial, Clock
// and Jitter are required; everything else has serviceable defaults.
type ClientConfig struct {
	// Node names this client in batch IDs; one client instance per node
	// keeps IDs cluster-unique.
	Node string
	// Dial opens a connection to the daemon. Injected so tests and
	// simulations can hand out net.Pipe ends or flaky transports.
	Dial func() (net.Conn, error)
	// Clock paces interval flushes and backoff sleeps.
	Clock Clock
	// Jitter randomises backoff; an explicitly seeded generator keeps
	// retry schedules reproducible.
	Jitter *rand.Rand
	// BatchRecords triggers a flush when the queue reaches this size
	// (default 64).
	BatchRecords int
	// FlushIntervalSec triggers a flush when this much time has passed
	// since the last one (default 5).
	FlushIntervalSec float64
	// QueueCap bounds the in-memory queue (default 4096). Overflow
	// spills to the journal.
	QueueCap int
	// MaxAttempts bounds delivery tries per flush (default 3).
	MaxAttempts int
	// BackoffBaseSec is the first retry delay (default 0.5); delays
	// double per attempt up to BackoffMaxSec (default 30), each scaled
	// by a jitter factor in [0.5, 1).
	BackoffBaseSec float64
	BackoffMaxSec  float64
	// MaxFramePayload caps outgoing frame payloads (default
	// wire.DefaultMaxPayload); it must not exceed the server's limit.
	MaxFramePayload int
	// Journal absorbs batches when the daemon is unreachable. Optional:
	// without one, undeliverable batches stay queued and new records are
	// dropped once the queue fills.
	Journal *Journal
	// Telemetry, when set, mirrors the ClientStats counters into that
	// set's registry (goear_eardbd_client_* families) and logs spill and
	// replay events. Falls back to the process-global telemetry set; nil
	// when that is disabled too, making every instrument a no-op.
	Telemetry *telemetry.Set
	// Trace, when set, records a span tree per batch into the buffer.
	// Each batch's trace is keyed by its batch ID (trace.RootNamed), so
	// the tree a batch renders is independent of which worker or shard
	// carried it, and a journaled batch's replay rejoins the trace its
	// spill started. Span timestamps come from Clock; nil disables
	// tracing at zero cost.
	Trace *trace.Buffer
	// RTTNow, when set, measures client-observed batch round trips
	// (write to ack) in seconds, feeding the
	// goear_eardbd_client_latency_seconds histogram and OnBatchRTT. It
	// is separate from Clock so wall-clock RTT measurement never
	// perturbs the deterministic logical timeline.
	RTTNow func() float64
	// OnBatchRTT, when set alongside RTTNow, receives each acked
	// batch's observed round trip. Called under the client lock; keep
	// it cheap (the load generator appends to a slice).
	OnBatchRTT func(seconds float64)
}

func (c ClientConfig) withDefaults() ClientConfig {
	if c.BatchRecords <= 0 {
		c.BatchRecords = 64
	}
	if c.FlushIntervalSec <= 0 {
		c.FlushIntervalSec = 5
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 4096
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.BackoffBaseSec <= 0 {
		c.BackoffBaseSec = 0.5
	}
	if c.BackoffMaxSec <= 0 {
		c.BackoffMaxSec = 30
	}
	if c.MaxFramePayload <= 0 {
		c.MaxFramePayload = wire.DefaultMaxPayload
	}
	return c
}

// Validate reports whether the required injections are present.
func (c ClientConfig) Validate() error {
	switch {
	case c.Node == "":
		return errors.New("eardbd: client needs a node name")
	case c.Dial == nil:
		return errors.New("eardbd: client needs a dial function")
	case c.Clock == nil:
		return errors.New("eardbd: client needs an injected clock")
	case c.Jitter == nil:
		return errors.New("eardbd: client needs an explicitly seeded jitter generator")
	}
	return nil
}

// ClientStats counts client activity since construction.
type ClientStats struct {
	Enqueued        int `json:"enqueued"`
	Flushes         int `json:"flushes"`
	BatchesSent     int `json:"batches_sent"`
	RecordsSent     int `json:"records_sent"`
	Retries         int `json:"retries"`
	Redials         int `json:"redials"`
	BatchesSpilled  int `json:"batches_spilled"`
	RecordsSpilled  int `json:"records_spilled"`
	BatchesReplayed int `json:"batches_replayed"`
	BatchesRejected int `json:"batches_rejected"`
	RecordsDropped  int `json:"records_dropped"`
}

// Client ships job records to an EARDBD server. It is safe for
// concurrent use; all time and randomness are injected.
type Client struct {
	cfg    ClientConfig
	tel    clientTel
	tracer *trace.Tracer

	mu        sync.Mutex
	conn      net.Conn
	queue     []eard.JobRecord
	acctQueue []accounting.Record
	seq       uint64
	lastFlush float64
	stats     ClientStats
}

// NewClient builds a client. The first interval flush is measured
// from the clock's reading at construction.
func NewClient(cfg ClientConfig) (*Client, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	ts := cfg.Telemetry
	if ts == nil {
		ts = telemetry.Default()
	}
	c := &Client{
		cfg:       cfg,
		tel:       newClientTel(ts),
		tracer:    trace.New(cfg.Node, cfg.Trace),
		lastFlush: cfg.Clock.Now(),
	}
	if cfg.Journal != nil {
		// Resume the batch sequence past anything a previous process
		// spilled: reusing an ID would make the server's seen-window drop
		// a fresh batch as a redelivery.
		c.seq = maxJournalSeq(cfg.Journal, cfg.Node)
	}
	return c, nil
}

// BatchID formats the client-assigned batch identifier for a node and
// sequence number. The "<node>/<seq>" shape is load-bearing — the
// server's duplicate window and maxJournalSeq both parse it back — so
// every producer (client flush, spill, test fixtures) must build IDs
// here rather than re-deriving the format.
func BatchID(node string, seq uint64) string {
	return fmt.Sprintf("%s/%d", node, seq)
}

// maxJournalSeq returns the highest numeric suffix among journaled
// batch IDs of the form "<node>/<seq>".
func maxJournalSeq(j *Journal, node string) uint64 {
	var max uint64
	prefix := node + "/"
	for _, b := range j.Entries() {
		if !strings.HasPrefix(b.ID, prefix) {
			continue
		}
		n, err := strconv.ParseUint(b.ID[len(prefix):], 10, 64)
		if err != nil {
			continue
		}
		if n > max {
			max = n
		}
	}
	return max
}

// Enqueue buffers one record, flushing when the batch-size trigger
// fires. A full queue spills the oldest pending batch to the journal
// rather than blocking the caller: the reporting path must never stall
// the workload it measures.
func (c *Client) Enqueue(r eard.JobRecord) error {
	if err := r.Validate(); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.makeRoomLocked(); err != nil {
		return err
	}
	c.queue = append(c.queue, r)
	c.stats.Enqueued++
	if c.pendingLocked() >= c.cfg.BatchRecords {
		return c.flushLocked()
	}
	return nil
}

// EnqueueAcct buffers one per-job accounting record. Accounting
// records share the node-report pipeline — same queue capacity, batch
// IDs, journal spill and replay — so attribution inherits the
// exactly-once delivery contract without new machinery.
func (c *Client) EnqueueAcct(r accounting.Record) error {
	if err := r.Validate(); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.makeRoomLocked(); err != nil {
		return err
	}
	c.acctQueue = append(c.acctQueue, r)
	c.stats.Enqueued++
	if c.pendingLocked() >= c.cfg.BatchRecords {
		return c.flushLocked()
	}
	return nil
}

// pendingLocked counts buffered records across both queues; the batch
// size and queue-capacity triggers act on the combined load because
// both queues ship in one wire batch.
func (c *Client) pendingLocked() int {
	return len(c.queue) + len(c.acctQueue)
}

// makeRoomLocked enforces the queue cap ahead of an append, spilling
// the pending batch when a journal can absorb it.
func (c *Client) makeRoomLocked() error {
	if c.pendingLocked() < c.cfg.QueueCap {
		return nil
	}
	if c.cfg.Journal == nil {
		c.stats.RecordsDropped++
		c.tel.dropped.Inc()
		return ErrQueueFull
	}
	if err := c.spillQueueLocked(); err != nil {
		c.stats.RecordsDropped++
		c.tel.dropped.Inc()
		return err
	}
	return nil
}

// Flush delivers the journal backlog and the queued records now.
func (c *Client) Flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.flushLocked()
}

// Tick applies the interval trigger: when FlushIntervalSec has passed
// since the last flush, pending work is flushed. Callers run it from
// their own pacing loop.
func (c *Client) Tick() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.Clock.Now()
	if now-c.lastFlush < c.cfg.FlushIntervalSec {
		return nil
	}
	if c.pendingLocked() == 0 && (c.cfg.Journal == nil || c.cfg.Journal.Len() == 0) {
		c.lastFlush = now
		return nil
	}
	return c.flushLocked()
}

// Close flushes best-effort and severs the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var flushErr error
	if c.pendingLocked() > 0 || (c.cfg.Journal != nil && c.cfg.Journal.Len() > 0) {
		flushErr = c.flushLocked()
	}
	c.closeConnLocked()
	return flushErr
}

// Stats returns a snapshot of the client counters.
func (c *Client) Stats() ClientStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// Queued returns the number of buffered (unflushed) records, node
// reports and accounting records combined.
func (c *Client) Queued() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.pendingLocked()
}

// flushLocked replays any journal backlog, then ships the queue. The
// queue batch is assigned its ID before the first send attempt and
// keeps it through retries and journal spills, which is what makes
// redelivery after a lost ack detectable server-side.
func (c *Client) flushLocked() error {
	c.stats.Flushes++
	c.tel.flushes.Inc()
	c.lastFlush = c.cfg.Clock.Now()
	if err := c.replayLocked(); err != nil {
		// The daemon is unreachable; spill the live queue too and let a
		// later flush retry everything in order.
		if errors.Is(err, ErrUnreachable) && c.pendingLocked() > 0 {
			if serr := c.spillQueueLocked(); serr != nil {
				return serr
			}
		}
		return err
	}
	if c.pendingLocked() == 0 {
		return nil
	}
	c.seq++
	b := wire.Batch{
		ID:      BatchID(c.cfg.Node, c.seq),
		Node:    c.cfg.Node,
		Records: c.queue,
		Acct:    c.acctQueue,
	}
	// The batch trace is rooted on the batch ID, so whatever worker or
	// shard handles it — or a later replay after a spill — renders the
	// same tree.
	sp := c.tracer.RootNamed(b.ID, spanClientBatch, c.cfg.Clock.Now())
	sp.Attr("node", c.cfg.Node)
	err := c.sendBatchLocked(b, sp)
	switch {
	case err == nil:
		sp.Attr("result", "acked")
		c.queue, c.acctQueue = nil, nil
	case errors.Is(err, ErrUnreachable):
		sp.Attr("result", "unreachable")
		if c.cfg.Journal != nil {
			if serr := c.journalBatchLocked(b); serr != nil {
				sp.End(c.cfg.Clock.Now())
				return serr
			}
			sp.Attr("result", "spilled")
			c.queue, c.acctQueue = nil, nil
		}
	default:
		var rej *RejectedError
		if errors.As(err, &rej) {
			// Permanent: drop the poison batch.
			sp.Attr("result", "rejected")
			c.stats.BatchesRejected++
			c.stats.RecordsDropped += c.pendingLocked()
			c.tel.rejected.Inc()
			c.tel.dropped.Add(uint64(c.pendingLocked()))
			c.queue, c.acctQueue = nil, nil
		} else {
			sp.Attr("result", "error")
		}
	}
	sp.End(c.cfg.Clock.Now())
	return err
}

// replayLocked redelivers spilled batches oldest-first, removing each
// from the journal only after its ack.
func (c *Client) replayLocked() error {
	if c.cfg.Journal == nil {
		return nil
	}
	for _, b := range c.cfg.Journal.Entries() {
		// RootNamed keys the trace by batch ID, so the replay span lands
		// in the same trace the batch's original flush and spill did.
		rsp := c.tracer.RootNamed(b.ID, spanClientReplay, c.cfg.Clock.Now())
		err := c.sendBatchLocked(b, rsp)
		var rej *RejectedError
		switch {
		case err == nil:
			rsp.Attr("result", "acked").End(c.cfg.Clock.Now())
			c.stats.BatchesReplayed++
			c.tel.replayed.Inc()
			c.tel.event(c.cfg.Clock.Now(), "eardbd.replay", c.cfg.Node, b.ID, len(b.Records)+len(b.Acct))
		case errors.As(err, &rej):
			// The daemon will never take this batch; keeping it would
			// wedge the journal forever.
			rsp.Attr("result", "rejected").End(c.cfg.Clock.Now())
			c.stats.BatchesRejected++
			c.stats.RecordsDropped += len(b.Records) + len(b.Acct)
			c.tel.rejected.Inc()
			c.tel.dropped.Add(uint64(len(b.Records) + len(b.Acct)))
		default:
			rsp.Attr("result", "unreachable").End(c.cfg.Clock.Now())
			return err
		}
		if err := c.cfg.Journal.Remove(b.ID); err != nil {
			return err
		}
	}
	return nil
}

// sendBatchLocked delivers one batch with bounded, jittered
// exponential backoff. It returns nil on ack, a *RejectedError on a
// server error frame, or ErrUnreachable when attempts are exhausted.
// Each send attempt is a client.send child of parent whose context
// rides the wire frame, which is how the server's span tree connects
// to this client's; backoff sleeps render as client.backoff children.
func (c *Client) sendBatchLocked(b wire.Batch, parent *trace.Active) error {
	f, err := wire.EncodeBatch(b)
	if err != nil {
		return err
	}
	for attempt := 0; attempt < c.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			c.stats.Retries++
			c.tel.retries.Inc()
			d := c.backoff(attempt)
			c.tel.backoff.Observe(d)
			bsp := parent.Child(spanClientBackoff, c.cfg.Clock.Now())
			c.cfg.Clock.Sleep(d)
			bsp.End(c.cfg.Clock.Now())
		}
		if c.conn == nil {
			conn, err := c.cfg.Dial()
			if err != nil {
				continue
			}
			c.stats.Redials++
			c.tel.redials.Inc()
			c.conn = conn
		}
		ssp := parent.Child(spanClientSend, c.cfg.Clock.Now())
		f.Trace = ssp.Context()
		var rt0 float64
		if c.cfg.RTTNow != nil {
			rt0 = c.cfg.RTTNow()
		}
		if err := wire.WriteFrame(c.conn, f, c.cfg.MaxFramePayload); err != nil {
			ssp.Attr("result", "io_error").End(c.cfg.Clock.Now())
			c.closeConnLocked()
			continue
		}
		resp, err := wire.ReadFrame(c.conn, c.cfg.MaxFramePayload)
		if err != nil {
			ssp.Attr("result", "io_error").End(c.cfg.Clock.Now())
			c.closeConnLocked()
			continue
		}
		switch resp.Type {
		case wire.TypeAck:
			ack, err := resp.AsAck()
			if err != nil || ack.BatchID != b.ID {
				ssp.Attr("result", "bad_ack").End(c.cfg.Clock.Now())
				c.closeConnLocked()
				continue
			}
			ssp.Attr("result", "acked").End(c.cfg.Clock.Now())
			if c.cfg.RTTNow != nil {
				rtt := c.cfg.RTTNow() - rt0
				c.tel.latSend.Observe(rtt)
				if c.cfg.OnBatchRTT != nil {
					c.cfg.OnBatchRTT(rtt)
				}
			}
			c.stats.BatchesSent++
			c.stats.RecordsSent += len(b.Records) + len(b.Acct)
			c.tel.sent.Inc()
			c.tel.recSent.Add(uint64(len(b.Records) + len(b.Acct)))
			return nil
		case wire.TypeError:
			ef, err := resp.AsError()
			if err != nil {
				ssp.Attr("result", "io_error").End(c.cfg.Clock.Now())
				c.closeConnLocked()
				continue
			}
			ssp.Attr("result", "rejected").End(c.cfg.Clock.Now())
			return &RejectedError{Msg: ef.Message}
		default:
			ssp.Attr("result", "bad_frame").End(c.cfg.Clock.Now())
			c.closeConnLocked()
		}
	}
	return fmt.Errorf("%w: %d attempts failed for batch %s", ErrUnreachable, c.cfg.MaxAttempts, b.ID)
}

// backoff returns the delay before the given retry attempt (attempt
// >= 1): exponential from the base, capped, scaled by a jitter factor
// in [0.5, 1) so a fleet of clients does not retry in lockstep.
func (c *Client) backoff(attempt int) float64 {
	d := c.cfg.BackoffBaseSec
	for i := 1; i < attempt && d < c.cfg.BackoffMaxSec; i++ {
		d *= 2
	}
	if d > c.cfg.BackoffMaxSec {
		d = c.cfg.BackoffMaxSec
	}
	return d * (0.5 + 0.5*c.cfg.Jitter.Float64())
}

// spillQueueLocked moves the whole pending load — both queues — into
// the journal under a fresh batch ID.
func (c *Client) spillQueueLocked() error {
	if c.pendingLocked() == 0 {
		return nil
	}
	c.seq++
	b := wire.Batch{
		ID:      BatchID(c.cfg.Node, c.seq),
		Node:    c.cfg.Node,
		Records: c.queue,
		Acct:    c.acctQueue,
	}
	if err := c.journalBatchLocked(b); err != nil {
		return err
	}
	c.queue, c.acctQueue = nil, nil
	return nil
}

// journalBatchLocked persists one batch to the journal. The spill is
// recorded as its own span in the batch's ID-keyed trace, so a
// spill-then-replay batch reads as one trace: flush, spill, replay.
func (c *Client) journalBatchLocked(b wire.Batch) error {
	if err := c.cfg.Journal.Append(b); err != nil {
		return err
	}
	now := c.cfg.Clock.Now()
	c.tracer.RootNamed(b.ID, spanClientSpill, now).
		Attr("records", strconv.Itoa(len(b.Records)+len(b.Acct))).End(now)
	c.stats.BatchesSpilled++
	c.stats.RecordsSpilled += len(b.Records) + len(b.Acct)
	c.tel.spilled.Inc()
	c.tel.event(c.cfg.Clock.Now(), "eardbd.spill", c.cfg.Node, b.ID, len(b.Records)+len(b.Acct))
	return nil
}

func (c *Client) closeConnLocked() {
	if c.conn != nil {
		_ = c.conn.Close()
		c.conn = nil
	}
}
