package eardbd

import (
	"fmt"
	"net"

	"goear/internal/telemetry/trace"
	"goear/internal/wire"
)

// Query performs one snapshot query over an open connection: the
// admin-tool side of the protocol (earctl dbd). A server error frame
// comes back as an error; maxPayload <= 0 uses the wire default.
func Query(conn net.Conn, q wire.Query, maxPayload int) (wire.Result, error) {
	return QueryCtx(conn, q, maxPayload, trace.Context{})
}

// QueryCtx is Query carrying a trace context on the query frame, so a
// caller's span tree (the federation root's fan-out) continues into
// the server's server.query span. A zero context sends an untraced
// frame, byte-identical to Query's.
func QueryCtx(conn net.Conn, q wire.Query, maxPayload int, tc trace.Context) (wire.Result, error) {
	qf, err := wire.EncodeQuery(q)
	if err != nil {
		return wire.Result{}, err
	}
	qf.Trace = tc
	if err := wire.WriteFrame(conn, qf, maxPayload); err != nil {
		return wire.Result{}, err
	}
	resp, err := wire.ReadFrame(conn, maxPayload)
	if err != nil {
		return wire.Result{}, err
	}
	switch resp.Type {
	case wire.TypeResult:
		return resp.AsResult()
	case wire.TypeError:
		ef, err := resp.AsError()
		if err != nil {
			return wire.Result{}, err
		}
		return wire.Result{}, fmt.Errorf("eardbd: server: %s", ef.Message)
	default:
		return wire.Result{}, fmt.Errorf("eardbd: unexpected %s response to query", resp.Type)
	}
}
