package eardbd

import "sync"

// Clock is the client's only source of time: flush pacing and backoff
// sleeps go through it, never through the wall clock. Production
// callers (the cmd/ binaries) supply a wall-clock implementation;
// tests and the closed-loop simulations supply a FakeClock, which is
// what makes client behaviour byte-reproducible. Times are seconds,
// matching the simulator's time base.
type Clock interface {
	// Now returns the current time in seconds.
	Now() float64
	// Sleep blocks for sec seconds.
	Sleep(sec float64)
}

// FakeClock is a deterministic Clock: Sleep advances the reading
// instead of blocking. It is safe for concurrent use.
type FakeClock struct {
	mu  sync.Mutex
	now float64
}

// NewFakeClock returns a FakeClock reading start seconds.
func NewFakeClock(start float64) *FakeClock { return &FakeClock{now: start} }

// Now implements Clock.
func (c *FakeClock) Now() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Sleep implements Clock by advancing the reading.
func (c *FakeClock) Sleep(sec float64) { c.Advance(sec) }

// Advance moves the clock forward by sec seconds.
func (c *FakeClock) Advance(sec float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if sec > 0 {
		c.now += sec
	}
}
