// Package eardbd implements EAR's database daemon tier. In the EAR
// framework the per-node daemons (package eard holds their accounting
// schema) do not talk to the cluster database directly: they stream
// job records to an intermediate aggregation daemon, EARDBD, which
// batches, validates and deduplicates the traffic, and which the
// global manager (package eargm) polls for the cluster power view.
//
// This package provides both halves of that tier: a Server that
// accepts wire-framed record batches over TCP or unix sockets and
// folds them into an eard.DB, and a Client that node-side code uses
// to ship records — buffering in a bounded queue, flushing on size and
// interval triggers, retrying with jittered exponential backoff, and
// spilling to a local journal when the daemon is unreachable so that
// telemetry loss never perturbs the measured workload.
package eardbd

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"

	"goear/internal/accounting"
	"goear/internal/eard"
	"goear/internal/telemetry"
	"goear/internal/telemetry/trace"
	"goear/internal/wire"
)

// Config bounds the server's exposure to any single connection.
type Config struct {
	// MaxFramePayload caps one frame's payload bytes (default
	// wire.DefaultMaxPayload). Larger frames are refused before their
	// payload is read, so a hostile length prefix cannot balloon memory.
	MaxFramePayload int
	// MaxBatchRecords caps records per batch (default 1024).
	MaxBatchRecords int
	// MaxSeenBatches bounds the batch-ID dedup window (default 65536).
	// Oldest IDs are evicted first; an eviction only matters if a client
	// replays a batch older than the window, and even then the replay is
	// caught record-by-record against the database.
	MaxSeenBatches int
	// AcctMaxRecords caps the per-job accounting store's resident
	// record count (0 = unlimited). Over the cap, whole (job, step)
	// groups are evicted oldest-window-first; each eviction advances
	// the store generation so stacked snapshot caches rebuild.
	AcctMaxRecords int
	// Telemetry, when set, mirrors the Stats counters into that set's
	// registry (goear_eardbd_* families) and logs batch outcomes to its
	// event recorder. Falls back to the process-global telemetry set;
	// nil when that is disabled too, making every instrument a no-op.
	Telemetry *telemetry.Set
	// Trace, when set, records a span tree per handled batch and query
	// into the buffer, continuing any trace context carried on the
	// incoming frame. Nil disables tracing at zero cost.
	Trace *trace.Buffer
	// Now, when set, stamps span start/end times and feeds the
	// per-operation latency histograms (goear_eardbd_latency_seconds).
	// It is a plain seconds reading — daemons inject a monotonic wall
	// clock, deterministic tests inject a logical one or leave it nil
	// (spans then carry no timestamps and no latencies are observed;
	// the span tree itself stays fully deterministic).
	Now func() float64
}

func (c Config) withDefaults() Config {
	if c.MaxFramePayload <= 0 {
		c.MaxFramePayload = wire.DefaultMaxPayload
	}
	if c.MaxBatchRecords <= 0 {
		c.MaxBatchRecords = 1024
	}
	if c.MaxSeenBatches <= 0 {
		c.MaxSeenBatches = 1 << 16
	}
	return c
}

// Stats counts server activity since start. The Acct* fields count
// per-job accounting records, classified with the same
// accepted/duplicate/replaced semantics as node reports.
type Stats struct {
	Connections      int `json:"connections"`
	Batches          int `json:"batches"`
	DuplicateBatches int `json:"duplicate_batches"`
	RecordsAccepted  int `json:"records_accepted"`
	RecordsDuplicate int `json:"records_duplicate"`
	RecordsReplaced  int `json:"records_replaced"`
	AcctAccepted     int `json:"acct_accepted"`
	AcctDuplicate    int `json:"acct_duplicate"`
	AcctReplaced     int `json:"acct_replaced"`
	BatchesRejected  int `json:"batches_rejected"`
	ProtocolErrors   int `json:"protocol_errors"`
	Queries          int `json:"queries"`
}

// Aggregate is the cluster-level view the global manager polls: how
// many nodes have reported, their summed last-known DC power, and the
// accounted energy so far.
type Aggregate struct {
	Nodes        int     `json:"nodes"`
	TotalPowerW  float64 `json:"total_power_w"`
	TotalEnergyJ float64 `json:"total_energy_j"`
	Records      int     `json:"records"`
}

// Server is the aggregation daemon. One Server may serve several
// listeners (a TCP port and a unix socket, say) concurrently.
type Server struct {
	cfg    Config
	db     *eard.DB
	acct   *accounting.Store
	tel    serverTel
	tracer *trace.Tracer

	mu        sync.Mutex
	seen      map[string]bool
	seenQueue []string // FIFO eviction order for seen
	nodeW     map[string]float64
	stats     Stats
	gen       uint64  // bumped whenever any record lands; see Generation
	lastMut   float64 // cfg.Now at the last generation bump (0 with no clock)

	connMu    sync.Mutex
	closed    bool
	listeners map[net.Listener]struct{}
	conns     map[net.Conn]struct{}
	wg        sync.WaitGroup
}

// NewServer builds a server folding records into db. Telemetry
// handles are resolved here, once: enabling the global set after
// construction does not retrofit an existing server.
func NewServer(db *eard.DB, cfg Config) *Server {
	ts := cfg.Telemetry
	if ts == nil {
		ts = telemetry.Default()
	}
	acct := accounting.NewStore(ts)
	if cfg.AcctMaxRecords > 0 {
		acct.SetMaxRecords(cfg.AcctMaxRecords)
	}
	return &Server{
		cfg:       cfg.withDefaults(),
		db:        db,
		acct:      acct,
		tel:       newServerTel(ts),
		tracer:    trace.New("eardbd", cfg.Trace),
		seen:      map[string]bool{},
		nodeW:     map[string]float64{},
		listeners: map[net.Listener]struct{}{},
		conns:     map[net.Conn]struct{}{},
	}
}

// nowSec reads the injected latency clock, 0 when none is configured.
func (s *Server) nowSec() float64 {
	if s.cfg.Now == nil {
		return 0
	}
	return s.cfg.Now()
}

// observe records one latency sample when a clock is configured;
// without one there is nothing meaningful to observe.
func (s *Server) observe(h *telemetry.Histogram, startSec float64) {
	if s.cfg.Now != nil {
		h.Observe(s.cfg.Now() - startSec)
	}
}

// DB exposes the backing database (for persistence by the daemon
// binary).
func (s *Server) DB() *eard.DB { return s.db }

// Acct exposes the per-job accounting store the server ingests into.
func (s *Server) Acct() *accounting.Store { return s.acct }

// Generation reports the server's mutation counter: it advances every
// time a record — node report or accounting record — is accepted or
// replaced, and never otherwise. Federation roots poll it to decide
// whether their cached merged snapshot is still exact.
func (s *Server) Generation() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gen
}

// HealthCheck returns a readiness check on store freshness: degraded
// when records have landed before but none for more than staleAfterSec
// seconds — the signature of a daemon whose reporters all went away.
// With no clock configured, no staleness bound, or no records yet, the
// check only reports the generation. Mount it on a telemetry.Health.
func (s *Server) HealthCheck(staleAfterSec float64) telemetry.CheckFunc {
	return func() telemetry.Check {
		s.mu.Lock()
		gen, last := s.gen, s.lastMut
		s.mu.Unlock()
		c := telemetry.Check{Name: "store", OK: true, Detail: fmt.Sprintf("generation %d", gen)}
		if gen == 0 || staleAfterSec <= 0 || s.cfg.Now == nil {
			return c
		}
		age := s.cfg.Now() - last
		if age > staleAfterSec {
			c.OK = false
			c.Detail = fmt.Sprintf("generation %d stale: %.0fs since last record (limit %.0fs)", gen, age, staleAfterSec)
		}
		return c
	}
}

// Serve accepts connections on l until the listener fails or the
// server is closed; Close makes it return nil. Each connection is
// handled on its own goroutine.
func (s *Server) Serve(l net.Listener) error {
	s.connMu.Lock()
	if s.closed {
		s.connMu.Unlock()
		if err := l.Close(); err != nil {
			return fmt.Errorf("eardbd: close listener of closed server: %w", err)
		}
		return errors.New("eardbd: server is closed")
	}
	s.listeners[l] = struct{}{}
	s.connMu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			s.connMu.Lock()
			closed := s.closed
			delete(s.listeners, l)
			s.connMu.Unlock()
			if closed {
				return nil
			}
			return fmt.Errorf("eardbd: accept: %w", err)
		}
		s.connMu.Lock()
		if s.closed {
			s.connMu.Unlock()
			_ = conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.wg.Add(1)
		s.connMu.Unlock()
		go func() {
			defer s.wg.Done()
			s.ServeConn(conn)
			s.connMu.Lock()
			delete(s.conns, conn)
			s.connMu.Unlock()
		}()
	}
}

// Close stops all listeners, severs live connections and waits for
// their handlers.
func (s *Server) Close() error {
	s.connMu.Lock()
	if s.closed {
		s.connMu.Unlock()
		return nil
	}
	s.closed = true
	var firstErr error
	for l := range s.listeners {
		if err := l.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for c := range s.conns {
		if err := c.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	s.connMu.Unlock()
	s.wg.Wait()
	return firstErr
}

// ServeConn speaks the wire protocol on one connection until EOF or a
// protocol error, then closes it. It is exported so tests and
// simulations can serve synthetic transports (net.Pipe) without a
// listener.
func (s *Server) ServeConn(conn net.Conn) {
	defer func() { _ = conn.Close() }()
	s.mu.Lock()
	s.stats.Connections++
	s.mu.Unlock()
	s.tel.conns.Inc()
	for {
		f, err := wire.ReadFrame(conn, s.cfg.MaxFramePayload)
		if err != nil {
			// A peer hanging up between frames (EOF, or a closed pipe in
			// simulated transports) is a normal disconnect, not a protocol
			// violation.
			if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrClosedPipe) && !errors.Is(err, net.ErrClosed) {
				s.countProtocolError()
				s.reply(conn, mustError(err.Error()))
			}
			return
		}
		switch f.Type {
		case wire.TypeBatch:
			ok := s.handleBatch(conn, f)
			if !ok {
				return
			}
		case wire.TypeQuery:
			ok := s.handleQuery(conn, f)
			if !ok {
				return
			}
		default:
			s.countProtocolError()
			s.reply(conn, mustError(fmt.Sprintf("unexpected %s frame", f.Type)))
			return
		}
	}
}

// handleBatch validates, deduplicates and stores one batch, then
// acks. It reports whether the connection should stay open. When
// tracing is on, the handling renders as a server.batch span —
// continuing the context the client stamped on the frame — with
// validate/dedup/store/acct children, so one delivered batch reads as
// a connected tree from the client's flush to the rows landing here.
func (s *Server) handleBatch(conn net.Conn, f wire.Frame) bool {
	t0 := s.nowSec()
	b, err := f.AsBatch()
	if err != nil {
		s.countProtocolError()
		s.reply(conn, mustError(err.Error()))
		return false
	}
	sp := s.tracer.Remote(f.Trace, spanServerBatch, t0)
	sp.Attr("batch", b.ID)
	done := func(result string) {
		sp.Attr("result", result).End(s.nowSec())
		s.observe(s.tel.latBatch, t0)
	}

	vsp := sp.Child(spanServerValidate, s.nowSec())
	reject := func(msg string) bool {
		vsp.End(s.nowSec())
		done("rejected")
		s.rejectBatch(conn, msg)
		return true
	}
	if b.ID == "" {
		return reject("batch has no id")
	}
	if n := len(b.Records) + len(b.Acct); n > s.cfg.MaxBatchRecords {
		return reject(fmt.Sprintf("batch %s holds %d records, limit %d", b.ID, n, s.cfg.MaxBatchRecords))
	}
	for _, r := range b.Records {
		if err := r.Validate(); err != nil {
			return reject(fmt.Sprintf("batch %s: %v", b.ID, err))
		}
	}
	for _, r := range b.Acct {
		if err := r.Validate(); err != nil {
			return reject(fmt.Sprintf("batch %s: %v", b.ID, err))
		}
	}
	vsp.End(s.nowSec())

	dsp := sp.Child(spanServerDedup, s.nowSec())
	s.mu.Lock()
	if s.seen[b.ID] {
		n := len(b.Records) + len(b.Acct)
		s.stats.Batches++
		s.stats.DuplicateBatches++
		s.mu.Unlock()
		dsp.End(s.nowSec())
		done("duplicate")
		s.tel.batchDup.Inc()
		s.tel.recDup.Add(uint64(n))
		s.tel.batchEvent(b.Node, b.ID, "duplicate", &int3{b: n})
		return s.reply(conn, mustAck(wire.Ack{BatchID: b.ID, Duplicate: n}))
	}
	s.mu.Unlock()
	dsp.End(s.nowSec())

	ssp := sp.Child(spanServerStore, s.nowSec())
	ack := wire.Ack{BatchID: b.ID}
	for _, r := range b.Records {
		prev, exists := s.db.Get(r.JobID, r.StepID, r.Node)
		switch {
		case exists && prev == r:
			// Identical re-delivery (e.g. the batch-ID window evicted a
			// replayed batch): nothing to store.
			ack.Duplicate++
			continue
		case exists:
			ack.Replaced++
		default:
			ack.Accepted++
		}
		if err := s.db.Insert(r); err != nil {
			// Validate passed above; an insert failure here is a bug, not
			// client traffic. Surface it and drop the connection.
			ssp.End(s.nowSec())
			done("error")
			s.countProtocolError()
			s.reply(conn, mustError(fmt.Sprintf("store batch %s: %v", b.ID, err)))
			return false
		}
	}
	ssp.End(s.nowSec())
	// Accounting records ride the same batch and fold into the same
	// ack so the client's exactly-once machinery sees one outcome per
	// batch; the store classifies them itself.
	asp := sp.Child(spanServerAcct, s.nowSec())
	var acctA, acctD, acctR int
	for _, r := range b.Acct {
		class, err := s.acct.Insert(r)
		if err != nil {
			asp.End(s.nowSec())
			done("error")
			s.countProtocolError()
			s.reply(conn, mustError(fmt.Sprintf("store batch %s: %v", b.ID, err)))
			return false
		}
		switch class {
		case accounting.ClassDuplicate:
			acctD++
		case accounting.ClassReplaced:
			acctR++
		default:
			acctA++
		}
	}
	asp.End(s.nowSec())
	ack.Accepted += acctA
	ack.Duplicate += acctD
	ack.Replaced += acctR

	s.mu.Lock()
	s.stats.Batches++
	s.stats.RecordsAccepted += ack.Accepted - acctA
	s.stats.RecordsDuplicate += ack.Duplicate - acctD
	s.stats.RecordsReplaced += ack.Replaced - acctR
	s.stats.AcctAccepted += acctA
	s.stats.AcctDuplicate += acctD
	s.stats.AcctReplaced += acctR
	if ack.Accepted+ack.Replaced > 0 {
		s.gen++
		s.lastMut = s.nowSec()
	}
	for _, r := range b.Records {
		s.nodeW[r.Node] = r.AvgPower
	}
	s.seen[b.ID] = true
	s.seenQueue = append(s.seenQueue, b.ID)
	for len(s.seenQueue) > s.cfg.MaxSeenBatches {
		delete(s.seen, s.seenQueue[0])
		s.seenQueue = s.seenQueue[1:]
	}
	s.mu.Unlock()
	done("accepted")
	s.tel.batchOK.Inc()
	s.tel.recAccept.Add(uint64(ack.Accepted))
	s.tel.recDup.Add(uint64(ack.Duplicate))
	s.tel.recReplace.Add(uint64(ack.Replaced))
	s.tel.batchEvent(b.Node, b.ID, "accepted", &int3{ack.Accepted, ack.Duplicate, ack.Replaced})
	return s.reply(conn, mustAck(ack))
}

// handleQuery answers one snapshot query. It reports whether the
// connection should stay open.
func (s *Server) handleQuery(conn net.Conn, f wire.Frame) bool {
	t0 := s.nowSec()
	q, err := f.AsQuery()
	if err != nil {
		s.countProtocolError()
		s.reply(conn, mustError(err.Error()))
		return false
	}
	sp := s.tracer.Remote(f.Trace, spanServerQuery, t0)
	sp.Attr("kind", string(q.Kind))
	defer func() {
		sp.End(s.nowSec())
		s.observe(s.tel.latQuery, t0)
	}()
	s.mu.Lock()
	s.stats.Queries++
	s.mu.Unlock()
	s.tel.queries.Inc()
	var resp wire.Frame
	switch q.Kind {
	case wire.QueryStats:
		resp, err = wire.EncodeResult(q.Kind, s.Stats())
	case wire.QueryAggregate:
		resp, err = wire.EncodeResult(q.Kind, s.Aggregate())
	case wire.QueryJobs:
		resp, err = wire.EncodeResult(q.Kind, s.JobSummaries())
	case wire.QueryNodePowers:
		resp, err = wire.EncodeResult(q.Kind, s.NodePowersByName())
	case wire.QueryRecords:
		resp, err = wire.EncodeResult(q.Kind, s.db.Records())
	case wire.QueryAcctJobs:
		var page accounting.Page
		page, err = s.acct.Query(accounting.Query{
			User:   q.User,
			Job:    q.Job,
			Since:  q.Since,
			Limit:  q.Limit,
			Cursor: q.Cursor,
		})
		if err == nil {
			resp, err = wire.EncodeResult(q.Kind, page)
		}
	case wire.QueryAcctRecords:
		resp, err = wire.EncodeResult(q.Kind, s.acct.Snapshot())
	case wire.QueryGeneration:
		resp, err = wire.EncodeResult(q.Kind, wire.Generation{Gen: s.Generation()})
	case wire.QuerySummary:
		var sum eard.JobSummary
		sum, err = s.db.Summarize(q.Job, q.Step)
		if err == nil {
			resp, err = wire.EncodeResult(q.Kind, sum)
		}
	default:
		s.reply(conn, mustError(fmt.Sprintf("unknown query kind %q", q.Kind)))
		return true
	}
	if err != nil {
		s.reply(conn, mustError(err.Error()))
		return true
	}
	return s.reply(conn, resp)
}

// JobSummaries summarizes every (job, step) pair, in db.Jobs order.
func (s *Server) JobSummaries() []eard.JobSummary {
	jobs := s.db.Jobs()
	out := make([]eard.JobSummary, 0, len(jobs))
	for _, js := range jobs {
		sum, err := s.db.Summarize(js[0], js[1])
		if err != nil {
			// A job listed by Jobs always has records; a race with a
			// concurrent Load is the only path here. Skip it.
			continue
		}
		out = append(out, sum)
	}
	return out
}

// Stats returns a snapshot of the activity counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Aggregate returns the cluster view: node count, summed last-known
// node power, total accounted energy and record count.
func (s *Server) Aggregate() Aggregate {
	powers := s.NodePowers()
	agg := Aggregate{Nodes: len(powers), Records: s.db.Len()}
	for _, p := range powers {
		agg.TotalPowerW += p
	}
	for _, sum := range s.JobSummaries() {
		agg.TotalEnergyJ += sum.EnergyJ
	}
	return agg
}

// NodePowers implements eargm.PowerSource: the last reported DC power
// of every node, ordered by node name so the feed is deterministic.
func (s *Server) NodePowers() []float64 {
	byName := s.NodePowersByName()
	out := make([]float64, len(byName))
	for i, np := range byName {
		out[i] = np.PowerW
	}
	return out
}

// SeedAcct restores the job accounting store, as a daemon restarting
// over a persisted database does: accepted job records are durable
// state, so they survive a restart the way node records in the DB do.
func (s *Server) SeedAcct(recs []accounting.Record) {
	s.acct.Seed(recs)
}

// SeedNodePowers pre-populates the last-known per-node power view, as
// a daemon restarting over a persisted DB does from its saved
// snapshot: the record set alone cannot reconstruct ingestion order,
// so the power view travels separately across a restart.
func (s *Server) SeedNodePowers(nps []wire.NodePower) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, np := range nps {
		s.nodeW[np.Node] = np.PowerW
	}
}

// NodePowersByName returns the last reported DC power of every node
// with its name, sorted by node. This is the shard-level view the
// federation root merges: names make the merge unambiguous, and the
// shared sort order keeps the merged sum arithmetic identical to a
// single daemon's.
func (s *Server) NodePowersByName() []wire.NodePower {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.nodeW))
	for n := range s.nodeW {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]wire.NodePower, len(names))
	for i, n := range names {
		out[i] = wire.NodePower{Node: n, PowerW: s.nodeW[n]}
	}
	return out
}

func (s *Server) countProtocolError() {
	s.mu.Lock()
	s.stats.ProtocolErrors++
	s.mu.Unlock()
	s.tel.protoErrs.Inc()
}

// rejectBatch counts and reports a permanent (non-retryable) batch
// rejection while keeping the connection open.
func (s *Server) rejectBatch(conn net.Conn, msg string) {
	s.mu.Lock()
	s.stats.BatchesRejected++
	s.mu.Unlock()
	s.tel.batchRej.Inc()
	s.tel.batchEvent("", "", "rejected", nil)
	s.reply(conn, mustError(msg))
}

// reply best-effort writes a frame; a failed write means the peer is
// gone, which the caller treats as connection end.
func (s *Server) reply(conn net.Conn, f wire.Frame) bool {
	if err := wire.WriteFrame(conn, f, s.cfg.MaxFramePayload); err != nil {
		return false
	}
	return true
}

// mustError encodes an error frame; encoding a plain string cannot
// fail.
func mustError(msg string) wire.Frame {
	f, err := wire.EncodeError(msg)
	if err != nil {
		panic(err)
	}
	return f
}

// mustAck encodes an ack frame; encoding the fixed Ack struct cannot
// fail.
func mustAck(a wire.Ack) wire.Frame {
	f, err := wire.EncodeAck(a)
	if err != nil {
		panic(err)
	}
	return f
}
