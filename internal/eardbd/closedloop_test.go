package eardbd_test

import (
	"encoding/json"
	"strings"
	"sync/atomic"
	"testing"

	"goear/internal/eardbd"
	"goear/internal/eardbd/dbdtest"
	"goear/internal/eargm"
	"goear/internal/loadgen"
	"goear/internal/telemetry"
)

// runClosedLoop drives the full reporting tier deterministically: N
// simulated nodes, each a real buffering client over net.Pipe, stream
// job records into one eardbd server under `workers` concurrent
// feeders; the eargm budget ratchet then runs off the server's
// aggregate. It returns the canonical transcript, which must be
// byte-identical whatever the worker count, repetition — or, in the
// federated variants below, the shard count and fault history.
func runClosedLoop(t *testing.T, nodes, workers int) string {
	t.Helper()
	cluster, g := buildCanonical(t, nodes, workers, 1, nil)
	res, err := g.Run(cluster.DialFor, loadgen.Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	if res.NodeErrors != 0 || res.BacklogBatches != 0 {
		t.Fatalf("canonical feed faulted: %+v", res)
	}
	tr, err := dbdtest.Transcript(dbdtest.ServerView{Srv: cluster.Server("shard0")}, nodes)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

// buildCanonical assembles a shard cluster and a generator for the
// canonical workload.
func buildCanonical(t *testing.T, nodes, workers, shards int, set *telemetry.Set) (*loadgen.Cluster, *loadgen.Generator) {
	t.Helper()
	cluster, err := loadgen.NewCluster(shards, eardbd.Config{Telemetry: set})
	if err != nil {
		t.Fatal(err)
	}
	g, err := loadgen.New(loadgen.Config{
		Nodes:     nodes,
		Workers:   workers,
		NodeName:  dbdtest.CanonicalNode,
		Telemetry: set,
	})
	if err != nil {
		t.Fatal(err)
	}
	return cluster, g
}

// TestClosedLoopDeterminism pins the tentpole contract: the node →
// eardbd → eargm pipeline produces byte-identical transcripts across
// repeated runs and across feeder worker counts.
func TestClosedLoopDeterminism(t *testing.T) {
	const nodes = 8
	ref := runClosedLoop(t, nodes, 1)
	if !strings.Contains(ref, "accepted=80") {
		t.Fatalf("transcript missing the %d records:\n%s", nodes*10, ref)
	}
	for _, workers := range []int{1, 4, 8} {
		for rep := 0; rep < 2; rep++ {
			got := runClosedLoop(t, nodes, workers)
			if got != ref {
				t.Fatalf("workers=%d rep=%d transcript differs:\n--- want\n%s--- got\n%s", workers, rep, ref, got)
			}
		}
	}
}

// TestClosedLoopRatchetsUnderBudget checks the control outcome, not
// just its determinism: with the budget below the uncapped draw the
// manager must impose a cap, visible in the event trace.
func TestClosedLoopRatchetsUnderBudget(t *testing.T) {
	out := runClosedLoop(t, 8, 4)
	var agg eardbd.Aggregate
	if err := json.Unmarshal([]byte(out[:strings.Index(out, "\n")]), &agg); err != nil {
		t.Fatal(err)
	}
	if agg.Nodes != 8 || agg.Records != 80 {
		t.Fatalf("aggregate = %+v", agg)
	}
	if agg.TotalPowerW <= 260*8 {
		t.Fatalf("seeded powers landed under budget, test fixture broken: %g", agg.TotalPowerW)
	}
	if !strings.Contains(out, `"FinalCap":`) {
		t.Fatalf("transcript lacks manager stats:\n%s", out)
	}
	var m eargm.Stats
	lines := strings.Split(out, "\n")
	if err := json.Unmarshal([]byte(lines[4]), &m); err != nil {
		t.Fatal(err)
	}
	if m.FinalCap == 0 {
		t.Errorf("manager left the cluster uncapped over budget: %+v", m)
	}
}

// TestClosedLoopFederationShardCounts extends the golden across the
// federation tier: the same workload through 1, 2 and 4 shards,
// queried through the federation root, must render the exact
// single-daemon transcript — merge order, float summation order and
// summary arithmetic all included.
func TestClosedLoopFederationShardCounts(t *testing.T) {
	const nodes = 8
	ref := runClosedLoop(t, nodes, 4)
	for _, shards := range []int{1, 2, 4} {
		cluster, g := buildCanonical(t, nodes, 4, shards, nil)
		res, err := g.Run(cluster.DialFor, loadgen.Hooks{})
		if err != nil {
			t.Fatal(err)
		}
		if res.NodeErrors != 0 || res.BacklogBatches != 0 {
			t.Fatalf("shards=%d: feed faulted: %+v", shards, res)
		}
		root, err := cluster.Root()
		if err != nil {
			t.Fatal(err)
		}
		got, err := dbdtest.Transcript(dbdtest.RootView{Root: root}, nodes)
		if err != nil {
			t.Fatal(err)
		}
		if got != ref {
			t.Fatalf("shards=%d: federated transcript differs from single-daemon golden:\n--- want\n%s--- got\n%s", shards, ref, got)
		}
	}
}

// TestClosedLoopFederationFaultReplay kills a shard mid-load and
// restarts it before the drain: the spill journals must replay
// exactly once — asserted through the goear_eardbd_* client telemetry
// — and the federated transcript must match the no-fault golden in
// everything but the redelivery counters.
func TestClosedLoopFederationFaultReplay(t *testing.T) {
	const nodes, shards = 24, 3
	golden := runClosedLoop(t, nodes, 4)

	set := telemetry.NewSet()
	cluster, g := buildCanonical(t, nodes, 4, shards, set)
	// Kill the shard owning a mid-burst node once a few nodes are
	// done: the owner's remaining reporters must spill.
	victim := cluster.Owner(dbdtest.CanonicalNode(nodes - 1))
	var done int64
	var killing atomic.Bool
	res, err := g.Run(cluster.DialFor, loadgen.Hooks{AfterNode: func(i int) {
		if atomic.AddInt64(&done, 1) >= 6 && killing.CompareAndSwap(false, true) {
			if err := cluster.Kill(victim); err != nil {
				t.Error(err)
			}
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res.NodeErrors != 0 {
		t.Fatalf("node reporters failed: %+v", res)
	}
	if err := cluster.Restart(victim); err != nil {
		t.Fatal(err)
	}
	left, err := g.Drain(cluster.DialFor, 5)
	if err != nil {
		t.Fatal(err)
	}
	if left != 0 {
		t.Fatalf("drain left %d batches journaled", left)
	}

	st := g.Stats()
	if st.BatchesSpilled == 0 {
		t.Fatal("kill produced no spills; fault timing broken")
	}
	if st.BatchesSpilled != st.BatchesReplayed {
		t.Fatalf("spilled %d batches, replayed %d", st.BatchesSpilled, st.BatchesReplayed)
	}
	var b strings.Builder
	if err := set.Reg().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	vals := map[string]float64{}
	samples, err := telemetry.ParseText(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range samples {
		vals[s.Name+s.Labels] = s.Value
	}
	spilled := vals["goear_eardbd_client_batches_spilled_total"]
	replayed := vals["goear_eardbd_client_batches_replayed_total"]
	if spilled == 0 || spilled != replayed {
		t.Fatalf("telemetry spill/replay = %g/%g, want equal and positive", spilled, replayed)
	}
	if dropped := vals["goear_eardbd_client_records_dropped_total"]; dropped != 0 {
		t.Fatalf("telemetry reports %g dropped records", dropped)
	}

	root, err := cluster.Root()
	if err != nil {
		t.Fatal(err)
	}
	faulted, err := dbdtest.Transcript(dbdtest.RootView{Root: root}, nodes)
	if err != nil {
		t.Fatal(err)
	}
	if dbdtest.TrimStats(faulted) != dbdtest.TrimStats(golden) {
		t.Fatalf("faulted transcript differs from no-fault golden:\n--- want\n%s--- got\n%s", golden, faulted)
	}
}
