package eardbd

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"goear/internal/eard"
	"goear/internal/eargm"
	"goear/internal/par"
)

// runClosedLoop drives the full reporting tier deterministically: N
// simulated nodes, each with its own client over net.Pipe, stream job
// records into one eardbd server under `workers` concurrent feeders;
// the eargm budget ratchet then runs off the server's aggregate. It
// returns a rendered transcript of everything observable — aggregate,
// node powers, job summaries, cap trace, manager stats — which must be
// byte-identical whatever the worker count or repetition.
func runClosedLoop(t *testing.T, nodes, workers int) string {
	t.Helper()
	db := eard.NewDB()
	srv := NewServer(db, Config{})

	err := par.ForEach(workers, nodes, func(i int) error {
		node := fmt.Sprintf("n%02d", i)
		rng := rand.New(rand.NewSource(int64(1000 + i)))
		c, err := NewClient(ClientConfig{
			Node:         node,
			Dial:         pipeDialer(srv, nil),
			Clock:        NewFakeClock(0),
			Jitter:       rand.New(rand.NewSource(int64(i))),
			BatchRecords: 4,
		})
		if err != nil {
			return err
		}
		// Each node reports the same deterministic job mix: per-node
		// power varies with a seeded generator, keys are unique.
		for j := 0; j < 10; j++ {
			power := 250 + 40*rng.Float64()
			r := eard.JobRecord{
				JobID: fmt.Sprintf("job%d", j%3), StepID: fmt.Sprint(j / 3), Node: node,
				App: "BT-MZ.C", Policy: "min_energy",
				TimeSec: 120, EnergyJ: power * 120, AvgPower: power,
				AvgCPU: 2.1, AvgIMC: 2.4,
			}
			if err := c.Enqueue(r); err != nil {
				return err
			}
		}
		return c.Close()
	})
	if err != nil {
		t.Fatal(err)
	}

	// The global manager derives cluster DC power from the eardbd
	// aggregate instead of being handed numbers.
	m, err := eargm.New(eargm.Config{BudgetW: 260 * float64(nodes), MaxCapPstate: 8})
	if err != nil {
		t.Fatal(err)
	}
	caps, err := eargm.Drive(m, srv, 0, 12)
	if err != nil {
		t.Fatal(err)
	}

	var b strings.Builder
	enc := json.NewEncoder(&b)
	for _, v := range []any{srv.Aggregate(), srv.NodePowers(), srv.jobSummaries(), caps, m.Stats()} {
		if err := enc.Encode(v); err != nil {
			t.Fatal(err)
		}
	}
	// Order-independent activity counters (per-connection error paths
	// never fire here, and every batch is fresh).
	st := srv.Stats()
	fmt.Fprintf(&b, "batches=%d accepted=%d dup=%d replaced=%d rejected=%d proto=%d\n",
		st.Batches, st.RecordsAccepted, st.RecordsDuplicate, st.RecordsReplaced,
		st.BatchesRejected, st.ProtocolErrors)
	return b.String()
}

// TestClosedLoopDeterminism pins the tentpole contract: the node →
// eardbd → eargm pipeline produces byte-identical aggregates across
// repeated runs and across feeder worker counts.
func TestClosedLoopDeterminism(t *testing.T) {
	const nodes = 8
	ref := runClosedLoop(t, nodes, 1)
	if !strings.Contains(ref, "accepted=80") {
		t.Fatalf("transcript missing the %d records:\n%s", nodes*10, ref)
	}
	for _, workers := range []int{1, 4, 8} {
		for rep := 0; rep < 2; rep++ {
			got := runClosedLoop(t, nodes, workers)
			if got != ref {
				t.Fatalf("workers=%d rep=%d transcript differs:\n--- want\n%s--- got\n%s", workers, rep, ref, got)
			}
		}
	}
}

// TestClosedLoopRatchetsUnderBudget checks the control outcome, not
// just its determinism: with the budget below the uncapped draw the
// manager must impose a cap, visible in the event trace.
func TestClosedLoopRatchetsUnderBudget(t *testing.T) {
	out := runClosedLoop(t, 8, 4)
	var agg Aggregate
	if err := json.Unmarshal([]byte(out[:strings.Index(out, "\n")]), &agg); err != nil {
		t.Fatal(err)
	}
	if agg.Nodes != 8 || agg.Records != 80 {
		t.Fatalf("aggregate = %+v", agg)
	}
	if agg.TotalPowerW <= 260*8 {
		t.Fatalf("seeded powers landed under budget, test fixture broken: %g", agg.TotalPowerW)
	}
	if !strings.Contains(out, `"FinalCap":`) {
		t.Fatalf("transcript lacks manager stats:\n%s", out)
	}
	var m eargm.Stats
	lines := strings.Split(out, "\n")
	if err := json.Unmarshal([]byte(lines[4]), &m); err != nil {
		t.Fatal(err)
	}
	if m.FinalCap == 0 {
		t.Errorf("manager left the cluster uncapped over budget: %+v", m)
	}
}
