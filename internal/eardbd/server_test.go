package eardbd

import (
	"encoding/json"
	"fmt"
	"net"
	"path/filepath"
	"runtime"
	"testing"

	"goear/internal/eard"
	"goear/internal/wire"
)

func rec(job, step, node string, power float64) eard.JobRecord {
	return eard.JobRecord{
		JobID: job, StepID: step, Node: node, App: "BT-MZ.C", Policy: "min_energy",
		TimeSec: 100, EnergyJ: power * 100, AvgPower: power,
	}
}

// startServer serves one listener on a background goroutine and
// returns the server plus its address.
func startServer(t *testing.T, network, addr string, cfg Config) (*Server, net.Addr) {
	t.Helper()
	l, err := net.Listen(network, addr)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(eard.NewDB(), cfg)
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	t.Cleanup(func() {
		if err := srv.Close(); err != nil {
			t.Errorf("server close: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("serve returned: %v", err)
		}
	})
	return srv, l.Addr()
}

// exchange writes one frame and reads the response.
func exchange(t *testing.T, conn net.Conn, f wire.Frame) wire.Frame {
	t.Helper()
	if err := wire.WriteFrame(conn, f, 0); err != nil {
		t.Fatal(err)
	}
	resp, err := wire.ReadFrame(conn, 0)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func mustBatch(t *testing.T, b wire.Batch) wire.Frame {
	t.Helper()
	f, err := wire.EncodeBatch(b)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestServerAcceptsAndAcks(t *testing.T) {
	srv, addr := startServer(t, "tcp", "127.0.0.1:0", Config{})
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	b := wire.Batch{ID: "n01/1", Node: "n01", Records: []eard.JobRecord{
		rec("j1", "0", "n01", 300), rec("j1", "0", "n02", 310),
	}}
	resp := exchange(t, conn, mustBatch(t, b))
	ack, err := resp.AsAck()
	if err != nil {
		t.Fatalf("response = %s: %v", resp.Type, err)
	}
	if ack.BatchID != "n01/1" || ack.Accepted != 2 || ack.Duplicate != 0 || ack.Replaced != 0 {
		t.Errorf("ack = %+v", ack)
	}
	if srv.DB().Len() != 2 {
		t.Errorf("db holds %d records, want 2", srv.DB().Len())
	}

	// The identical batch ID is deduplicated without touching the DB.
	resp = exchange(t, conn, mustBatch(t, b))
	ack, err = resp.AsAck()
	if err != nil {
		t.Fatal(err)
	}
	if ack.Accepted != 0 || ack.Duplicate != 2 {
		t.Errorf("replay ack = %+v", ack)
	}

	// Same records under a new batch ID: record-level dedup catches
	// them.
	b2 := b
	b2.ID = "n01/2"
	resp = exchange(t, conn, mustBatch(t, b2))
	if ack, _ = resp.AsAck(); ack.Accepted != 0 || ack.Duplicate != 2 {
		t.Errorf("new-id replay ack = %+v", ack)
	}

	// An updated record for an existing key counts as replaced.
	b3 := wire.Batch{ID: "n01/3", Node: "n01", Records: []eard.JobRecord{rec("j1", "0", "n01", 305)}}
	resp = exchange(t, conn, mustBatch(t, b3))
	if ack, _ = resp.AsAck(); ack.Replaced != 1 || ack.Accepted != 0 {
		t.Errorf("update ack = %+v", ack)
	}

	st := srv.Stats()
	if st.Batches != 4 || st.DuplicateBatches != 1 || st.RecordsAccepted != 2 ||
		st.RecordsDuplicate != 2 || st.RecordsReplaced != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestServerOverUnixSocket(t *testing.T) {
	if runtime.GOOS == "windows" {
		t.Skip("unix sockets")
	}
	sock := filepath.Join(t.TempDir(), "eardbd.sock")
	srv, addr := startServer(t, "unix", sock, Config{})
	conn, err := net.Dial("unix", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	resp := exchange(t, conn, mustBatch(t, wire.Batch{ID: "n02/1", Node: "n02",
		Records: []eard.JobRecord{rec("j2", "0", "n02", 250)}}))
	if ack, err := resp.AsAck(); err != nil || ack.Accepted != 1 {
		t.Errorf("unix ack = %+v, %v", resp, err)
	}
	if srv.DB().Len() != 1 {
		t.Errorf("db holds %d records", srv.DB().Len())
	}
}

func TestServerRejectsBadBatches(t *testing.T) {
	srv, addr := startServer(t, "tcp", "127.0.0.1:0", Config{MaxBatchRecords: 2})
	dial := func() net.Conn {
		conn, err := net.Dial("tcp", addr.String())
		if err != nil {
			t.Fatal(err)
		}
		return conn
	}
	conn := dial()
	defer conn.Close()

	// Oversized batch: rejected, connection stays usable.
	big := wire.Batch{ID: "n01/1", Node: "n01", Records: []eard.JobRecord{
		rec("j", "0", "a", 1), rec("j", "0", "b", 1), rec("j", "0", "c", 1),
	}}
	resp := exchange(t, conn, mustBatch(t, big))
	if ef, err := resp.AsError(); err != nil || ef.Message == "" {
		t.Fatalf("oversized batch response = %s %v", resp.Type, err)
	}

	// Missing batch ID.
	resp = exchange(t, conn, mustBatch(t, wire.Batch{Node: "n01",
		Records: []eard.JobRecord{rec("j", "0", "a", 1)}}))
	if _, err := resp.AsError(); err != nil {
		t.Fatalf("id-less batch response = %s", resp.Type)
	}

	// Invalid record: the whole batch is refused atomically.
	bad := wire.Batch{ID: "n01/2", Node: "n01", Records: []eard.JobRecord{
		rec("j", "0", "a", 1), {JobID: "", Node: "x", TimeSec: 1},
	}}
	resp = exchange(t, conn, mustBatch(t, bad))
	if _, err := resp.AsError(); err != nil {
		t.Fatalf("invalid-record response = %s", resp.Type)
	}
	if srv.DB().Len() != 0 {
		t.Errorf("rejected batches leaked %d records into the db", srv.DB().Len())
	}
	if st := srv.Stats(); st.BatchesRejected != 3 {
		t.Errorf("stats = %+v, want 3 rejected", st)
	}

	// The connection survived all three rejections.
	resp = exchange(t, conn, mustBatch(t, wire.Batch{ID: "n01/3", Node: "n01",
		Records: []eard.JobRecord{rec("j", "0", "a", 1)}}))
	if ack, err := resp.AsAck(); err != nil || ack.Accepted != 1 {
		t.Errorf("post-rejection ack = %+v, %v", resp, err)
	}
}

func TestServerClosesOnGarbage(t *testing.T) {
	srv, addr := startServer(t, "tcp", "127.0.0.1:0", Config{})
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("GET / HTTP/1.1\r\n\r\n this is not a frame")); err != nil {
		t.Fatal(err)
	}
	// The server answers with an error frame, then closes.
	resp, err := wire.ReadFrame(conn, 0)
	if err != nil {
		t.Fatalf("expected an error frame before close: %v", err)
	}
	if resp.Type != wire.TypeError {
		t.Errorf("response = %s, want error", resp.Type)
	}
	if _, err := wire.ReadFrame(conn, 0); err == nil {
		t.Error("connection still open after garbage")
	}
	if st := srv.Stats(); st.ProtocolErrors == 0 {
		t.Errorf("stats = %+v, want a protocol error", st)
	}
}

func TestServerQueries(t *testing.T) {
	srv, addr := startServer(t, "tcp", "127.0.0.1:0", Config{})
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	batch := wire.Batch{ID: "n01/1", Node: "n01", Records: []eard.JobRecord{
		rec("j1", "0", "n01", 300), rec("j1", "0", "n02", 310), rec("j2", "0", "n03", 250),
	}}
	if _, err := exchange(t, conn, mustBatch(t, batch)).AsAck(); err != nil {
		t.Fatal(err)
	}

	query := func(q wire.Query) wire.Result {
		t.Helper()
		qf, err := wire.EncodeQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		res, err := exchange(t, conn, qf).AsResult()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	var agg Aggregate
	res := query(wire.Query{Kind: wire.QueryAggregate})
	if err := json.Unmarshal(res.Data, &agg); err != nil {
		t.Fatal(err)
	}
	if agg.Nodes != 3 || agg.TotalPowerW != 860 || agg.Records != 3 {
		t.Errorf("aggregate = %+v", agg)
	}
	wantEnergy := 300*100.0 + 310*100 + 250*100
	if agg.TotalEnergyJ != wantEnergy {
		t.Errorf("aggregate energy = %g, want %g", agg.TotalEnergyJ, wantEnergy)
	}

	var sums []eard.JobSummary
	res = query(wire.Query{Kind: wire.QueryJobs})
	if err := json.Unmarshal(res.Data, &sums); err != nil {
		t.Fatal(err)
	}
	if len(sums) != 2 || sums[0].JobID != "j1" || sums[0].Nodes != 2 || sums[1].JobID != "j2" {
		t.Errorf("jobs = %+v", sums)
	}

	var sum eard.JobSummary
	res = query(wire.Query{Kind: wire.QuerySummary, Job: "j1", Step: "0"})
	if err := json.Unmarshal(res.Data, &sum); err != nil {
		t.Fatal(err)
	}
	if sum.Nodes != 2 || sum.EnergyJ != 61000 {
		t.Errorf("summary = %+v", sum)
	}

	var st Stats
	res = query(wire.Query{Kind: wire.QueryStats})
	if err := json.Unmarshal(res.Data, &st); err != nil {
		t.Fatal(err)
	}
	if st.Batches != 1 || st.RecordsAccepted != 3 || st.Queries < 3 {
		t.Errorf("stats = %+v", st)
	}

	// Unknown kinds and missing jobs answer with an error frame but
	// keep the connection.
	for _, q := range []wire.Query{{Kind: "bogus"}, {Kind: wire.QuerySummary, Job: "nope"}} {
		qf, err := wire.EncodeQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		if resp := exchange(t, conn, qf); resp.Type != wire.TypeError {
			t.Errorf("query %+v response = %s, want error", q, resp.Type)
		}
	}
	if _, err := exchange(t, conn, mustBatch(t, wire.Batch{ID: "n01/2", Node: "n01",
		Records: []eard.JobRecord{rec("j3", "0", "n01", 200)}})).AsAck(); err != nil {
		t.Errorf("connection dead after failed queries: %v", err)
	}
	if srv.Aggregate().Nodes != 3 {
		t.Errorf("aggregate after update = %+v", srv.Aggregate())
	}
}

func TestServerFrameLimitIsEnforced(t *testing.T) {
	_, addr := startServer(t, "tcp", "127.0.0.1:0", Config{MaxFramePayload: 256})
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var recs []eard.JobRecord
	for i := 0; i < 50; i++ {
		recs = append(recs, rec("j", "0", fmt.Sprintf("n%02d", i), 100))
	}
	// Write with a generous local limit; the server's tighter bound
	// must refuse the frame without reading the payload.
	if err := wire.WriteFrame(conn, mustBatch(t, wire.Batch{ID: "x/1", Node: "x", Records: recs}), 1<<20); err != nil {
		t.Fatal(err)
	}
	resp, err := wire.ReadFrame(conn, 0)
	if err != nil {
		t.Fatal(err)
	}
	ef, err := resp.AsError()
	if err != nil {
		t.Fatalf("response = %s", resp.Type)
	}
	if ef.Message == "" {
		t.Error("empty error message")
	}
}

func TestSeenWindowEviction(t *testing.T) {
	srv, addr := startServer(t, "tcp", "127.0.0.1:0", Config{MaxSeenBatches: 2})
	conn, err := net.Dial("tcp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	for i := 1; i <= 3; i++ {
		b := wire.Batch{ID: fmt.Sprintf("n01/%d", i), Node: "n01",
			Records: []eard.JobRecord{rec("j", "0", fmt.Sprintf("n%02d", i), 100)}}
		if _, err := exchange(t, conn, mustBatch(t, b)).AsAck(); err != nil {
			t.Fatal(err)
		}
	}
	// Batch n01/1 was evicted from the ID window; its replay is still
	// absorbed record-by-record.
	resp := exchange(t, conn, mustBatch(t, wire.Batch{ID: "n01/1", Node: "n01",
		Records: []eard.JobRecord{rec("j", "0", "n01", 100)}}))
	ack, err := resp.AsAck()
	if err != nil {
		t.Fatal(err)
	}
	if ack.Accepted != 0 || ack.Duplicate != 1 {
		t.Errorf("evicted replay ack = %+v", ack)
	}
	if srv.DB().Len() != 3 {
		t.Errorf("db = %d records, want 3", srv.DB().Len())
	}
}

func TestServeAfterCloseRefuses(t *testing.T) {
	srv := NewServer(eard.NewDB(), Config{})
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Serve(l); err == nil {
		t.Error("Serve on a closed server succeeded")
	}
}
