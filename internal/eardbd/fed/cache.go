package fed

import (
	"goear/internal/accounting"
	"goear/internal/eard"
	"goear/internal/telemetry/trace"
	"goear/internal/wire"
)

// Root-side snapshot caching. The merge-heavy queries (aggregate, job
// summaries, the accounting tier) all reduce to one folded view of
// every shard's record dumps. Rebuilding that view per query is fine
// at eargm snapshot rate and wrong for a dashboard tier taking
// repeated reads, so the root keys the folded view by the vector of
// shard ingest generations: a query polls the cheap generation counter
// on every shard, and only a moved generation pays for record dumps
// and a re-fold. The rebuilt view runs the exact same insertion
// arithmetic as an uncached fold, so caching is invisible to the
// byte-identity contract — it only changes how often the fold runs.

// shardGenerations polls every shard's ingest generation counter.
func (r *Root) shardGenerations(parent *trace.Active) ([]uint64, error) {
	gens := make([]uint64, len(r.cfg.Shards))
	err := r.fanOut(parent, wire.Query{Kind: wire.QueryGeneration}, func(i int, res wire.Result) error {
		var g wire.Generation
		if err := res.Decode(&g); err != nil {
			return err
		}
		gens[i] = g.Gen
		return nil
	})
	if err != nil {
		return nil, err
	}
	return gens, nil
}

func equalGens(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// mergedState returns the folded cluster view — node-report database
// plus accounting store — from cache when no shard generation has
// moved, rebuilding it otherwise. Published views are immutable:
// invalidation swaps in freshly built state, so concurrent readers of
// an old view stay consistent.
func (r *Root) mergedState(parent *trace.Active) (*eard.DB, *accounting.Store, error) {
	msp := parent.Child(spanFedMerge, r.nowSec())
	gens, err := r.shardGenerations(msp)
	if err != nil {
		msp.Attr("cache", "error").End(r.nowSec())
		return nil, nil, err
	}
	r.cacheMu.Lock()
	if r.cacheOK && equalGens(r.cacheGens, gens) {
		db, acct := r.cacheDB, r.cacheAcct
		r.cacheMu.Unlock()
		r.countCache(true)
		msp.Attr("cache", "hit").End(r.nowSec())
		return db, acct, nil
	}
	r.cacheMu.Unlock()
	r.countCache(false)
	msp.Attr("cache", "miss")
	defer func() { msp.End(r.nowSec()) }()

	// Rebuild outside the cache lock: concurrent misses duplicate work
	// but never block a hit, and the last finisher wins the cache slot.
	db := eard.NewDB()
	err = r.fanOut(msp, wire.Query{Kind: wire.QueryRecords}, func(_ int, res wire.Result) error {
		var recs []eard.JobRecord
		if err := res.Decode(&recs); err != nil {
			return err
		}
		for _, rec := range recs {
			if err := db.Insert(rec); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	// The merged store shares the root's telemetry set, so the
	// goear_accounting_* families on a federation root cover the
	// serving tier the same way they cover a single daemon.
	acct := accounting.NewStore(r.ts)
	err = r.fanOut(msp, wire.Query{Kind: wire.QueryAcctRecords}, func(_ int, res wire.Result) error {
		var recs []accounting.Record
		if err := res.Decode(&recs); err != nil {
			return err
		}
		for _, rec := range recs {
			if _, err := acct.Insert(rec); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}

	r.cacheMu.Lock()
	r.cacheOK = true
	r.cacheGens = gens
	r.cacheDB = db
	r.cacheAcct = acct
	r.cacheMu.Unlock()
	return db, acct, nil
}

// countCache records one cache outcome in stats and telemetry,
// keeping the hit-ratio gauge current.
func (r *Root) countCache(hit bool) {
	r.mu.Lock()
	if hit {
		r.stats.CacheHits++
	} else {
		r.stats.CacheMisses++
	}
	ratio := float64(r.stats.CacheHits) / float64(r.stats.CacheHits+r.stats.CacheMisses)
	r.mu.Unlock()
	if hit {
		r.tel.cacheHit.Inc()
	} else {
		r.tel.cacheMiss.Inc()
	}
	r.tel.cacheHitR.Set(ratio)
}

// Generation reports the summed shard generations: a single counter
// that moves whenever any shard ingests, which is what the root
// answers to wire.QueryGeneration so a cache can stack above a root
// exactly as above a daemon.
func (r *Root) Generation() (uint64, error) {
	return r.generation(nil)
}

func (r *Root) generation(parent *trace.Active) (uint64, error) {
	gens, err := r.shardGenerations(parent)
	if err != nil {
		return 0, err
	}
	var sum uint64
	for _, g := range gens {
		sum += g
	}
	return sum, nil
}

// AcctQuery serves one filtered, paginated job-accounting query over
// the merged federation view. Pages are byte-identical to what a
// single daemon holding the union of the shards would serve — the
// merged store's canonical order has no memory of which shard a
// record came from.
func (r *Root) AcctQuery(q accounting.Query) (accounting.Page, error) {
	return r.acctQuery(nil, q)
}

func (r *Root) acctQuery(parent *trace.Active, q accounting.Query) (accounting.Page, error) {
	_, acct, err := r.mergedState(parent)
	if err != nil {
		return accounting.Page{}, err
	}
	return acct.Query(q)
}

// AcctRecords dumps the merged accounting records in canonical order.
func (r *Root) AcctRecords() ([]accounting.Record, error) {
	return r.acctRecords(nil)
}

func (r *Root) acctRecords(parent *trace.Active) ([]accounting.Record, error) {
	_, acct, err := r.mergedState(parent)
	if err != nil {
		return nil, err
	}
	return acct.Snapshot(), nil
}
