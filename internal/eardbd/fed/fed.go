// Package fed is the federation tier above sharded EARDBD daemons.
// EAR's production deployments run one EARDBD per island; the cluster
// view the global manager and the admin tools need is the union of
// what every island daemon aggregated. This package provides that
// union as a Root: a query-only service that fans snapshot queries out
// to the shards, merges the answers in node order, and serves the
// same wire snapshot API a single daemon does — so eargm.PowerSource
// consumers and `earctl dbd` work unchanged whether they talk to one
// daemon or a fleet.
//
// Merging is built for byte-identity, not just equivalence. Node
// powers merge by sorted node name, the exact order a single daemon
// sums in; job summaries are recomputed by folding every shard's
// record dump into a fresh eard.DB and running the same Summarize
// arithmetic over the same sorted records. A workload routed through
// N shards therefore renders the same aggregate, bit for bit, as the
// same workload through one daemon — the contract the closed-loop
// tests pin.
package fed

import (
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"

	"goear/internal/accounting"
	"goear/internal/eard"
	"goear/internal/eardbd"
	"goear/internal/par"
	"goear/internal/telemetry"
	"goear/internal/telemetry/trace"
	"goear/internal/wire"
)

// Shard names one member daemon and how to reach it. Dial is injected
// so tests can hand out net.Pipe ends and the daemon binary can choose
// TCP or unix transports.
type Shard struct {
	Name string
	Dial func() (net.Conn, error)
}

// Config parameterises a federation root.
type Config struct {
	// Shards are the member daemons, queried in slice order. At least
	// one is required; names must be unique and non-empty.
	Shards []Shard
	// MaxFramePayload caps frame payloads on both the shard-facing and
	// serving sides (default wire.DefaultMaxPayload).
	MaxFramePayload int
	// Telemetry, when set, exposes fan-out activity as
	// goear_eardbd_fed_* families in that set; falls back to the
	// process-global set, and to no-ops when that is disabled too.
	Telemetry *telemetry.Set
	// Trace, when set, records a span tree per served query: a
	// fed.query root continuing the incoming frame's context, one
	// fed.fanout child per shard (created in configured shard order, so
	// the tree is identical whatever order the concurrent fan-out
	// finishes in), and a fed.merge child annotated with the snapshot
	// cache outcome. Nil disables tracing at zero cost.
	Trace *trace.Buffer
	// Now, when set, stamps span times and feeds the
	// goear_eardbd_fed_latency_seconds histograms. Nil leaves spans
	// untimed and observes no latencies; the span tree itself stays
	// fully deterministic.
	Now func() float64
}

// Stats counts root activity since construction.
type Stats struct {
	Queries      int `json:"queries"`       // snapshot queries served by the root
	Fanouts      int `json:"fanouts"`       // shard queries issued
	FanoutErrors int `json:"fanout_errors"` // shard queries that failed
	CacheHits    int `json:"cache_hits"`    // merged snapshots served from cache
	CacheMisses  int `json:"cache_misses"`  // merged snapshots rebuilt from shard dumps
}

// Root is the federation front end. It is safe for concurrent use.
// Merge-heavy queries go through a generation-keyed snapshot cache
// (see cache.go): a query costs one cheap generation poll per shard
// until ingest actually moves, instead of a full record dump.
type Root struct {
	cfg    Config
	ts     *telemetry.Set
	tel    rootTel
	tracer *trace.Tracer

	mu    sync.Mutex
	stats Stats
	reach map[string]bool // last fan-out outcome per shard

	cacheMu   sync.Mutex
	cacheOK   bool
	cacheGens []uint64
	cacheDB   *eard.DB
	cacheAcct *accounting.Store

	connMu    sync.Mutex
	closed    bool
	listeners map[net.Listener]struct{}
	conns     map[net.Conn]struct{}
	wg        sync.WaitGroup
}

// NewRoot builds a root over the given shards.
func NewRoot(cfg Config) (*Root, error) {
	if len(cfg.Shards) == 0 {
		return nil, errors.New("fed: root needs at least one shard")
	}
	seen := map[string]bool{}
	for _, s := range cfg.Shards {
		switch {
		case s.Name == "":
			return nil, errors.New("fed: shard needs a name")
		case s.Dial == nil:
			return nil, fmt.Errorf("fed: shard %s needs a dial function", s.Name)
		case seen[s.Name]:
			return nil, fmt.Errorf("fed: duplicate shard name %s", s.Name)
		}
		seen[s.Name] = true
	}
	if cfg.MaxFramePayload <= 0 {
		cfg.MaxFramePayload = wire.DefaultMaxPayload
	}
	ts := cfg.Telemetry
	if ts == nil {
		ts = telemetry.Default()
	}
	root := &Root{
		cfg:       cfg,
		ts:        ts,
		tel:       newRootTel(ts),
		tracer:    trace.New("fedroot", cfg.Trace),
		reach:     map[string]bool{},
		listeners: map[net.Listener]struct{}{},
		conns:     map[net.Conn]struct{}{},
	}
	root.tel.shards.Set(float64(len(cfg.Shards)))
	return root, nil
}

// nowSec reads the injected latency clock, 0 when none is configured.
func (r *Root) nowSec() float64 {
	if r.cfg.Now == nil {
		return 0
	}
	return r.cfg.Now()
}

// observe records one latency sample when a clock is configured.
func (r *Root) observe(h *telemetry.Histogram, startSec float64) {
	if r.cfg.Now != nil {
		h.Observe(r.cfg.Now() - startSec)
	}
}

// ShardsReachable reports how many shards answered their most recent
// fan-out query, out of the configured total. Shards not yet queried
// count as unreachable: a root that has never completed a fan-out is
// not ready.
func (r *Root) ShardsReachable() (ok, total int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, s := range r.cfg.Shards {
		if r.reach[s.Name] {
			ok++
		}
	}
	return ok, len(r.cfg.Shards)
}

// HealthCheck returns the root's readiness check for a telemetry
// Health set: OK when every shard answered its last fan-out.
func (r *Root) HealthCheck() telemetry.CheckFunc {
	return func() telemetry.Check {
		ok, total := r.ShardsReachable()
		return telemetry.Check{
			Name:   "shards",
			OK:     ok == total,
			Detail: fmt.Sprintf("%d/%d shards reachable", ok, total),
		}
	}
}

// Shards returns the member names in fan-out order.
func (r *Root) Shards() []string {
	out := make([]string, len(r.cfg.Shards))
	for i, s := range r.cfg.Shards {
		out[i] = s.Name
	}
	return out
}

// Stats returns a snapshot of the root's activity counters.
func (r *Root) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// queryShard runs one wire query against one shard over a fresh
// connection, stamping tc on the query frame so the shard's
// server.query span joins the caller's trace. Fan-out connections are
// per-query: the root's load is snapshot-rate (the eargm control
// period, admin queries), so simplicity and isolation beat connection
// reuse here.
func (r *Root) queryShard(s Shard, q wire.Query, tc trace.Context) (wire.Result, error) {
	t0 := r.nowSec()
	r.mu.Lock()
	r.stats.Fanouts++
	r.mu.Unlock()
	conn, err := s.Dial()
	if err == nil {
		var res wire.Result
		res, err = eardbd.QueryCtx(conn, q, r.cfg.MaxFramePayload, tc)
		_ = conn.Close()
		if err == nil {
			r.countReach(s.Name, true)
			r.observe(r.tel.latFanout, t0)
			return res, nil
		}
	}
	r.mu.Lock()
	r.stats.FanoutErrors++
	r.mu.Unlock()
	r.countReach(s.Name, false)
	r.observe(r.tel.latFanout, t0)
	return wire.Result{}, fmt.Errorf("fed: shard %s: %w", s.Name, err)
}

// countReach folds one fan-out outcome into the telemetry counters
// and the reachability view the readiness probe reports.
func (r *Root) countReach(shard string, ok bool) {
	r.mu.Lock()
	r.reach[shard] = ok
	r.mu.Unlock()
	r.tel.fanout(shard, ok)
}

// fanOutConcurrency bounds concurrent shard queries per fan-out. A
// snapshot's latency is the slowest shard's round trip, so querying
// islands concurrently matters once a fleet is wide or a WAN link is
// slow; eight in flight covers realistic island counts without
// letting one root stampede the fleet.
const fanOutConcurrency = 8

// fanOut runs one query against every shard and decodes each result
// into decode(i). Shard queries run concurrently under a bounded
// group, but results land in a slice keyed by shard index and are
// decoded sequentially in configured shard order — so the merged
// output stays byte-identical to a sequential fan-out, and decode
// callbacks never race. On error the lowest-indexed failure wins,
// matching what the sequential loop would have reported.
//
// When parent is live, each shard gets a fed.fanout child span. The
// children are all created here, in configured shard order, before
// any goroutine runs — span IDs come from a per-parent child counter,
// so allocation order (not completion order) is what must be
// deterministic for the trace to be byte-identical across runs.
func (r *Root) fanOut(parent *trace.Active, q wire.Query, decode func(i int, res wire.Result) error) error {
	results := make([]wire.Result, len(r.cfg.Shards))
	kids := make([]*trace.Active, len(r.cfg.Shards))
	for i, s := range r.cfg.Shards {
		kids[i] = parent.Child(spanFedFanout, r.nowSec()).Attr("shard", s.Name)
	}
	err := par.ForEach(fanOutConcurrency, len(r.cfg.Shards), func(i int) error {
		s := r.cfg.Shards[i]
		res, err := r.queryShard(s, q, kids[i].Context())
		if err != nil {
			kids[i].Attr("result", "error").End(r.nowSec())
			return err
		}
		if res.Kind != q.Kind {
			kids[i].Attr("result", "error").End(r.nowSec())
			return fmt.Errorf("fed: shard %s answered kind %q to %q", s.Name, res.Kind, q.Kind)
		}
		kids[i].Attr("result", "ok").End(r.nowSec())
		results[i] = res
		return nil
	})
	if err != nil {
		return err
	}
	for i, s := range r.cfg.Shards {
		if err := decode(i, results[i]); err != nil {
			return fmt.Errorf("fed: shard %s: %w", s.Name, err)
		}
	}
	return nil
}

// MergedNodePowers returns the last reported power of every node in
// the federation, sorted by node name. A node reports through exactly
// one shard (ring placement), so the union is disjoint; a node seen on
// two shards (mid-rebalance traffic) keeps the value from the later
// shard in fan-out order.
func (r *Root) MergedNodePowers() ([]wire.NodePower, error) {
	return r.mergedNodePowers(nil)
}

func (r *Root) mergedNodePowers(parent *trace.Active) ([]wire.NodePower, error) {
	merged := map[string]float64{}
	err := r.fanOut(parent, wire.Query{Kind: wire.QueryNodePowers}, func(_ int, res wire.Result) error {
		var nps []wire.NodePower
		if err := res.Decode(&nps); err != nil {
			return err
		}
		for _, np := range nps {
			merged[np.Node] = np.PowerW
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(merged))
	for n := range merged {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]wire.NodePower, len(names))
	for i, n := range names {
		out[i] = wire.NodePower{Node: n, PowerW: merged[n]}
	}
	return out, nil
}

// NodePowers implements eargm.PowerSource over the merged federation
// view. The PowerSource interface cannot carry an error; an
// unreachable shard yields an empty reading for this interval (and a
// counted fan-out error) rather than a partial cluster view that
// would ratchet the budget against half the fleet.
func (r *Root) NodePowers() []float64 {
	nps, err := r.MergedNodePowers()
	if err != nil {
		return nil
	}
	out := make([]float64, len(nps))
	for i, np := range nps {
		out[i] = np.PowerW
	}
	return out
}

// mergedDB returns the record-merge view, served from the
// generation-keyed cache (cache.go): identical arithmetic to a fresh
// fold, rebuilt only when a shard's ingest generation moves.
func (r *Root) mergedDB(parent *trace.Active) (*eard.DB, error) {
	db, _, err := r.mergedState(parent)
	return db, err
}

// Aggregate returns the cluster view across every shard, merged with
// the same arithmetic order a single daemon uses: power summed over
// name-sorted nodes, energy summed over (job, step)-sorted summaries.
func (r *Root) Aggregate() (eardbd.Aggregate, error) {
	return r.aggregate(nil)
}

func (r *Root) aggregate(parent *trace.Active) (eardbd.Aggregate, error) {
	nps, err := r.mergedNodePowers(parent)
	if err != nil {
		return eardbd.Aggregate{}, err
	}
	db, err := r.mergedDB(parent)
	if err != nil {
		return eardbd.Aggregate{}, err
	}
	agg := eardbd.Aggregate{Nodes: len(nps), Records: db.Len()}
	for _, np := range nps {
		agg.TotalPowerW += np.PowerW
	}
	for _, js := range db.Jobs() {
		sum, err := db.Summarize(js[0], js[1])
		if err != nil {
			continue
		}
		agg.TotalEnergyJ += sum.EnergyJ
	}
	return agg, nil
}

// JobSummaries summarizes every (job, step) pair across the
// federation, in the same sorted order a single daemon reports.
func (r *Root) JobSummaries() ([]eard.JobSummary, error) {
	return r.jobSummaries(nil)
}

func (r *Root) jobSummaries(parent *trace.Active) ([]eard.JobSummary, error) {
	db, err := r.mergedDB(parent)
	if err != nil {
		return nil, err
	}
	jobs := db.Jobs()
	out := make([]eard.JobSummary, 0, len(jobs))
	for _, js := range jobs {
		sum, err := db.Summarize(js[0], js[1])
		if err != nil {
			continue
		}
		out = append(out, sum)
	}
	return out, nil
}

// Summarize aggregates one job step across the federation.
func (r *Root) Summarize(job, step string) (eard.JobSummary, error) {
	return r.summarize(nil, job, step)
}

func (r *Root) summarize(parent *trace.Active, job, step string) (eard.JobSummary, error) {
	db, err := r.mergedDB(parent)
	if err != nil {
		return eard.JobSummary{}, err
	}
	return db.Summarize(job, step)
}

// MergedStats sums the activity counters of every shard: the cluster's
// ingest totals. The root's own Stats stay separate.
func (r *Root) MergedStats() (eardbd.Stats, error) {
	return r.mergedStats(nil)
}

func (r *Root) mergedStats(parent *trace.Active) (eardbd.Stats, error) {
	var total eardbd.Stats
	err := r.fanOut(parent, wire.Query{Kind: wire.QueryStats}, func(_ int, res wire.Result) error {
		var st eardbd.Stats
		if err := res.Decode(&st); err != nil {
			return err
		}
		total.Connections += st.Connections
		total.Batches += st.Batches
		total.DuplicateBatches += st.DuplicateBatches
		total.RecordsAccepted += st.RecordsAccepted
		total.RecordsDuplicate += st.RecordsDuplicate
		total.RecordsReplaced += st.RecordsReplaced
		total.AcctAccepted += st.AcctAccepted
		total.AcctDuplicate += st.AcctDuplicate
		total.AcctReplaced += st.AcctReplaced
		total.BatchesRejected += st.BatchesRejected
		total.ProtocolErrors += st.ProtocolErrors
		total.Queries += st.Queries
		return nil
	})
	if err != nil {
		return eardbd.Stats{}, err
	}
	return total, nil
}

// IslandSource returns an eargm.PowerSource view of one shard: the
// per-island feed a cascaded manager ratchets against. The returned
// source polls the shard on every read; an unreachable shard reads as
// empty, matching NodePowers' degradation.
func (r *Root) IslandSource(name string) (*IslandSource, error) {
	for _, s := range r.cfg.Shards {
		if s.Name == name {
			return &IslandSource{root: r, shard: s}, nil
		}
	}
	return nil, fmt.Errorf("fed: no shard named %s", name)
}

// IslandSource adapts one shard to eargm.PowerSource.
type IslandSource struct {
	root  *Root
	shard Shard
}

// NodePowers implements eargm.PowerSource for one island.
func (s *IslandSource) NodePowers() []float64 {
	res, err := s.root.queryShard(s.shard, wire.Query{Kind: wire.QueryNodePowers}, trace.Context{})
	if err != nil {
		return nil
	}
	var nps []wire.NodePower
	if err := res.Decode(&nps); err != nil {
		return nil
	}
	out := make([]float64, len(nps))
	for i, np := range nps {
		out[i] = np.PowerW
	}
	return out
}
