package fed

import (
	"goear/internal/telemetry"
)

// Metric names (package-level constants per the goearvet telemetry
// analyzer).
const (
	metricFedQueries   = "goear_eardbd_fed_queries_total"
	metricFedFanout    = "goear_eardbd_fed_fanout_total"
	metricFedShards    = "goear_eardbd_fed_shards"
	metricFedCache     = "goear_eardbd_fed_cache_total"
	metricFedCacheHitR = "goear_eardbd_fed_cache_hit_ratio"
)

// rootTel is a root's pre-resolved instrument bundle; nil fields
// (telemetry absent) make every use a nil-receiver no-op. Fan-out
// outcomes are labeled per shard so a flapping island is visible as
// its own series.
type rootTel struct {
	queries   *telemetry.Counter
	fanoutVec *telemetry.CounterVec
	shards    *telemetry.Gauge
	cacheHit  *telemetry.Counter // result="hit"
	cacheMiss *telemetry.Counter // result="miss"
	cacheHitR *telemetry.Gauge
}

func newRootTel(s *telemetry.Set) rootTel {
	r := s.Reg()
	cache := r.CounterVec(metricFedCache, "merged-snapshot lookups by cache outcome", "result")
	return rootTel{
		queries:   r.Counter(metricFedQueries, "snapshot queries served by the federation root"),
		fanoutVec: r.CounterVec(metricFedFanout, "shard fan-out queries by shard and result", "shard", "result"),
		shards:    r.Gauge(metricFedShards, "shards configured on the federation root"),
		cacheHit:  cache.With("hit"),
		cacheMiss: cache.With("miss"),
		cacheHitR: r.Gauge(metricFedCacheHitR, "fraction of merged-snapshot lookups served from cache"),
	}
}

// fanout counts one shard query outcome.
func (t rootTel) fanout(shard string, ok bool) {
	if t.fanoutVec == nil {
		return
	}
	result := "ok"
	if !ok {
		result = "error"
	}
	t.fanoutVec.With(shard, result).Inc()
}
