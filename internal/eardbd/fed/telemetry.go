package fed

import (
	"goear/internal/eardbd"
	"goear/internal/telemetry"
)

// Metric names (package-level constants per the goearvet telemetry
// analyzer).
const (
	metricFedQueries   = "goear_eardbd_fed_queries_total"
	metricFedFanout    = "goear_eardbd_fed_fanout_total"
	metricFedShards    = "goear_eardbd_fed_shards"
	metricFedCache     = "goear_eardbd_fed_cache_total"
	metricFedCacheHitR = "goear_eardbd_fed_cache_hit_ratio"
	metricFedLatency   = "goear_eardbd_fed_latency_seconds"
)

// Span kinds (dotted-lowercase per the goearvet telemetry analyzer).
const (
	spanFedQuery  = "fed.query"
	spanFedFanout = "fed.fanout"
	spanFedMerge  = "fed.merge"
)

// rootTel is a root's pre-resolved instrument bundle; nil fields
// (telemetry absent) make every use a nil-receiver no-op. Fan-out
// outcomes are labeled per shard so a flapping island is visible as
// its own series.
type rootTel struct {
	queries   *telemetry.Counter
	fanoutVec *telemetry.CounterVec
	shards    *telemetry.Gauge
	cacheHit  *telemetry.Counter // result="hit"
	cacheMiss *telemetry.Counter // result="miss"
	cacheHitR *telemetry.Gauge
	latQuery  *telemetry.Histogram // op="query": serving a merged query
	latFanout *telemetry.Histogram // op="fanout": one shard round trip
}

func newRootTel(s *telemetry.Set) rootTel {
	r := s.Reg()
	cache := r.CounterVec(metricFedCache, "merged-snapshot lookups by cache outcome", "result")
	latency := r.HistogramVec(metricFedLatency, "federation root latency by wire op, seconds",
		eardbd.LatencyBounds(), "op")
	return rootTel{
		queries:   r.Counter(metricFedQueries, "snapshot queries served by the federation root"),
		fanoutVec: r.CounterVec(metricFedFanout, "shard fan-out queries by shard and result", "shard", "result"),
		shards:    r.Gauge(metricFedShards, "shards configured on the federation root"),
		cacheHit:  cache.With("hit"),
		cacheMiss: cache.With("miss"),
		cacheHitR: r.Gauge(metricFedCacheHitR, "fraction of merged-snapshot lookups served from cache"),
		latQuery:  latency.With("query"),
		latFanout: latency.With("fanout"),
	}
}

// LatencySLO registers the root's per-op latency histograms with an
// SLO summary; targets are p99 seconds, zero means "report only".
func (r *Root) LatencySLO(slo *telemetry.SLO, queryTargetP99, fanoutTargetP99 float64) {
	if r == nil {
		return
	}
	slo.Register("query", r.tel.latQuery, queryTargetP99)
	slo.Register("fanout", r.tel.latFanout, fanoutTargetP99)
}

// fanout counts one shard query outcome.
func (t rootTel) fanout(shard string, ok bool) {
	if t.fanoutVec == nil {
		return
	}
	result := "ok"
	if !ok {
		result = "error"
	}
	t.fanoutVec.With(shard, result).Inc()
}
