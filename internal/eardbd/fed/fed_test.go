package fed

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"goear/internal/eard"
	"goear/internal/eardbd"
	"goear/internal/eardbd/ring"
	"goear/internal/wire"
)

// shardFixture is one in-process shard: a server plus a dialer that
// hands out net.Pipe ends served by it.
type shardFixture struct {
	name string
	srv  *eardbd.Server
}

func (s shardFixture) dial() (net.Conn, error) {
	client, server := net.Pipe()
	go s.srv.ServeConn(server)
	return client, nil
}

// buildFederation routes the canonical workload (nodes × 10 records)
// through n shards by ring placement and returns the shards plus a
// root over them.
func buildFederation(t *testing.T, nodes, nShards int) ([]shardFixture, *Root) {
	t.Helper()
	shards := make([]shardFixture, nShards)
	rg := ring.New(0)
	for i := range shards {
		shards[i] = shardFixture{name: fmt.Sprintf("s%d", i), srv: eardbd.NewServer(eard.NewDB(), eardbd.Config{})}
		if err := rg.Add(shards[i].name); err != nil {
			t.Fatal(err)
		}
	}
	byName := map[string]shardFixture{}
	for _, s := range shards {
		byName[s.name] = s
	}
	for i := 0; i < nodes; i++ {
		node := fmt.Sprintf("n%02d", i)
		owner, ok := rg.Owner(node)
		if !ok {
			t.Fatal("empty ring")
		}
		c, err := eardbd.NewClient(eardbd.ClientConfig{
			Node:         node,
			Dial:         byName[owner].dial,
			Clock:        eardbd.NewFakeClock(0),
			Jitter:       rand.New(rand.NewSource(int64(i))),
			BatchRecords: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(int64(1000 + i)))
		for j := 0; j < 10; j++ {
			power := 250 + 40*rng.Float64()
			r := eard.JobRecord{
				JobID: fmt.Sprintf("job%d", j%3), StepID: fmt.Sprint(j / 3), Node: node,
				App: "BT-MZ.C", Policy: "min_energy",
				TimeSec: 120, EnergyJ: power * 120, AvgPower: power,
				AvgCPU: 2.1, AvgIMC: 2.4,
			}
			if err := c.Enqueue(r); err != nil {
				t.Fatal(err)
			}
		}
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
	}
	cfg := Config{}
	for _, s := range shards {
		cfg.Shards = append(cfg.Shards, Shard{Name: s.name, Dial: s.dial})
	}
	root, err := NewRoot(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return shards, root
}

func TestRootMergesAcrossShardCounts(t *testing.T) {
	const nodes = 12
	var ref []byte
	for _, nShards := range []int{1, 2, 4} {
		_, root := buildFederation(t, nodes, nShards)
		agg, err := root.Aggregate()
		if err != nil {
			t.Fatal(err)
		}
		if agg.Nodes != nodes || agg.Records != nodes*10 {
			t.Fatalf("shards=%d aggregate = %+v", nShards, agg)
		}
		nps, err := root.MergedNodePowers()
		if err != nil {
			t.Fatal(err)
		}
		sums, err := root.JobSummaries()
		if err != nil {
			t.Fatal(err)
		}
		blob, err := json.Marshal(struct {
			Agg  eardbd.Aggregate
			NPs  []wire.NodePower
			Sums []eard.JobSummary
		}{agg, nps, sums})
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = blob
			continue
		}
		if string(blob) != string(ref) {
			t.Fatalf("shards=%d snapshot differs:\n--- want\n%s\n--- got\n%s", nShards, ref, blob)
		}
	}
}

func TestRootServesWireProtocol(t *testing.T) {
	_, root := buildFederation(t, 6, 2)
	dial := func() (net.Conn, error) {
		client, server := net.Pipe()
		go root.ServeConn(server)
		return client, nil
	}

	conn, err := dial()
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	res, err := eardbd.Query(conn, wire.Query{Kind: wire.QueryAggregate}, 0)
	if err != nil {
		t.Fatal(err)
	}
	var agg eardbd.Aggregate
	if err := res.Decode(&agg); err != nil {
		t.Fatal(err)
	}
	direct, err := root.Aggregate()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(agg, direct) {
		t.Fatalf("wire aggregate %+v != direct %+v", agg, direct)
	}

	// Stats through the root are the summed shard ingest counters.
	res, err = eardbd.Query(conn, wire.Query{Kind: wire.QueryStats}, 0)
	if err != nil {
		t.Fatal(err)
	}
	var st eardbd.Stats
	if err := res.Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.RecordsAccepted != 60 {
		t.Fatalf("merged stats = %+v, want 60 accepted", st)
	}

	// Batches are refused: the root is a read path.
	bf, err := wire.EncodeBatch(wire.Batch{ID: "x/1", Node: "x", Records: []eard.JobRecord{
		{JobID: "j", StepID: "0", Node: "x", TimeSec: 1, EnergyJ: 1, AvgPower: 1},
	}})
	if err != nil {
		t.Fatal(err)
	}
	conn2, err := dial()
	if err != nil {
		t.Fatal(err)
	}
	defer conn2.Close()
	if err := wire.WriteFrame(conn2, bf, 0); err != nil {
		t.Fatal(err)
	}
	resp, err := wire.ReadFrame(conn2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Type != wire.TypeError {
		t.Fatalf("root answered %s to a batch, want error", resp.Type)
	}
}

func TestIslandSource(t *testing.T) {
	shards, root := buildFederation(t, 10, 2)
	totalViaIslands := 0.0
	nodesSeen := 0
	for _, s := range shards {
		src, err := root.IslandSource(s.name)
		if err != nil {
			t.Fatal(err)
		}
		powers := src.NodePowers()
		nodesSeen += len(powers)
		for _, p := range powers {
			totalViaIslands += p
		}
	}
	if nodesSeen != 10 {
		t.Fatalf("islands cover %d nodes, want 10", nodesSeen)
	}
	agg, err := root.Aggregate()
	if err != nil {
		t.Fatal(err)
	}
	// Same multiset of node powers; summation order differs across
	// islands, so compare within a float tolerance.
	if diff := totalViaIslands - agg.TotalPowerW; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("island power sum %g != aggregate %g", totalViaIslands, agg.TotalPowerW)
	}
	if _, err := root.IslandSource("nope"); err == nil {
		t.Fatal("IslandSource accepted an unknown shard")
	}
}

func TestRootConfigValidation(t *testing.T) {
	dial := func() (net.Conn, error) { return nil, nil }
	cases := []struct {
		name string
		cfg  Config
	}{
		{"no shards", Config{}},
		{"unnamed shard", Config{Shards: []Shard{{Dial: dial}}}},
		{"no dial", Config{Shards: []Shard{{Name: "s1"}}}},
		{"duplicate", Config{Shards: []Shard{{Name: "s1", Dial: dial}, {Name: "s1", Dial: dial}}}},
	}
	for _, tc := range cases {
		if _, err := NewRoot(tc.cfg); err == nil {
			t.Errorf("%s: NewRoot accepted invalid config", tc.name)
		}
	}
}

func TestUnreachableShardSurfacesError(t *testing.T) {
	good := shardFixture{name: "s0", srv: eardbd.NewServer(eard.NewDB(), eardbd.Config{})}
	root, err := NewRoot(Config{Shards: []Shard{
		{Name: "s0", Dial: good.dial},
		{Name: "s1", Dial: func() (net.Conn, error) { return nil, fmt.Errorf("down") }},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := root.Aggregate(); err == nil {
		t.Fatal("aggregate over a dead shard succeeded")
	}
	if got := root.NodePowers(); got != nil {
		t.Fatalf("NodePowers over a dead shard = %v, want nil", got)
	}
	st := root.Stats()
	if st.FanoutErrors == 0 {
		t.Fatalf("fan-out errors not counted: %+v", st)
	}
}

// TestFanOutQueriesShardsConcurrently pins the concurrent fan-out: a
// barrier in every shard's dial function releases only once all dials
// are in flight, so a root that queried shards one at a time would
// deadlock here. The merged view must still come out in shard order.
func TestFanOutQueriesShardsConcurrently(t *testing.T) {
	const n = 4
	var barrier sync.WaitGroup
	barrier.Add(n)
	shards, _ := buildFederation(t, 8, n)
	cfg := Config{}
	for _, s := range shards {
		s := s
		cfg.Shards = append(cfg.Shards, Shard{Name: s.name, Dial: func() (net.Conn, error) {
			barrier.Done()
			barrier.Wait()
			return s.dial()
		}})
	}
	root, err := NewRoot(cfg)
	if err != nil {
		t.Fatal(err)
	}

	type answer struct {
		nps []wire.NodePower
		err error
	}
	done := make(chan answer, 1)
	go func() {
		nps, err := root.MergedNodePowers()
		done <- answer{nps, err}
	}()
	select {
	case a := <-done:
		if a.err != nil {
			t.Fatal(a.err)
		}
		// The concurrent fan-out must merge identically to the plain
		// sequential-dial root over the same shards.
		_, plain := buildFederation(t, 8, n)
		want, err := plain.MergedNodePowers()
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a.nps, want) {
			t.Errorf("concurrent merge diverges:\n got %v\nwant %v", a.nps, want)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("fan-out deadlocked: shard queries are not concurrent")
	}
}
