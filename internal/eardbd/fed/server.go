package fed

import (
	"errors"
	"fmt"
	"io"
	"net"

	"goear/internal/accounting"
	"goear/internal/wire"
)

// Serve accepts connections on l until the listener fails or the root
// is closed; Close makes it return nil. The root speaks the same wire
// protocol as a shard daemon, so earctl dbd and eargm feeds point at
// either interchangeably.
func (r *Root) Serve(l net.Listener) error {
	r.connMu.Lock()
	if r.closed {
		r.connMu.Unlock()
		if err := l.Close(); err != nil {
			return fmt.Errorf("fed: close listener of closed root: %w", err)
		}
		return errors.New("fed: root is closed")
	}
	r.listeners[l] = struct{}{}
	r.connMu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			r.connMu.Lock()
			closed := r.closed
			delete(r.listeners, l)
			r.connMu.Unlock()
			if closed {
				return nil
			}
			return fmt.Errorf("fed: accept: %w", err)
		}
		r.connMu.Lock()
		if r.closed {
			r.connMu.Unlock()
			_ = conn.Close()
			return nil
		}
		r.conns[conn] = struct{}{}
		r.wg.Add(1)
		r.connMu.Unlock()
		go func() {
			defer r.wg.Done()
			r.ServeConn(conn)
			r.connMu.Lock()
			delete(r.conns, conn)
			r.connMu.Unlock()
		}()
	}
}

// Close stops all listeners, severs live connections and waits for
// their handlers.
func (r *Root) Close() error {
	r.connMu.Lock()
	if r.closed {
		r.connMu.Unlock()
		return nil
	}
	r.closed = true
	var firstErr error
	for l := range r.listeners {
		if err := l.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for c := range r.conns {
		if err := c.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	r.connMu.Unlock()
	r.wg.Wait()
	return firstErr
}

// ServeConn answers snapshot queries on one connection until EOF or a
// protocol violation, then closes it. Batches are refused: reports go
// to the shard that owns the node (ring placement), never through the
// root — the root is a read path, and keeping it so means a root
// outage can never lose accounting data.
func (r *Root) ServeConn(conn net.Conn) {
	defer func() { _ = conn.Close() }()
	for {
		f, err := wire.ReadFrame(conn, r.cfg.MaxFramePayload)
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrClosedPipe) && !errors.Is(err, net.ErrClosed) {
				r.reply(conn, mustError(err.Error()))
			}
			return
		}
		switch f.Type {
		case wire.TypeQuery:
			if !r.handleQuery(conn, f) {
				return
			}
		case wire.TypeBatch:
			r.reply(conn, mustError("federation root does not accept batches; report to the owning shard"))
			return
		default:
			r.reply(conn, mustError(fmt.Sprintf("unexpected %s frame", f.Type)))
			return
		}
	}
}

// handleQuery fans one snapshot query out to the shards and replies
// with the merged view. It reports whether the connection should stay
// open. When tracing is on, the serving renders as a fed.query span —
// continuing the caller's frame context — whose fed.fanout children
// carry their contexts onto the shard query frames, so one served
// query reads as a connected tree from the caller through the root to
// every shard daemon.
func (r *Root) handleQuery(conn net.Conn, f wire.Frame) bool {
	t0 := r.nowSec()
	q, err := f.AsQuery()
	if err != nil {
		r.reply(conn, mustError(err.Error()))
		return false
	}
	sp := r.tracer.Remote(f.Trace, spanFedQuery, t0)
	sp.Attr("kind", string(q.Kind))
	defer func() {
		sp.End(r.nowSec())
		r.observe(r.tel.latQuery, t0)
	}()
	r.mu.Lock()
	r.stats.Queries++
	r.mu.Unlock()
	r.tel.queries.Inc()
	var resp wire.Frame
	switch q.Kind {
	case wire.QueryStats:
		var sum any
		sum, err = r.mergedStats(sp)
		if err == nil {
			resp, err = wire.EncodeResult(q.Kind, sum)
		}
	case wire.QueryAggregate:
		var agg any
		agg, err = r.aggregate(sp)
		if err == nil {
			resp, err = wire.EncodeResult(q.Kind, agg)
		}
	case wire.QueryJobs:
		var sums any
		sums, err = r.jobSummaries(sp)
		if err == nil {
			resp, err = wire.EncodeResult(q.Kind, sums)
		}
	case wire.QueryNodePowers:
		var nps any
		nps, err = r.mergedNodePowers(sp)
		if err == nil {
			resp, err = wire.EncodeResult(q.Kind, nps)
		}
	case wire.QueryRecords:
		db, qerr := r.mergedDB(sp)
		err = qerr
		if err == nil {
			resp, err = wire.EncodeResult(q.Kind, db.Records())
		}
	case wire.QuerySummary:
		var sum any
		sum, err = r.summarize(sp, q.Job, q.Step)
		if err == nil {
			resp, err = wire.EncodeResult(q.Kind, sum)
		}
	case wire.QueryAcctJobs:
		var page any
		page, err = r.acctQuery(sp, accounting.Query{
			User:   q.User,
			Job:    q.Job,
			Since:  q.Since,
			Limit:  q.Limit,
			Cursor: q.Cursor,
		})
		if err == nil {
			resp, err = wire.EncodeResult(q.Kind, page)
		}
	case wire.QueryAcctRecords:
		var recs any
		recs, err = r.acctRecords(sp)
		if err == nil {
			resp, err = wire.EncodeResult(q.Kind, recs)
		}
	case wire.QueryGeneration:
		var gen uint64
		gen, err = r.generation(sp)
		if err == nil {
			resp, err = wire.EncodeResult(q.Kind, wire.Generation{Gen: gen})
		}
	default:
		r.reply(conn, mustError(fmt.Sprintf("unknown query kind %q", q.Kind)))
		return true
	}
	if err != nil {
		r.reply(conn, mustError(err.Error()))
		return true
	}
	return r.reply(conn, resp)
}

// reply best-effort writes a frame; a failed write means the peer is
// gone, which the caller treats as connection end.
func (r *Root) reply(conn net.Conn, f wire.Frame) bool {
	return wire.WriteFrame(conn, f, r.cfg.MaxFramePayload) == nil
}

// mustError encodes an error frame; encoding a plain string cannot
// fail.
func mustError(msg string) wire.Frame {
	f, err := wire.EncodeError(msg)
	if err != nil {
		panic(err)
	}
	return f
}
