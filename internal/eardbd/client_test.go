package eardbd

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"testing"

	"goear/internal/eard"
	"goear/internal/par"
)

// pipeDialer returns a Dial function handing out net.Pipe ends served
// by srv, with the server end optionally wrapped.
func pipeDialer(srv *Server, wrap func(net.Conn) net.Conn) func() (net.Conn, error) {
	return func() (net.Conn, error) {
		client, server := net.Pipe()
		if wrap != nil {
			server = wrap(server)
		}
		go srv.ServeConn(server)
		return client, nil
	}
}

func newTestClient(t *testing.T, cfg ClientConfig) *Client {
	t.Helper()
	if cfg.Node == "" {
		cfg.Node = "n01"
	}
	if cfg.Clock == nil {
		cfg.Clock = NewFakeClock(0)
	}
	if cfg.Jitter == nil {
		cfg.Jitter = rand.New(rand.NewSource(42))
	}
	c, err := NewClient(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestClientConfigValidation(t *testing.T) {
	base := ClientConfig{
		Node:   "n01",
		Dial:   func() (net.Conn, error) { return nil, errors.New("no") },
		Clock:  NewFakeClock(0),
		Jitter: rand.New(rand.NewSource(1)),
	}
	for _, tc := range []struct {
		name    string
		corrupt func(*ClientConfig)
	}{
		{"no node", func(c *ClientConfig) { c.Node = "" }},
		{"no dial", func(c *ClientConfig) { c.Dial = nil }},
		{"no clock", func(c *ClientConfig) { c.Clock = nil }},
		{"no jitter", func(c *ClientConfig) { c.Jitter = nil }},
	} {
		cfg := base
		tc.corrupt(&cfg)
		if _, err := NewClient(cfg); err == nil {
			t.Errorf("%s: config accepted", tc.name)
		}
	}
	if _, err := NewClient(base); err != nil {
		t.Errorf("valid config refused: %v", err)
	}
}

func TestClientBatchSizeTrigger(t *testing.T) {
	srv := NewServer(eard.NewDB(), Config{})
	c := newTestClient(t, ClientConfig{Dial: pipeDialer(srv, nil), BatchRecords: 3})
	for i := 0; i < 7; i++ {
		if err := c.Enqueue(rec("j1", "0", fmt.Sprintf("n%02d", i), 100)); err != nil {
			t.Fatal(err)
		}
	}
	// Two full batches flushed automatically, one record still queued.
	if got := srv.DB().Len(); got != 6 {
		t.Errorf("db = %d records before explicit flush, want 6", got)
	}
	if c.Queued() != 1 {
		t.Errorf("queued = %d, want 1", c.Queued())
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if got := srv.DB().Len(); got != 7 {
		t.Errorf("db = %d records after close, want 7", got)
	}
	st := c.Stats()
	if st.Enqueued != 7 || st.BatchesSent != 3 || st.RecordsSent != 7 || st.Retries != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestClientIntervalTrigger(t *testing.T) {
	srv := NewServer(eard.NewDB(), Config{})
	clock := NewFakeClock(100)
	c := newTestClient(t, ClientConfig{Dial: pipeDialer(srv, nil), Clock: clock,
		BatchRecords: 100, FlushIntervalSec: 5})
	if err := c.Enqueue(rec("j1", "0", "n01", 100)); err != nil {
		t.Fatal(err)
	}
	if err := c.Tick(); err != nil {
		t.Fatal(err)
	}
	if srv.DB().Len() != 0 {
		t.Error("tick flushed before the interval elapsed")
	}
	clock.Advance(4.9)
	if err := c.Tick(); err != nil {
		t.Fatal(err)
	}
	if srv.DB().Len() != 0 {
		t.Error("tick flushed 0.1s early")
	}
	clock.Advance(0.2)
	if err := c.Tick(); err != nil {
		t.Fatal(err)
	}
	if srv.DB().Len() != 1 {
		t.Errorf("db = %d after interval tick, want 1", srv.DB().Len())
	}
}

// ackDropConn drops (fails) the first `drops` writes on the server
// side: the batch is processed but its ack never reaches the client —
// the lost-ack half of a mid-stream kill.
type ackDropConn struct {
	net.Conn
	drops *atomic.Int32
}

func (c *ackDropConn) Write(p []byte) (int, error) {
	if c.drops.Add(-1) >= 0 {
		_ = c.Conn.Close()
		return 0, errors.New("ack lost: connection killed")
	}
	return c.Conn.Write(p)
}

// TestExactlyOnceAfterLostAck is the acceptance test for graceful
// degradation: the server processes a batch but dies before the ack.
// The client must retry/spill/replay under the same batch ID, and
// every record must land in the DB exactly once.
func TestExactlyOnceAfterLostAck(t *testing.T) {
	srv := NewServer(eard.NewDB(), Config{})
	drops := &atomic.Int32{}
	drops.Store(1)
	c := newTestClient(t, ClientConfig{
		Dial:         pipeDialer(srv, func(conn net.Conn) net.Conn { return &ackDropConn{Conn: conn, drops: drops} }),
		BatchRecords: 4, MaxAttempts: 3,
	})
	for i := 0; i < 4; i++ {
		if err := c.Enqueue(rec("j1", "0", fmt.Sprintf("n%02d", i), 100)); err != nil {
			t.Fatal(err)
		}
	}
	// The size trigger fired, the first ack was dropped, the in-flush
	// retry redelivered under the same ID and the server deduplicated.
	st := srv.Stats()
	if srv.DB().Len() != 4 {
		t.Fatalf("db = %d records, want 4", srv.DB().Len())
	}
	if st.RecordsAccepted != 4 || st.RecordsReplaced != 0 {
		t.Errorf("server stats = %+v: records not exactly-once", st)
	}
	if st.DuplicateBatches != 1 {
		t.Errorf("server stats = %+v, want exactly 1 deduplicated batch redelivery", st)
	}
	if cs := c.Stats(); cs.Retries == 0 {
		t.Errorf("client stats = %+v, expected a retry", cs)
	}
}

// TestJournalSpillAndReplayExactlyOnce kills the daemon outright: the
// flush exhausts its attempts, spills to the journal, and a later
// flush (daemon back up, same DB) replays. Records land exactly once.
func TestJournalSpillAndReplayExactlyOnce(t *testing.T) {
	db := eard.NewDB()
	srv := NewServer(db, Config{})
	drops := &atomic.Int32{}
	drops.Store(99) // every ack write fails: daemon is effectively down
	journal, err := OpenJournal("")
	if err != nil {
		t.Fatal(err)
	}
	c := newTestClient(t, ClientConfig{
		Dial:         pipeDialer(srv, func(conn net.Conn) net.Conn { return &ackDropConn{Conn: conn, drops: drops} }),
		BatchRecords: 4, MaxAttempts: 2, Journal: journal,
	})
	for i := 0; i < 4; i++ {
		err := c.Enqueue(rec("j1", "0", fmt.Sprintf("n%02d", i), 100))
		if i < 3 && err != nil {
			t.Fatal(err)
		}
		if i == 3 && !errors.Is(err, ErrUnreachable) {
			t.Fatalf("flush against dead daemon = %v, want ErrUnreachable", err)
		}
	}
	// The batch was processed server-side (acks die, reads do not) and
	// spilled client-side under its original ID.
	if journal.Len() != 1 {
		t.Fatalf("journal = %d batches, want 1", journal.Len())
	}
	if c.Queued() != 0 {
		t.Errorf("queue = %d records after spill, want 0", c.Queued())
	}

	// Daemon recovers.
	drops.Store(0)
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if journal.Len() != 0 {
		t.Errorf("journal = %d batches after replay, want 0", journal.Len())
	}
	st := srv.Stats()
	if db.Len() != 4 || st.RecordsAccepted != 4 || st.RecordsReplaced != 0 {
		t.Errorf("db = %d, stats = %+v: records not exactly-once", db.Len(), st)
	}
	if st.DuplicateBatches == 0 {
		t.Error("replay was not deduplicated by batch ID")
	}
	if cs := c.Stats(); cs.BatchesSpilled != 1 || cs.BatchesReplayed != 1 {
		t.Errorf("client stats = %+v", cs)
	}
}

func TestClientUnreachableWithoutJournalKeepsQueue(t *testing.T) {
	c := newTestClient(t, ClientConfig{
		Dial:        func() (net.Conn, error) { return nil, errors.New("refused") },
		MaxAttempts: 2, BatchRecords: 2, QueueCap: 3,
	})
	if err := c.Enqueue(rec("j1", "0", "n01", 100)); err != nil {
		t.Fatal(err)
	}
	if err := c.Enqueue(rec("j1", "0", "n02", 100)); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("flush = %v, want ErrUnreachable", err)
	}
	if c.Queued() != 2 {
		t.Errorf("queue = %d, want 2 (kept, not lost)", c.Queued())
	}
	if err := c.Enqueue(rec("j1", "0", "n03", 100)); !errors.Is(err, ErrUnreachable) {
		t.Fatal(err)
	}
	// Queue at cap with no journal: the next record is refused.
	if err := c.Enqueue(rec("j1", "0", "n04", 100)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("enqueue over cap = %v, want ErrQueueFull", err)
	}
	if st := c.Stats(); st.RecordsDropped != 1 {
		t.Errorf("stats = %+v, want 1 dropped", st)
	}
}

func TestClientQueueCapSpillsToJournal(t *testing.T) {
	journal, err := OpenJournal("")
	if err != nil {
		t.Fatal(err)
	}
	c := newTestClient(t, ClientConfig{
		Dial:        func() (net.Conn, error) { return nil, errors.New("refused") },
		MaxAttempts: 1, BatchRecords: 100, QueueCap: 4, Journal: journal,
	})
	for i := 0; i < 10; i++ {
		if err := c.Enqueue(rec("j1", "0", fmt.Sprintf("n%02d", i), 100)); err != nil {
			t.Fatal(err)
		}
	}
	// Cap 4: enqueues 5 and 9 spilled full queues; 2 remain queued.
	if journal.Len() != 2 {
		t.Errorf("journal = %d batches, want 2", journal.Len())
	}
	total := 0
	for _, b := range journal.Entries() {
		total += len(b.Records)
	}
	if total+c.Queued() != 10 {
		t.Errorf("spilled %d + queued %d, want 10 total", total, c.Queued())
	}
}

func TestClientDropsPoisonBatch(t *testing.T) {
	srv := NewServer(eard.NewDB(), Config{MaxBatchRecords: 2})
	c := newTestClient(t, ClientConfig{Dial: pipeDialer(srv, nil), BatchRecords: 3})
	for i := 0; i < 2; i++ {
		if err := c.Enqueue(rec("j1", "0", fmt.Sprintf("n%02d", i), 100)); err != nil {
			t.Fatal(err)
		}
	}
	err := c.Enqueue(rec("j1", "0", "n02", 100))
	var rej *RejectedError
	if !errors.As(err, &rej) {
		t.Fatalf("oversized batch = %v, want RejectedError", err)
	}
	// The poison batch is dropped, not retried forever.
	if c.Queued() != 0 {
		t.Errorf("queue = %d after rejection, want 0", c.Queued())
	}
	if st := c.Stats(); st.BatchesRejected != 1 || st.RecordsDropped != 3 {
		t.Errorf("stats = %+v", st)
	}
	// The client is still usable within the server's limits.
	if err := c.Enqueue(rec("j2", "0", "n01", 100)); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	if srv.DB().Len() != 1 {
		t.Errorf("db = %d, want 1", srv.DB().Len())
	}
}

// sleepRecorder records backoff sleeps.
type sleepRecorder struct {
	*FakeClock
	mu    sync.Mutex
	slept []float64
}

func (c *sleepRecorder) Sleep(sec float64) {
	c.mu.Lock()
	c.slept = append(c.slept, sec)
	c.mu.Unlock()
	c.FakeClock.Sleep(sec)
}

func TestBackoffIsJitteredExponential(t *testing.T) {
	clock := &sleepRecorder{FakeClock: NewFakeClock(0)}
	c := newTestClient(t, ClientConfig{
		Dial:  func() (net.Conn, error) { return nil, errors.New("refused") },
		Clock: clock, Jitter: rand.New(rand.NewSource(7)),
		MaxAttempts: 4, BackoffBaseSec: 1, BackoffMaxSec: 4, BatchRecords: 1,
	})
	if err := c.Enqueue(rec("j1", "0", "n01", 100)); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("err = %v", err)
	}
	if len(clock.slept) != 3 {
		t.Fatalf("sleeps = %v, want 3 backoffs for 4 attempts", clock.slept)
	}
	// Attempt k backs off 2^(k-1)·base scaled into [0.5, 1).
	bounds := []struct{ lo, hi float64 }{{0.5, 1}, {1, 2}, {2, 4}}
	for i, s := range clock.slept {
		if s < bounds[i].lo || s >= bounds[i].hi {
			t.Errorf("backoff %d = %g, want [%g, %g)", i+1, s, bounds[i].lo, bounds[i].hi)
		}
	}
	// The schedule is reproducible under the same seed.
	clock2 := &sleepRecorder{FakeClock: NewFakeClock(0)}
	c2 := newTestClient(t, ClientConfig{
		Dial:  func() (net.Conn, error) { return nil, errors.New("refused") },
		Clock: clock2, Jitter: rand.New(rand.NewSource(7)),
		MaxAttempts: 4, BackoffBaseSec: 1, BackoffMaxSec: 4, BatchRecords: 1,
	})
	if err := c2.Enqueue(rec("j1", "0", "n01", 100)); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("err = %v", err)
	}
	for i := range clock.slept {
		if clock.slept[i] != clock2.slept[i] {
			t.Errorf("seeded backoff differs: %v vs %v", clock.slept, clock2.slept)
		}
	}
}

// flakyListener kills every third accepted connection: one dies on
// its first server-side read (batch lost before processing), the next
// loses its first ack write (batch processed, ack lost), the third is
// healthy. Progress is guaranteed, every failure mode is exercised.
type flakyListener struct {
	net.Listener
	accepted atomic.Int32
}

type readKillConn struct {
	net.Conn
	kills *atomic.Int32
}

func (c *readKillConn) Read(p []byte) (int, error) {
	if c.kills.Add(-1) >= 0 {
		_ = c.Conn.Close()
		return 0, errors.New("killed before read")
	}
	return c.Conn.Read(p)
}

func (l *flakyListener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	switch l.accepted.Add(1) % 3 {
	case 1:
		kills := &atomic.Int32{}
		kills.Store(1)
		return &readKillConn{Conn: conn, kills: kills}, nil
	case 2:
		drops := &atomic.Int32{}
		drops.Store(1)
		return &ackDropConn{Conn: conn, drops: drops}, nil
	}
	return conn, nil
}

// TestClientReconnectStress drives concurrent producers through a
// flaky TCP listener and checks the exactly-once contract end to end.
// Run under -race in CI.
func TestClientReconnectStress(t *testing.T) {
	base, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	l := &flakyListener{Listener: base}
	db := eard.NewDB()
	srv := NewServer(db, Config{})
	done := make(chan error, 1)
	go func() { done <- srv.Serve(l) }()
	defer func() {
		if err := srv.Close(); err != nil {
			t.Errorf("close: %v", err)
		}
		<-done
	}()

	journal, err := OpenJournal("")
	if err != nil {
		t.Fatal(err)
	}
	c := newTestClient(t, ClientConfig{
		Node: "n01",
		Dial: func() (net.Conn, error) { return net.Dial("tcp", base.Addr().String()) },
		// 5 attempts ride out the flaky listener's worst-case run of
		// broken connections.
		BatchRecords: 8, QueueCap: 64, MaxAttempts: 5,
		BackoffBaseSec: 0.001, Journal: journal,
	})

	const producers, perProducer = 4, 100
	err = par.ForEach(producers, producers, func(g int) error {
		for i := 0; i < perProducer; i++ {
			r := rec(fmt.Sprintf("j%d", g), fmt.Sprint(i), fmt.Sprintf("n%02d", g), 100+float64(g))
			if err := c.Enqueue(r); err != nil && !errors.Is(err, ErrUnreachable) {
				return fmt.Errorf("producer %d record %d: %w", g, i, err)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Drain: flush until everything buffered or spilled has landed.
	for i := 0; i < 200 && (c.Queued() > 0 || journal.Len() > 0); i++ {
		if err := c.Flush(); err != nil && !errors.Is(err, ErrUnreachable) {
			t.Fatal(err)
		}
	}

	const want = producers * perProducer
	if db.Len() != want {
		t.Fatalf("db = %d records, want %d", db.Len(), want)
	}
	st := srv.Stats()
	if st.RecordsAccepted != want || st.RecordsReplaced != 0 {
		t.Errorf("server stats = %+v: records not exactly-once", st)
	}
	for g := 0; g < producers; g++ {
		for i := 0; i < perProducer; i++ {
			want := rec(fmt.Sprintf("j%d", g), fmt.Sprint(i), fmt.Sprintf("n%02d", g), 100+float64(g))
			got, ok := db.Get(want.JobID, want.StepID, want.Node)
			if !ok || got != want {
				t.Fatalf("record (%s,%s,%s) = %+v, ok=%v", want.JobID, want.StepID, want.Node, got, ok)
			}
		}
	}
}

func TestFreshClientResumesSeqPastJournal(t *testing.T) {
	// A previous process spilled batch n01/1. A fresh client over the
	// same journal must not reuse that ID for new records: the server's
	// seen-window would treat the new batch as a redelivery and drop it.
	journal, err := OpenJournal("")
	if err != nil {
		t.Fatal(err)
	}
	dead := func() (net.Conn, error) { return nil, errors.New("down") }
	c1 := newTestClient(t, ClientConfig{Dial: dead, Journal: journal, MaxAttempts: 1})
	if err := c1.Enqueue(rec("j1", "0", "n01", 100)); err != nil {
		t.Fatal(err)
	}
	if err := c1.Flush(); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("flush err = %v, want ErrUnreachable", err)
	}
	if journal.Len() != 1 {
		t.Fatalf("journal = %d batches, want 1", journal.Len())
	}

	srv := NewServer(eard.NewDB(), Config{})
	c2 := newTestClient(t, ClientConfig{Dial: pipeDialer(srv, nil), Journal: journal})
	if err := c2.Enqueue(rec("j2", "0", "n01", 200)); err != nil {
		t.Fatal(err)
	}
	if err := c2.Close(); err != nil {
		t.Fatal(err)
	}
	if got := srv.DB().Len(); got != 2 {
		t.Fatalf("db = %d records, want 2 (journaled + fresh)", got)
	}
	if st := srv.Stats(); st.DuplicateBatches != 0 {
		t.Errorf("fresh batch collided with a journaled ID: %+v", st)
	}
}
