package eardbd

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sync"

	"goear/internal/wire"
)

// Journal is the client's local spill store: batches the daemon could
// not be reached for are appended here and replayed on reconnect.
// Entries keep the batch ID they were first sent under, so a replay of
// a batch whose ack was lost is recognized server-side and dropped —
// the exactly-once half of the degradation contract.
//
// The on-disk format is JSON lines, one wire.Batch per line, appended
// synchronously. Removal (after a successful replay) compacts the file
// through a temp-file rename. A journal opened with an empty path
// lives purely in memory, which the deterministic tests use.
type Journal struct {
	mu      sync.Mutex
	path    string
	entries []wire.Batch
}

// OpenJournal opens (or creates) the journal at path, loading any
// batches a previous run spilled. A line cut short by a crash mid-
// append is tolerated if and only if it is the final line: the partial
// tail is discarded and overwritten by the next append. Malformed
// content anywhere else is corruption and errors. An empty path
// returns a memory-only journal.
func OpenJournal(path string) (*Journal, error) {
	j := &Journal{path: path}
	if path == "" {
		return j, nil
	}
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return j, nil
	}
	if err != nil {
		return nil, fmt.Errorf("eardbd: open journal: %w", err)
	}
	// Read-only descriptor: no buffered writes to lose on close.
	defer func() { _ = f.Close() }()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	var pendingErr error
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		if pendingErr != nil {
			// The malformed line was not the final one: corruption.
			return nil, pendingErr
		}
		var b wire.Batch
		if err := json.Unmarshal(line, &b); err != nil {
			pendingErr = fmt.Errorf("eardbd: journal %s corrupt: %w", path, err)
			continue
		}
		j.entries = append(j.entries, b)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("eardbd: read journal: %w", err)
	}
	if pendingErr != nil {
		// Crash-truncated tail: drop it and rewrite the surviving prefix.
		if err := j.rewrite(); err != nil {
			return nil, err
		}
	}
	return j, nil
}

// Append spills one batch, persisting before returning so a crash
// after Append cannot lose it.
func (j *Journal) Append(b wire.Batch) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.path != "" {
		line, err := json.Marshal(b)
		if err != nil {
			return fmt.Errorf("eardbd: encode journal entry: %w", err)
		}
		f, err := os.OpenFile(j.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("eardbd: append journal: %w", err)
		}
		_, werr := f.Write(append(line, '\n'))
		serr := f.Sync()
		cerr := f.Close()
		for _, err := range []error{werr, serr, cerr} {
			if err != nil {
				return fmt.Errorf("eardbd: append journal: %w", err)
			}
		}
	}
	j.entries = append(j.entries, b)
	return nil
}

// Remove drops the batch with the given ID (after its replay was
// acknowledged) and compacts the file.
func (j *Journal) Remove(id string) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	kept := j.entries[:0]
	for _, b := range j.entries {
		if b.ID != id {
			kept = append(kept, b)
		}
	}
	j.entries = kept
	return j.rewrite()
}

// Entries returns a copy of the spilled batches, oldest first.
func (j *Journal) Entries() []wire.Batch {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := make([]wire.Batch, len(j.entries))
	copy(out, j.entries)
	return out
}

// Len returns the number of spilled batches.
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.entries)
}

// rewrite persists the in-memory entries atomically. Callers hold mu.
func (j *Journal) rewrite() error {
	if j.path == "" {
		return nil
	}
	if len(j.entries) == 0 {
		if err := os.Remove(j.path); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("eardbd: clear journal: %w", err)
		}
		return nil
	}
	tmp := j.path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("eardbd: rewrite journal: %w", err)
	}
	w := bufio.NewWriter(f)
	enc := json.NewEncoder(w)
	for _, b := range j.entries {
		if err := enc.Encode(b); err != nil {
			_ = f.Close()
			return fmt.Errorf("eardbd: rewrite journal: %w", err)
		}
	}
	ferr := w.Flush()
	serr := f.Sync()
	cerr := f.Close()
	for _, err := range []error{ferr, serr, cerr} {
		if err != nil {
			return fmt.Errorf("eardbd: rewrite journal: %w", err)
		}
	}
	if err := os.Rename(tmp, j.path); err != nil {
		return fmt.Errorf("eardbd: rewrite journal: %w", err)
	}
	return nil
}
