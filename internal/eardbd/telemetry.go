package eardbd

import (
	"goear/internal/telemetry"
)

// Metric names (package-level constants per the goearvet telemetry
// analyzer). Server- and client-side families are distinct so one
// process hosting both (tests, simulations) keeps them apart.
const (
	metricDBDConnections = "goear_eardbd_connections_total"
	metricDBDBatches     = "goear_eardbd_batches_total"
	metricDBDRecords     = "goear_eardbd_records_total"
	metricDBDProtoErrors = "goear_eardbd_protocol_errors_total"
	metricDBDQueries     = "goear_eardbd_queries_total"

	metricDBDClientFlushes     = "goear_eardbd_client_flushes_total"
	metricDBDClientBatchesSent = "goear_eardbd_client_batches_sent_total"
	metricDBDClientRecordsSent = "goear_eardbd_client_records_sent_total"
	metricDBDClientRetries     = "goear_eardbd_client_retries_total"
	metricDBDClientRedials     = "goear_eardbd_client_redials_total"
	metricDBDClientSpilled     = "goear_eardbd_client_batches_spilled_total"
	metricDBDClientReplayed    = "goear_eardbd_client_batches_replayed_total"
	metricDBDClientRejected    = "goear_eardbd_client_batches_rejected_total"
	metricDBDClientDropped     = "goear_eardbd_client_records_dropped_total"
	metricDBDClientBackoff     = "goear_eardbd_client_backoff_seconds"

	metricDBDLatency       = "goear_eardbd_latency_seconds"
	metricDBDClientLatency = "goear_eardbd_client_latency_seconds"
)

// Span kinds (package-level constants per the goearvet telemetry
// analyzer's dotted-lowercase naming rule). The server side continues
// the trace context arriving on the wire frame; the client side roots
// each batch trace by batch ID, so a replayed batch rejoins the trace
// its spill started.
const (
	spanServerBatch    = "server.batch"
	spanServerValidate = "server.validate"
	spanServerDedup    = "server.dedup"
	spanServerStore    = "server.store"
	spanServerAcct     = "server.acct"
	spanServerQuery    = "server.query"

	spanClientBatch   = "client.batch"
	spanClientSend    = "client.send"
	spanClientBackoff = "client.backoff"
	spanClientSpill   = "client.spill"
	spanClientReplay  = "client.replay"
)

// backoffBounds buckets client backoff sleeps in seconds, spanning the
// default schedule (base 0.5 s doubling to the 30 s cap, jittered down
// to half).
var backoffBounds = []float64{0.1, 0.25, 0.5, 1, 2, 5, 10, 30}

// latencyBounds buckets per-operation latencies in seconds, from
// in-process round trips (tens of microseconds) up to WAN-and-retry
// territory.
var latencyBounds = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5,
}

// LatencyBounds exposes the shared per-operation latency buckets so
// the federation and load-generation tiers register histogram
// families with identical shape (the registry requires it when they
// share one Set).
func LatencyBounds() []float64 {
	return append([]float64(nil), latencyBounds...)
}

// serverTel is a server's pre-resolved instrument bundle. Handles are
// resolved once in NewServer; with telemetry absent every field is nil
// and each use is a nil-receiver no-op. The registry's get-or-create
// family semantics let several servers (or servers and clients) share
// one Set: they fold into the same series.
type serverTel struct {
	conns      *telemetry.Counter
	batchOK    *telemetry.Counter // result="accepted"
	batchDup   *telemetry.Counter // result="duplicate" (dedup-window hit)
	batchRej   *telemetry.Counter // result="rejected"
	recAccept  *telemetry.Counter // result="accepted"
	recDup     *telemetry.Counter // result="duplicate"
	recReplace *telemetry.Counter // result="replaced"
	protoErrs  *telemetry.Counter
	queries    *telemetry.Counter
	latBatch   *telemetry.Histogram // op="batch"
	latQuery   *telemetry.Histogram // op="query"
	rec        *telemetry.Recorder
}

func newServerTel(s *telemetry.Set) serverTel {
	r := s.Reg()
	batches := r.CounterVec(metricDBDBatches, "batches handled by outcome", "result")
	records := r.CounterVec(metricDBDRecords, "records folded into the database by outcome", "result")
	latency := r.HistogramVec(metricDBDLatency, "server handling latency by wire op, seconds", latencyBounds, "op")
	return serverTel{
		conns:      r.Counter(metricDBDConnections, "connections accepted"),
		batchOK:    batches.With("accepted"),
		batchDup:   batches.With("duplicate"),
		batchRej:   batches.With("rejected"),
		recAccept:  records.With("accepted"),
		recDup:     records.With("duplicate"),
		recReplace: records.With("replaced"),
		protoErrs:  r.Counter(metricDBDProtoErrors, "malformed frames and internal store failures"),
		queries:    r.Counter(metricDBDQueries, "snapshot queries answered"),
		latBatch:   latency.With("batch"),
		latQuery:   latency.With("query"),
		rec:        s.Rec(),
	}
}

// LatencySLO registers the server's per-op latency histograms with an
// SLO summary so daemons can report objective conformance. Targets
// are p99 seconds; zero means "report, no objective". A nil server or
// SLO is a no-op.
func (s *Server) LatencySLO(slo *telemetry.SLO, batchTargetP99, queryTargetP99 float64) {
	if s == nil {
		return
	}
	slo.Register("batch", s.tel.latBatch, batchTargetP99)
	slo.Register("query", s.tel.latQuery, queryTargetP99)
}

// batchEvent records one batch outcome in the event log. The daemon
// has no injected clock (wall time is banned repo-wide), so events
// carry no timestamp; the recorder's sequence numbers order them.
func (t serverTel) batchEvent(node, id, result string, ack *int3) {
	if t.rec == nil {
		return
	}
	ev := telemetry.Event{
		Kind: "eardbd.batch",
		Src:  node,
		Str:  map[string]string{"result": result},
	}
	if id != "" {
		ev.Str["id"] = id
	}
	if ack != nil {
		ev.Num = map[string]float64{
			"accepted":  float64(ack.a),
			"duplicate": float64(ack.b),
			"replaced":  float64(ack.c),
		}
	}
	t.rec.Record(ev)
}

// int3 carries a batch ack's three record counts to batchEvent without
// importing wire types here.
type int3 struct{ a, b, c int }

// clientTel is a client's pre-resolved instrument bundle; same nil
// no-op semantics as serverTel.
type clientTel struct {
	flushes  *telemetry.Counter
	sent     *telemetry.Counter
	recSent  *telemetry.Counter
	retries  *telemetry.Counter
	redials  *telemetry.Counter
	spilled  *telemetry.Counter
	replayed *telemetry.Counter
	rejected *telemetry.Counter
	dropped  *telemetry.Counter
	backoff  *telemetry.Histogram
	latSend  *telemetry.Histogram // op="send": client-observed batch RTT
	rec      *telemetry.Recorder
}

func newClientTel(s *telemetry.Set) clientTel {
	r := s.Reg()
	latency := r.HistogramVec(metricDBDClientLatency, "client-observed latency by wire op, seconds", latencyBounds, "op")
	return clientTel{
		flushes:  r.Counter(metricDBDClientFlushes, "flush cycles started"),
		sent:     r.Counter(metricDBDClientBatchesSent, "batches acked by the daemon"),
		recSent:  r.Counter(metricDBDClientRecordsSent, "records acked by the daemon"),
		retries:  r.Counter(metricDBDClientRetries, "delivery retries after a failed attempt"),
		redials:  r.Counter(metricDBDClientRedials, "connections (re)established to the daemon"),
		spilled:  r.Counter(metricDBDClientSpilled, "batches spilled to the journal"),
		replayed: r.Counter(metricDBDClientReplayed, "journaled batches redelivered and acked"),
		rejected: r.Counter(metricDBDClientRejected, "batches dropped on permanent server rejection"),
		dropped:  r.Counter(metricDBDClientDropped, "records lost to queue overflow or rejection"),
		backoff:  r.Histogram(metricDBDClientBackoff, "backoff sleep before a retry, seconds", backoffBounds),
		latSend:  latency.With("send"),
		rec:      s.Rec(),
	}
}

// event records one client-side event stamped with the injected clock.
func (t clientTel) event(now float64, kind, node, id string, records int) {
	if t.rec == nil {
		return
	}
	t.rec.Record(telemetry.Event{
		TimeSec: now,
		Kind:    kind,
		Src:     node,
		Str:     map[string]string{"id": id},
		Num:     map[string]float64{"records": float64(records)},
	})
}
