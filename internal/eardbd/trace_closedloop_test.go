package eardbd_test

import (
	"net"
	"strings"
	"testing"

	"goear/internal/eardbd"
	"goear/internal/eardbd/dbdtest"
	"goear/internal/loadgen"
	"goear/internal/telemetry/trace"
	"goear/internal/wire"
)

// runTracedLoop drives the canonical workload with tracing enabled on
// the clients and every shard server, all sharing one span buffer —
// the deployment shape where a scraper reads a merged trace stream.
func runTracedLoop(t *testing.T, nodes, workers, shards int) (*loadgen.Cluster, *trace.Buffer) {
	t.Helper()
	buf := trace.NewBuffer(1 << 14)
	cluster, err := loadgen.NewCluster(shards, eardbd.Config{Trace: buf})
	if err != nil {
		t.Fatal(err)
	}
	g, err := loadgen.New(loadgen.Config{
		Nodes:    nodes,
		Workers:  workers,
		NodeName: dbdtest.CanonicalNode,
		Trace:    buf,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := g.Run(cluster.DialFor, loadgen.Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	if res.NodeErrors != 0 || res.BacklogBatches != 0 {
		t.Fatalf("traced feed faulted: %+v", res)
	}
	return cluster, buf
}

// canonicalLines renders the buffer's canonical export as JSON lines.
func canonicalLines(t *testing.T, buf *trace.Buffer) string {
	t.Helper()
	var b strings.Builder
	if err := trace.WriteJSONLines(&b, buf.Canonical()); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestTraceSingleBatchSpanTree pins the tentpole contract at its
// smallest: one node's reports render as connected trees rooted at
// client.batch spans, with the server-side spans joined through the
// wire trace context — every span's parent is present and shares its
// trace ID, and each stage of the pipeline appears.
func TestTraceSingleBatchSpanTree(t *testing.T) {
	_, buf := runTracedLoop(t, 1, 1, 1)
	spans := buf.Spans()
	if len(spans) == 0 {
		t.Fatal("no spans recorded")
	}
	byID := map[trace.HexID]trace.Span{}
	kinds := map[string]int{}
	for _, s := range spans {
		byID[s.ID] = s
		kinds[s.Kind]++
	}
	for _, want := range []string{
		"client.batch", "client.send",
		"server.batch", "server.validate", "server.dedup", "server.store", "server.acct",
	} {
		if kinds[want] == 0 {
			t.Errorf("no %s span recorded; kinds = %v", want, kinds)
		}
	}
	for _, s := range spans {
		if s.Parent == 0 {
			if s.Kind != "client.batch" {
				t.Errorf("unexpected root span kind %s", s.Kind)
			}
			continue
		}
		p, ok := byID[s.Parent]
		if !ok {
			t.Errorf("%s span %s has missing parent %s", s.Kind, s.ID, s.Parent)
			continue
		}
		if p.Trace != s.Trace {
			t.Errorf("%s span crosses traces: %s under %s", s.Kind, s.Trace, p.Trace)
		}
	}
	// The wire hop: every server.batch must hang off a client.send.
	for _, s := range spans {
		if s.Kind != "server.batch" {
			continue
		}
		if p := byID[s.Parent]; p.Kind != "client.send" {
			t.Errorf("server.batch parented by %q, want client.send", p.Kind)
		}
		if s.Attrs.Get("result") != "accepted" {
			t.Errorf("server.batch result = %q, want accepted", s.Attrs.Get("result"))
		}
	}
}

// TestTraceWorkerAndShardInvariance is the determinism half of the
// tentpole: the canonical span export of the same workload must be
// byte-identical whatever the feeder worker count and whatever the
// shard count — span identities derive from batch IDs and kinds, not
// from scheduling or placement.
func TestTraceWorkerAndShardInvariance(t *testing.T) {
	const nodes = 8
	_, refBuf := runTracedLoop(t, nodes, 1, 1)
	ref := canonicalLines(t, refBuf)
	if strings.Count(ref, "\n") < nodes {
		t.Fatalf("suspiciously small reference export:\n%s", ref)
	}
	for _, workers := range []int{1, 4} {
		for _, shards := range []int{1, 2, 4} {
			_, buf := runTracedLoop(t, nodes, workers, shards)
			if got := canonicalLines(t, buf); got != ref {
				t.Fatalf("workers=%d shards=%d canonical export differs:\n--- want\n%s--- got\n%s",
					workers, shards, ref, got)
			}
		}
	}
}

// TestTraceFederationQueryTree checks the read path: a snapshot query
// served by the federation root renders as a fed.query span whose
// fed.fanout children carry their contexts onto the shard daemons, so
// the shards' server.query spans join the root's tree; the merge span
// is annotated with its cache outcome.
func TestTraceFederationQueryTree(t *testing.T) {
	const shards = 2
	cluster, buf := runTracedLoop(t, 8, 4, shards)
	root, err := cluster.Root()
	if err != nil {
		t.Fatal(err)
	}
	// Query over the wire, as earctl would: the in-process accessors
	// deliberately trace nothing, only served frames do.
	cli, srvConn := net.Pipe()
	done := make(chan struct{})
	go func() {
		root.ServeConn(srvConn)
		close(done)
	}()
	if _, err := eardbd.Query(cli, wire.Query{Kind: wire.QueryAggregate}, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := eardbd.Query(cli, wire.Query{Kind: wire.QueryStats}, 0); err != nil {
		t.Fatal(err)
	}
	if err := cli.Close(); err != nil {
		t.Fatal(err)
	}
	<-done // fed.query spans end when the serving loop unwinds
	spans := buf.Spans()
	byID := map[trace.HexID]trace.Span{}
	for _, s := range spans {
		byID[s.ID] = s
	}
	var fanouts, joined, merges int
	for _, s := range spans {
		switch s.Kind {
		case "fed.fanout":
			fanouts++
			if p := byID[s.Parent]; p.Kind != "fed.query" && p.Kind != "fed.merge" {
				t.Errorf("fed.fanout parented by %q", p.Kind)
			}
			if s.Attrs.Get("shard") == "" {
				t.Error("fed.fanout span lacks a shard attribute")
			}
		case "server.query":
			if p := byID[s.Parent]; p.Kind == "fed.fanout" {
				joined++
			}
		case "fed.merge":
			merges++
			switch c := s.Attrs.Get("cache"); c {
			case "hit", "miss":
			default:
				t.Errorf("fed.merge cache attr = %q", c)
			}
		}
	}
	if fanouts < shards {
		t.Errorf("only %d fed.fanout spans for %d shards", fanouts, shards)
	}
	if joined == 0 {
		t.Error("no shard server.query span joined a fed.fanout parent: wire context lost")
	}
	if merges == 0 {
		t.Error("no fed.merge span recorded")
	}
}
