package eardbd

import (
	"os"
	"path/filepath"
	"testing"

	"goear/internal/eard"
	"goear/internal/wire"
)

func journalBatch(id string, n int) wire.Batch {
	b := wire.Batch{ID: id, Node: "n01"}
	for i := 0; i < n; i++ {
		b.Records = append(b.Records, eard.JobRecord{
			JobID: "j1", StepID: "0", Node: "n01", TimeSec: 10, EnergyJ: 1000, AvgPower: 100,
		})
	}
	return b
}

func TestJournalPersistsAcrossReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spill.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(journalBatch("n01/1", 2)); err != nil {
		t.Fatal(err)
	}
	if err := j.Append(journalBatch("n01/2", 3)); err != nil {
		t.Fatal(err)
	}

	// A fresh open (a restarted node daemon) sees both batches in
	// order.
	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	ents := j2.Entries()
	if len(ents) != 2 || ents[0].ID != "n01/1" || ents[1].ID != "n01/2" {
		t.Fatalf("entries = %+v", ents)
	}
	if len(ents[1].Records) != 3 {
		t.Errorf("batch 2 records = %d, want 3", len(ents[1].Records))
	}

	// Removal compacts; a further reopen sees only the survivor, and
	// removing the last entry deletes the file.
	if err := j2.Remove("n01/1"); err != nil {
		t.Fatal(err)
	}
	j3, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if ents := j3.Entries(); len(ents) != 1 || ents[0].ID != "n01/2" {
		t.Fatalf("entries after remove = %+v", ents)
	}
	if err := j3.Remove("n01/2"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Errorf("empty journal file still exists: %v", err)
	}
}

func TestJournalToleratesCrashTruncatedTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spill.journal")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(journalBatch("n01/1", 1)); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: a partial JSON line at the tail.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"id":"n01/2","node":"n0`); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("crash-truncated journal refused: %v", err)
	}
	if ents := j2.Entries(); len(ents) != 1 || ents[0].ID != "n01/1" {
		t.Fatalf("entries = %+v", ents)
	}
	// The truncated tail was compacted away: appending then reopening
	// yields clean entries only.
	if err := j2.Append(journalBatch("n01/3", 1)); err != nil {
		t.Fatal(err)
	}
	j3, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if ents := j3.Entries(); len(ents) != 2 || ents[1].ID != "n01/3" {
		t.Fatalf("entries after recovery = %+v", ents)
	}
}

func TestJournalRejectsMidFileCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "spill.journal")
	content := `{"id":"n01/1","node":"n01","records":[]}` + "\n" +
		`GARBAGE NOT JSON` + "\n" +
		`{"id":"n01/2","node":"n01","records":[]}` + "\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenJournal(path); err == nil {
		t.Fatal("mid-file corruption accepted")
	}
}

func TestJournalMemoryOnly(t *testing.T) {
	j, err := OpenJournal("")
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Append(journalBatch("m/1", 1)); err != nil {
		t.Fatal(err)
	}
	if j.Len() != 1 {
		t.Errorf("len = %d", j.Len())
	}
	if err := j.Remove("m/1"); err != nil {
		t.Fatal(err)
	}
	if j.Len() != 0 {
		t.Errorf("len after remove = %d", j.Len())
	}
}
