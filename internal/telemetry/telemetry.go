// Package telemetry is the repo's stdlib-only observability layer: a
// metrics registry of allocation-free atomic instruments (Counter,
// Gauge, Histogram and their labeled Vec families), a Prometheus
// text-format encoder, and a bounded ring Recorder for structured
// events with JSON-lines export.
//
// Design rules (enforced by the goearvet `telemetry` analyzer and the
// package itself):
//
//   - Metric names are package-level constants matching
//     ^goear_[a-z0-9_]+$ and are registered at exactly one call site.
//   - Label sets are resolved at setup time: Vec.With returns a plain
//     instrument handle, so the hot path never hashes strings or
//     allocates.
//   - Instruments are nil-safe: every method on a nil instrument is a
//     no-op, so disabled telemetry costs one predictable nil check.
//     Packages keep their instruments in an atomic pointer that stays
//     nil until telemetry is enabled (see OnEnable).
//
// Two scopes exist side by side: the process-global Set managed by
// Enable/Disable (used by sim, par, experiments and the policy layer),
// and instance-scoped Sets injected through a Config field (used by the
// EARDBD client/server and EARGM, which may run several instances per
// process or per test).
package telemetry

import (
	"fmt"
	"sort"
	"sync"
)

// nameOK reports whether name matches ^goear_[a-z0-9_]+$ without
// pulling regexp into every binary that links telemetry.
func nameOK(name string) bool {
	const prefix = "goear_"
	if len(name) <= len(prefix) || name[:len(prefix)] != prefix {
		return false
	}
	for i := len(prefix); i < len(name); i++ {
		c := name[i]
		if c >= 'a' && c <= 'z' || c >= '0' && c <= '9' || c == '_' {
			continue
		}
		return false
	}
	return true
}

type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "unknown"
}

// series is one label-value combination of a family. Exactly one of
// c/g/h is non-nil, matching the family kind.
type series struct {
	values []string
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family is one named metric with all its label-value series. Plain
// (unlabeled) instruments are a family with a single anonymous series.
type family struct {
	name   string
	help   string
	kind   kind
	labels []string
	bounds []float64

	mu     sync.Mutex
	series []*series
	byKey  map[string]*series
}

// with returns the series for the given label values, creating it on
// first use. Setup-time only: it locks and may allocate.
func (f *family) with(values []string) *series {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("telemetry: metric %s has labels %v, got %d value(s)",
			f.name, f.labels, len(values)))
	}
	key := ""
	for _, v := range values {
		key += v + "\x00"
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.byKey[key]; ok {
		return s
	}
	s := &series{values: append([]string(nil), values...)}
	switch f.kind {
	case kindCounter:
		s.c = &Counter{}
	case kindGauge:
		s.g = &Gauge{}
	case kindHistogram:
		s.h = newHistogram(f.bounds)
	}
	if f.byKey == nil {
		f.byKey = make(map[string]*series)
	}
	f.byKey[key] = s
	f.series = append(f.series, s)
	return s
}

// Registry holds metric families. The zero value is not usable; use
// NewRegistry. A nil *Registry is valid and hands out nil instruments,
// so disabled instance-scoped telemetry needs no branches at setup.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*family)}
}

// family registers or fetches a family, panicking on an invalid name
// or on re-registration with a different shape. Re-registration with
// the identical shape returns the existing family, so several
// instances (e.g. many EARDBD clients) may share one registry.
func (r *Registry) family(name, help string, k kind, labels []string, bounds []float64) *family {
	if !nameOK(name) {
		panic(fmt.Sprintf("telemetry: metric name %q must match ^goear_[a-z0-9_]+$", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		if f.kind != k || !equalStrings(f.labels, labels) || !equalFloats(f.bounds, bounds) {
			panic(fmt.Sprintf("telemetry: metric %s re-registered as %s%v (was %s%v)",
				name, k, labels, f.kind, f.labels))
		}
		return f
	}
	f := &family{name: name, help: help, kind: k,
		labels: append([]string(nil), labels...),
		bounds: append([]float64(nil), bounds...)}
	r.fams[name] = f
	return f
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Counter registers (or fetches) a plain counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	return r.family(name, help, kindCounter, nil, nil).with(nil).c
}

// Gauge registers (or fetches) a plain gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	return r.family(name, help, kindGauge, nil, nil).with(nil).g
}

// Histogram registers (or fetches) a plain histogram with the given
// upper bucket bounds (ascending; +Inf is implicit).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	checkBounds(name, bounds)
	return r.family(name, help, kindHistogram, nil, bounds).with(nil).h
}

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{fam: r.family(name, help, kindCounter, labels, nil)}
}

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{fam: r.family(name, help, kindGauge, labels, nil)}
}

// HistogramVec registers a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	checkBounds(name, bounds)
	return &HistogramVec{fam: r.family(name, help, kindHistogram, labels, bounds)}
}

func checkBounds(name string, bounds []float64) {
	if len(bounds) == 0 {
		panic(fmt.Sprintf("telemetry: histogram %s needs at least one bucket bound", name))
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("telemetry: histogram %s bounds not ascending: %v", name, bounds))
		}
	}
}

// CounterVec hands out per-label-set counters. Resolve handles at
// setup time with With; never call With on a hot path.
type CounterVec struct{ fam *family }

// With returns the counter for the given label values.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil {
		return nil
	}
	return v.fam.with(values).c
}

// GaugeVec hands out per-label-set gauges.
type GaugeVec struct{ fam *family }

// With returns the gauge for the given label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil {
		return nil
	}
	return v.fam.with(values).g
}

// HistogramVec hands out per-label-set histograms.
type HistogramVec struct{ fam *family }

// With returns the histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil {
		return nil
	}
	return v.fam.with(values).h
}

// sortedFamilies snapshots the family list in name order.
func (r *Registry) sortedFamilies() []*family {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}

// Set bundles the two telemetry sinks a component needs: a metric
// registry and an event recorder. A nil *Set is valid everywhere and
// means "telemetry off".
type Set struct {
	Registry *Registry
	Events   *Recorder
}

// NewSet returns a Set with a fresh registry and a default-capacity
// event recorder.
func NewSet() *Set {
	return &Set{Registry: NewRegistry(), Events: NewRecorder(0)}
}

// Reg returns the set's registry, nil when the set is nil.
func (s *Set) Reg() *Registry {
	if s == nil {
		return nil
	}
	return s.Registry
}

// Rec returns the set's event recorder, nil when the set is nil.
func (s *Set) Rec() *Recorder {
	if s == nil {
		return nil
	}
	return s.Events
}
