package telemetry

import (
	"bufio"
	"encoding/json"
	"io"
	"sort"
	"sync"
)

// Event is one structured telemetry event. The JSON shape is stable:
// encoding/json marshals the Str/Num maps with sorted keys, so an
// event always serialises to the same bytes.
//
// Seq is assigned by the Recorder in arrival order; TimeSec is
// simulated (or injected-clock) time — components never stamp wall
// time, per the repo's determinism contract.
type Event struct {
	Seq     uint64             `json:"seq"`
	TimeSec float64            `json:"t,omitempty"`
	Kind    string             `json:"kind"`
	Src     string             `json:"src,omitempty"`
	Str     map[string]string  `json:"str,omitempty"`
	Num     map[string]float64 `json:"num,omitempty"`
}

// DefaultRecorderCap is the ring capacity NewRecorder(0) uses.
const DefaultRecorderCap = 4096

// Recorder is a bounded ring buffer of events. When full, recording
// overwrites the oldest event and counts it as dropped. All methods
// are nil-safe.
type Recorder struct {
	mu      sync.Mutex
	buf     []Event
	start   int // index of the oldest event
	n       int // live events
	seq     uint64
	dropped uint64
}

// NewRecorder returns a recorder holding up to capacity events
// (DefaultRecorderCap when capacity <= 0).
func NewRecorder(capacity int) *Recorder {
	if capacity <= 0 {
		capacity = DefaultRecorderCap
	}
	return &Recorder{buf: make([]Event, capacity)}
}

// Record appends ev, assigning its sequence number. The oldest event
// is overwritten when the ring is full.
func (r *Recorder) Record(ev Event) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.seq++
	ev.Seq = r.seq
	if r.n < len(r.buf) {
		r.buf[(r.start+r.n)%len(r.buf)] = ev
		r.n++
	} else {
		r.buf[r.start] = ev
		r.start = (r.start + 1) % len(r.buf)
		r.dropped++
	}
	r.mu.Unlock()
}

// Events returns a copy of the buffered events, oldest first.
func (r *Recorder) Events() []Event {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Event, r.n)
	for i := 0; i < r.n; i++ {
		out[i] = r.buf[(r.start+i)%len(r.buf)]
	}
	return out
}

// EventsSince returns the buffered events with sequence numbers
// greater than seq, oldest first: the resume form scrapers page with
// (/events?since=). Events older than seq that the ring already
// overwrote are simply absent; Dropped tells the scraper how many.
func (r *Recorder) EventsSince(seq uint64) []Event {
	all := r.Events()
	i := sort.Search(len(all), func(i int) bool { return all[i].Seq > seq })
	return all[i:]
}

// Len returns the number of buffered events.
func (r *Recorder) Len() int {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}

// Dropped returns how many events were overwritten.
func (r *Recorder) Dropped() uint64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// WriteJSONLines writes the buffered events as one JSON object per
// line, oldest first.
func (r *Recorder) WriteJSONLines(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, ev := range r.Events() {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return bw.Flush()
}
