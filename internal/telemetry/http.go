package telemetry

import (
	"bufio"
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
)

// DroppedEventsHeader carries the recorder's overwritten-event count
// on every /events response, so scrapers can detect ring overruns
// (previously silent) and tell a quiet source from a wrapped ring.
const DroppedEventsHeader = "X-Goear-Dropped-Events"

// Handler serves the set over HTTP:
//
//	GET /metrics             Prometheus text exposition of the registry
//	GET /events[?since=seq]  buffered events as JSON lines, oldest
//	                         first; since=seq resumes after that
//	                         sequence number
//	GET /                    a plain-text index
//
// Every /events response carries the recorder's dropped-event count
// in the X-Goear-Dropped-Events header. A nil Set serves empty
// bodies, so callers can wire the handler unconditionally. Write
// errors mean the client went away mid-response and are ignored.
func (s *Set) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = s.Reg().WritePrometheus(w)
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, req *http.Request) {
		rec := s.Rec()
		events := rec.Events()
		if v := req.URL.Query().Get("since"); v != "" {
			seq, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				http.Error(w, "bad since parameter: "+err.Error(), http.StatusBadRequest)
				return
			}
			events = rec.EventsSince(seq)
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.Header().Set(DroppedEventsHeader, strconv.FormatUint(rec.Dropped(), 10))
		bw := bufio.NewWriter(w)
		enc := json.NewEncoder(bw)
		for _, ev := range events {
			if err := enc.Encode(ev); err != nil {
				return
			}
		}
		_ = bw.Flush()
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		var sb strings.Builder
		sb.WriteString("goear telemetry\n\n")
		sb.WriteString("/metrics  Prometheus text format\n")
		sb.WriteString("/events   JSON-lines event buffer (?since=seq resumes)\n")
		_, _ = w.Write([]byte(sb.String()))
	})
	return mux
}
