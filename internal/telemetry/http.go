package telemetry

import (
	"net/http"
	"strings"
)

// Handler serves the set over HTTP:
//
//	GET /metrics  Prometheus text exposition of the registry
//	GET /events   buffered events as JSON lines, oldest first
//	GET /         a plain-text index
//
// A nil Set serves empty bodies, so callers can wire the handler
// unconditionally. Write errors mean the client went away mid-response
// and are ignored.
func (s *Set) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = s.Reg().WritePrometheus(w)
	})
	mux.HandleFunc("/events", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		if rec := s.Rec(); rec != nil {
			_ = rec.WriteJSONLines(w)
		}
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		var sb strings.Builder
		sb.WriteString("goear telemetry\n\n")
		sb.WriteString("/metrics  Prometheus text format\n")
		sb.WriteString("/events   JSON-lines event buffer\n")
		_, _ = w.Write([]byte(sb.String()))
	})
	return mux
}
