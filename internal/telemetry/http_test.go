package telemetry

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// get fetches path from srv and returns the response; the body is
// read fully and returned as a string.
func get(t *testing.T, srv *httptest.Server, path string) (*http.Response, string) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(body)
}

func TestEventsSince(t *testing.T) {
	r := NewRecorder(8)
	for i := 0; i < 5; i++ {
		r.Record(Event{Kind: "k"})
	}
	if got := r.EventsSince(0); len(got) != 5 {
		t.Fatalf("since 0: %d events, want 5", len(got))
	}
	got := r.EventsSince(3)
	if len(got) != 2 || got[0].Seq != 4 || got[1].Seq != 5 {
		t.Fatalf("since 3: %+v", got)
	}
	if got := r.EventsSince(5); len(got) != 0 {
		t.Fatalf("since 5: %d events, want 0", len(got))
	}
	var nilRec *Recorder
	if got := nilRec.EventsSince(0); got != nil {
		t.Fatalf("nil recorder: %v", got)
	}
}

func TestEventsEndpointSinceAndDropped(t *testing.T) {
	s := &Set{Registry: NewRegistry(), Events: NewRecorder(4)}
	for i := 0; i < 6; i++ { // capacity 4: seqs 3..6 survive, 2 dropped
		s.Events.Record(Event{Kind: "k"})
	}
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	resp, body := get(t, srv, "/events")
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type = %q", ct)
	}
	if h := resp.Header.Get(DroppedEventsHeader); h != "2" {
		t.Errorf("%s = %q, want 2", DroppedEventsHeader, h)
	}
	if n := strings.Count(body, "\n"); n != 4 {
		t.Errorf("/events returned %d lines, want 4:\n%s", n, body)
	}

	resp, body = get(t, srv, "/events?since=5")
	if h := resp.Header.Get(DroppedEventsHeader); h != "2" {
		t.Errorf("%s on since = %q, want 2", DroppedEventsHeader, h)
	}
	if n := strings.Count(body, "\n"); n != 1 || !strings.Contains(body, `"seq":6`) {
		t.Errorf("/events?since=5:\n%s", body)
	}

	if resp, _ := get(t, srv, "/events?since=bogus"); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad since status = %d, want 400", resp.StatusCode)
	}
}

func TestQuantile(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("goear_test_q_seconds", "q", []float64{0.1, 0.5, 1})
	if got := h.Quantile(0.99); got != 0 {
		t.Errorf("empty histogram p99 = %v, want 0", got)
	}
	// 10 observations in (0.1, 0.5]: rank interpolates inside that bucket.
	for i := 0; i < 10; i++ {
		h.Observe(0.3)
	}
	p50 := h.Quantile(0.50)
	if p50 <= 0.1 || p50 > 0.5 {
		t.Errorf("p50 = %v, want within (0.1, 0.5]", p50)
	}
	// An outlier beyond every bound lands in +Inf and clamps to the
	// largest finite bound.
	h.Observe(1e9)
	if got := h.Quantile(1.0); got != 1 {
		t.Errorf("p100 with +Inf outlier = %v, want clamp to 1", got)
	}
	var nilH *Histogram
	if got := nilH.Quantile(0.5); got != 0 {
		t.Errorf("nil histogram quantile = %v", got)
	}
}

func TestSLOReportAndHandler(t *testing.T) {
	r := NewRegistry()
	fast := r.Histogram("goear_test_fast_seconds", "fast", []float64{0.01, 0.1, 1})
	slow := r.Histogram("goear_test_slow_seconds", "slow", []float64{0.01, 0.1, 1})
	for i := 0; i < 100; i++ {
		fast.Observe(0.005)
		slow.Observe(0.5)
	}
	s := NewSLO()
	s.Register("query", slow, 0.1) // violated
	s.Register("batch", fast, 0.1) // met
	s.Register("idle", nil, 0.1)   // no observations: vacuously OK

	rep := s.Report()
	if len(rep) != 3 {
		t.Fatalf("report has %d entries, want 3", len(rep))
	}
	// Sorted by op name regardless of registration order.
	if rep[0].Op != "batch" || rep[1].Op != "idle" || rep[2].Op != "query" {
		t.Fatalf("report order: %+v", rep)
	}
	if !rep[0].OK || rep[0].Count != 100 {
		t.Errorf("batch report: %+v", rep[0])
	}
	if !rep[1].OK || rep[1].Count != 0 {
		t.Errorf("idle report: %+v", rep[1])
	}
	if rep[2].OK {
		t.Errorf("query report should violate its target: %+v", rep[2])
	}

	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	resp, body := get(t, srv, "/")
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type = %q", ct)
	}
	var decoded []SLOReport
	if err := json.Unmarshal([]byte(body), &decoded); err != nil || len(decoded) != 3 {
		t.Errorf("handler body (%v): %s", err, body)
	}

	var nilSLO *SLO
	nilSLO.Register("x", nil, 1)
	if nilSLO.Report() != nil {
		t.Error("nil SLO report not nil")
	}
}

func TestHealthEndpoints(t *testing.T) {
	h := NewHealth()
	shardOK := true
	h.Register(func() Check { return Check{Name: "store", OK: true, Detail: "gen 4"} })
	h.Register(func() Check {
		return Check{Name: "shards", OK: shardOK, Detail: "2/2 reachable"}
	})

	mux := http.NewServeMux()
	mux.Handle("/healthz", h.Healthz())
	mux.Handle("/readyz", h.Readyz())
	srv := httptest.NewServer(mux)
	defer srv.Close()

	resp, body := get(t, srv, "/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/healthz status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type = %q", ct)
	}
	var hb struct {
		Status string  `json:"status"`
		Checks []Check `json:"checks"`
	}
	if err := json.Unmarshal([]byte(body), &hb); err != nil {
		t.Fatal(err)
	}
	if hb.Status != "ok" || len(hb.Checks) != 2 || hb.Checks[1].Detail != "2/2 reachable" {
		t.Errorf("/healthz body: %+v", hb)
	}
	if resp, _ := get(t, srv, "/readyz"); resp.StatusCode != http.StatusOK {
		t.Errorf("/readyz status = %d, want 200", resp.StatusCode)
	}

	// One failing check degrades readiness but never liveness.
	shardOK = false
	resp, body = get(t, srv, "/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("degraded /readyz status = %d, want 503", resp.StatusCode)
	}
	if !strings.Contains(body, `"degraded"`) {
		t.Errorf("degraded /readyz body:\n%s", body)
	}
	if resp, body := get(t, srv, "/healthz"); resp.StatusCode != http.StatusOK ||
		!strings.Contains(body, `"degraded"`) {
		t.Errorf("degraded /healthz: status %d body %s", resp.StatusCode, body)
	}

	// Nil Health serves ok with no checks: daemons wire it blindly.
	var nilH *Health
	nilH.Register(func() Check { return Check{} })
	rec := httptest.NewRecorder()
	nilH.Readyz().ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"ok"`) {
		t.Errorf("nil health /readyz: %d %s", rec.Code, rec.Body.String())
	}
}
