package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus encodes the registry in the Prometheus text
// exposition format (version 0.0.4): families in name order, series in
// label-value order, so the output is deterministic for a given set of
// instrument values. A nil registry writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	var sb strings.Builder
	for _, f := range r.sortedFamilies() {
		if f.help != "" {
			fmt.Fprintf(&sb, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(&sb, "# TYPE %s %s\n", f.name, f.kind)
		f.mu.Lock()
		series := append([]*series(nil), f.series...)
		f.mu.Unlock()
		sort.Slice(series, func(i, j int) bool {
			return lessStrings(series[i].values, series[j].values)
		})
		for _, s := range series {
			writeSeries(&sb, f, s)
		}
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

func lessStrings(a, b []string) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

func writeSeries(w *strings.Builder, f *family, s *series) {
	switch f.kind {
	case kindCounter:
		w.WriteString(f.name)
		writeLabels(w, f.labels, s.values, "", "")
		fmt.Fprintf(w, " %d\n", s.c.Value())
	case kindGauge:
		w.WriteString(f.name)
		writeLabels(w, f.labels, s.values, "", "")
		fmt.Fprintf(w, " %s\n", formatFloat(s.g.Value()))
	case kindHistogram:
		h := s.h
		cum := uint64(0)
		for i := range h.buckets {
			le := "+Inf"
			if i < len(h.bounds) {
				le = formatFloat(h.bounds[i])
			}
			cum += h.buckets[i].Load()
			w.WriteString(f.name)
			w.WriteString("_bucket")
			writeLabels(w, f.labels, s.values, "le", le)
			fmt.Fprintf(w, " %d\n", cum)
		}
		w.WriteString(f.name)
		w.WriteString("_sum")
		writeLabels(w, f.labels, s.values, "", "")
		fmt.Fprintf(w, " %s\n", formatFloat(h.Sum()))
		w.WriteString(f.name)
		w.WriteString("_count")
		writeLabels(w, f.labels, s.values, "", "")
		fmt.Fprintf(w, " %d\n", h.Count())
	}
}

// writeLabels writes the {k="v",...} block, appending the extra pair
// (used for histogram "le") when extraKey is non-empty. No block is
// written when there are no pairs at all.
func writeLabels(w *strings.Builder, names, values []string, extraKey, extraVal string) {
	if len(names) == 0 && extraKey == "" {
		return
	}
	w.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			w.WriteByte(',')
		}
		w.WriteString(n)
		w.WriteString(`="`)
		w.WriteString(escapeLabel(values[i]))
		w.WriteByte('"')
	}
	if extraKey != "" {
		if len(names) > 0 {
			w.WriteByte(',')
		}
		w.WriteString(extraKey)
		w.WriteString(`="`)
		w.WriteString(escapeLabel(extraVal))
		w.WriteByte('"')
	}
	w.WriteByte('}')
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Sample is one parsed exposition line: a metric name, its raw label
// block (including braces, empty when unlabeled) and the value.
type Sample struct {
	Name   string
	Labels string
	Value  float64
}

// ParseText parses Prometheus text exposition format into samples,
// preserving input order. It understands exactly what WritePrometheus
// emits (and the common subset of the format): comment lines are
// skipped, each sample line is `name[{labels}] value`.
func ParseText(r io.Reader) ([]Sample, error) {
	var out []Sample
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			return nil, fmt.Errorf("telemetry: malformed sample line %q", line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("telemetry: bad value in %q: %w", line, err)
		}
		key := strings.TrimSpace(line[:sp])
		name, labels := key, ""
		if i := strings.IndexByte(key, '{'); i >= 0 {
			name, labels = key[:i], key[i:]
		}
		out = append(out, Sample{Name: name, Labels: labels, Value: v})
	}
	return out, sc.Err()
}
