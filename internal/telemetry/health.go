package telemetry

import (
	"encoding/json"
	"net/http"
	"sync"
)

// Check is one component's health verdict: a stable name, a pass/fail
// bit, and a short human detail ("3/4 shards reachable").
type Check struct {
	Name   string `json:"name"`
	OK     bool   `json:"ok"`
	Detail string `json:"detail,omitempty"`
}

// CheckFunc produces a Check on demand. Funcs run on every probe, so
// they must be cheap and must not block on the network — report
// cached reachability, not a live dial.
type CheckFunc func() Check

// Health aggregates component checks behind the two Kubernetes-style
// probe endpoints: /healthz (liveness — the process is serving, always
// 200) and /readyz (readiness — 503 until every check passes). All
// methods are nil-safe; a nil Health serves "ok" with no checks.
type Health struct {
	mu     sync.Mutex
	checks []CheckFunc
}

// NewHealth returns an empty check set.
func NewHealth() *Health { return &Health{} }

// Register adds a check. Checks report in registration order.
func (h *Health) Register(fn CheckFunc) {
	if h == nil || fn == nil {
		return
	}
	h.mu.Lock()
	h.checks = append(h.checks, fn)
	h.mu.Unlock()
}

// Run evaluates every check in registration order.
func (h *Health) Run() []Check {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	fns := append([]CheckFunc(nil), h.checks...)
	h.mu.Unlock()
	out := make([]Check, 0, len(fns))
	for _, fn := range fns {
		out = append(out, fn())
	}
	return out
}

// healthBody is the JSON shape both probes serve.
type healthBody struct {
	Status string  `json:"status"` // "ok" or "degraded"
	Checks []Check `json:"checks"`
}

func (h *Health) body() (healthBody, bool) {
	checks := h.Run()
	if checks == nil {
		checks = []Check{}
	}
	allOK := true
	for _, c := range checks {
		if !c.OK {
			allOK = false
		}
	}
	status := "ok"
	if !allOK {
		status = "degraded"
	}
	return healthBody{Status: status, Checks: checks}, allOK
}

// Healthz is the liveness probe: it always answers 200 — reaching the
// handler proves the process is alive — and reports the check details
// so operators can see degradation without flipping readiness.
func (h *Health) Healthz() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		body, _ := h.body()
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(body)
	})
}

// Readyz is the readiness probe: 200 when every check passes, 503
// otherwise, with the same JSON body as /healthz.
func (h *Health) Readyz() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		body, ok := h.body()
		w.Header().Set("Content-Type", "application/json")
		if !ok {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(body)
	})
}
