package telemetry

import (
	"sync"
	"sync/atomic"
)

// The process-global Set. Telemetry is disabled by default: Default()
// returns nil and every package-level instrument stays nil, so the
// hot paths run pure nil-check no-ops.
var (
	gmu   sync.Mutex
	def   atomic.Pointer[Set]
	hooks []func(*Set)
)

// OnEnable registers a hook that binds a package's instruments to the
// global Set. The hook runs on every Enable with the fresh Set, on
// every Disable with nil (the package must reset its instruments), and
// immediately if telemetry is already enabled. Call from package init.
func OnEnable(hook func(*Set)) {
	gmu.Lock()
	defer gmu.Unlock()
	hooks = append(hooks, hook)
	if s := def.Load(); s != nil {
		hook(s)
	}
}

// Enable turns global telemetry on, creating a fresh Set and running
// all registered hooks against it. Idempotent: if already enabled it
// returns the current Set. Enable and Disable must not race with work
// in flight (enable before starting runs, disable after they finish).
func Enable() *Set {
	gmu.Lock()
	defer gmu.Unlock()
	if s := def.Load(); s != nil {
		return s
	}
	s := NewSet()
	def.Store(s)
	for _, h := range hooks {
		h(s)
	}
	return s
}

// Disable turns global telemetry off, running all hooks with nil so
// packages drop their instruments. The previous Set stays readable by
// anyone still holding it.
func Disable() {
	gmu.Lock()
	defer gmu.Unlock()
	if def.Load() == nil {
		return
	}
	def.Store(nil)
	for _, h := range hooks {
		h(nil)
	}
}

// Default returns the global Set, nil while disabled.
func Default() *Set { return def.Load() }

// Enabled reports whether global telemetry is on.
func Enabled() bool { return def.Load() != nil }
