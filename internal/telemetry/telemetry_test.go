package telemetry

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// Metric name constants for the registry tests (the goearvet
// `telemetry` analyzer requires registration through package-level
// constants even here).
const (
	testMetricOps      = "goear_test_ops_total"
	testMetricDepth    = "goear_test_depth"
	testMetricLatency  = "goear_test_latency_seconds"
	testMetricByResult = "goear_test_by_result_total"
)

func TestNameValidation(t *testing.T) {
	for _, ok := range []string{"goear_x", "goear_sim_steps_total", "goear_a1_b2"} {
		if !nameOK(ok) {
			t.Errorf("nameOK(%q) = false", ok)
		}
	}
	for _, bad := range []string{"", "goear_", "sim_steps", "goear_Steps", "goear_a-b", "goear_a.b", "xgoear_a"} {
		if nameOK(bad) {
			t.Errorf("nameOK(%q) = true", bad)
		}
	}
	r := NewRegistry()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("invalid name did not panic")
			}
		}()
		r.Counter("bad_name", "")
	}()
}

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter(testMetricOps, "ops")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d", c.Value())
	}

	g := r.Gauge(testMetricDepth, "depth")
	g.Set(3)
	g.Add(-1.5)
	if g.Value() != 1.5 {
		t.Errorf("gauge = %g", g.Value())
	}

	h := r.Histogram(testMetricLatency, "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Sum() != 56.05 {
		t.Errorf("histogram count=%d sum=%g", h.Count(), h.Sum())
	}
}

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var rec *Recorder
	var r *Registry
	var s *Set
	c.Inc()
	c.Add(7)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	rec.Record(Event{Kind: "x"})
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil instruments returned non-zero values")
	}
	if rec.Len() != 0 || rec.Events() != nil || rec.Dropped() != 0 {
		t.Error("nil recorder not empty")
	}
	if r.Counter(testMetricOps, "") != nil || r.CounterVec(testMetricByResult, "", "r") != nil {
		t.Error("nil registry handed out instruments")
	}
	var cv *CounterVec
	if cv.With("x") != nil {
		t.Error("nil vec handed out an instrument")
	}
	if s.Reg() != nil || s.Rec() != nil {
		t.Error("nil set not empty")
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Errorf("nil registry encode: %v", err)
	}
}

func TestVecPreRegistration(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec(testMetricByResult, "by result", "result")
	ok := v.With("ok")
	fail := v.With("fail")
	if v.With("ok") != ok {
		t.Error("With not idempotent")
	}
	ok.Add(3)
	fail.Inc()
	if ok.Value() != 3 || fail.Value() != 1 {
		t.Errorf("vec counters = %d, %d", ok.Value(), fail.Value())
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("wrong label arity did not panic")
			}
		}()
		v.With("a", "b")
	}()
}

func TestReRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter(testMetricOps, "ops")
	b := r.Counter(testMetricOps, "ops")
	if a != b {
		t.Error("identical re-registration did not return the same instrument")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("kind conflict did not panic")
			}
		}()
		r.Gauge(testMetricOps, "ops")
	}()
}

func TestPrometheusEncodingAndParse(t *testing.T) {
	r := NewRegistry()
	r.Counter(testMetricOps, "ops help").Add(7)
	r.Gauge(testMetricDepth, "depth").Set(2.5)
	v := r.CounterVec(testMetricByResult, "by result", "result")
	v.With("ok").Add(3)
	v.With("fail").Inc()
	h := r.Histogram(testMetricLatency, "lat", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(5)
	h.Observe(50)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		"# HELP goear_test_ops_total ops help",
		"# TYPE goear_test_ops_total counter",
		"goear_test_ops_total 7",
		"goear_test_depth 2.5",
		`goear_test_by_result_total{result="fail"} 1`,
		`goear_test_by_result_total{result="ok"} 3`,
		`goear_test_latency_seconds_bucket{le="1"} 1`,
		`goear_test_latency_seconds_bucket{le="10"} 2`,
		`goear_test_latency_seconds_bucket{le="+Inf"} 3`,
		"goear_test_latency_seconds_sum 55.5",
		"goear_test_latency_seconds_count 3",
	} {
		if !strings.Contains(text, want+"\n") {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}

	// Deterministic: a second encode is byte-identical.
	var sb2 strings.Builder
	if err := r.WritePrometheus(&sb2); err != nil {
		t.Fatal(err)
	}
	if sb2.String() != text {
		t.Error("encoding not deterministic")
	}

	samples, err := ParseText(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]float64{}
	for _, s := range samples {
		byKey[s.Name+s.Labels] = s.Value
	}
	if byKey["goear_test_ops_total"] != 7 {
		t.Errorf("parsed ops = %g", byKey["goear_test_ops_total"])
	}
	if byKey[`goear_test_by_result_total{result="ok"}`] != 3 {
		t.Errorf("parsed labeled sample = %g", byKey[`goear_test_by_result_total{result="ok"}`])
	}
	if byKey[`goear_test_latency_seconds_bucket{le="+Inf"}`] != 3 {
		t.Error("parsed histogram bucket missing")
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec(testMetricByResult, "", "result").With("a\"b\\c\nd").Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), `{result="a\"b\\c\nd"}`) {
		t.Errorf("label not escaped:\n%s", sb.String())
	}
}

func TestRecorderRing(t *testing.T) {
	rec := NewRecorder(3)
	for i := 0; i < 5; i++ {
		rec.Record(Event{Kind: "k", TimeSec: float64(i)})
	}
	evs := rec.Events()
	if len(evs) != 3 || rec.Len() != 3 {
		t.Fatalf("len = %d", len(evs))
	}
	if evs[0].TimeSec != 2 || evs[2].TimeSec != 4 {
		t.Errorf("ring kept wrong events: %+v", evs)
	}
	if evs[0].Seq != 3 || evs[2].Seq != 5 {
		t.Errorf("sequence numbers: %+v", evs)
	}
	if rec.Dropped() != 2 {
		t.Errorf("dropped = %d", rec.Dropped())
	}
}

func TestWriteJSONLines(t *testing.T) {
	rec := NewRecorder(8)
	rec.Record(Event{Kind: "policy.decision", TimeSec: 1.5, Src: "n0",
		Str: map[string]string{"policy": "min_energy"},
		Num: map[string]float64{"cpu_pstate": 3, "b": 1, "a": 2}})
	var sb strings.Builder
	if err := rec.WriteJSONLines(&sb); err != nil {
		t.Fatal(err)
	}
	want := `{"seq":1,"t":1.5,"kind":"policy.decision","src":"n0","str":{"policy":"min_energy"},"num":{"a":2,"b":1,"cpu_pstate":3}}` + "\n"
	if sb.String() != want {
		t.Errorf("jsonl = %q, want %q", sb.String(), want)
	}
}

func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	c := r.Counter(testMetricOps, "")
	g := r.Gauge(testMetricDepth, "")
	h := r.Histogram(testMetricLatency, "", []float64{10})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(1)
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 || g.Value() != 8000 || h.Count() != 8000 || h.Sum() != 8000 {
		t.Errorf("concurrent totals: c=%d g=%g h=%d/%g", c.Value(), g.Value(), h.Count(), h.Sum())
	}
}

func TestGlobalEnableDisable(t *testing.T) {
	if Enabled() {
		t.Fatal("telemetry enabled at test start")
	}
	var got *Set
	calls := 0
	OnEnable(func(s *Set) { got = s; calls++ })
	if calls != 0 {
		t.Fatal("hook ran while disabled")
	}
	s := Enable()
	if s == nil || Default() != s || !Enabled() {
		t.Fatal("Enable did not install a set")
	}
	if got != s || calls != 1 {
		t.Fatalf("hook: calls=%d", calls)
	}
	if Enable() != s || calls != 1 {
		t.Error("Enable not idempotent")
	}
	// A hook registered while enabled runs immediately.
	late := 0
	OnEnable(func(*Set) { late++ })
	if late != 1 {
		t.Errorf("late hook calls = %d", late)
	}
	Disable()
	if Enabled() || Default() != nil {
		t.Error("Disable did not clear the set")
	}
	if got != nil {
		t.Error("hook did not receive nil on Disable")
	}
	Disable() // idempotent
}

func TestHTTPHandler(t *testing.T) {
	s := NewSet()
	s.Registry.Counter(testMetricOps, "ops").Add(2)
	s.Events.Record(Event{Kind: "x"})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	get := func(path string) string {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			sb.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return sb.String()
	}
	if body := get("/metrics"); !strings.Contains(body, "goear_test_ops_total 2") {
		t.Errorf("/metrics:\n%s", body)
	}
	if body := get("/events"); !strings.Contains(body, `"kind":"x"`) {
		t.Errorf("/events:\n%s", body)
	}
	if body := get("/"); !strings.Contains(body, "/metrics") {
		t.Errorf("index:\n%s", body)
	}
}
