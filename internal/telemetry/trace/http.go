package trace

import (
	"net/http"
	"strconv"
	"strings"
)

// DroppedHeader carries the buffer's overwritten-span count on every
// /traces response, so a scraper can detect ring overruns instead of
// silently missing spans.
const DroppedHeader = "X-Goear-Dropped-Spans"

// Handler serves the buffer's spans as JSON lines. Query parameters
// filter the output:
//
//	?trace=<16-hex>  only spans of that trace
//	?kind=<prefix>   only spans whose kind has that dot-path prefix
//	                 ("client" matches client.batch, not clientele)
//	?since=<seq>     only spans recorded after that sequence number,
//	                 in arrival order with sequence numbers kept —
//	                 the resume form; without it the output is the
//	                 canonical (content-sorted, seq-less) export
//
// A nil buffer serves an empty body, so daemons can mount the handler
// unconditionally.
func (b *Buffer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		qp := req.URL.Query()
		var spans []Span
		if v := qp.Get("since"); v != "" {
			seq, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				http.Error(w, "bad since parameter: "+err.Error(), http.StatusBadRequest)
				return
			}
			spans = b.SpansSince(seq)
		} else {
			spans = b.Canonical()
		}
		if v := qp.Get("trace"); v != "" {
			id, err := ParseID(v)
			if err != nil {
				http.Error(w, "bad trace parameter: "+err.Error(), http.StatusBadRequest)
				return
			}
			spans = filterSpans(spans, func(s Span) bool { return s.Trace == HexID(id) })
		}
		if v := qp.Get("kind"); v != "" {
			spans = filterSpans(spans, func(s Span) bool { return kindHasPrefix(s.Kind, v) })
		}
		w.Header().Set("Content-Type", "application/x-ndjson")
		w.Header().Set(DroppedHeader, strconv.FormatUint(b.Dropped(), 10))
		_ = WriteJSONLines(w, spans)
	})
}

// filterSpans keeps the spans matching keep, preserving order.
func filterSpans(spans []Span, keep func(Span) bool) []Span {
	out := spans[:0:0]
	for _, s := range spans {
		if keep(s) {
			out = append(out, s)
		}
	}
	return out
}

// kindHasPrefix reports whether kind equals prefix or starts with
// prefix at a dot boundary.
func kindHasPrefix(kind, prefix string) bool {
	if kind == prefix {
		return true
	}
	return strings.HasPrefix(kind, prefix) && len(kind) > len(prefix) && kind[len(prefix)] == '.'
}
