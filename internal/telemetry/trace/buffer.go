package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
)

// HexID is a 64-bit identifier that serialises as 16 lowercase hex
// digits, so trace and span IDs are grep-able in JSON-lines output
// and CI logs.
type HexID uint64

// String formats the ID as 16 hex digits.
func (h HexID) String() string { return fmt.Sprintf("%016x", uint64(h)) }

// MarshalJSON encodes the ID as a hex string.
func (h HexID) MarshalJSON() ([]byte, error) {
	return []byte(`"` + h.String() + `"`), nil
}

// UnmarshalJSON decodes a hex string ID.
func (h *HexID) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	v, err := ParseID(s)
	if err != nil {
		return err
	}
	*h = HexID(v)
	return nil
}

// ParseID parses a hex trace or span ID as printed by HexID.
func ParseID(s string) (uint64, error) {
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("trace: bad id %q: %w", s, err)
	}
	return v, nil
}

// Attr is one span attribute.
type Attr struct {
	Key   string
	Value string
}

// Attrs is a span's attribute list. It marshals as a JSON object with
// sorted keys — the same bytes a map would produce — but is backed by
// a small slice so attaching attributes on the hot path costs one
// allocation, not a map.
type Attrs []Attr

// Get returns the value for key, or "" when absent.
func (a Attrs) Get(key string) string {
	for _, at := range a {
		if at.Key == key {
			return at.Value
		}
	}
	return ""
}

// MarshalJSON encodes the attributes as an object with sorted keys.
func (a Attrs) MarshalJSON() ([]byte, error) {
	kv := append(Attrs(nil), a...)
	sort.Slice(kv, func(i, j int) bool { return kv[i].Key < kv[j].Key })
	var b []byte
	b = append(b, '{')
	for i, at := range kv {
		if i > 0 {
			b = append(b, ',')
		}
		k, err := json.Marshal(at.Key)
		if err != nil {
			return nil, err
		}
		v, err := json.Marshal(at.Value)
		if err != nil {
			return nil, err
		}
		b = append(b, k...)
		b = append(b, ':')
		b = append(b, v...)
	}
	return append(b, '}'), nil
}

// UnmarshalJSON decodes an attribute object into a key-sorted list.
func (a *Attrs) UnmarshalJSON(data []byte) error {
	var m map[string]string
	if err := json.Unmarshal(data, &m); err != nil {
		return err
	}
	out := make(Attrs, 0, len(m))
	for k, v := range m {
		out = append(out, Attr{Key: k, Value: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	*a = out
	return nil
}

// Span is one recorded (ended) span. The JSON shape is stable: the
// attribute list marshals with sorted keys, so a span always
// serialises to the same bytes. Seq is buffer-local arrival order and
// is zeroed in canonical exports, which are sorted by content instead.
type Span struct {
	Seq    uint64  `json:"seq,omitempty"`
	Trace  HexID   `json:"trace"`
	ID     HexID   `json:"span"`
	Parent HexID   `json:"parent,omitempty"`
	Kind   string  `json:"kind"`
	Src    string  `json:"src,omitempty"`
	Start  float64 `json:"start,omitempty"`
	End    float64 `json:"end,omitempty"`
	Attrs  Attrs   `json:"attrs,omitempty"`
}

// DefaultBufferCap is the ring capacity NewBuffer(0) uses.
const DefaultBufferCap = 4096

// Buffer is a bounded ring of ended spans, the trace-side sibling of
// telemetry.Recorder: recording overwrites the oldest span when full
// and counts it as dropped. All methods are nil-safe.
type Buffer struct {
	mu      sync.Mutex
	buf     []Span
	start   int // index of the oldest span
	n       int // live spans
	seq     uint64
	dropped uint64
}

// NewBuffer returns a buffer holding up to capacity spans
// (DefaultBufferCap when capacity <= 0).
func NewBuffer(capacity int) *Buffer {
	if capacity <= 0 {
		capacity = DefaultBufferCap
	}
	return &Buffer{buf: make([]Span, capacity)}
}

// record appends one ended span, assigning its sequence number.
func (b *Buffer) record(s Span) {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.seq++
	s.Seq = b.seq
	if b.n < len(b.buf) {
		b.buf[(b.start+b.n)%len(b.buf)] = s
		b.n++
	} else {
		b.buf[b.start] = s
		b.start = (b.start + 1) % len(b.buf)
		b.dropped++
	}
	b.mu.Unlock()
}

// Spans returns a copy of the buffered spans in arrival order.
func (b *Buffer) Spans() []Span {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]Span, b.n)
	for i := 0; i < b.n; i++ {
		out[i] = b.buf[(b.start+i)%len(b.buf)]
	}
	return out
}

// SpansSince returns the buffered spans with sequence numbers greater
// than seq, in arrival order: the resume form scrapers page with.
func (b *Buffer) SpansSince(seq uint64) []Span {
	all := b.Spans()
	i := sort.Search(len(all), func(i int) bool { return all[i].Seq > seq })
	return all[i:]
}

// Len returns the number of buffered spans.
func (b *Buffer) Len() int {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.n
}

// Dropped returns how many spans were overwritten.
func (b *Buffer) Dropped() uint64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.dropped
}

// Canonical returns the buffered spans in their canonical order —
// sorted by (trace, parent, kind, span) with arrival sequence zeroed.
// Arrival order depends on goroutine scheduling; canonical order
// depends only on span content, so two runs that produce the same
// spans render byte-identical canonical exports whatever the worker
// count or shard placement.
func (b *Buffer) Canonical() []Span {
	spans := b.Spans()
	for i := range spans {
		spans[i].Seq = 0
	}
	SortCanonical(spans)
	return spans
}

// SortCanonical sorts spans in place by (trace, parent, kind, span).
func SortCanonical(spans []Span) {
	sort.Slice(spans, func(i, j int) bool {
		a, b := spans[i], spans[j]
		if a.Trace != b.Trace {
			return a.Trace < b.Trace
		}
		if a.Parent != b.Parent {
			return a.Parent < b.Parent
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		return a.ID < b.ID
	})
}

// WriteJSONLines writes spans as one JSON object per line.
func WriteJSONLines(w io.Writer, spans []Span) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, s := range spans {
		if err := enc.Encode(s); err != nil {
			return err
		}
	}
	return bw.Flush()
}
