// Package trace is the repo's stdlib-only distributed-tracing layer,
// built in the spirit of package telemetry: alloc-free when disabled,
// nil-safe everywhere, and deterministic by construction. Span and
// trace identifiers are never drawn from wall time or math/rand —
// they are FNV-1a hashes of stable names (a batch ID, a span kind, a
// per-parent child index), so the span tree a workload produces is a
// pure function of the traffic, byte-identical across worker counts,
// shard placements and reruns. Timestamps on spans come from injected
// clocks only; a component without a clock records zero times and the
// tree structure still stands.
//
// The unit is a span: one timed operation with a kind (dot-separated
// lowercase, e.g. "client.send"), a source, optional attributes, and
// a parent. Spans of one request share a trace ID; a compact Context
// (trace ID, span ID, flags) travels across process boundaries inside
// the wire protocol's optional trace frame field, so a record batch
// can be followed from the reporting client through the shard daemon
// to the federation root as one connected tree.
//
// Ended spans land in a bounded ring Buffer with JSON-lines export
// and an HTTP /traces handler (see buffer.go, http.go).
package trace

import "sync/atomic"

// Context is the compact cross-process form of a span: what rides a
// wire frame. The zero Context means "no trace"; a real context
// always has a non-zero trace ID.
type Context struct {
	TraceID uint64
	SpanID  uint64
	Flags   uint8
}

// Valid reports whether the context names a real trace.
func (c Context) Valid() bool { return c.TraceID != 0 }

// Tracer mints spans for one source (a component name such as
// "eardsend" or "eardbd"). A nil Tracer is valid and hands out nil
// spans, so a disabled pipeline costs one nil check per operation and
// zero allocations.
type Tracer struct {
	src string
	buf *Buffer
	seq atomic.Uint64
}

// New returns a tracer recording into buf, or nil when buf is nil —
// the disabled form callers store and use without branching.
func New(src string, buf *Buffer) *Tracer {
	if buf == nil {
		return nil
	}
	return &Tracer{src: src, buf: buf}
}

// Identifiers derive from names and counters through 64-bit FNV-1a so
// every process in a deployment mints the same IDs for the same
// logical operation. The hash is folded incrementally (hashInit →
// hashString/hashU64 → hashDone) rather than over materialised byte
// slices, keeping span creation allocation-free; the byte sequence
// fed to the hash is unchanged, so IDs are stable across versions.
const (
	hashInit        = uint64(14695981039346656037)
	fnvPrime uint64 = 1099511628211
)

func hashString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}

func hashU64(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h ^= uint64(byte(v >> (8 * i)))
		h *= fnvPrime
	}
	return h
}

// hashDone remaps the one zero collision: zero is the "absent"
// sentinel in contexts and parents.
func hashDone(h uint64) uint64 {
	if h == 0 {
		return fnvPrime
	}
	return h
}

// Root starts a trace whose identity derives from the tracer's source
// and a per-tracer sequence number: the form for operations with no
// natural global name (ad-hoc queries, control intervals). Roots from
// one tracer are deterministic in issue order.
func (t *Tracer) Root(kind string, now float64) *Active {
	if t == nil {
		return nil
	}
	seq := t.seq.Add(1)
	tid := hashDone(hashU64(hashString(hashInit, t.src), seq))
	return t.start(tid, 0, kind, now)
}

// RootNamed starts a trace whose identity derives from a globally
// unique operation name — for batches, the batch ID. Every process
// that names the same operation joins the same trace: a journal
// replay of batch "n01/7" lands in the trace the original flush
// started, whatever process or worker replays it.
func (t *Tracer) RootNamed(name, kind string, now float64) *Active {
	if t == nil {
		return nil
	}
	tid := hashDone(hashString(hashInit, name))
	return t.start(tid, 0, kind, now)
}

// Remote continues a trace received from a peer: the new span's
// parent is the context's span. An invalid context degrades to a
// fresh Root so a peer without tracing still yields a local tree.
func (t *Tracer) Remote(ctx Context, kind string, now float64) *Active {
	if t == nil {
		return nil
	}
	if !ctx.Valid() {
		return t.Root(kind, now)
	}
	return t.start(ctx.TraceID, ctx.SpanID, kind, now)
}

// start mints the span. The span ID hashes (trace, parent, source,
// kind): deterministic, and stable under redelivery — a replayed
// remote span re-derives the identical ID instead of forking the
// tree.
func (t *Tracer) start(traceID, parentID uint64, kind string, now float64) *Active {
	id := hashDone(hashString(hashString(hashU64(hashU64(hashInit, traceID), parentID), t.src), kind))
	return &Active{
		tracer: t,
		span: Span{
			Trace:  HexID(traceID),
			ID:     HexID(id),
			Parent: HexID(parentID),
			Kind:   kind,
			Src:    t.src,
			Start:  now,
		},
	}
}

// Active is a span in progress. All methods are nil-safe no-ops, so
// instrumented code never branches on whether tracing is enabled. An
// Active is owned by one goroutine at a time (hand-off is fine,
// concurrent use is not), matching how an operation's code path owns
// its span.
type Active struct {
	tracer *Tracer
	span   Span
	kids   uint64
	ended  bool
}

// Context returns the cross-process form of the span, the zero
// Context on nil.
func (a *Active) Context() Context {
	if a == nil {
		return Context{}
	}
	return Context{TraceID: uint64(a.span.Trace), SpanID: uint64(a.span.ID)}
}

// Child starts a sub-span. Its ID folds in a per-parent child index,
// so several children of one kind (the fan-out's per-shard queries)
// stay distinct while remaining deterministic in creation order.
func (a *Active) Child(kind string, now float64) *Active {
	if a == nil {
		return nil
	}
	a.kids++
	t := a.tracer
	id := hashDone(hashU64(hashString(hashString(hashU64(hashU64(hashInit, uint64(a.span.Trace)), uint64(a.span.ID)), t.src), kind), a.kids))
	return &Active{
		tracer: t,
		span: Span{
			Trace:  a.span.Trace,
			ID:     HexID(id),
			Parent: a.span.ID,
			Kind:   kind,
			Src:    t.src,
			Start:  now,
		},
	}
}

// Attr attaches one string attribute, last write per key wins.
func (a *Active) Attr(key, value string) *Active {
	if a == nil {
		return nil
	}
	for i := range a.span.Attrs {
		if a.span.Attrs[i].Key == key {
			a.span.Attrs[i].Value = value
			return a
		}
	}
	if a.span.Attrs == nil {
		a.span.Attrs = make(Attrs, 0, 4)
	}
	a.span.Attrs = append(a.span.Attrs, Attr{Key: key, Value: value})
	return a
}

// End closes the span and records it in the tracer's buffer. Ending
// twice records once.
func (a *Active) End(now float64) {
	if a == nil || a.ended {
		return
	}
	a.ended = true
	a.span.End = now
	a.tracer.buf.record(a.span)
}
