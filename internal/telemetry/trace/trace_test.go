package trace

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	root := tr.Root("a.b", 0)
	if root != nil {
		t.Fatal("nil tracer must hand out nil spans")
	}
	// Every span method must be a no-op on nil.
	root.Attr("k", "v")
	child := root.Child("a.c", 1)
	if child != nil {
		t.Fatal("nil span must hand out nil children")
	}
	child.End(2)
	root.End(2)
	if ctx := root.Context(); ctx.Valid() {
		t.Fatal("nil span context must be invalid")
	}
	if New("x", nil) != nil {
		t.Fatal("New with nil buffer must return a nil tracer")
	}

	var b *Buffer
	if b.Len() != 0 || b.Dropped() != 0 || b.Spans() != nil || b.Canonical() != nil {
		t.Fatal("nil buffer accessors must be empty")
	}
	rr := httptest.NewRecorder()
	b.Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/traces", nil))
	if rr.Code != 200 || rr.Body.Len() != 0 {
		t.Fatalf("nil buffer handler: code %d body %q", rr.Code, rr.Body.String())
	}
}

func TestDeterministicIDs(t *testing.T) {
	mint := func() (Context, Context, Context) {
		buf := NewBuffer(0)
		tr := New("client", buf)
		root := tr.RootNamed("n01/7", "client.batch", 1)
		send := root.Child("client.send", 2)
		srv := New("eardbd", NewBuffer(0)).Remote(send.Context(), "server.batch", 0)
		return root.Context(), send.Context(), srv.Context()
	}
	r1, s1, v1 := mint()
	r2, s2, v2 := mint()
	if r1 != r2 || s1 != s2 || v1 != v2 {
		t.Fatalf("IDs differ across identical runs: %v/%v/%v vs %v/%v/%v", r1, s1, v1, r2, s2, v2)
	}
	if r1.TraceID == 0 || s1.SpanID == 0 || s1.SpanID == r1.SpanID {
		t.Fatalf("degenerate IDs: root %+v send %+v", r1, s1)
	}
	if s1.TraceID != r1.TraceID || v1.TraceID != r1.TraceID {
		t.Fatal("children and remote spans must share the root's trace ID")
	}
	// A second tracer minting the same named root joins the same trace:
	// that is what lets a journal replay rejoin its batch's tree.
	other := New("client", NewBuffer(0)).RootNamed("n01/7", "client.batch", 9)
	if other.Context() != r1 {
		t.Fatalf("RootNamed is not placement-independent: %v vs %v", other.Context(), r1)
	}
}

func TestChildIndexDisambiguates(t *testing.T) {
	tr := New("fed", NewBuffer(0))
	root := tr.Root("fed.query", 0)
	a := root.Child("fed.fanout", 0)
	b := root.Child("fed.fanout", 0)
	if a.Context().SpanID == b.Context().SpanID {
		t.Fatal("same-kind siblings must have distinct span IDs")
	}
}

func TestBufferRingAndSince(t *testing.T) {
	buf := NewBuffer(4)
	tr := New("t", buf)
	for i := 0; i < 6; i++ {
		tr.Root("a.b", float64(i)).End(float64(i))
	}
	if buf.Len() != 4 {
		t.Fatalf("ring len = %d, want 4", buf.Len())
	}
	if buf.Dropped() != 2 {
		t.Fatalf("dropped = %d, want 2", buf.Dropped())
	}
	spans := buf.Spans()
	if spans[0].Seq != 3 || spans[3].Seq != 6 {
		t.Fatalf("ring kept seqs %d..%d, want 3..6", spans[0].Seq, spans[3].Seq)
	}
	since := buf.SpansSince(4)
	if len(since) != 2 || since[0].Seq != 5 {
		t.Fatalf("SpansSince(4) = %+v", since)
	}
	if got := buf.SpansSince(99); len(got) != 0 {
		t.Fatalf("SpansSince past the end = %+v", got)
	}
}

func TestCanonicalIsArrivalOrderIndependent(t *testing.T) {
	build := func(reverse bool) []byte {
		buf := NewBuffer(0)
		tr := New("client", buf)
		roots := []*Active{
			tr.RootNamed("n01/1", "client.batch", 1),
			tr.RootNamed("n02/1", "client.batch", 1),
		}
		// End in opposite orders: arrival order differs, content does not.
		if reverse {
			roots[1].End(2)
			roots[0].End(2)
		} else {
			roots[0].End(2)
			roots[1].End(2)
		}
		var out bytes.Buffer
		if err := WriteJSONLines(&out, buf.Canonical()); err != nil {
			t.Fatal(err)
		}
		return out.Bytes()
	}
	if !bytes.Equal(build(false), build(true)) {
		t.Fatal("canonical export depends on arrival order")
	}
}

func TestHandlerFilters(t *testing.T) {
	buf := NewBuffer(0)
	tr := New("client", buf)
	b1 := tr.RootNamed("n01/1", "client.batch", 1)
	b1.Child("client.send", 1).End(2)
	b1.End(2)
	q := tr.Root("fed.query", 3)
	q.Attr("cache", "hit").End(4)

	get := func(path string) *httptest.ResponseRecorder {
		rr := httptest.NewRecorder()
		buf.Handler().ServeHTTP(rr, httptest.NewRequest("GET", path, nil))
		return rr
	}

	rr := get("/traces")
	if ct := rr.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	if rr.Header().Get(DroppedHeader) != "0" {
		t.Fatalf("dropped header %q", rr.Header().Get(DroppedHeader))
	}
	if n := strings.Count(rr.Body.String(), "\n"); n != 3 {
		t.Fatalf("unfiltered lines = %d, want 3:\n%s", n, rr.Body.String())
	}
	if strings.Contains(rr.Body.String(), `"seq"`) {
		t.Fatal("canonical output must not carry arrival sequence numbers")
	}

	tid := b1.Context().TraceID
	rr = get("/traces?trace=" + HexID(tid).String())
	if n := strings.Count(rr.Body.String(), "\n"); n != 2 {
		t.Fatalf("trace-filtered lines = %d, want 2:\n%s", n, rr.Body.String())
	}

	rr = get("/traces?kind=client.send")
	if n := strings.Count(rr.Body.String(), "\n"); n != 1 {
		t.Fatalf("kind-filtered lines = %d, want 1:\n%s", n, rr.Body.String())
	}
	// Prefix matching stops at dot boundaries.
	rr = get("/traces?kind=client")
	if n := strings.Count(rr.Body.String(), "\n"); n != 2 {
		t.Fatalf("kind-prefix lines = %d, want 2:\n%s", n, rr.Body.String())
	}
	rr = get("/traces?kind=clie")
	if rr.Body.Len() != 0 {
		t.Fatalf("non-boundary prefix matched:\n%s", rr.Body.String())
	}

	rr = get("/traces?since=2")
	if n := strings.Count(rr.Body.String(), "\n"); n != 1 {
		t.Fatalf("since-filtered lines = %d, want 1:\n%s", n, rr.Body.String())
	}
	if !strings.Contains(rr.Body.String(), `"seq":3`) {
		t.Fatalf("since output must keep sequence numbers:\n%s", rr.Body.String())
	}

	if rr := get("/traces?since=zzz"); rr.Code != 400 {
		t.Fatalf("bad since: code %d", rr.Code)
	}
	if rr := get("/traces?trace=notahex"); rr.Code != 400 {
		t.Fatalf("bad trace: code %d", rr.Code)
	}
}

func TestHexIDRoundTrip(t *testing.T) {
	var h HexID = 0xdeadbeef
	j, err := h.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(j) != `"00000000deadbeef"` {
		t.Fatalf("marshal = %s", j)
	}
	var back HexID
	if err := back.UnmarshalJSON(j); err != nil {
		t.Fatal(err)
	}
	if back != h {
		t.Fatalf("round trip = %v", back)
	}
	if err := back.UnmarshalJSON([]byte(`"xyz"`)); err == nil {
		t.Fatal("bad hex must not parse")
	}
}

func TestEndTwiceRecordsOnce(t *testing.T) {
	buf := NewBuffer(0)
	sp := New("t", buf).Root("a.b", 0)
	sp.End(1)
	sp.End(2)
	if buf.Len() != 1 {
		t.Fatalf("len = %d, want 1", buf.Len())
	}
}

func BenchmarkSpanDisabled(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.RootNamed("n01/1", "client.batch", 0)
		sp.Child("client.send", 0).End(0)
		sp.End(0)
	}
}

func BenchmarkSpanEnabled(b *testing.B) {
	tr := New("client", NewBuffer(0))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.RootNamed("n01/1", "client.batch", 0)
		sp.Child("client.send", 0).End(0)
		sp.End(0)
	}
}
