package telemetry

import (
	"encoding/json"
	"net/http"
	"sort"
	"sync"
)

// SLO summarises per-operation latency objectives from registered
// histograms. Each entry pairs a wire-op name with the histogram that
// observes it and a p99 target in seconds; Report computes the
// current quantile estimates and whether each op is inside its
// objective. All methods are nil-safe so daemons can wire an SLO
// unconditionally and register entries only when telemetry is on.
type SLO struct {
	mu      sync.Mutex
	entries []sloEntry
}

type sloEntry struct {
	op     string
	h      *Histogram
	target float64
}

// SLOReport is one operation's current latency summary.
type SLOReport struct {
	Op        string  `json:"op"`
	Count     uint64  `json:"count"`
	P50       float64 `json:"p50"`
	P95       float64 `json:"p95"`
	P99       float64 `json:"p99"`
	TargetP99 float64 `json:"target_p99,omitempty"`
	OK        bool    `json:"ok"`
}

// NewSLO returns an empty summary.
func NewSLO() *SLO { return &SLO{} }

// Register adds one operation backed by h. A zero targetP99 means "no
// objective": the op is reported but always OK. Registering the same
// op again replaces its entry, so daemons can re-bind after a
// telemetry restart.
func (s *SLO) Register(op string, h *Histogram, targetP99 float64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.entries {
		if s.entries[i].op == op {
			s.entries[i] = sloEntry{op: op, h: h, target: targetP99}
			return
		}
	}
	s.entries = append(s.entries, sloEntry{op: op, h: h, target: targetP99})
}

// Report returns the current summary for every registered op, sorted
// by op name so the output is stable across registration order.
func (s *SLO) Report() []SLOReport {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	entries := append([]sloEntry(nil), s.entries...)
	s.mu.Unlock()
	out := make([]SLOReport, 0, len(entries))
	for _, e := range entries {
		r := SLOReport{
			Op:        e.op,
			Count:     e.h.Count(),
			P50:       e.h.Quantile(0.50),
			P95:       e.h.Quantile(0.95),
			P99:       e.h.Quantile(0.99),
			TargetP99: e.target,
		}
		r.OK = e.target == 0 || r.Count == 0 || r.P99 <= e.target
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Op < out[j].Op })
	return out
}

// Handler serves the report as a JSON array. Write errors mean the
// client went away and are ignored.
func (s *SLO) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		rep := s.Report()
		if rep == nil {
			rep = []SLOReport{}
		}
		_ = enc.Encode(rep)
	})
}
