package telemetry

import (
	"math"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64. All methods are
// nil-safe no-ops so a disabled instrument costs one nil check; the
// enabled path is a single atomic add. The zero value is usable
// standalone (e.g. embedded in a struct) — registering it in a
// Registry is only needed for export.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a float64 that can go up and down, stored as IEEE-754 bits
// in a uint64 so loads and stores are single atomics.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add adds d (CAS loop; contention on gauges is setup/coarse-grained
// by design).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value (0 on a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets. Bounds are upper
// bucket limits in ascending order; an implicit +Inf bucket catches
// the rest. Observe is a linear scan over the (small, fixed) bounds
// plus two atomic adds and a CAS float sum.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Uint64 // len(bounds)+1, last is +Inf
	count   atomic.Uint64
	sumBits atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{
		bounds:  bounds,
		buckets: make([]atomic.Uint64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Quantile estimates the q-quantile (0 < q <= 1) from the bucket
// counts by linear interpolation within the covering bucket — the
// same estimate Prometheus' histogram_quantile computes. The +Inf
// bucket has no upper edge, so observations landing there estimate as
// the largest finite bound. Returns 0 on a nil or empty histogram.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 || len(h.bounds) == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum uint64
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if float64(cum+n) >= rank && n > 0 {
			if i >= len(h.bounds) {
				// +Inf bucket: clamp to the largest finite edge.
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			return lo + (h.bounds[i]-lo)*(rank-float64(cum))/float64(n)
		}
		cum += n
	}
	return h.bounds[len(h.bounds)-1]
}
