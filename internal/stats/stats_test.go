package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDescriptive(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if m := Mean(xs); m != 2.5 {
		t.Errorf("Mean = %v, want 2.5", m)
	}
	if s := StdDev(xs); !almostEqual(s, 1.2909944487, 1e-9) {
		t.Errorf("StdDev = %v", s)
	}
	if v := Min(xs); v != 1 {
		t.Errorf("Min = %v", v)
	}
	if v := Max(xs); v != 4 {
		t.Errorf("Max = %v", v)
	}
	if v := Median(xs); v != 2.5 {
		t.Errorf("Median = %v", v)
	}
	if v := Median([]float64{3, 1, 2}); v != 2 {
		t.Errorf("Median odd = %v", v)
	}
}

func TestDescriptiveEmpty(t *testing.T) {
	if Mean(nil) != 0 || StdDev(nil) != 0 || Min(nil) != 0 || Max(nil) != 0 || Median(nil) != 0 {
		t.Error("empty-slice statistics must be 0")
	}
	if StdDev([]float64{5}) != 0 {
		t.Error("single-sample stddev must be 0")
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Median(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("Median mutated input: %v", xs)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 10) != 5 || Clamp(-1, 0, 10) != 0 || Clamp(11, 0, 10) != 10 {
		t.Error("Clamp misbehaves")
	}
}

func TestSolveLinearExact(t *testing.T) {
	A := [][]float64{{2, 1}, {1, 3}}
	b := []float64{5, 10}
	x, err := SolveLinear(A, b)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(x[0], 1, 1e-9) || !almostEqual(x[1], 3, 1e-9) {
		t.Errorf("SolveLinear = %v, want [1 3]", x)
	}
	// Inputs untouched.
	if A[0][0] != 2 || b[0] != 5 {
		t.Error("SolveLinear mutated inputs")
	}
}

func TestSolveLinearSingular(t *testing.T) {
	A := [][]float64{{1, 2}, {2, 4}}
	if _, err := SolveLinear(A, []float64{1, 2}); err == nil {
		t.Error("expected singular error")
	}
}

func TestSolveLinearBadShape(t *testing.T) {
	if _, err := SolveLinear(nil, nil); err == nil {
		t.Error("expected error for empty system")
	}
	if _, err := SolveLinear([][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Error("expected error for non-square matrix")
	}
	if _, err := SolveLinear([][]float64{{1}}, []float64{1, 2}); err == nil {
		t.Error("expected error for mismatched b")
	}
}

func TestLeastSquaresRecoversPlane(t *testing.T) {
	// y = 3 + 2*x1 - 0.5*x2, noiseless: LS must recover coefficients.
	rng := rand.New(rand.NewSource(1))
	var X [][]float64
	var y []float64
	for i := 0; i < 50; i++ {
		x1, x2 := rng.Float64()*10, rng.Float64()*10
		X = append(X, []float64{1, x1, x2})
		y = append(y, 3+2*x1-0.5*x2)
	}
	beta, err := LeastSquares(X, y)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{3, 2, -0.5}
	for i := range want {
		if !almostEqual(beta[i], want[i], 1e-6) {
			t.Errorf("beta[%d] = %v, want %v", i, beta[i], want[i])
		}
	}
}

func TestLeastSquaresNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var X [][]float64
	var y, yhat []float64
	for i := 0; i < 400; i++ {
		x := rng.Float64() * 5
		X = append(X, []float64{1, x})
		y = append(y, 1+4*x+rng.NormFloat64()*0.1)
	}
	beta, err := LeastSquares(X, y)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(beta[0], 1, 0.1) || !almostEqual(beta[1], 4, 0.05) {
		t.Errorf("noisy fit beta = %v", beta)
	}
	for _, row := range X {
		yhat = append(yhat, beta[0]+beta[1]*row[1])
	}
	if r2 := R2(y, yhat); r2 < 0.99 {
		t.Errorf("R2 = %v, want >= 0.99", r2)
	}
}

func TestLeastSquaresErrors(t *testing.T) {
	if _, err := LeastSquares(nil, nil); err == nil {
		t.Error("expected error for empty system")
	}
	if _, err := LeastSquares([][]float64{{}}, []float64{1}); err == nil {
		t.Error("expected error for zero features")
	}
	if _, err := LeastSquares([][]float64{{1, 2}, {1}}, []float64{1, 2}); err == nil {
		t.Error("expected error for ragged matrix")
	}
	// Rank-deficient: duplicate column.
	X := [][]float64{{1, 1}, {2, 2}, {3, 3}}
	if _, err := LeastSquares(X, []float64{1, 2, 3}); err == nil {
		t.Error("expected singular error for collinear features")
	}
}

func TestR2Bounds(t *testing.T) {
	y := []float64{1, 2, 3}
	if r := R2(y, y); !almostEqual(r, 1, 1e-12) {
		t.Errorf("perfect R2 = %v", r)
	}
	if r := R2(y, []float64{2, 2, 2}); !almostEqual(r, 0, 1e-12) {
		t.Errorf("mean-prediction R2 = %v", r)
	}
	if r := R2([]float64{5, 5}, []float64{5, 5}); r != 0 {
		t.Errorf("zero-variance R2 = %v", r)
	}
	if r := R2(y, []float64{1, 2}); r != 0 {
		t.Errorf("mismatched-length R2 = %v", r)
	}
}

func TestSolveLinearRandomProperty(t *testing.T) {
	// For random well-conditioned diagonally dominant systems,
	// A·x must reproduce b.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + int(rng.Int31n(4))
		A := make([][]float64, n)
		b := make([]float64, n)
		for i := 0; i < n; i++ {
			A[i] = make([]float64, n)
			rowSum := 0.0
			for j := 0; j < n; j++ {
				A[i][j] = rng.Float64()*2 - 1
				rowSum += math.Abs(A[i][j])
			}
			A[i][i] = rowSum + 1 // diagonal dominance => nonsingular
			b[i] = rng.Float64() * 10
		}
		x, err := SolveLinear(A, b)
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			s := 0.0
			for j := 0; j < n; j++ {
				s += A[i][j] * x[j]
			}
			if !almostEqual(s, b[i], 1e-8) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
