// Package stats provides the small numerical toolbox used by goear:
// descriptive statistics for averaging experiment runs, and dense linear
// least squares used by the energy-model learning phase to fit projection
// coefficients against simulator samples.
package stats

import (
	"errors"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation of xs (n-1 denominator).
// It returns 0 for fewer than two samples.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// Min returns the minimum of xs, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Median returns the median of xs, or 0 for an empty slice.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	n := len(c)
	if n%2 == 1 {
		return c[n/2]
	}
	return (c[n/2-1] + c[n/2]) / 2
}

// Clamp limits x to the inclusive range [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// ErrSingular is returned when a least-squares system has no unique
// solution (rank-deficient design matrix).
var ErrSingular = errors.New("stats: singular system")

// LeastSquares solves min ||X·beta - y||² by normal equations with
// partial-pivot Gaussian elimination. X is row-major: len(X) samples,
// each with the same number of features. It returns the coefficient
// vector beta with one entry per feature.
func LeastSquares(X [][]float64, y []float64) ([]float64, error) {
	n := len(X)
	if n == 0 || n != len(y) {
		return nil, errors.New("stats: least squares needs matching, non-empty X and y")
	}
	p := len(X[0])
	if p == 0 {
		return nil, errors.New("stats: least squares needs at least one feature")
	}
	for i, row := range X {
		if len(row) != p {
			return nil, errors.New("stats: ragged design matrix")
		}
		_ = i
	}
	// Form A = XᵀX (p×p) and b = Xᵀy.
	A := make([][]float64, p)
	b := make([]float64, p)
	for i := 0; i < p; i++ {
		A[i] = make([]float64, p)
	}
	for _, row := range X {
		for i := 0; i < p; i++ {
			for j := i; j < p; j++ {
				A[i][j] += row[i] * row[j]
			}
		}
	}
	for i := 0; i < p; i++ {
		for j := 0; j < i; j++ {
			A[i][j] = A[j][i]
		}
	}
	for k, row := range X {
		for i := 0; i < p; i++ {
			b[i] += row[i] * y[k]
		}
	}
	return SolveLinear(A, b)
}

// SolveLinear solves the square system A·x = b in place using Gaussian
// elimination with partial pivoting. A and b are copied, not mutated.
func SolveLinear(A [][]float64, b []float64) ([]float64, error) {
	n := len(A)
	if n == 0 || n != len(b) {
		return nil, errors.New("stats: solve needs square, non-empty system")
	}
	// Work on copies.
	M := make([][]float64, n)
	for i := range A {
		if len(A[i]) != n {
			return nil, errors.New("stats: non-square matrix")
		}
		M[i] = append([]float64(nil), A[i]...)
	}
	x := append([]float64(nil), b...)

	for col := 0; col < n; col++ {
		// Partial pivot.
		piv := col
		best := math.Abs(M[col][col])
		for r := col + 1; r < n; r++ {
			if a := math.Abs(M[r][col]); a > best {
				best, piv = a, r
			}
		}
		if best < 1e-12 {
			return nil, ErrSingular
		}
		M[col], M[piv] = M[piv], M[col]
		x[col], x[piv] = x[piv], x[col]
		// Eliminate below.
		for r := col + 1; r < n; r++ {
			f := M[r][col] / M[col][col]
			if f == 0 {
				continue
			}
			for c := col; c < n; c++ {
				M[r][c] -= f * M[col][c]
			}
			x[r] -= f * x[col]
		}
	}
	// Back substitution.
	for col := n - 1; col >= 0; col-- {
		s := x[col]
		for c := col + 1; c < n; c++ {
			s -= M[col][c] * x[c]
		}
		x[col] = s / M[col][col]
	}
	return x, nil
}

// R2 returns the coefficient of determination of predictions yhat against
// observations y. It returns 0 when y has no variance.
func R2(y, yhat []float64) float64 {
	if len(y) != len(yhat) || len(y) == 0 {
		return 0
	}
	m := Mean(y)
	ssTot, ssRes := 0.0, 0.0
	for i := range y {
		ssTot += (y[i] - m) * (y[i] - m)
		ssRes += (y[i] - yhat[i]) * (y[i] - yhat[i])
	}
	if ssTot == 0 {
		return 0
	}
	return 1 - ssRes/ssTot
}
