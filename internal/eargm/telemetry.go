package eargm

import (
	"goear/internal/telemetry"
)

// Metric names (package-level constants per the goearvet telemetry
// analyzer).
const (
	metricGMIntervals = "goear_eargm_intervals_total"
	metricGMDeepened  = "goear_eargm_cap_deepened_total"
	metricGMRelaxed   = "goear_eargm_cap_relaxed_total"
	metricGMCap       = "goear_eargm_cap_pstate"
	metricGMPower     = "goear_eargm_total_power_watts"

	metricGMCascadeUpdates = "goear_eargm_cascade_updates_total"
	metricGMIslandBudget   = "goear_eargm_island_budget_watts"
	metricGMIslandPower    = "goear_eargm_island_power_watts"
	metricGMIslandCap      = "goear_eargm_island_cap_pstate"
)

// Span kinds (dotted-lowercase per the goearvet telemetry analyzer).
const (
	spanGMInterval = "eargm.interval"
	spanGMIsland   = "eargm.island"
)

// gmTel is a manager's pre-resolved instrument bundle; nil fields
// (telemetry absent) make every use a nil-receiver no-op.
type gmTel struct {
	intervals *telemetry.Counter
	deepened  *telemetry.Counter
	relaxed   *telemetry.Counter
	cap       *telemetry.Gauge
	power     *telemetry.Gauge
	rec       *telemetry.Recorder
}

func newGMTel(s *telemetry.Set) gmTel {
	r := s.Reg()
	return gmTel{
		intervals: r.Counter(metricGMIntervals, "control intervals evaluated"),
		deepened:  r.Counter(metricGMDeepened, "intervals that deepened the pstate cap"),
		relaxed:   r.Counter(metricGMRelaxed, "intervals that relaxed the pstate cap"),
		cap:       r.Gauge(metricGMCap, "current cluster pstate ceiling (0 = released)"),
		power:     r.Gauge(metricGMPower, "last observed total cluster DC power"),
		rec:       s.Rec(),
	}
}

// cascadeTel is a cascade's pre-resolved instrument bundle. Island
// labels are resolved once at construction (setup-time label
// resolution); nil fields make every use a no-op.
type cascadeTel struct {
	updates *telemetry.Counter
	budget  []*telemetry.Gauge // per island
	power   []*telemetry.Gauge
	cap     []*telemetry.Gauge
}

func newCascadeTel(s *telemetry.Set, islands []Island) cascadeTel {
	if s == nil {
		s = telemetry.Default()
	}
	r := s.Reg()
	t := cascadeTel{
		updates: r.Counter(metricGMCascadeUpdates, "cascaded control intervals evaluated"),
	}
	bv := r.GaugeVec(metricGMIslandBudget, "power budget apportioned to the island", "island")
	pv := r.GaugeVec(metricGMIslandPower, "last observed island DC power", "island")
	cv := r.GaugeVec(metricGMIslandCap, "island pstate ceiling (0 = released)", "island")
	for _, isl := range islands {
		t.budget = append(t.budget, bv.With(isl.Name))
		t.power = append(t.power, pv.With(isl.Name))
		t.cap = append(t.cap, cv.With(isl.Name))
	}
	return t
}

// island records one island's interval outcome.
func (t cascadeTel) island(i int, budgetW, drawW float64, capP int) {
	if t.budget == nil {
		return
	}
	t.budget[i].Set(budgetW)
	t.power[i].Set(drawW)
	t.cap[i].Set(float64(capP))
}

// transition logs one ratchet transition (a deepen or relax decision)
// to the event recorder, stamped with simulated time.
func (t gmTel) transition(now float64, action string, capP int, totalW float64) {
	if t.rec == nil {
		return
	}
	t.rec.Record(telemetry.Event{
		TimeSec: now,
		Kind:    "eargm.ratchet",
		Src:     "eargm",
		Str:     map[string]string{"action": action},
		Num:     map[string]float64{"cap_pstate": float64(capP), "total_power_w": totalW},
	})
}
