package eargm

import (
	"goear/internal/telemetry"
)

// Metric names (package-level constants per the goearvet telemetry
// analyzer).
const (
	metricGMIntervals = "goear_eargm_intervals_total"
	metricGMDeepened  = "goear_eargm_cap_deepened_total"
	metricGMRelaxed   = "goear_eargm_cap_relaxed_total"
	metricGMCap       = "goear_eargm_cap_pstate"
	metricGMPower     = "goear_eargm_total_power_watts"
)

// gmTel is a manager's pre-resolved instrument bundle; nil fields
// (telemetry absent) make every use a nil-receiver no-op.
type gmTel struct {
	intervals *telemetry.Counter
	deepened  *telemetry.Counter
	relaxed   *telemetry.Counter
	cap       *telemetry.Gauge
	power     *telemetry.Gauge
	rec       *telemetry.Recorder
}

func newGMTel(s *telemetry.Set) gmTel {
	r := s.Reg()
	return gmTel{
		intervals: r.Counter(metricGMIntervals, "control intervals evaluated"),
		deepened:  r.Counter(metricGMDeepened, "intervals that deepened the pstate cap"),
		relaxed:   r.Counter(metricGMRelaxed, "intervals that relaxed the pstate cap"),
		cap:       r.Gauge(metricGMCap, "current cluster pstate ceiling (0 = released)"),
		power:     r.Gauge(metricGMPower, "last observed total cluster DC power"),
		rec:       s.Rec(),
	}
}

// transition logs one ratchet transition (a deepen or relax decision)
// to the event recorder, stamped with simulated time.
func (t gmTel) transition(now float64, action string, capP int, totalW float64) {
	if t.rec == nil {
		return
	}
	t.rec.Record(telemetry.Event{
		TimeSec: now,
		Kind:    "eargm.ratchet",
		Src:     "eargm",
		Str:     map[string]string{"action": action},
		Num:     map[string]float64{"cap_pstate": float64(capP), "total_power_w": totalW},
	})
}
