package eargm

import "testing"

// respondingSource models a cluster whose draw responds to the cap the
// manager imposed on the previous interval — the feedback shape of the
// real eardbd → eargm loop.
type respondingSource struct {
	m        *Manager
	nodes    int
	baseW    float64
	shedFrac float64
}

func (s *respondingSource) NodePowers() []float64 {
	p := s.baseW * (1 - s.shedFrac*float64(s.m.Cap()))
	out := make([]float64, s.nodes)
	for i := range out {
		out[i] = p
	}
	return out
}

func TestDriveConvergesFromSource(t *testing.T) {
	m, err := New(Config{BudgetW: 1000, MaxCapPstate: 8})
	if err != nil {
		t.Fatal(err)
	}
	src := &respondingSource{m: m, nodes: 4, baseW: 280, shedFrac: 0.06}
	caps, err := Drive(m, src, 0, 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(caps) != 40 {
		t.Fatalf("trace length = %d, want 40", len(caps))
	}
	final := caps[len(caps)-1]
	if final == 0 {
		t.Fatal("cap released although uncapped draw exceeds the budget")
	}
	for _, c := range caps[len(caps)-10:] {
		if c != final {
			t.Fatalf("cap still oscillating: %v", caps[len(caps)-10:])
		}
	}
	// Drive paced by the manager interval: the event timestamps step by
	// Interval().
	evs := m.Events()
	if len(evs) != 40 {
		t.Fatalf("events = %d, want 40", len(evs))
	}
	for i, ev := range evs {
		if want := float64(i) * m.Interval(); ev.TimeSec != want {
			t.Fatalf("event %d at t=%g, want %g", i, ev.TimeSec, want)
		}
	}
}

func TestDriveNegativeSteps(t *testing.T) {
	m, err := New(Config{BudgetW: 1000, MaxCapPstate: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Drive(m, &respondingSource{m: m}, 0, -1); err == nil {
		t.Error("negative steps accepted")
	}
}

func TestDrivePropagatesSourceErrors(t *testing.T) {
	m, err := New(Config{BudgetW: 1000, MaxCapPstate: 5})
	if err != nil {
		t.Fatal(err)
	}
	bad := badSource{}
	caps, err := Drive(m, bad, 0, 5)
	if err == nil {
		t.Fatal("negative node power accepted")
	}
	if len(caps) != 0 {
		t.Errorf("trace after failed first step = %v", caps)
	}
}

type badSource struct{}

func (badSource) NodePowers() []float64 { return []float64{-1} }
