package eargm

import "fmt"

// PowerSource supplies the per-node DC power view the manager ratchets
// against. In EAR's deployment the global manager does not meter nodes
// itself — it polls the database daemon's aggregated telemetry — so
// the manager takes its input through this interface instead of being
// handed raw numbers. The eardbd server implements it from the last
// record each node reported; implementations must return nodes in a
// deterministic order.
type PowerSource interface {
	// NodePowers returns the current per-node DC power in watts.
	NodePowers() []float64
}

// UpdateFrom polls src and applies one ratchet step, the EARGM control
// loop body when the power view comes from an EARDBD aggregate.
func (m *Manager) UpdateFrom(now float64, src PowerSource) (int, error) {
	return m.Update(now, src.NodePowers())
}

// Drive runs steps control intervals against src starting at start
// seconds, pacing by the manager's configured interval, and returns
// the cap trace. It is the headless form of the EARGM daemon loop:
// deterministic, clockless, driven entirely by the source's state.
func Drive(m *Manager, src PowerSource, start float64, steps int) ([]int, error) {
	if steps < 0 {
		return nil, fmt.Errorf("eargm: negative step count %d", steps)
	}
	caps := make([]int, 0, steps)
	for i := 0; i < steps; i++ {
		cap, err := m.UpdateFrom(start+float64(i)*m.Interval(), src)
		if err != nil {
			return caps, err
		}
		caps = append(caps, cap)
	}
	return caps, nil
}
