package eargm

import (
	"testing"
	"testing/quick"
)

// TestIntervalAccessor covers the sim.PowerManager wiring: the
// coordinated-run loop paces itself entirely off this accessor.
func TestIntervalAccessor(t *testing.T) {
	m, err := New(Config{BudgetW: 1000, MaxCapPstate: 5, IntervalSec: 7.5})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Interval(); got != 7.5 {
		t.Errorf("Interval() = %g, want 7.5", got)
	}
	def, err := New(Config{BudgetW: 1000, MaxCapPstate: 5})
	if err != nil {
		t.Fatal(err)
	}
	if got := def.Interval(); got != 5 {
		t.Errorf("default Interval() = %g, want 5", got)
	}
}

// TestClosedLoopConvergence runs the manager against a synthetic
// cluster whose power responds to the cap the way capped nodes do
// (deeper pstate ceiling, lower draw). The ratchet must pull the
// cluster under budget and then hold inside the hysteresis band
// without oscillating — the paper's requirement that the global
// manager be stable at the site budget.
func TestClosedLoopConvergence(t *testing.T) {
	const (
		budget   = 1000.0
		nodeBase = 280.0 // per-node uncapped draw, 4 nodes = 1120 W > budget
		nodes    = 4
	)
	m, err := New(Config{BudgetW: budget, MaxCapPstate: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Each cap pstate sheds 6% of node power: cap 2 → 1120·0.88 ≈ 986 W.
	powerAt := func(cap int) []float64 {
		p := nodeBase * (1 - 0.06*float64(cap))
		out := make([]float64, nodes)
		for i := range out {
			out[i] = p
		}
		return out
	}
	cap := 0
	var caps []int
	for i := 0; i < 40; i++ {
		cap, err = m.Update(float64(i)*5, powerAt(cap))
		if err != nil {
			t.Fatal(err)
		}
		caps = append(caps, cap)
	}
	// Converged: the tail must be constant (no oscillation) ...
	final := caps[len(caps)-1]
	for _, c := range caps[len(caps)-10:] {
		if c != final {
			t.Fatalf("cap still moving in steady state: %v", caps[len(caps)-10:])
		}
	}
	if final == 0 {
		t.Fatal("cap fully released although uncapped power exceeds the budget")
	}
	// ... with the converged power inside the hysteresis band
	// [release mark, budget].
	steady := 0.0
	for _, p := range powerAt(final) {
		steady += p
	}
	if steady > budget {
		t.Errorf("steady-state power %.0fW above budget %.0fW", steady, budget)
	}
	if steady < 0.92*budget {
		t.Errorf("steady-state power %.0fW below the release mark; controller over-throttles", steady)
	}
	st := m.Stats()
	if st.PeakW != nodes*nodeBase {
		t.Errorf("peak = %.0fW, want the uncapped draw %.0fW", st.PeakW, nodes*nodeBase)
	}
}

// TestEventTrace pins the decision log: deepen and relax transitions
// must be visible with their timestamps and totals.
func TestEventTrace(t *testing.T) {
	m, err := New(Config{BudgetW: 1000, MaxCapPstate: 5, SettleIntervals: 1})
	if err != nil {
		t.Fatal(err)
	}
	steps := []struct {
		now     float64
		power   float64
		deepen  bool
		relax   bool
		wantCap int
	}{
		{5, 1200, true, false, 1},  // over budget: impose the min cap
		{10, 1100, true, false, 2}, // still over: deepen
		{15, 950, false, false, 2}, // dead band (920..1000): hold
		{20, 900, false, true, 1},  // below release mark: relax
		{25, 900, false, true, 0},  // and fully release
	}
	for _, s := range steps {
		cap, err := m.Update(s.now, []float64{s.power})
		if err != nil {
			t.Fatal(err)
		}
		if cap != s.wantCap {
			t.Fatalf("t=%g: cap = %d, want %d", s.now, cap, s.wantCap)
		}
	}
	evs := m.Events()
	if len(evs) != len(steps) {
		t.Fatalf("events = %d, want %d", len(evs), len(steps))
	}
	for i, s := range steps {
		ev := evs[i]
		if ev.TimeSec != s.now || ev.TotalW != s.power {
			t.Errorf("event %d = %+v, want t=%g total=%g", i, ev, s.now, s.power)
		}
		if ev.Deepened != s.deepen || ev.Relaxed != s.relax {
			t.Errorf("event %d transitions = %+v, want deepen=%v relax=%v", i, ev, s.deepen, s.relax)
		}
		if ev.Cap != s.wantCap {
			t.Errorf("event %d cap = %d, want %d", i, ev.Cap, s.wantCap)
		}
	}
}

// TestNoNodesIsUnderBudget covers the empty-cluster edge: zero nodes
// draw zero watts, the cap stays released.
func TestNoNodesIsUnderBudget(t *testing.T) {
	m, err := New(Config{BudgetW: 1000, MaxCapPstate: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		cap, err := m.Update(float64(i), nil)
		if err != nil {
			t.Fatal(err)
		}
		if cap != 0 {
			t.Errorf("empty cluster got capped to %d", cap)
		}
	}
	if st := m.Stats(); st.OverBudget != 0 || st.PeakW != 0 {
		t.Errorf("stats = %+v", st)
	}
}

// TestCapStepDiscipline: whatever the power sequence, the cap moves
// at most one level per interval (release may drop from MinCapPstate
// to 0, which is also one level).
func TestCapStepDiscipline(t *testing.T) {
	fn := func(seq []uint16) bool {
		m, err := New(Config{BudgetW: 500, MaxCapPstate: 6})
		if err != nil {
			return false
		}
		prev := 0
		for i, v := range seq {
			cap, err := m.Update(float64(i), []float64{float64(v)})
			if err != nil {
				return false
			}
			d := cap - prev
			if d > 1 || d < -1 {
				// One exception: imposing the first cap jumps 0 -> MinCapPstate.
				if !(prev == 0 && cap == m.cfg.MinCapPstate) {
					return false
				}
			}
			prev = cap
		}
		return true
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Error(err)
	}
}
