package eargm

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"goear/internal/telemetry"
)

// slicesSource is a scripted PowerSource: each Update reads the next
// row, sticking at the last.
type slicesSource struct {
	rows [][]float64
	i    int
}

func (s *slicesSource) NodePowers() []float64 {
	row := s.rows[s.i]
	if s.i < len(s.rows)-1 {
		s.i++
	}
	return row
}

func newCascadeForTest(t *testing.T, budget float64, islands []Island) *Cascade {
	t.Helper()
	c, err := NewCascade(CascadeConfig{
		BudgetW: budget,
		Island:  Config{MaxCapPstate: 8},
	}, islands)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCascadeApportionsBudgetBySumExactly(t *testing.T) {
	c := newCascadeForTest(t, 1000, []Island{
		{Name: "i0", Src: &slicesSource{rows: [][]float64{{300, 300}}}},
		{Name: "i1", Src: &slicesSource{rows: [][]float64{{200}}}},
		{Name: "i2", Src: &slicesSource{rows: [][]float64{{}}}},
	})
	if _, err := c.Update(0); err != nil {
		t.Fatal(err)
	}
	budgets := c.Budgets()
	total := 0.0
	for _, b := range budgets {
		total += b
		if b <= 0 {
			t.Fatalf("island budget not positive: %v", budgets)
		}
	}
	if math.Abs(total-1000) > 1e-9 {
		t.Fatalf("budgets %v sum to %g, want the cluster budget", budgets, total)
	}
	// Reserve 0.2 of 1000 split 3 ways = 66.66...; pool 800 split
	// 600:200:0 over a draw of 800.
	want := []float64{1000 * 0.2 / 3 + 800 * 600 / 800.0, 1000*0.2/3 + 800*200/800.0, 1000 * 0.2 / 3}
	for i := range want {
		if math.Abs(budgets[i]-want[i]) > 1e-9 {
			t.Fatalf("budgets = %v, want %v", budgets, want)
		}
	}
	// The idle island keeps its reserve share even with zero draw.
	if budgets[2] <= 0 {
		t.Fatalf("idle island starved: %v", budgets)
	}
}

func TestCascadeZeroDrawSplitsEqually(t *testing.T) {
	c := newCascadeForTest(t, 900, []Island{
		{Name: "i0", Src: &slicesSource{rows: [][]float64{{}}}},
		{Name: "i1", Src: &slicesSource{rows: [][]float64{{}}}},
		{Name: "i2", Src: &slicesSource{rows: [][]float64{{}}}},
	})
	if _, err := c.Update(0); err != nil {
		t.Fatal(err)
	}
	for _, b := range c.Budgets() {
		if math.Abs(b-300) > 1e-9 {
			t.Fatalf("budgets = %v, want equal thirds", c.Budgets())
		}
	}
}

func TestCascadeCapsOverloadedIslandOnly(t *testing.T) {
	// Island 0 draws far over any fair share; island 1 stays modest.
	hot := &slicesSource{rows: [][]float64{{400, 400, 400}}}
	cool := &slicesSource{rows: [][]float64{{100}}}
	c := newCascadeForTest(t, 800, []Island{
		{Name: "hot", Src: hot},
		{Name: "cool", Src: cool},
	})
	trace, err := c.Drive(0, 6)
	if err != nil {
		t.Fatal(err)
	}
	final := trace[len(trace)-1]
	if final[0] == 0 {
		t.Errorf("hot island left uncapped: trace %v", trace)
	}
	if final[1] != 0 {
		t.Errorf("cool island capped though under its share: trace %v budgets %v", trace, c.Budgets())
	}
	if got := c.Caps(); !reflect.DeepEqual(got, final) {
		t.Errorf("Caps() = %v, want %v", got, final)
	}
}

func TestCascadeDeterministicReplay(t *testing.T) {
	build := func() *Cascade {
		return newCascadeForTest(t, 700, []Island{
			{Name: "i0", Src: &slicesSource{rows: [][]float64{{300, 100}, {350, 120}, {200, 90}}}},
			{Name: "i1", Src: &slicesSource{rows: [][]float64{{260}, {280}, {240}}}},
		})
	}
	a, err := build().Drive(0, 8)
	if err != nil {
		t.Fatal(err)
	}
	b, err := build().Drive(0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("cascade replay diverged:\n%v\n%v", a, b)
	}
}

func TestCascadeValidation(t *testing.T) {
	src := &slicesSource{rows: [][]float64{{}}}
	cases := []struct {
		name    string
		cfg     CascadeConfig
		islands []Island
	}{
		{"no budget", CascadeConfig{}, []Island{{Name: "a", Src: src}}},
		{"no islands", CascadeConfig{BudgetW: 100}, nil},
		{"unnamed", CascadeConfig{BudgetW: 100}, []Island{{Src: src}}},
		{"no source", CascadeConfig{BudgetW: 100}, []Island{{Name: "a"}}},
		{"dup name", CascadeConfig{BudgetW: 100}, []Island{{Name: "a", Src: src}, {Name: "a", Src: src}}},
		{"bad reserve", CascadeConfig{BudgetW: 100, ReserveFrac: 1.5}, []Island{{Name: "a", Src: src}}},
	}
	for _, tc := range cases {
		if _, err := NewCascade(tc.cfg, tc.islands); err == nil {
			t.Errorf("%s: NewCascade accepted invalid input", tc.name)
		}
	}
}

func TestSetBudget(t *testing.T) {
	m, err := New(Config{BudgetW: 500, MaxCapPstate: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetBudget(-1); err == nil {
		t.Error("negative budget accepted")
	}
	if err := m.SetBudget(750); err != nil {
		t.Fatal(err)
	}
	if got := m.Budget(); got != 750 {
		t.Errorf("Budget() = %g after SetBudget(750)", got)
	}
}

func TestCascadeTelemetry(t *testing.T) {
	set := telemetry.NewSet()
	c, err := NewCascade(CascadeConfig{
		BudgetW: 600,
		Island:  Config{MaxCapPstate: 8, Telemetry: set},
	}, []Island{
		{Name: "i0", Src: &slicesSource{rows: [][]float64{{400}}}},
		{Name: "i1", Src: &slicesSource{rows: [][]float64{{100}}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Update(0); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := set.Reg().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	samples, err := telemetry.ParseText(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	vals := make(map[string]float64, len(samples))
	for _, s := range samples {
		vals[s.Name+s.Labels] = s.Value
	}
	if got := vals[metricGMCascadeUpdates]; got != 1 {
		t.Errorf("cascade updates counter = %g, want 1", got)
	}
	b0 := vals[metricGMIslandBudget+`{island="i0"}`]
	b1 := vals[metricGMIslandBudget+`{island="i1"}`]
	if math.Abs(b0+b1-600) > 1e-9 || b0 <= b1 {
		t.Errorf("island budget gauges = %g, %g; want sum 600 with i0 larger", b0, b1)
	}
	if got := vals[metricGMIslandPower+`{island="i0"}`]; got != 400 {
		t.Errorf("island power gauge = %g, want 400", got)
	}
}
