package eargm

import (
	"fmt"
	"strconv"

	"goear/internal/telemetry/trace"
)

// This file implements the cascaded form of the global manager. EAR's
// large deployments do not run one EARGM over every node: a top-level
// budget is split across islands, and a per-island manager ratchets
// its own pstate ceiling against its own EARDBD's aggregate. The
// Cascade reproduces that shape over the federation tier: each island
// is a (name, PowerSource) pair — in production the source is an
// fed.Root IslandSource view of one shard — and the cluster budget is
// re-apportioned every interval from the islands' current draw.
//
// Apportioning is reserve-plus-proportional: a reserved fraction of
// the cluster budget is split equally (so an idle island never starves
// to a zero budget, which the ratchet cannot represent), and the rest
// follows each island's share of the observed cluster draw. The split
// is computed in island order with plain float sums, so a cascade over
// a deterministic source replays byte-identically.

// Island is one budget domain of a cascaded deployment.
type Island struct {
	// Name labels the island in telemetry and traces.
	Name string
	// Src supplies the island's per-node power view. Implementations
	// must return nodes in a deterministic order.
	Src PowerSource
}

// CascadeConfig parameterises a cascaded manager.
type CascadeConfig struct {
	// BudgetW is the cluster-wide DC power budget in watts.
	BudgetW float64
	// ReserveFrac is the fraction of the budget split equally across
	// islands regardless of draw (default 0.2); the remainder is
	// apportioned proportionally to each island's observed power.
	ReserveFrac float64
	// Island templates the per-island managers: every field but BudgetW
	// applies as in a flat deployment. BudgetW is owned by the cascade
	// and overwritten every interval.
	Island Config
	// Trace, when set, records one eargm.interval span per Update with
	// an eargm.island child per island (created in island order),
	// annotated with the apportioned budget, observed draw and
	// resulting cap. Span times are the logical interval time, so
	// cascade traces replay byte-identically.
	Trace *trace.Buffer
}

// Defaults fills unset fields.
func (c CascadeConfig) Defaults() CascadeConfig {
	if c.ReserveFrac == 0 {
		c.ReserveFrac = 0.2
	}
	return c
}

// Validate reports whether the configuration is usable.
func (c CascadeConfig) Validate() error {
	switch {
	case c.BudgetW <= 0:
		return fmt.Errorf("eargm: cascade budget must be positive, got %g", c.BudgetW)
	case c.ReserveFrac <= 0 || c.ReserveFrac > 1:
		return fmt.Errorf("eargm: reserve fraction %g outside (0,1]", c.ReserveFrac)
	}
	return nil
}

// Cascade runs one Manager per island under a shared cluster budget.
type Cascade struct {
	cfg     CascadeConfig
	islands []Island
	mgrs    []*Manager
	budgets []float64
	tel     cascadeTel
	tracer  *trace.Tracer
}

// NewCascade builds a cascade over the given islands. Island names
// must be unique and non-empty, and every island needs a source.
func NewCascade(cfg CascadeConfig, islands []Island) (*Cascade, error) {
	cfg = cfg.Defaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(islands) == 0 {
		return nil, fmt.Errorf("eargm: cascade needs at least one island")
	}
	seen := map[string]bool{}
	for _, isl := range islands {
		switch {
		case isl.Name == "":
			return nil, fmt.Errorf("eargm: island needs a name")
		case isl.Src == nil:
			return nil, fmt.Errorf("eargm: island %s needs a power source", isl.Name)
		case seen[isl.Name]:
			return nil, fmt.Errorf("eargm: duplicate island name %s", isl.Name)
		}
		seen[isl.Name] = true
	}
	c := &Cascade{
		cfg:     cfg,
		islands: islands,
		mgrs:    make([]*Manager, len(islands)),
		budgets: make([]float64, len(islands)),
		tel:     newCascadeTel(cfg.Island.Telemetry, islands),
		tracer:  trace.New("eargm", cfg.Trace),
	}
	for i := range islands {
		mcfg := cfg.Island
		// Seed every island with the equal split; the first Update
		// re-apportions from live draw.
		mcfg.BudgetW = cfg.BudgetW / float64(len(islands))
		m, err := New(mcfg)
		if err != nil {
			return nil, fmt.Errorf("eargm: island %s: %w", islands[i].Name, err)
		}
		c.mgrs[i] = m
		c.budgets[i] = mcfg.BudgetW
	}
	return c, nil
}

// Interval returns the islands' shared control period.
func (c *Cascade) Interval() float64 { return c.mgrs[0].Interval() }

// apportion splits the cluster budget across islands given their
// current draws: the reserved fraction equally, the rest proportional
// to draw (equally again when the cluster reads zero).
func (c *Cascade) apportion(draws []float64) []float64 {
	n := float64(len(c.islands))
	total := 0.0
	for _, d := range draws {
		total += d
	}
	out := make([]float64, len(draws))
	reserve := c.cfg.ReserveFrac * c.cfg.BudgetW / n
	pool := (1 - c.cfg.ReserveFrac) * c.cfg.BudgetW
	for i, d := range draws {
		if total > 0 {
			out[i] = reserve + pool*(d/total)
		} else {
			out[i] = reserve + pool/n
		}
	}
	return out
}

// Update runs one cascaded control interval: poll every island's
// source, re-apportion the cluster budget from the observed draws,
// then ratchet each island manager against its own nodes under its
// new budget. It returns the per-island caps in island order.
func (c *Cascade) Update(now float64) ([]int, error) {
	sp := c.tracer.Root(spanGMInterval, now)
	defer func() { sp.End(now) }()
	powers := make([][]float64, len(c.islands))
	draws := make([]float64, len(c.islands))
	for i, isl := range c.islands {
		powers[i] = isl.Src.NodePowers()
		for _, p := range powers[i] {
			draws[i] += p
		}
	}
	c.budgets = c.apportion(draws)
	caps := make([]int, len(c.islands))
	for i, m := range c.mgrs {
		isp := sp.Child(spanGMIsland, now)
		isp.Attr("island", c.islands[i].Name)
		if err := m.SetBudget(c.budgets[i]); err != nil {
			isp.End(now)
			return nil, fmt.Errorf("eargm: island %s: %w", c.islands[i].Name, err)
		}
		cap, err := m.Update(now, powers[i])
		if err != nil {
			isp.End(now)
			return nil, fmt.Errorf("eargm: island %s: %w", c.islands[i].Name, err)
		}
		caps[i] = cap
		c.tel.island(i, c.budgets[i], draws[i], cap)
		isp.Attr("budget_w", strconv.FormatFloat(c.budgets[i], 'g', -1, 64)).
			Attr("draw_w", strconv.FormatFloat(draws[i], 'g', -1, 64)).
			Attr("cap", strconv.Itoa(cap)).
			End(now)
	}
	c.tel.updates.Inc()
	return caps, nil
}

// Drive runs steps control intervals starting at start seconds and
// returns the cap trace, one row per interval in island order: the
// headless cascaded-EARGM daemon loop.
func (c *Cascade) Drive(start float64, steps int) ([][]int, error) {
	if steps < 0 {
		return nil, fmt.Errorf("eargm: negative step count %d", steps)
	}
	rows := make([][]int, 0, steps)
	for i := 0; i < steps; i++ {
		caps, err := c.Update(start + float64(i)*c.Interval())
		if err != nil {
			return rows, err
		}
		rows = append(rows, caps)
	}
	return rows, nil
}

// Budgets returns the most recent per-island budget split, in island
// order.
func (c *Cascade) Budgets() []float64 {
	out := make([]float64, len(c.budgets))
	copy(out, c.budgets)
	return out
}

// Caps returns the current per-island ceilings, in island order.
func (c *Cascade) Caps() []int {
	out := make([]int, len(c.mgrs))
	for i, m := range c.mgrs {
		out[i] = m.Cap()
	}
	return out
}

// Managers exposes the island managers, in island order (for stats
// and event traces).
func (c *Cascade) Managers() []*Manager { return c.mgrs }

// Names returns the island names, in island order.
func (c *Cascade) Names() []string {
	out := make([]string, len(c.islands))
	for i, isl := range c.islands {
		out[i] = isl.Name
	}
	return out
}
