package eargm

import (
	"testing"
	"testing/quick"
)

func testConfig() Config {
	return Config{BudgetW: 1300, MaxCapPstate: 8}
}

func TestConfigDefaultsAndValidation(t *testing.T) {
	c := testConfig().Defaults()
	if c.ReleaseMark != 0.92 || c.IntervalSec != 5 || c.MinCapPstate != 1 || c.SettleIntervals != 2 {
		t.Errorf("defaults = %+v", c)
	}
	muts := []func(*Config){
		func(c *Config) { c.BudgetW = 0 },
		func(c *Config) { c.ReleaseMark = 1.0 },
		func(c *Config) { c.ReleaseMark = -0.1 },
		func(c *Config) { c.IntervalSec = -1 },
		func(c *Config) { c.MaxCapPstate = 0 },
		func(c *Config) { c.MinCapPstate = -1; c.MaxCapPstate = 5 },
		func(c *Config) { c.SettleIntervals = -1 },
	}
	for i, mut := range muts {
		c := testConfig().Defaults()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d: expected error", i)
		}
	}
	if _, err := New(Config{}); err == nil {
		t.Error("expected error for zero config")
	}
}

func TestRatchetDeepensWhileOverBudget(t *testing.T) {
	m, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	over := []float64{400, 400, 400, 400} // 1600 > 1300
	caps := []int{}
	for i := 0; i < 10; i++ {
		cap, err := m.Update(float64(i)*5, over)
		if err != nil {
			t.Fatal(err)
		}
		caps = append(caps, cap)
	}
	// First over-budget interval imposes the min cap (1), then one
	// deeper per interval, saturating at MaxCapPstate.
	want := []int{1, 2, 3, 4, 5, 6, 7, 8, 8, 8}
	for i := range want {
		if caps[i] != want[i] {
			t.Fatalf("caps = %v, want %v", caps, want)
		}
	}
}

func TestHysteresisRelease(t *testing.T) {
	m, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Drive the cap to 3.
	for i := 0; i < 3; i++ {
		if _, err := m.Update(float64(i), []float64{400, 400, 400, 400}); err != nil {
			t.Fatal(err)
		}
	}
	if m.Cap() != 3 {
		t.Fatalf("cap = %d, want 3", m.Cap())
	}
	// Power in the dead band (between release mark and budget): hold.
	mid := []float64{310, 310, 310, 310} // 1240, release mark is 1196
	for i := 0; i < 5; i++ {
		if _, err := m.Update(10+float64(i), mid); err != nil {
			t.Fatal(err)
		}
	}
	if m.Cap() != 3 {
		t.Errorf("cap moved in dead band: %d", m.Cap())
	}
	// Well below release mark: relax one step per SettleIntervals.
	low := []float64{250, 250, 250, 250} // 1000
	steps := 0
	for i := 0; i < 12 && m.Cap() != 0; i++ {
		before := m.Cap()
		if _, err := m.Update(100+float64(i), low); err != nil {
			t.Fatal(err)
		}
		if m.Cap() != before {
			steps++
		}
	}
	if m.Cap() != 0 {
		t.Errorf("cap not fully released: %d", m.Cap())
	}
	if steps != 3 {
		t.Errorf("release steps = %d, want 3 (3 -> 2 -> 1 -> released)", steps)
	}
}

func TestReleaseRequiresSettling(t *testing.T) {
	m, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Update(0, []float64{1400}); err != nil {
		t.Fatal(err)
	}
	if m.Cap() != 1 {
		t.Fatal("cap not imposed")
	}
	// One low interval is not enough (SettleIntervals = 2).
	if _, err := m.Update(5, []float64{900}); err != nil {
		t.Fatal(err)
	}
	if m.Cap() != 1 {
		t.Errorf("cap released after a single low interval")
	}
	// An over-budget interval resets the settle counter.
	if _, err := m.Update(10, []float64{1400}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Update(15, []float64{900}); err != nil {
		t.Fatal(err)
	}
	if m.Cap() == 0 {
		t.Error("settle counter not reset by over-budget interval")
	}
}

func TestUpdateRejectsNegativePower(t *testing.T) {
	m, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Update(0, []float64{-1}); err == nil {
		t.Error("expected error for negative power")
	}
}

func TestStatsAndEvents(t *testing.T) {
	m, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Update(5, []float64{1500}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Update(10, []float64{1000}); err != nil {
		t.Fatal(err)
	}
	s := m.Stats()
	if s.Intervals != 2 || s.OverBudget != 1 || s.PeakW != 1500 {
		t.Errorf("stats = %+v", s)
	}
	if s.OverBudgetPct != 50 {
		t.Errorf("over-budget pct = %v", s.OverBudgetPct)
	}
	evs := m.Events()
	if len(evs) != 2 || !evs[0].Deepened || evs[0].Cap != 1 {
		t.Errorf("events = %+v", evs)
	}
}

func TestCapBoundsProperty(t *testing.T) {
	// Whatever power sequence arrives, the cap stays within
	// [0] ∪ [MinCapPstate, MaxCapPstate].
	fn := func(seq []uint16) bool {
		m, err := New(testConfig())
		if err != nil {
			return false
		}
		for i, v := range seq {
			cap, err := m.Update(float64(i), []float64{float64(v)})
			if err != nil {
				return false
			}
			if cap != 0 && (cap < 1 || cap > 8) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Error(err)
	}
}
