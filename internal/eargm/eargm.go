// Package eargm implements EAR's global manager: the cluster-level
// energy-control service (the "energy control" pillar of the EAR
// framework alongside accounting and optimisation). It watches total
// cluster DC power at a fixed period and enforces a site power budget
// by raising or releasing a CPU pstate ceiling that the node daemons
// apply under whatever the per-job energy policies request.
//
// The controller is a bounded ratchet with hysteresis: each interval
// over budget deepens the cap one pstate (down to a configured floor);
// the cap is released one step at a time only after the cluster has
// stayed below the release watermark, preventing oscillation around the
// budget.
package eargm

import (
	"fmt"

	"goear/internal/telemetry"
)

// Config parameterises the manager.
type Config struct {
	// BudgetW is the cluster DC power budget in watts.
	BudgetW float64
	// ReleaseMark is the fraction of the budget below which the cap is
	// relaxed one step (default 0.92). Hysteresis between BudgetW and
	// ReleaseMark·BudgetW keeps the controller from oscillating.
	ReleaseMark float64
	// IntervalSec is the control period (default 5 s; EARGM's real
	// period is seconds to minutes).
	IntervalSec float64
	// MaxCapPstate is the deepest ceiling the manager may impose.
	MaxCapPstate int
	// MinCapPstate is the shallowest non-released ceiling (default 1,
	// the nominal frequency: the first action is disabling turbo-level
	// requests).
	MinCapPstate int
	// SettleIntervals is how many consecutive below-release intervals
	// are required before relaxing (default 2).
	SettleIntervals int
	// Telemetry, when set, exposes the manager's activity as
	// goear_eargm_* instruments and logs ratchet transitions to that
	// set's event recorder. Falls back to the process-global telemetry
	// set; nil when that is disabled too, making every instrument a
	// no-op.
	Telemetry *telemetry.Set
}

// Defaults fills unset fields.
func (c Config) Defaults() Config {
	if c.ReleaseMark == 0 {
		c.ReleaseMark = 0.92
	}
	if c.IntervalSec == 0 {
		c.IntervalSec = 5
	}
	if c.MinCapPstate == 0 {
		c.MinCapPstate = 1
	}
	if c.SettleIntervals == 0 {
		c.SettleIntervals = 2
	}
	return c
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.BudgetW <= 0:
		return fmt.Errorf("eargm: budget must be positive, got %g", c.BudgetW)
	case c.ReleaseMark <= 0 || c.ReleaseMark >= 1:
		return fmt.Errorf("eargm: release mark %g outside (0,1)", c.ReleaseMark)
	case c.IntervalSec <= 0:
		return fmt.Errorf("eargm: interval must be positive")
	case c.MaxCapPstate < c.MinCapPstate:
		return fmt.Errorf("eargm: max cap pstate %d below min %d", c.MaxCapPstate, c.MinCapPstate)
	case c.MinCapPstate < 1:
		return fmt.Errorf("eargm: min cap pstate must be >= 1")
	case c.SettleIntervals < 1:
		return fmt.Errorf("eargm: settle intervals must be >= 1")
	}
	return nil
}

// Event records one control decision for inspection.
type Event struct {
	TimeSec  float64
	TotalW   float64
	Cap      int // 0 = uncapped
	Deepened bool
	Relaxed  bool
}

// Manager is the global power manager. It implements sim.PowerManager.
type Manager struct {
	cfg Config
	tel gmTel

	cap        int // 0 = released
	belowCount int
	events     []Event
	peakW      float64
	overs      int
	intervals  int
}

// New builds a manager.
func New(cfg Config) (*Manager, error) {
	cfg = cfg.Defaults()
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	ts := cfg.Telemetry
	if ts == nil {
		ts = telemetry.Default()
	}
	return &Manager{cfg: cfg, tel: newGMTel(ts)}, nil
}

// Interval implements sim.PowerManager.
func (m *Manager) Interval() float64 { return m.cfg.IntervalSec }

// Update implements sim.PowerManager: ratchet logic over the summed
// node powers.
func (m *Manager) Update(now float64, nodePowerW []float64) (int, error) {
	total := 0.0
	for _, p := range nodePowerW {
		if p < 0 {
			return 0, fmt.Errorf("eargm: negative node power %g", p)
		}
		total += p
	}
	m.intervals++
	if total > m.peakW {
		m.peakW = total
	}
	ev := Event{TimeSec: now, TotalW: total, Cap: m.cap}

	switch {
	case total > m.cfg.BudgetW:
		m.overs++
		m.belowCount = 0
		switch {
		case m.cap == 0:
			m.cap = m.cfg.MinCapPstate
			ev.Deepened = true
		case m.cap < m.cfg.MaxCapPstate:
			m.cap++
			ev.Deepened = true
		}
	case total < m.cfg.ReleaseMark*m.cfg.BudgetW && m.cap != 0:
		m.belowCount++
		if m.belowCount >= m.cfg.SettleIntervals {
			m.belowCount = 0
			if m.cap > m.cfg.MinCapPstate {
				m.cap--
			} else {
				m.cap = 0
			}
			ev.Relaxed = true
		}
	default:
		m.belowCount = 0
	}

	ev.Cap = m.cap
	m.events = append(m.events, ev)
	m.tel.intervals.Inc()
	m.tel.cap.Set(float64(m.cap))
	m.tel.power.Set(total)
	switch {
	case ev.Deepened:
		m.tel.deepened.Inc()
		m.tel.transition(now, "deepen", m.cap, total)
	case ev.Relaxed:
		m.tel.relaxed.Inc()
		m.tel.transition(now, "relax", m.cap, total)
	}
	return m.cap, nil
}

// Cap returns the current ceiling (0 = released).
func (m *Manager) Cap() int { return m.cap }

// Budget returns the current power budget in watts.
func (m *Manager) Budget() float64 { return m.cfg.BudgetW }

// SetBudget re-targets the manager to a new power budget, keeping the
// ratchet state (cap, settle count) intact. A cascaded deployment
// re-apportions island budgets every interval as cluster draw shifts;
// resetting the ratchet each time would defeat the hysteresis.
func (m *Manager) SetBudget(w float64) error {
	if w <= 0 {
		return fmt.Errorf("eargm: budget must be positive, got %g", w)
	}
	m.cfg.BudgetW = w
	return nil
}

// Events returns the decision trace.
func (m *Manager) Events() []Event { return m.events }

// Stats summarises the run for reporting.
type Stats struct {
	Intervals     int
	OverBudget    int
	PeakW         float64
	FinalCap      int
	OverBudgetPct float64
}

// Stats returns run statistics.
func (m *Manager) Stats() Stats {
	s := Stats{
		Intervals:  m.intervals,
		OverBudget: m.overs,
		PeakW:      m.peakW,
		FinalCap:   m.cap,
	}
	if m.intervals > 0 {
		s.OverBudgetPct = 100 * float64(m.overs) / float64(m.intervals)
	}
	return s
}
