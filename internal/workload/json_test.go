package workload

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestCurveSpecBuild(t *testing.T) {
	cases := []struct {
		spec CurveSpec
		in   uint64
		want uint64
	}{
		{CurveSpec{Type: "always_max", Max: 24}, 10, 24},
		{CurveSpec{Type: "follow_core", Offset: -2}, 22, 20},
		{CurveSpec{Type: "step", Threshold: 24, Hi: 24, Lo: 15}, 23, 15},
		{CurveSpec{Type: "step", Threshold: 24, Hi: 24, Lo: 15}, 24, 24},
		{CurveSpec{Type: "fixed", Ratio: 20}, 5, 20},
	}
	for i, c := range cases {
		curve, err := c.spec.Build()
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got := curve(c.in); got != c.want {
			t.Errorf("case %d: curve(%d) = %d, want %d", i, c.in, got, c.want)
		}
	}
}

func TestCurveSpecErrors(t *testing.T) {
	bads := []CurveSpec{
		{Type: "bogus"},
		{Type: ""},
		{Type: "always_max"},          // missing max
		{Type: "step", Hi: 24},        // missing threshold
		{Type: "step", Threshold: 24}, // missing hi
		{Type: "fixed"},               // missing ratio
	}
	for i, b := range bads {
		if _, err := b.Build(); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestTemplateIsValidAndCalibrates(t *testing.T) {
	f := Template()
	s, err := f.Spec()
	if err != nil {
		t.Fatal(err)
	}
	cal, err := s.Calibrate()
	if err != nil {
		t.Fatal(err)
	}
	if cal.Name != "my-app" || len(cal.Segs) != 1 {
		t.Errorf("calibrated = %s with %d segments", cal.Name, len(cal.Segs))
	}
}

func TestLoadSpecRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(Template()); err != nil {
		t.Fatal(err)
	}
	s, err := LoadSpec(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "my-app" || s.Platform.Name != "SD530" {
		t.Errorf("loaded = %s on %s", s.Name, s.Platform.Name)
	}
	if s.FreqBias != 0.992 || s.IMCBias != 0.996 {
		t.Errorf("bias defaults not applied: %v %v", s.FreqBias, s.IMCBias)
	}
}

func TestLoadSpecRejects(t *testing.T) {
	cases := []string{
		"not json",
		`{"unknown_field": 1}`,
		`{"name":"x","platform":"Cray","nodes":1}`, // unknown platform
		`{"name":"x","nodes":1,"active_cores":40,"target_time_sec":10,
		  "iter_period_sec":1,
		  "default_segment":{"target_cpi":0.5,"target_gbs":10,"target_power_w":300},
		  "hw_uncore":{"type":"bogus"}}`, // bad curve
		`{"name":"","nodes":0,"hw_uncore":{"type":"always_max","max":24}}`, // fails Validate
	}
	for i, c := range cases {
		if _, err := LoadSpec(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestGPUPlatformSpecFile(t *testing.T) {
	f := Template()
	f.Platform = "GPUNode"
	f.Class = string(Accelerator)
	f.ActiveCores = 1
	f.ProcsPerNode = 1
	f.ThreadsPerProc = 1
	f.GPUPowerW = 100
	f.DefaultSegment = Segment{TargetCPI: 0.5, TargetGBs: 0.1, TargetPowerW: 300, OverlapHint: 0.5}
	s, err := f.Spec()
	if err != nil {
		t.Fatal(err)
	}
	if s.Platform.Name != "GPUNode" {
		t.Errorf("platform = %s", s.Platform.Name)
	}
	if _, err := s.Calibrate(); err != nil {
		t.Fatal(err)
	}
}
