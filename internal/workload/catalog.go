package workload

import (
	"fmt"
	"sort"

	"goear/internal/cpu"
	"goear/internal/mem"
	"goear/internal/perf"
	"goear/internal/power"
	"goear/internal/uncore"
)

// SD530 returns the compute-node platform of the paper: Lenovo
// ThinkSystem SD530 with 2× Xeon Gold 6148 and 12× DDR4-2400.
func SD530() Platform {
	return Platform{
		Name:    "SD530",
		Machine: perf.Machine{CPU: cpu.XeonGold6148(), Mem: mem.DDR4SD530()},
		Power:   power.SD530Coeffs(),
	}
}

// CascadeLake returns a portability platform: 2× Xeon Gold 6252
// (Cascade Lake-SP, 24 cores at 2.1 GHz nominal) with the same memory
// subsystem. It carries no calibrated paper workloads; it exists so
// users can study the policies on a second CPU generation.
func CascadeLake() Platform {
	return Platform{
		Name:    "CascadeLake",
		Machine: perf.Machine{CPU: cpu.XeonGold6252(), Mem: mem.DDR4SD530()},
		Power:   power.SD530Coeffs(),
	}
}

// GPUNode returns the CUDA platform: 2× Xeon Gold 6142M with NVIDIA
// Tesla V100s (one used), same uncore range.
func GPUNode() Platform {
	return Platform{
		Name:    "GPUNode",
		Machine: perf.Machine{CPU: cpu.XeonGold6142M(), Mem: mem.DDR4SD530()},
		Power:   power.GPUNodeCoeffs(),
	}
}

// Catalogue names. Kernel entries reproduce Table II, the motivation
// entries Table I, and the application entries Table V.
const (
	BTMZC       = "BT-MZ.C"     // OpenMP kernel, single node
	SPMZC       = "SP-MZ.C"     // OpenMP kernel, single node
	BTCUDA      = "BT.CUDA.D"   // CUDA kernel, busy-wait CPU
	LUCUDA      = "LU.CUDA.D"   // CUDA kernel, busy-wait CPU
	DGEMM       = "DGEMM"       // MKL, pure AVX512
	BTMZMotiv   = "BT-MZ.C.mpi" // motivation: 160 ranks, 4 nodes
	LUDMotiv    = "LU.D.omp"    // motivation: 2 nodes, 40 threads each
	BQCD        = "BQCD"        // lattice QCD, 4 nodes
	BTMZD       = "BT-MZ.D"     // NAS BT-MZ class D, 4 nodes
	GromacsI    = "GROMACS(I)"  // ion_channel, 4 nodes
	GromacsII   = "GROMACS(II)" // lignocellulose-rf, 16 nodes
	HPCG        = "HPCG"        // conjugate gradients, memory bound
	POP         = "POP"         // parallel ocean model, 10 nodes
	DUMSES      = "DUMSES"      // MHD code, 13 nodes
	AFiD        = "AFiD"        // Rayleigh-Benard flows, 15 nodes
	PhaseChange = "PhaseChange" // synthetic two-phase app for testing
	// PhaseChangeMild shifts CPI by only ~13% mid-run: above a 10%
	// signature-change threshold but below 15%, so it separates EARL's
	// re-application behaviour across thresholds (ablation A5).
	PhaseChangeMild = "PhaseChangeMild"
)

// Catalog returns every workload, calibration targets taken from the
// paper's Tables I, II and V. The HWUncore curves encode the silicon
// heuristic's observed settling points (Tables IV and VI, ME column);
// see the package comment of internal/uncore for why these are
// per-workload inputs rather than a single global heuristic.
func Catalog() []Spec {
	sd := SD530()
	gpu := GPUNode()
	specs := []Spec{
		{
			Name: BTMZC, Class: CPUBound, ProgModel: "OpenMP", Platform: sd,
			Nodes: 1, ProcsPerNode: 1, ThreadsPerProc: 40, ActiveCores: 40,
			TargetTimeSec: 145,
			DefaultSegment: Segment{
				TargetCPI: 0.39, TargetGBs: 28, TargetPowerW: 332, OverlapHint: 0.70,
			},
			IterPeriodSec: 1.2, MPICallsPerIter: 0,
			HWUncore: uncore.AlwaysMax(24),
			FreqBias: 0.992, IMCBias: 0.996,
		},
		{
			Name: SPMZC, Class: CPUBound, ProgModel: "OpenMP", Platform: sd,
			Nodes: 1, ProcsPerNode: 1, ThreadsPerProc: 40, ActiveCores: 40,
			TargetTimeSec: 264,
			DefaultSegment: Segment{
				TargetCPI: 0.53, TargetGBs: 78, TargetPowerW: 358,
				OverlapHint: 0.85, CoreCPIFrac: 0.80,
			},
			IterPeriodSec: 1.1, MPICallsPerIter: 0,
			HWUncore: uncore.AlwaysMax(24),
			FreqBias: 0.992, IMCBias: 0.996,
		},
		{
			Name: BTCUDA, Class: Accelerator, ProgModel: "CUDA", Platform: gpu,
			Nodes: 1, ProcsPerNode: 1, ThreadsPerProc: 1, ActiveCores: 1,
			TargetTimeSec: 465,
			DefaultSegment: Segment{
				TargetCPI: 0.49, TargetGBs: 0.09, TargetPowerW: 305, OverlapHint: 0.5,
			},
			IterPeriodSec: 2.0, MPICallsPerIter: 0,
			// The busy-wait host core drives the heuristic: at the
			// turbo/nominal ratio the uncore stays up; once the policy
			// lowers the core the heuristic collapses to ~1.5 GHz
			// (Table IV: 2.39 under no policy, 1.51 under ME).
			HWUncore:  uncore.Step(26, 24, 15),
			GPUPowerW: 105,
			FreqBias:  0.938, IMCBias: 0.996,
		},
		{
			Name: LUCUDA, Class: Accelerator, ProgModel: "CUDA", Platform: gpu,
			Nodes: 1, ProcsPerNode: 1, ThreadsPerProc: 1, ActiveCores: 1,
			TargetTimeSec: 256,
			DefaultSegment: Segment{
				TargetCPI: 0.54, TargetGBs: 0.19, TargetPowerW: 290, OverlapHint: 0.5,
			},
			IterPeriodSec: 1.6, MPICallsPerIter: 0,
			// Table IV: the heuristic held 2.39 GHz for LU.CUDA even
			// under ME — the suboptimal case explicit UFS fixes.
			HWUncore:  uncore.AlwaysMax(24),
			GPUPowerW: 95,
			FreqBias:  0.777, IMCBias: 0.996,
		},
		{
			Name: DGEMM, Class: CPUBound, ProgModel: "MKL", Platform: sd,
			Nodes: 1, ProcsPerNode: 1, ThreadsPerProc: 40, ActiveCores: 40,
			TargetTimeSec: 160,
			DefaultSegment: Segment{
				TargetCPI: 0.45, TargetGBs: 98, TargetPowerW: 369,
				VPI: 1.0, OverlapHint: 0.90,
			},
			IterPeriodSec: 1.3, MPICallsPerIter: 0,
			// Pure AVX512 pins the cores at the 2.2 GHz licence; the
			// heuristic follows the fastest core down (Table IV: 1.98).
			HWUncore: uncore.FollowCore(-2),
			FreqBias: 0.991, IMCBias: 0.996,
		},
		{
			Name: BTMZMotiv, Class: CPUBound, ProgModel: "MPI", Platform: sd,
			Nodes: 4, ProcsPerNode: 40, ThreadsPerProc: 1, ActiveCores: 40,
			TargetTimeSec: 150,
			DefaultSegment: Segment{
				TargetCPI: 0.38, TargetGBs: 10.19, TargetPowerW: 330, OverlapHint: 0.70,
			},
			IterPeriodSec: 1.2, MPICallsPerIter: 8,
			HWUncore: uncore.AlwaysMax(24),
			FreqBias: 0.992, IMCBias: 0.996,
		},
		{
			Name: LUDMotiv, Class: MemBound, ProgModel: "MPI+OpenMP", Platform: sd,
			Nodes: 2, ProcsPerNode: 1, ThreadsPerProc: 40, ActiveCores: 40,
			TargetTimeSec: 300,
			DefaultSegment: Segment{
				TargetCPI: 1.04, TargetGBs: 75.93, TargetPowerW: 340,
				OverlapHint: 0.90, CoreCPIFrac: 0.60,
			},
			IterPeriodSec: 1.5, MPICallsPerIter: 6,
			HWUncore: uncore.AlwaysMax(24),
			FreqBias: 0.992, IMCBias: 0.996,
		},
		{
			Name: BQCD, Class: CPUBound, ProgModel: "MPI+OpenMP", Platform: sd,
			Nodes: 4, ProcsPerNode: 10, ThreadsPerProc: 4, ActiveCores: 40,
			TargetTimeSec: 130.54,
			DefaultSegment: Segment{
				TargetCPI: 0.68, TargetGBs: 10.98, TargetPowerW: 302.15,
				OverlapHint: 0.75, CoreCPIFrac: 0.75,
			},
			// The HMC outer step wraps three passes of a 4-call solver
			// loop: nested structure Dynais resolves at two levels.
			IterPeriodSec: 1.0, MPICallsPerIter: 4, InnerLoopsPerIter: 3,
			HWUncore: uncore.AlwaysMax(24),
			FreqBias: 0.989, IMCBias: 0.996,
		},
		{
			Name: BTMZD, Class: CPUBound, ProgModel: "MPI", Platform: sd,
			Nodes: 4, ProcsPerNode: 40, ThreadsPerProc: 1, ActiveCores: 40,
			TargetTimeSec: 465.01,
			DefaultSegment: Segment{
				TargetCPI: 0.38, TargetGBs: 6.60, TargetPowerW: 320.74,
				OverlapHint: 0.70, CoreCPIFrac: 0.83,
			},
			IterPeriodSec: 2.3, MPICallsPerIter: 8,
			HWUncore: uncore.AlwaysMax(24),
			FreqBias: 0.992, IMCBias: 0.996,
		},
		{
			Name: GromacsI, Class: CPUBound, ProgModel: "MPI", Platform: sd,
			Nodes: 4, ProcsPerNode: 40, ThreadsPerProc: 1, ActiveCores: 40,
			TargetTimeSec: 313.92,
			DefaultSegment: Segment{
				TargetCPI: 0.48, TargetGBs: 10.39, TargetPowerW: 319.35,
				VPI: 0.15, OverlapHint: 0.75, CoreCPIFrac: 0.70,
			},
			IterPeriodSec: 1.0, MPICallsPerIter: 16,
			// Table VI: heuristic settles at ~2.0 GHz once the policy
			// moves the cores off nominal.
			HWUncore: uncore.Step(24, 24, 20),
			FreqBias: 0.95, IMCBias: 0.996,
		},
		{
			Name: GromacsII, Class: CPUBound, ProgModel: "MPI", Platform: sd,
			Nodes: 16, ProcsPerNode: 40, ThreadsPerProc: 1, ActiveCores: 40,
			TargetTimeSec: 390.60,
			DefaultSegment: Segment{
				TargetCPI: 0.63, TargetGBs: 13.34, TargetPowerW: 315.48,
				VPI: 0.15, OverlapHint: 0.75,
			},
			IterPeriodSec: 1.0, MPICallsPerIter: 16,
			// Table VI: the heuristic drops all the way to ~1.45 GHz
			// under ME for this input.
			HWUncore: uncore.Step(24, 24, 14),
			FreqBias: 0.954, IMCBias: 0.996,
		},
		{
			Name: HPCG, Class: MemBound, ProgModel: "MPI", Platform: sd,
			Nodes: 4, ProcsPerNode: 40, ThreadsPerProc: 1, ActiveCores: 40,
			TargetTimeSec: 169.61,
			DefaultSegment: Segment{
				TargetCPI: 3.13, TargetGBs: 177.45, TargetPowerW: 339.88,
				OverlapHint: 0.95, CoreCPIFrac: 0.10,
			},
			IterPeriodSec: 1.4, MPICallsPerIter: 10,
			HWUncore: uncore.AlwaysMax(24),
			FreqBias: 0.992, IMCBias: 0.996,
		},
		{
			Name: POP, Class: MemBound, ProgModel: "MPI", Platform: sd,
			Nodes: 10, ProcsPerNode: 39, ThreadsPerProc: 1, ActiveCores: 39,
			TargetTimeSec: 1533.03,
			DefaultSegment: Segment{
				TargetCPI: 0.72, TargetGBs: 100.66, TargetPowerW: 347.18,
				OverlapHint: 0.90, CoreCPIFrac: 0.42,
			},
			IterPeriodSec: 2.0, MPICallsPerIter: 20,
			HWUncore: uncore.AlwaysMax(24),
			FreqBias: 0.992, IMCBias: 0.98,
		},
		{
			Name: DUMSES, Class: MemBound, ProgModel: "MPI+OpenMP", Platform: sd,
			Nodes: 13, ProcsPerNode: 40, ThreadsPerProc: 1, ActiveCores: 40,
			TargetTimeSec: 813.21,
			DefaultSegment: Segment{
				TargetCPI: 1.08, TargetGBs: 119.07, TargetPowerW: 333.69,
				OverlapHint: 0.90, CoreCPIFrac: 0.32,
			},
			IterPeriodSec: 1.6, MPICallsPerIter: 14,
			HWUncore: uncore.AlwaysMax(24),
			FreqBias: 0.992, IMCBias: 0.996,
		},
		{
			Name: AFiD, Class: MemBound, ProgModel: "MPI", Platform: sd,
			Nodes: 15, ProcsPerNode: 39, ThreadsPerProc: 1, ActiveCores: 39,
			TargetTimeSec: 268.22,
			DefaultSegment: Segment{
				TargetCPI: 0.77, TargetGBs: 115.20, TargetPowerW: 333.65,
				OverlapHint: 0.90, CoreCPIFrac: 0.42,
			},
			IterPeriodSec: 1.1, MPICallsPerIter: 12,
			HWUncore: uncore.AlwaysMax(24),
			FreqBias: 0.992, IMCBias: 0.98,
		},
		{
			Name: PhaseChangeMild, Class: CPUBound, ProgModel: "MPI", Platform: sd,
			Nodes: 1, ProcsPerNode: 40, ThreadsPerProc: 1, ActiveCores: 40,
			TargetTimeSec: 240,
			DefaultSegment: Segment{
				TargetCPI: 0.60, TargetGBs: 30, TargetPowerW: 330, OverlapHint: 0.75,
			},
			Segments: []Segment{
				{FracIters: 0.5, TargetCPI: 0.60, TargetGBs: 30, TargetPowerW: 330, OverlapHint: 0.75},
				{FracIters: 0.5, TargetCPI: 0.68, TargetGBs: 32, TargetPowerW: 334, OverlapHint: 0.75},
			},
			IterPeriodSec: 1.0, MPICallsPerIter: 8,
			HWUncore: uncore.AlwaysMax(24),
			FreqBias: 0.992, IMCBias: 0.996,
		},
		{
			// Synthetic application whose behaviour flips mid-run from
			// CPU bound to memory bound; exercises EARL's signature-
			// change detection and the policy restart path (§V-B).
			Name: PhaseChange, Class: MemBound, ProgModel: "MPI", Platform: sd,
			Nodes: 1, ProcsPerNode: 40, ThreadsPerProc: 1, ActiveCores: 40,
			TargetTimeSec: 240,
			DefaultSegment: Segment{
				TargetCPI: 0.45, TargetGBs: 20, TargetPowerW: 330, OverlapHint: 0.7,
			},
			Segments: []Segment{
				{FracIters: 0.5, TargetCPI: 0.45, TargetGBs: 20, TargetPowerW: 330, OverlapHint: 0.7},
				{FracIters: 0.5, TargetCPI: 2.2, TargetGBs: 150, TargetPowerW: 340, OverlapHint: 0.94},
			},
			IterPeriodSec: 1.0, MPICallsPerIter: 8,
			HWUncore: uncore.AlwaysMax(24),
			FreqBias: 0.992, IMCBias: 0.996,
		},
	}
	sort.SliceStable(specs, func(i, j int) bool { return specs[i].Name < specs[j].Name })
	return specs
}

// Lookup returns the catalogue entry with the given name.
func Lookup(name string) (Spec, error) {
	for _, s := range Catalog() {
		if s.Name == name {
			return s, nil
		}
	}
	return Spec{}, fmt.Errorf("workload: unknown workload %q", name)
}

// Kernels returns the single-node kernel entries of Table II, in the
// paper's row order.
func Kernels() []string {
	return []string{BTMZC, SPMZC, BTCUDA, LUCUDA, DGEMM}
}

// Applications returns the MPI application entries of Table V, in the
// paper's row order.
func Applications() []string {
	return []string{BQCD, BTMZD, GromacsI, GromacsII, HPCG, POP, DUMSES, AFiD}
}
