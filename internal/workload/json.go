package workload

import (
	"encoding/json"
	"fmt"
	"io"

	"goear/internal/uncore"
)

// CurveSpec is the serialisable form of an uncore.Curve, so external
// workload definitions can describe the hardware heuristic's response.
type CurveSpec struct {
	// Type selects the curve family: "always_max", "follow_core",
	// "step" or "fixed".
	Type string `json:"type"`
	// Max is the ratio for always_max.
	Max uint64 `json:"max,omitempty"`
	// Offset is follow_core's signed ratio offset.
	Offset int64 `json:"offset,omitempty"`
	// Threshold, Hi, Lo parameterise step.
	Threshold uint64 `json:"threshold,omitempty"`
	Hi        uint64 `json:"hi,omitempty"`
	Lo        uint64 `json:"lo,omitempty"`
	// Ratio is fixed's pin point.
	Ratio uint64 `json:"ratio,omitempty"`
}

// Build constructs the runtime curve.
func (c CurveSpec) Build() (uncore.Curve, error) {
	switch c.Type {
	case "always_max":
		if c.Max == 0 {
			return nil, fmt.Errorf("workload: always_max curve needs max")
		}
		return uncore.AlwaysMax(c.Max), nil
	case "follow_core":
		return uncore.FollowCore(c.Offset), nil
	case "step":
		if c.Threshold == 0 || c.Hi == 0 {
			return nil, fmt.Errorf("workload: step curve needs threshold and hi")
		}
		return uncore.Step(c.Threshold, c.Hi, c.Lo), nil
	case "fixed":
		if c.Ratio == 0 {
			return nil, fmt.Errorf("workload: fixed curve needs ratio")
		}
		return uncore.Fixed(c.Ratio), nil
	default:
		return nil, fmt.Errorf("workload: unknown curve type %q (always_max, follow_core, step, fixed)", c.Type)
	}
}

// SpecFile is the JSON representation of a workload definition, the
// format `earsim -spec` accepts for user-defined applications.
type SpecFile struct {
	Name      string `json:"name"`
	Class     string `json:"class"`      // cpu-bound, mem-bound, accelerator
	ProgModel string `json:"prog_model"` // informational
	Platform  string `json:"platform"`   // SD530 or GPUNode

	Nodes          int `json:"nodes"`
	ProcsPerNode   int `json:"procs_per_node"`
	ThreadsPerProc int `json:"threads_per_proc"`
	ActiveCores    int `json:"active_cores"`

	TargetTimeSec float64 `json:"target_time_sec"`

	DefaultSegment Segment   `json:"default_segment"`
	Segments       []Segment `json:"segments,omitempty"`

	IterPeriodSec   float64 `json:"iter_period_sec"`
	MPICallsPerIter int     `json:"mpi_calls_per_iter"`

	HWUncore CurveSpec `json:"hw_uncore"`

	GPUPowerW float64 `json:"gpu_power_w,omitempty"`
	FreqBias  float64 `json:"freq_bias,omitempty"`
	IMCBias   float64 `json:"imc_bias,omitempty"`
}

// Spec converts the file form into a validated runtime Spec.
func (f SpecFile) Spec() (Spec, error) {
	var pl Platform
	switch f.Platform {
	case "SD530", "":
		pl = SD530()
	case "GPUNode":
		pl = GPUNode()
	case "CascadeLake":
		pl = CascadeLake()
	default:
		return Spec{}, fmt.Errorf("workload: unknown platform %q (SD530, GPUNode, CascadeLake)", f.Platform)
	}
	curve, err := f.HWUncore.Build()
	if err != nil {
		return Spec{}, err
	}
	s := Spec{
		Name:            f.Name,
		Class:           Class(f.Class),
		ProgModel:       f.ProgModel,
		Platform:        pl,
		Nodes:           f.Nodes,
		ProcsPerNode:    f.ProcsPerNode,
		ThreadsPerProc:  f.ThreadsPerProc,
		ActiveCores:     f.ActiveCores,
		TargetTimeSec:   f.TargetTimeSec,
		DefaultSegment:  f.DefaultSegment,
		Segments:        f.Segments,
		IterPeriodSec:   f.IterPeriodSec,
		MPICallsPerIter: f.MPICallsPerIter,
		HWUncore:        curve,
		GPUPowerW:       f.GPUPowerW,
		FreqBias:        f.FreqBias,
		IMCBias:         f.IMCBias,
	}
	if s.FreqBias == 0 {
		s.FreqBias = 0.992
	}
	if s.IMCBias == 0 {
		s.IMCBias = 0.996
	}
	if err := s.Validate(); err != nil {
		return Spec{}, err
	}
	return s, nil
}

// LoadSpec reads a workload definition from JSON.
func LoadSpec(r io.Reader) (Spec, error) {
	var f SpecFile
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return Spec{}, fmt.Errorf("workload: decode spec: %w", err)
	}
	return f.Spec()
}

// Template returns a documented starter definition a user can edit.
func Template() SpecFile {
	return SpecFile{
		Name:      "my-app",
		Class:     string(CPUBound),
		ProgModel: "MPI",
		Platform:  "SD530",
		Nodes:     2, ProcsPerNode: 40, ThreadsPerProc: 1, ActiveCores: 40,
		TargetTimeSec: 300,
		DefaultSegment: Segment{
			TargetCPI: 0.5, TargetGBs: 25, TargetPowerW: 330, OverlapHint: 0.8,
		},
		IterPeriodSec: 1.5, MPICallsPerIter: 8,
		HWUncore: CurveSpec{Type: "always_max", Max: 24},
	}
}
