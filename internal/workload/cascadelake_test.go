package workload

import (
	"testing"

	"goear/internal/model"
	"goear/internal/perf"
)

func TestCascadeLakePlatformPipeline(t *testing.T) {
	pl := CascadeLake()
	if err := pl.Machine.Validate(); err != nil {
		t.Fatal(err)
	}
	// A spec retargeted to the platform calibrates.
	f := Template()
	f.Platform = "CascadeLake"
	f.ActiveCores = 48
	f.ProcsPerNode = 48
	s, err := f.Spec()
	if err != nil {
		t.Fatal(err)
	}
	cal, err := s.Calibrate()
	if err != nil {
		t.Fatal(err)
	}
	if cal.Platform.Name != "CascadeLake" {
		t.Errorf("platform = %s", cal.Platform.Name)
	}
	// The learning phase retrains for the new pstate table.
	m, err := model.TrainForCPU(pl.Machine, pl.Power)
	if err != nil {
		t.Fatal(err)
	}
	if m.PstateCount() != pl.Machine.CPU.PstateCount() {
		t.Errorf("model pstates = %d, want %d", m.PstateCount(), pl.Machine.CPU.PstateCount())
	}
	// Cascade Lake 6252: nominal 2.1, AVX512 licence 1.6 -> pstate 6.
	if m.AVX512Pstate != 6 {
		t.Errorf("AVX512 pstate = %d, want 6", m.AVX512Pstate)
	}
	nominal, err := perf.Evaluate(pl.Machine, cal.Segs[0].Phase,
		perf.Operating{CoreRatio: 21, UncoreRatio: 24})
	if err != nil {
		t.Fatal(err)
	}
	if nominal.EffCoreFreq.GHzF() != 2.1 {
		t.Errorf("nominal frequency = %v", nominal.EffCoreFreq)
	}
}
