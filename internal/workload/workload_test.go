package workload

import (
	"math"
	"testing"

	"goear/internal/perf"
	"goear/internal/power"
	"goear/internal/uncore"
)

func TestCatalogAllValid(t *testing.T) {
	cat := Catalog()
	if len(cat) < 14 {
		t.Fatalf("catalogue has %d entries, want >= 14", len(cat))
	}
	for _, s := range cat {
		if err := s.Validate(); err != nil {
			t.Errorf("%s: %v", s.Name, err)
		}
	}
}

func TestCatalogCalibratesEverywhere(t *testing.T) {
	for _, s := range Catalog() {
		s := s
		t.Run(s.Name, func(t *testing.T) {
			c, err := s.Calibrate()
			if err != nil {
				t.Fatal(err)
			}
			if len(c.Segs) == 0 {
				t.Fatal("no calibrated segments")
			}
			// At the nominal operating point, each segment must
			// reproduce its published signature through the models.
			for i, g := range c.Segs {
				res, err := perf.Evaluate(s.Platform.Machine, g.Phase, c.NominalOp)
				if err != nil {
					t.Fatalf("segment %d: %v", i, err)
				}
				if math.Abs(res.CPI-g.TargetCPI) > 0.02*g.TargetCPI {
					t.Errorf("segment %d CPI = %v, want %v", i, res.CPI, g.TargetCPI)
				}
				if g.TargetGBs > 0.5 && math.Abs(res.NodeGBs-g.TargetGBs) > 0.03*g.TargetGBs {
					t.Errorf("segment %d GB/s = %v, want %v", i, res.NodeGBs, g.TargetGBs)
				}
				in := power.Input{
					CoreFreqGHz:   res.EffCoreFreq.GHzF(),
					UncoreFreqGHz: res.UncoreFreq.GHzF(),
					Sockets:       s.Platform.Machine.CPU.Sockets,
					ActiveCores:   s.ActiveCores,
					Activity:      g.Activity,
					GBs:           res.NodeGBs,
					GPUPower:      s.GPUPowerW,
				}
				b, err := s.Platform.Power.Node(in)
				if err != nil {
					t.Fatalf("segment %d: %v", i, err)
				}
				if math.Abs(b.Total-g.TargetPowerW) > 0.01*g.TargetPowerW {
					t.Errorf("segment %d power = %v, want %v", i, b.Total, g.TargetPowerW)
				}
				if g.Iterations < 1 {
					t.Errorf("segment %d has %d iterations", i, g.Iterations)
				}
				if g.InstrPerIter <= 0 {
					t.Errorf("segment %d instr/iter = %v", i, g.InstrPerIter)
				}
			}
			// Total simulated duration at nominal must land near the
			// published time.
			wall := float64(c.TotalIterations()) * s.IterPeriodSec
			if math.Abs(wall-s.TargetTimeSec) > 0.02*s.TargetTimeSec {
				t.Errorf("nominal wall time = %v, want %v", wall, s.TargetTimeSec)
			}
		})
	}
}

func TestLookup(t *testing.T) {
	s, err := Lookup(HPCG)
	if err != nil {
		t.Fatal(err)
	}
	if s.Class != MemBound {
		t.Errorf("HPCG class = %v, want mem-bound", s.Class)
	}
	if _, err := Lookup("nope"); err == nil {
		t.Error("expected error for unknown workload")
	}
}

func TestKernelsAndApplicationsResolve(t *testing.T) {
	for _, n := range append(Kernels(), Applications()...) {
		if _, err := Lookup(n); err != nil {
			t.Errorf("%s: %v", n, err)
		}
	}
	if len(Kernels()) != 5 {
		t.Errorf("kernels = %d, want 5 (Table II rows)", len(Kernels()))
	}
	if len(Applications()) != 8 {
		t.Errorf("applications = %d, want 8 (Table V rows)", len(Applications()))
	}
}

func TestValidateRejects(t *testing.T) {
	base, err := Lookup(BTMZC)
	if err != nil {
		t.Fatal(err)
	}
	muts := []func(*Spec){
		func(s *Spec) { s.Name = "" },
		func(s *Spec) { s.Nodes = 0 },
		func(s *Spec) { s.ActiveCores = 0 },
		func(s *Spec) { s.ActiveCores = 100 },
		func(s *Spec) { s.TargetTimeSec = 0 },
		func(s *Spec) { s.IterPeriodSec = 0 },
		func(s *Spec) { s.MPICallsPerIter = -1 },
		func(s *Spec) { s.HWUncore = nil },
		func(s *Spec) { s.FreqBias = 0 },
		func(s *Spec) { s.FreqBias = 1.5 },
		func(s *Spec) { s.IMCBias = 0 },
		func(s *Spec) { s.GPUPowerW = -1 },
		func(s *Spec) { s.DefaultSegment.TargetCPI = 0 },
		func(s *Spec) { s.DefaultSegment.VPI = 2 },
	}
	for i, mut := range muts {
		s := base
		mut(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("mutation %d: expected error", i)
		}
	}
}

func TestValidateSegmentFractions(t *testing.T) {
	s, err := Lookup(PhaseChange)
	if err != nil {
		t.Fatal(err)
	}
	s.Segments[0].FracIters = 0.2 // sums to 0.7
	defer func() { s.Segments[0].FracIters = 0.5 }()
	if err := s.Validate(); err == nil {
		t.Error("expected error for fractions not summing to 1")
	}
}

func TestPhaseChangeSegments(t *testing.T) {
	s, err := Lookup(PhaseChange)
	if err != nil {
		t.Fatal(err)
	}
	c, err := s.Calibrate()
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Segs) != 2 {
		t.Fatalf("segments = %d, want 2", len(c.Segs))
	}
	// Iterations split roughly evenly and cover the total.
	if c.Segs[0].Iterations+c.Segs[1].Iterations != c.TotalIterations() {
		t.Error("segment iterations do not sum to total")
	}
	if d := c.Segs[0].Iterations - c.Segs[1].Iterations; d < -1 || d > 1 {
		t.Errorf("uneven split: %d vs %d", c.Segs[0].Iterations, c.Segs[1].Iterations)
	}
}

func TestMPIEvents(t *testing.T) {
	s, err := Lookup(BQCD)
	if err != nil {
		t.Fatal(err)
	}
	ev := s.MPIEvents()
	if len(ev) != s.MPICallsPerIter {
		t.Fatalf("events = %d, want %d", len(ev), s.MPICallsPerIter)
	}
	// Identifiers within an iteration must be distinct (different call
	// sites) and deterministic across calls.
	seen := map[uint32]bool{}
	for _, e := range ev {
		if seen[e] {
			t.Errorf("duplicate event id %d", e)
		}
		seen[e] = true
	}
	ev2 := s.MPIEvents()
	for i := range ev {
		if ev[i] != ev2[i] {
			t.Error("event stream not deterministic")
		}
	}
	// Different workloads get different id spaces.
	s2, _ := Lookup(HPCG)
	if s2.MPIEvents()[0] == ev[0] {
		t.Error("different workloads share call-site ids")
	}
	// Non-MPI workloads have none.
	k, _ := Lookup(BTMZC)
	if k.MPIEvents() != nil {
		t.Error("OpenMP kernel must have no MPI events")
	}
}

func TestCUDAWorkloadsUseGPUPlatform(t *testing.T) {
	for _, n := range []string{BTCUDA, LUCUDA} {
		s, err := Lookup(n)
		if err != nil {
			t.Fatal(err)
		}
		if s.Platform.Name != "GPUNode" {
			t.Errorf("%s platform = %s, want GPUNode", n, s.Platform.Name)
		}
		if s.GPUPowerW <= 0 {
			t.Errorf("%s has no GPU power", n)
		}
		if s.ActiveCores != 1 {
			t.Errorf("%s active cores = %d, want 1 (busy-wait)", n, s.ActiveCores)
		}
	}
}

func TestHWUncoreCurvesMatchPaperSettlingPoints(t *testing.T) {
	// At nominal core ratio the heuristic settles where Tables IV/VI
	// report for the no-policy runs.
	cases := []struct {
		name string
		core uint64
		want uint64
	}{
		{BTMZC, 24, 24},  // 2.39 reported, max modulo bias
		{DGEMM, 22, 20},  // AVX512 licence drags uncore to ~2.0
		{BTCUDA, 26, 24}, // turbo busy-wait keeps uncore up
		{BTCUDA, 23, 15}, // ME-lowered core collapses it (1.51)
		{LUCUDA, 20, 24}, // heuristic stuck high: the paper's bad case
		{GromacsII, 23, 14},
		{GromacsI, 23, 20},
		{HPCG, 18, 24},
	}
	for _, c := range cases {
		s, err := Lookup(c.name)
		if err != nil {
			t.Fatal(err)
		}
		if got := s.HWUncore(c.core); got != c.want {
			t.Errorf("%s curve(%d) = %d, want %d", c.name, c.core, got, c.want)
		}
	}
}

func TestCalibrateErrorsPropagate(t *testing.T) {
	s, err := Lookup(BTMZC)
	if err != nil {
		t.Fatal(err)
	}
	s.DefaultSegment.TargetPowerW = 10 // below static power
	if _, err := s.Calibrate(); err == nil {
		t.Error("expected calibration error for impossible power target")
	}
	s2, _ := Lookup(BTMZC)
	s2.HWUncore = uncore.Fixed(5) // below hardware window: must clamp, not fail
	c, err := s2.Calibrate()
	if err != nil {
		t.Fatal(err)
	}
	if c.NominalOp.UncoreRatio != s2.Platform.Machine.CPU.UncoreMinRatio {
		t.Errorf("uncore ratio = %d, want clamped to %d",
			c.NominalOp.UncoreRatio, s2.Platform.Machine.CPU.UncoreMinRatio)
	}
}
