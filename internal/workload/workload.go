// Package workload defines the applications the paper evaluates as
// phase-based synthetic workloads, and calibrates them against the
// published signatures.
//
// Each Spec records the *published* behaviour of one application at
// nominal frequency (execution time, CPI, GB/s, average DC node power —
// Tables I, II and V of the paper) plus structural facts (nodes, active
// cores, iteration period, MPI calls per iteration) and the silicon's
// observed uncore-heuristic response for that access pattern. Calibrate
// inverts the execution and power models so that simulating the workload
// at nominal frequency reproduces the published signature; everything the
// *policies* do to it afterwards is emergent model behaviour.
package workload

import (
	"fmt"
	"math"

	"goear/internal/perf"
	"goear/internal/power"
	"goear/internal/uncore"
)

// Platform couples the machine model and power coefficients of one node
// type.
type Platform struct {
	Name    string
	Machine perf.Machine
	Power   power.Coeffs
}

// Class is the paper's coarse application taxonomy.
type Class string

// Workload classes as the paper groups them in §VI-B.
const (
	CPUBound    Class = "cpu-bound"
	MemBound    Class = "mem-bound"
	Accelerator Class = "accelerator"
)

// Segment is one computational phase of a workload, described by its
// published signature at nominal frequency.
type Segment struct {
	// FracIters is this segment's share of the workload's iterations.
	FracIters float64 `json:"frac_iters,omitempty"`
	// TargetCPI, TargetGBs, TargetPowerW are the published per-node
	// signature at nominal core and HW-selected uncore frequency.
	TargetCPI    float64 `json:"target_cpi"`
	TargetGBs    float64 `json:"target_gbs"`
	TargetPowerW float64 `json:"target_power_w"`
	// VPI is the AVX512 instruction fraction.
	VPI float64 `json:"vpi,omitempty"`
	// OverlapHint seeds the calibration's memory-level-parallelism
	// parameter (raised automatically if the targets require it).
	OverlapHint float64 `json:"overlap_hint,omitempty"`
	// CoreCPIFrac, when positive, fixes the core-bound share of the
	// target CPI instead of deriving it from OverlapHint. It encodes
	// the application's observed DVFS response: the paper's Table VI
	// shows how far min_energy could lower each application's CPU
	// frequency, which pins down how much of its CPI scales with the
	// core clock.
	CoreCPIFrac float64 `json:"core_cpi_frac,omitempty"`
}

// Spec describes one catalogue application.
type Spec struct {
	Name      string
	Class     Class
	ProgModel string // "OpenMP", "MPI", "MPI+OpenMP", "CUDA", "MKL"
	Platform  Platform

	Nodes          int
	ProcsPerNode   int
	ThreadsPerProc int
	ActiveCores    int // cores busy per node

	// TargetTimeSec is the published execution time at nominal frequency.
	TargetTimeSec float64

	// Segments of the execution; when empty, DefaultSegment is used.
	Segments []Segment
	// DefaultSegment carries the headline published signature.
	DefaultSegment Segment

	// IterPeriodSec is the outer-iteration duration at nominal
	// frequency; Dynais detects this structure.
	IterPeriodSec float64
	// MPICallsPerIter is the number of MPI events per inner loop pass
	// (zero for non-MPI workloads, which EARL then time-guides).
	MPICallsPerIter int
	// InnerLoopsPerIter emits the MPI pattern this many times per outer
	// iteration (default 1): values above 1 model nested structure —
	// an inner solver loop inside the outer time step — which Dynais
	// surfaces as a second detection level.
	InnerLoopsPerIter int

	// HWUncore is the silicon uncore-heuristic response calibrated from
	// the paper's measurements for this access pattern.
	HWUncore uncore.Curve

	// GPUPowerW is the constant accelerator power draw while the
	// workload runs (CUDA kernels only).
	GPUPowerW float64

	// FreqBias is the ratio of measured average core frequency to the
	// effective frequency (halted cycles, per-core idling); IMCBias the
	// same for the uncore. Both apply to reported metrics only.
	FreqBias float64
	IMCBias  float64
}

// Validate reports whether the spec is usable.
func (s Spec) Validate() error {
	switch {
	case s.Name == "":
		return fmt.Errorf("workload: empty name")
	case s.Nodes <= 0:
		return fmt.Errorf("workload %s: nodes must be positive", s.Name)
	case s.ActiveCores <= 0:
		return fmt.Errorf("workload %s: active cores must be positive", s.Name)
	case s.ActiveCores > s.Platform.Machine.CPU.TotalCores():
		return fmt.Errorf("workload %s: %d active cores exceed node's %d",
			s.Name, s.ActiveCores, s.Platform.Machine.CPU.TotalCores())
	case s.TargetTimeSec <= 0:
		return fmt.Errorf("workload %s: target time must be positive", s.Name)
	case s.IterPeriodSec <= 0:
		return fmt.Errorf("workload %s: iteration period must be positive", s.Name)
	case s.MPICallsPerIter < 0:
		return fmt.Errorf("workload %s: MPI calls per iteration must be non-negative", s.Name)
	case s.InnerLoopsPerIter < 0:
		return fmt.Errorf("workload %s: inner loops per iteration must be non-negative", s.Name)
	case s.HWUncore == nil:
		return fmt.Errorf("workload %s: missing HW uncore curve", s.Name)
	case s.FreqBias <= 0 || s.FreqBias > 1:
		return fmt.Errorf("workload %s: frequency bias %g outside (0,1]", s.Name, s.FreqBias)
	case s.IMCBias <= 0 || s.IMCBias > 1:
		return fmt.Errorf("workload %s: IMC bias %g outside (0,1]", s.Name, s.IMCBias)
	case s.GPUPowerW < 0:
		return fmt.Errorf("workload %s: GPU power must be non-negative", s.Name)
	}
	segs := s.Segments
	if len(segs) == 0 {
		segs = []Segment{s.DefaultSegment}
	}
	total := 0.0
	for i, g := range segs {
		if g.TargetCPI <= 0 || g.TargetGBs < 0 || g.TargetPowerW <= 0 {
			return fmt.Errorf("workload %s: segment %d targets invalid", s.Name, i)
		}
		if g.VPI < 0 || g.VPI > 1 {
			return fmt.Errorf("workload %s: segment %d VPI %g outside [0,1]", s.Name, i, g.VPI)
		}
		if g.CoreCPIFrac < 0 || g.CoreCPIFrac > 1 {
			return fmt.Errorf("workload %s: segment %d core CPI fraction %g outside [0,1]", s.Name, i, g.CoreCPIFrac)
		}
		if len(s.Segments) > 0 {
			if g.FracIters <= 0 {
				return fmt.Errorf("workload %s: segment %d fraction must be positive", s.Name, i)
			}
			total += g.FracIters
		}
	}
	if len(s.Segments) > 0 && math.Abs(total-1) > 1e-9 {
		return fmt.Errorf("workload %s: segment fractions sum to %g, want 1", s.Name, total)
	}
	return nil
}

// CalSegment is a calibrated execution phase.
type CalSegment struct {
	Segment
	// Phase reproduces the published CPI/GB/s through perf.Evaluate at
	// the nominal operating point.
	Phase perf.Phase
	// Activity reproduces the published DC power through power.Node.
	Activity float64
	// Iterations is the number of outer iterations in this segment.
	Iterations int
	// InstrPerIter is retired instructions per active core per
	// iteration (so that at nominal frequency an iteration takes
	// IterPeriodSec).
	InstrPerIter float64
}

// Calibrated is a Spec with solved model parameters.
type Calibrated struct {
	Spec
	// NominalOp is the operating point the calibration used: the
	// nominal core ratio and the uncore ratio the HW heuristic settles
	// at for this workload.
	NominalOp perf.Operating
	Segs      []CalSegment
}

// TotalIterations across all segments.
func (c Calibrated) TotalIterations() int {
	n := 0
	for _, g := range c.Segs {
		n += g.Iterations
	}
	return n
}

// Calibrate solves the model parameters for every segment.
func (s Spec) Calibrate() (Calibrated, error) {
	if err := s.Validate(); err != nil {
		return Calibrated{}, err
	}
	m := s.Platform.Machine
	nominal := m.CPU.NominalRatio

	segs := s.Segments
	if len(segs) == 0 {
		d := s.DefaultSegment
		d.FracIters = 1
		segs = []Segment{d}
	}

	// The HW heuristic's settling point at nominal frequency, clamped
	// to the hardware window, defines the calibration operating point.
	// The heuristic sees the licence-resolved core ratio, so an AVX512
	// workload (DGEMM) drives it from the licence frequency.
	avxActive := segs[0].VPI > 0.5
	hwRatio := clampRatio(s.HWUncore(m.CPU.EffectiveRatio(nominal, avxActive)),
		m.CPU.UncoreMinRatio, m.CPU.UncoreMaxRatio)
	op := perf.Operating{CoreRatio: nominal, UncoreRatio: hwRatio}

	totalIters := int(math.Round(s.TargetTimeSec / s.IterPeriodSec))
	if totalIters < 1 {
		totalIters = 1
	}

	out := Calibrated{Spec: s, NominalOp: op}
	assigned := 0
	for i, g := range segs {
		proto := perf.Phase{VPI: g.VPI, Overlap: g.OverlapHint, ActiveCores: s.ActiveCores}
		var ph perf.Phase
		var err error
		if g.CoreCPIFrac > 0 {
			ph, err = perf.SolveWithCoreFrac(m, proto, op, g.TargetCPI, g.TargetGBs, g.CoreCPIFrac)
		} else {
			ph, err = perf.SolveBaseCPI(m, proto, op, g.TargetCPI, g.TargetGBs)
		}
		if err != nil {
			return Calibrated{}, fmt.Errorf("workload %s segment %d: %w", s.Name, i, err)
		}
		res, err := perf.Evaluate(m, ph, op)
		if err != nil {
			return Calibrated{}, fmt.Errorf("workload %s segment %d: %w", s.Name, i, err)
		}
		in := power.Input{
			CoreFreqGHz:   res.EffCoreFreq.GHzF(),
			UncoreFreqGHz: res.UncoreFreq.GHzF(),
			Sockets:       m.CPU.Sockets,
			ActiveCores:   s.ActiveCores,
			GBs:           res.NodeGBs,
			GPUPower:      s.GPUPowerW,
		}
		act, err := s.Platform.Power.SolveActivity(in, g.TargetPowerW)
		if err != nil {
			return Calibrated{}, fmt.Errorf("workload %s segment %d: %w", s.Name, i, err)
		}
		iters := int(math.Round(g.FracIters * float64(totalIters)))
		if i == len(segs)-1 {
			iters = totalIters - assigned // absorb rounding
		}
		if iters < 1 {
			iters = 1
		}
		assigned += iters
		out.Segs = append(out.Segs, CalSegment{
			Segment:      g,
			Phase:        ph,
			Activity:     act,
			Iterations:   iters,
			InstrPerIter: s.IterPeriodSec * res.IPSCore,
		})
	}
	return out, nil
}

func clampRatio(r, lo, hi uint64) uint64 {
	if r < lo {
		return lo
	}
	if r > hi {
		return hi
	}
	return r
}

// MPIEvents returns the per-iteration MPI event sequence of the
// workload: a deterministic cycle of call-site identifiers that Dynais
// consumes to detect the outer loop. Non-MPI workloads return nil.
func (s Spec) MPIEvents() []uint32 {
	if s.MPICallsPerIter == 0 {
		return nil
	}
	return s.AppendMPIEvents(make([]uint32, 0, s.MPICallsPerIter))
}

// AppendMPIEvents writes the iteration's call-site sequence into dst
// (reusing its capacity) and returns the result. It lets per-run state
// that is recycled across runs keep one event buffer instead of
// reallocating per iteration or per run.
func (s Spec) AppendMPIEvents(dst []uint32) []uint32 {
	dst = dst[:0]
	if s.MPICallsPerIter == 0 {
		return dst
	}
	for i := 0; i < s.MPICallsPerIter; i++ {
		// Call-site identifiers: stable hash of name and position.
		h := uint32(2166136261)
		for _, c := range s.Name {
			h = (h ^ uint32(c)) * 16777619
		}
		dst = append(dst, h^uint32(i+1))
	}
	return dst
}
