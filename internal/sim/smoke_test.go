package sim

import (
	"fmt"
	"sync"
	"testing"

	"goear/internal/model"
	"goear/internal/workload"
)

var (
	modelMu    sync.Mutex
	modelCache = map[string]*model.Model{}
)

// platformModel trains (once per platform) the energy model used by
// policy-driven test runs.
func platformModel(t testing.TB, pl workload.Platform) *model.Model {
	t.Helper()
	modelMu.Lock()
	defer modelMu.Unlock()
	if m, ok := modelCache[pl.Name]; ok {
		return m
	}
	m, err := model.TrainForCPU(pl.Machine, pl.Power)
	if err != nil {
		t.Fatalf("training model for %s: %v", pl.Name, err)
	}
	modelCache[pl.Name] = m
	return m
}

func calibrated(t testing.TB, name string) workload.Calibrated {
	t.Helper()
	spec, err := workload.Lookup(name)
	if err != nil {
		t.Fatal(err)
	}
	cal, err := spec.Calibrate()
	if err != nil {
		t.Fatal(err)
	}
	return cal
}

// TestSmokeThreeConfigs prints the three headline configurations for
// BT-MZ.C; it is the development smoke check behind the paper's
// Table III row.
func TestSmokeThreeConfigs(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke output in short mode")
	}
	cal := calibrated(t, workload.BTMZC)
	m := platformModel(t, cal.Platform)
	for _, pol := range []string{"none", "min_energy", "min_energy_eufs"} {
		r, err := Run(cal, Options{Policy: pol, Model: m, Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		fmt.Printf("%-16s time=%7.2fs power=%7.2fW energy=%9.0fJ cpu=%5.3fGHz imc=%5.3fGHz cpi=%5.3f gbs=%6.2f sigs=%d final(p%d,u%d)\n",
			pol, r.TimeSec, r.AvgPowerW, r.EnergyJ, r.AvgCPUGHz, r.AvgIMCGHz,
			r.AvgCPI, r.AvgGBs, r.Nodes[0].Signatures, r.Nodes[0].FinalCPUPstate, r.Nodes[0].FinalUncoreMax)
	}
}
