package sim

import (
	"strings"
	"testing"

	"goear/internal/telemetry"
	"goear/internal/workload"
)

// decisionRun runs the four-node BQCD workload under min_energy with
// the decision log on and returns the rendered log plus the result.
func decisionRun(t *testing.T, workers int) (string, Result) {
	t.Helper()
	cal := calibrated(t, workload.BQCD)
	m := platformModel(t, cal.Platform)
	r, err := Run(cal, Options{
		Policy: "min_energy", Model: m, Seed: 7,
		DecisionLog: true, Workers: workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := r.WriteDecisionLog(&b); err != nil {
		t.Fatal(err)
	}
	return b.String(), r
}

// TestDecisionLogCapturesEveryDecision checks the log is complete: one
// line per EARL event on every node, each carrying the chosen CPU
// pstate and the measured signature.
func TestDecisionLogCapturesEveryDecision(t *testing.T) {
	log, r := decisionRun(t, 1)
	lines := strings.Split(strings.TrimRight(log, "\n"), "\n")
	total := 0
	for _, n := range r.Nodes {
		total += len(n.Decisions)
	}
	if total == 0 {
		t.Fatal("policy run produced no decisions")
	}
	if len(lines) != total {
		t.Fatalf("log has %d lines, result holds %d decisions", len(lines), total)
	}
	for i, line := range lines {
		for _, field := range []string{`"node":`, `"t":`, `"state":`, `"cpu_pstate":`, `"dc_power_w":`} {
			if !strings.Contains(line, field) {
				t.Fatalf("line %d lacks %s: %s", i, field, line)
			}
		}
	}
	// A policy run must include applied decisions with a predicted
	// operating point to compare against.
	if !strings.Contains(log, `"applied":true`) || !strings.Contains(log, `"pred_power_w":`) {
		t.Errorf("log carries no applied decision with a prediction:\n%.400s", log)
	}
}

// TestDecisionLogWorkerInvariance pins the determinism contract of
// Options.DecisionLog: the JSON-lines log — and the telemetry event
// stream derived from it — is byte-identical at any Workers setting,
// because decisions are collected per node and recorded post-run in
// node order.
func TestDecisionLogWorkerInvariance(t *testing.T) {
	ref, refRes := decisionRun(t, 1)
	for _, workers := range []int{2, 8} {
		got, res := decisionRun(t, workers)
		if got != ref {
			t.Errorf("workers=%d: decision log differs from sequential run", workers)
		}
		refEvents, gotEvents := recordedEvents(t, refRes), recordedEvents(t, res)
		if gotEvents != refEvents {
			t.Errorf("workers=%d: telemetry event stream differs from sequential run", workers)
		}
	}
}

// recordedEvents feeds a result's decisions into a fresh recorder and
// renders the JSON-lines export.
func recordedEvents(t *testing.T, r Result) string {
	t.Helper()
	rec := telemetry.NewRecorder(0)
	r.RecordDecisions(rec)
	if rec.Len() == 0 {
		t.Fatal("no events recorded from decisions")
	}
	var b strings.Builder
	if err := rec.WriteJSONLines(&b); err != nil {
		t.Fatal(err)
	}
	return b.String()
}
