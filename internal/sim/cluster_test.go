package sim

import (
	"testing"

	"goear/internal/eargm"
	"goear/internal/workload"
)

func TestCoordinatedRunEnforcesBudget(t *testing.T) {
	// Four BQCD nodes draw ~1200W uncapped. A 1150W budget forces the
	// global manager to cap pstates until the cluster fits.
	cal := calibrated(t, workload.BQCD)
	m := platformModel(t, cal.Platform)

	free, err := Run(cal, Options{Policy: "min_energy", Model: m, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	freeTotal := free.AvgPowerW * float64(len(free.Nodes))

	budget := freeTotal * 0.95
	gm, err := eargm.New(eargm.Config{BudgetW: budget, MaxCapPstate: 10, IntervalSec: 5})
	if err != nil {
		t.Fatal(err)
	}
	capped, err := RunCoordinated(cal, Options{Policy: "min_energy", Model: m, Seed: 5}, gm)
	if err != nil {
		t.Fatal(err)
	}
	cappedTotal := capped.AvgPowerW * float64(len(capped.Nodes))
	if cappedTotal >= freeTotal {
		t.Errorf("capped cluster power %.1fW not below free %.1fW", cappedTotal, freeTotal)
	}
	// The ratchet must actually have engaged, and the cluster must be
	// under budget for the bulk of the run.
	st := gm.Stats()
	if st.FinalCap == 0 && st.OverBudget == 0 {
		t.Error("manager never engaged")
	}
	if st.OverBudgetPct > 30 {
		t.Errorf("over budget %.1f%% of intervals, want mostly capped", st.OverBudgetPct)
	}
	// Capping costs time: the capped run cannot be faster.
	if capped.TimeSec < free.TimeSec {
		t.Errorf("capped run faster (%.1fs) than free (%.1fs)", capped.TimeSec, free.TimeSec)
	}
}

func TestCoordinatedRunWithLooseBudgetMatchesFreeRun(t *testing.T) {
	cal := calibrated(t, workload.BTMZC)
	gm, err := eargm.New(eargm.Config{BudgetW: 10000, MaxCapPstate: 8})
	if err != nil {
		t.Fatal(err)
	}
	coord, err := RunCoordinated(cal, Options{Policy: "none", Seed: 3}, gm)
	if err != nil {
		t.Fatal(err)
	}
	free, err := Run(cal, Options{Policy: "none", Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if d := coord.TimeSec - free.TimeSec; d > 0.5 || d < -0.5 {
		t.Errorf("loose-budget coordinated time %.2fs differs from free %.2fs", coord.TimeSec, free.TimeSec)
	}
	if gm.Cap() != 0 {
		t.Errorf("cap = %d under a loose budget", gm.Cap())
	}
}

func TestCoordinatedRunErrors(t *testing.T) {
	cal := calibrated(t, workload.BTMZC)
	if _, err := RunCoordinated(cal, Options{}, nil); err == nil {
		t.Error("expected error for nil manager")
	}
	gm, err := eargm.New(eargm.Config{BudgetW: 1000, MaxCapPstate: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunCoordinated(cal, Options{Policy: "min_energy"}, gm); err == nil {
		t.Error("expected error for missing model")
	}
}

// badManager has a non-positive interval.
type badManager struct{}

func (badManager) Interval() float64                      { return 0 }
func (badManager) Update(float64, []float64) (int, error) { return 0, nil }

func TestCoordinatedRunRejectsBadInterval(t *testing.T) {
	cal := calibrated(t, workload.BTMZC)
	if _, err := RunCoordinated(cal, Options{}, badManager{}); err == nil {
		t.Error("expected error for zero interval")
	}
}
