package sim

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"goear/internal/accounting"
	"goear/internal/workload"
)

// TestAccountingRecordsByteIdentical pins the attribution determinism
// contract: the per-job records derived from a phase-sampled run are
// byte-identical whatever the Workers count, because phase accumulation
// is per-node and ordered.
func TestAccountingRecordsByteIdentical(t *testing.T) {
	cal := calibrated(t, workload.BTMZC)
	run := func(workers int) []accounting.Record {
		r, err := Run(cal, Options{Policy: "none", Seed: 3, Phases: true, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		recs, err := AccountingRecords(r, accounting.Meta{JobID: "j1", StepID: "0", User: "alice"}, nil)
		if err != nil {
			t.Fatal(err)
		}
		return recs
	}
	b1, err := json.Marshal(run(1))
	if err != nil {
		t.Fatal(err)
	}
	b4, err := json.Marshal(run(4))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b4) {
		t.Fatal("accounting records differ between Workers=1 and Workers=4")
	}
}

// TestAccountingRecordsConserveEnergy checks that the per-phase records
// sum back to the run's per-node energy integrals: attribution must
// not create or lose joules.
func TestAccountingRecordsConserveEnergy(t *testing.T) {
	cal := calibrated(t, workload.BTMZC)
	res, err := Run(cal, Options{Policy: "none", Seed: 5, Phases: true})
	if err != nil {
		t.Fatal(err)
	}
	recs, err := AccountingRecords(res, accounting.Meta{JobID: "j1", StepID: "0", User: "alice"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	type sums struct{ pkg, dram, node float64 }
	byNode := map[string]*sums{}
	for _, r := range recs {
		s := byNode[r.Node]
		if s == nil {
			s = &sums{}
			byNode[r.Node] = s
		}
		s.pkg += r.PkgJ
		s.dram += r.DramJ
		s.node += r.NodeJ
	}
	if len(byNode) != len(res.Nodes) {
		t.Fatalf("records cover %d nodes, run has %d", len(byNode), len(res.Nodes))
	}
	relClose := func(got, want float64) bool {
		return math.Abs(got-want) <= 1e-9*math.Max(math.Abs(want), 1)
	}
	for i := range res.Nodes {
		n := &res.Nodes[i]
		name := defaultNodeName(i)
		s := byNode[name]
		if s == nil {
			t.Fatalf("no records for %s", name)
		}
		if !relClose(s.pkg, n.PkgEnergyJ) {
			t.Errorf("%s: summed PkgJ %.6f vs run integral %.6f", name, s.pkg, n.PkgEnergyJ)
		}
		if !relClose(s.dram, n.DramEnergyJ) {
			t.Errorf("%s: summed DramJ %.6f vs run integral %.6f", name, s.dram, n.DramEnergyJ)
		}
		if !relClose(s.node, n.EnergyJ) {
			t.Errorf("%s: summed NodeJ %.6f vs run integral %.6f", name, s.node, n.EnergyJ)
		}
	}
	for _, r := range recs {
		if err := r.Validate(); err != nil {
			t.Fatalf("record failed validation: %v", err)
		}
	}
}

// TestAccountingRecordsNeedPhases pins the error path: a run without
// Options.Phases has nothing to attribute.
func TestAccountingRecordsNeedPhases(t *testing.T) {
	cal := calibrated(t, workload.BTMZC)
	res, err := Run(cal, Options{Policy: "none", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := AccountingRecords(res, accounting.Meta{JobID: "j", StepID: "0", User: "u"}, nil); err == nil {
		t.Fatal("expected an error for a run without phase samples")
	}
}
