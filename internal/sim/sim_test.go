package sim

import (
	"math"
	"testing"

	"goear/internal/eard"
	"goear/internal/workload"
)

func pctChange(ref, now float64) float64 { return 100 * (now - ref) / ref }

func TestBaselineReproducesTableII(t *testing.T) {
	// Running every single-node kernel with no policy must reproduce
	// the published Table II characteristics.
	rows := []struct {
		name           string
		time, cpi, gbs float64
		power          float64
	}{
		{workload.BTMZC, 145, 0.39, 28, 332},
		{workload.SPMZC, 264, 0.53, 78, 358},
		{workload.BTCUDA, 465, 0.49, 0.09, 305},
		{workload.LUCUDA, 256, 0.54, 0.19, 290},
		{workload.DGEMM, 160, 0.45, 98, 369},
	}
	for _, row := range rows {
		row := row
		t.Run(row.name, func(t *testing.T) {
			cal := calibrated(t, row.name)
			r, err := Run(cal, Options{Policy: "none", Seed: 3})
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(r.TimeSec-row.time) > 0.03*row.time {
				t.Errorf("time = %v, want %v", r.TimeSec, row.time)
			}
			if math.Abs(r.AvgCPI-row.cpi) > 0.04*row.cpi {
				t.Errorf("CPI = %v, want %v", r.AvgCPI, row.cpi)
			}
			if row.gbs > 1 && math.Abs(r.AvgGBs-row.gbs) > 0.05*row.gbs {
				t.Errorf("GB/s = %v, want %v", r.AvgGBs, row.gbs)
			}
			if math.Abs(r.AvgPowerW-row.power) > 0.03*row.power {
				t.Errorf("power = %v, want %v", r.AvgPowerW, row.power)
			}
		})
	}
}

func TestMinEnergyLeavesCPUBoundAlone(t *testing.T) {
	cal := calibrated(t, workload.BTMZC)
	m := platformModel(t, cal.Platform)
	base, err := Run(cal, Options{Policy: "none", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	me, err := Run(cal, Options{Policy: "min_energy", Model: m, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if me.Nodes[0].FinalCPUPstate != 1 {
		t.Errorf("final pstate = %d, want 1", me.Nodes[0].FinalCPUPstate)
	}
	if p := pctChange(base.TimeSec, me.TimeSec); math.Abs(p) > 0.5 {
		t.Errorf("time penalty = %.2f%%, want ~0", p)
	}
	if p := pctChange(base.EnergyJ, me.EnergyJ); math.Abs(p) > 1 {
		t.Errorf("energy change = %.2f%%, want ~0", p)
	}
}

func TestMinEnergyReducesHPCGLikePaper(t *testing.T) {
	// Paper Table VI: HPCG's average CPU frequency drops to ~1.75 GHz
	// under ME with 5% threshold, saving energy.
	cal := calibrated(t, workload.HPCG)
	m := platformModel(t, cal.Platform)
	base, err := Run(cal, Options{Policy: "none", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	me, err := Run(cal, Options{Policy: "min_energy", Model: m, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if me.AvgCPUGHz < 1.55 || me.AvgCPUGHz > 2.0 {
		t.Errorf("ME average CPU = %.3f GHz, want ~1.75", me.AvgCPUGHz)
	}
	if p := pctChange(base.EnergyJ, me.EnergyJ); p > -3 {
		t.Errorf("energy change = %.2f%%, want meaningful saving", p)
	}
	if p := pctChange(base.TimeSec, me.TimeSec); p > 8 {
		t.Errorf("time penalty = %.2f%%, want bounded", p)
	}
}

func TestEUFSSavesEnergyOnCPUBound(t *testing.T) {
	// Paper Table III, BT-MZ row: ME+eU saves 7-8% energy at ~1% time
	// penalty by lowering the uncore to ~2.0 GHz.
	cal := calibrated(t, workload.BTMZC)
	m := platformModel(t, cal.Platform)
	base, err := Run(cal, Options{Policy: "none", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	eu, err := Run(cal, Options{Policy: "min_energy_eufs", Model: m, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if p := pctChange(base.EnergyJ, eu.EnergyJ); p > -3 || p < -12 {
		t.Errorf("energy change = %.2f%%, want -3%%..-12%% (paper: -7%%)", p)
	}
	if p := pctChange(base.TimeSec, eu.TimeSec); p < 0 || p > 3 {
		t.Errorf("time penalty = %.2f%%, want 0..3%% (paper: 1%%)", p)
	}
	if eu.AvgIMCGHz > 2.2 || eu.AvgIMCGHz < 1.7 {
		t.Errorf("average IMC = %.3f GHz, want ~2.0 (paper: 1.98)", eu.AvgIMCGHz)
	}
	if eu.Nodes[0].FinalUncoreMax >= 24 {
		t.Errorf("final uncore max = %d, want lowered", eu.Nodes[0].FinalUncoreMax)
	}
}

func TestEUFSRespectsUncThreshold(t *testing.T) {
	// With a zero-ish uncore threshold the search must stop almost
	// immediately; with a loose one it goes deeper.
	cal := calibrated(t, workload.SPMZC)
	m := platformModel(t, cal.Platform)
	tight, err := Run(cal, Options{Policy: "min_energy_eufs", Model: m, UncTh: F(0.005), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	loose, err := Run(cal, Options{Policy: "min_energy_eufs", Model: m, UncTh: F(0.04), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tight.Nodes[0].FinalUncoreMax < loose.Nodes[0].FinalUncoreMax {
		t.Errorf("tight threshold went deeper (%d) than loose (%d)",
			tight.Nodes[0].FinalUncoreMax, loose.Nodes[0].FinalUncoreMax)
	}
	if loose.AvgIMCGHz >= tight.AvgIMCGHz {
		t.Errorf("loose threshold did not lower uncore further: %.3f vs %.3f",
			loose.AvgIMCGHz, tight.AvgIMCGHz)
	}
}

func TestGPUBoundTimeInvariant(t *testing.T) {
	// The paper's CUDA kernels: execution time is GPU-paced, so all
	// policies finish in the same wall time while saving power.
	cal := calibrated(t, workload.BTCUDA)
	m := platformModel(t, cal.Platform)
	base, err := Run(cal, Options{Policy: "none", Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, pol := range []string{"min_energy", "min_energy_eufs"} {
		r, err := Run(cal, Options{Policy: pol, Model: m, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		if p := math.Abs(pctChange(base.TimeSec, r.TimeSec)); p > 0.2 {
			t.Errorf("%s: time changed %.3f%%, want 0 (GPU paced)", pol, p)
		}
		if r.EnergyJ >= base.EnergyJ {
			t.Errorf("%s: no energy saving on busy-wait host", pol)
		}
	}
}

func TestFixedUncoreSweepShape(t *testing.T) {
	// Fig. 1's mechanism: pinning the uncore lower monotonically cuts
	// power; time penalty is small for CPU-bound kernels and grows as
	// the uncore starves the memory subsystem.
	cal := calibrated(t, workload.BTMZC)
	ps := 1
	var prevPower float64
	first := true
	for _, ratio := range []uint64{24, 21, 18, 15, 12} {
		r := ratio
		res, err := Run(cal, Options{Policy: "none", Seed: 1, FixedCPUPstate: &ps, FixedUncoreRatio: &r})
		if err != nil {
			t.Fatal(err)
		}
		if !first && res.AvgPowerW >= prevPower {
			t.Errorf("power did not decrease at uncore ratio %d: %v >= %v", ratio, res.AvgPowerW, prevPower)
		}
		prevPower = res.AvgPowerW
		first = false
		// Measured IMC must track the pin.
		want := float64(ratio) / 10 * 0.996
		if math.Abs(res.AvgIMCGHz-want) > 0.05 {
			t.Errorf("ratio %d: measured IMC %.3f, want ~%.3f", ratio, res.AvgIMCGHz, want)
		}
	}
}

func TestPhaseChangeTriggersPolicyReapplication(t *testing.T) {
	cal := calibrated(t, workload.PhaseChange)
	m := platformModel(t, cal.Platform)
	r, err := Run(cal, Options{Policy: "min_energy", Model: m, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// The second (memory-bound) phase must re-trigger the policy and
	// end at a reduced pstate.
	if r.Nodes[0].PolicyApplies < 2 {
		t.Errorf("policy applied %d times, want >= 2 (phase change)", r.Nodes[0].PolicyApplies)
	}
	if r.Nodes[0].FinalCPUPstate <= 1 {
		t.Errorf("final pstate = %d, want reduced for the memory phase", r.Nodes[0].FinalCPUPstate)
	}
}

func TestMultiNodeConsistency(t *testing.T) {
	cal := calibrated(t, workload.BQCD)
	m := platformModel(t, cal.Platform)
	r, err := Run(cal, Options{Policy: "min_energy_eufs", Model: m, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Nodes) != 4 {
		t.Fatalf("nodes = %d, want 4", len(r.Nodes))
	}
	for i, n := range r.Nodes {
		if d := math.Abs(pctChange(r.AvgPowerW, n.AvgPowerW)); d > 2 {
			t.Errorf("node %d power deviates %.2f%% from mean", i, d)
		}
		if !n.LoopDetected {
			t.Errorf("node %d: Dynais found no loop in an MPI app", i)
		}
	}
	// Cluster time is the slowest node.
	var maxT float64
	for _, n := range r.Nodes {
		maxT = math.Max(maxT, n.TimeSec)
	}
	if r.TimeSec != maxT {
		t.Errorf("cluster time %v != slowest node %v", r.TimeSec, maxT)
	}
}

func TestDeterminism(t *testing.T) {
	cal := calibrated(t, workload.BTMZC)
	m := platformModel(t, cal.Platform)
	a, err := Run(cal, Options{Policy: "min_energy_eufs", Model: m, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cal, Options{Policy: "min_energy_eufs", Model: m, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if a.TimeSec != b.TimeSec || a.EnergyJ != b.EnergyJ || a.AvgIMCGHz != b.AvgIMCGHz {
		t.Error("same seed produced different results")
	}
	c, err := Run(cal, Options{Policy: "min_energy_eufs", Model: m, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	if a.TimeSec == c.TimeSec && a.EnergyJ == c.EnergyJ {
		t.Error("different seeds produced identical results (noise missing)")
	}
}

func TestRunAveraged(t *testing.T) {
	cal := calibrated(t, workload.BTMZC)
	r, err := RunAveraged(cal, Options{Policy: "none", Seed: 1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.TimeSec-145) > 5 {
		t.Errorf("averaged time = %v", r.TimeSec)
	}
	if _, err := RunAveraged(cal, Options{}, 0); err == nil {
		t.Error("expected error for zero runs")
	}
}

func TestRunErrors(t *testing.T) {
	cal := calibrated(t, workload.BTMZC)
	if _, err := Run(cal, Options{Policy: "min_energy"}); err == nil {
		t.Error("expected error for missing model")
	}
	m := platformModel(t, cal.Platform)
	if _, err := Run(cal, Options{Policy: "no_such_policy", Model: m}); err == nil {
		t.Error("expected error for unknown policy")
	}
}

func TestRunSpecConvenience(t *testing.T) {
	spec, err := workload.Lookup(workload.BTMZC)
	if err != nil {
		t.Fatal(err)
	}
	r, err := RunSpec(spec, Options{Policy: "none", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.Workload != workload.BTMZC {
		t.Errorf("workload = %q", r.Workload)
	}
	bad := spec
	bad.Nodes = 0
	if _, err := RunSpec(bad, Options{}); err == nil {
		t.Error("expected calibration error")
	}
}

func TestUncoreWindowNeverExceedsHardware(t *testing.T) {
	// Whatever the policy does, the final MSR window must stay inside
	// the hardware range on every node.
	for _, name := range []string{workload.BTMZC, workload.HPCG, workload.BTCUDA} {
		cal := calibrated(t, name)
		m := platformModel(t, cal.Platform)
		r, err := Run(cal, Options{Policy: "min_energy_eufs", Model: m, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		hw := cal.Platform.Machine.CPU
		for i, n := range r.Nodes {
			if n.FinalUncoreMax < hw.UncoreMinRatio || n.FinalUncoreMax > hw.UncoreMaxRatio {
				t.Errorf("%s node %d: final uncore max %d outside [%d,%d]",
					name, i, n.FinalUncoreMax, hw.UncoreMinRatio, hw.UncoreMaxRatio)
			}
		}
	}
}

func TestTraceRecording(t *testing.T) {
	cal := calibrated(t, workload.BTMZC)
	m := platformModel(t, cal.Platform)
	r, err := Run(cal, Options{Policy: "min_energy_eufs", Model: m, Seed: 1, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	tr := r.Nodes[0].Trace
	// ~145 simulated seconds at 1 Hz.
	if len(tr) < 130 || len(tr) > 160 {
		t.Fatalf("trace samples = %d, want ~145", len(tr))
	}
	for i := 1; i < len(tr); i++ {
		if tr[i].TimeSec <= tr[i-1].TimeSec {
			t.Fatal("trace time not increasing")
		}
	}
	// Early samples run at the full uncore window; late ones show the
	// settled eUFS ceiling.
	if tr[5].UncMax != 24 {
		t.Errorf("early uncore ceiling = %d, want 24", tr[5].UncMax)
	}
	last := tr[len(tr)-1]
	if last.UncMax >= 24 {
		t.Errorf("final uncore ceiling = %d, want lowered", last.UncMax)
	}
	if last.PowerW >= tr[5].PowerW {
		t.Errorf("power did not drop along the trace: %.1f -> %.1f", tr[5].PowerW, last.PowerW)
	}
	// Without the option no trace is recorded.
	r2, err := Run(cal, Options{Policy: "none", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r2.Nodes[0].Trace != nil {
		t.Error("trace recorded without Options.Trace")
	}
}

func TestDaemonLimitsBoundThePolicy(t *testing.T) {
	// Site limits: jobs may not go below pstate 4 (2.1 GHz). HPCG's
	// min_energy wants ~1.7 GHz; the daemon clamps it.
	cal := calibrated(t, workload.HPCG)
	m := platformModel(t, cal.Platform)
	free, err := Run(cal, Options{Policy: "min_energy", Model: m, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if free.AvgCPUGHz > 2.0 {
		t.Fatalf("precondition: unbounded ME should go low, got %.2f GHz", free.AvgCPUGHz)
	}
	lim := &eard.Limits{MaxPstate: 4}
	bounded, err := Run(cal, Options{Policy: "min_energy", Model: m, Seed: 1, DaemonLimits: lim})
	if err != nil {
		t.Fatal(err)
	}
	if bounded.AvgCPUGHz < 2.0 {
		t.Errorf("daemon limit not enforced: avg CPU %.2f GHz", bounded.AvgCPUGHz)
	}
	if bounded.Nodes[0].FinalCPUPstate > 4 {
		t.Errorf("final pstate %d beyond site limit 4", bounded.Nodes[0].FinalCPUPstate)
	}
	// An uncore floor bounds the eUFS search.
	floor := &eard.Limits{UncoreFloorRatio: 22}
	eu, err := Run(calibrated(t, workload.BTMZC), Options{
		Policy: "min_energy_eufs",
		Model:  platformModel(t, calibrated(t, workload.BTMZC).Platform),
		Seed:   1, DaemonLimits: floor,
	})
	if err != nil {
		t.Fatal(err)
	}
	if eu.Nodes[0].FinalUncoreMax < 22 {
		t.Errorf("uncore floor violated: final max %d", eu.Nodes[0].FinalUncoreMax)
	}
}

func TestNestedLoopDetectionInSimulation(t *testing.T) {
	// BQCD emits a nested structure (3 passes of a 4-call solver loop
	// per outer step); Dynais must lock the inner loop at level 0 and
	// the outer structure at level 1.
	cal := calibrated(t, workload.BQCD)
	m := platformModel(t, cal.Platform)
	r, err := Run(cal, Options{Policy: "min_energy", Model: m, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	n0 := r.Nodes[0]
	if !n0.LoopDetected {
		t.Fatal("inner loop not detected")
	}
	if n0.NestedLevel < 1 {
		t.Errorf("nested level = %d, want >= 1 (outer structure)", n0.NestedLevel)
	}
	if n0.NestedPeriod < 1 {
		t.Errorf("nested period = %d", n0.NestedPeriod)
	}
}

func TestPoliciesRunOnCascadeLake(t *testing.T) {
	// The whole pipeline on a second CPU generation: calibrate a spec,
	// train its model, and let the eUFS policy harvest the uncore.
	f := workload.Template()
	f.Name = "clx-app"
	f.Platform = "CascadeLake"
	f.ActiveCores = 48
	f.ProcsPerNode = 48
	f.DefaultSegment.TargetPowerW = 360 // 48 busy cores draw more
	spec, err := f.Spec()
	if err != nil {
		t.Fatal(err)
	}
	cal, err := spec.Calibrate()
	if err != nil {
		t.Fatal(err)
	}
	m := platformModel(t, cal.Platform)
	base, err := Run(cal, Options{Policy: "none", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(base.AvgCPUGHz-2.1*0.992) > 0.02 {
		t.Errorf("nominal avg CPU = %.3f GHz, want ~2.08", base.AvgCPUGHz)
	}
	eu, err := Run(cal, Options{Policy: "min_energy_eufs", Model: m, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if eu.EnergyJ >= base.EnergyJ {
		t.Error("eUFS saved nothing on Cascade Lake")
	}
	if eu.AvgIMCGHz >= base.AvgIMCGHz {
		t.Error("uncore not lowered on Cascade Lake")
	}
}
