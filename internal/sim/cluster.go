package sim

import (
	"fmt"

	"goear/internal/par"
	"goear/internal/workload"
)

// PowerManager is the cluster-level energy-control hook of a
// coordinated run: EAR's global manager (EARGM) implements it. At every
// interval it receives each node's average DC power over the last
// interval (0 for nodes whose job already ended) and returns the core
// pstate ceiling it wants enforced (0 = uncapped).
type PowerManager interface {
	// Interval is the manager's control period in seconds.
	Interval() float64
	// Update processes one interval's readings and returns the pstate
	// cap to enforce on every node (0 releases the cap).
	Update(now float64, nodePowerW []float64) (capPstate int, err error)
}

// RunCoordinated executes the workload on all its nodes in lock-step
// time slices under a cluster power manager, the way EAR's node daemons
// advance jobs while EARGM enforces a site power budget over them.
func RunCoordinated(cal workload.Calibrated, opt Options, gm PowerManager) (Result, error) {
	opt = opt.withDefaults()
	if gm == nil {
		return Result{}, fmt.Errorf("sim: coordinated run needs a power manager")
	}
	if gm.Interval() <= 0 {
		return Result{}, fmt.Errorf("sim: power manager interval must be positive")
	}
	if opt.Policy != "none" && opt.Model == nil {
		return Result{}, fmt.Errorf("sim: policy %q needs a trained model", opt.Policy)
	}
	// Coordinated runs advance in lock-step slices; a macro step would
	// overshoot the barrier, so the fast-forward is always off here.
	opt.MacroStep = false

	nodes := make([]*node, cal.Nodes)
	for i := range nodes {
		n, err := newNode(cal, i, opt)
		if err != nil {
			return Result{}, fmt.Errorf("sim: %s node %d: %w", cal.Name, i, err)
		}
		nodes[i] = n
	}

	interval := gm.Interval()
	prevE := make([]float64, len(nodes))
	powers := make([]float64, len(nodes))
	curCap := 0
	for tick := interval; ; tick += interval {
		// Nodes share no state, so each interval's lock-step advance
		// fans out across workers; the manager only runs once every
		// node has reached the barrier, exactly as in the sequential
		// schedule.
		err := par.ForEach(opt.workers(), len(nodes), func(i int) error {
			return nodes[i].stepUntil(tick)
		})
		if err != nil {
			return Result{}, err
		}
		alive := false
		for _, n := range nodes {
			if !n.done {
				alive = true
			}
		}
		for i, n := range nodes {
			e := n.inm.TrueEnergy()
			powers[i] = (e - prevE[i]) / interval
			prevE[i] = e
		}
		cap, err := gm.Update(tick, powers)
		if err != nil {
			return Result{}, err
		}
		if cap != curCap {
			curCap = cap
			for _, n := range nodes {
				if cap == 0 {
					n.setCapRatio(0)
					continue
				}
				ratio, err := cal.Platform.Machine.CPU.PstateRatio(cap)
				if err != nil {
					return Result{}, err
				}
				n.setCapRatio(ratio)
			}
		}
		if !alive {
			break
		}
	}

	res := Result{Workload: cal.Name, Policy: opt.Policy}
	for i, n := range nodes {
		nr, err := n.result()
		if err != nil {
			return Result{}, fmt.Errorf("sim: %s node %d: %w", cal.Name, i, err)
		}
		res.Nodes = append(res.Nodes, nr)
	}
	res.aggregate()
	return res, nil
}
