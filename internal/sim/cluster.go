package sim

import (
	"fmt"

	"goear/internal/par"
	"goear/internal/workload"
)

// PowerManager is the cluster-level energy-control hook of a
// coordinated run: EAR's global manager (EARGM) implements it. At every
// interval it receives each node's average DC power over the last
// interval (0 for nodes whose job already ended) and returns the core
// pstate ceiling it wants enforced (0 = uncapped).
type PowerManager interface {
	// Interval is the manager's control period in seconds.
	Interval() float64
	// Update processes one interval's readings and returns the pstate
	// cap to enforce on every node (0 releases the cap).
	Update(now float64, nodePowerW []float64) (capPstate int, err error)
}

// RunCoordinated executes the workload on all its nodes in lock-step
// time slices under a cluster power manager, the way EAR's node daemons
// advance jobs while EARGM enforces a site power budget over them.
//
// By default nodes are partitioned into Options.Shards batch stepping
// kernels (contiguous node-id ranges) and each interval advances whole
// shards through the struct-of-arrays fast path; Options.ReferenceStep
// selects the per-node reference path instead. Both paths — at any
// Workers and Shards count — produce byte-identical results. Macro
// stepping (Options.MacroStep), when enabled, is bounded by the
// lock-step barrier so intervals still end at exact time boundaries.
func RunCoordinated(cal workload.Calibrated, opt Options, gm PowerManager) (Result, error) {
	opt = opt.withDefaults()
	if gm == nil {
		return Result{}, fmt.Errorf("sim: coordinated run needs a power manager")
	}
	if gm.Interval() <= 0 {
		return Result{}, fmt.Errorf("sim: power manager interval must be positive")
	}
	if opt.Policy != "none" && opt.Model == nil {
		return Result{}, fmt.Errorf("sim: policy %q needs a trained model", opt.Policy)
	}
	if opt.ReferenceStep {
		return runCoordinatedReference(cal, opt, gm)
	}

	nb := opt.Shards
	if nb <= 0 {
		nb = opt.workers()
	}
	if nb > cal.Nodes {
		nb = cal.Nodes
	}
	batches := make([]*Batch, nb)
	for s := range batches {
		b, err := NewBatch(cal, opt)
		if err != nil {
			return Result{}, err
		}
		// Contiguous ranges keep global node order equal to batch order
		// followed by in-batch dense order.
		lo, hi := s*cal.Nodes/nb, (s+1)*cal.Nodes/nb
		for id := lo; id < hi; id++ {
			if _, err := b.Add(id); err != nil {
				return Result{}, fmt.Errorf("sim: %s node %d: %w", cal.Name, id, err)
			}
		}
		batches[s] = b
	}

	interval := gm.Interval()
	prevE := make([]float64, cal.Nodes)
	powers := make([]float64, cal.Nodes)
	curCap := 0
	for tick := interval; ; tick += interval {
		// Shards share no state, so each interval's lock-step advance
		// fans out across workers; the manager only runs once every
		// node has reached the barrier, exactly as in the sequential
		// schedule.
		err := par.ForEach(opt.workers(), len(batches), func(s int) error {
			return batches[s].StepUntil(tick)
		})
		if err != nil {
			return Result{}, err
		}
		alive := false
		idx := 0
		for _, b := range batches {
			if !b.Done() {
				alive = true
			}
			for i := 0; i < b.Len(); i++ {
				e := b.TrueEnergy(i)
				powers[idx] = (e - prevE[idx]) / interval
				prevE[idx] = e
				idx++
			}
		}
		cap, err := gm.Update(tick, powers)
		if err != nil {
			return Result{}, err
		}
		if cap != curCap {
			curCap = cap
			ratio := uint64(0)
			if cap != 0 {
				ratio, err = cal.Platform.Machine.CPU.PstateRatio(cap)
				if err != nil {
					return Result{}, err
				}
			}
			for _, b := range batches {
				if err := b.SetCapRatio(ratio); err != nil {
					return Result{}, err
				}
			}
		}
		if !alive {
			break
		}
	}

	res := Result{Workload: cal.Name, Policy: opt.Policy}
	res.Nodes = make([]NodeResult, 0, cal.Nodes)
	for _, b := range batches {
		nrs, err := b.Results()
		if err != nil {
			return Result{}, err
		}
		res.Nodes = append(res.Nodes, nrs...)
	}
	res.aggregate()
	return res, nil
}

// runCoordinatedReference is the per-node stepping path batch kernels
// are verified against (Options.ReferenceStep).
func runCoordinatedReference(cal workload.Calibrated, opt Options, gm PowerManager) (Result, error) {
	nodes := make([]*node, cal.Nodes)
	for i := range nodes {
		n, err := newNode(cal, i, opt)
		if err != nil {
			return Result{}, fmt.Errorf("sim: %s node %d: %w", cal.Name, i, err)
		}
		nodes[i] = n
	}

	interval := gm.Interval()
	prevE := make([]float64, len(nodes))
	powers := make([]float64, len(nodes))
	curCap := 0
	for tick := interval; ; tick += interval {
		// Nodes share no state, so each interval's lock-step advance
		// fans out across workers; the manager only runs once every
		// node has reached the barrier, exactly as in the sequential
		// schedule.
		err := par.ForEach(opt.workers(), len(nodes), func(i int) error {
			return nodes[i].stepUntil(tick)
		})
		if err != nil {
			return Result{}, err
		}
		alive := false
		for _, n := range nodes {
			if !n.done {
				alive = true
			}
		}
		for i, n := range nodes {
			e := n.inm.TrueEnergy()
			powers[i] = (e - prevE[i]) / interval
			prevE[i] = e
		}
		cap, err := gm.Update(tick, powers)
		if err != nil {
			return Result{}, err
		}
		if cap != curCap {
			curCap = cap
			for _, n := range nodes {
				if cap == 0 {
					n.setCapRatio(0)
					continue
				}
				ratio, err := cal.Platform.Machine.CPU.PstateRatio(cap)
				if err != nil {
					return Result{}, err
				}
				n.setCapRatio(ratio)
			}
		}
		if !alive {
			break
		}
	}

	res := Result{Workload: cal.Name, Policy: opt.Policy}
	for i, n := range nodes {
		nr, err := n.result()
		if err != nil {
			return Result{}, fmt.Errorf("sim: %s node %d: %w", cal.Name, i, err)
		}
		res.Nodes = append(res.Nodes, nr)
	}
	res.aggregate()
	return res, nil
}
