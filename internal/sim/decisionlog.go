package sim

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"goear/internal/earl"
	"goear/internal/telemetry"
)

// Decision is one EARL signature-handling event in the stable JSON
// schema of Result.WriteDecisionLog. Zero-valued optional fields are
// omitted, so a line carries exactly what the decision contained.
type Decision struct {
	Node        int     `json:"node"`
	TimeSec     float64 `json:"t"`
	State       string  `json:"state"`
	PolicyState string  `json:"policy_state,omitempty"`
	CPUPstate   int     `json:"cpu_pstate"`
	SetIMC      bool    `json:"set_imc,omitempty"`
	IMCMinRatio uint64  `json:"imc_min,omitempty"`
	IMCMaxRatio uint64  `json:"imc_max,omitempty"`
	Applied     bool    `json:"applied"`
	Validated   bool    `json:"validated,omitempty"`
	SigChange   bool    `json:"sig_change,omitempty"`
	CPI         float64 `json:"cpi"`
	GBs         float64 `json:"gbs"`
	DCPowerW    float64 `json:"dc_power_w"`
	PredTimeSec float64 `json:"pred_time_s,omitempty"`
	PredPowerW  float64 `json:"pred_power_w,omitempty"`
	RefTimeSec  float64 `json:"ref_time_s,omitempty"`
	RefPowerW   float64 `json:"ref_power_w,omitempty"`
}

// decisionsFromEvents converts an EARL trace into the log schema. The
// node id is filled in at write time from the result's node order.
func decisionsFromEvents(evs []earl.Event) []Decision {
	if len(evs) == 0 {
		return nil
	}
	out := make([]Decision, len(evs))
	for i, ev := range evs {
		d := Decision{
			TimeSec:   ev.TimeSec,
			State:     ev.State.String(),
			CPUPstate: ev.Freqs.CPUPstate,
			SetIMC:    ev.Freqs.SetIMC,
			Applied:   ev.Applied,
			Validated: ev.Validated,
			SigChange: ev.SigChange,
			CPI:       ev.Sig.CPI,
			GBs:       ev.Sig.GBs,
			DCPowerW:  ev.Sig.DCPowerW,
		}
		if ev.Applied {
			d.PolicyState = ev.PolicyState.String()
		}
		if ev.Freqs.SetIMC {
			d.IMCMinRatio = ev.Freqs.IMCMinRatio
			d.IMCMaxRatio = ev.Freqs.IMCMaxRatio
		}
		if ev.HavePred {
			d.PredTimeSec = ev.Pred.TimeSec
			d.PredPowerW = ev.Pred.PowerW
			d.RefTimeSec = ev.Pred.RefTimeSec
			d.RefPowerW = ev.Pred.RefPowerW
		}
		out[i] = d
	}
	return out
}

// WriteDecisionLog writes every node's policy decisions as JSON lines,
// in node order then event order. Because decisions are collected
// per-node from EARL's deterministic trace (never through a shared
// recorder), the output is byte-identical at any Options.Workers
// setting. Requires Options.DecisionLog; without it the log is empty.
func (r *Result) WriteDecisionLog(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for nodeID := range r.Nodes {
		for _, d := range r.Nodes[nodeID].Decisions {
			d.Node = nodeID
			if err := enc.Encode(d); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// RecordDecisions feeds the run's decision log into a telemetry event
// recorder (one event per decision, node order then event order).
// Callers invoke it after the run completes, so recording order — and
// therefore the /events payload — stays deterministic regardless of
// the worker count the run used.
func (r *Result) RecordDecisions(rec *telemetry.Recorder) {
	for nodeID := range r.Nodes {
		for _, d := range r.Nodes[nodeID].Decisions {
			ev := telemetry.Event{
				TimeSec: d.TimeSec,
				Kind:    "policy.decision",
				Src:     fmt.Sprintf("node%d", nodeID),
				Str: map[string]string{
					"policy": r.Policy,
					"state":  d.State,
				},
				Num: map[string]float64{
					"cpu_pstate": float64(d.CPUPstate),
					"cpi":        d.CPI,
					"gbs":        d.GBs,
					"dc_power_w": d.DCPowerW,
				},
			}
			if d.Applied {
				ev.Str["policy_state"] = d.PolicyState
			}
			if d.SetIMC {
				ev.Num["imc_min"] = float64(d.IMCMinRatio)
				ev.Num["imc_max"] = float64(d.IMCMaxRatio)
			}
			if d.PredTimeSec != 0 || d.PredPowerW != 0 {
				ev.Num["pred_time_s"] = d.PredTimeSec
				ev.Num["pred_power_w"] = d.PredPowerW
				// Predicted-vs-actual energy: predicted iteration energy
				// against the measured signature's power over the same
				// predicted time.
				ev.Num["pred_energy_j"] = d.PredTimeSec * d.PredPowerW
				ev.Num["actual_energy_j"] = d.PredTimeSec * d.DCPowerW
			}
			rec.Record(ev)
		}
	}
}
