package sim

import (
	"sync/atomic"

	"goear/internal/telemetry"
)

// Metric names (package-level constants per the goearvet telemetry
// analyzer).
const (
	metricSimSteps    = "goear_sim_steps_total"
	metricSimMacro    = "goear_sim_macro_steps_total"
	metricSimNodeRuns = "goear_sim_node_runs_total"
	metricSimRecycles = "goear_sim_pool_recycles_total"
)

// simTel is the package instrument bundle. The pointer stays nil until
// global telemetry is enabled; runNode loads it once per node run and
// flushes the node's plain step counters in one Add each, so the
// per-step hot path carries no atomics for telemetry.
type simTel struct {
	steps    *telemetry.Counter
	macro    *telemetry.Counter
	runs     *telemetry.Counter
	recycles *telemetry.Counter
}

var tel atomic.Pointer[simTel]

func init() {
	telemetry.OnEnable(func(s *telemetry.Set) {
		if s == nil {
			tel.Store(nil)
			return
		}
		r := s.Registry
		tel.Store(&simTel{
			steps:    r.Counter(metricSimSteps, "simulation steps executed"),
			macro:    r.Counter(metricSimMacro, "steady-phase macro-step activations"),
			runs:     r.Counter(metricSimNodeRuns, "node runs completed"),
			recycles: r.Counter(metricSimRecycles, "node allocations recycled from the pool"),
		})
	})
}
