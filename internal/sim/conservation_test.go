package sim

import (
	"math"
	"math/rand"
	"testing"

	"goear/internal/metrics"
	"goear/internal/msr"
	"goear/internal/policy"
	"goear/internal/workload"
)

// TestRaplCountersMatchTrueIntegral cross-checks the instrument chain:
// the RAPL MSR counters, read back through the wraparound-aware path,
// must agree with the simulator's exact package-energy integral.
func TestRaplCountersMatchTrueIntegral(t *testing.T) {
	cal := calibrated(t, workload.BTMZC)
	n, err := newNode(cal, 0, Options{Policy: "none", Seed: 1}.withDefaults())
	if err != nil {
		t.Fatal(err)
	}
	for !n.done {
		if err := n.stepOnce(); err != nil {
			t.Fatal(err)
		}
	}
	var raplJ float64
	for _, s := range n.sockets {
		v, err := s.MSR.Read(msr.MSRPkgEnergyStatus)
		if err != nil {
			t.Fatal(err)
		}
		raplJ += s.MSR.EnergyJoules(v)
	}
	// The 32-bit counters wrap every ~2^32/2^14 J ≈ 262 kJ; a 145 s run
	// at ~235 W package stays below one wrap, so the raw values are the
	// integral.
	if rel := math.Abs(raplJ-n.pkgJ) / n.pkgJ; rel > 1e-3 {
		t.Errorf("RAPL counters %.1f J vs true integral %.1f J (%.4f%% off)",
			raplJ, n.pkgJ, rel*100)
	}
	// Node Manager true energy equals avg power times time by
	// construction; its published value may lag by at most one second.
	if lag := n.inm.TrueEnergy() - n.inm.ReadEnergy(); lag < 0 || lag > 400 {
		t.Errorf("published DC energy lags by %.1f J", lag)
	}
}

// TestEnergyScopesNest checks the instrument hierarchy: core dynamic +
// uncore + package base = PKG <= DC, and DRAM + PKG < DC.
func TestEnergyScopesNest(t *testing.T) {
	for _, name := range []string{workload.BTMZC, workload.HPCG, workload.BTCUDA} {
		cal := calibrated(t, name)
		r, err := Run(cal, Options{Policy: "none", Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		n0 := r.Nodes[0]
		if n0.PkgEnergyJ <= 0 || n0.DramEnergyJ <= 0 {
			t.Fatalf("%s: scope energies not recorded: %+v", name, n0)
		}
		if n0.PkgEnergyJ+n0.DramEnergyJ >= n0.EnergyJ {
			t.Errorf("%s: PKG(%.0f)+DRAM(%.0f) not inside DC(%.0f)",
				name, n0.PkgEnergyJ, n0.DramEnergyJ, n0.EnergyJ)
		}
	}
}

// TestPolicyFuzzNeverViolatesWindow drives the eUFS policy with random
// (but valid) signatures and checks the MSR-visible invariants: the
// requested uncore window always stays inside the hardware range and
// the CPU pstate inside the table.
func TestPolicyFuzzNeverViolatesWindow(t *testing.T) {
	cal := calibrated(t, workload.BTMZC)
	m := platformModel(t, cal.Platform)
	cpuModel := cal.Platform.Machine.CPU
	pol, err := policy.New(policy.MinEnergyEUFS, policy.Config{
		Model:          m,
		CPUPolicyTh:    0.05,
		UncPolicyTh:    0.02,
		HWGuided:       true,
		UseAVX512Model: true,
		DefaultPstate:  1,
		UncoreMinRatio: cpuModel.UncoreMinRatio,
		UncoreMaxRatio: cpuModel.UncoreMaxRatio,
		SigChangeTh:    0.15,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	cur := 1
	unc := cpuModel.UncoreMaxRatio
	for i := 0; i < 2000; i++ {
		sig := randomSignature(rng)
		nf, _, err := pol.Apply(policy.Inputs{
			Sig: sig, CurrentPstate: cur, CurrentUncoreRatio: unc,
		})
		if err != nil {
			t.Fatalf("iteration %d: %v (sig %+v)", i, err, sig)
		}
		if nf.CPUPstate < 0 || nf.CPUPstate >= m.PstateCount() {
			t.Fatalf("iteration %d: pstate %d outside table", i, nf.CPUPstate)
		}
		if nf.SetIMC {
			if nf.IMCMaxRatio < cpuModel.UncoreMinRatio || nf.IMCMaxRatio > cpuModel.UncoreMaxRatio {
				t.Fatalf("iteration %d: uncore max %d outside hardware window", i, nf.IMCMaxRatio)
			}
			if nf.IMCMinRatio > nf.IMCMaxRatio {
				t.Fatalf("iteration %d: inverted window %d..%d", i, nf.IMCMinRatio, nf.IMCMaxRatio)
			}
			unc = nf.IMCMaxRatio
		}
		cur = nf.CPUPstate
		// Occasionally reset, as EARL does on phase changes.
		if rng.Intn(37) == 0 {
			pol.Reset()
			unc = cpuModel.UncoreMaxRatio
		}
	}
}

// randomSignature produces plausible (always Valid) signatures across
// the whole behaviour space.
func randomSignature(rng *rand.Rand) metrics.Signature {
	cpi := 0.2 + rng.Float64()*4
	gbs := rng.Float64() * 220
	return metrics.Signature{
		TimeSec:     10,
		IterTimeSec: 0.5 + rng.Float64()*3,
		DCPowerW:    250 + rng.Float64()*150,
		CPI:         cpi,
		TPI:         gbs * cpi / (40 * 2.4 * 64),
		GBs:         gbs,
		VPI:         rng.Float64(),
		AvgCPUGHz:   1.0 + rng.Float64()*1.4,
		AvgIMCGHz:   1.2 + rng.Float64()*1.2,
		Iterations:  1 + rng.Intn(20),
	}
}
