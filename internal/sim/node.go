package sim

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"goear/internal/cpu"
	"goear/internal/eard"
	"goear/internal/earl"
	"goear/internal/metrics"
	"goear/internal/msr"
	"goear/internal/perf"
	"goear/internal/policy"
	"goear/internal/power"
	"goear/internal/uncore"
	"goear/internal/workload"
)

// node is the state of one simulated compute node during a run.
type node struct {
	cal workload.Calibrated
	opt Options

	// sockets and ctls point into sockStore/ctlStore so each node makes
	// two backing allocations instead of one per socket; the pointer
	// slices keep call sites (and the no-copy discipline around the MSR
	// atomics) unchanged.
	sockets   []*cpu.Socket
	ctls      []*uncore.Controller
	sockStore []cpu.Socket
	ctlStore  []uncore.Controller
	files     []*msr.File
	rapl      power.Rapl
	inm       power.NodeManager

	// curve adapts the workload's HW heuristic curve. It captures the
	// node (not the workload), so one closure allocation serves every
	// run the node is recycled for.
	curve uncore.Curve

	now float64

	// Cumulative node counters (what EARL samples).
	instr, cycles, avx, bytes float64
	coreFreqSec, imcFreqSec   float64
	// True energy integrals by scope (simulator bookkeeping).
	pkgJ, dramJ float64

	// Steady-state evaluation cache. The operating point changes rarely
	// relative to the 10 ms step, so a same-key fast path plus a linear
	// scan over the handful of visited points beats a map: no hashing
	// on the hot path and no per-node map allocation.
	lastKey   cacheKey
	lastEntry evalEntry
	haveEval  bool
	cacheKeys []cacheKey
	cacheVals []evalEntry

	// mpiEvents is the per-iteration MPI call-site sequence, computed
	// once: Spec.MPIEvents allocates and hashes per call.
	mpiEvents []uint32

	// nctl is the earl.Ctl adapter over this node, embedded so the
	// actuation path never allocates.
	nctl nodeCtl

	rng *rand.Rand
	lib *earl.Library

	// capRatio, when non-zero, is a node-daemon-enforced ceiling on the
	// core ratio (the EARGM powercap path); the policy's requests are
	// clamped to it at actuation level.
	capRatio uint64

	// Trace sampling state.
	trace      []TracePoint
	lastTraceT float64
	lastTraceE float64
	lastTraceB float64

	// Per-phase accumulation (Options.Phases). Segments run strictly in
	// order, so phases[i] covers segment i; the backing array survives
	// pool recycles (result copies out) and is truncated by init.
	phases []PhaseSample

	// Iteration progress, for resumable stepping (RunCoordinated).
	segIdx, iterInSeg int
	instrLeft         float64
	wallLeft          float64
	iterActive        bool
	done              bool
	tNoise, pNoise    float64

	// stepCount/macroCount tally stepOnce calls and macro-step
	// activations for this run; plain ints on purpose — runNode flushes
	// them into the telemetry counters in one atomic Add each.
	// everUsed marks a node that already served a run (i.e. a pool
	// recycle on the next Get); init must NOT reset it.
	stepCount  uint64
	macroCount uint64
	everUsed   bool

	// macroLimit, when positive, bounds macro-step fast-forwarding to
	// iterations that complete by this simulated time. Coordinated
	// (lock-step) runs set it to the current barrier so a macro step
	// never overshoots an interval boundary; 0 leaves macro unbounded.
	macroLimit float64

	// Macro-step (Options.MacroStep) bookkeeping: iterKey/iterSingle
	// track whether the in-flight iteration has run entirely at one
	// operating point; prevIterKey/prevIterSingle hold the completed
	// iteration's verdict. A new iteration that starts at the same
	// stable point is consumed in one analytic step.
	iterKey        cacheKey
	iterSingle     bool
	prevIterKey    cacheKey
	prevIterSingle bool
}

type cacheKey struct {
	seg  int
	core uint64
	unc  uint64
	cap  uint64
}

type evalEntry struct {
	res perf.Result
	brk power.Breakdown
	// effRatio is the licence-resolved core ratio driving the HW
	// uncore heuristic.
	effRatio uint64
}

// nodePool recycles per-node state across runs. Every field is reset by
// (*node).init, so reuse cannot leak state between runs; it exists purely
// to keep the per-run constant-size allocations (sockets, MSR files,
// meters, caches) out of the steady-state experiment loop.
var nodePool = sync.Pool{New: func() any { return new(node) }}

// runNode simulates the whole workload on one node.
func runNode(cal workload.Calibrated, nodeID int, opt Options) (NodeResult, error) {
	n := nodePool.Get().(*node)
	tl := tel.Load()
	if tl != nil && n.everUsed {
		tl.recycles.Inc()
	}
	n.everUsed = true
	defer func() {
		// The trace slice and EARL instance escape into the result;
		// drop them so reuse cannot alias a returned NodeResult.
		n.trace = nil
		n.lib = nil
		nodePool.Put(n)
	}()
	if err := n.init(cal, nodeID, opt); err != nil {
		return NodeResult{}, err
	}
	for !n.done {
		if err := n.stepOnce(); err != nil {
			return NodeResult{}, err
		}
	}
	res, err := n.result()
	if err == nil && tl != nil {
		tl.runs.Inc()
		tl.steps.Add(n.stepCount)
		tl.macro.Add(n.macroCount)
	}
	return res, err
}

// startIteration draws this iteration's noise and work budget.
func (n *node) startIteration() {
	sd := *n.opt.NoiseSD
	n.tNoise = 1 + sd*n.rng.NormFloat64()
	n.pNoise = 1 + sd*n.rng.NormFloat64()
	if n.tNoise < 0.9 {
		n.tNoise = 0.9
	}
	if n.pNoise < 0.9 {
		n.pNoise = 0.9
	}
	if n.cal.Class == workload.Accelerator {
		// Accelerator iterations are paced by the GPU: wall time is
		// fixed, the host core spins for however many instructions fit.
		n.wallLeft = n.cal.IterPeriodSec * n.tNoise
		n.instrLeft = 0
	} else {
		n.instrLeft = n.cal.Segs[n.segIdx].InstrPerIter
		n.wallLeft = 0
	}
	n.iterActive = true
}

// stepOnce advances the node by at most one simulation step, crossing
// iteration and segment boundaries as needed. It is the resumable core
// used both by full runs and by coordinated (powercapped) cluster runs.
func (n *node) stepOnce() error {
	if n.done {
		return nil
	}
	n.stepCount++
	first := false
	if !n.iterActive {
		n.startIteration()
		first = true
	}
	e, err := n.evalAt(n.segIdx)
	if err != nil {
		return err
	}
	key := n.lastKey
	if first {
		n.iterKey, n.iterSingle = key, true
	} else if key != n.iterKey {
		n.iterSingle = false
	}

	spi := e.res.SecPerInstr * n.tNoise

	// Steady-phase fast-forward: the previous iteration ran entirely at
	// this operating point, so this one will too (noise scales the
	// whole iteration uniformly) — consume it in one analytic step.
	// Noise draws, EARL events and policy cadence are identical to
	// exact mode; only the integral summation order differs.
	macro := first && n.opt.MacroStep && !n.opt.Trace &&
		n.prevIterSingle && key == n.prevIterKey
	if macro && n.macroLimit > 0 {
		// Lock-step runs may not overshoot their barrier: fast-forward
		// only iterations that complete inside the current slice.
		projDt := n.instrLeft * spi
		if n.cal.Class == workload.Accelerator {
			projDt = n.wallLeft
		}
		if n.now+projDt > n.macroLimit {
			macro = false
		}
	}
	if macro {
		// A still-ramping uncore controller would move mid-iteration
		// (and exact mode would re-evaluate at each new ratio), so the
		// fast-forward additionally requires every controller settled.
		for _, c := range n.ctls {
			ok, err := c.Settled(e.effRatio)
			if err != nil {
				return err
			}
			if !ok {
				macro = false
				break
			}
		}
	}

	if macro {
		n.macroCount++
	}

	var dt, nInstr float64
	switch {
	case macro && n.cal.Class == workload.Accelerator:
		dt = n.wallLeft
		nInstr = dt / spi
		n.wallLeft = 0
	case macro:
		nInstr = n.instrLeft
		dt = nInstr * spi
		n.instrLeft = 0
	case n.cal.Class == workload.Accelerator:
		dt = math.Min(n.opt.StepSec, n.wallLeft)
		nInstr = dt / spi
		n.wallLeft -= dt
	default:
		nInstr = n.opt.StepSec / spi
		if nInstr > n.instrLeft {
			nInstr = n.instrLeft
		}
		dt = nInstr * spi
		n.instrLeft -= nInstr
	}
	if err := n.advance(n.segIdx, e, nInstr, dt, n.pNoise); err != nil {
		return err
	}

	finished := n.instrLeft <= 1e-6 && n.wallLeft <= 1e-9
	if !finished {
		return nil
	}
	n.iterActive = false
	n.prevIterKey, n.prevIterSingle = n.iterKey, n.iterSingle
	if err := n.iterationBoundary(); err != nil {
		return err
	}
	n.iterInSeg++
	if n.iterInSeg >= n.cal.Segs[n.segIdx].Iterations {
		n.iterInSeg = 0
		n.segIdx++
		if n.segIdx >= len(n.cal.Segs) {
			n.done = true
		}
	}
	return nil
}

// stepUntil advances the node to (at least) the given simulated time or
// to completion, whichever comes first. The target doubles as the
// macro-step bound: a lock-step caller's barrier must not be overshot
// by an analytic fast-forward.
func (n *node) stepUntil(t float64) error {
	n.macroLimit = t
	for !n.done && n.now < t {
		if err := n.stepOnce(); err != nil {
			return err
		}
	}
	return nil
}

// setCapRatio applies (or with 0 releases) the node-daemon core-ratio
// ceiling used by cluster power management.
func (n *node) setCapRatio(r uint64) {
	n.capRatio = r
}

func newNode(cal workload.Calibrated, nodeID int, opt Options) (*node, error) {
	n := new(node)
	if err := n.init(cal, nodeID, opt); err != nil {
		return nil, err
	}
	return n, nil
}

// init (re)builds the node in place for one run, reusing every buffer
// the receiver already owns. It must reset all run state: recycled
// nodes come out of nodePool mid-campaign.
func (n *node) init(cal workload.Calibrated, nodeID int, opt Options) error {
	m := cal.Platform.Machine
	n.cal, n.opt = cal, opt
	n.now = 0
	n.instr, n.cycles, n.avx, n.bytes = 0, 0, 0, 0
	n.coreFreqSec, n.imcFreqSec = 0, 0
	n.pkgJ, n.dramJ = 0, 0
	n.haveEval = false
	n.cacheKeys = n.cacheKeys[:0]
	n.cacheVals = n.cacheVals[:0]
	n.capRatio = 0
	n.trace = nil
	n.lastTraceT, n.lastTraceE, n.lastTraceB = 0, 0, 0
	n.phases = n.phases[:0]
	n.segIdx, n.iterInSeg = 0, 0
	n.instrLeft, n.wallLeft = 0, 0
	n.iterActive, n.done = false, false
	n.stepCount, n.macroCount = 0, 0
	n.tNoise, n.pNoise = 0, 0
	n.iterKey, n.prevIterKey = cacheKey{}, cacheKey{}
	n.iterSingle, n.prevIterSingle = false, false
	n.macroLimit = 0
	n.lib = nil
	n.mpiEvents = cal.AppendMPIEvents(n.mpiEvents)
	n.nctl.n = n
	if n.curve == nil {
		n.curve = n.hwCurve()
	}

	seed := opt.Seed*1000003 + int64(nodeID)*7907 + 1
	if n.rng == nil {
		n.rng = rand.New(rand.NewSource(seed))
	} else {
		// Seed restores the exact generator state NewSource(seed)
		// produces, so recycled nodes draw identical noise sequences.
		n.rng.Seed(seed)
	}

	ns := m.CPU.Sockets
	if cap(n.sockStore) < ns {
		n.sockStore = make([]cpu.Socket, ns)
		n.ctlStore = make([]uncore.Controller, ns)
		n.sockets = make([]*cpu.Socket, ns)
		n.ctls = make([]*uncore.Controller, ns)
		n.files = make([]*msr.File, ns)
	} else {
		n.sockStore = n.sockStore[:ns]
		n.ctlStore = n.ctlStore[:ns]
		n.sockets = n.sockets[:ns]
		n.ctls = n.ctls[:ns]
		n.files = n.files[:ns]
	}
	for s := 0; s < ns; s++ {
		sock := &n.sockStore[s]
		if err := sock.Init(m.CPU, s); err != nil {
			return err
		}
		ctl := &n.ctlStore[s]
		if err := ctl.Init(sock.MSR, n.curve); err != nil {
			return err
		}
		n.sockets[s], n.ctls[s], n.files[s] = sock, ctl, sock.MSR
	}
	if err := n.rapl.Init(n.files); err != nil {
		return err
	}
	n.inm.Init()

	// Initial operating point: the paper's baseline is the nominal
	// frequency with the hardware uncore range wide open.
	p0 := 1
	if opt.FixedCPUPstate != nil {
		p0 = *opt.FixedCPUPstate
	}
	nctl := &n.nctl
	if err := nctl.SetCPUPstate(p0); err != nil {
		return err
	}
	if opt.FixedUncoreRatio != nil {
		r := *opt.FixedUncoreRatio
		if err := nctl.SetUncoreLimits(r, r); err != nil {
			return err
		}
	}

	if opt.Policy != "none" {
		var libCtl earl.Ctl = nctl
		if opt.DaemonLimits != nil {
			d, err := eard.NewDaemon(nctl, *opt.DaemonLimits)
			if err != nil {
				return err
			}
			libCtl = d
		}
		pcfg := policy.Config{
			Model:          opt.Model,
			CPUPolicyTh:    *opt.CPUTh,
			UncPolicyTh:    *opt.UncTh,
			HWGuided:       !opt.HWGuidedOff,
			UseAVX512Model: !opt.NoAVX512Model,
			DefaultPstate:  1,
			UncoreMinRatio: m.CPU.UncoreMinRatio,
			UncoreMaxRatio: m.CPU.UncoreMaxRatio,
			SigChangeTh:    opt.SigChangeTh,
			PinBothLimits:  opt.PinBothUncoreLimits,
		}
		pol, err := policy.New(opt.Policy, pcfg)
		if err != nil {
			return err
		}
		lib, err := earl.New(earl.Config{
			Policy:       pol,
			MinWindowSec: opt.MinWindowSec,
			SigChangeTh:  opt.SigChangeTh,
		}, libCtl)
		if err != nil {
			return err
		}
		if err := lib.Start(0); err != nil {
			return err
		}
		n.lib = lib
	}
	return nil
}

// hwCurve adapts the workload's heuristic-response curve; the paper's
// per-workload curves were calibrated against effective core ratios.
func (n *node) hwCurve() uncore.Curve {
	return func(core uint64) uint64 { return n.cal.HWUncore(core) }
}

// evalAt returns the cached steady-state behaviour at the node's
// current operating point, honouring any power-management core cap.
func (n *node) evalAt(segIdx int) (evalEntry, error) {
	coreRatio, uncRatio, err := n.sockets[0].OperatingPoint()
	if err != nil {
		return evalEntry{}, err
	}
	if n.capRatio != 0 && coreRatio > n.capRatio {
		coreRatio = n.capRatio
	}
	if uncRatio == 0 {
		// Boot transient: the controller has not ticked yet.
		uncRatio = n.cal.Platform.Machine.CPU.UncoreMinRatio
	}
	key := cacheKey{segIdx, coreRatio, uncRatio, n.capRatio}
	if n.haveEval && key == n.lastKey {
		return n.lastEntry, nil
	}
	for i := range n.cacheKeys {
		if n.cacheKeys[i] == key {
			n.lastKey, n.lastEntry, n.haveEval = key, n.cacheVals[i], true
			return n.lastEntry, nil
		}
	}
	seg := n.cal.Segs[segIdx]
	m := n.cal.Platform.Machine
	res, err := perf.Evaluate(m, seg.Phase, perf.Operating{CoreRatio: coreRatio, UncoreRatio: uncRatio})
	if err != nil {
		return evalEntry{}, err
	}
	brk, err := n.cal.Platform.Power.Node(power.Input{
		CoreFreqGHz:   res.EffCoreFreq.GHzF(),
		UncoreFreqGHz: res.UncoreFreq.GHzF(),
		Sockets:       m.CPU.Sockets,
		ActiveCores:   n.cal.ActiveCores,
		Activity:      seg.Activity,
		GBs:           res.NodeGBs,
		GPUPower:      n.cal.GPUPowerW,
	})
	if err != nil {
		return evalEntry{}, err
	}
	e := evalEntry{
		res:      res,
		brk:      brk,
		effRatio: uint64(math.Round(res.EffCoreFreq.GHzF() * 10)),
	}
	n.cacheKeys = append(n.cacheKeys, key)
	n.cacheVals = append(n.cacheVals, e)
	n.lastKey, n.lastEntry, n.haveEval = key, e, true
	return e, nil
}

// advance moves simulated time forward by dt with nInstr instructions
// retiring per active core.
func (n *node) advance(segIdx int, e evalEntry, nInstr, dt, pNoise float64) error {
	seg := n.cal.Segs[segIdx]
	nodeInstr := nInstr * float64(n.cal.ActiveCores)

	n.instr += nodeInstr
	// Unhalted cycles follow wall time at the effective clock, so
	// iteration noise shows up in measured CPI as it does on hardware.
	n.cycles += dt * e.res.EffCoreFreq.GHzF() * 1e9 * float64(n.cal.ActiveCores)
	n.avx += seg.Phase.VPI * nodeInstr
	n.bytes += nodeInstr * seg.Phase.BytesPerInstr

	total := e.brk.Total * pNoise
	if err := n.inm.Advance(total, dt); err != nil {
		return err
	}
	scaled := e.brk
	scaled.Pkg *= pNoise
	scaled.Dram *= pNoise
	if err := n.rapl.Advance(scaled, dt); err != nil {
		return err
	}
	n.pkgJ += scaled.Pkg * dt
	n.dramJ += scaled.Dram * dt

	n.coreFreqSec += e.res.EffCoreFreq.GHzF() * n.cal.FreqBias * dt
	n.imcFreqSec += e.res.UncoreFreq.GHzF() * n.cal.IMCBias * dt

	if n.opt.Phases {
		// Segments run in order, each visited contiguously, so the
		// current segment is either the last sample or a fresh one.
		if len(n.phases) == segIdx {
			n.phases = append(n.phases, PhaseSample{Seg: segIdx, StartSec: n.now})
		}
		ph := &n.phases[segIdx]
		ph.PkgJ += scaled.Pkg * dt
		ph.DramJ += scaled.Dram * dt
		// Uncore is not separately noise-scaled in the RAPL view (it is
		// a component of Pkg there); for attribution it carries the same
		// multiplicative noise as its parent domain.
		ph.UncoreJ += e.brk.Uncore * pNoise * dt
		ph.NodeJ += total * dt
		ph.Instr += nodeInstr
		ph.Cycles += dt * e.res.EffCoreFreq.GHzF() * 1e9 * float64(n.cal.ActiveCores)
		ph.DRAMBytes += nodeInstr * seg.Phase.BytesPerInstr
		ph.CoreFreqSec += e.res.EffCoreFreq.GHzF() * n.cal.FreqBias * dt
		ph.IMCFreqSec += e.res.UncoreFreq.GHzF() * n.cal.IMCBias * dt
		ph.EndSec = n.now + dt
	}

	for _, c := range n.ctls {
		if err := c.Advance(dt, e.effRatio); err != nil {
			return err
		}
	}
	n.now += dt
	if n.opt.Trace && n.now-n.lastTraceT >= n.opt.TraceStepSec {
		if err := n.traceSample(e); err != nil {
			return err
		}
	}
	return nil
}

// traceSample appends one time-series point.
func (n *node) traceSample(e evalEntry) error {
	dt := n.now - n.lastTraceT
	energy := n.inm.TrueEnergy()
	bytes := n.bytes
	ps, err := n.nctl.CurrentPstate()
	if err != nil {
		return err
	}
	lim, err := n.sockets[0].UncoreLimits()
	if err != nil {
		return err
	}
	p := TracePoint{
		TimeSec:   n.now,
		PowerW:    (energy - n.lastTraceE) / dt,
		CPUGHz:    e.res.EffCoreFreq.GHzF() * n.cal.FreqBias,
		IMCGHz:    e.res.UncoreFreq.GHzF() * n.cal.IMCBias,
		GBs:       (bytes - n.lastTraceB) / dt / 1e9,
		CPUPstate: ps,
		UncMax:    lim.MaxRatio,
	}
	if n.instr > 0 {
		p.CPI = n.cycles / n.instr
	}
	n.trace = append(n.trace, p)
	n.lastTraceT = n.now
	n.lastTraceE = energy
	n.lastTraceB = bytes
	return nil
}

// iterationBoundary feeds EARL the iteration's MPI events (or a
// time-guided tick for non-MPI workloads).
func (n *node) iterationBoundary() error {
	if n.lib == nil {
		return nil
	}
	if evs := n.mpiEvents; len(evs) > 0 {
		inner := n.cal.InnerLoopsPerIter
		if inner < 1 {
			inner = 1
		}
		for l := 0; l < inner; l++ {
			for _, ev := range evs {
				if err := n.lib.OnMPICall(ev, n.now); err != nil {
					return err
				}
			}
		}
		return nil
	}
	return n.lib.OnTick(n.now)
}

// result assembles the node's run outcome.
func (n *node) result() (NodeResult, error) {
	if n.now <= 0 || n.instr <= 0 {
		return NodeResult{}, fmt.Errorf("sim: empty run")
	}
	ps, err := n.nctl.CurrentPstate()
	if err != nil {
		return NodeResult{}, err
	}
	lim, err := n.sockets[0].UncoreLimits()
	if err != nil {
		return NodeResult{}, err
	}
	r := NodeResult{
		TimeSec:        n.now,
		EnergyJ:        n.inm.TrueEnergy(),
		PkgEnergyJ:     n.pkgJ,
		DramEnergyJ:    n.dramJ,
		AvgCPUGHz:      n.coreFreqSec / n.now,
		AvgIMCGHz:      n.imcFreqSec / n.now,
		AvgCPI:         n.cycles / n.instr,
		AvgGBs:         n.bytes / n.now / 1e9,
		FinalCPUPstate: ps,
		FinalUncoreMax: lim.MaxRatio,
	}
	r.AvgPowerW = r.EnergyJ / r.TimeSec
	r.AvgPkgPowerW = r.PkgEnergyJ / r.TimeSec
	r.Trace = n.trace
	if n.opt.Phases {
		// Copy out: the node (and its phases backing array) goes back to
		// the pool, but results outlive the run.
		r.Phases = append([]PhaseSample(nil), n.phases...)
	}
	if n.lib != nil {
		r.Signatures = n.lib.Signatures()
		r.LoopDetected = n.lib.LoopDetected()
		r.NestedLevel, r.NestedPeriod = n.lib.NestedStructure()
		for _, ev := range n.lib.Events() {
			if ev.Applied {
				r.PolicyApplies++
			}
		}
		if n.opt.DecisionLog {
			r.Decisions = decisionsFromEvents(n.lib.Events())
		}
	}
	return r, nil
}

// nodeCtl implements earl.Ctl over the node.
type nodeCtl struct{ n *node }

func (c *nodeCtl) SetCPUPstate(p int) error {
	ratio, err := c.n.cal.Platform.Machine.CPU.PstateRatio(p)
	if err != nil {
		return err
	}
	for _, s := range c.n.sockets {
		if err := s.RequestRatio(ratio); err != nil {
			return err
		}
	}
	return nil
}

func (c *nodeCtl) SetUncoreLimits(minR, maxR uint64) error {
	for _, s := range c.n.sockets {
		if err := s.SetUncoreLimits(minR, maxR); err != nil {
			return err
		}
	}
	return nil
}

func (c *nodeCtl) CurrentPstate() (int, error) {
	ratio, err := c.n.sockets[0].RequestedRatio()
	if err != nil {
		return 0, err
	}
	return c.n.cal.Platform.Machine.CPU.RatioPstate(ratio)
}

func (c *nodeCtl) CurrentUncoreRatio() (uint64, error) {
	return c.n.sockets[0].CurrentUncoreRatio()
}

func (c *nodeCtl) Counters() (metrics.Sample, error) {
	n := c.n
	return metrics.Sample{
		TimeSec:         n.now,
		Instructions:    n.instr,
		CoreCycles:      n.cycles,
		AVXInstructions: n.avx,
		DRAMBytes:       n.bytes,
		EnergyJ:         n.inm.ReadEnergy(),
		CoreFreqSeconds: n.coreFreqSec,
		IMCFreqSeconds:  n.imcFreqSec,
	}, nil
}
