package sim

import (
	"fmt"
	"math"
	"math/rand"

	"goear/internal/cpu"
	"goear/internal/eard"
	"goear/internal/earl"
	"goear/internal/metrics"
	"goear/internal/msr"
	"goear/internal/perf"
	"goear/internal/policy"
	"goear/internal/power"
	"goear/internal/uncore"
	"goear/internal/workload"
)

// node is the state of one simulated compute node during a run.
type node struct {
	cal workload.Calibrated
	opt Options

	sockets []*cpu.Socket
	ctls    []*uncore.Controller
	rapl    *power.Rapl
	inm     *power.NodeManager

	now float64

	// Cumulative node counters (what EARL samples).
	instr, cycles, avx, bytes float64
	coreFreqSec, imcFreqSec   float64
	// True energy integrals by scope (simulator bookkeeping).
	pkgJ, dramJ float64

	cache map[cacheKey]evalEntry
	rng   *rand.Rand
	lib   *earl.Library

	// capRatio, when non-zero, is a node-daemon-enforced ceiling on the
	// core ratio (the EARGM powercap path); the policy's requests are
	// clamped to it at actuation level.
	capRatio uint64

	// Trace sampling state.
	trace      []TracePoint
	lastTraceT float64
	lastTraceE float64
	lastTraceB float64

	// Iteration progress, for resumable stepping (RunCoordinated).
	segIdx, iterInSeg int
	instrLeft         float64
	wallLeft          float64
	iterActive        bool
	done              bool
	tNoise, pNoise    float64
}

type cacheKey struct {
	seg  int
	core uint64
	unc  uint64
	cap  uint64
}

type evalEntry struct {
	res perf.Result
	brk power.Breakdown
	// effRatio is the licence-resolved core ratio driving the HW
	// uncore heuristic.
	effRatio uint64
}

// runNode simulates the whole workload on one node.
func runNode(cal workload.Calibrated, nodeID int, opt Options) (NodeResult, error) {
	n, err := newNode(cal, nodeID, opt)
	if err != nil {
		return NodeResult{}, err
	}
	for !n.done {
		if err := n.stepOnce(); err != nil {
			return NodeResult{}, err
		}
	}
	return n.result()
}

// startIteration draws this iteration's noise and work budget.
func (n *node) startIteration() {
	n.tNoise = 1 + n.opt.NoiseSD*n.rng.NormFloat64()
	n.pNoise = 1 + n.opt.NoiseSD*n.rng.NormFloat64()
	if n.tNoise < 0.9 {
		n.tNoise = 0.9
	}
	if n.pNoise < 0.9 {
		n.pNoise = 0.9
	}
	if n.cal.Class == workload.Accelerator {
		// Accelerator iterations are paced by the GPU: wall time is
		// fixed, the host core spins for however many instructions fit.
		n.wallLeft = n.cal.IterPeriodSec * n.tNoise
		n.instrLeft = 0
	} else {
		n.instrLeft = n.cal.Segs[n.segIdx].InstrPerIter
		n.wallLeft = 0
	}
	n.iterActive = true
}

// stepOnce advances the node by at most one simulation step, crossing
// iteration and segment boundaries as needed. It is the resumable core
// used both by full runs and by coordinated (powercapped) cluster runs.
func (n *node) stepOnce() error {
	if n.done {
		return nil
	}
	if !n.iterActive {
		n.startIteration()
	}
	e, err := n.evalAt(n.segIdx)
	if err != nil {
		return err
	}
	spi := e.res.SecPerInstr * n.tNoise
	var dt, nInstr float64
	if n.cal.Class == workload.Accelerator {
		dt = math.Min(n.opt.StepSec, n.wallLeft)
		nInstr = dt / spi
		n.wallLeft -= dt
	} else {
		nInstr = n.opt.StepSec / spi
		if nInstr > n.instrLeft {
			nInstr = n.instrLeft
		}
		dt = nInstr * spi
		n.instrLeft -= nInstr
	}
	if err := n.advance(n.segIdx, e, nInstr, dt, n.pNoise); err != nil {
		return err
	}

	finished := n.instrLeft <= 1e-6 && n.wallLeft <= 1e-9
	if !finished {
		return nil
	}
	n.iterActive = false
	if err := n.iterationBoundary(); err != nil {
		return err
	}
	n.iterInSeg++
	if n.iterInSeg >= n.cal.Segs[n.segIdx].Iterations {
		n.iterInSeg = 0
		n.segIdx++
		if n.segIdx >= len(n.cal.Segs) {
			n.done = true
		}
	}
	return nil
}

// stepUntil advances the node to (at least) the given simulated time or
// to completion, whichever comes first.
func (n *node) stepUntil(t float64) error {
	for !n.done && n.now < t {
		if err := n.stepOnce(); err != nil {
			return err
		}
	}
	return nil
}

// setCapRatio applies (or with 0 releases) the node-daemon core-ratio
// ceiling used by cluster power management.
func (n *node) setCapRatio(r uint64) {
	n.capRatio = r
}

func newNode(cal workload.Calibrated, nodeID int, opt Options) (*node, error) {
	m := cal.Platform.Machine
	n := &node{
		cal:   cal,
		opt:   opt,
		cache: map[cacheKey]evalEntry{},
		rng:   rand.New(rand.NewSource(opt.Seed*1000003 + int64(nodeID)*7907 + 1)),
	}
	for s := 0; s < m.CPU.Sockets; s++ {
		sock, err := cpu.NewSocket(m.CPU, s)
		if err != nil {
			return nil, err
		}
		ctl, err := uncore.NewController(sock.MSR, n.hwCurve())
		if err != nil {
			return nil, err
		}
		n.sockets = append(n.sockets, sock)
		n.ctls = append(n.ctls, ctl)
	}
	files := make([]*msr.File, len(n.sockets))
	for i, s := range n.sockets {
		files[i] = s.MSR
	}
	rapl, err := power.NewRapl(files)
	if err != nil {
		return nil, err
	}
	n.rapl = rapl
	n.inm = power.NewNodeManager()

	// Initial operating point: the paper's baseline is the nominal
	// frequency with the hardware uncore range wide open.
	p0 := 1
	if opt.FixedCPUPstate != nil {
		p0 = *opt.FixedCPUPstate
	}
	nctl := &nodeCtl{n: n}
	if err := nctl.SetCPUPstate(p0); err != nil {
		return nil, err
	}
	if opt.FixedUncoreRatio != nil {
		r := *opt.FixedUncoreRatio
		if err := nctl.SetUncoreLimits(r, r); err != nil {
			return nil, err
		}
	}

	if opt.Policy != "none" {
		var libCtl earl.Ctl = nctl
		if opt.DaemonLimits != nil {
			d, err := eard.NewDaemon(nctl, *opt.DaemonLimits)
			if err != nil {
				return nil, err
			}
			libCtl = d
		}
		pcfg := policy.Config{
			Model:          opt.Model,
			CPUPolicyTh:    opt.CPUTh,
			UncPolicyTh:    opt.UncTh,
			HWGuided:       !opt.HWGuidedOff,
			UseAVX512Model: !opt.NoAVX512Model,
			DefaultPstate:  1,
			UncoreMinRatio: m.CPU.UncoreMinRatio,
			UncoreMaxRatio: m.CPU.UncoreMaxRatio,
			SigChangeTh:    opt.SigChangeTh,
			PinBothLimits:  opt.PinBothUncoreLimits,
		}
		pol, err := policy.New(opt.Policy, pcfg)
		if err != nil {
			return nil, err
		}
		lib, err := earl.New(earl.Config{
			Policy:       pol,
			MinWindowSec: opt.MinWindowSec,
			SigChangeTh:  opt.SigChangeTh,
		}, libCtl)
		if err != nil {
			return nil, err
		}
		if err := lib.Start(0); err != nil {
			return nil, err
		}
		n.lib = lib
	}
	return n, nil
}

// hwCurve adapts the workload's heuristic-response curve; the paper's
// per-workload curves were calibrated against effective core ratios.
func (n *node) hwCurve() uncore.Curve {
	return func(core uint64) uint64 { return n.cal.HWUncore(core) }
}

// evalAt returns the cached steady-state behaviour at the node's
// current operating point, honouring any power-management core cap.
func (n *node) evalAt(segIdx int) (evalEntry, error) {
	coreRatio, err := n.sockets[0].RequestedRatio()
	if err != nil {
		return evalEntry{}, err
	}
	if n.capRatio != 0 && coreRatio > n.capRatio {
		coreRatio = n.capRatio
	}
	uncRatio, err := n.sockets[0].CurrentUncoreRatio()
	if err != nil {
		return evalEntry{}, err
	}
	if uncRatio == 0 {
		// Boot transient: the controller has not ticked yet.
		uncRatio = n.cal.Platform.Machine.CPU.UncoreMinRatio
	}
	key := cacheKey{segIdx, coreRatio, uncRatio, n.capRatio}
	if e, ok := n.cache[key]; ok {
		return e, nil
	}
	seg := n.cal.Segs[segIdx]
	m := n.cal.Platform.Machine
	res, err := perf.Evaluate(m, seg.Phase, perf.Operating{CoreRatio: coreRatio, UncoreRatio: uncRatio})
	if err != nil {
		return evalEntry{}, err
	}
	brk, err := n.cal.Platform.Power.Node(power.Input{
		CoreFreqGHz:   res.EffCoreFreq.GHzF(),
		UncoreFreqGHz: res.UncoreFreq.GHzF(),
		Sockets:       m.CPU.Sockets,
		ActiveCores:   n.cal.ActiveCores,
		Activity:      seg.Activity,
		GBs:           res.NodeGBs,
		GPUPower:      n.cal.GPUPowerW,
	})
	if err != nil {
		return evalEntry{}, err
	}
	e := evalEntry{
		res:      res,
		brk:      brk,
		effRatio: uint64(math.Round(res.EffCoreFreq.GHzF() * 10)),
	}
	n.cache[key] = e
	return e, nil
}

// advance moves simulated time forward by dt with nInstr instructions
// retiring per active core.
func (n *node) advance(segIdx int, e evalEntry, nInstr, dt, pNoise float64) error {
	seg := n.cal.Segs[segIdx]
	nodeInstr := nInstr * float64(n.cal.ActiveCores)

	n.instr += nodeInstr
	// Unhalted cycles follow wall time at the effective clock, so
	// iteration noise shows up in measured CPI as it does on hardware.
	n.cycles += dt * e.res.EffCoreFreq.GHzF() * 1e9 * float64(n.cal.ActiveCores)
	n.avx += seg.Phase.VPI * nodeInstr
	n.bytes += nodeInstr * seg.Phase.BytesPerInstr

	total := e.brk.Total * pNoise
	if err := n.inm.Advance(total, dt); err != nil {
		return err
	}
	scaled := e.brk
	scaled.Pkg *= pNoise
	scaled.Dram *= pNoise
	if err := n.rapl.Advance(scaled, dt); err != nil {
		return err
	}
	n.pkgJ += scaled.Pkg * dt
	n.dramJ += scaled.Dram * dt

	n.coreFreqSec += e.res.EffCoreFreq.GHzF() * n.cal.FreqBias * dt
	n.imcFreqSec += e.res.UncoreFreq.GHzF() * n.cal.IMCBias * dt

	for _, c := range n.ctls {
		if err := c.Advance(dt, e.effRatio); err != nil {
			return err
		}
	}
	n.now += dt
	if n.opt.Trace && n.now-n.lastTraceT >= n.opt.TraceStepSec {
		if err := n.traceSample(e); err != nil {
			return err
		}
	}
	return nil
}

// traceSample appends one time-series point.
func (n *node) traceSample(e evalEntry) error {
	dt := n.now - n.lastTraceT
	energy := n.inm.TrueEnergy()
	bytes := n.bytes
	nctl := &nodeCtl{n: n}
	ps, err := nctl.CurrentPstate()
	if err != nil {
		return err
	}
	lim, err := n.sockets[0].UncoreLimits()
	if err != nil {
		return err
	}
	p := TracePoint{
		TimeSec:   n.now,
		PowerW:    (energy - n.lastTraceE) / dt,
		CPUGHz:    e.res.EffCoreFreq.GHzF() * n.cal.FreqBias,
		IMCGHz:    e.res.UncoreFreq.GHzF() * n.cal.IMCBias,
		GBs:       (bytes - n.lastTraceB) / dt / 1e9,
		CPUPstate: ps,
		UncMax:    lim.MaxRatio,
	}
	if n.instr > 0 {
		p.CPI = n.cycles / n.instr
	}
	n.trace = append(n.trace, p)
	n.lastTraceT = n.now
	n.lastTraceE = energy
	n.lastTraceB = bytes
	return nil
}

// iterationBoundary feeds EARL the iteration's MPI events (or a
// time-guided tick for non-MPI workloads).
func (n *node) iterationBoundary() error {
	if n.lib == nil {
		return nil
	}
	if evs := n.cal.MPIEvents(); len(evs) > 0 {
		inner := n.cal.InnerLoopsPerIter
		if inner < 1 {
			inner = 1
		}
		for l := 0; l < inner; l++ {
			for _, ev := range evs {
				if err := n.lib.OnMPICall(ev, n.now); err != nil {
					return err
				}
			}
		}
		return nil
	}
	return n.lib.OnTick(n.now)
}

// result assembles the node's run outcome.
func (n *node) result() (NodeResult, error) {
	if n.now <= 0 || n.instr <= 0 {
		return NodeResult{}, fmt.Errorf("sim: empty run")
	}
	nctl := &nodeCtl{n: n}
	ps, err := nctl.CurrentPstate()
	if err != nil {
		return NodeResult{}, err
	}
	lim, err := n.sockets[0].UncoreLimits()
	if err != nil {
		return NodeResult{}, err
	}
	r := NodeResult{
		TimeSec:        n.now,
		EnergyJ:        n.inm.TrueEnergy(),
		PkgEnergyJ:     n.pkgJ,
		DramEnergyJ:    n.dramJ,
		AvgCPUGHz:      n.coreFreqSec / n.now,
		AvgIMCGHz:      n.imcFreqSec / n.now,
		AvgCPI:         n.cycles / n.instr,
		AvgGBs:         n.bytes / n.now / 1e9,
		FinalCPUPstate: ps,
		FinalUncoreMax: lim.MaxRatio,
	}
	r.AvgPowerW = r.EnergyJ / r.TimeSec
	r.AvgPkgPowerW = r.PkgEnergyJ / r.TimeSec
	r.Trace = n.trace
	if n.lib != nil {
		r.Signatures = n.lib.Signatures()
		r.LoopDetected = n.lib.LoopDetected()
		r.NestedLevel, r.NestedPeriod = n.lib.NestedStructure()
		for _, ev := range n.lib.Events() {
			if ev.Applied {
				r.PolicyApplies++
			}
		}
	}
	return r, nil
}

// nodeCtl implements earl.Ctl over the node.
type nodeCtl struct{ n *node }

func (c *nodeCtl) SetCPUPstate(p int) error {
	ratio, err := c.n.cal.Platform.Machine.CPU.PstateRatio(p)
	if err != nil {
		return err
	}
	for _, s := range c.n.sockets {
		if err := s.RequestRatio(ratio); err != nil {
			return err
		}
	}
	return nil
}

func (c *nodeCtl) SetUncoreLimits(minR, maxR uint64) error {
	for _, s := range c.n.sockets {
		if err := s.SetUncoreLimits(minR, maxR); err != nil {
			return err
		}
	}
	return nil
}

func (c *nodeCtl) CurrentPstate() (int, error) {
	ratio, err := c.n.sockets[0].RequestedRatio()
	if err != nil {
		return 0, err
	}
	return c.n.cal.Platform.Machine.CPU.RatioPstate(ratio)
}

func (c *nodeCtl) CurrentUncoreRatio() (uint64, error) {
	return c.n.sockets[0].CurrentUncoreRatio()
}

func (c *nodeCtl) Counters() (metrics.Sample, error) {
	n := c.n
	return metrics.Sample{
		TimeSec:         n.now,
		Instructions:    n.instr,
		CoreCycles:      n.cycles,
		AVXInstructions: n.avx,
		DRAMBytes:       n.bytes,
		EnergyJ:         n.inm.ReadEnergy(),
		CoreFreqSeconds: n.coreFreqSec,
		IMCFreqSeconds:  n.imcFreqSec,
	}, nil
}
