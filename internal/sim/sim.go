// Package sim executes calibrated workloads on simulated cluster nodes:
// sockets with MSR files, the hardware uncore controller, the RAPL and
// Node Manager meters, and (optionally) an EARL instance driving an
// energy policy. It is the test bench every experiment in the paper is
// reproduced on.
package sim

import (
	"fmt"

	"goear/internal/eard"
	"goear/internal/model"
	"goear/internal/par"
	"goear/internal/workload"
)

// Options configures one run.
type Options struct {
	// Policy is a registered policy name, or "" / "none" to run without
	// EARL (the paper's nominal-frequency baseline).
	Policy string
	// CPUTh and UncTh are the policy thresholds. nil means "use the
	// default" (5 % and 2 %); F(0) requests an explicit zero threshold,
	// which a plain float64 field could not distinguish from unset —
	// the ablations need that distinction.
	CPUTh *float64
	UncTh *float64
	// HWGuidedOff disables the HW-guided IMC search start (Fig. 5's
	// ME+NG-U configuration).
	HWGuidedOff bool
	// NoAVX512Model disables the paper's AVX512 model extension
	// (ablation A2).
	NoAVX512Model bool
	// Model is the trained energy model; required when a policy runs.
	Model *model.Model
	// Seed drives the run's measurement noise.
	Seed int64
	// FixedCPUPstate pins the CPU pstate for the whole run (Fig. 1).
	FixedCPUPstate *int
	// FixedUncoreRatio pins MSR 0x620 min=max (Fig. 1 sweeps).
	FixedUncoreRatio *uint64
	// PinBothUncoreLimits makes the eUFS search pin min=max instead of
	// moving only the maximum (ablation A3 of the paper's §V-B item 3).
	PinBothUncoreLimits bool
	// StepSec is the simulation step (default 10 ms, the uncore
	// controller tick).
	StepSec float64
	// NoiseSD is the per-iteration multiplicative noise standard
	// deviation. nil means the default 0.3 %; F(0) runs noiseless.
	NoiseSD *float64
	// SigChangeTh overrides EARL's signature-change threshold.
	SigChangeTh float64
	// MinWindowSec overrides EARL's signature window.
	MinWindowSec float64
	// DaemonLimits, when set, routes EARL's actuation through the node
	// daemon's enforcement (site pstate bounds, uncore floor).
	DaemonLimits *eard.Limits
	// MacroStep enables steady-phase fast-forwarding: when an entire
	// iteration ran at one operating point (no policy actuation, no
	// uncore controller movement) and the next iteration starts at that
	// same point, the simulator consumes the whole iteration in one
	// analytic step instead of walking it in StepSec ticks. Per-
	// iteration noise draws, EARL events and policy decisions are
	// unchanged; only the float summation order of the integrals
	// differs, so results agree with exact mode to a small tolerance
	// (~1e-3 relative, see DESIGN.md § Performance) instead of being
	// byte-identical. Off by default here; the experiment engine turns
	// it on for campaign paths (opt out with its Exact switch). Ignored
	// while Trace is on (trace points need per-step sampling); in
	// coordinated (powercapped) cluster runs the fast-forward is bounded
	// by the lock-step barrier, so intervals still end at exact time
	// boundaries.
	MacroStep bool
	// DecisionLog collects every EARL signature-handling event into
	// NodeResult.Decisions (see Result.WriteDecisionLog). Collection is
	// per-node and ordered, so the log is byte-identical at any Workers
	// count. Off by default: the conversion allocates per node run.
	DecisionLog bool
	// Trace records a per-node time series (one point per TraceStepSec
	// of simulated time) in NodeResult.Trace.
	Trace bool
	// Phases accumulates per-workload-phase energy and usage counters
	// into NodeResult.Phases — the raw material per-job energy
	// attribution (package accounting) splits. Like the trace it is
	// opt-in: the accumulation is cheap (a few adds per step) but the
	// samples allocate per node run. Phase accumulation is per-node and
	// ordered, so it is byte-identical at any Workers count.
	Phases bool
	// TraceStepSec is the trace sampling period (default 1 s).
	TraceStepSec float64
	// Workers bounds the goroutines fanned out over a run's nodes and
	// over RunAveraged's seeds (0 or 1 = sequential). Every node and
	// every averaged run draws its randomness from an RNG seeded purely
	// by (Seed, node id, run index), so results are byte-identical at
	// any worker count; Workers only changes wall-clock time.
	Workers int
	// Shards is the number of batch stepping kernels a coordinated run
	// partitions its nodes into (contiguous node-id ranges, one Batch
	// each). 0 derives it from Workers. Nodes are fully independent
	// between barriers, so results are byte-identical at any shard
	// count; Shards only changes scheduling granularity.
	Shards int
	// ReferenceStep forces coordinated runs onto the per-node reference
	// stepping path instead of the batch kernels. Results are
	// byte-identical either way (the golden tests assert it); the
	// switch exists for verification and benchmarking.
	ReferenceStep bool
}

// workers returns the effective fan-out bound.
func (o Options) workers() int {
	if o.Workers < 1 {
		return 1
	}
	return o.Workers
}

// F wraps a float64 for the pointer-valued Options fields, so callers
// can supply explicit values — including zero — inline:
//
//	sim.Options{Policy: "min_energy_eufs", UncTh: sim.F(0)}
func F(v float64) *float64 { return &v }

// WithDefaults returns the options with every unset field resolved to
// its default. Run and friends apply it internally; it is exported so
// callers that key caches on option values (the experiment engine) can
// canonicalise first — two Options that resolve identically behave
// identically.
// Shared targets for the defaulted threshold pointers: resolving an
// unset option must not allocate (Run sits on the experiment hot path).
// Callers treat Options fields as read-only, so aliasing is safe.
var (
	defCPUTh   = 0.05
	defUncTh   = 0.02
	defNoiseSD = 0.003
)

func (o Options) WithDefaults() Options {
	if o.Policy == "" {
		o.Policy = "none"
	}
	if o.CPUTh == nil {
		o.CPUTh = &defCPUTh
	}
	if o.UncTh == nil {
		o.UncTh = &defUncTh
	}
	if o.StepSec == 0 {
		o.StepSec = 0.01
	}
	if o.NoiseSD == nil {
		o.NoiseSD = &defNoiseSD
	}
	if o.TraceStepSec == 0 {
		o.TraceStepSec = 1
	}
	return o
}

// withDefaults is the internal spelling of WithDefaults.
func (o Options) withDefaults() Options { return o.WithDefaults() }

// TracePoint is one sample of a node's operating state.
type TracePoint struct {
	TimeSec   float64
	PowerW    float64 // instantaneous DC power over the last trace step
	CPUGHz    float64 // requested-effective core frequency (measured)
	IMCGHz    float64 // operating uncore frequency (measured)
	CPI       float64 // cumulative-average CPI at this point
	GBs       float64 // bandwidth over the last trace step
	CPUPstate int
	UncMax    uint64 // programmed uncore ceiling (MSR 0x620 max)
}

// PhaseSample is one workload phase's accumulated energy and usage on
// one node: what per-job attribution ratio-splits. Energies carry the
// same noise scaling as the node totals, so summing a node's phases
// reproduces its NodeResult energies to float-reassociation accuracy.
type PhaseSample struct {
	// Seg is the workload segment (phase) index.
	Seg int
	// StartSec/EndSec bound the phase's wall-clock window.
	StartSec float64
	EndSec   float64
	// Per-domain energy: RAPL PCK, RAPL DRAM, the uncore share of PCK,
	// and the DC node meter scope.
	PkgJ    float64
	DramJ   float64
	UncoreJ float64
	NodeJ   float64
	// Usage counters over the phase.
	Instr     float64
	Cycles    float64
	DRAMBytes float64
	// Frequency-seconds integrals (divide by duration for averages).
	CoreFreqSec float64
	IMCFreqSec  float64
}

// NodeResult is one node's run outcome.
type NodeResult struct {
	TimeSec      float64
	EnergyJ      float64 // DC energy (Node Manager scope)
	PkgEnergyJ   float64 // RAPL PCK scope
	DramEnergyJ  float64 // RAPL DRAM scope
	AvgPowerW    float64
	AvgPkgPowerW float64
	AvgCPUGHz    float64 // measured (bias-adjusted) average
	AvgIMCGHz    float64
	AvgCPI       float64
	AvgGBs       float64
	// FinalCPUPstate and FinalUncoreMax are the operating point at run
	// end (what the policy settled on).
	FinalCPUPstate int
	FinalUncoreMax uint64
	// Signatures and PolicyApplies count EARL activity.
	Signatures    int
	PolicyApplies int
	LoopDetected  bool
	// NestedLevel/NestedPeriod report Dynais's highest locked level
	// (-1 when no loop was found).
	NestedLevel  int
	NestedPeriod int
	// Trace is the sampled time series when Options.Trace is set.
	Trace []TracePoint
	// Phases is the per-phase energy/usage breakdown when
	// Options.Phases is set, in phase (segment) order.
	Phases []PhaseSample
	// Decisions is the EARL decision trace when Options.DecisionLog is
	// set (node ids are assigned by Result.WriteDecisionLog).
	Decisions []Decision
}

// Result aggregates a cluster run.
type Result struct {
	Workload string
	Policy   string
	Nodes    []NodeResult

	// Cluster-level aggregates: time is the slowest node (MPI
	// semantics), the rest are per-node means.
	TimeSec      float64
	AvgPowerW    float64
	AvgPkgPowerW float64
	EnergyJ      float64 // mean per-node DC energy
	AvgCPUGHz    float64
	AvgIMCGHz    float64
	AvgCPI       float64
	AvgGBs       float64
}

// aggregate fills the cluster-level fields from Nodes. The accumulation
// runs in node order with the same operations stats.Max/stats.Mean
// perform (running maximum; ordered sum, then one divide), so the
// aggregates are bit-identical to the slice-based formulation while
// staying allocation-free — this sits inside every run.
func (r *Result) aggregate() {
	if len(r.Nodes) == 0 {
		return
	}
	var pows, pkgs, energies, cpus, imcs, cpis, gbs float64
	maxT := r.Nodes[0].TimeSec
	for i := range r.Nodes {
		n := &r.Nodes[i]
		if n.TimeSec > maxT {
			maxT = n.TimeSec
		}
		pows += n.AvgPowerW
		pkgs += n.AvgPkgPowerW
		energies += n.EnergyJ
		cpus += n.AvgCPUGHz
		imcs += n.AvgIMCGHz
		cpis += n.AvgCPI
		gbs += n.AvgGBs
	}
	cnt := float64(len(r.Nodes))
	r.TimeSec = maxT
	r.AvgPowerW = pows / cnt
	r.AvgPkgPowerW = pkgs / cnt
	r.EnergyJ = energies / cnt
	r.AvgCPUGHz = cpus / cnt
	r.AvgIMCGHz = imcs / cnt
	r.AvgCPI = cpis / cnt
	r.AvgGBs = gbs / cnt
}

// Run executes the workload on all its nodes under the given options.
// Nodes are simulated concurrently up to Options.Workers; each node is
// fully independent (own sockets, MSR files, meters, EARL instance and
// RNG), so the result does not depend on scheduling.
func Run(cal workload.Calibrated, opt Options) (Result, error) {
	opt = opt.withDefaults()
	if opt.Policy != "none" && opt.Model == nil {
		return Result{}, fmt.Errorf("sim: policy %q needs a trained model", opt.Policy)
	}
	res := Result{Workload: cal.Name, Policy: opt.Policy}
	res.Nodes = make([]NodeResult, cal.Nodes)
	if opt.workers() == 1 || cal.Nodes == 1 {
		// Same in-order execution par.ForEach performs at limit 1,
		// without the closure (and the resulting escapes) a parallel
		// dispatch needs; single-node runs dominate the campaign loop.
		for nodeID := 0; nodeID < cal.Nodes; nodeID++ {
			nr, err := runNode(cal, nodeID, opt)
			if err != nil {
				return Result{}, fmt.Errorf("sim: %s node %d: %w", cal.Name, nodeID, err)
			}
			res.Nodes[nodeID] = nr
		}
		res.aggregate()
		return res, nil
	}
	err := par.ForEach(opt.workers(), cal.Nodes, func(nodeID int) error {
		nr, err := runNode(cal, nodeID, opt)
		if err != nil {
			return fmt.Errorf("sim: %s node %d: %w", cal.Name, nodeID, err)
		}
		res.Nodes[nodeID] = nr
		return nil
	})
	if err != nil {
		return Result{}, err
	}
	res.aggregate()
	return res, nil
}

// RunSpec calibrates and runs a workload spec.
func RunSpec(spec workload.Spec, opt Options) (Result, error) {
	cal, err := spec.Calibrate()
	if err != nil {
		return Result{}, err
	}
	return Run(cal, opt)
}

// RunAveraged performs the paper's measurement protocol: several runs
// with different seeds, averaged. The per-node detail of the last run
// is retained. The runs execute concurrently up to Options.Workers;
// each run's seed is a pure function of (opt.Seed, run index) and the
// averages are accumulated in run order, so the result is identical at
// any worker count.
func RunAveraged(cal workload.Calibrated, opt Options, runs int) (Result, error) {
	if runs < 1 {
		return Result{}, fmt.Errorf("sim: need at least one run")
	}
	results := make([]Result, runs)
	err := par.ForEach(opt.workers(), runs, func(i int) error {
		o := opt
		o.Seed = opt.Seed + int64(i)*7919
		r, err := Run(cal, o)
		if err != nil {
			return err
		}
		results[i] = r
		return nil
	})
	if err != nil {
		return Result{}, err
	}
	// Accumulate in run order with stats.Mean's exact operations
	// (ordered sum, one divide) so the averages are bit-identical to
	// the former slice-based version at any Workers count.
	var times, pows, pkgs, energies, cpus, imcs, cpis, gbs float64
	for i := range results {
		r := &results[i]
		times += r.TimeSec
		pows += r.AvgPowerW
		pkgs += r.AvgPkgPowerW
		energies += r.EnergyJ
		cpus += r.AvgCPUGHz
		imcs += r.AvgIMCGHz
		cpis += r.AvgCPI
		gbs += r.AvgGBs
	}
	cnt := float64(runs)
	acc := results[runs-1]
	acc.TimeSec = times / cnt
	acc.AvgPowerW = pows / cnt
	acc.AvgPkgPowerW = pkgs / cnt
	acc.EnergyJ = energies / cnt
	acc.AvgCPUGHz = cpus / cnt
	acc.AvgIMCGHz = imcs / cnt
	acc.AvgCPI = cpis / cnt
	acc.AvgGBs = gbs / cnt
	return acc, nil
}
