// Package sim executes calibrated workloads on simulated cluster nodes:
// sockets with MSR files, the hardware uncore controller, the RAPL and
// Node Manager meters, and (optionally) an EARL instance driving an
// energy policy. It is the test bench every experiment in the paper is
// reproduced on.
package sim

import (
	"fmt"

	"goear/internal/eard"
	"goear/internal/model"
	"goear/internal/par"
	"goear/internal/stats"
	"goear/internal/workload"
)

// Options configures one run.
type Options struct {
	// Policy is a registered policy name, or "" / "none" to run without
	// EARL (the paper's nominal-frequency baseline).
	Policy string
	// CPUTh and UncTh are the policy thresholds (defaults 5 % and 2 %).
	CPUTh float64
	UncTh float64
	// HWGuidedOff disables the HW-guided IMC search start (Fig. 5's
	// ME+NG-U configuration).
	HWGuidedOff bool
	// NoAVX512Model disables the paper's AVX512 model extension
	// (ablation A2).
	NoAVX512Model bool
	// Model is the trained energy model; required when a policy runs.
	Model *model.Model
	// Seed drives the run's measurement noise.
	Seed int64
	// FixedCPUPstate pins the CPU pstate for the whole run (Fig. 1).
	FixedCPUPstate *int
	// FixedUncoreRatio pins MSR 0x620 min=max (Fig. 1 sweeps).
	FixedUncoreRatio *uint64
	// PinBothUncoreLimits makes the eUFS search pin min=max instead of
	// moving only the maximum (ablation A3 of the paper's §V-B item 3).
	PinBothUncoreLimits bool
	// StepSec is the simulation step (default 10 ms, the uncore
	// controller tick).
	StepSec float64
	// NoiseSD is the per-iteration multiplicative noise (default 0.3 %).
	NoiseSD float64
	// SigChangeTh overrides EARL's signature-change threshold.
	SigChangeTh float64
	// MinWindowSec overrides EARL's signature window.
	MinWindowSec float64
	// DaemonLimits, when set, routes EARL's actuation through the node
	// daemon's enforcement (site pstate bounds, uncore floor).
	DaemonLimits *eard.Limits
	// Trace records a per-node time series (one point per TraceStepSec
	// of simulated time) in NodeResult.Trace.
	Trace bool
	// TraceStepSec is the trace sampling period (default 1 s).
	TraceStepSec float64
	// Workers bounds the goroutines fanned out over a run's nodes and
	// over RunAveraged's seeds (0 or 1 = sequential). Every node and
	// every averaged run draws its randomness from an RNG seeded purely
	// by (Seed, node id, run index), so results are byte-identical at
	// any worker count; Workers only changes wall-clock time.
	Workers int
}

// workers returns the effective fan-out bound.
func (o Options) workers() int {
	if o.Workers < 1 {
		return 1
	}
	return o.Workers
}

// withDefaults fills unset options.
func (o Options) withDefaults() Options {
	if o.Policy == "" {
		o.Policy = "none"
	}
	if o.CPUTh == 0 {
		o.CPUTh = 0.05
	}
	if o.UncTh == 0 {
		o.UncTh = 0.02
	}
	if o.StepSec == 0 {
		o.StepSec = 0.01
	}
	if o.NoiseSD == 0 {
		o.NoiseSD = 0.003
	}
	if o.TraceStepSec == 0 {
		o.TraceStepSec = 1
	}
	return o
}

// TracePoint is one sample of a node's operating state.
type TracePoint struct {
	TimeSec   float64
	PowerW    float64 // instantaneous DC power over the last trace step
	CPUGHz    float64 // requested-effective core frequency (measured)
	IMCGHz    float64 // operating uncore frequency (measured)
	CPI       float64 // cumulative-average CPI at this point
	GBs       float64 // bandwidth over the last trace step
	CPUPstate int
	UncMax    uint64 // programmed uncore ceiling (MSR 0x620 max)
}

// NodeResult is one node's run outcome.
type NodeResult struct {
	TimeSec      float64
	EnergyJ      float64 // DC energy (Node Manager scope)
	PkgEnergyJ   float64 // RAPL PCK scope
	DramEnergyJ  float64 // RAPL DRAM scope
	AvgPowerW    float64
	AvgPkgPowerW float64
	AvgCPUGHz    float64 // measured (bias-adjusted) average
	AvgIMCGHz    float64
	AvgCPI       float64
	AvgGBs       float64
	// FinalCPUPstate and FinalUncoreMax are the operating point at run
	// end (what the policy settled on).
	FinalCPUPstate int
	FinalUncoreMax uint64
	// Signatures and PolicyApplies count EARL activity.
	Signatures    int
	PolicyApplies int
	LoopDetected  bool
	// NestedLevel/NestedPeriod report Dynais's highest locked level
	// (-1 when no loop was found).
	NestedLevel  int
	NestedPeriod int
	// Trace is the sampled time series when Options.Trace is set.
	Trace []TracePoint
}

// Result aggregates a cluster run.
type Result struct {
	Workload string
	Policy   string
	Nodes    []NodeResult

	// Cluster-level aggregates: time is the slowest node (MPI
	// semantics), the rest are per-node means.
	TimeSec      float64
	AvgPowerW    float64
	AvgPkgPowerW float64
	EnergyJ      float64 // mean per-node DC energy
	AvgCPUGHz    float64
	AvgIMCGHz    float64
	AvgCPI       float64
	AvgGBs       float64
}

// aggregate fills the cluster-level fields from Nodes.
func (r *Result) aggregate() {
	var times, pows, pkgs, energies, cpus, imcs, cpis, gbs []float64
	for _, n := range r.Nodes {
		times = append(times, n.TimeSec)
		pows = append(pows, n.AvgPowerW)
		pkgs = append(pkgs, n.AvgPkgPowerW)
		energies = append(energies, n.EnergyJ)
		cpus = append(cpus, n.AvgCPUGHz)
		imcs = append(imcs, n.AvgIMCGHz)
		cpis = append(cpis, n.AvgCPI)
		gbs = append(gbs, n.AvgGBs)
	}
	r.TimeSec = stats.Max(times)
	r.AvgPowerW = stats.Mean(pows)
	r.AvgPkgPowerW = stats.Mean(pkgs)
	r.EnergyJ = stats.Mean(energies)
	r.AvgCPUGHz = stats.Mean(cpus)
	r.AvgIMCGHz = stats.Mean(imcs)
	r.AvgCPI = stats.Mean(cpis)
	r.AvgGBs = stats.Mean(gbs)
}

// Run executes the workload on all its nodes under the given options.
// Nodes are simulated concurrently up to Options.Workers; each node is
// fully independent (own sockets, MSR files, meters, EARL instance and
// RNG), so the result does not depend on scheduling.
func Run(cal workload.Calibrated, opt Options) (Result, error) {
	opt = opt.withDefaults()
	if opt.Policy != "none" && opt.Model == nil {
		return Result{}, fmt.Errorf("sim: policy %q needs a trained model", opt.Policy)
	}
	res := Result{Workload: cal.Name, Policy: opt.Policy}
	res.Nodes = make([]NodeResult, cal.Nodes)
	err := par.ForEach(opt.workers(), cal.Nodes, func(nodeID int) error {
		nr, err := runNode(cal, nodeID, opt)
		if err != nil {
			return fmt.Errorf("sim: %s node %d: %w", cal.Name, nodeID, err)
		}
		res.Nodes[nodeID] = nr
		return nil
	})
	if err != nil {
		return Result{}, err
	}
	res.aggregate()
	return res, nil
}

// RunSpec calibrates and runs a workload spec.
func RunSpec(spec workload.Spec, opt Options) (Result, error) {
	cal, err := spec.Calibrate()
	if err != nil {
		return Result{}, err
	}
	return Run(cal, opt)
}

// RunAveraged performs the paper's measurement protocol: several runs
// with different seeds, averaged. The per-node detail of the last run
// is retained. The runs execute concurrently up to Options.Workers;
// each run's seed is a pure function of (opt.Seed, run index) and the
// averages are accumulated in run order, so the result is identical at
// any worker count.
func RunAveraged(cal workload.Calibrated, opt Options, runs int) (Result, error) {
	if runs < 1 {
		return Result{}, fmt.Errorf("sim: need at least one run")
	}
	results := make([]Result, runs)
	err := par.ForEach(opt.workers(), runs, func(i int) error {
		o := opt
		o.Seed = opt.Seed + int64(i)*7919
		r, err := Run(cal, o)
		if err != nil {
			return err
		}
		results[i] = r
		return nil
	})
	if err != nil {
		return Result{}, err
	}
	var times, pows, pkgs, energies, cpus, imcs, cpis, gbs []float64
	for _, r := range results {
		times = append(times, r.TimeSec)
		pows = append(pows, r.AvgPowerW)
		pkgs = append(pkgs, r.AvgPkgPowerW)
		energies = append(energies, r.EnergyJ)
		cpus = append(cpus, r.AvgCPUGHz)
		imcs = append(imcs, r.AvgIMCGHz)
		cpis = append(cpis, r.AvgCPI)
		gbs = append(gbs, r.AvgGBs)
	}
	acc := results[runs-1]
	acc.TimeSec = stats.Mean(times)
	acc.AvgPowerW = stats.Mean(pows)
	acc.AvgPkgPowerW = stats.Mean(pkgs)
	acc.EnergyJ = stats.Mean(energies)
	acc.AvgCPUGHz = stats.Mean(cpus)
	acc.AvgIMCGHz = stats.Mean(imcs)
	acc.AvgCPI = stats.Mean(cpis)
	acc.AvgGBs = stats.Mean(gbs)
	return acc, nil
}
