package sim

import (
	"math"
	"reflect"
	"testing"

	"goear/internal/workload"
)

// TestExplicitZeroThresholds is the regression test for the options
// zero-value fix: F(0) must survive defaulting, and nil must still
// resolve to the documented defaults.
func TestExplicitZeroThresholds(t *testing.T) {
	d := Options{}.WithDefaults()
	if *d.CPUTh != 0.05 || *d.UncTh != 0.02 || *d.NoiseSD != 0.003 {
		t.Errorf("nil thresholds resolved to (%v, %v, %v), want (0.05, 0.02, 0.003)",
			*d.CPUTh, *d.UncTh, *d.NoiseSD)
	}
	z := Options{CPUTh: F(0), UncTh: F(0), NoiseSD: F(0)}.WithDefaults()
	if *z.CPUTh != 0 || *z.UncTh != 0 || *z.NoiseSD != 0 {
		t.Errorf("explicit zeros resolved to (%v, %v, %v), want (0, 0, 0)",
			*z.CPUTh, *z.UncTh, *z.NoiseSD)
	}
}

// TestExplicitZeroNoiseIsNoiseless verifies F(0) actually changes run
// behaviour: with NoiseSD zero, two different seeds produce identical
// results, something an unset (defaulted) NoiseSD never does.
func TestExplicitZeroNoiseIsNoiseless(t *testing.T) {
	cal := calibrated(t, workload.BTMZC)
	a, err := Run(cal, Options{Policy: "none", NoiseSD: F(0), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cal, Options{Policy: "none", NoiseSD: F(0), Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a.TimeSec != b.TimeSec || a.EnergyJ != b.EnergyJ {
		t.Errorf("noiseless runs differ across seeds: (%v, %v) vs (%v, %v)",
			a.TimeSec, a.EnergyJ, b.TimeSec, b.EnergyJ)
	}
}

// TestWorkersByteIdentical is the race-detector stress test of the
// buffer-reuse paths: RunAveraged over a multi-node workload must yield
// byte-identical Results at every worker count. Run under -race this
// also exercises the pooled node state concurrently.
func TestWorkersByteIdentical(t *testing.T) {
	cal := calibrated(t, workload.BTMZC)
	cal.Nodes = 4 // fan the per-run node loop out too
	m := platformModel(t, cal.Platform)

	var ref Result
	for i, workers := range []int{1, 4, 16} {
		opt := Options{Policy: "min_energy_eufs", Model: m, Seed: 7, Workers: workers}
		r, err := RunAveraged(cal, opt, 4)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if i == 0 {
			ref = r
			continue
		}
		if !reflect.DeepEqual(ref, r) {
			t.Errorf("workers=%d result differs from workers=1", workers)
		}
	}
}

// TestMacroStepMatchesExactWithinTolerance validates the opt-in
// steady-phase fast-forward: aggregate outcomes must agree with exact
// mode within the documented tolerance (the modes differ only in float
// summation order plus the coarser INM publication grid), and the
// policy trajectory (final operating point, EARL activity) must be
// identical.
func TestMacroStepMatchesExactWithinTolerance(t *testing.T) {
	const relTol = 1e-3
	for _, name := range []string{workload.BTMZC, workload.BTCUDA} {
		cal := calibrated(t, name)
		m := platformModel(t, cal.Platform)
		for _, pol := range []string{"none", "min_energy_eufs"} {
			exact, err := Run(cal, Options{Policy: pol, Model: m, Seed: 11})
			if err != nil {
				t.Fatal(err)
			}
			fast, err := Run(cal, Options{Policy: pol, Model: m, Seed: 11, MacroStep: true})
			if err != nil {
				t.Fatal(err)
			}
			check := func(what string, e, f float64) {
				if e == 0 && f == 0 {
					return
				}
				if rel := math.Abs(f-e) / math.Abs(e); rel > relTol {
					t.Errorf("%s/%s: macro %s = %v, exact %v (rel err %.2e > %g)",
						name, pol, what, f, e, rel, relTol)
				}
			}
			check("time", exact.TimeSec, fast.TimeSec)
			check("energy", exact.EnergyJ, fast.EnergyJ)
			check("avg power", exact.AvgPowerW, fast.AvgPowerW)
			check("avg CPU GHz", exact.AvgCPUGHz, fast.AvgCPUGHz)
			check("avg IMC GHz", exact.AvgIMCGHz, fast.AvgIMCGHz)
			en, fn := exact.Nodes[0], fast.Nodes[0]
			if en.FinalCPUPstate != fn.FinalCPUPstate || en.FinalUncoreMax != fn.FinalUncoreMax {
				t.Errorf("%s/%s: macro settled at (p%d, u%d), exact (p%d, u%d)",
					name, pol, fn.FinalCPUPstate, fn.FinalUncoreMax,
					en.FinalCPUPstate, en.FinalUncoreMax)
			}
			if en.Signatures != fn.Signatures || en.PolicyApplies != fn.PolicyApplies {
				t.Errorf("%s/%s: macro EARL activity (%d sigs, %d applies), exact (%d, %d)",
					name, pol, fn.Signatures, fn.PolicyApplies, en.Signatures, en.PolicyApplies)
			}
		}
	}
}

// TestMacroStepActuallyFastForwards guards against the fast-forward
// silently never engaging: a steady no-policy run must finish in far
// fewer steps than exact mode.
func TestMacroStepActuallyFastForwards(t *testing.T) {
	cal := calibrated(t, workload.BTMZC)
	count := func(macro bool) int {
		s, err := NewStepper(cal, 0, Options{Policy: "none", Seed: 5, MacroStep: macro})
		if err != nil {
			t.Fatal(err)
		}
		steps := 0
		for !s.Done() {
			if err := s.Step(); err != nil {
				t.Fatal(err)
			}
			steps++
		}
		return steps
	}
	exact, fast := count(false), count(true)
	if fast*10 > exact {
		t.Errorf("macro mode took %d steps vs %d exact; fast-forward not engaging", fast, exact)
	}
}
