package sim

import (
	"fmt"

	"goear/internal/accounting"
)

// AccountingRecords converts a phase-sampled run result into per-job,
// per-phase energy records, attributing each node's measured energy to
// the job via the accounting ratio engine. The run must have executed
// with Options.Phases set.
//
// The simulator runs one job per node (MPI ranks, the paper's
// deployment model), so each window has a single tenant and the ratio
// split is exact passthrough; multi-tenant splitting is exercised by
// the accounting engine itself wherever co-resident usage exists (see
// accounting.Attribute). Records inherit the per-node determinism of
// the run: byte-identical at any Workers count.
//
// nodeName maps a node index to its cluster name; nil uses the
// "node%03d" convention. meta.Policy defaults to the run's policy.
func AccountingRecords(res Result, meta accounting.Meta, nodeName func(i int) string) ([]accounting.Record, error) {
	if nodeName == nil {
		nodeName = defaultNodeName
	}
	if meta.Policy == "" {
		meta.Policy = res.Policy
	}
	var out []accounting.Record
	for i := range res.Nodes {
		n := &res.Nodes[i]
		if len(n.Phases) == 0 {
			return nil, fmt.Errorf("sim: node %d has no phase samples; run with Options.Phases", i)
		}
		for _, ph := range n.Phases {
			dur := ph.EndSec - ph.StartSec
			rates := accounting.Rates{}
			if dur > 0 {
				rates.AvgCPUGHz = ph.CoreFreqSec / dur
				rates.AvgIMCGHz = ph.IMCFreqSec / dur
			}
			recs, err := accounting.Attribute(
				accounting.Window{
					Node:     nodeName(i),
					Phase:    ph.Seg,
					StartSec: ph.StartSec,
					EndSec:   ph.EndSec,
				},
				accounting.Energy{
					PkgJ:    ph.PkgJ,
					DramJ:   ph.DramJ,
					UncoreJ: ph.UncoreJ,
					NodeJ:   ph.NodeJ,
				},
				[]accounting.Tenant{{
					Meta: meta,
					Usage: accounting.Usage{
						Instr:     ph.Instr,
						Cycles:    ph.Cycles,
						DRAMBytes: ph.DRAMBytes,
					},
					Rates: rates,
				}},
			)
			if err != nil {
				return nil, err
			}
			out = append(out, recs...)
		}
	}
	return out, nil
}

// defaultNodeName is the cluster naming convention used when no
// mapping is supplied.
func defaultNodeName(i int) string { return fmt.Sprintf("node%03d", i) }
