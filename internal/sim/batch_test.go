package sim

import (
	"math/rand"
	"reflect"
	"testing"

	"goear/internal/eargm"
	"goear/internal/model"
	"goear/internal/workload"
)

// batchGoldenCase is one coordinated-run configuration whose batch and
// reference stepping paths must agree byte for byte.
type batchGoldenCase struct {
	name    string
	wl      string
	policy  string
	macro   bool
	phases  bool
	budgetW float64 // 0 = loose (manager never caps)
}

func batchGoldenCases() []batchGoldenCase {
	return []batchGoldenCase{
		// Tight budget engages the cap ratchet, exercising the batch
		// disarm path on SetCapRatio; phases exercise the in-place
		// phase-sample pointer.
		{name: "btmz_eufs_capped", wl: workload.BTMZC, policy: "min_energy_eufs", budgetW: 1100, phases: true},
		{name: "btmz_eufs_macro", wl: workload.BTMZC, policy: "min_energy_eufs", macro: true},
		{name: "btmz_none", wl: workload.BTMZC, policy: "none", macro: true, phases: true},
		// Accelerator class: wall-clock paced iterations take the other
		// fast-tick branch.
		{name: "btcuda_eufs", wl: workload.BTCUDA, policy: "min_energy_eufs"},
		{name: "btcuda_none_macro", wl: workload.BTCUDA, policy: "none", macro: true},
	}
}

func (c batchGoldenCase) options(t *testing.T, m *model.Model) Options {
	t.Helper()
	opt := Options{Policy: c.policy, Seed: 11, MacroStep: c.macro, Phases: c.phases}
	if c.policy != "none" {
		opt.Model = m
	}
	return opt
}

func (c batchGoldenCase) manager(t *testing.T) *eargm.Manager {
	t.Helper()
	budget := c.budgetW
	if budget == 0 {
		budget = 1e6
	}
	gm, err := eargm.New(eargm.Config{BudgetW: budget, MaxCapPstate: 8, IntervalSec: 5})
	if err != nil {
		t.Fatal(err)
	}
	return gm
}

// TestBatchMatchesReferenceByteIdentical pins the tentpole invariant:
// batch (struct-of-arrays) stepping produces byte-identical coordinated
// results to the per-node reference path, at every worker and shard
// count, with and without macro stepping, capped and uncapped, for both
// workload classes.
func TestBatchMatchesReferenceByteIdentical(t *testing.T) {
	for _, c := range batchGoldenCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			cal := calibrated(t, c.wl)
			m := platformModel(t, cal.Platform)

			refOpt := c.options(t, m)
			refOpt.ReferenceStep = true
			refOpt.Workers = 1
			ref, err := RunCoordinated(cal, refOpt, c.manager(t))
			if err != nil {
				t.Fatal(err)
			}

			for _, workers := range []int{1, 4} {
				for _, shards := range []int{1, 2, 4} {
					opt := c.options(t, m)
					opt.Workers = workers
					opt.Shards = shards
					got, err := RunCoordinated(cal, opt, c.manager(t))
					if err != nil {
						t.Fatalf("workers=%d shards=%d: %v", workers, shards, err)
					}
					if !reflect.DeepEqual(got, ref) {
						t.Errorf("workers=%d shards=%d: batch result differs from reference\n got: %+v\nwant: %+v",
							workers, shards, got, ref)
					}
				}
			}
		})
	}
}

// TestCoordinatedMacroMatchesExactWithinTolerance checks that the
// barrier-bounded macro fast-forward keeps coordinated runs within the
// same tolerance macro stepping guarantees for free runs, with the
// policy trajectory (decisions, final operating point) exactly equal.
func TestCoordinatedMacroMatchesExactWithinTolerance(t *testing.T) {
	const relTol = 1e-3
	for _, wl := range []string{workload.BTMZC, workload.BTCUDA} {
		for _, pol := range []string{"none", "min_energy_eufs"} {
			cal := calibrated(t, wl)
			m := platformModel(t, cal.Platform)
			opt := Options{Policy: pol, Seed: 7}
			if pol != "none" {
				opt.Model = m
			}
			gmFor := func() *eargm.Manager {
				gm, err := eargm.New(eargm.Config{BudgetW: 1e6, MaxCapPstate: 8, IntervalSec: 5})
				if err != nil {
					t.Fatal(err)
				}
				return gm
			}
			exact, err := RunCoordinated(cal, opt, gmFor())
			if err != nil {
				t.Fatal(err)
			}
			opt.MacroStep = true
			fast, err := RunCoordinated(cal, opt, gmFor())
			if err != nil {
				t.Fatal(err)
			}
			close := func(name string, a, b float64) {
				t.Helper()
				if b == 0 {
					if a != 0 {
						t.Errorf("%s/%s %s: %g vs 0", cal.Name, pol, name, a)
					}
					return
				}
				if d := (a - b) / b; d > relTol || d < -relTol {
					t.Errorf("%s/%s %s: macro %g vs exact %g (rel %g)", cal.Name, pol, name, a, b, d)
				}
			}
			close("TimeSec", fast.TimeSec, exact.TimeSec)
			close("EnergyJ", fast.EnergyJ, exact.EnergyJ)
			close("AvgPowerW", fast.AvgPowerW, exact.AvgPowerW)
			close("AvgCPUGHz", fast.AvgCPUGHz, exact.AvgCPUGHz)
			close("AvgIMCGHz", fast.AvgIMCGHz, exact.AvgIMCGHz)
			for i := range exact.Nodes {
				e, f := exact.Nodes[i], fast.Nodes[i]
				if f.FinalCPUPstate != e.FinalCPUPstate || f.FinalUncoreMax != e.FinalUncoreMax {
					t.Errorf("%s/%s node %d: final op point (%d,%d) vs (%d,%d)", cal.Name, pol, i,
						f.FinalCPUPstate, f.FinalUncoreMax, e.FinalCPUPstate, e.FinalUncoreMax)
				}
				if f.Signatures != e.Signatures || f.PolicyApplies != e.PolicyApplies {
					t.Errorf("%s/%s node %d: signatures/applies %d/%d vs %d/%d", cal.Name, pol, i,
						f.Signatures, f.PolicyApplies, e.Signatures, e.PolicyApplies)
				}
			}
		}
	}
}

// TestBatchAddRemoveRecycle drives a randomized add/remove/step sequence
// and checks the dense-index invariants swap-removal must maintain: the
// id table tracks a model exactly, removed slots are recycled, and the
// surviving nodes still step and report results.
func TestBatchAddRemoveRecycle(t *testing.T) {
	cal := calibrated(t, workload.BTMZC)
	b, err := NewBatch(cal, Options{Policy: "none", Seed: 1})
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(42))
	var ids []int // model of the batch's dense id table
	nextID := 0
	add := func() {
		i, err := b.Add(nextID)
		if err != nil {
			t.Fatal(err)
		}
		if i != len(ids) {
			t.Fatalf("Add returned index %d, want %d", i, len(ids))
		}
		ids = append(ids, nextID)
		nextID++
	}
	remove := func(i int) {
		if err := b.Remove(i); err != nil {
			t.Fatal(err)
		}
		ids[i] = ids[len(ids)-1]
		ids = ids[:len(ids)-1]
	}
	check := func() {
		t.Helper()
		if b.Len() != len(ids) {
			t.Fatalf("Len() = %d, want %d", b.Len(), len(ids))
		}
		for i, id := range ids {
			if got := b.NodeID(i); got != id {
				t.Fatalf("NodeID(%d) = %d, want %d", i, got, id)
			}
		}
	}

	for i := 0; i < 8; i++ {
		add()
	}
	check()
	clock := 0.0
	for op := 0; op < 60; op++ {
		switch {
		case len(ids) == 0 || rng.Intn(3) == 0:
			add()
		case rng.Intn(2) == 0:
			remove(rng.Intn(len(ids)))
		default:
			clock += 5
			if err := b.StepUntil(clock); err != nil {
				t.Fatal(err)
			}
		}
		check()
	}
	if len(ids) == 0 {
		add()
	}
	// Every survivor must have advanced to the batch clock (or be done)
	// and produce a well-formed result.
	clock += 5
	if err := b.StepUntil(clock); err != nil {
		t.Fatal(err)
	}
	rs, err := b.Results()
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != len(ids) {
		t.Fatalf("Results len %d, want %d", len(rs), len(ids))
	}
	for i, r := range rs {
		if r.TimeSec <= 0 || r.EnergyJ <= 0 {
			t.Errorf("node %d: empty result %+v", ids[i], r)
		}
	}
	if err := b.Remove(len(ids)); err == nil {
		t.Error("Remove past end: expected error")
	}
	if !b.Done() {
		// Not all nodes are done mid-run; Done must say so.
		_ = b.Done()
	}
}
