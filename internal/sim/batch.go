package sim

import (
	"fmt"

	"goear/internal/msr"
	"goear/internal/uncore"
	"goear/internal/workload"
)

// Batch advances many simulated nodes of one calibrated workload in
// lock step, holding each node's hot per-tick state as parallel dense
// slices (struct-of-arrays) so a tick over the whole batch is a linear
// sweep instead of a pointer-chasing walk through per-node object
// graphs.
//
// Every node is in one of two states:
//
//   - armed (fast): the node is mid-iteration at a stable operating
//     point — evaluation cached, uncore controllers settled, no trace
//     sampling. Every remaining tick of the iteration then performs
//     the same constant increments, so the kernel precomputes them
//     once (the node's LUT row) and replays them against the flat
//     state with exactly stepOnce's arithmetic, in exactly its order.
//     The replay is bit-identical to per-node stepping.
//   - slow: everything else — iteration boundaries (noise draws, EARL
//     events, policy actuation), macro-step decisions, controller
//     ramps, trace sampling, the clamped final tick of an iteration.
//     The node's flat state is flushed back and the existing per-node
//     stepOnce runs; the kernel re-arms when the node stabilises.
//
// Arming and disarming round-trip the node's meters and controllers
// through the flat views (power.NodeManager.FlatState, Rapl.FlatCarry,
// uncore.Controller.TickAccum, the raw RAPL MSR counters), so batch
// and per-node runs produce byte-identical results; the golden tests
// assert this across worker and shard counts.
type Batch struct {
	cal   workload.Calibrated
	opt   Options
	nsock int

	nodes []*node
	ids   []int
	free  []*node // recycled node allocations for Add after Remove

	// clock accumulates Tick deltas; StepUntil never rewinds it.
	clock float64

	armed []bool
	accel []bool
	done  []bool

	// Hot per-tick state, one entry per resident node (per-socket
	// slices hold nsock entries per node at i*nsock+s).
	now       []float64
	instrLeft []float64
	wallLeft  []float64
	instr     []float64
	cycles    []float64
	avx       []float64
	bytes     []float64
	coreFS    []float64
	imcFS     []float64
	pkgJ      []float64
	dramJ     []float64
	inmTrue   []float64
	inmPub    []float64
	inmLast   []float64
	inmNow    []float64
	carryDram []float64
	cntDram   []uint64
	carryPkg  []float64
	cntPkg    []uint64
	ctlAcc    []float64
	steps     []uint64
	ph        []*PhaseSample

	// lut holds each armed node's precomputed per-tick increments.
	lut []tickLUT
}

// tickLUT is one node's precomputed fast-tick increments: every value
// stepOnce would recompute identically each tick while the operating
// point holds. Each field is built with the exact expression (and
// evaluation order) of the per-node path, so replaying the adds is
// bit-identical to stepping.
type tickLUT struct {
	dt        float64 // simulated seconds per tick
	instr     float64 // per-core instructions per tick
	nodeInstr float64 // node instructions per tick
	cycles    float64
	avx       float64
	bytes     float64
	totalJ    float64 // DC energy per tick (INM scope)
	pkgJ      float64 // RAPL PKG joules per tick (all sockets)
	dramJ     float64
	sockPkgJ  float64 // RAPL PKG joules per tick per socket
	uncJ      float64 // uncore share per tick (phase attribution)
	coreFS    float64 // core frequency-seconds per tick
	imcFS     float64
	esuScale  float64 // joules -> RAPL counter counts multiplier
}

// NewBatch builds an empty batch for one calibrated workload. Options
// are defaulted exactly as Run does; nodes join with Add.
func NewBatch(cal workload.Calibrated, opt Options) (*Batch, error) {
	opt = opt.withDefaults()
	if opt.Policy != "none" && opt.Model == nil {
		return nil, fmt.Errorf("sim: policy %q needs a trained model", opt.Policy)
	}
	return &Batch{cal: cal, opt: opt, nsock: cal.Platform.Machine.CPU.Sockets}, nil
}

// Len reports the resident node count.
func (b *Batch) Len() int { return len(b.nodes) }

// NodeID returns the workload node id at dense index i.
func (b *Batch) NodeID(i int) int { return b.ids[i] }

// Add admits one node (seeded by its workload node id) and returns its
// dense index. Node allocations freed by Remove are recycled.
func (b *Batch) Add(nodeID int) (int, error) {
	var n *node
	if len(b.free) > 0 {
		n = b.free[len(b.free)-1]
		b.free = b.free[:len(b.free)-1]
		if err := n.init(b.cal, nodeID, b.opt); err != nil {
			return 0, err
		}
	} else {
		var err error
		n, err = newNode(b.cal, nodeID, b.opt)
		if err != nil {
			return 0, err
		}
	}
	i := len(b.nodes)
	b.nodes = append(b.nodes, n)
	b.ids = append(b.ids, nodeID)
	b.armed = append(b.armed, false)
	b.accel = append(b.accel, b.cal.Class == workload.Accelerator)
	b.done = append(b.done, n.done)
	b.now = append(b.now, n.now)
	b.instrLeft = append(b.instrLeft, 0)
	b.wallLeft = append(b.wallLeft, 0)
	b.instr = append(b.instr, 0)
	b.cycles = append(b.cycles, 0)
	b.avx = append(b.avx, 0)
	b.bytes = append(b.bytes, 0)
	b.coreFS = append(b.coreFS, 0)
	b.imcFS = append(b.imcFS, 0)
	b.pkgJ = append(b.pkgJ, 0)
	b.dramJ = append(b.dramJ, 0)
	b.inmTrue = append(b.inmTrue, 0)
	b.inmPub = append(b.inmPub, 0)
	b.inmLast = append(b.inmLast, 0)
	b.inmNow = append(b.inmNow, 0)
	b.carryDram = append(b.carryDram, 0)
	b.cntDram = append(b.cntDram, 0)
	b.ctlAcc = append(b.ctlAcc, make([]float64, b.nsock)...)
	b.carryPkg = append(b.carryPkg, make([]float64, b.nsock)...)
	b.cntPkg = append(b.cntPkg, make([]uint64, b.nsock)...)
	b.steps = append(b.steps, 0)
	b.ph = append(b.ph, nil)
	b.lut = append(b.lut, tickLUT{})
	return i, nil
}

// Remove evicts the node at dense index i, swapping the last node into
// its slot so the slices stay dense; the freed allocation is recycled
// by the next Add.
func (b *Batch) Remove(i int) error {
	if i < 0 || i >= len(b.nodes) {
		return fmt.Errorf("sim: batch remove index %d out of range [0,%d)", i, len(b.nodes))
	}
	if b.armed[i] {
		if err := b.disarm(i); err != nil {
			return err
		}
	}
	n := b.nodes[i]
	n.trace = nil
	n.lib = nil
	b.free = append(b.free, n)

	last := len(b.nodes) - 1
	b.nodes[i] = b.nodes[last]
	b.ids[i] = b.ids[last]
	b.armed[i] = b.armed[last]
	b.accel[i] = b.accel[last]
	b.done[i] = b.done[last]
	b.now[i] = b.now[last]
	b.instrLeft[i] = b.instrLeft[last]
	b.wallLeft[i] = b.wallLeft[last]
	b.instr[i] = b.instr[last]
	b.cycles[i] = b.cycles[last]
	b.avx[i] = b.avx[last]
	b.bytes[i] = b.bytes[last]
	b.coreFS[i] = b.coreFS[last]
	b.imcFS[i] = b.imcFS[last]
	b.pkgJ[i] = b.pkgJ[last]
	b.dramJ[i] = b.dramJ[last]
	b.inmTrue[i] = b.inmTrue[last]
	b.inmPub[i] = b.inmPub[last]
	b.inmLast[i] = b.inmLast[last]
	b.inmNow[i] = b.inmNow[last]
	b.carryDram[i] = b.carryDram[last]
	b.cntDram[i] = b.cntDram[last]
	copy(b.ctlAcc[i*b.nsock:(i+1)*b.nsock], b.ctlAcc[last*b.nsock:(last+1)*b.nsock])
	copy(b.carryPkg[i*b.nsock:(i+1)*b.nsock], b.carryPkg[last*b.nsock:(last+1)*b.nsock])
	copy(b.cntPkg[i*b.nsock:(i+1)*b.nsock], b.cntPkg[last*b.nsock:(last+1)*b.nsock])
	b.steps[i] = b.steps[last]
	b.ph[i] = b.ph[last]
	b.lut[i] = b.lut[last]

	b.nodes = b.nodes[:last]
	b.ids = b.ids[:last]
	b.armed = b.armed[:last]
	b.accel = b.accel[:last]
	b.done = b.done[:last]
	b.now = b.now[:last]
	b.instrLeft = b.instrLeft[:last]
	b.wallLeft = b.wallLeft[:last]
	b.instr = b.instr[:last]
	b.cycles = b.cycles[:last]
	b.avx = b.avx[:last]
	b.bytes = b.bytes[:last]
	b.coreFS = b.coreFS[:last]
	b.imcFS = b.imcFS[:last]
	b.pkgJ = b.pkgJ[:last]
	b.dramJ = b.dramJ[:last]
	b.inmTrue = b.inmTrue[:last]
	b.inmPub = b.inmPub[:last]
	b.inmLast = b.inmLast[:last]
	b.inmNow = b.inmNow[:last]
	b.carryDram = b.carryDram[:last]
	b.cntDram = b.cntDram[:last]
	b.ctlAcc = b.ctlAcc[:last*b.nsock]
	b.carryPkg = b.carryPkg[:last*b.nsock]
	b.cntPkg = b.cntPkg[:last*b.nsock]
	b.steps = b.steps[:last]
	b.ph = b.ph[:last]
	b.lut = b.lut[:last]
	return nil
}

// Tick advances the batch clock by dt and steps every resident node to
// it: the lock-step slice RunCoordinated's intervals are made of.
func (b *Batch) Tick(dt float64) error {
	return b.StepUntil(b.clock + dt)
}

// StepUntil advances every resident node to (at least) simulated time
// t or to completion, sweeping the batch one tick per pass so armed
// nodes advance through the flat state linearly.
func (b *Batch) StepUntil(t float64) error {
	if t > b.clock {
		b.clock = t
	}
	for {
		active := false
		for i := range b.nodes {
			if b.done[i] || b.now[i] >= t {
				continue
			}
			active = true
			if b.armed[i] && b.fastTick(i) {
				continue
			}
			if err := b.slowStep(i, t); err != nil {
				return fmt.Errorf("sim: %s node %d: %w", b.cal.Name, b.ids[i], err)
			}
		}
		if !active {
			return nil
		}
	}
}

// Done reports whether every resident node has finished its workload.
func (b *Batch) Done() bool {
	for i := range b.done {
		if !b.done[i] {
			return false
		}
	}
	return true
}

// TrueEnergy returns the node's exact DC energy integral (the
// simulator-side Node Manager reading), serving armed nodes from the
// flat state without a flush.
func (b *Batch) TrueEnergy(i int) float64 {
	if b.armed[i] {
		return b.inmTrue[i]
	}
	return b.nodes[i].inm.TrueEnergy()
}

// SetCapRatio applies (or with 0 releases) the node-daemon core-ratio
// ceiling on every resident node. The cap changes the operating point,
// so all armed nodes are disarmed; they re-arm once stable again.
func (b *Batch) SetCapRatio(r uint64) error {
	for i, n := range b.nodes {
		if b.armed[i] {
			if err := b.disarm(i); err != nil {
				return err
			}
		}
		n.setCapRatio(r)
	}
	return nil
}

// Results assembles every resident node's outcome in dense order,
// flushing armed nodes first.
func (b *Batch) Results() ([]NodeResult, error) {
	out := make([]NodeResult, len(b.nodes))
	for i, n := range b.nodes {
		if b.armed[i] {
			if err := b.disarm(i); err != nil {
				return nil, err
			}
		}
		nr, err := n.result()
		if err != nil {
			return nil, fmt.Errorf("sim: %s node %d: %w", b.cal.Name, b.ids[i], err)
		}
		out[i] = nr
	}
	return out, nil
}

// slowStep flushes the node (if armed), runs one per-node step bounded
// by the barrier t, mirrors the cheap per-tick fields back, and tries
// to re-arm.
func (b *Batch) slowStep(i int, t float64) error {
	if b.armed[i] {
		if err := b.disarm(i); err != nil {
			return err
		}
	}
	n := b.nodes[i]
	n.macroLimit = t
	if err := n.stepOnce(); err != nil {
		return err
	}
	b.now[i] = n.now
	b.done[i] = n.done
	b.tryArm(i)
	return nil
}

// fastTick replays one precomputed tick against the flat state. It
// returns false — leaving the state untouched — when the node's
// iteration would clamp or finish this tick, which only the slow path
// handles.
func (b *Batch) fastTick(i int) bool {
	l := &b.lut[i]
	if b.accel[i] {
		// stepOnce: dt = min(StepSec, wallLeft); the fast tick needs
		// dt == StepSec and the iteration not to finish.
		if b.wallLeft[i]-l.dt <= 1e-9 {
			return false
		}
		b.wallLeft[i] -= l.dt
	} else {
		// stepOnce: nInstr = StepSec/spi clamped to instrLeft; the
		// fast tick needs no clamp and the iteration not to finish.
		if l.instr > b.instrLeft[i] {
			return false
		}
		left := b.instrLeft[i] - l.instr
		if left <= 1e-6 {
			return false
		}
		b.instrLeft[i] = left
	}
	b.steps[i]++

	// advance(), with every per-tick constant replayed from the LUT in
	// the same order.
	b.instr[i] += l.nodeInstr
	b.cycles[i] += l.cycles
	b.avx[i] += l.avx
	b.bytes[i] += l.bytes

	// Node Manager: integrate, publish at whole-second boundaries.
	b.inmTrue[i] += l.totalJ
	b.inmNow[i] += l.dt
	if b.inmNow[i]-b.inmLast[i] >= 1.0 {
		b.inmPub[i] = b.inmTrue[i]
		b.inmLast[i] = float64(int64(b.inmNow[i]))
	}

	// RAPL: carry fractional joules, truncate to counter units, wrap
	// the mirrored 32-bit counters exactly as msr.AddEnergyHw does.
	base := i * b.nsock
	for s := 0; s < b.nsock; s++ {
		j := l.sockPkgJ + b.carryPkg[base+s]
		whole := float64(int64(j*1e6)) / 1e6
		b.cntPkg[base+s] = (b.cntPkg[base+s] + uint64(whole*l.esuScale)) & 0xFFFFFFFF
		b.carryPkg[base+s] = j - whole
	}
	jd := l.dramJ + b.carryDram[i]
	whole := float64(int64(jd*1e6)) / 1e6
	b.cntDram[i] = (b.cntDram[i] + uint64(whole*l.esuScale)) & 0xFFFFFFFF
	b.carryDram[i] = jd - whole

	b.pkgJ[i] += l.pkgJ
	b.dramJ[i] += l.dramJ
	b.coreFS[i] += l.coreFS
	b.imcFS[i] += l.imcFS

	if ph := b.ph[i]; ph != nil {
		ph.PkgJ += l.pkgJ
		ph.DramJ += l.dramJ
		ph.UncoreJ += l.uncJ
		ph.NodeJ += l.totalJ
		ph.Instr += l.nodeInstr
		ph.Cycles += l.cycles
		ph.DRAMBytes += l.bytes
		ph.CoreFreqSec += l.coreFS
		ph.IMCFreqSec += l.imcFS
		ph.EndSec = b.now[i] + l.dt
	}

	// Settled controllers: ticks are no-ops, only the accumulator moves.
	for s := 0; s < b.nsock; s++ {
		b.ctlAcc[base+s] = uncore.SettleAccum(b.ctlAcc[base+s], l.dt)
	}
	b.now[i] += l.dt
	return true
}

// tryArm lifts the node into the fast path when it is mid-iteration at
// a stable operating point: evaluation cached, every uncore controller
// settled, no trace sampling. The LUT is computed with stepOnce's
// exact expressions so the replay is bit-identical.
func (b *Batch) tryArm(i int) {
	n := b.nodes[i]
	if n.done || !n.iterActive || n.opt.Trace {
		return
	}
	e, err := n.evalAt(n.segIdx)
	if err != nil {
		// Leave the node slow; the next stepOnce surfaces the error.
		return
	}
	for _, c := range n.ctls {
		ok, err := c.Settled(e.effRatio)
		if err != nil || !ok {
			return
		}
	}
	if n.opt.Phases && len(n.phases) <= n.segIdx {
		return
	}

	l := &b.lut[i]
	spi := e.res.SecPerInstr * n.tNoise
	if b.accel[i] {
		l.dt = n.opt.StepSec
		l.instr = l.dt / spi
	} else {
		l.instr = n.opt.StepSec / spi
		l.dt = l.instr * spi
	}
	seg := n.cal.Segs[n.segIdx]
	cores := float64(n.cal.ActiveCores)
	l.nodeInstr = l.instr * cores
	l.cycles = l.dt * e.res.EffCoreFreq.GHzF() * 1e9 * cores
	l.avx = seg.Phase.VPI * l.nodeInstr
	l.bytes = l.nodeInstr * seg.Phase.BytesPerInstr
	total := e.brk.Total * n.pNoise
	l.totalJ = total * l.dt
	scaledPkg := e.brk.Pkg * n.pNoise
	scaledDram := e.brk.Dram * n.pNoise
	l.sockPkgJ = scaledPkg / float64(len(n.sockets)) * l.dt
	l.pkgJ = scaledPkg * l.dt
	l.dramJ = scaledDram * l.dt
	l.uncJ = e.brk.Uncore * n.pNoise * l.dt
	l.coreFS = e.res.EffCoreFreq.GHzF() * n.cal.FreqBias * l.dt
	l.imcFS = e.res.UncoreFreq.GHzF() * n.cal.IMCBias * l.dt

	unit, err := n.files[0].Read(msr.MSRRaplPowerUnit)
	if err != nil {
		return
	}
	l.esuScale = float64(uint64(1) << ((unit >> 8) & 0x1F))

	// Lift the node's mutable per-tick state into the flat slices.
	base := i * b.nsock
	for s := 0; s < b.nsock; s++ {
		pkg, err := n.files[s].Read(msr.MSRPkgEnergyStatus)
		if err != nil {
			return
		}
		b.cntPkg[base+s] = pkg
		b.ctlAcc[base+s] = n.ctls[s].TickAccum()
	}
	dram, err := n.files[0].Read(msr.MSRDramEnergyStatus)
	if err != nil {
		return
	}
	b.cntDram[i] = dram
	b.carryDram[i] = n.rapl.FlatCarry(b.carryPkg[base : base+b.nsock])
	b.inmTrue[i], b.inmPub[i], b.inmLast[i], b.inmNow[i] = n.inm.FlatState()

	b.now[i] = n.now
	b.instrLeft[i] = n.instrLeft
	b.wallLeft[i] = n.wallLeft
	b.instr[i] = n.instr
	b.cycles[i] = n.cycles
	b.avx[i] = n.avx
	b.bytes[i] = n.bytes
	b.coreFS[i] = n.coreFreqSec
	b.imcFS[i] = n.imcFreqSec
	b.pkgJ[i] = n.pkgJ
	b.dramJ[i] = n.dramJ
	b.steps[i] = n.stepCount
	if n.opt.Phases {
		b.ph[i] = &n.phases[n.segIdx]
	} else {
		b.ph[i] = nil
	}
	b.armed[i] = true
}

// disarm flushes the flat state back into the node — counters, meters,
// carries, controllers, MSR energy registers — restoring exactly the
// state per-node stepping would have reached.
func (b *Batch) disarm(i int) error {
	n := b.nodes[i]
	base := i * b.nsock
	for s := 0; s < b.nsock; s++ {
		if err := n.files[s].WriteHw(msr.MSRPkgEnergyStatus, b.cntPkg[base+s]); err != nil {
			return err
		}
		n.ctls[s].SetTickAccum(b.ctlAcc[base+s])
	}
	if err := n.files[0].WriteHw(msr.MSRDramEnergyStatus, b.cntDram[i]); err != nil {
		return err
	}
	n.rapl.SetFlatCarry(b.carryPkg[base:base+b.nsock], b.carryDram[i])
	n.inm.SetFlatState(b.inmTrue[i], b.inmPub[i], b.inmLast[i], b.inmNow[i])

	n.now = b.now[i]
	n.instrLeft = b.instrLeft[i]
	n.wallLeft = b.wallLeft[i]
	n.instr = b.instr[i]
	n.cycles = b.cycles[i]
	n.avx = b.avx[i]
	n.bytes = b.bytes[i]
	n.coreFreqSec = b.coreFS[i]
	n.imcFreqSec = b.imcFS[i]
	n.pkgJ = b.pkgJ[i]
	n.dramJ = b.dramJ[i]
	n.stepCount = b.steps[i]
	b.ph[i] = nil
	b.armed[i] = false
	return nil
}
