package sim

import (
	"fmt"

	"goear/internal/workload"
)

// Stepper drives one simulated node tick by tick. It exposes the same
// resumable core RunCoordinated uses internally, so benchmarks and
// diagnostics can measure the per-step cost of the simulator's inner
// loop (tick → perf evaluation → meters → controller → EARL) in
// isolation from run setup and aggregation.
type Stepper struct {
	n *node
}

// NewStepper builds a node ready to step through the calibrated
// workload. Options are defaulted exactly as Run does.
func NewStepper(cal workload.Calibrated, nodeID int, opt Options) (*Stepper, error) {
	opt = opt.withDefaults()
	if opt.Policy != "none" && opt.Model == nil {
		return nil, fmt.Errorf("sim: policy %q needs a trained model", opt.Policy)
	}
	n, err := newNode(cal, nodeID, opt)
	if err != nil {
		return nil, err
	}
	return &Stepper{n: n}, nil
}

// Step advances the node by at most one simulation step. Stepping a
// finished node is a no-op.
func (s *Stepper) Step() error { return s.n.stepOnce() }

// Done reports whether the workload has completed.
func (s *Stepper) Done() bool { return s.n.done }

// Now returns the node's simulated time in seconds.
func (s *Stepper) Now() float64 { return s.n.now }

// Result assembles the node's outcome; valid once some work has run.
func (s *Stepper) Result() (NodeResult, error) { return s.n.result() }
