package eard

import (
	"sort"
)

// AppAggregate summarises all recorded runs of one application (the
// ereport view: where does the cluster's energy go, and how do the
// policies compare per application).
type AppAggregate struct {
	App       string  `json:"app"`
	Jobs      int     `json:"jobs"`
	NodeHours float64 `json:"node_hours"`
	EnergyKJ  float64 `json:"energy_kj"`
	AvgPowerW float64 `json:"avg_power_w"` // node-hour-weighted
}

// ByApp aggregates the database per application, sorted by descending
// energy (the consumers a site operator looks at first).
func (db *DB) ByApp() []AppAggregate {
	db.mu.RLock()
	defer db.mu.RUnlock()
	acc := map[string]*AppAggregate{}
	jobsSeen := map[string]map[[2]string]bool{}
	for k, r := range db.recs {
		a := acc[r.App]
		if a == nil {
			a = &AppAggregate{App: r.App}
			acc[r.App] = a
			jobsSeen[r.App] = map[[2]string]bool{}
		}
		js := [2]string{k.job, k.step}
		if !jobsSeen[r.App][js] {
			jobsSeen[r.App][js] = true
			a.Jobs++
		}
		a.NodeHours += r.TimeSec / 3600
		a.EnergyKJ += r.EnergyJ / 1e3
	}
	out := make([]AppAggregate, 0, len(acc))
	for _, a := range acc {
		if a.NodeHours > 0 {
			a.AvgPowerW = a.EnergyKJ * 1e3 / (a.NodeHours * 3600)
		}
		out = append(out, *a)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].EnergyKJ != out[j].EnergyKJ {
			return out[i].EnergyKJ > out[j].EnergyKJ
		}
		return out[i].App < out[j].App
	})
	return out
}

// PolicyAggregate summarises recorded runs per policy.
type PolicyAggregate struct {
	Policy    string  `json:"policy"`
	Jobs      int     `json:"jobs"`
	NodeHours float64 `json:"node_hours"`
	EnergyKJ  float64 `json:"energy_kj"`
	AvgPowerW float64 `json:"avg_power_w"`
}

// ByPolicy aggregates the database per energy policy, sorted by name.
func (db *DB) ByPolicy() []PolicyAggregate {
	db.mu.RLock()
	defer db.mu.RUnlock()
	acc := map[string]*PolicyAggregate{}
	jobsSeen := map[string]map[[2]string]bool{}
	for k, r := range db.recs {
		a := acc[r.Policy]
		if a == nil {
			a = &PolicyAggregate{Policy: r.Policy}
			acc[r.Policy] = a
			jobsSeen[r.Policy] = map[[2]string]bool{}
		}
		js := [2]string{k.job, k.step}
		if !jobsSeen[r.Policy][js] {
			jobsSeen[r.Policy][js] = true
			a.Jobs++
		}
		a.NodeHours += r.TimeSec / 3600
		a.EnergyKJ += r.EnergyJ / 1e3
	}
	out := make([]PolicyAggregate, 0, len(acc))
	for _, a := range acc {
		if a.NodeHours > 0 {
			a.AvgPowerW = a.EnergyKJ * 1e3 / (a.NodeHours * 3600)
		}
		out = append(out, *a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Policy < out[j].Policy })
	return out
}
