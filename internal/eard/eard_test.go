package eard

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
)

func rec(job, step, node string, energy float64) JobRecord {
	return JobRecord{
		JobID: job, StepID: step, Node: node, App: "HPCG", Policy: "min_energy_eufs",
		TimeSec: 100, EnergyJ: energy, AvgPower: energy / 100,
	}
}

func TestInsertAndQuery(t *testing.T) {
	db := NewDB()
	for i := 0; i < 4; i++ {
		if err := db.Insert(rec("j1", "s0", fmt.Sprintf("node%d", i), 1000+float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Insert(rec("j2", "s0", "node0", 500)); err != nil {
		t.Fatal(err)
	}
	if db.Len() != 5 {
		t.Errorf("Len = %d, want 5", db.Len())
	}
	recs := db.Job("j1", "s0")
	if len(recs) != 4 {
		t.Fatalf("job records = %d, want 4", len(recs))
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Node < recs[i-1].Node {
			t.Error("records not sorted by node")
		}
	}
}

func TestInsertReplacesDuplicate(t *testing.T) {
	db := NewDB()
	if err := db.Insert(rec("j", "s", "n", 100)); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert(rec("j", "s", "n", 200)); err != nil {
		t.Fatal(err)
	}
	if db.Len() != 1 {
		t.Errorf("Len = %d, want 1 (replacement)", db.Len())
	}
	if got := db.Job("j", "s")[0].EnergyJ; got != 200 {
		t.Errorf("energy = %v, want replacement 200", got)
	}
}

func TestInsertValidates(t *testing.T) {
	db := NewDB()
	bads := []JobRecord{
		{},
		{JobID: "j", Node: "n", TimeSec: 0},
		{JobID: "j", Node: "n", TimeSec: 1, EnergyJ: -5},
		{JobID: "j", TimeSec: 1},
	}
	for i, b := range bads {
		if err := db.Insert(b); err == nil {
			t.Errorf("bad record %d accepted", i)
		}
	}
}

func TestSummarize(t *testing.T) {
	db := NewDB()
	if err := db.Insert(JobRecord{JobID: "j", StepID: "s", Node: "a", TimeSec: 100, EnergyJ: 30000, AvgPower: 300}); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert(JobRecord{JobID: "j", StepID: "s", Node: "b", TimeSec: 102, EnergyJ: 31000, AvgPower: 304}); err != nil {
		t.Fatal(err)
	}
	s, err := db.Summarize("j", "s")
	if err != nil {
		t.Fatal(err)
	}
	if s.Nodes != 2 {
		t.Errorf("nodes = %d", s.Nodes)
	}
	if s.TimeSec != 102 {
		t.Errorf("time = %v, want slowest 102", s.TimeSec)
	}
	if s.EnergyJ != 61000 {
		t.Errorf("energy = %v, want 61000", s.EnergyJ)
	}
	if s.AvgPower != 302 {
		t.Errorf("avg power = %v, want 302", s.AvgPower)
	}
	if _, err := db.Summarize("missing", ""); err == nil {
		t.Error("expected error for missing job")
	}
}

func TestJobsSorted(t *testing.T) {
	db := NewDB()
	for _, js := range [][2]string{{"j2", "s0"}, {"j1", "s1"}, {"j1", "s0"}} {
		if err := db.Insert(rec(js[0], js[1], "n", 1)); err != nil {
			t.Fatal(err)
		}
	}
	jobs := db.Jobs()
	want := [][2]string{{"j1", "s0"}, {"j1", "s1"}, {"j2", "s0"}}
	if len(jobs) != len(want) {
		t.Fatalf("jobs = %v", jobs)
	}
	for i := range want {
		if jobs[i] != want[i] {
			t.Errorf("jobs[%d] = %v, want %v", i, jobs[i], want[i])
		}
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	db := NewDB()
	for i := 0; i < 3; i++ {
		if err := db.Insert(rec("j1", "s0", fmt.Sprintf("n%d", i), float64(1000+i))); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back := NewDB()
	if err := back.Load(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if back.Len() != 3 {
		t.Errorf("loaded %d records, want 3", back.Len())
	}
	if got := back.Job("j1", "s0")[1].EnergyJ; got != 1001 {
		t.Errorf("loaded energy = %v", got)
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	db := NewDB()
	if err := db.Load(strings.NewReader("not json")); err == nil {
		t.Error("expected decode error")
	}
	if err := db.Load(strings.NewReader(`[{"job_id":"","node":"","time_sec":0}]`)); err == nil {
		t.Error("expected validation error")
	}
}

func TestConcurrentInsertAndRead(t *testing.T) {
	db := NewDB()
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				_ = db.Insert(rec("j", "s", fmt.Sprintf("w%d-n%d", w, i), 1))
			}
		}(w)
	}
	for i := 0; i < 100; i++ {
		db.Len()
		db.Jobs()
	}
	wg.Wait()
	if db.Len() != 200 {
		t.Errorf("Len = %d, want 200", db.Len())
	}
}

func TestByAppAggregation(t *testing.T) {
	db := NewDB()
	// HPCG job on two nodes; BT job on one node, twice the energy.
	for i, e := range []float64{30000, 31000} {
		if err := db.Insert(JobRecord{
			JobID: "j1", StepID: "0", Node: fmt.Sprintf("n%d", i),
			App: "HPCG", Policy: "min_energy", TimeSec: 100, EnergyJ: e, AvgPower: e / 100,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Insert(JobRecord{
		JobID: "j2", StepID: "0", Node: "n0",
		App: "BT-MZ", Policy: "min_energy_eufs", TimeSec: 200, EnergyJ: 120000, AvgPower: 600,
	}); err != nil {
		t.Fatal(err)
	}
	apps := db.ByApp()
	if len(apps) != 2 {
		t.Fatalf("apps = %v", apps)
	}
	// Sorted by energy descending: BT-MZ (120 kJ) first.
	if apps[0].App != "BT-MZ" || apps[1].App != "HPCG" {
		t.Errorf("order = %s, %s", apps[0].App, apps[1].App)
	}
	hpcg := apps[1]
	if hpcg.Jobs != 1 {
		t.Errorf("HPCG jobs = %d, want 1 (two nodes, one job)", hpcg.Jobs)
	}
	if math.Abs(hpcg.EnergyKJ-61) > 1e-9 {
		t.Errorf("HPCG energy = %v kJ", hpcg.EnergyKJ)
	}
	if math.Abs(hpcg.NodeHours-200.0/3600) > 1e-12 {
		t.Errorf("HPCG node hours = %v", hpcg.NodeHours)
	}
	if math.Abs(hpcg.AvgPowerW-305) > 1e-9 {
		t.Errorf("HPCG avg power = %v, want 305", hpcg.AvgPowerW)
	}
}

func TestByPolicyAggregation(t *testing.T) {
	db := NewDB()
	for i := 0; i < 3; i++ {
		if err := db.Insert(JobRecord{
			JobID: fmt.Sprintf("j%d", i), StepID: "0", Node: "n0",
			App: "X", Policy: "min_energy_eufs", TimeSec: 100, EnergyJ: 10000,
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Insert(JobRecord{
		JobID: "j9", StepID: "0", Node: "n0",
		App: "X", Policy: "monitoring", TimeSec: 100, EnergyJ: 11000,
	}); err != nil {
		t.Fatal(err)
	}
	pols := db.ByPolicy()
	if len(pols) != 2 {
		t.Fatalf("policies = %v", pols)
	}
	if pols[0].Policy != "min_energy_eufs" || pols[0].Jobs != 3 {
		t.Errorf("first = %+v", pols[0])
	}
	if pols[1].Policy != "monitoring" || math.Abs(pols[1].EnergyKJ-11) > 1e-9 {
		t.Errorf("second = %+v", pols[1])
	}
}

func TestGet(t *testing.T) {
	db := NewDB()
	r := JobRecord{JobID: "j1", StepID: "0", Node: "n3", App: "X", TimeSec: 10, EnergyJ: 1000}
	if _, ok := db.Get("j1", "0", "n3"); ok {
		t.Error("Get on empty DB reported a record")
	}
	if err := db.Insert(r); err != nil {
		t.Fatal(err)
	}
	got, ok := db.Get("j1", "0", "n3")
	if !ok || got != r {
		t.Errorf("Get = %+v, %v; want %+v, true", got, ok, r)
	}
	if _, ok := db.Get("j1", "0", "n4"); ok {
		t.Error("Get matched a different node")
	}
}
