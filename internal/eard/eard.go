// Package eard implements the node-daemon side of EAR: the energy
// accounting service. EAR's architecture splits responsibilities between
// the per-application runtime library (EARL, package earl) and a
// privileged node daemon that records per-job energy accounting and
// serves it to the cluster database. This package provides that
// accounting: job records keyed by (job, step, node), aggregation across
// nodes, and JSON persistence.
package eard

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

// JobRecord is one node's accounting entry for one job step, the unit
// EAR's eacct tool reports.
type JobRecord struct {
	JobID    string  `json:"job_id"`
	StepID   string  `json:"step_id"`
	Node     string  `json:"node"`
	App      string  `json:"app"`
	Policy   string  `json:"policy"`
	TimeSec  float64 `json:"time_sec"`
	EnergyJ  float64 `json:"energy_j"`
	AvgPower float64 `json:"avg_power_w"`
	AvgCPU   float64 `json:"avg_cpu_ghz"`
	AvgIMC   float64 `json:"avg_imc_ghz"`
	AvgCPI   float64 `json:"avg_cpi"`
	AvgGBs   float64 `json:"avg_gbs"`
}

// Validate reports whether the record is storable.
func (r JobRecord) Validate() error {
	switch {
	case r.JobID == "" || r.Node == "":
		return fmt.Errorf("eard: record needs job id and node")
	case r.TimeSec <= 0:
		return fmt.Errorf("eard: record time must be positive")
	case r.EnergyJ < 0:
		return fmt.Errorf("eard: record energy must be non-negative")
	}
	return nil
}

// key identifies a record uniquely.
type key struct{ job, step, node string }

// DB is an in-memory accounting database with JSON persistence.
type DB struct {
	mu   sync.RWMutex
	recs map[key]JobRecord
}

// NewDB returns an empty accounting database.
func NewDB() *DB { return &DB{recs: map[key]JobRecord{}} }

// Insert stores (or replaces) a record.
func (db *DB) Insert(r JobRecord) error {
	if err := r.Validate(); err != nil {
		return err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	db.recs[key{r.JobID, r.StepID, r.Node}] = r
	return nil
}

// Get returns the stored record for one (job, step, node) key, if any.
// The database daemon uses it to classify incoming records as fresh,
// identical re-deliveries, or genuine updates.
func (db *DB) Get(jobID, stepID, node string) (JobRecord, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	r, ok := db.recs[key{jobID, stepID, node}]
	return r, ok
}

// Len returns the number of records.
func (db *DB) Len() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.recs)
}

// Job returns all node records of one job step, sorted by node.
func (db *DB) Job(jobID, stepID string) []JobRecord {
	db.mu.RLock()
	defer db.mu.RUnlock()
	var out []JobRecord
	for k, r := range db.recs {
		if k.job == jobID && k.step == stepID {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// JobSummary aggregates a job step across nodes: total energy, the
// longest node time, and power-weighted averages.
type JobSummary struct {
	JobID    string  `json:"job_id"`
	StepID   string  `json:"step_id"`
	Nodes    int     `json:"nodes"`
	TimeSec  float64 `json:"time_sec"`    // slowest node
	EnergyJ  float64 `json:"energy_j"`    // sum across nodes
	AvgPower float64 `json:"avg_power_w"` // mean node power
}

// Summarize aggregates one job step. It returns an error when the job
// has no records.
func (db *DB) Summarize(jobID, stepID string) (JobSummary, error) {
	recs := db.Job(jobID, stepID)
	if len(recs) == 0 {
		return JobSummary{}, fmt.Errorf("eard: no records for job %s step %s", jobID, stepID)
	}
	s := JobSummary{JobID: jobID, StepID: stepID, Nodes: len(recs)}
	for _, r := range recs {
		if r.TimeSec > s.TimeSec {
			s.TimeSec = r.TimeSec
		}
		s.EnergyJ += r.EnergyJ
		s.AvgPower += r.AvgPower
	}
	s.AvgPower /= float64(len(recs))
	return s, nil
}

// Jobs lists distinct (job, step) pairs, sorted.
func (db *DB) Jobs() [][2]string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	seen := map[[2]string]bool{}
	for k := range db.recs {
		seen[[2]string{k.job, k.step}] = true
	}
	out := make([][2]string, 0, len(seen))
	for js := range seen {
		out = append(out, js)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// Records returns every stored record sorted by (job, step, node):
// the canonical dump order shared by Save and the federation tier's
// shard merges.
func (db *DB) Records() []JobRecord {
	db.mu.RLock()
	recs := make([]JobRecord, 0, len(db.recs))
	for _, r := range db.recs {
		recs = append(recs, r)
	}
	db.mu.RUnlock()
	sort.Slice(recs, func(i, j int) bool {
		a, b := recs[i], recs[j]
		if a.JobID != b.JobID {
			return a.JobID < b.JobID
		}
		if a.StepID != b.StepID {
			return a.StepID < b.StepID
		}
		return a.Node < b.Node
	})
	return recs
}

// Save writes the database as JSON.
func (db *DB) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(db.Records())
}

// Load replaces the database contents from JSON produced by Save.
func (db *DB) Load(r io.Reader) error {
	var recs []JobRecord
	if err := json.NewDecoder(r).Decode(&recs); err != nil {
		return fmt.Errorf("eard: decode: %w", err)
	}
	fresh := map[key]JobRecord{}
	for _, rec := range recs {
		if err := rec.Validate(); err != nil {
			return err
		}
		fresh[key{rec.JobID, rec.StepID, rec.Node}] = rec
	}
	db.mu.Lock()
	db.recs = fresh
	db.mu.Unlock()
	return nil
}
