package eard

import (
	"testing"

	"goear/internal/metrics"
)

// recorderCtl records the actuation that reached the "hardware".
type recorderCtl struct {
	pstate int
	uncMin uint64
	uncMax uint64
}

func (r *recorderCtl) SetCPUPstate(p int) error { r.pstate = p; return nil }
func (r *recorderCtl) SetUncoreLimits(minR, maxR uint64) error {
	r.uncMin, r.uncMax = minR, maxR
	return nil
}
func (r *recorderCtl) CurrentPstate() (int, error)         { return r.pstate, nil }
func (r *recorderCtl) CurrentUncoreRatio() (uint64, error) { return r.uncMax, nil }
func (r *recorderCtl) Counters() (metrics.Sample, error) {
	return metrics.Sample{TimeSec: 1, Instructions: 1}, nil
}

func TestNewDaemonValidation(t *testing.T) {
	if _, err := NewDaemon(nil, Limits{}); err == nil {
		t.Error("expected error for nil control path")
	}
	if _, err := NewDaemon(&recorderCtl{}, Limits{MinPstate: 5, MaxPstate: 2}); err == nil {
		t.Error("expected error for inverted pstate limits")
	}
	if _, err := NewDaemon(&recorderCtl{}, Limits{MaxPstate: -1}); err == nil {
		t.Error("expected error for negative limit")
	}
}

func TestPstateClamping(t *testing.T) {
	raw := &recorderCtl{}
	d, err := NewDaemon(raw, Limits{MinPstate: 1, MaxPstate: 6})
	if err != nil {
		t.Fatal(err)
	}
	// In range: forwarded untouched.
	if err := d.SetCPUPstate(4); err != nil {
		t.Fatal(err)
	}
	if raw.pstate != 4 {
		t.Errorf("pstate = %d, want 4", raw.pstate)
	}
	// Too deep: clamped to the max.
	if err := d.SetCPUPstate(12); err != nil {
		t.Fatal(err)
	}
	if raw.pstate != 6 {
		t.Errorf("pstate = %d, want clamp 6", raw.pstate)
	}
	// Turbo request: clamped up to min pstate 1.
	if err := d.SetCPUPstate(0); err != nil {
		t.Fatal(err)
	}
	if raw.pstate != 1 {
		t.Errorf("pstate = %d, want clamp 1", raw.pstate)
	}
	ps, unc := d.Clamped()
	if ps != 2 || unc != 0 {
		t.Errorf("clamped = (%d,%d), want (2,0)", ps, unc)
	}
}

func TestUncoreFloor(t *testing.T) {
	raw := &recorderCtl{}
	d, err := NewDaemon(raw, Limits{UncoreFloorRatio: 16})
	if err != nil {
		t.Fatal(err)
	}
	// Above the floor: untouched.
	if err := d.SetUncoreLimits(12, 20); err != nil {
		t.Fatal(err)
	}
	if raw.uncMax != 20 || raw.uncMin != 16 {
		t.Errorf("window = %d..%d, want 16..20 (min raised to floor)", raw.uncMin, raw.uncMax)
	}
	// Ceiling below the floor: raised.
	if err := d.SetUncoreLimits(12, 13); err != nil {
		t.Fatal(err)
	}
	if raw.uncMax != 16 {
		t.Errorf("max = %d, want floor 16", raw.uncMax)
	}
	_, unc := d.Clamped()
	if unc != 1 {
		t.Errorf("uncore clamps = %d, want 1", unc)
	}
}

func TestNoLimitsForwardsEverything(t *testing.T) {
	raw := &recorderCtl{}
	d, err := NewDaemon(raw, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.SetCPUPstate(15); err != nil {
		t.Fatal(err)
	}
	if raw.pstate != 15 {
		t.Errorf("pstate = %d, want 15", raw.pstate)
	}
	if err := d.SetUncoreLimits(12, 12); err != nil {
		t.Fatal(err)
	}
	if raw.uncMax != 12 {
		t.Errorf("max = %d, want 12", raw.uncMax)
	}
	if ps, unc := d.Clamped(); ps != 0 || unc != 0 {
		t.Errorf("clamped = (%d,%d), want none", ps, unc)
	}
}

func TestForwardReads(t *testing.T) {
	raw := &recorderCtl{pstate: 3, uncMax: 20}
	d, err := NewDaemon(raw, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if p, _ := d.CurrentPstate(); p != 3 {
		t.Errorf("pstate = %d", p)
	}
	if u, _ := d.CurrentUncoreRatio(); u != 20 {
		t.Errorf("uncore = %d", u)
	}
	if s, _ := d.Counters(); s.Instructions != 1 {
		t.Errorf("counters = %+v", s)
	}
}
