package eard

import (
	"fmt"
	"sync"

	"goear/internal/earl"
	"goear/internal/metrics"
)

// Limits is the site policy the daemon enforces on actuation requests:
// EARL runs unprivileged inside the job, so every frequency change goes
// through the node daemon, which clamps it to what the sysadmin allows.
type Limits struct {
	// MaxPstate is the deepest CPU pstate a job may request (the
	// lowest frequency); 0 disables the bound.
	MaxPstate int
	// MinPstate is the shallowest pstate a job may request (e.g. 1
	// forbids turbo); 0 disables the bound.
	MinPstate int
	// UncoreFloorRatio is the lowest uncore ceiling a job may program;
	// 0 disables the bound. It protects co-located services from a job
	// starving the mesh.
	UncoreFloorRatio uint64
}

// Validate reports whether the limits are coherent.
func (l Limits) Validate() error {
	if l.MaxPstate < 0 || l.MinPstate < 0 {
		return fmt.Errorf("eard: pstate limits must be non-negative")
	}
	if l.MaxPstate != 0 && l.MinPstate != 0 && l.MinPstate > l.MaxPstate {
		return fmt.Errorf("eard: min pstate %d above max %d", l.MinPstate, l.MaxPstate)
	}
	return nil
}

// Daemon mediates privileged node actuation. It implements earl.Ctl by
// wrapping the real control path and clamping requests to the limits,
// while counting what it had to clamp (surfaced to accounting and
// diagnostics).
type Daemon struct {
	raw    earl.Ctl
	limits Limits

	mu             sync.Mutex
	clampedPstates int
	clampedUncore  int
}

// NewDaemon wraps a raw control path with enforcement.
func NewDaemon(raw earl.Ctl, limits Limits) (*Daemon, error) {
	if raw == nil {
		return nil, fmt.Errorf("eard: nil control path")
	}
	if err := limits.Validate(); err != nil {
		return nil, err
	}
	return &Daemon{raw: raw, limits: limits}, nil
}

// SetCPUPstate clamps the request into the allowed pstate range.
func (d *Daemon) SetCPUPstate(p int) error {
	orig := p
	if d.limits.MaxPstate != 0 && p > d.limits.MaxPstate {
		p = d.limits.MaxPstate
	}
	if d.limits.MinPstate != 0 && p < d.limits.MinPstate {
		p = d.limits.MinPstate
	}
	if p != orig {
		d.mu.Lock()
		d.clampedPstates++
		d.mu.Unlock()
	}
	return d.raw.SetCPUPstate(p)
}

// SetUncoreLimits clamps the requested window above the site floor.
func (d *Daemon) SetUncoreLimits(minRatio, maxRatio uint64) error {
	clamped := false
	if f := d.limits.UncoreFloorRatio; f != 0 {
		if maxRatio < f {
			maxRatio = f
			clamped = true
		}
		if minRatio < f {
			minRatio = f
		}
	}
	if clamped {
		d.mu.Lock()
		d.clampedUncore++
		d.mu.Unlock()
	}
	return d.raw.SetUncoreLimits(minRatio, maxRatio)
}

// CurrentPstate forwards to the raw path.
func (d *Daemon) CurrentPstate() (int, error) { return d.raw.CurrentPstate() }

// CurrentUncoreRatio forwards to the raw path.
func (d *Daemon) CurrentUncoreRatio() (uint64, error) { return d.raw.CurrentUncoreRatio() }

// Counters forwards to the raw path.
func (d *Daemon) Counters() (metrics.Sample, error) { return d.raw.Counters() }

// Clamped reports how many pstate and uncore requests were reduced to
// the site limits.
func (d *Daemon) Clamped() (pstates, uncore int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.clampedPstates, d.clampedUncore
}

var _ earl.Ctl = (*Daemon)(nil)
