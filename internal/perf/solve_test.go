package perf

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"goear/internal/cpu"
	"goear/internal/mem"
)

// TestSolveWithCoreFracRoundTripProperty: for random plausible targets,
// the core-fraction solver must reproduce CPI and GB/s through Evaluate
// and respect the requested core share (unless the traffic cannot carry
// the stall, in which case BaseCPI absorbs the remainder).
func TestSolveWithCoreFracRoundTripProperty(t *testing.T) {
	m := Machine{CPU: cpu.XeonGold6148(), Mem: mem.DDR4SD530()}
	op := Operating{CoreRatio: 24, UncoreRatio: 24}
	fn := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		targetCPI := 0.3 + rng.Float64()*2.5
		targetGBs := 5 + rng.Float64()*150
		frac := 0.1 + rng.Float64()*0.85
		proto := Phase{VPI: 0, Overlap: 0.8, ActiveCores: 40}
		ph, err := SolveWithCoreFrac(m, proto, op, targetCPI, targetGBs, frac)
		if err != nil {
			return false
		}
		got, err := Evaluate(m, ph, op)
		if err != nil {
			return false
		}
		if math.Abs(got.CPI-targetCPI) > 0.02*targetCPI {
			return false
		}
		if math.Abs(got.NodeGBs-targetGBs) > 0.03*targetGBs {
			return false
		}
		// The core share holds when the traffic could carry the stall
		// (overlap did not floor at zero).
		if ph.Overlap > 1e-9 {
			wantBase := frac * targetCPI
			if wantBase >= 0.05 && math.Abs(ph.BaseCPI-wantBase) > 0.05*targetCPI {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestSolveWithCoreFracErrors(t *testing.T) {
	m := Machine{CPU: cpu.XeonGold6148(), Mem: mem.DDR4SD530()}
	op := Operating{CoreRatio: 24, UncoreRatio: 24}
	proto := Phase{Overlap: 0.8, ActiveCores: 40}
	if _, err := SolveWithCoreFrac(m, proto, op, 1, 10, 0); err == nil {
		t.Error("expected error for zero core fraction")
	}
	if _, err := SolveWithCoreFrac(m, proto, op, 1, 10, 1.5); err == nil {
		t.Error("expected error for fraction > 1")
	}
	if _, err := SolveWithCoreFrac(m, proto, op, 0, 10, 0.5); err == nil {
		t.Error("expected error for zero target CPI")
	}
	if _, err := SolveWithCoreFrac(m, proto, op, 1, -1, 0.5); err == nil {
		t.Error("expected error for negative GB/s")
	}
}

func TestSolveWithCoreFracNoTraffic(t *testing.T) {
	// With zero memory traffic the whole CPI goes to the core,
	// whatever fraction was requested.
	m := Machine{CPU: cpu.XeonGold6148(), Mem: mem.DDR4SD530()}
	op := Operating{CoreRatio: 24, UncoreRatio: 24}
	proto := Phase{Overlap: 0.8, ActiveCores: 40}
	ph, err := SolveWithCoreFrac(m, proto, op, 0.8, 0, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ph.BaseCPI-0.8) > 1e-6 {
		t.Errorf("BaseCPI = %v, want full 0.8", ph.BaseCPI)
	}
	got, err := Evaluate(m, ph, op)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.CPI-0.8) > 1e-9 {
		t.Errorf("CPI = %v", got.CPI)
	}
}

// TestCoreFracControlsFrequencyResponse: the whole point of the knob —
// a lower core fraction makes execution time flatter in core frequency.
func TestCoreFracControlsFrequencyResponse(t *testing.T) {
	m := Machine{CPU: cpu.XeonGold6148(), Mem: mem.DDR4SD530()}
	op := Operating{CoreRatio: 24, UncoreRatio: 24}
	low := Operating{CoreRatio: 18, UncoreRatio: 24}
	proto := Phase{Overlap: 0.8, ActiveCores: 40}

	penalty := func(frac float64) float64 {
		ph, err := SolveWithCoreFrac(m, proto, op, 1.0, 100, frac)
		if err != nil {
			t.Fatal(err)
		}
		hi, err := Evaluate(m, ph, op)
		if err != nil {
			t.Fatal(err)
		}
		lo, err := Evaluate(m, ph, low)
		if err != nil {
			t.Fatal(err)
		}
		return (lo.SecPerInstr - hi.SecPerInstr) / hi.SecPerInstr
	}
	flat := penalty(0.2)
	steep := penalty(0.8)
	if flat >= steep {
		t.Errorf("core fraction 0.2 penalty (%.3f) not below 0.8 penalty (%.3f)", flat, steep)
	}
	// The steep case approaches proportional slowdown (24/18 = 1.33).
	if steep < 0.15 {
		t.Errorf("high core fraction penalty = %.3f, want substantial", steep)
	}
}
