package perf

import (
	"math"
	"testing"
	"testing/quick"

	"goear/internal/cpu"
	"goear/internal/mem"
	"goear/internal/units"
)

func machine6148() Machine {
	return Machine{CPU: cpu.XeonGold6148(), Mem: mem.DDR4SD530()}
}

func cpuBoundPhase() Phase {
	return Phase{BaseCPI: 0.38, BytesPerInstr: 0.15, VPI: 0, Overlap: 0.7, ActiveCores: 40}
}

func memBoundPhase() Phase {
	return Phase{BaseCPI: 0.8, BytesPerInstr: 6, VPI: 0, Overlap: 0.95, ActiveCores: 40}
}

func TestMachineValidate(t *testing.T) {
	if err := machine6148().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := machine6148()
	bad.CPU.Sockets = 0
	if err := bad.Validate(); err == nil {
		t.Error("expected CPU validation error")
	}
	bad = machine6148()
	bad.Mem.Channels = 0
	if err := bad.Validate(); err == nil {
		t.Error("expected memory validation error")
	}
}

func TestPhaseValidate(t *testing.T) {
	good := cpuBoundPhase()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	muts := []func(*Phase){
		func(p *Phase) { p.BaseCPI = 0 },
		func(p *Phase) { p.BytesPerInstr = -1 },
		func(p *Phase) { p.VPI = 1.1 },
		func(p *Phase) { p.VPI = -0.1 },
		func(p *Phase) { p.Overlap = 1 },
		func(p *Phase) { p.Overlap = -0.1 },
		func(p *Phase) { p.ActiveCores = 0 },
	}
	for i, mut := range muts {
		p := good
		mut(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d: expected error", i)
		}
	}
}

func TestEvaluateCPUBoundInsensitiveToUncore(t *testing.T) {
	m := machine6148()
	p := cpuBoundPhase()
	hi, err := Evaluate(m, p, Operating{CoreRatio: 24, UncoreRatio: 24})
	if err != nil {
		t.Fatal(err)
	}
	lo, err := Evaluate(m, p, Operating{CoreRatio: 24, UncoreRatio: 12})
	if err != nil {
		t.Fatal(err)
	}
	penalty := (lo.SecPerInstr - hi.SecPerInstr) / hi.SecPerInstr
	if penalty < 0 {
		t.Errorf("lower uncore cannot speed up execution: %v", penalty)
	}
	if penalty > 0.10 {
		t.Errorf("CPU-bound phase lost %.1f%% from uncore 2.4->1.2, want < 10%%", penalty*100)
	}
}

func TestEvaluateMemBoundSensitiveToUncore(t *testing.T) {
	m := machine6148()
	p := memBoundPhase()
	hi, err := Evaluate(m, p, Operating{CoreRatio: 24, UncoreRatio: 24})
	if err != nil {
		t.Fatal(err)
	}
	lo, err := Evaluate(m, p, Operating{CoreRatio: 24, UncoreRatio: 12})
	if err != nil {
		t.Fatal(err)
	}
	penalty := (lo.SecPerInstr - hi.SecPerInstr) / hi.SecPerInstr
	if penalty < 0.15 {
		t.Errorf("memory-bound phase lost only %.1f%% from uncore 2.4->1.2, want > 15%%", penalty*100)
	}
	// Bandwidth must shrink too.
	if lo.NodeGBs >= hi.NodeGBs {
		t.Errorf("GB/s did not drop: %v -> %v", hi.NodeGBs, lo.NodeGBs)
	}
	// And measured CPI must rise (the paper's LU observation).
	if lo.CPI <= hi.CPI {
		t.Errorf("CPI did not rise: %v -> %v", hi.CPI, lo.CPI)
	}
}

func TestEvaluateTimeScalesWithCoreFreq(t *testing.T) {
	m := machine6148()
	p := cpuBoundPhase()
	f24, err := Evaluate(m, p, Operating{CoreRatio: 24, UncoreRatio: 24})
	if err != nil {
		t.Fatal(err)
	}
	f12, err := Evaluate(m, p, Operating{CoreRatio: 12, UncoreRatio: 24})
	if err != nil {
		t.Fatal(err)
	}
	ratio := f12.SecPerInstr / f24.SecPerInstr
	// A CPU-bound phase at half frequency takes close to 2x (slightly
	// less because the memory component does not scale).
	if ratio < 1.7 || ratio > 2.05 {
		t.Errorf("half-frequency slowdown = %vx, want ~2x", ratio)
	}
}

func TestEvaluateMonotonicInCoreFreqProperty(t *testing.T) {
	m := machine6148()
	for _, p := range []Phase{cpuBoundPhase(), memBoundPhase()} {
		fn := func(a, b uint8) bool {
			ra := uint64(a%15) + 10
			rb := uint64(b%15) + 10
			if ra > rb {
				ra, rb = rb, ra
			}
			lo, err1 := Evaluate(m, p, Operating{CoreRatio: ra, UncoreRatio: 24})
			hi, err2 := Evaluate(m, p, Operating{CoreRatio: rb, UncoreRatio: 24})
			if err1 != nil || err2 != nil {
				return false
			}
			return hi.SecPerInstr <= lo.SecPerInstr*(1+1e-9)
		}
		if err := quick.Check(fn, nil); err != nil {
			t.Error(err)
		}
	}
}

func TestEvaluateMonotonicInUncoreFreqProperty(t *testing.T) {
	m := machine6148()
	for _, p := range []Phase{cpuBoundPhase(), memBoundPhase()} {
		fn := func(a, b uint8) bool {
			ra := uint64(a%13) + 12
			rb := uint64(b%13) + 12
			if ra > rb {
				ra, rb = rb, ra
			}
			lo, err1 := Evaluate(m, p, Operating{CoreRatio: 24, UncoreRatio: ra})
			hi, err2 := Evaluate(m, p, Operating{CoreRatio: 24, UncoreRatio: rb})
			if err1 != nil || err2 != nil {
				return false
			}
			return hi.SecPerInstr <= lo.SecPerInstr*(1+1e-9)
		}
		if err := quick.Check(fn, nil); err != nil {
			t.Error(err)
		}
	}
}

func TestEffectiveCoreFreqAVX512(t *testing.T) {
	m := cpu.XeonGold6148()
	// Pure AVX512 at nominal runs at the 2.2 GHz licence.
	f := EffectiveCoreFreq(m, 1.0, 24)
	if math.Abs(f.GHzF()-2.2) > 1e-9 {
		t.Errorf("VPI=1 freq = %v, want 2.2GHz", f)
	}
	// No AVX512: nominal.
	f = EffectiveCoreFreq(m, 0, 24)
	if math.Abs(f.GHzF()-2.4) > 1e-9 {
		t.Errorf("VPI=0 freq = %v, want 2.4GHz", f)
	}
	// Half: blended.
	f = EffectiveCoreFreq(m, 0.5, 24)
	if math.Abs(f.GHzF()-2.3) > 1e-9 {
		t.Errorf("VPI=0.5 freq = %v, want 2.3GHz", f)
	}
	// Below the licence, VPI does not matter.
	f = EffectiveCoreFreq(m, 1.0, 20)
	if math.Abs(f.GHzF()-2.0) > 1e-9 {
		t.Errorf("VPI=1 at 2.0GHz = %v, want 2.0GHz", f)
	}
}

func TestEvaluateAVX512PhaseUnaffectedByHigherRequest(t *testing.T) {
	// The paper's DGEMM case: with VPI=1, requesting nominal or the
	// licence frequency must give the same execution rate.
	m := machine6148()
	p := Phase{BaseCPI: 0.45, BytesPerInstr: 2.8, VPI: 1, Overlap: 0.9, ActiveCores: 40}
	at24, err := Evaluate(m, p, Operating{CoreRatio: 24, UncoreRatio: 20})
	if err != nil {
		t.Fatal(err)
	}
	at22, err := Evaluate(m, p, Operating{CoreRatio: 22, UncoreRatio: 20})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(at24.SecPerInstr-at22.SecPerInstr) > 1e-15 {
		t.Errorf("AVX512 phase: 2.4GHz request %v != 2.2GHz request %v",
			at24.SecPerInstr, at22.SecPerInstr)
	}
}

func TestEvaluateBandwidthNeverExceedsCapability(t *testing.T) {
	m := machine6148()
	// An absurdly memory-hungry phase must saturate, not exceed, the
	// subsystem.
	p := Phase{BaseCPI: 0.3, BytesPerInstr: 40, VPI: 0, Overlap: 0.98, ActiveCores: 40}
	for ratio := uint64(12); ratio <= 24; ratio += 3 {
		r, err := Evaluate(m, p, Operating{CoreRatio: 24, UncoreRatio: ratio})
		if err != nil {
			t.Fatal(err)
		}
		cap := m.Mem.CapabilityGBs(units.FromRatio(ratio, cpu.BusClock))
		if r.NodeGBs > cap*m.Mem.MaxUtilization*1.01 {
			t.Errorf("uncore ratio %d: achieved %v GB/s exceeds saturated capability %v",
				ratio, r.NodeGBs, cap*m.Mem.MaxUtilization)
		}
	}
}

func TestEvaluateErrors(t *testing.T) {
	m := machine6148()
	bad := cpuBoundPhase()
	bad.BaseCPI = -1
	if _, err := Evaluate(m, bad, Operating{CoreRatio: 24, UncoreRatio: 24}); err == nil {
		t.Error("expected phase validation error")
	}
	if _, err := Evaluate(m, cpuBoundPhase(), Operating{CoreRatio: 24, UncoreRatio: 0}); err == nil {
		t.Error("expected error for zero uncore ratio")
	}
}

func TestSolveBaseCPIRoundTrip(t *testing.T) {
	m := machine6148()
	op := Operating{CoreRatio: 24, UncoreRatio: 24}
	cases := []struct {
		name       string
		cpi, gbs   float64
		vpi, ovl   float64
		activeCore int
	}{
		{"bt-mz-like", 0.39, 28, 0, 0.7, 40},
		{"sp-mz-like", 0.53, 78, 0, 0.85, 40},
		{"hpcg-like", 3.13, 177.45, 0, 0.95, 40},
		{"dgemm-like", 0.45, 98, 1.0, 0.9, 40},
		{"cuda-busywait", 0.49, 0.09, 0, 0.5, 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			proto := Phase{VPI: c.vpi, Overlap: c.ovl, ActiveCores: c.activeCore}
			ph, err := SolveBaseCPI(m, proto, op, c.cpi, c.gbs)
			if err != nil {
				t.Fatal(err)
			}
			got, err := Evaluate(m, ph, op)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(got.CPI-c.cpi) > 0.01*c.cpi {
				t.Errorf("CPI = %v, want %v", got.CPI, c.cpi)
			}
			if c.gbs > 0 && math.Abs(got.NodeGBs-c.gbs) > 0.02*c.gbs {
				t.Errorf("GB/s = %v, want %v", got.NodeGBs, c.gbs)
			}
		})
	}
}

func TestSolveBaseCPIErrors(t *testing.T) {
	m := machine6148()
	proto := Phase{VPI: 0, Overlap: 0.5, ActiveCores: 40}
	op := Operating{CoreRatio: 24, UncoreRatio: 24}
	if _, err := SolveBaseCPI(m, proto, op, 0, 10); err == nil {
		t.Error("expected error for zero target CPI")
	}
	if _, err := SolveBaseCPI(m, proto, op, 1, -1); err == nil {
		t.Error("expected error for negative target GB/s")
	}
}

func TestSolveBaseCPIRaisesOverlapWhenNeeded(t *testing.T) {
	// A very memory-heavy target with low requested overlap would give a
	// negative core CPI; the solver must raise the overlap instead.
	m := machine6148()
	proto := Phase{VPI: 0, Overlap: 0.1, ActiveCores: 40}
	op := Operating{CoreRatio: 24, UncoreRatio: 24}
	ph, err := SolveBaseCPI(m, proto, op, 1.0, 150)
	if err != nil {
		t.Fatal(err)
	}
	if ph.Overlap <= 0.1 {
		t.Errorf("overlap not raised: %v", ph.Overlap)
	}
	got, err := Evaluate(m, ph, op)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got.CPI-1.0) > 0.05 {
		t.Errorf("CPI = %v, want ~1.0", got.CPI)
	}
}
