// Package perf implements the execution model of the simulated node: how
// many instructions per second a workload phase retires, and how much
// DRAM traffic it generates, as a function of the core and uncore
// frequencies.
//
// The model is an analytic latency/bandwidth model with a self-consistent
// fixed point: cycles per instruction is the sum of a core-bound
// component (frequency independent in cycles) and a memory-stall
// component proportional to the exposed DRAM latency, which itself
// depends on memory-subsystem utilisation — and utilisation depends on
// the achieved instruction rate. Evaluate iterates this to convergence.
//
// AVX512 instructions run under the reduced licence frequency; a phase's
// effective core frequency blends the two licence levels weighted by the
// AVX512 instruction fraction (VPI), reproducing the behaviour the
// paper's AVX512-aware energy model was designed to capture.
package perf

import (
	"fmt"
	"math"

	"goear/internal/cpu"
	"goear/internal/mem"
	"goear/internal/units"
)

// CacheLineBytes is the DRAM transfer granularity.
const CacheLineBytes = 64

// Machine couples the processor and memory models of one node.
type Machine struct {
	CPU cpu.Model
	Mem mem.Config
}

// Validate checks both halves.
func (m Machine) Validate() error {
	if err := m.CPU.Validate(); err != nil {
		return err
	}
	return m.Mem.Validate()
}

// Phase describes the computational behaviour of one application phase
// on one node. All rates are per retired instruction.
type Phase struct {
	// BaseCPI is the core-bound cycles per instruction: the CPI the
	// phase would exhibit with a perfect memory subsystem.
	BaseCPI float64
	// BytesPerInstr is the DRAM traffic (read+write) per instruction.
	BytesPerInstr float64
	// VPI is the fraction of instructions that are AVX512.
	VPI float64
	// Overlap in [0,1) is the fraction of DRAM latency hidden by
	// memory-level parallelism and out-of-order execution.
	Overlap float64
	// ActiveCores is the number of cores executing this phase on the
	// node (the rest are idle/halted).
	ActiveCores int
}

// Validate reports whether the phase parameters are physical.
func (p Phase) Validate() error {
	switch {
	case p.BaseCPI <= 0:
		return fmt.Errorf("perf: base CPI must be positive, got %g", p.BaseCPI)
	case p.BytesPerInstr < 0:
		return fmt.Errorf("perf: bytes/instr must be non-negative, got %g", p.BytesPerInstr)
	case p.VPI < 0 || p.VPI > 1:
		return fmt.Errorf("perf: VPI %g outside [0,1]", p.VPI)
	case p.Overlap < 0 || p.Overlap >= 1:
		return fmt.Errorf("perf: overlap %g outside [0,1)", p.Overlap)
	case p.ActiveCores <= 0:
		return fmt.Errorf("perf: active cores must be positive, got %d", p.ActiveCores)
	}
	return nil
}

// Operating is the frequency state the node runs at while evaluating a
// phase: the requested core ratio and the current uncore ratio.
type Operating struct {
	CoreRatio   uint64
	UncoreRatio uint64
}

// Result is the steady-state behaviour of a phase at an operating point.
type Result struct {
	// CPI is total cycles per instruction at the effective core clock.
	CPI float64
	// EffCoreFreq is the licence-resolved core frequency.
	EffCoreFreq units.Freq
	// UncoreFreq is the uncore frequency used.
	UncoreFreq units.Freq
	// IPSCore is retired instructions per second on one active core.
	IPSCore float64
	// NodeGBs is the achieved DRAM bandwidth of the node in GB/s.
	NodeGBs float64
	// MemUtilization is achieved bandwidth over capability, in
	// [0, MaxUtilization].
	MemUtilization float64
	// SecPerInstr is seconds per instruction on one active core
	// (1/IPSCore), the quantity the simulator integrates.
	SecPerInstr float64
}

// bisectIters bounds the utilisation bisection: 60 halvings reduce the
// bracket below 1e-18, far under measurement noise.
const bisectIters = 60

// Evaluate computes the steady-state Result of running phase p on
// machine m at operating point op.
//
// The self-consistency problem is: utilisation rho determines latency,
// latency determines CPI, CPI determines demanded bandwidth, and demand
// determines rho again. The implied-utilisation map is continuous and
// strictly decreasing in rho, so it has a unique fixed point which is
// found by bisection. If even at maximum utilisation the demand exceeds
// the saturated capability, the phase is bandwidth-bound and cycles
// stretch until achieved bandwidth equals that capability.
func Evaluate(m Machine, p Phase, op Operating) (Result, error) {
	if err := p.Validate(); err != nil {
		return Result{}, err
	}
	fEff := EffectiveCoreFreq(m.CPU, p.VPI, op.CoreRatio)
	fu := units.FromRatio(op.UncoreRatio, cpu.BusClock)
	if fu <= 0 {
		return Result{}, fmt.Errorf("perf: uncore ratio %d yields non-positive frequency", op.UncoreRatio)
	}
	fg := fEff.GHzF()

	linesPerInstr := p.BytesPerInstr / CacheLineBytes
	exposed := (1 - p.Overlap) * linesPerInstr
	cap := m.Mem.CapabilityGBs(fu)
	sat := cap * m.Mem.MaxUtilization

	// cpiAt computes latency-limited CPI at a trial utilisation.
	cpiAt := func(rho float64) float64 {
		return p.BaseCPI + exposed*m.Mem.LatencyNs(fu, rho)*fg
	}
	// demandAt computes the node bandwidth demanded at that CPI.
	demandAt := func(cpi float64) float64 {
		return float64(p.ActiveCores) * (fg * 1e9 / cpi) * p.BytesPerInstr / 1e9
	}
	// implied maps trial rho to the utilisation its demand would cause.
	implied := func(rho float64) float64 {
		if cap <= 0 {
			return m.Mem.MaxUtilization
		}
		u := demandAt(cpiAt(rho)) / cap
		if u > m.Mem.MaxUtilization {
			u = m.Mem.MaxUtilization
		}
		return u
	}

	var rho, cpi float64
	switch {
	case p.BytesPerInstr == 0:
		rho, cpi = 0, p.BaseCPI
	case implied(m.Mem.MaxUtilization) >= m.Mem.MaxUtilization:
		// Saturated even under maximum queueing delay: bandwidth-bound.
		rho = m.Mem.MaxUtilization
		cpi = cpiAt(rho)
		if d := demandAt(cpi); d > sat && sat > 0 {
			cpi *= d / sat
		}
	default:
		lo, hi := 0.0, m.Mem.MaxUtilization
		for i := 0; i < bisectIters; i++ {
			mid := (lo + hi) / 2
			if implied(mid) > mid {
				lo = mid
			} else {
				hi = mid
			}
		}
		rho = (lo + hi) / 2
		cpi = cpiAt(rho)
	}

	ipsCore := fg * 1e9 / cpi
	gbs := float64(p.ActiveCores) * ipsCore * p.BytesPerInstr / 1e9
	res := Result{
		CPI:            cpi,
		EffCoreFreq:    fEff,
		UncoreFreq:     fu,
		IPSCore:        ipsCore,
		NodeGBs:        gbs,
		MemUtilization: rho,
		SecPerInstr:    1 / ipsCore,
	}
	if math.IsNaN(res.CPI) || math.IsInf(res.CPI, 0) {
		return Result{}, fmt.Errorf("perf: model diverged (CPI=%v)", res.CPI)
	}
	return res, nil
}

// EffectiveCoreFreq resolves the licence-blended core frequency for a
// phase with the given AVX512 fraction at the requested ratio: the
// non-AVX licence frequency and the AVX512 licence frequency are blended
// by instruction fraction.
func EffectiveCoreFreq(m cpu.Model, vpi float64, coreRatio uint64) units.Freq {
	rNon := m.EffectiveRatio(coreRatio, false)
	rAvx := m.EffectiveRatio(coreRatio, true)
	fNon := units.FromRatio(rNon, cpu.BusClock).GHzF()
	fAvx := units.FromRatio(rAvx, cpu.BusClock).GHzF()
	return units.Freq(((1-vpi)*fNon + vpi*fAvx) * 1e9)
}

// SolveWithCoreFrac inverts the model with an explicit core-bound CPI
// share: coreFrac of the target CPI goes to BaseCPI and the rest to the
// exposed-memory-stall term, with the overlap solved to fit. The split
// determines how the workload responds to core frequency (the core part
// scales, the stall part does not) and to uncore frequency (through the
// stall part), so it is the calibration's handle on each application's
// observed DVFS/UFS response. If the memory traffic cannot carry the
// requested stall share even at zero overlap, the remainder falls back
// into BaseCPI.
func SolveWithCoreFrac(m Machine, proto Phase, op Operating, targetCPI, targetGBs, coreFrac float64) (Phase, error) {
	if coreFrac <= 0 || coreFrac > 1 {
		return Phase{}, fmt.Errorf("perf: core CPI fraction %g outside (0,1]", coreFrac)
	}
	if targetCPI <= 0 {
		return Phase{}, fmt.Errorf("perf: target CPI must be positive, got %g", targetCPI)
	}
	if targetGBs < 0 {
		return Phase{}, fmt.Errorf("perf: target GB/s must be non-negative, got %g", targetGBs)
	}
	fEff := EffectiveCoreFreq(m.CPU, proto.VPI, op.CoreRatio)
	fg := fEff.GHzF()
	fu := units.FromRatio(op.UncoreRatio, cpu.BusClock)

	ipsCore := fg * 1e9 / targetCPI
	bytesPerInstr := 0.0
	if targetGBs > 0 {
		bytesPerInstr = targetGBs * 1e9 / (float64(proto.ActiveCores) * ipsCore)
	}
	lines := bytesPerInstr / CacheLineBytes
	rho := m.Mem.Utilization(targetGBs, fu)
	lat := m.Mem.LatencyNs(fu, rho)

	base := coreFrac * targetCPI
	const minBase = 0.05
	if base < minBase {
		base = minBase
	}
	stall := targetCPI - base
	overlap := 0.0
	if maxStall := lines * lat * fg; maxStall > 0 && stall > 0 {
		overlap = 1 - stall/maxStall
		if overlap < 0 {
			// The DRAM traffic cannot carry this much stall: take what
			// it can at zero overlap and return the rest to the core.
			overlap = 0
			base = targetCPI - maxStall
			if base < minBase {
				base = minBase
			}
		}
		if overlap >= 1 {
			overlap = 0.999
		}
	} else {
		base = targetCPI
	}

	out := proto
	out.BaseCPI = base
	out.BytesPerInstr = bytesPerInstr
	out.Overlap = overlap
	if err := out.Validate(); err != nil {
		return Phase{}, fmt.Errorf("perf: core-fraction calibration produced invalid phase: %w", err)
	}

	// Refine overlap (holding the core share) and bytes against the
	// full model so the targets reproduce exactly through Evaluate.
	for i := 0; i < 40; i++ {
		got, err := Evaluate(m, out, op)
		if err != nil {
			return Phase{}, err
		}
		cpiErr := targetCPI - got.CPI
		if slope := lines * lat * fg; slope > 0 {
			// dCPI/dOverlap = -lines·lat·fg
			out.Overlap -= cpiErr / slope
			out.Overlap = clampF(out.Overlap, 0, 0.999)
		} else {
			out.BaseCPI += cpiErr
			if out.BaseCPI < minBase {
				out.BaseCPI = minBase
			}
		}
		if targetGBs > 0 && got.NodeGBs > 0 {
			out.BytesPerInstr *= math.Sqrt(targetGBs / got.NodeGBs)
			lines = out.BytesPerInstr / CacheLineBytes
		}
		if math.Abs(cpiErr) < 1e-9*targetCPI {
			if targetGBs == 0 || math.Abs(got.NodeGBs-targetGBs) < 1e-6*targetGBs {
				break
			}
		}
	}
	if err := out.Validate(); err != nil {
		return Phase{}, fmt.Errorf("perf: core-fraction refinement produced invalid phase: %w", err)
	}
	return out, nil
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// SolveBaseCPI inverts the model: given a target total CPI and achieved
// bandwidth at an operating point, it returns the BaseCPI and
// BytesPerInstr that reproduce them. Overlap and ActiveCores must already
// be set in proto. It is used by the workload calibration to make each
// catalogue entry reproduce its published signature at nominal frequency.
func SolveBaseCPI(m Machine, proto Phase, op Operating, targetCPI, targetGBs float64) (Phase, error) {
	if targetCPI <= 0 {
		return Phase{}, fmt.Errorf("perf: target CPI must be positive, got %g", targetCPI)
	}
	if targetGBs < 0 {
		return Phase{}, fmt.Errorf("perf: target GB/s must be non-negative, got %g", targetGBs)
	}
	fEff := EffectiveCoreFreq(m.CPU, proto.VPI, op.CoreRatio)
	fg := fEff.GHzF()
	fu := units.FromRatio(op.UncoreRatio, cpu.BusClock)

	// Instructions per second per core implied by the target CPI, and
	// the bytes/instr that produce the target bandwidth at that rate.
	ipsCore := fg * 1e9 / targetCPI
	bytesPerInstr := 0.0
	if targetGBs > 0 {
		bytesPerInstr = targetGBs * 1e9 / (float64(proto.ActiveCores) * ipsCore)
	}

	// Exposed-latency stall at the target utilisation.
	rho := m.Mem.Utilization(targetGBs, fu)
	lat := m.Mem.LatencyNs(fu, rho)
	overlap := proto.Overlap
	stall := (1 - overlap) * (bytesPerInstr / CacheLineBytes) * lat * fg
	base := targetCPI - stall
	// If the requested overlap leaves no room for a core component,
	// raise the overlap until a small core CPI remains.
	const minBase = 0.05
	if base < minBase {
		needStall := targetCPI - minBase
		if linesLat := (bytesPerInstr / CacheLineBytes) * lat * fg; linesLat > 0 && needStall > 0 {
			overlap = 1 - needStall/linesLat
			if overlap < 0 {
				overlap = 0
			}
			if overlap >= 1 {
				overlap = 0.999
			}
		}
		base = minBase
	}

	out := proto
	out.BaseCPI = base
	out.BytesPerInstr = bytesPerInstr
	out.Overlap = overlap
	if err := out.Validate(); err != nil {
		return Phase{}, fmt.Errorf("perf: calibration produced invalid phase: %w", err)
	}

	// Refine against the full model so the calibrated phase reproduces
	// the targets exactly through Evaluate, including queueing and
	// saturation effects the analytic guess ignores.
	for i := 0; i < 40; i++ {
		got, err := Evaluate(m, out, op)
		if err != nil {
			return Phase{}, err
		}
		cpiErr := targetCPI - got.CPI
		out.BaseCPI += cpiErr
		if out.BaseCPI < minBase {
			out.BaseCPI = minBase
		}
		if targetGBs > 0 && got.NodeGBs > 0 {
			// Achieved GB/s scales with bytes/instr at fixed CPI; a
			// damped multiplicative step converges even when the
			// bytes themselves feed back into CPI.
			f := targetGBs / got.NodeGBs
			out.BytesPerInstr *= math.Sqrt(f)
		}
		if math.Abs(cpiErr) < 1e-9*targetCPI {
			if targetGBs == 0 || math.Abs(got.NodeGBs-targetGBs) < 1e-6*targetGBs {
				break
			}
		}
	}
	if err := out.Validate(); err != nil {
		return Phase{}, fmt.Errorf("perf: calibration refinement produced invalid phase: %w", err)
	}
	return out, nil
}
