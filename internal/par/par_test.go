package par

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, limit := range []int{0, 1, 2, 4, 100} {
		const n = 37
		var hits [n]atomic.Int64
		if err := ForEach(limit, n, func(i int) error {
			hits[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("limit %d: %v", limit, err)
		}
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Errorf("limit %d: index %d ran %d times", limit, i, got)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := ForEach(4, 0, func(int) error { return errors.New("must not run") }); err != nil {
		t.Fatal(err)
	}
}

func TestForEachBoundsConcurrency(t *testing.T) {
	const limit = 3
	var cur, peak atomic.Int64
	var mu sync.Mutex
	err := ForEach(limit, 64, func(i int) error {
		c := cur.Add(1)
		mu.Lock()
		if c > peak.Load() {
			peak.Store(c)
		}
		mu.Unlock()
		defer cur.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > limit {
		t.Errorf("observed %d concurrent calls, limit %d", p, limit)
	}
}

func TestForEachReturnsLowestIndexedError(t *testing.T) {
	// Every index fails; the reported error must be a deterministic
	// function of the input, not of goroutine scheduling.
	for _, limit := range []int{1, 4} {
		err := ForEach(limit, 16, func(i int) error {
			return fmt.Errorf("fail %d", i)
		})
		if err == nil || err.Error() != "fail 0" {
			t.Errorf("limit %d: err = %v, want fail 0", limit, err)
		}
	}
}

func TestForEachSkipsAfterFailure(t *testing.T) {
	var ran atomic.Int64
	err := ForEach(2, 1000, func(i int) error {
		ran.Add(1)
		if i < 2 {
			return errors.New("early failure")
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if n := ran.Load(); n == 1000 {
		t.Error("all indices ran despite early failure")
	}
}

func TestMapPreservesOrder(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	out, err := Map(8, items, func(v int) (int, error) { return v * v, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapError(t *testing.T) {
	_, err := Map(4, []int{0, 1, 2}, func(v int) (int, error) {
		if v == 1 {
			return 0, errors.New("boom")
		}
		return v, nil
	})
	if err == nil || err.Error() != "boom" {
		t.Fatalf("err = %v", err)
	}
}
