// Package par provides the bounded fan-out primitives behind the
// parallel experiment engine: a work-stealing ForEach over an index
// range and an order-preserving Map, both capped at a caller-chosen
// worker count.
//
// Parallelism here never changes results. Every unit of work writes
// only to its own slot, outputs are assembled in input order, and all
// simulation randomness is derived from explicit per-run seeds — so a
// computation scheduled over eight workers is byte-identical to the
// same computation run sequentially. A limit of one (or less) runs the
// work inline on the calling goroutine, which keeps sequential paths
// free of goroutine overhead and trivially deterministic.
package par

import (
	"sync"
	"sync/atomic"
)

// ForEach invokes fn(0) … fn(n-1), running at most limit invocations
// concurrently. With limit <= 1 the calls happen inline, in order.
// On error the remaining unstarted indices are skipped and the error
// of the lowest-indexed failed call is returned.
func ForEach(limit, n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	tl := tel.Load()
	if limit <= 1 || n == 1 {
		if tl != nil {
			tl.inline.Inc()
		}
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				if tl != nil {
					tl.tasks.Add(uint64(i))
				}
				return err
			}
		}
		if tl != nil {
			tl.tasks.Add(uint64(n))
		}
		return nil
	}
	if limit > n {
		limit = n
	}
	if tl != nil {
		tl.workers.Add(uint64(limit))
		tl.queue.Add(float64(n))
	}

	var (
		next   atomic.Int64
		failed atomic.Bool
		mu     sync.Mutex
		errIdx = n
		first  error
		done   atomic.Int64
		wg     sync.WaitGroup
	)
	record := func(i int, err error) {
		mu.Lock()
		if i < errIdx {
			errIdx, first = i, err
		}
		mu.Unlock()
		failed.Store(true)
	}
	wg.Add(limit)
	for w := 0; w < limit; w++ {
		go func() {
			defer wg.Done()
			completed := 0
			if tl != nil {
				tl.active.Add(1)
				defer func() {
					tl.active.Add(-1)
					tl.tasks.Add(uint64(completed))
					tl.queue.Add(-float64(completed))
					done.Add(int64(completed))
				}()
			}
			for {
				i := int(next.Add(1)) - 1
				if i >= n || failed.Load() {
					return
				}
				if err := fn(i); err != nil {
					record(i, err)
					return
				}
				completed++
			}
		}()
	}
	wg.Wait()
	if tl != nil {
		// Indices skipped after an error were never executed; return
		// the queue gauge to its pre-call level regardless.
		tl.queue.Add(-float64(int64(n) - done.Load()))
	}
	return first
}

// Map applies fn to every item, running at most limit applications
// concurrently, and returns the results in input order. On error the
// partial results are discarded and the error of the lowest-indexed
// failed item is returned.
func Map[T, R any](limit int, items []T, fn func(T) (R, error)) ([]R, error) {
	out := make([]R, len(items))
	err := ForEach(limit, len(items), func(i int) error {
		r, err := fn(items[i])
		if err != nil {
			return err
		}
		out[i] = r
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
