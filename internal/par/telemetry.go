package par

import (
	"sync/atomic"

	"goear/internal/telemetry"
)

// Metric names (the goearvet telemetry analyzer requires package-level
// constants matching ^goear_[a-z0-9_]+$, registered exactly once).
const (
	metricParTasks   = "goear_par_tasks_total"
	metricParWorkers = "goear_par_workers_started_total"
	metricParInline  = "goear_par_inline_loops_total"
	metricParActive  = "goear_par_active_workers"
	metricParQueue   = "goear_par_queue_depth"
)

// parTel is the package's instrument bundle; the atomic pointer stays
// nil until global telemetry is enabled, so the disabled fast path is
// one pointer load per ForEach (not per task).
type parTel struct {
	tasks   *telemetry.Counter
	workers *telemetry.Counter
	inline  *telemetry.Counter
	active  *telemetry.Gauge
	queue   *telemetry.Gauge
}

var tel atomic.Pointer[parTel]

func init() {
	telemetry.OnEnable(func(s *telemetry.Set) {
		if s == nil {
			tel.Store(nil)
			return
		}
		r := s.Registry
		tel.Store(&parTel{
			tasks:   r.Counter(metricParTasks, "tasks executed by par.ForEach"),
			workers: r.Counter(metricParWorkers, "worker goroutines launched by par.ForEach"),
			inline:  r.Counter(metricParInline, "ForEach calls that ran inline (limit<=1 or n==1)"),
			active:  r.Gauge(metricParActive, "worker goroutines currently running"),
			queue:   r.Gauge(metricParQueue, "tasks dispatched to par.ForEach and not yet finished"),
		})
	})
}
