package experiments

import (
	"fmt"

	"goear/internal/report"
	"goear/internal/sim"
	"goear/internal/workload"
)

// Fig1 reproduces Figure 1: the motivation uncore sweep. For each
// motivation kernel, the CPU frequency the policy selects is pinned and
// the uncore frequency is fixed from 2.4 GHz down to 1.2 GHz in 100 MHz
// steps; each row reports average DC power saving, energy saving, time
// penalty and GB/s penalty against the run with hardware UFS, plus the
// average IMC frequency (the figure's second y-axis). The two staging
// runs are sequential (the sweep depends on the policy's selection);
// the sweep itself fans out one run per uncore point.
func (c *Context) Fig1() ([]report.Table, error) {
	var out []report.Table
	for _, name := range []string{workload.BTMZMotiv, workload.LUDMotiv} {
		// Stage 1: let the policy pick the CPU frequency.
		me, err := c.run(name, sim.Options{Policy: "min_energy", Seed: 10})
		if err != nil {
			return nil, err
		}
		pinned := me.Nodes[0].FinalCPUPstate

		// Stage 2: reference run at that CPU frequency with hardware
		// UFS (default uncore range).
		ref, err := c.run(name, sim.Options{Policy: "none", Seed: 10, FixedCPUPstate: &pinned})
		if err != nil {
			return nil, err
		}

		t := report.Table{
			Title: fmt.Sprintf("Fig 1 (%s): fixed-uncore sweep at policy-selected CPU frequency (pstate %d); reference avg IMC %s GHz",
				name, pinned, report.GHz(ref.AvgIMCGHz)),
			Columns: []string{"uncore (GHz)", "power saving", "energy saving",
				"time penalty", "GB/s penalty", "avg IMC (GHz)"},
		}
		cal, err := c.cal(name)
		if err != nil {
			return nil, err
		}
		maxR := cal.Platform.Machine.CPU.UncoreMaxRatio
		minR := cal.Platform.Machine.CPU.UncoreMinRatio
		var ratios []uint64
		for r := maxR; ; r-- {
			ratios = append(ratios, r)
			if r == minR {
				break
			}
		}
		runs, err := mapRows(c, ratios, func(ratio uint64) (sim.Result, error) {
			return c.run(name, sim.Options{
				Policy: "none", Seed: 10,
				FixedCPUPstate: &pinned, FixedUncoreRatio: &ratio,
			})
		})
		if err != nil {
			return nil, err
		}
		for i, r := range ratios {
			d := deltaOf(ref, runs[i])
			if err := t.AddRow(report.GHz(float64(r)/10),
				report.Pct(d.PowerSavingPct), report.Pct(d.EnergySavingPct),
				report.Pct(d.TimePenaltyPct), report.Pct(d.GBsPenaltyPct),
				report.GHz(runs[i].AvgIMCGHz)); err != nil {
				return nil, err
			}
		}
		out = append(out, t)
	}
	return out, nil
}

// figColumns is the shared column layout of the bar figures.
func figColumns() []string {
	return []string{"configuration", "time penalty", "DC power saving",
		"energy saving", "avg CPU (GHz)", "avg IMC (GHz)"}
}

// Fig3 reproduces Figure 3: BQCD under ME and ME+eU with
// unc_policy_th 1%, 2% and 3% (cpu_policy_th 3%).
func (c *Context) Fig3() ([]report.Table, error) {
	t := report.Table{
		Title:   "Fig 3: BQCD, min_energy configurations (cpu_th 3%)",
		Columns: figColumns(),
	}
	name := workload.BQCD
	cfgs := []runCfg{
		{"ME", name, sim.Options{Policy: "min_energy", CPUTh: sim.F(0.03), Seed: 30}},
	}
	for _, unc := range []float64{0.01, 0.02, 0.03} {
		cfgs = append(cfgs, runCfg{
			fmt.Sprintf("ME+eU %d%%", int(unc*100)), name,
			sim.Options{Policy: "min_energy_eufs", CPUTh: sim.F(0.03), UncTh: sim.F(unc), Seed: 30},
		})
	}
	ds, err := c.compareAll(cfgs)
	if err != nil {
		return nil, err
	}
	for i, cfg := range cfgs {
		if err := figRow(&t, cfg.label, ds[i]); err != nil {
			return nil, err
		}
	}
	return []report.Table{t}, nil
}

// Fig4 reproduces Figure 4: BT-MZ under ME and ME+eU with
// unc_policy_th 0%, 1% and 2% (cpu_policy_th 3%).
func (c *Context) Fig4() ([]report.Table, error) {
	t := report.Table{
		Title:   "Fig 4: BT-MZ, min_energy configurations (cpu_th 3%)",
		Columns: figColumns(),
	}
	name := workload.BTMZD
	cfgs := []runCfg{
		{"ME", name, sim.Options{Policy: "min_energy", CPUTh: sim.F(0.03), Seed: 30}},
	}
	for _, unc := range []float64{0.001, 0.01, 0.02} {
		label := fmt.Sprintf("ME+eU %g%%", unc*100)
		if unc == 0.001 {
			label = "ME+eU 0%"
		}
		cfgs = append(cfgs, runCfg{
			label, name,
			sim.Options{Policy: "min_energy_eufs", CPUTh: sim.F(0.03), UncTh: sim.F(unc), Seed: 30},
		})
	}
	ds, err := c.compareAll(cfgs)
	if err != nil {
		return nil, err
	}
	for i, cfg := range cfgs {
		if err := figRow(&t, cfg.label, ds[i]); err != nil {
			return nil, err
		}
	}
	return []report.Table{t}, nil
}

// Fig5 reproduces Figure 5: GROMACS(I) with cpu_policy_th 3% and 5%,
// comparing ME, the not-guided uncore search (ME+NG-U) and the
// HW-guided search (ME+eU), all with unc_policy_th 2%.
func (c *Context) Fig5() ([]report.Table, error) {
	t := report.Table{
		Title:   "Fig 5: GROMACS(I), HW-guided vs not-guided uncore search (unc_th 2%)",
		Columns: figColumns(),
	}
	name := workload.GromacsI
	var cfgs []runCfg
	for _, th := range []float64{0.03, 0.05} {
		pct := int(th * 100)
		cfgs = append(cfgs,
			runCfg{fmt.Sprintf("ME (cpu_th %d%%)", pct), name,
				sim.Options{Policy: "min_energy", CPUTh: sim.F(th), Seed: 30}},
			runCfg{fmt.Sprintf("ME+NG-U (cpu_th %d%%)", pct), name,
				sim.Options{Policy: "min_energy_eufs", CPUTh: sim.F(th), HWGuidedOff: true, Seed: 30}},
			runCfg{fmt.Sprintf("ME+eU (cpu_th %d%%)", pct), name,
				sim.Options{Policy: "min_energy_eufs", CPUTh: sim.F(th), Seed: 30}},
		)
	}
	ds, err := c.compareAll(cfgs)
	if err != nil {
		return nil, err
	}
	for i, cfg := range cfgs {
		if err := figRow(&t, cfg.label, ds[i]); err != nil {
			return nil, err
		}
	}
	return []report.Table{t}, nil
}

// Fig6 reproduces Figure 6: GROMACS(II) under ME and ME+eU
// (cpu_policy_th 5%, unc_policy_th 2%).
func (c *Context) Fig6() ([]report.Table, error) {
	t := report.Table{
		Title:   "Fig 6: GROMACS(II), min_energy configurations (cpu_th 5%)",
		Columns: figColumns(),
	}
	name := workload.GromacsII
	cfgs := []runCfg{
		{"ME", name, sim.Options{Policy: "min_energy", Seed: 30}},
		{"ME+eU", name, sim.Options{Policy: "min_energy_eufs", Seed: 30}},
	}
	ds, err := c.compareAll(cfgs)
	if err != nil {
		return nil, err
	}
	for i, cfg := range cfgs {
		if err := figRow(&t, cfg.label, ds[i]); err != nil {
			return nil, err
		}
	}
	return []report.Table{t}, nil
}

func ratioColumns() []string {
	return []string{"configuration", "time penalty", "DC power saving",
		"energy saving", "eff. ratio"}
}

// Fig7 reproduces Figure 7: HPCG (a) and POP (b) under ME and ME+eU
// (cpu_policy_th 5%, unc_policy_th 2%), with the efficiency ratio.
func (c *Context) Fig7() ([]report.Table, error) {
	names := []string{workload.HPCG, workload.POP}
	var cfgs []runCfg
	for _, name := range names {
		cfgs = append(cfgs,
			runCfg{"ME", name, sim.Options{Policy: "min_energy", Seed: 30}},
			runCfg{"ME+eU", name, sim.Options{Policy: "min_energy_eufs", Seed: 30}},
		)
	}
	ds, err := c.compareAll(cfgs)
	if err != nil {
		return nil, err
	}
	var out []report.Table
	for i, name := range names {
		t := report.Table{
			Title:   fmt.Sprintf("Fig 7 (%s): min_energy configurations (cpu_th 5%%)", name),
			Columns: ratioColumns(),
		}
		for j := 0; j < 2; j++ {
			cfg := cfgs[i*2+j]
			if err := ratioRowOf(&t, cfg.label, ds[i*2+j]); err != nil {
				return nil, err
			}
		}
		out = append(out, t)
	}
	return out, nil
}

// Fig8 reproduces Figure 8: DUMSES (a) and AFiD (b) with
// cpu_policy_th 3% and 5% (unc_policy_th 2%).
func (c *Context) Fig8() ([]report.Table, error) {
	names := []string{workload.DUMSES, workload.AFiD}
	var cfgs []runCfg
	for _, name := range names {
		for _, th := range []float64{0.03, 0.05} {
			pct := int(th * 100)
			cfgs = append(cfgs,
				runCfg{fmt.Sprintf("ME (cpu_th %d%%)", pct), name,
					sim.Options{Policy: "min_energy", CPUTh: sim.F(th), Seed: 30}},
				runCfg{fmt.Sprintf("ME+eU (cpu_th %d%%)", pct), name,
					sim.Options{Policy: "min_energy_eufs", CPUTh: sim.F(th), Seed: 30}},
			)
		}
	}
	ds, err := c.compareAll(cfgs)
	if err != nil {
		return nil, err
	}
	var out []report.Table
	for i, name := range names {
		t := report.Table{
			Title:   fmt.Sprintf("Fig 8 (%s): cpu_th 3%% vs 5%% (unc_th 2%%)", name),
			Columns: ratioColumns(),
		}
		for j := 0; j < 4; j++ {
			cfg := cfgs[i*4+j]
			if err := ratioRowOf(&t, cfg.label, ds[i*4+j]); err != nil {
				return nil, err
			}
		}
		out = append(out, t)
	}
	return out, nil
}
