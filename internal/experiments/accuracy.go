package experiments

import (
	"fmt"
	"math"

	"goear/internal/metrics"
	"goear/internal/perf"
	"goear/internal/power"
	"goear/internal/report"
	"goear/internal/workload"
)

func init() {
	generators["model_accuracy"] = (*Context).ModelAccuracy
}

// accuracyProbes are held-out phases (not in the training grid),
// spanning the catalogue's behaviour space.
func accuracyProbes(cores int) []perf.Phase {
	return []perf.Phase{
		{BaseCPI: 0.38, BytesPerInstr: 0.11, Overlap: 0.7, ActiveCores: cores},  // BT-like
		{BaseCPI: 0.42, BytesPerInstr: 0.45, Overlap: 0.82, ActiveCores: cores}, // SP-like
		{BaseCPI: 0.55, BytesPerInstr: 1.7, Overlap: 0.9, ActiveCores: cores},   // mixed
		{BaseCPI: 0.31, BytesPerInstr: 2.4, Overlap: 0.96, ActiveCores: cores},  // POP-like
		{BaseCPI: 0.85, BytesPerInstr: 5.8, Overlap: 0.993, ActiveCores: cores}, // HPCG-like
	}
}

// ModelAccuracy reports the trained energy model's held-out prediction
// error (mean and maximum absolute relative CPI error, which equals the
// relative time error under the projection identity) as a function of
// projection distance, per platform — the fidelity evidence behind the
// policies' decisions.
func (c *Context) ModelAccuracy() ([]report.Table, error) {
	var out []report.Table
	for _, pl := range []workload.Platform{workload.SD530(), workload.CascadeLake()} {
		m, err := c.modelFor(pl)
		if err != nil {
			return nil, err
		}
		t := report.Table{
			Title: fmt.Sprintf("Model accuracy (%s): held-out projection error from the nominal pstate", pl.Name),
			Columns: []string{"target pstate", "target freq (GHz)",
				"mean |CPI err|", "max |CPI err|", "mean |power err|"},
		}
		cpuM := pl.Machine.CPU
		fromRatio, err := cpuM.PstateRatio(1)
		if err != nil {
			return nil, err
		}
		var targets []int
		for to := 2; to < cpuM.PstateCount(); to += 2 {
			targets = append(targets, to)
		}
		type row struct{ freqGHz, meanCPI, maxCPI, meanPow float64 }
		rows, err := mapRows(c, targets, func(to int) (row, error) {
			toRatio, err := cpuM.PstateRatio(to)
			if err != nil {
				return row{}, err
			}
			var cpiErrs, powErrs []float64
			for _, ph := range accuracyProbes(cpuM.TotalCores()) {
				src, err := perf.Evaluate(pl.Machine, ph, perf.Operating{
					CoreRatio: fromRatio, UncoreRatio: cpuM.UncoreMaxRatio,
				})
				if err != nil {
					return row{}, err
				}
				dst, err := perf.Evaluate(pl.Machine, ph, perf.Operating{
					CoreRatio: toRatio, UncoreRatio: cpuM.UncoreMaxRatio,
				})
				if err != nil {
					return row{}, err
				}
				srcPow, err := pl.Power.Node(powerInput(pl, ph, src))
				if err != nil {
					return row{}, err
				}
				dstPow, err := pl.Power.Node(powerInput(pl, ph, dst))
				if err != nil {
					return row{}, err
				}
				sig := metrics.Signature{
					IterTimeSec: 1, CPI: src.CPI,
					TPI: ph.BytesPerInstr / perf.CacheLineBytes,
					GBs: src.NodeGBs, DCPowerW: srcPow.Total,
				}
				pred, err := m.Predict(sig, 1, to)
				if err != nil {
					return row{}, err
				}
				cpiErrs = append(cpiErrs, math.Abs(pred.CPI-dst.CPI)/dst.CPI)
				powErrs = append(powErrs, math.Abs(pred.PowerW-dstPow.Total)/dstPow.Total)
			}
			f, err := cpuM.PstateFreq(to)
			if err != nil {
				return row{}, err
			}
			return row{f.GHzF(), mean(cpiErrs), maxOf(cpiErrs), mean(powErrs)}, nil
		})
		if err != nil {
			return nil, err
		}
		for i, to := range targets {
			r := rows[i]
			if err := t.AddRow(fmt.Sprint(to), report.GHz(r.freqGHz),
				report.Pct(100*r.meanCPI), report.Pct(100*r.maxCPI),
				report.Pct(100*r.meanPow)); err != nil {
				return nil, err
			}
		}
		out = append(out, t)
	}
	return out, nil
}

func powerInput(pl workload.Platform, ph perf.Phase, r perf.Result) power.Input {
	return power.Input{
		CoreFreqGHz:   r.EffCoreFreq.GHzF(),
		UncoreFreqGHz: r.UncoreFreq.GHzF(),
		Sockets:       pl.Machine.CPU.Sockets,
		ActiveCores:   ph.ActiveCores,
		Activity:      1.0,
		GBs:           r.NodeGBs,
	}
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	if len(xs) == 0 {
		return 0
	}
	return s / float64(len(xs))
}

func maxOf(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
