package experiments

import (
	"goear/internal/report"
	"goear/internal/sim"
	"goear/internal/workload"
)

func init() {
	generators["baselines"] = (*Context).Baselines
	generators["future_work"] = (*Context).FutureWork
}

// Baselines contrasts EAR's model-driven ME+eU with the controller-based
// related work the paper discusses in §VII (a DUF/Uncore-Power-Scavenger
// style pure-feedback controller, reimplemented as the "duf" policy):
// one CPU-bound kernel, one accelerator kernel, and one memory-bound
// application. The controller manages only the uncore, so on codes where
// DVFS matters (HPCG) it leaves the CPU saving on the table; on
// uncore-dominated codes the two approaches converge.
func (c *Context) Baselines() ([]report.Table, error) {
	t := report.Table{
		Title:   "Baselines: EAR ME+eU vs controller-based uncore scaling (duf)",
		Columns: append([]string{"workload"}, figColumns()[1:]...),
	}
	var cfgs []runCfg
	for _, name := range []string{workload.BTMZC, workload.BTCUDA, workload.HPCG} {
		cfgs = append(cfgs,
			runCfg{name + " / ME+eU", name, sim.Options{Policy: "min_energy_eufs", Seed: 50}},
			runCfg{name + " / duf", name, sim.Options{Policy: "duf", Seed: 50}},
		)
	}
	ds, err := c.compareAll(cfgs)
	if err != nil {
		return nil, err
	}
	for i, cfg := range cfgs {
		if err := figRow(&t, cfg.label, ds[i]); err != nil {
			return nil, err
		}
	}
	return []report.Table{t}, nil
}

// FutureWork evaluates the extension the paper announces but does not
// evaluate: min_time_to_solution with the same explicit-UFS stage. The
// rows show min_time climbing frequency-sensitive codes back to nominal
// while the uncore stage still harvests the IMC headroom.
func (c *Context) FutureWork() ([]report.Table, error) {
	t := report.Table{
		Title:   "Future work (paper §VIII): min_time_to_solution with explicit UFS",
		Columns: append([]string{"workload"}, figColumns()[1:]...),
	}
	var cfgs []runCfg
	for _, name := range []string{workload.BTMZC, workload.HPCG, workload.POP} {
		cfgs = append(cfgs,
			runCfg{name + " / min_time", name, sim.Options{Policy: "min_time", Seed: 60}},
			runCfg{name + " / min_time+eU", name, sim.Options{Policy: "min_time_eufs", Seed: 60}},
		)
	}
	ds, err := c.compareAll(cfgs)
	if err != nil {
		return nil, err
	}
	for i, cfg := range cfgs {
		if err := figRow(&t, cfg.label, ds[i]); err != nil {
			return nil, err
		}
	}
	return []report.Table{t}, nil
}
