package experiments

import (
	"goear/internal/report"
	"goear/internal/sim"
	"goear/internal/workload"
)

// Ablations regenerates the design-choice ablations listed in DESIGN.md
// (A1-A5): each varies one decision the paper's §V-B fixes. The five
// studies are independent, so they fan out in parallel (and each one's
// rows fan out again internally).
func (c *Context) Ablations() ([]report.Table, error) {
	return mapRows(c, []func() (report.Table, error){
		c.ablationSearch,
		c.ablationAVX512,
		c.ablationRatioMode,
		c.ablationUncTh,
		c.ablationSigChange,
	}, func(g func() (report.Table, error)) (report.Table, error) {
		return g()
	})
}

// ablationSearch (A1): HW-guided vs linear (from-maximum) IMC search on
// a workload where the hardware settles well below the maximum
// (BT.CUDA), so the starting points genuinely differ. The settle column
// (from the run trace: the last change of the programmed uncore
// ceiling) shows the guided search converging faster — the paper's
// stated reason for preferring it.
func (c *Context) ablationSearch() (report.Table, error) {
	t := report.Table{
		Title: "Ablation A1: HW-guided vs not-guided IMC search start (BT.CUDA)",
		Columns: []string{"configuration", "time penalty", "DC power saving",
			"energy saving", "settle (s)", "avg IMC (GHz)"},
	}
	name := workload.BTCUDA
	base, err := c.baseline(name)
	if err != nil {
		return report.Table{}, err
	}
	cfgs := []runCfg{
		{"ME+eU (HW-guided)", name, sim.Options{Policy: "min_energy_eufs", Seed: 40, Trace: true}},
		{"ME+NG-U (from max)", name, sim.Options{Policy: "min_energy_eufs", HWGuidedOff: true, Seed: 40, Trace: true}},
	}
	runs, err := mapRows(c, cfgs, func(cfg runCfg) (sim.Result, error) {
		return c.run(cfg.name, cfg.opt)
	})
	if err != nil {
		return report.Table{}, err
	}
	for i, cfg := range cfgs {
		d := deltaOf(base, runs[i])
		if err := t.AddRow(cfg.label,
			report.Pct(d.TimePenaltyPct), report.Pct(d.PowerSavingPct),
			report.Pct(d.EnergySavingPct),
			report.F(settleTime(runs[i].Nodes[0].Trace), 0),
			report.GHz(d.AvgIMCGHz)); err != nil {
			return report.Table{}, err
		}
	}
	return t, nil
}

// settleTime returns the simulated time of the last change of the
// programmed uncore ceiling, i.e. when the search stopped moving.
func settleTime(trace []sim.TracePoint) float64 {
	last := 0.0
	for i := 1; i < len(trace); i++ {
		if trace[i].UncMax != trace[i-1].UncMax {
			last = trace[i].TimeSec
		}
	}
	return last
}

// figTableOf renders one bar-figure ablation table from its
// configuration list.
func (c *Context) figTableOf(title string, cfgs []runCfg) (report.Table, error) {
	t := report.Table{Title: title, Columns: figColumns()}
	ds, err := c.compareAll(cfgs)
	if err != nil {
		return report.Table{}, err
	}
	for i, cfg := range cfgs {
		if err := figRow(&t, cfg.label, ds[i]); err != nil {
			return report.Table{}, err
		}
	}
	return t, nil
}

// ablationAVX512 (A2): the AVX512-aware model vs the pre-extension
// default model on DGEMM (VPI = 1).
func (c *Context) ablationAVX512() (report.Table, error) {
	name := workload.DGEMM
	return c.figTableOf("Ablation A2: AVX512 model on/off (DGEMM, min_energy)", []runCfg{
		{"AVX512 model", name, sim.Options{Policy: "min_energy", Seed: 40}},
		{"default model", name, sim.Options{Policy: "min_energy", NoAVX512Model: true, Seed: 40}},
	})
}

// ablationRatioMode (A3): moving only the maximum uncore ratio (the
// paper's choice) vs pinning min=max during the search.
func (c *Context) ablationRatioMode() (report.Table, error) {
	name := workload.BTMZC
	return c.figTableOf("Ablation A3: move-max-only vs pin min=max uncore window (BT-MZ.C, ME+eU)", []runCfg{
		{"move max only", name, sim.Options{Policy: "min_energy_eufs", Seed: 40}},
		{"pin min=max", name, sim.Options{Policy: "min_energy_eufs", PinBothUncoreLimits: true, Seed: 40}},
	})
}

// ablationUncTh (A4): unc_policy_th sensitivity on SP-MZ.
func (c *Context) ablationUncTh() (report.Table, error) {
	name := workload.SPMZC
	var cfgs []runCfg
	for _, unc := range []float64{0.005, 0.01, 0.02, 0.03, 0.05} {
		cfgs = append(cfgs, runCfg{
			"unc_th " + report.F(unc*100, 1) + "%", name,
			sim.Options{Policy: "min_energy_eufs", UncTh: sim.F(unc), Seed: 40},
		})
	}
	return c.figTableOf("Ablation A4: unc_policy_th sensitivity (SP-MZ.C, ME+eU)", cfgs)
}

// ablationSigChange (A5): EARL's signature-change threshold. The mild
// two-phase workload shifts CPI by ~13% mid-run, so a 10% threshold
// re-applies the policy on the shift while 15% and 20% ride through it;
// the drastic PhaseChange workload is caught by every threshold.
func (c *Context) ablationSigChange() (report.Table, error) {
	t := report.Table{
		Title: "Ablation A5: signature-change threshold (min_energy_eufs)",
		Columns: []string{"workload", "sig_th", "policy applies",
			"time penalty", "energy saving"},
	}
	type cell struct {
		name string
		th   float64
	}
	var cells []cell
	for _, name := range []string{workload.PhaseChangeMild, workload.PhaseChange} {
		for _, th := range []float64{0.10, 0.15, 0.20} {
			cells = append(cells, cell{name, th})
		}
	}
	type row struct {
		applies float64
		d       Delta
	}
	rows, err := mapRows(c, cells, func(cl cell) (row, error) {
		base, err := c.baseline(cl.name)
		if err != nil {
			return row{}, err
		}
		r, err := c.run(cl.name, sim.Options{
			Policy: "min_energy_eufs", SigChangeTh: cl.th, Seed: 40,
		})
		if err != nil {
			return row{}, err
		}
		return row{float64(r.Nodes[0].PolicyApplies), deltaOf(base, r)}, nil
	})
	if err != nil {
		return report.Table{}, err
	}
	for i, cl := range cells {
		if err := t.AddRow(cl.name, report.F(cl.th*100, 0)+"%",
			report.F(rows[i].applies, 0),
			report.Pct(rows[i].d.TimePenaltyPct), report.Pct(rows[i].d.EnergySavingPct)); err != nil {
			return report.Table{}, err
		}
	}
	return t, nil
}
