package experiments

import (
	"goear/internal/report"
	"goear/internal/sim"
	"goear/internal/workload"
)

// Ablations regenerates the design-choice ablations listed in DESIGN.md
// (A1-A5): each varies one decision the paper's §V-B fixes.
func (c *Context) Ablations() ([]report.Table, error) {
	var out []report.Table
	for _, g := range []func() (report.Table, error){
		c.ablationSearch,
		c.ablationAVX512,
		c.ablationRatioMode,
		c.ablationUncTh,
		c.ablationSigChange,
	} {
		t, err := g()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}

// ablationSearch (A1): HW-guided vs linear (from-maximum) IMC search on
// a workload where the hardware settles well below the maximum
// (BT.CUDA), so the starting points genuinely differ. The settle column
// (from the run trace: the last change of the programmed uncore
// ceiling) shows the guided search converging faster — the paper's
// stated reason for preferring it.
func (c *Context) ablationSearch() (report.Table, error) {
	t := report.Table{
		Title: "Ablation A1: HW-guided vs not-guided IMC search start (BT.CUDA)",
		Columns: []string{"configuration", "time penalty", "DC power saving",
			"energy saving", "settle (s)", "avg IMC (GHz)"},
	}
	name := workload.BTCUDA
	base, err := c.baseline(name)
	if err != nil {
		return report.Table{}, err
	}
	for _, cfgr := range []struct {
		label string
		opt   sim.Options
	}{
		{"ME+eU (HW-guided)", sim.Options{Policy: "min_energy_eufs", Seed: 40, Trace: true}},
		{"ME+NG-U (from max)", sim.Options{Policy: "min_energy_eufs", HWGuidedOff: true, Seed: 40, Trace: true}},
	} {
		r, err := c.run(name, cfgr.opt)
		if err != nil {
			return report.Table{}, err
		}
		d := deltaOf(base, r)
		if err := t.AddRow(cfgr.label,
			report.Pct(d.TimePenaltyPct), report.Pct(d.PowerSavingPct),
			report.Pct(d.EnergySavingPct),
			report.F(settleTime(r.Nodes[0].Trace), 0),
			report.GHz(d.AvgIMCGHz)); err != nil {
			return report.Table{}, err
		}
	}
	return t, nil
}

// settleTime returns the simulated time of the last change of the
// programmed uncore ceiling, i.e. when the search stopped moving.
func settleTime(trace []sim.TracePoint) float64 {
	last := 0.0
	for i := 1; i < len(trace); i++ {
		if trace[i].UncMax != trace[i-1].UncMax {
			last = trace[i].TimeSec
		}
	}
	return last
}

// ablationAVX512 (A2): the AVX512-aware model vs the pre-extension
// default model on DGEMM (VPI = 1).
func (c *Context) ablationAVX512() (report.Table, error) {
	t := report.Table{
		Title:   "Ablation A2: AVX512 model on/off (DGEMM, min_energy)",
		Columns: figColumns(),
	}
	name := workload.DGEMM
	if err := c.configRow(&t, "AVX512 model", name,
		sim.Options{Policy: "min_energy", Seed: 40}); err != nil {
		return report.Table{}, err
	}
	if err := c.configRow(&t, "default model", name,
		sim.Options{Policy: "min_energy", NoAVX512Model: true, Seed: 40}); err != nil {
		return report.Table{}, err
	}
	return t, nil
}

// ablationRatioMode (A3): moving only the maximum uncore ratio (the
// paper's choice) vs pinning min=max during the search.
func (c *Context) ablationRatioMode() (report.Table, error) {
	t := report.Table{
		Title:   "Ablation A3: move-max-only vs pin min=max uncore window (BT-MZ.C, ME+eU)",
		Columns: figColumns(),
	}
	name := workload.BTMZC
	if err := c.configRow(&t, "move max only", name,
		sim.Options{Policy: "min_energy_eufs", Seed: 40}); err != nil {
		return report.Table{}, err
	}
	if err := c.configRow(&t, "pin min=max", name,
		sim.Options{Policy: "min_energy_eufs", PinBothUncoreLimits: true, Seed: 40}); err != nil {
		return report.Table{}, err
	}
	return t, nil
}

// ablationUncTh (A4): unc_policy_th sensitivity on SP-MZ.
func (c *Context) ablationUncTh() (report.Table, error) {
	t := report.Table{
		Title:   "Ablation A4: unc_policy_th sensitivity (SP-MZ.C, ME+eU)",
		Columns: figColumns(),
	}
	name := workload.SPMZC
	for _, unc := range []float64{0.005, 0.01, 0.02, 0.03, 0.05} {
		label := "unc_th " + report.F(unc*100, 1) + "%"
		if err := c.configRow(&t, label, name, sim.Options{
			Policy: "min_energy_eufs", UncTh: unc, Seed: 40,
		}); err != nil {
			return report.Table{}, err
		}
	}
	return t, nil
}

// ablationSigChange (A5): EARL's signature-change threshold. The mild
// two-phase workload shifts CPI by ~13% mid-run, so a 10% threshold
// re-applies the policy on the shift while 15% and 20% ride through it;
// the drastic PhaseChange workload is caught by every threshold.
func (c *Context) ablationSigChange() (report.Table, error) {
	t := report.Table{
		Title: "Ablation A5: signature-change threshold (min_energy_eufs)",
		Columns: []string{"workload", "sig_th", "policy applies",
			"time penalty", "energy saving"},
	}
	for _, name := range []string{workload.PhaseChangeMild, workload.PhaseChange} {
		base, err := c.baseline(name)
		if err != nil {
			return report.Table{}, err
		}
		for _, th := range []float64{0.10, 0.15, 0.20} {
			r, err := c.run(name, sim.Options{
				Policy: "min_energy_eufs", SigChangeTh: th, Seed: 40,
			})
			if err != nil {
				return report.Table{}, err
			}
			d := deltaOf(base, r)
			if err := t.AddRow(name, report.F(th*100, 0)+"%",
				report.F(float64(r.Nodes[0].PolicyApplies), 0),
				report.Pct(d.TimePenaltyPct), report.Pct(d.EnergySavingPct)); err != nil {
				return report.Table{}, err
			}
		}
	}
	return t, nil
}
