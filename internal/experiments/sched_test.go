package experiments

import (
	"errors"
	"sync"
	"testing"
)

var errTest = errors.New("boom")

func TestFlightExactlyOnce(t *testing.T) {
	var f flight[int]
	var calls int
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := f.do("k", func() (int, error) {
				calls++ // safe: do guarantees exactly one execution
				return 42, nil
			})
			if err != nil || v != 42 {
				t.Errorf("do = %d, %v", v, err)
			}
		}()
	}
	wg.Wait()
	if calls != 1 {
		t.Fatalf("fn ran %d times, want 1", calls)
	}
	if f.len() != 1 {
		t.Fatalf("len = %d, want 1", f.len())
	}
}

func TestFlightSnapshotSkipsErrors(t *testing.T) {
	var f flight[int]
	f.do("good", func() (int, error) { return 1, nil })
	f.do("bad", func() (int, error) { return 0, errTest })
	snap := f.snapshot()
	if len(snap) != 1 || snap["good"] != 1 {
		t.Fatalf("snapshot = %v, want only the good entry", snap)
	}
	// Errors are cached: a second call must not re-run the function.
	ran := false
	if _, err := f.do("bad", func() (int, error) { ran = true; return 0, nil }); err == nil {
		t.Error("cached error lost")
	}
	if ran {
		t.Error("failed entry re-executed")
	}
}

// TestGenerateStress hammers one shared Context from 32 goroutines with
// overlapping experiment ids. Run under -race this exercises every
// cache layer concurrently; the Stats assertions prove singleflight
// semantics — each model, calibration and run was computed exactly
// once no matter how many goroutines requested it.
func TestGenerateStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	c := NewQuick()
	c.Parallel = 4
	// Cheap, overlapping SD530 experiments: they share the SD530 model,
	// several calibrations and the min_energy/min_energy_eufs runs.
	ids := []string{"table1", "table2", "table4", "fig6"}
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			if _, err := c.Generate(ids[g%len(ids)]); err != nil {
				errs <- err
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Models == 0 || st.Calibrations == 0 || st.Runs == 0 {
		t.Fatalf("caches unexpectedly empty: %+v", st)
	}
	if st.ModelsTrained != st.Models {
		t.Errorf("models trained %d times for %d cache entries", st.ModelsTrained, st.Models)
	}
	if st.CalibrationsRun != st.Calibrations {
		t.Errorf("calibrations ran %d times for %d cache entries", st.CalibrationsRun, st.Calibrations)
	}
	if st.RunsExecuted != st.Runs {
		t.Errorf("runs executed %d times for %d cache entries", st.RunsExecuted, st.Runs)
	}
}
