package experiments

import (
	"runtime"
	"sync"
	"sync/atomic"

	"goear/internal/par"
	"goear/internal/report"
	"goear/internal/sim"
)

// flight is a singleflight cache: the first caller of a key computes
// its value while concurrent callers of the same key block on the same
// computation instead of duplicating it. Completed values (including
// errors, which are deterministic here: bad configurations stay bad)
// are cached for the cache's lifetime. The zero value is ready to use.
type flight[V any] struct {
	mu sync.Mutex
	m  map[string]*call[V]
}

type call[V any] struct {
	once sync.Once
	done atomic.Bool
	val  V
	err  error
}

// do returns the cached value for key, computing it with fn exactly
// once no matter how many goroutines ask concurrently.
func (f *flight[V]) do(key string, fn func() (V, error)) (V, error) {
	f.mu.Lock()
	if f.m == nil {
		f.m = map[string]*call[V]{}
	}
	c, ok := f.m[key]
	if !ok {
		c = &call[V]{}
		f.m[key] = c
	}
	f.mu.Unlock()
	c.once.Do(func() {
		c.val, c.err = fn()
		c.done.Store(true)
	})
	return c.val, c.err
}

// len counts the distinct keys ever requested.
func (f *flight[V]) len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.m)
}

// seed pre-completes key with a known value (used to share immutable
// results across contexts).
func (f *flight[V]) seed(key string, v V) {
	c := &call[V]{val: v}
	c.once.Do(func() {})
	c.done.Store(true)
	f.mu.Lock()
	if f.m == nil {
		f.m = map[string]*call[V]{}
	}
	f.m[key] = c
	f.mu.Unlock()
}

// snapshot returns the successfully completed entries; in-flight and
// failed computations are skipped.
func (f *flight[V]) snapshot() map[string]V {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[string]V, len(f.m))
	for k, c := range f.m {
		if c.done.Load() && c.err == nil {
			out[k] = c.val
		}
	}
	return out
}

// CacheStats reports the context's cache population and how much work
// was actually executed to build it. With singleflight deduplication
// the key and execution columns are equal — each distinct model,
// calibration and run is computed exactly once regardless of
// concurrency. It is a thin view assembled on demand from the
// context's telemetry counters (see Context's counter fields).
type CacheStats struct {
	// Models / Calibrations / Runs count distinct cache keys requested.
	Models       int
	Calibrations int
	Runs         int
	// ModelsTrained / CalibrationsRun / RunsExecuted count how many
	// times the underlying computation actually ran.
	ModelsTrained   int
	CalibrationsRun int
	RunsExecuted    int
	// ModelHits / CalibrationHits / RunHits count requests served from
	// the cache (requests minus computations).
	ModelHits       int
	CalibrationHits int
	RunHits         int
}

// Stats snapshots the context's cache counters.
func (c *Context) Stats() CacheStats {
	return CacheStats{
		Models:          c.models.len(),
		Calibrations:    c.cals.len(),
		Runs:            c.runs.len(),
		ModelsTrained:   int(c.modelsTrained.Value()),
		CalibrationsRun: int(c.calibrationsRun.Value()),
		RunsExecuted:    int(c.runsExecuted.Value()),
		ModelHits:       int(c.modelRequests.Value() - c.modelsTrained.Value()),
		CalibrationHits: int(c.calRequests.Value() - c.calibrationsRun.Value()),
		RunHits:         int(c.runRequests.Value() - c.runsExecuted.Value()),
	}
}

// workers is the context's fan-out bound: Parallel when positive,
// GOMAXPROCS when 0 (the default). Parallel = 1 forces the fully
// sequential schedule.
func (c *Context) workers() int {
	if c.Parallel > 0 {
		return c.Parallel
	}
	if c.Parallel == 0 {
		return runtime.GOMAXPROCS(0)
	}
	return 1
}

// mapRows computes one value per item on the context's worker pool,
// preserving item order — the engine behind every generator's row
// fan-out. Each fn call typically resolves through the singleflight
// caches, so rows that share configurations share work.
func mapRows[T, R any](c *Context, items []T, fn func(T) (R, error)) ([]R, error) {
	return par.Map(c.workers(), items, fn)
}

// runCfg names one configured run of a workload: the unit of the
// configuration-sweep tables (Figs. 3-8, ablations, baselines).
type runCfg struct {
	label string
	name  string
	opt   sim.Options
}

// compareAll resolves every configuration's Delta against its
// workload's baseline, in parallel, preserving order.
func (c *Context) compareAll(cfgs []runCfg) ([]Delta, error) {
	return mapRows(c, cfgs, func(r runCfg) (Delta, error) {
		return c.compare(r.name, r.opt)
	})
}

// figRow renders one bar-figure row from a precomputed Delta.
func figRow(t *report.Table, label string, d Delta) error {
	return t.AddRow(label,
		report.Pct(d.TimePenaltyPct), report.Pct(d.PowerSavingPct),
		report.Pct(d.EnergySavingPct), report.GHz(d.AvgCPUGHz), report.GHz(d.AvgIMCGHz))
}

// ratioRowOf renders one efficiency-ratio row from a precomputed Delta.
func ratioRowOf(t *report.Table, label string, d Delta) error {
	ratio := "-"
	if d.EfficiencyRatio != 0 {
		ratio = report.F(d.EfficiencyRatio, 2)
	}
	return t.AddRow(label,
		report.Pct(d.TimePenaltyPct), report.Pct(d.PowerSavingPct),
		report.Pct(d.EnergySavingPct), ratio)
}
