package experiments

import (
	"os"
	"testing"
)

// TestPreview prints selected experiments for development inspection.
// Run with: go test ./internal/experiments -run TestPreview -v -preview
func TestPreview(t *testing.T) {
	if os.Getenv("GOEAR_PREVIEW") == "" {
		t.Skip("set GOEAR_PREVIEW=ids to print experiment previews")
	}
	c := NewQuick()
	for _, id := range []string{"table3", "table4", "fig7", "table7", "summary"} {
		tabs, err := c.Generate(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		for _, tb := range tabs {
			if err := tb.Render(os.Stdout); err != nil {
				t.Fatal(err)
			}
			os.Stdout.WriteString("\n")
		}
	}
}
